#include "eval/deletion_curve.h"

#include <gtest/gtest.h>

#include "core/landmark_explainer.h"
#include "em/heuristic_model.h"

namespace landmark {
namespace {

EmDataset MatchDataset() {
  auto schema = *Schema::Make({"name", "price"});
  EmDataset dataset("dc-test", schema);
  auto add = [&](const std::string& l0, const std::string& r0) {
    PairRecord p;
    p.left = *Record::Make(schema, {Value::Of(l0), Value::Of("9")});
    p.right = *Record::Make(schema, {Value::Of(r0), Value::Of("9")});
    p.label = MatchLabel::kMatch;
    ASSERT_TRUE(dataset.Append(std::move(p)).ok());
  };
  add("alpha beta gamma delta", "alpha beta gamma epsilon");
  add("one two three four five", "one two three nine ten");
  add("red green blue yellow", "red green blue pink");
  return dataset;
}

TEST(DeletionCurveTest, GuidedDeletionBeatsRandom) {
  EmDataset dataset = MatchDataset();
  JaccardEmModel model;
  ExplainerOptions options;
  options.num_samples = 200;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, options);
  ExplainBatchResult batch =
      ExplainRecords(model, explainer, dataset, {0, 1, 2});
  DeletionCurveOptions curve_options;
  curve_options.random_repetitions = 5;
  auto result = EvaluateDeletionCurve(model, explainer, dataset,
                                      batch.records, curve_options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->num_explanations, 0u);
  EXPECT_LT(result->auc, result->random_auc);
}

TEST(DeletionCurveTest, CurveStartsAtModelPrediction) {
  EmDataset dataset = MatchDataset();
  JaccardEmModel model;
  ExplainerOptions options;
  options.num_samples = 150;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, options);
  ExplainBatchResult batch = ExplainRecords(model, explainer, dataset, {0});
  auto result =
      EvaluateDeletionCurve(model, explainer, dataset, batch.records, {});
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->mean_curve.empty());
  // All explanations of record 0 share one all-active prediction per side;
  // the curve's first point is their mean.
  double expected = 0.0;
  for (const auto& exp : batch.records[0].explanations) {
    expected += exp.model_prediction;
  }
  expected /= static_cast<double>(batch.records[0].explanations.size());
  EXPECT_NEAR(result->mean_curve[0], expected, 1e-12);
}

TEST(DeletionCurveTest, MaxStepsBoundsCurveLength) {
  EmDataset dataset = MatchDataset();
  JaccardEmModel model;
  ExplainerOptions options;
  options.num_samples = 100;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, options);
  ExplainBatchResult batch = ExplainRecords(model, explainer, dataset, {0});
  DeletionCurveOptions curve_options;
  curve_options.max_steps = 2;
  auto result = EvaluateDeletionCurve(model, explainer, dataset,
                                      batch.records, curve_options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->mean_curve.size(), 3u);  // p0 + 2 deletions
}

TEST(DeletionCurveTest, EmptyInputGivesEmptyResult) {
  EmDataset dataset = MatchDataset();
  JaccardEmModel model;
  LandmarkExplainer explainer(GenerationStrategy::kSingle);
  auto result = EvaluateDeletionCurve(model, explainer, dataset, {}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_explanations, 0u);
}

}  // namespace
}  // namespace landmark
