#include "eval/evaluation.h"

#include <gtest/gtest.h>

#include "core/landmark_explainer.h"
#include "core/lime_explainer.h"
#include "em/heuristic_model.h"

namespace landmark {
namespace {

std::shared_ptr<const Schema> TestSchema() {
  return *Schema::Make({"name", "price"});
}

EmDataset SmallDataset() {
  auto schema = TestSchema();
  EmDataset dataset("eval-test", schema);
  auto add = [&](const std::string& l0, const std::string& l1,
                 const std::string& r0, const std::string& r1,
                 MatchLabel label) {
    PairRecord p;
    p.left = *Record::Make(schema, {Value::Of(l0), Value::Of(l1)});
    p.right = *Record::Make(schema, {Value::Of(r0), Value::Of(r1)});
    p.label = label;
    ASSERT_TRUE(dataset.Append(std::move(p)).ok());
  };
  add("alpha beta gamma", "10", "alpha beta delta", "10", MatchLabel::kMatch);
  add("epsilon zeta eta", "20", "epsilon zeta eta", "20", MatchLabel::kMatch);
  add("one two three", "30", "nine eight seven", "99", MatchLabel::kNonMatch);
  add("red green blue", "5", "cyan magenta", "77", MatchLabel::kNonMatch);
  return dataset;
}

ExplainerOptions FastOptions() {
  ExplainerOptions options;
  options.num_samples = 150;
  return options;
}

TEST(ExplainRecordsTest, ExplainsEveryRequestedRecord) {
  EmDataset dataset = SmallDataset();
  JaccardEmModel model;
  LimeExplainer lime(FastOptions());
  ExplainBatchResult batch = ExplainRecords(model, lime, dataset, {0, 1, 2});
  EXPECT_EQ(batch.records.size(), 3u);
  EXPECT_EQ(batch.num_skipped, 0u);
  EXPECT_EQ(batch.records[2].pair_index, 2u);
  EXPECT_EQ(batch.records[0].explanations.size(), 1u);
}

TEST(ExplainRecordsTest, SkipsUnexplainableRecords) {
  auto schema = TestSchema();
  EmDataset dataset("t", schema);
  PairRecord empty;
  empty.left = Record::Empty(schema);
  empty.right = Record::Empty(schema);
  ASSERT_TRUE(dataset.Append(std::move(empty)).ok());
  JaccardEmModel model;
  LimeExplainer lime(FastOptions());
  ExplainBatchResult batch = ExplainRecords(model, lime, dataset, {0});
  EXPECT_TRUE(batch.records.empty());
  EXPECT_EQ(batch.num_skipped, 1u);
}

TEST(TokenRemovalTest, LinearModelWouldScorePerfectly) {
  // With the surrogate fit on the Jaccard model the estimate is imperfect
  // but must be far better than chance and bounded.
  EmDataset dataset = SmallDataset();
  JaccardEmModel model;
  LandmarkExplainer single(GenerationStrategy::kSingle, FastOptions());
  ExplainBatchResult batch =
      ExplainRecords(model, single, dataset, {0, 1, 2, 3});
  TokenRemovalOptions options;
  options.repetitions = 4;
  auto result = EvaluateTokenRemoval(model, single, dataset, batch.records,
                                     options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->num_trials, 0u);
  EXPECT_GE(result->accuracy, 0.5);
  EXPECT_LE(result->accuracy, 1.0);
  EXPECT_GE(result->mae, 0.0);
  EXPECT_LT(result->mae, 0.5);
}

TEST(TokenRemovalTest, RepetitionsMultiplyTrials) {
  EmDataset dataset = SmallDataset();
  JaccardEmModel model;
  LimeExplainer lime(FastOptions());
  ExplainBatchResult batch = ExplainRecords(model, lime, dataset, {0, 2});
  TokenRemovalOptions one, three;
  one.repetitions = 1;
  three.repetitions = 3;
  auto r1 = EvaluateTokenRemoval(model, lime, dataset, batch.records, one);
  auto r3 = EvaluateTokenRemoval(model, lime, dataset, batch.records, three);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->num_trials, 3 * r1->num_trials);
}

TEST(TokenRemovalTest, RejectsBadOptions) {
  EmDataset dataset = SmallDataset();
  JaccardEmModel model;
  LimeExplainer lime(FastOptions());
  ExplainBatchResult batch = ExplainRecords(model, lime, dataset, {0});
  TokenRemovalOptions bad;
  bad.removal_fraction = 0.0;
  EXPECT_FALSE(
      EvaluateTokenRemoval(model, lime, dataset, batch.records, bad).ok());
  bad.removal_fraction = 0.25;
  bad.repetitions = 0;
  EXPECT_FALSE(
      EvaluateTokenRemoval(model, lime, dataset, batch.records, bad).ok());
}

TEST(AttributeEvalTest, PerfectCorrelationForAlignedModel) {
  // JaccardEmModel with explicit weights exposes its attribute importance;
  // a hand-built explanation with matching attribute masses must give tau=1.
  EmDataset dataset = SmallDataset();
  JaccardEmModel model({3.0, 1.0});

  ExplainedRecord record;
  record.pair_index = 0;
  Explanation exp;
  Token t0, t1;
  t0.attribute = 0;
  t1.attribute = 1;
  exp.token_weights = {TokenWeight{t0, 0.9}, TokenWeight{t1, -0.2}};
  record.explanations.push_back(exp);

  auto result = EvaluateAttributeCorrelation(model, dataset, {record});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->mean_weighted_tau, 1.0);

  // Reversed importance gives tau = -1.
  record.explanations[0].token_weights[0].weight = 0.1;
  record.explanations[0].token_weights[1].weight = -0.8;
  result = EvaluateAttributeCorrelation(model, dataset, {record});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->mean_weighted_tau, -1.0);
}

TEST(AttributeEvalTest, RequiresModelWeights) {
  EmDataset dataset = SmallDataset();
  JaccardEmModel uniform;  // uniform model has no exposed weights
  auto result = EvaluateAttributeCorrelation(uniform, dataset, {});
  EXPECT_FALSE(result.ok());
}

TEST(InterestTest, DoubleEntityFlipsNonMatches) {
  // Removing the negative tokens of a double-entity explanation leaves the
  // injected landmark tokens, which turn the record into a match.
  EmDataset dataset = SmallDataset();
  JaccardEmModel model;
  LandmarkExplainer dbl(GenerationStrategy::kDouble, FastOptions());
  std::vector<size_t> non_matches = dataset.IndicesWithLabel(MatchLabel::kNonMatch);
  ExplainBatchResult batch = ExplainRecords(model, dbl, dataset, non_matches);
  auto result = EvaluateInterest(model, dbl, dataset, batch.records,
                                 MatchLabel::kNonMatch, {});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->interest, 0.7);
}

TEST(InterestTest, SingleEntityFlipsMatches) {
  // Removing positive tokens from a matching record destroys the overlap.
  EmDataset dataset = SmallDataset();
  JaccardEmModel model;
  LandmarkExplainer single(GenerationStrategy::kSingle, FastOptions());
  std::vector<size_t> matches = dataset.IndicesWithLabel(MatchLabel::kMatch);
  ExplainBatchResult batch = ExplainRecords(model, single, dataset, matches);
  auto result = EvaluateInterest(model, single, dataset, batch.records,
                                 MatchLabel::kMatch, {});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->interest, 0.7);
}

TEST(InterestTest, EmptyInputGivesZero) {
  EmDataset dataset = SmallDataset();
  JaccardEmModel model;
  LimeExplainer lime(FastOptions());
  auto result =
      EvaluateInterest(model, lime, dataset, {}, MatchLabel::kMatch, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_explanations, 0u);
  EXPECT_DOUBLE_EQ(result->interest, 0.0);
}

}  // namespace
}  // namespace landmark
