#include "eval/stability.h"

#include <gtest/gtest.h>

#include "core/landmark_explainer.h"
#include "em/heuristic_model.h"

namespace landmark {
namespace {

EmDataset SmallDataset() {
  auto schema = *Schema::Make({"name"});
  EmDataset dataset("st-test", schema);
  auto add = [&](const std::string& l, const std::string& r) {
    PairRecord p;
    p.left = *Record::Make(schema, {Value::Of(l)});
    p.right = *Record::Make(schema, {Value::Of(r)});
    p.label = MatchLabel::kMatch;
    ASSERT_TRUE(dataset.Append(std::move(p)).ok());
  };
  add("alpha beta gamma delta epsilon", "alpha beta gamma zeta");
  add("one two three four", "one two five six");
  return dataset;
}

ExplainerFactory SingleFactory() {
  return [](const ExplainerOptions& o) -> std::unique_ptr<PairExplainer> {
    return std::make_unique<LandmarkExplainer>(GenerationStrategy::kSingle, o);
  };
}

TEST(StabilityTest, StableOnACrispModel) {
  // Jaccard model + small token space: the top tokens are clear-cut, so
  // stability should be high even with modest sample counts.
  EmDataset dataset = SmallDataset();
  JaccardEmModel model;
  ExplainerOptions options;
  options.num_samples = 256;
  auto result = EvaluateStability(model, SingleFactory(), options, dataset,
                                  {0, 1});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_records, 2u);
  EXPECT_GT(result->mean_topk_jaccard, 0.6);
  EXPECT_LE(result->mean_topk_jaccard, 1.0);
}

TEST(StabilityTest, MoreSamplesNeverHurtMuch) {
  EmDataset dataset = SmallDataset();
  JaccardEmModel model;
  ExplainerOptions tiny, large;
  tiny.num_samples = 24;
  large.num_samples = 512;
  auto small_result =
      EvaluateStability(model, SingleFactory(), tiny, dataset, {0, 1});
  auto large_result =
      EvaluateStability(model, SingleFactory(), large, dataset, {0, 1});
  ASSERT_TRUE(small_result.ok());
  ASSERT_TRUE(large_result.ok());
  EXPECT_GE(large_result->mean_topk_jaccard,
            small_result->mean_topk_jaccard - 0.1);
}

TEST(StabilityTest, RejectsSingleSeed) {
  EmDataset dataset = SmallDataset();
  JaccardEmModel model;
  StabilityOptions options;
  options.num_seeds = 1;
  EXPECT_FALSE(EvaluateStability(model, SingleFactory(), {}, dataset, {0},
                                 options)
                   .ok());
}

TEST(StabilityTest, SkipsUnexplainableRecords) {
  auto schema = *Schema::Make({"name"});
  EmDataset dataset("st-test", schema);
  PairRecord empty;
  empty.left = Record::Empty(schema);
  empty.right = Record::Empty(schema);
  ASSERT_TRUE(dataset.Append(std::move(empty)).ok());
  JaccardEmModel model;
  auto result = EvaluateStability(model, SingleFactory(), {}, dataset, {0});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_records, 0u);
}

}  // namespace
}  // namespace landmark
