// The evaluation protocols must work against any EmModel that exposes
// attribute weights — not just the paper's logistic regression.

#include <gtest/gtest.h>

#include "core/landmark_explainer.h"
#include "datagen/magellan.h"
#include "em/forest_em_model.h"
#include "em/rule_em_model.h"
#include "eval/evaluation.h"

namespace landmark {
namespace {

class CrossModelEvalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ =
        new EmDataset(*GenerateMagellanDataset(*FindMagellanSpec("S-BR")));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static EmDataset* dataset_;

  std::vector<size_t> Sample() {
    Rng rng(3);
    std::vector<size_t> sample =
        dataset_->SampleByLabel(MatchLabel::kMatch, 8, rng);
    auto non_match = dataset_->SampleByLabel(MatchLabel::kNonMatch, 8, rng);
    sample.insert(sample.end(), non_match.begin(), non_match.end());
    return sample;
  }

  void RunAllProtocols(const EmModel& model) {
    ExplainerOptions options;
    options.num_samples = 96;
    LandmarkExplainer explainer(GenerationStrategy::kAuto, options);
    ExplainBatchResult batch =
        ExplainRecords(model, explainer, *dataset_, Sample());
    ASSERT_FALSE(batch.records.empty());

    auto token = EvaluateTokenRemoval(model, explainer, *dataset_,
                                      batch.records, {});
    ASSERT_TRUE(token.ok()) << token.status().ToString();
    EXPECT_GT(token->num_trials, 0u);
    EXPECT_GE(token->accuracy, 0.0);
    EXPECT_LE(token->accuracy, 1.0);

    auto attr = EvaluateAttributeCorrelation(model, *dataset_, batch.records);
    ASSERT_TRUE(attr.ok()) << attr.status().ToString();
    EXPECT_GE(attr->mean_weighted_tau, -1.0);
    EXPECT_LE(attr->mean_weighted_tau, 1.0);

    auto interest = EvaluateInterest(model, explainer, *dataset_,
                                     batch.records, MatchLabel::kMatch, {});
    ASSERT_TRUE(interest.ok());
    EXPECT_GE(interest->interest, 0.0);
    EXPECT_LE(interest->interest, 1.0);
  }
};

EmDataset* CrossModelEvalTest::dataset_ = nullptr;

TEST_F(CrossModelEvalTest, WorksWithRandomForest) {
  auto model = std::move(ForestEmModel::Train(*dataset_)).ValueOrDie();
  RunAllProtocols(*model);
}

TEST_F(CrossModelEvalTest, WorksWithRuleModel) {
  auto model = std::move(RuleEmModel::Train(*dataset_)).ValueOrDie();
  RunAllProtocols(*model);
}

}  // namespace
}  // namespace landmark
