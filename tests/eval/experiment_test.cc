#include "eval/experiment.h"

#include <gtest/gtest.h>

namespace landmark {
namespace {

Flags ParseArgs(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("prog"));
  for (auto& a : storage) argv.push_back(a.data());
  return *Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ExperimentConfigTest, FlagOverrides) {
  ExperimentConfig config = ExperimentConfig::FromFlags(ParseArgs(
      {"--records=25", "--samples=64", "--scale=0.5", "--threshold=0.4",
       "--kernel-width=0.5", "--lambda=2.0", "--seed=9"}));
  EXPECT_EQ(config.records_per_label, 25u);
  EXPECT_EQ(config.explainer_options.num_samples, 64u);
  EXPECT_DOUBLE_EQ(config.size_scale, 0.5);
  EXPECT_DOUBLE_EQ(config.token_removal.decision_threshold, 0.4);
  EXPECT_DOUBLE_EQ(config.interest.decision_threshold, 0.4);
  EXPECT_DOUBLE_EQ(config.explainer_options.kernel_width, 0.5);
  EXPECT_DOUBLE_EQ(config.explainer_options.ridge_lambda, 2.0);
  EXPECT_EQ(config.explainer_options.seed, 9u);
}

TEST(ExperimentConfigTest, DefaultsFollowThePaper) {
  ExperimentConfig config = ExperimentConfig::FromFlags(ParseArgs({}));
  EXPECT_EQ(config.records_per_label, 100u);            // 100 per label
  EXPECT_DOUBLE_EQ(config.token_removal.removal_fraction, 0.25);  // 25%
  EXPECT_DOUBLE_EQ(config.token_removal.decision_threshold, 0.5);
}

TEST(SelectSpecsTest, DefaultsToAllTwelve) {
  EXPECT_EQ(SelectSpecs(ParseArgs({})).size(), 12u);
}

TEST(SelectSpecsTest, FiltersByCode) {
  auto specs = SelectSpecs(ParseArgs({"--datasets=S-BR, S-IA ,bogus"}));
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].code, "S-BR");
  EXPECT_EQ(specs[1].code, "S-IA");
}

TEST(MakeTechniquesTest, PaperColumnOrder) {
  auto techniques = MakeTechniques(ExplainerOptions{});
  ASSERT_EQ(techniques.size(), 4u);
  EXPECT_EQ(techniques[0].label, "Single");
  EXPECT_EQ(techniques[1].label, "Double");
  EXPECT_EQ(techniques[2].label, "LIME");
  EXPECT_EQ(techniques[3].label, "Mojito Copy");
  EXPECT_FALSE(techniques[0].non_match_only);
  EXPECT_TRUE(techniques[3].non_match_only);
  EXPECT_EQ(techniques[0].explainer->name(), "landmark-single");
  EXPECT_EQ(techniques[1].explainer->name(), "landmark-double");
  EXPECT_EQ(techniques[2].explainer->name(), "lime");
  EXPECT_EQ(techniques[3].explainer->name(), "mojito-copy");
}

TEST(ExperimentContextTest, CreatesDatasetModelAndSamples) {
  ExperimentConfig config;
  config.size_scale = 1.0;
  config.records_per_label = 10;
  MagellanDatasetSpec spec = *FindMagellanSpec("S-BR");
  auto context = ExperimentContext::Create(spec, config);
  ASSERT_TRUE(context.ok());
  EXPECT_EQ(context->dataset().size(), 450u);
  EXPECT_EQ(context->sample(MatchLabel::kMatch).size(), 10u);
  EXPECT_EQ(context->sample(MatchLabel::kNonMatch).size(), 10u);
  EXPECT_GT(context->model().report().f1, 0.5);
  for (size_t i : context->sample(MatchLabel::kMatch)) {
    EXPECT_TRUE(context->dataset().pair(i).is_match());
  }
}

}  // namespace
}  // namespace landmark
