#include "em/blocking.h"

#include <gtest/gtest.h>

#include "datagen/corruptions.h"
#include "datagen/domains.h"

namespace landmark {
namespace {

std::shared_ptr<const Schema> ProductSchema() {
  return *Schema::Make({"title", "brand"});
}

Record Product(const std::string& title, const std::string& brand) {
  return *Record::Make(ProductSchema(), {Value::Of(title), Value::Of(brand)});
}

TEST(TokenBlockerTest, FindsSharedTokenCandidates) {
  std::vector<Record> left = {Product("sony dslra200w bundle", "sony"),
                              Product("nikon coolpix p900", "nikon")};
  std::vector<Record> right = {Product("sony alpha dslra200w", "sony"),
                               Product("garmin gps unit", "garmin")};
  BlockingOptions options;
  options.max_token_frequency = 1.0;  // tiny corpus: no stop-wording
  TokenBlocker blocker(options);
  auto candidates = blocker.Block(left, right).ValueOrDie();
  // Pair (0, 0) must be found; (1, 1) shares nothing.
  bool found_match = false, found_garmin = false;
  for (const auto& c : candidates) {
    if (c.left_index == 0 && c.right_index == 0) found_match = true;
    if (c.right_index == 1) found_garmin = true;
  }
  EXPECT_TRUE(found_match);
  EXPECT_FALSE(found_garmin);
}

TEST(TokenBlockerTest, RareTokensScoreHigherThanCommonOnes) {
  // "dslra200w" is rarer than "sony" across the left corpus, so a candidate
  // sharing the model number outranks one sharing only the brand.
  std::vector<Record> left = {Product("sony dslra200w", "sony"),
                              Product("sony walkman", "sony"),
                              Product("sony bravia", "sony")};
  std::vector<Record> right = {Product("case for dslra200w", "generic"),
                               Product("sony charger", "sony")};
  BlockingOptions options;
  options.max_token_frequency = 1.0;
  TokenBlocker blocker(options);
  auto candidates = blocker.Block(left, right).ValueOrDie();
  double model_score = 0, brand_score = 0;
  for (const auto& c : candidates) {
    if (c.left_index == 0 && c.right_index == 0) model_score = c.score;
    if (c.left_index == 0 && c.right_index == 1) brand_score = c.score;
  }
  ASSERT_GT(model_score, 0.0);
  ASSERT_GT(brand_score, 0.0);
  EXPECT_GT(model_score, brand_score);
}

TEST(TokenBlockerTest, StopWordsDoNotGenerateCandidates) {
  // "camera" appears in every left entity -> with a strict frequency cap it
  // must not connect otherwise-unrelated products.
  std::vector<Record> left = {Product("sony camera", "sony"),
                              Product("nikon camera", "nikon"),
                              Product("canon camera", "canon"),
                              Product("kodak camera", "kodak"),
                              Product("fuji camera", "fuji")};
  std::vector<Record> right = {Product("generic camera", "acme")};
  BlockingOptions options;
  options.max_token_frequency = 0.5;
  TokenBlocker blocker(options);
  auto candidates = blocker.Block(left, right).ValueOrDie();
  EXPECT_TRUE(candidates.empty());
}

TEST(TokenBlockerTest, TopKCapsCandidatesPerLeftEntity) {
  std::vector<Record> left = {Product("widget alpha", "acme")};
  std::vector<Record> right;
  for (int i = 0; i < 20; ++i) {
    right.push_back(Product("widget variant " + std::to_string(i), "other"));
  }
  BlockingOptions options;
  options.max_token_frequency = 1.0;
  options.top_k_per_left = 5;
  TokenBlocker blocker(options);
  auto candidates = blocker.Block(left, right).ValueOrDie();
  EXPECT_EQ(candidates.size(), 5u);
}

TEST(TokenBlockerTest, MinSharedTokensFilters) {
  std::vector<Record> left = {Product("alpha beta gamma", "x")};
  std::vector<Record> right = {Product("alpha zzz yyy", "q"),
                               Product("alpha beta qqq", "q")};
  BlockingOptions options;
  options.max_token_frequency = 1.0;
  options.min_shared_tokens = 2;
  TokenBlocker blocker(options);
  auto candidates = blocker.Block(left, right).ValueOrDie();
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].right_index, 1u);
}

TEST(TokenBlockerTest, RecallOnCorruptedDuplicates) {
  // The property the blocker exists for: a corrupted copy of an entity must
  // still be found among its candidates.
  auto gen = MakeEntityGenerator(MagellanDomain::kProductWalmartAmazon);
  Rng rng(77);
  CorruptionOptions corruption;
  std::vector<Record> left, right;
  const size_t n = 60;
  for (size_t i = 0; i < n; ++i) {
    Record base = gen->Generate(rng);
    left.push_back(base);
    right.push_back(CorruptEntity(base, corruption, rng));
  }
  TokenBlocker blocker;
  auto candidates = blocker.Block(left, right).ValueOrDie();
  size_t recalled = 0;
  for (size_t i = 0; i < n; ++i) {
    for (const auto& c : candidates) {
      if (c.left_index == i && c.right_index == i) {
        ++recalled;
        break;
      }
    }
  }
  EXPECT_GT(static_cast<double>(recalled) / n, 0.95);
}

TEST(TokenBlockerTest, RejectsEmptyOrMismatchedInput) {
  TokenBlocker blocker;
  EXPECT_FALSE(blocker.Block({}, {}).ok());
  std::vector<Record> left = {Product("a", "b")};
  std::vector<Record> other = {
      *Record::Make(*Schema::Make({"different"}), {Value::Of("x")})};
  EXPECT_FALSE(blocker.Block(left, other).ok());
}

}  // namespace
}  // namespace landmark
