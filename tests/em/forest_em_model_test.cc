#include "em/forest_em_model.h"

#include <gtest/gtest.h>

#include "core/landmark_explainer.h"
#include "datagen/magellan.h"

namespace landmark {
namespace {

TEST(ForestEmModelTest, LearnsTheBenchmark) {
  EmDataset dataset = *GenerateMagellanDataset(*FindMagellanSpec("S-FZ"));
  auto model = ForestEmModel::Train(dataset);
  ASSERT_TRUE(model.ok());
  EXPECT_GT((*model)->report().f1, 0.6);
}

TEST(ForestEmModelTest, AttributeWeightsSumToOne) {
  EmDataset dataset = *GenerateMagellanDataset(*FindMagellanSpec("S-BR"));
  auto model = std::move(ForestEmModel::Train(dataset)).ValueOrDie();
  auto weights = model->AttributeWeights();
  ASSERT_TRUE(weights.ok());
  EXPECT_EQ(weights->size(), dataset.entity_schema()->num_attributes());
  double total = 0.0;
  for (double w : *weights) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ForestEmModelTest, IsExplainableAsABlackBox) {
  // The whole point: the landmark explainer needs nothing but PredictProba.
  EmDataset dataset = *GenerateMagellanDataset(*FindMagellanSpec("S-BR"));
  auto model = std::move(ForestEmModel::Train(dataset)).ValueOrDie();
  ExplainerOptions options;
  options.num_samples = 128;
  LandmarkExplainer explainer(GenerationStrategy::kAuto, options);
  auto explanations = explainer.Explain(*model, dataset.pair(0));
  ASSERT_TRUE(explanations.ok());
  EXPECT_EQ(explanations->size(), 2u);
  EXPECT_GT((*explanations)[0].size(), 0u);
}

TEST(ForestEmModelTest, RejectsEmptyDataset) {
  EmDataset empty("e", *Schema::Make({"a"}));
  EXPECT_FALSE(ForestEmModel::Train(empty).ok());
}

}  // namespace
}  // namespace landmark
