#include "em/embedding_em_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/landmark_explainer.h"
#include "datagen/magellan.h"

namespace landmark {
namespace {

class EmbeddingEmModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new EmDataset(
        *GenerateMagellanDataset(*FindMagellanSpec("S-FZ")));
    model_ = new std::unique_ptr<EmbeddingEmModel>(
        std::move(EmbeddingEmModel::Train(*dataset_)).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    model_ = nullptr;
    dataset_ = nullptr;
  }

  static EmDataset* dataset_;
  static std::unique_ptr<EmbeddingEmModel>* model_;
};

EmDataset* EmbeddingEmModelTest::dataset_ = nullptr;
std::unique_ptr<EmbeddingEmModel>* EmbeddingEmModelTest::model_ = nullptr;

TEST_F(EmbeddingEmModelTest, LearnsTheBenchmark) {
  // A hash-embedding MLP won't match the feature-engineered model, but must
  // clearly beat chance on the imbalanced benchmark.
  EXPECT_GT((*model_)->report().f1, 0.5);
}

TEST_F(EmbeddingEmModelTest, TokenEmbeddingsAreDeterministicUnitVectors) {
  Vector a = (*model_)->EmbedToken("sony");
  Vector b = (*model_)->EmbedToken("sony");
  Vector c = (*model_)->EmbedToken("nikon");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  double norm_sq = 0.0;
  for (double v : a) norm_sq += v * v;
  EXPECT_NEAR(norm_sq, 1.0, 1e-9);
}

TEST_F(EmbeddingEmModelTest, ComposeDimensionality) {
  const PairRecord& pair = dataset_->pair(0);
  Vector features = (*model_)->Compose(pair);
  EXPECT_EQ(features.size(),
            dataset_->entity_schema()->num_attributes() * 2 * 16);
}

TEST_F(EmbeddingEmModelTest, IdenticalPairsComposeToZeroDifference) {
  PairRecord pair = dataset_->pair(0);
  pair.right = pair.left;
  Vector features = (*model_)->Compose(pair);
  // The |l - r| half of every attribute block is exactly zero.
  const size_t k = 16;
  for (size_t a = 0; a < dataset_->entity_schema()->num_attributes(); ++a) {
    for (size_t i = 0; i < k; ++i) {
      EXPECT_DOUBLE_EQ(features[a * 2 * k + i], 0.0);
    }
  }
}

TEST_F(EmbeddingEmModelTest, ExplainableAsABlackBox) {
  ExplainerOptions options;
  options.num_samples = 128;
  LandmarkExplainer explainer(GenerationStrategy::kAuto, options);
  auto explanations = explainer.Explain(**model_, dataset_->pair(0));
  ASSERT_TRUE(explanations.ok());
  EXPECT_EQ(explanations->size(), 2u);
  for (const auto& exp : *explanations) {
    for (const auto& tw : exp.token_weights) {
      EXPECT_TRUE(std::isfinite(tw.weight));
    }
  }
}

TEST(EmbeddingEmModelStandaloneTest, RejectsBadOptions) {
  EmDataset empty("e", *Schema::Make({"a"}));
  EXPECT_FALSE(EmbeddingEmModel::Train(empty).ok());
}

}  // namespace
}  // namespace landmark
