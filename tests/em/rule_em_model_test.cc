#include "em/rule_em_model.h"

#include <set>

#include <gtest/gtest.h>

#include "core/landmark_explainer.h"
#include "datagen/magellan.h"

namespace landmark {
namespace {

class RuleEmModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ =
        new EmDataset(*GenerateMagellanDataset(*FindMagellanSpec("S-FZ")));
    model_ = new std::unique_ptr<RuleEmModel>(
        std::move(RuleEmModel::Train(*dataset_)).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    model_ = nullptr;
    dataset_ = nullptr;
  }
  static EmDataset* dataset_;
  static std::unique_ptr<RuleEmModel>* model_;
};

EmDataset* RuleEmModelTest::dataset_ = nullptr;
std::unique_ptr<RuleEmModel>* RuleEmModelTest::model_ = nullptr;

TEST_F(RuleEmModelTest, LearnsUsefulRules) {
  EXPECT_FALSE((*model_)->rules().empty());
  EXPECT_GT((*model_)->report().f1, 0.6);
  for (const MatchRule& rule : (*model_)->rules()) {
    EXPECT_FALSE(rule.predicates.empty());
    EXPECT_GE(rule.confidence, 0.5);
    EXPECT_GE(rule.support, 3u);
  }
}

TEST_F(RuleEmModelTest, PredictionIsRuleConfidenceOrDefault) {
  std::set<std::string> seen;
  for (size_t i = 0; i < 50 && i < dataset_->size(); ++i) {
    const double p = (*model_)->PredictProba(dataset_->pair(i));
    bool valid = p == 0.02;  // default_probability
    for (const MatchRule& rule : (*model_)->rules()) {
      valid |= p == rule.confidence;
    }
    EXPECT_TRUE(valid) << "prediction " << p << " matches no rule confidence";
  }
}

TEST_F(RuleEmModelTest, AttributeWeightsReflectRulePredicates) {
  auto weights = (*model_)->AttributeWeights();
  ASSERT_TRUE(weights.ok());
  double total = 0.0;
  for (double w : *weights) total += w;
  EXPECT_GT(total, 0.0);
}

TEST_F(RuleEmModelTest, RulesRenderReadably) {
  const std::string rendered = (*model_)->RulesToString();
  EXPECT_NE(rendered.find("=> match"), std::string::npos);
  EXPECT_NE(rendered.find("R1:"), std::string::npos);
}

TEST_F(RuleEmModelTest, ExplanationRecoversTheFiringRuleAttributes) {
  // Ground-truth validation: explain a record on which a rule fires; the
  // explanation's attribute mass must be concentrated on attributes used by
  // the model's rules.
  const RuleEmModel& model = **model_;
  // Find a confident match.
  const PairRecord* target = nullptr;
  for (size_t i : dataset_->IndicesWithLabel(MatchLabel::kMatch)) {
    if (model.PredictProba(dataset_->pair(i)) >= 0.9) {
      target = &dataset_->pair(i);
      break;
    }
  }
  ASSERT_NE(target, nullptr);

  std::vector<double> rule_attrs = *model.AttributeWeights();
  ExplainerOptions options;
  options.num_samples = 256;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, options);
  auto explanations = explainer.Explain(model, *target);
  ASSERT_TRUE(explanations.ok());
  for (const Explanation& exp : *explanations) {
    std::vector<double> exp_attrs =
        exp.AttributeWeights(rule_attrs.size());
    // The attribute with the largest explanation mass must be one the rule
    // list actually uses.
    size_t top = 0;
    for (size_t a = 1; a < exp_attrs.size(); ++a) {
      if (exp_attrs[a] > exp_attrs[top]) top = a;
    }
    EXPECT_GT(rule_attrs[top], 0.0)
        << "explanation concentrates on an attribute no rule uses";
  }
}

TEST(RuleEmModelStandaloneTest, RejectsBadInput) {
  EmDataset empty("e", *Schema::Make({"a"}));
  EXPECT_FALSE(RuleEmModel::Train(empty).ok());
  RuleEmModelOptions options;
  options.thresholds.clear();
  EmDataset dataset =
      *GenerateMagellanDataset(*FindMagellanSpec("S-BR"));
  EXPECT_FALSE(RuleEmModel::Train(dataset, options).ok());
}

}  // namespace
}  // namespace landmark
