#include "em/features.h"

#include <gtest/gtest.h>

namespace landmark {
namespace {

TEST(AttributeFeatureTest, AllKindsHaveNames) {
  for (size_t k = 0; k < kNumAttributeFeatures; ++k) {
    EXPECT_NE(AttributeFeatureKindName(static_cast<AttributeFeatureKind>(k)),
              "unknown");
  }
}

TEST(AttributeFeatureTest, IdenticalValuesScoreOne) {
  const Value v = Value::Of("sony digital camera");
  for (size_t k = 0; k < kNumAttributeFeatures; ++k) {
    const auto kind = static_cast<AttributeFeatureKind>(k);
    if (kind == AttributeFeatureKind::kNumericCloseness) continue;  // text
    EXPECT_DOUBLE_EQ(ComputeAttributeFeature(kind, v, v), 1.0)
        << AttributeFeatureKindName(kind);
  }
}

TEST(AttributeFeatureTest, NullsZeroOutSimilarities) {
  const Value v = Value::Of("something");
  for (size_t k = 0; k < kNumAttributeFeatures; ++k) {
    const auto kind = static_cast<AttributeFeatureKind>(k);
    const double expected =
        kind == AttributeFeatureKind::kBothPresent ? 0.0 : 0.0;
    EXPECT_DOUBLE_EQ(ComputeAttributeFeature(kind, Value::Null(), v), expected)
        << AttributeFeatureKindName(kind);
    EXPECT_DOUBLE_EQ(ComputeAttributeFeature(kind, v, Value::Null()), expected);
  }
}

TEST(AttributeFeatureTest, BothPresentIndicator) {
  const Value v = Value::Of("x");
  EXPECT_DOUBLE_EQ(ComputeAttributeFeature(AttributeFeatureKind::kBothPresent,
                                           v, v),
                   1.0);
  EXPECT_DOUBLE_EQ(ComputeAttributeFeature(AttributeFeatureKind::kBothPresent,
                                           v, Value::Null()),
                   0.0);
}

TEST(AttributeFeatureTest, NumericClosenessRequiresNumbers) {
  EXPECT_DOUBLE_EQ(
      ComputeAttributeFeature(AttributeFeatureKind::kNumericCloseness,
                              Value::Of("100"), Value::Of("50")),
      0.5);
  EXPECT_DOUBLE_EQ(
      ComputeAttributeFeature(AttributeFeatureKind::kNumericCloseness,
                              Value::Of("abc"), Value::Of("50")),
      0.0);
}

TEST(AttributeFeatureTest, SharedTokensRaiseSetSimilarities) {
  const Value a = Value::Of("sony digital camera dslra200w");
  const Value similar = Value::Of("sony camera kit");
  const Value different = Value::Of("leather black case");
  for (auto kind :
       {AttributeFeatureKind::kJaccard, AttributeFeatureKind::kOverlap,
        AttributeFeatureKind::kCosine, AttributeFeatureKind::kMongeElkan,
        AttributeFeatureKind::kTrigram}) {
    EXPECT_GT(ComputeAttributeFeature(kind, a, similar),
              ComputeAttributeFeature(kind, a, different))
        << AttributeFeatureKindName(kind);
  }
}

TEST(AttributeFeatureTest, ComputeAllReturnsEnumOrder) {
  const Value a = Value::Of("alpha beta");
  const Value b = Value::Of("alpha gamma");
  std::vector<double> all = ComputeAllAttributeFeatures(a, b);
  ASSERT_EQ(all.size(), kNumAttributeFeatures);
  for (size_t k = 0; k < kNumAttributeFeatures; ++k) {
    EXPECT_DOUBLE_EQ(
        all[k],
        ComputeAttributeFeature(static_cast<AttributeFeatureKind>(k), a, b));
  }
}

}  // namespace
}  // namespace landmark
