#include <gtest/gtest.h>

#include "datagen/magellan.h"
#include "em/feature_extractor.h"
#include "em/heuristic_model.h"
#include "em/logreg_em_model.h"

namespace landmark {
namespace {

std::shared_ptr<const Schema> TwoAttrSchema() {
  return *Schema::Make({"name", "price"});
}

PairRecord MakePair(const std::shared_ptr<const Schema>& schema,
                    const std::string& l0, const std::string& l1,
                    const std::string& r0, const std::string& r1) {
  PairRecord pair;
  pair.left = *Record::Make(schema, {Value::Of(l0), Value::Of(l1)});
  pair.right = *Record::Make(schema, {Value::Of(r0), Value::Of(r1)});
  return pair;
}

TEST(FeatureExtractorTest, NamesAndLayout) {
  FeatureExtractor fx(TwoAttrSchema());
  EXPECT_EQ(fx.num_features(), 2 * kNumAttributeFeatures);
  EXPECT_EQ(fx.feature_name(0), "name_jaccard");
  EXPECT_EQ(fx.feature_name(kNumAttributeFeatures), "price_jaccard");
  EXPECT_EQ(fx.attribute_of_feature(0), 0u);
  EXPECT_EQ(fx.attribute_of_feature(kNumAttributeFeatures + 1), 1u);
}

TEST(FeatureExtractorTest, IdenticalPairMaximizesTextFeatures) {
  FeatureExtractor fx(TwoAttrSchema());
  PairRecord pair = MakePair(TwoAttrSchema(), "sony camera", "99", "sony camera", "99");
  Vector f = fx.Extract(pair);
  // Jaccard of the name attribute is feature 0.
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  ASSERT_EQ(f.size(), fx.num_features());
  for (double v : f) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(FeatureExtractorTest, BatchMatchesSingle) {
  auto schema = TwoAttrSchema();
  EmDataset dataset("t", schema);
  ASSERT_TRUE(dataset.Append(MakePair(schema, "a b", "1", "a", "1")).ok());
  ASSERT_TRUE(dataset.Append(MakePair(schema, "x", "2", "y", "3")).ok());
  FeatureExtractor fx(schema);
  Matrix batch = fx.ExtractBatch(dataset, {0, 1});
  for (size_t r = 0; r < 2; ++r) {
    Vector single = fx.Extract(dataset.pair(r));
    for (size_t c = 0; c < fx.num_features(); ++c) {
      EXPECT_DOUBLE_EQ(batch.at(r, c), single[c]);
    }
  }
}

TEST(LogRegEmModelTest, LearnsSyntheticBenchmark) {
  MagellanDatasetSpec spec = *FindMagellanSpec("S-FZ");
  EmDataset dataset = *GenerateMagellanDataset(spec);
  auto model = LogRegEmModel::Train(dataset);
  ASSERT_TRUE(model.ok());
  // The benchmark is learnable: F1 well above the random baseline.
  EXPECT_GT((*model)->report().f1, 0.6);
  EXPECT_GT((*model)->report().recall, 0.5);
}

TEST(LogRegEmModelTest, ProbabilitiesOrderedByObviousness) {
  MagellanDatasetSpec spec = *FindMagellanSpec("S-FZ");
  EmDataset dataset = *GenerateMagellanDataset(spec);
  auto model = std::move(LogRegEmModel::Train(dataset)).ValueOrDie();

  // An identical pair must score higher than a pair of unrelated entities.
  const auto& schema = dataset.entity_schema();
  PairRecord identical;
  identical.left = dataset.pair(0).left;
  identical.right = dataset.pair(0).left;
  double p_same = model->PredictProba(identical);

  PairRecord crossed;
  crossed.left = dataset.pair(0).left;
  crossed.right = dataset.pair(1).right;
  // Ensure the crossed pair differs.
  if (crossed.left == crossed.right) GTEST_SKIP();
  (void)schema;
  EXPECT_GT(p_same, 0.9);
}

TEST(LogRegEmModelTest, AttributeWeightsCoverSchema) {
  MagellanDatasetSpec spec = *FindMagellanSpec("S-BR");
  EmDataset dataset = *GenerateMagellanDataset(spec);
  auto model = std::move(LogRegEmModel::Train(dataset)).ValueOrDie();
  auto weights = model->AttributeWeights();
  ASSERT_TRUE(weights.ok());
  EXPECT_EQ(weights->size(), dataset.entity_schema()->num_attributes());
  double total = 0.0;
  for (double w : *weights) {
    EXPECT_GE(w, 0.0);
    total += w;
  }
  EXPECT_GT(total, 0.0);
}

TEST(LogRegEmModelTest, RejectsEmptyDataset) {
  EmDataset empty("e", TwoAttrSchema());
  EXPECT_FALSE(LogRegEmModel::Train(empty).ok());
}

TEST(JaccardEmModelTest, ScoresOverlapCorrectly) {
  JaccardEmModel model;
  auto schema = TwoAttrSchema();
  EXPECT_DOUBLE_EQ(
      model.PredictProba(MakePair(schema, "a b", "x", "a b", "x")), 1.0);
  EXPECT_DOUBLE_EQ(
      model.PredictProba(MakePair(schema, "a", "x", "b", "y")), 0.0);
  // Half-overlapping name, identical price -> (1/3 + 1) / 2.
  EXPECT_NEAR(model.PredictProba(MakePair(schema, "a b", "x", "b c", "x")),
              (1.0 / 3.0 + 1.0) / 2.0, 1e-12);
}

TEST(JaccardEmModelTest, RespectsAttributeWeights) {
  auto schema = TwoAttrSchema();
  JaccardEmModel name_only({1.0, 0.0});
  PairRecord pair = MakePair(schema, "a", "x", "a", "y");
  EXPECT_DOUBLE_EQ(name_only.PredictProba(pair), 1.0);
  JaccardEmModel price_only({0.0, 1.0});
  EXPECT_DOUBLE_EQ(price_only.PredictProba(pair), 0.0);
  auto weights = name_only.AttributeWeights();
  ASSERT_TRUE(weights.ok());
  EXPECT_EQ((*weights)[0], 1.0);
}

TEST(JaccardEmModelTest, NullAttributesScoreZero) {
  auto schema = TwoAttrSchema();
  JaccardEmModel model;
  PairRecord pair;
  pair.left = Record::Empty(schema);
  pair.right = Record::Empty(schema);
  EXPECT_DOUBLE_EQ(model.PredictProba(pair), 0.0);
}

TEST(EmModelTest, PredictThreshold) {
  JaccardEmModel model;
  auto schema = TwoAttrSchema();
  PairRecord same = MakePair(schema, "a", "x", "a", "x");
  PairRecord diff = MakePair(schema, "a", "x", "b", "y");
  EXPECT_EQ(model.Predict(same), MatchLabel::kMatch);
  EXPECT_EQ(model.Predict(diff), MatchLabel::kNonMatch);
  // A strict threshold flips borderline records.
  PairRecord half = MakePair(schema, "a", "x", "a", "y");  // p = 0.5
  EXPECT_EQ(model.Predict(half, 0.4), MatchLabel::kMatch);
  EXPECT_EQ(model.Predict(half, 0.6), MatchLabel::kNonMatch);
}

}  // namespace
}  // namespace landmark
