#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "data/em_dataset.h"
#include "em/feature_extractor.h"
#include "em/features.h"
#include "em/prepared_batch.h"
#include "text/token_cache.h"

namespace landmark {
namespace {

/// Value corpus covering the kinds' edge cases: nulls, empties, numbers
/// (kNumericCloseness), repeated tokens (cosine frequencies), and plain
/// text.
std::vector<Value> ValueCorpus() {
  return {
      Value::Null(),
      Value::Of(""),
      Value::Of("   "),
      Value::Of("sony cyber-shot camera"),
      Value::Of("sony camera"),
      Value::Of("a a a b"),
      Value::Of("849.99"),
      Value::Of("850"),
      Value::Of("The, quick. BROWN fox!"),
  };
}

TEST(PreparedFeaturesTest, PreparedKernelMatchesLegacyPerKindPath) {
  const std::vector<Value> corpus = ValueCorpus();
  TokenCache cache;
  for (const Value& left : corpus) {
    for (const Value& right : corpus) {
      const PreparedValue pl = PrepareValue(left, cache);
      const PreparedValue pr = PrepareValue(right, cache);
      for (size_t k = 0; k < kNumAttributeFeatures; ++k) {
        const auto kind = static_cast<AttributeFeatureKind>(k);
        // Exact comparison: the fast path promises bit-identity with the
        // legacy per-kind path, which tokenizes from scratch every call.
        EXPECT_EQ(ComputeAttributeFeature(kind, pl, pr),
                  ComputeAttributeFeature(kind, left, right))
            << AttributeFeatureKindName(kind) << "(\"" << left.text()
            << "\", \"" << right.text() << "\")";
      }
    }
  }
}

TEST(PreparedFeaturesTest, TokenizeOnceAllFeaturesMatchesPerKindPath) {
  const std::vector<Value> corpus = ValueCorpus();
  for (const Value& left : corpus) {
    for (const Value& right : corpus) {
      double out[kNumAttributeFeatures];
      ComputeAllAttributeFeatures(left, right, out);
      const std::vector<double> vec = ComputeAllAttributeFeatures(left, right);
      ASSERT_EQ(vec.size(), kNumAttributeFeatures);
      for (size_t k = 0; k < kNumAttributeFeatures; ++k) {
        const auto kind = static_cast<AttributeFeatureKind>(k);
        EXPECT_EQ(out[k], ComputeAttributeFeature(kind, left, right))
            << AttributeFeatureKindName(kind);
        EXPECT_EQ(vec[k], out[k]) << AttributeFeatureKindName(kind);
      }
    }
  }
}

TEST(PreparedFeaturesTest, PrepareValueNullCarriesNoProfile) {
  TokenCache cache;
  const Value null = Value::Null();
  const PreparedValue prepared = PrepareValue(null, cache);
  EXPECT_TRUE(prepared.is_null());
  EXPECT_EQ(prepared.tokens, nullptr);
  // Null never touches the cache: "" and null must stay distinct.
  EXPECT_EQ(cache.size(), 0u);

  const Value empty = Value::Of("");
  const PreparedValue prepared_empty = PrepareValue(empty, cache);
  EXPECT_FALSE(prepared_empty.is_null());
  ASSERT_NE(prepared_empty.tokens, nullptr);
  EXPECT_TRUE(prepared_empty.tokens->tokens.empty());
  EXPECT_EQ(cache.size(), 1u);
}

std::vector<PairRecord> TestPairs() {
  auto schema = *Schema::Make({"name", "brand", "price"});
  std::vector<PairRecord> pairs;
  auto add = [&](std::vector<Value> l, std::vector<Value> r) {
    PairRecord p;
    p.id = static_cast<int64_t>(pairs.size());
    p.left = *Record::Make(schema, std::move(l));
    p.right = *Record::Make(schema, std::move(r));
    pairs.push_back(std::move(p));
  };
  add({Value::Of("sony cyber-shot camera"), Value::Of("sony"),
       Value::Of("849.99")},
      {Value::Of("sony camera"), Value::Of("sony corp"), Value::Of("850")});
  add({Value::Of("canon eos rebel"), Value::Null(), Value::Of("1200")},
      {Value::Of("canon eos"), Value::Of("canon"), Value::Null()});
  add({Value::Of(""), Value::Of("a a b"), Value::Of("10")},
      {Value::Null(), Value::Of("b a a"), Value::Of("10.0")});
  return pairs;
}

TEST(PreparedFeaturesTest, ExtractPreparedMatchesExtract) {
  const std::vector<PairRecord> pairs = TestPairs();
  FeatureExtractor extractor(pairs.front().left.schema());

  TokenCache cache;
  PreparedPairBatch prepared(pairs, &cache);
  prepared.PrepareRange(0, pairs.size());

  std::vector<double> row(extractor.num_features());
  for (size_t p = 0; p < pairs.size(); ++p) {
    const Vector expected = extractor.Extract(pairs[p]);
    extractor.ExtractPrepared(prepared, p, row.data());
    ASSERT_EQ(expected.size(), row.size());
    for (size_t f = 0; f < row.size(); ++f) {
      EXPECT_EQ(row[f], expected[f])
          << "pair " << p << " feature " << extractor.feature_name(f);
    }
  }
}

TEST(PreparedFeaturesTest, FrozenSideSharingMatchesUnsharedPreparation) {
  // All pairs of a "unit" share the right entity (the frozen landmark);
  // sharing its PreparedValues through the context must not change any
  // feature.
  auto schema = *Schema::Make({"name", "price"});
  const Record landmark = *Record::Make(
      schema, {Value::Of("sony cyber-shot camera"), Value::Of("849.99")});
  std::vector<PairRecord> pairs;
  for (const char* varying :
       {"sony camera", "camera", "", "sony sony cyber-shot"}) {
    PairRecord p;
    p.id = static_cast<int64_t>(pairs.size());
    p.left = *Record::Make(schema, {Value::Of(varying), Value::Of("850")});
    p.right = landmark;
    pairs.push_back(std::move(p));
  }

  FeatureExtractor extractor(schema);
  TokenCache shared_cache;
  PreparedPairBatch shared(pairs, &shared_cache);
  const LandmarkFeatureContext context = MakeLandmarkFeatureContext(
      pairs.front(), EntitySide::kRight, shared_cache);
  shared.PrepareRange(0, pairs.size(), context);

  TokenCache plain_cache;
  PreparedPairBatch plain(pairs, &plain_cache);
  plain.PrepareRange(0, pairs.size());

  std::vector<double> a(extractor.num_features());
  std::vector<double> b(extractor.num_features());
  for (size_t p = 0; p < pairs.size(); ++p) {
    extractor.ExtractPrepared(shared, p, a.data());
    extractor.ExtractPrepared(plain, p, b.data());
    for (size_t f = 0; f < a.size(); ++f) {
      EXPECT_EQ(a[f], b[f])
          << "pair " << p << " feature " << extractor.feature_name(f);
    }
  }
  // The frozen side resolved once: one cache miss per landmark attribute,
  // and the shared run never re-looked them up per pair.
  EXPECT_LT(shared_cache.misses() + shared_cache.hits(),
            plain_cache.misses() + plain_cache.hits());
}

TEST(PreparedFeaturesTest, ExtractBatchMatchesRowWiseExtract) {
  const std::vector<PairRecord> pairs = TestPairs();
  auto schema = pairs.front().left.schema();
  EmDataset dataset("prepared-features-test", schema);
  for (const PairRecord& p : pairs) {
    PairRecord copy = p;
    ASSERT_TRUE(dataset.Append(std::move(copy)).ok());
  }
  FeatureExtractor extractor(schema);

  std::vector<size_t> indices;
  for (size_t i = 0; i < dataset.size(); ++i) indices.push_back(i);
  const Matrix x = extractor.ExtractBatch(dataset, indices);
  ASSERT_EQ(x.rows(), dataset.size());
  ASSERT_EQ(x.cols(), extractor.num_features());
  for (size_t r = 0; r < dataset.size(); ++r) {
    const Vector expected = extractor.Extract(dataset.pair(r));
    for (size_t f = 0; f < expected.size(); ++f) {
      EXPECT_EQ(x.row(r)[f], expected[f]) << "row " << r << " feature " << f;
    }
  }
}

}  // namespace
}  // namespace landmark
