// Null / dirty-data robustness across the EM substrate: the dirty Magellan
// variants leave many attributes null, and every component must degrade
// gracefully rather than crash or emit NaNs.

#include <cmath>

#include <gtest/gtest.h>

#include "core/landmark_explainer.h"
#include "core/lime_explainer.h"
#include "datagen/magellan.h"
#include "em/feature_extractor.h"
#include "em/logreg_em_model.h"

namespace landmark {
namespace {

std::shared_ptr<const Schema> TestSchema() {
  return *Schema::Make({"title", "authors", "year"});
}

TEST(NullHandlingTest, FeatureExtractionOnAllNullPairIsFinite) {
  FeatureExtractor fx(TestSchema());
  PairRecord pair;
  pair.left = Record::Empty(TestSchema());
  pair.right = Record::Empty(TestSchema());
  Vector f = fx.Extract(pair);
  for (double v : f) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(NullHandlingTest, HalfNullPairExtractsFinite) {
  FeatureExtractor fx(TestSchema());
  PairRecord pair;
  pair.left = *Record::Make(
      TestSchema(),
      {Value::Of("efficient query processing"), Value::Null(), Value::Of("2001")});
  pair.right = Record::Empty(TestSchema());
  Vector f = fx.Extract(pair);
  for (double v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(NullHandlingTest, DirtyDatasetTrainsAndExplains) {
  // End-to-end on the dirtiest generated data: D-IA moves values around and
  // nulls sources; the model and both explainer families must cope.
  EmDataset dataset = *GenerateMagellanDataset(*FindMagellanSpec("D-IA"));
  auto model = std::move(LogRegEmModel::Train(dataset)).ValueOrDie();
  EXPECT_GT(model->report().f1, 0.5);

  ExplainerOptions options;
  options.num_samples = 96;
  LandmarkExplainer landmark_explainer(GenerationStrategy::kAuto, options);
  LimeExplainer lime(options);

  Rng rng(9);
  size_t explained = 0;
  for (MatchLabel label : {MatchLabel::kMatch, MatchLabel::kNonMatch}) {
    for (size_t idx : dataset.SampleByLabel(label, 5, rng)) {
      for (const PairExplainer* explainer :
           {static_cast<const PairExplainer*>(&landmark_explainer),
            static_cast<const PairExplainer*>(&lime)}) {
        auto explanations = explainer->Explain(*model, dataset.pair(idx));
        if (!explanations.ok()) continue;  // a fully-null side is legitimate
        for (const Explanation& exp : *explanations) {
          for (const TokenWeight& tw : exp.token_weights) {
            EXPECT_TRUE(std::isfinite(tw.weight));
          }
          ++explained;
        }
      }
    }
  }
  EXPECT_GT(explained, 0u);
}

TEST(NullHandlingTest, ExplainingAPairWithOneEmptySideFailsCleanly) {
  EmDataset dataset = *GenerateMagellanDataset(*FindMagellanSpec("S-BR"));
  auto model = std::move(LogRegEmModel::Train(dataset)).ValueOrDie();
  PairRecord pair = dataset.pair(0);
  pair.right = Record::Empty(dataset.entity_schema());

  // Landmark with the empty side as *varying* has no tokens -> clean error;
  // with the empty side as *landmark* it still works.
  ExplainerOptions options;
  options.num_samples = 64;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, options);
  auto left_landmark =
      explainer.ExplainWithLandmark(*model, pair, EntitySide::kLeft);
  EXPECT_FALSE(left_landmark.ok());  // varying (right) side is empty
  auto right_landmark =
      explainer.ExplainWithLandmark(*model, pair, EntitySide::kRight);
  EXPECT_TRUE(right_landmark.ok());
}

}  // namespace
}  // namespace landmark
