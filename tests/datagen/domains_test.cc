#include "datagen/domains.h"

#include <cmath>
#include <cctype>
#include <set>

#include <gtest/gtest.h>

#include "text/tokenize.h"

namespace landmark {
namespace {

const MagellanDomain kAllDomains[] = {
    MagellanDomain::kBeer,
    MagellanDomain::kMusic,
    MagellanDomain::kRestaurant,
    MagellanDomain::kCitationClean,
    MagellanDomain::kCitationNoisy,
    MagellanDomain::kProductAmazonGoogle,
    MagellanDomain::kProductWalmartAmazon,
    MagellanDomain::kProductAbtBuy,
};

class DomainTest : public ::testing::TestWithParam<MagellanDomain> {};

TEST_P(DomainTest, GeneratesNonNullEntities) {
  auto gen = MakeEntityGenerator(GetParam());
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    Record e = gen->Generate(rng);
    EXPECT_TRUE(e.schema()->Equals(*gen->schema()));
    for (size_t a = 0; a < e.num_attributes(); ++a) {
      EXPECT_FALSE(e.value(a).is_null()) << "attribute " << a;
      EXPECT_FALSE(e.value(a).text().empty());
    }
  }
}

TEST_P(DomainTest, EntitiesAreDiverse) {
  auto gen = MakeEntityGenerator(GetParam());
  Rng rng(2);
  std::set<std::string> primaries;
  for (int i = 0; i < 100; ++i) {
    primaries.insert(gen->Generate(rng).value(0).text());
  }
  EXPECT_GT(primaries.size(), 60u);
}

TEST_P(DomainTest, SiblingsShareContextButDiffer) {
  auto gen = MakeEntityGenerator(GetParam());
  Rng rng(3);
  size_t shared_token_pairs = 0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    Record base = gen->Generate(rng);
    Record sibling = gen->GenerateSibling(base, rng);
    EXPECT_TRUE(sibling.schema()->Equals(*gen->schema()));
    // Count pairs where any attribute shares a token.
    bool shares = false;
    for (size_t a = 0; a < base.num_attributes() && !shares; ++a) {
      auto bt = NormalizedTokens(base.value(a).text());
      auto st = NormalizedTokens(sibling.value(a).text());
      for (const auto& x : bt) {
        for (const auto& y : st) {
          if (x == y) {
            shares = true;
            break;
          }
        }
        if (shares) break;
      }
    }
    shared_token_pairs += shares;
  }
  // Hard negatives must overlap with the base entity most of the time.
  EXPECT_GT(shared_token_pairs, trials * 6 / 10);
}

INSTANTIATE_TEST_SUITE_P(
    AllDomains, DomainTest, ::testing::ValuesIn(kAllDomains),
    [](const ::testing::TestParamInfo<MagellanDomain>& info) {
      switch (info.param) {
        case MagellanDomain::kBeer: return std::string("Beer");
        case MagellanDomain::kMusic: return std::string("Music");
        case MagellanDomain::kRestaurant: return std::string("Restaurant");
        case MagellanDomain::kCitationClean: return std::string("CitationClean");
        case MagellanDomain::kCitationNoisy: return std::string("CitationNoisy");
        case MagellanDomain::kProductAmazonGoogle: return std::string("ProductAG");
        case MagellanDomain::kProductWalmartAmazon: return std::string("ProductWA");
        case MagellanDomain::kProductAbtBuy: return std::string("ProductAB");
      }
      return std::string("Unknown");
    });

TEST(DomainSchemaTest, SchemasMatchTheRealMagellanDatasets) {
  EXPECT_EQ(MakeEntityGenerator(MagellanDomain::kBeer)->schema()
                ->attribute_names(),
            (std::vector<std::string>{"beer_name", "brew_factory_name",
                                      "style", "abv"}));
  EXPECT_EQ(MakeEntityGenerator(MagellanDomain::kCitationClean)->schema()
                ->attribute_names(),
            (std::vector<std::string>{"title", "authors", "venue", "year"}));
  EXPECT_EQ(MakeEntityGenerator(MagellanDomain::kProductAmazonGoogle)
                ->schema()->attribute_names(),
            (std::vector<std::string>{"title", "manufacturer", "price"}));
  EXPECT_EQ(MakeEntityGenerator(MagellanDomain::kProductWalmartAmazon)
                ->schema()->attribute_names(),
            (std::vector<std::string>{"title", "category", "brand", "modelno",
                                      "price"}));
  EXPECT_EQ(MakeEntityGenerator(MagellanDomain::kProductAbtBuy)->schema()
                ->attribute_names(),
            (std::vector<std::string>{"name", "description", "price"}));
  EXPECT_EQ(MakeEntityGenerator(MagellanDomain::kMusic)->schema()
                ->attribute_names(),
            (std::vector<std::string>{"song_name", "artist_name", "album_name",
                                      "genre", "price", "released"}));
  EXPECT_EQ(MakeEntityGenerator(MagellanDomain::kRestaurant)->schema()
                ->attribute_names(),
            (std::vector<std::string>{"name", "addr", "city", "phone", "type",
                                      "class"}));
}

TEST(RandomModelNumberTest, AlphanumericShape) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    std::string m = RandomModelNumber(rng);
    EXPECT_GE(m.size(), 4u);
    bool has_letter = false, has_digit = false;
    for (char c : m) {
      has_letter |= std::isalpha(static_cast<unsigned char>(c)) != 0;
      has_digit |= std::isdigit(static_cast<unsigned char>(c)) != 0;
    }
    EXPECT_TRUE(has_letter);
    EXPECT_TRUE(has_digit);
  }
}

TEST(DomainTest, AbtBuyDescriptionsAreLong) {
  // The paper classifies Abt-Buy as "Textual": long free-text descriptions.
  auto gen = MakeEntityGenerator(MagellanDomain::kProductAbtBuy);
  Rng rng(5);
  double total_tokens = 0;
  for (int i = 0; i < 50; ++i) {
    Record e = gen->Generate(rng);
    total_tokens += WordTokens(e.value(1).text()).size();
  }
  EXPECT_GT(total_tokens / 50.0, 8.0);
}

}  // namespace
}  // namespace landmark
