#include "datagen/corruptions.h"

#include <gtest/gtest.h>

#include "text/tokenize.h"

namespace landmark {
namespace {

TEST(TypoTest, ChangesButKeepsPlausibleLength) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    std::string out = ApplyTypo("camera", rng);
    EXPECT_GE(out.size(), 5u);
    EXPECT_LE(out.size(), 7u);
  }
}

TEST(TypoTest, SingleCharacterUnchanged) {
  Rng rng(2);
  EXPECT_EQ(ApplyTypo("a", rng), "a");
  EXPECT_EQ(ApplyTypo("", rng), "");
}

TEST(AbbreviateTest, FirstLetterPlusDot) {
  EXPECT_EQ(Abbreviate("john"), "j.");
  EXPECT_EQ(Abbreviate("ab"), "ab");  // too short
}

TEST(CorruptValueTest, NullStaysNull) {
  Rng rng(3);
  CorruptionOptions options;
  EXPECT_TRUE(CorruptValue(Value::Null(), options, rng).is_null());
}

TEST(CorruptValueTest, ZeroProbabilitiesAreIdentity) {
  Rng rng(4);
  CorruptionOptions none;
  none.typo_prob = none.drop_prob = none.abbreviate_prob = none.swap_prob =
      none.null_prob = 0.0;
  none.numeric_jitter_prob = 0.0;
  const Value v = Value::Of("sony digital camera");
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(CorruptValue(v, none, rng), v);
  }
}

TEST(CorruptValueTest, NeverProducesEmptyText) {
  Rng rng(5);
  CorruptionOptions aggressive;
  aggressive.drop_prob = 0.95;
  aggressive.null_prob = 0.0;
  const Value v = Value::Of("one two three");
  for (int i = 0; i < 200; ++i) {
    Value out = CorruptValue(v, aggressive, rng);
    ASSERT_FALSE(out.is_null());
    EXPECT_FALSE(WordTokens(out.text()).empty());
  }
}

TEST(CorruptValueTest, NumericValuesStayNumeric) {
  Rng rng(6);
  CorruptionOptions options;
  options.null_prob = 0.0;
  const Value v = Value::Of("849.99");
  for (int i = 0; i < 100; ++i) {
    Value out = CorruptValue(v, options, rng);
    ASSERT_TRUE(out.AsDouble().has_value());
    // Jitter stays within 2%.
    EXPECT_NEAR(*out.AsDouble(), 849.99, 849.99 * 0.021);
  }
}

TEST(CorruptValueTest, CorruptedTextSharesTokensWithOriginal) {
  Rng rng(7);
  CorruptionOptions options;  // defaults
  const Value v = Value::Of("alpha beta gamma delta epsilon zeta");
  int shared_total = 0, trials = 100;
  for (int i = 0; i < trials; ++i) {
    Value out = CorruptValue(v, options, rng);
    auto orig = NormalizedTokens(v.text());
    auto corr = NormalizedTokens(out.text());
    for (const auto& t : corr) {
      for (const auto& o : orig) {
        if (t == o) {
          ++shared_total;
          goto next_trial;
        }
      }
    }
  next_trial:;
  }
  // Nearly every corruption keeps at least one original token.
  EXPECT_GT(shared_total, trials * 8 / 10);
}

TEST(CorruptEntityTest, PreservesSchema) {
  Rng rng(8);
  auto schema = *Schema::Make({"a", "b"});
  Record entity = *Record::Make(schema, {Value::Of("one two"), Value::Of("3")});
  Record out = CorruptEntity(entity, CorruptionOptions{}, rng);
  EXPECT_TRUE(out.schema()->Equals(*schema));
  EXPECT_EQ(out.num_attributes(), 2u);
}

TEST(MakeDirtyPairTest, MovesValuesIntoTargetAttribute) {
  Rng rng(9);
  auto schema = *Schema::Make({"title", "authors", "year"});
  PairRecord pair;
  pair.left = *Record::Make(
      schema, {Value::Of("t"), Value::Of("alice"), Value::Of("1999")});
  pair.right = *Record::Make(
      schema, {Value::Of("u"), Value::Of("bob"), Value::Of("2001")});
  MakeDirtyPair(pair, /*move_prob=*/1.0, /*target_attr=*/0, rng);
  // Everything moved into the title; sources nulled.
  EXPECT_EQ(pair.left.value(0).text(), "t alice 1999");
  EXPECT_TRUE(pair.left.value(1).is_null());
  EXPECT_TRUE(pair.left.value(2).is_null());
  EXPECT_EQ(pair.right.value(0).text(), "u bob 2001");
}

TEST(MakeDirtyPairTest, ZeroProbabilityIsIdentity) {
  Rng rng(10);
  auto schema = *Schema::Make({"title", "authors"});
  PairRecord pair;
  pair.left = *Record::Make(schema, {Value::Of("t"), Value::Of("a")});
  pair.right = *Record::Make(schema, {Value::Of("u"), Value::Of("b")});
  PairRecord copy = pair;
  MakeDirtyPair(pair, 0.0, 0, rng);
  EXPECT_EQ(pair.left, copy.left);
  EXPECT_EQ(pair.right, copy.right);
}

TEST(MakeDirtyPairTest, TokenMultisetIsPreserved) {
  // Dirtying moves values around but never invents or deletes tokens.
  Rng rng(11);
  auto schema = *Schema::Make({"title", "authors", "venue"});
  PairRecord pair;
  pair.left = *Record::Make(
      schema, {Value::Of("alpha beta"), Value::Of("carol"), Value::Of("vldb")});
  pair.right = *Record::Make(
      schema, {Value::Of("gamma"), Value::Of("dave"), Value::Of("icde")});
  auto all_tokens = [](const Record& r) {
    std::multiset<std::string> tokens;
    for (size_t a = 0; a < r.num_attributes(); ++a) {
      if (r.value(a).is_null()) continue;
      for (const auto& t : WordTokens(r.value(a).text())) tokens.insert(t);
    }
    return tokens;
  };
  auto before_left = all_tokens(pair.left);
  auto before_right = all_tokens(pair.right);
  MakeDirtyPair(pair, 0.5, 0, rng);
  EXPECT_EQ(all_tokens(pair.left), before_left);
  EXPECT_EQ(all_tokens(pair.right), before_right);
}

}  // namespace
}  // namespace landmark
