#include "datagen/magellan.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/dataset_io.h"
#include "text/similarity.h"
#include "text/tokenize.h"

namespace landmark {
namespace {

TEST(MagellanBenchmarkTest, HasAllTwelveDatasetsOfTable1) {
  const auto& specs = MagellanBenchmark();
  ASSERT_EQ(specs.size(), 12u);
  // Spot-check the published sizes and match rates.
  auto br = *FindMagellanSpec("S-BR");
  EXPECT_EQ(br.size, 450u);
  EXPECT_DOUBLE_EQ(br.match_percent, 15.11);
  auto dg = *FindMagellanSpec("S-DG");
  EXPECT_EQ(dg.size, 28707u);
  EXPECT_DOUBLE_EQ(dg.match_percent, 18.63);
  auto wa = *FindMagellanSpec("D-WA");
  EXPECT_TRUE(wa.dirty);
  EXPECT_EQ(wa.size, 10242u);
  EXPECT_FALSE(FindMagellanSpec("X-YZ").ok());
}

TEST(MagellanBenchmarkTest, CodesAreUnique) {
  std::set<std::string> codes;
  for (const auto& spec : MagellanBenchmark()) {
    EXPECT_TRUE(codes.insert(spec.code).second) << spec.code;
  }
}

class GenerateDatasetTest
    : public ::testing::TestWithParam<MagellanDatasetSpec> {};

TEST_P(GenerateDatasetTest, SizeAndMatchRateFollowTable1) {
  MagellanDatasetSpec spec = GetParam();
  MagellanGenOptions options;
  options.size_scale = spec.size > 2000 ? 0.1 : 1.0;  // keep tests fast
  EmDataset dataset = *GenerateMagellanDataset(spec, options);
  EmDatasetStats stats = dataset.Stats();
  const size_t expected_size = static_cast<size_t>(
      std::lround(spec.size * options.size_scale));
  EXPECT_NEAR(static_cast<double>(stats.size),
              static_cast<double>(expected_size), 2.0);
  EXPECT_NEAR(stats.match_percent, spec.match_percent, 1.5);
}

TEST_P(GenerateDatasetTest, MatchesOverlapMoreThanNonMatches) {
  MagellanDatasetSpec spec = GetParam();
  MagellanGenOptions options;
  options.size_scale = spec.size > 2000 ? 0.05 : 1.0;
  EmDataset dataset = *GenerateMagellanDataset(spec, options);

  auto mean_jaccard = [&](MatchLabel label) {
    double total = 0.0;
    size_t n = 0;
    for (size_t i : dataset.IndicesWithLabel(label)) {
      const PairRecord& p = dataset.pair(i);
      for (size_t a = 0; a < p.left.num_attributes(); ++a) {
        if (p.left.value(a).is_null() || p.right.value(a).is_null()) continue;
        total += JaccardSimilarity(NormalizedTokens(p.left.value(a).text()),
                                   NormalizedTokens(p.right.value(a).text()));
        ++n;
      }
    }
    return n == 0 ? 0.0 : total / static_cast<double>(n);
  };
  EXPECT_GT(mean_jaccard(MatchLabel::kMatch),
            mean_jaccard(MatchLabel::kNonMatch) + 0.15);
}

TEST_P(GenerateDatasetTest, DeterministicInSeed) {
  MagellanDatasetSpec spec = GetParam();
  MagellanGenOptions options;
  options.size_scale = spec.size > 2000 ? 0.02 : 0.5;
  EmDataset a = *GenerateMagellanDataset(spec, options);
  EmDataset b = *GenerateMagellanDataset(spec, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.pair(i).left, b.pair(i).left);
    EXPECT_EQ(a.pair(i).right, b.pair(i).right);
    EXPECT_EQ(a.pair(i).label, b.pair(i).label);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, GenerateDatasetTest, ::testing::ValuesIn(MagellanBenchmark()),
    [](const ::testing::TestParamInfo<MagellanDatasetSpec>& info) {
      std::string name = info.param.code;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(GenerateDatasetTest, DirtyDatasetsHaveValuesInPrimaryAttribute) {
  // The dirty transform moves non-primary values into attribute 0 and leaves
  // nulls behind; structured variants have (almost) no nulls beyond the
  // corruption noise.
  MagellanDatasetSpec clean = *FindMagellanSpec("S-IA");
  MagellanDatasetSpec dirty = *FindMagellanSpec("D-IA");
  EmDataset clean_ds = *GenerateMagellanDataset(clean);
  EmDataset dirty_ds = *GenerateMagellanDataset(dirty);

  auto null_fraction = [](const EmDataset& d) {
    size_t nulls = 0, cells = 0;
    for (const auto& p : d.pairs()) {
      for (size_t a = 1; a < p.left.num_attributes(); ++a) {
        nulls += p.left.value(a).is_null();
        nulls += p.right.value(a).is_null();
        cells += 2;
      }
    }
    return static_cast<double>(nulls) / static_cast<double>(cells);
  };
  EXPECT_LT(null_fraction(clean_ds), 0.1);
  EXPECT_GT(null_fraction(dirty_ds), 0.35);  // ~50% move probability
}

TEST(GenerateDatasetTest, DistinctSeedsGiveDistinctData) {
  MagellanDatasetSpec spec = *FindMagellanSpec("S-BR");
  MagellanDatasetSpec other = spec;
  other.seed = spec.seed + 1;
  EmDataset a = *GenerateMagellanDataset(spec);
  EmDataset b = *GenerateMagellanDataset(other);
  size_t differing = 0;
  for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    differing += !(a.pair(i).left == b.pair(i).left);
  }
  EXPECT_GT(differing, a.size() / 2);
}

TEST(GenerateDatasetTest, RejectsBadScale) {
  MagellanGenOptions options;
  options.size_scale = 0.0;
  EXPECT_FALSE(
      GenerateMagellanDataset(*FindMagellanSpec("S-BR"), options).ok());
}

TEST(GenerateDatasetTest, RoundTripsThroughCsv) {
  MagellanDatasetSpec spec = *FindMagellanSpec("S-BR");
  EmDataset dataset = *GenerateMagellanDataset(spec);
  auto loaded = EmDatasetFromCsv(EmDatasetToCsv(dataset), spec.code);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(loaded->pair(i).left, dataset.pair(i).left);
    EXPECT_EQ(loaded->pair(i).label, dataset.pair(i).label);
  }
}

}  // namespace
}  // namespace landmark
