#include "datagen/word_banks.h"

#include <set>

#include <gtest/gtest.h>

namespace landmark {
namespace {

TEST(WordBanksTest, AllPoolsAreNonEmptyAndLowercase) {
  const std::span<const std::string_view> pools[] = {
      words::FirstNames(),          words::LastNames(),
      words::ProductBrands(),       words::ProductNouns(),
      words::ProductAdjectives(),   words::ProductCategories(),
      words::SpecUnits(),           words::BeerStyleWords(),
      words::BeerNameWords(),       words::BrewerySuffixes(),
      words::SongWords(),           words::Genres(),
      words::AlbumWords(),          words::RestaurantNameWords(),
      words::RestaurantNouns(),     words::CuisineTypes(),
      words::StreetNames(),         words::Cities(),
      words::PaperTitleWords(),     words::VenuesCurated(),
      words::VenuesNoisy(),
  };
  for (const auto& pool : pools) {
    ASSERT_FALSE(pool.empty());
    for (std::string_view word : pool) {
      EXPECT_FALSE(word.empty());
      for (char c : word) {
        EXPECT_FALSE(c >= 'A' && c <= 'Z')
            << "uppercase in bank word: " << word;
      }
    }
  }
}

TEST(WordBanksTest, PoolsHaveNoDuplicates) {
  for (const auto& pool :
       {words::ProductBrands(), words::PaperTitleWords(), words::Genres()}) {
    std::set<std::string_view> distinct(pool.begin(), pool.end());
    EXPECT_EQ(distinct.size(), pool.size());
  }
}

TEST(WordBanksTest, VenuePoolsModelTheDblpAsymmetry) {
  // The GoogleScholar side has a larger, messier venue vocabulary than the
  // curated ACM side — that asymmetry is what distinguishes S-DA from S-DG.
  EXPECT_GT(words::VenuesNoisy().size(), words::VenuesCurated().size());
}

TEST(PickWordTest, DeterministicAndInPool) {
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) {
    std::string_view wa = PickWord(words::ProductNouns(), a);
    std::string_view wb = PickWord(words::ProductNouns(), b);
    EXPECT_EQ(wa, wb);
    bool found = false;
    for (std::string_view w : words::ProductNouns()) found |= w == wa;
    EXPECT_TRUE(found);
  }
}

TEST(PickWordTest, CoversThePool) {
  Rng rng(6);
  std::set<std::string_view> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(PickWord(words::Genres(), rng));
  }
  EXPECT_EQ(seen.size(), words::Genres().size());
}

}  // namespace
}  // namespace landmark
