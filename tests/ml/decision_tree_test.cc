#include "ml/decision_tree.h"

#include <cmath>

#include <gtest/gtest.h>

namespace landmark {
namespace {

/// XOR-ish dataset: y = 1 iff exactly one of (x0 > 0.5, x1 > 0.5). Linear
/// models fail on it; trees should nail it.
void MakeXor(size_t n, Rng& rng, Matrix& x, std::vector<int>& y) {
  x = Matrix(n, 2);
  y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.NextDouble();
    const double b = rng.NextDouble();
    x.at(i, 0) = a;
    x.at(i, 1) = b;
    y[i] = (a > 0.5) != (b > 0.5);
  }
}

TEST(DecisionTreeTest, LearnsAxisAlignedSplit) {
  Matrix x(20, 1);
  std::vector<int> y(20);
  for (size_t i = 0; i < 20; ++i) {
    x.at(i, 0) = static_cast<double>(i);
    y[i] = i >= 10;
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y, {}, {}).ok());
  EXPECT_DOUBLE_EQ(tree.PredictProba({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(tree.PredictProba({15.0}), 1.0);
  EXPECT_LE(tree.depth(), 2);
}

TEST(DecisionTreeTest, SolvesXor) {
  Rng rng(1);
  Matrix x;
  std::vector<int> y;
  MakeXor(400, rng, x, y);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y, {}, {}).ok());
  size_t correct = 0;
  for (size_t i = 0; i < x.rows(); ++i) {
    const int pred = tree.PredictProba({x.at(i, 0), x.at(i, 1)}) >= 0.5;
    correct += pred == y[i];
  }
  EXPECT_GT(static_cast<double>(correct) / x.rows(), 0.95);
}

TEST(DecisionTreeTest, MaxDepthLimitsTheTree) {
  Rng rng(2);
  Matrix x;
  std::vector<int> y;
  MakeXor(200, rng, x, y);
  DecisionTreeOptions options;
  options.max_depth = 1;  // a stump cannot represent XOR
  DecisionTree stump;
  ASSERT_TRUE(stump.Fit(x, y, {}, options).ok());
  EXPECT_LE(stump.depth(), 1);
}

TEST(DecisionTreeTest, SampleWeightsChangeLeafProbabilities) {
  // Same feature value, conflicting labels: the leaf probability follows
  // the weights.
  Matrix x(2, 1);
  x.at(0, 0) = 1.0;
  x.at(1, 0) = 1.0;
  std::vector<int> y = {0, 1};
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y, {1.0, 3.0}, {}).ok());
  EXPECT_NEAR(tree.PredictProba({1.0}), 0.75, 1e-12);
}

TEST(DecisionTreeTest, FeatureImportancesIdentifyTheSignal) {
  Rng rng(3);
  const size_t n = 300;
  Matrix x(n, 3);
  std::vector<int> y(n);
  for (size_t i = 0; i < n; ++i) {
    x.at(i, 0) = rng.NextDouble();          // noise
    x.at(i, 1) = rng.NextDouble();          // signal
    x.at(i, 2) = rng.NextDouble();          // noise
    y[i] = x.at(i, 1) > 0.4;
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y, {}, {}).ok());
  const auto& imp = tree.feature_importances();
  EXPECT_GT(imp[1], imp[0] * 5);
  EXPECT_GT(imp[1], imp[2] * 5);
}

TEST(DecisionTreeTest, SplitsBetweenAdjacentDoubles) {
  // Regression test: with two adjacent representable doubles the midpoint
  // rounds up to the larger value, which used to leave the right partition
  // empty and trip a CHECK. The threshold must separate them exactly.
  const double hi = 1.0;
  const double lo = std::nextafter(hi, 0.0);
  Matrix x(8, 1);
  std::vector<int> y(8);
  for (size_t i = 0; i < 8; ++i) {
    x.at(i, 0) = i < 4 ? lo : hi;
    y[i] = i >= 4;
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y, {}, {}).ok());
  EXPECT_DOUBLE_EQ(tree.PredictProba({lo}), 0.0);
  EXPECT_DOUBLE_EQ(tree.PredictProba({hi}), 1.0);
}

TEST(DecisionTreeTest, RejectsBadInput) {
  DecisionTree tree;
  Matrix x(2, 1);
  EXPECT_FALSE(tree.Fit(x, {1}, {}, {}).ok());
  EXPECT_FALSE(tree.Fit(x, {0, 2}, {}, {}).ok());
  EXPECT_FALSE(tree.Fit(x, {0, 1}, {1.0}, {}).ok());
  EXPECT_FALSE(tree.Fit(Matrix(0, 0), {}, {}, {}).ok());
}

TEST(RandomForestTest, SolvesXorAndBeatsAStump) {
  Rng rng(4);
  Matrix x;
  std::vector<int> y;
  MakeXor(600, rng, x, y);
  RandomForest forest;
  RandomForestOptions options;
  options.num_trees = 15;
  ASSERT_TRUE(forest.Fit(x, y, options).ok());
  EXPECT_EQ(forest.num_trees(), 15u);
  size_t correct = 0;
  for (size_t i = 0; i < x.rows(); ++i) {
    const int pred = forest.PredictProba({x.at(i, 0), x.at(i, 1)}) >= 0.5;
    correct += pred == y[i];
  }
  EXPECT_GT(static_cast<double>(correct) / x.rows(), 0.9);
}

TEST(RandomForestTest, ProbabilitiesAreAveragedOverTrees) {
  Rng rng(5);
  Matrix x;
  std::vector<int> y;
  MakeXor(200, rng, x, y);
  RandomForest forest;
  RandomForestOptions options;
  options.num_trees = 9;
  ASSERT_TRUE(forest.Fit(x, y, options).ok());
  const double p = forest.PredictProba({0.2, 0.2});
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(RandomForestTest, FeatureImportancesNormalized) {
  Rng rng(6);
  Matrix x;
  std::vector<int> y;
  MakeXor(300, rng, x, y);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(x, y, {}).ok());
  auto imp = forest.FeatureImportances();
  double total = 0.0;
  for (double v : imp) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RandomForestTest, DeterministicInSeed) {
  Rng rng(7);
  Matrix x;
  std::vector<int> y;
  MakeXor(200, rng, x, y);
  RandomForestOptions options;
  options.num_trees = 5;
  RandomForest a, b;
  ASSERT_TRUE(a.Fit(x, y, options).ok());
  ASSERT_TRUE(b.Fit(x, y, options).ok());
  for (double v : {0.1, 0.3, 0.6, 0.9}) {
    EXPECT_DOUBLE_EQ(a.PredictProba({v, 1.0 - v}),
                     b.PredictProba({v, 1.0 - v}));
  }
}

TEST(RandomForestTest, SampleWeightBiasesPredictions) {
  // All-positive weights on class 1 push the probability up.
  Matrix x(10, 1);
  std::vector<int> y(10);
  for (size_t i = 0; i < 10; ++i) {
    x.at(i, 0) = 1.0;  // indistinguishable features
    y[i] = i < 5;
  }
  RandomForestOptions options;
  options.num_trees = 20;
  RandomForest balanced, biased;
  ASSERT_TRUE(balanced.Fit(x, y, options).ok());
  std::vector<double> w(10, 1.0);
  for (size_t i = 0; i < 5; ++i) w[i] = 10.0;  // upweight positives
  ASSERT_TRUE(biased.Fit(x, y, options, w).ok());
  EXPECT_GT(biased.PredictProba({1.0}), balanced.PredictProba({1.0}));
}

TEST(RandomForestTest, RejectsBadOptions) {
  Matrix x(4, 1);
  std::vector<int> y = {0, 1, 0, 1};
  for (size_t i = 0; i < 4; ++i) x.at(i, 0) = static_cast<double>(i);
  RandomForest forest;
  RandomForestOptions options;
  options.num_trees = 0;
  EXPECT_FALSE(forest.Fit(x, y, options).ok());
  options.num_trees = 3;
  options.subsample = 0.0;
  EXPECT_FALSE(forest.Fit(x, y, options).ok());
}

}  // namespace
}  // namespace landmark
