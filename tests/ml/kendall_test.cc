#include "ml/kendall.h"

#include <cmath>

#include <gtest/gtest.h>

namespace landmark {
namespace {

TEST(KendallTauBTest, PerfectAgreementAndReversal) {
  EXPECT_DOUBLE_EQ(KendallTauB({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0);
  EXPECT_DOUBLE_EQ(KendallTauB({1, 2, 3, 4}, {40, 30, 20, 10}), -1.0);
}

TEST(KendallTauBTest, KnownValue) {
  // 5 concordant, 1 discordant of 6 pairs -> (5-1)/6.
  EXPECT_NEAR(KendallTauB({1, 2, 3, 4}, {1, 3, 2, 4}), 4.0 / 6.0, 1e-12);
}

TEST(KendallTauBTest, TieCorrection) {
  // x has one tied pair; it is excluded from the x pair count.
  // x = {1,1,2}: pairs not tied in x: (0,2),(1,2) -> 2. y = {1,2,3}: 3 pairs.
  // concordant among considered: both + -> num = 2; tau = 2/sqrt(2*3).
  EXPECT_NEAR(KendallTauB({1, 1, 2}, {1, 2, 3}), 2.0 / std::sqrt(6.0), 1e-12);
}

TEST(KendallTauBTest, ConstantInputGivesZero) {
  EXPECT_DOUBLE_EQ(KendallTauB({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(KendallTauB({1, 2, 3}, {5, 5, 5}), 0.0);
}

TEST(WeightedKendallTauTest, PerfectAgreementAndReversal) {
  EXPECT_NEAR(WeightedKendallTau({3, 2, 1}, {30, 20, 10}), 1.0, 1e-12);
  EXPECT_NEAR(WeightedKendallTau({3, 2, 1}, {10, 20, 30}), -1.0, 1e-12);
}

TEST(WeightedKendallTauTest, HandComputedValue) {
  // x = {3,2,1}, y = {2,3,1}: both rank directions give
  // num = -1.5 + 4/3 + 5/6 = 2/3, den = 11/3  ->  tau = 2/11.
  EXPECT_NEAR(WeightedKendallTau({3, 2, 1}, {2, 3, 1}), 2.0 / 11.0, 1e-12);
}

TEST(WeightedKendallTauTest, TopDisagreementCostsMoreThanTailDisagreement) {
  // Swapping the two most important elements must lower tau more than
  // swapping the two least important ones.
  const std::vector<double> base = {5, 4, 3, 2, 1};
  const double top_swap = WeightedKendallTau(base, {4, 5, 3, 2, 1});
  const double tail_swap = WeightedKendallTau(base, {5, 4, 3, 1, 2});
  EXPECT_LT(top_swap, tail_swap);
  EXPECT_LT(top_swap, 1.0);
  EXPECT_LT(tail_swap, 1.0);
}

TEST(WeightedKendallTauTest, InvariantUnderMonotoneTransform) {
  const std::vector<double> x = {0.3, 0.1, 0.9, 0.5};
  const std::vector<double> y = {1.0, 0.2, 0.8, 0.4};
  std::vector<double> x_scaled;
  for (double v : x) x_scaled.push_back(2.0 * v + 10.0);
  EXPECT_NEAR(WeightedKendallTau(x, y), WeightedKendallTau(x_scaled, y),
              1e-12);
}

TEST(WeightedKendallTauTest, SymmetricInArguments) {
  const std::vector<double> x = {0.3, 0.1, 0.9, 0.5, 0.2};
  const std::vector<double> y = {1.0, 0.2, 0.8, 0.4, 0.9};
  EXPECT_NEAR(WeightedKendallTau(x, y), WeightedKendallTau(y, x), 1e-12);
}

TEST(WeightedKendallTauTest, RangeOnRandomInputs) {
  std::vector<double> x, y;
  for (int i = 0; i < 10; ++i) {
    x.push_back(static_cast<double>((i * 37) % 11));
    y.push_back(static_cast<double>((i * 17 + 3) % 7));
  }
  const double tau = WeightedKendallTau(x, y);
  EXPECT_GE(tau, -1.0);
  EXPECT_LE(tau, 1.0);
}

}  // namespace
}  // namespace landmark
