#include "ml/logistic_regression.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace landmark {
namespace {

TEST(SigmoidTest, KnownValuesAndStability) {
  EXPECT_DOUBLE_EQ(LogisticRegression::Sigmoid(0.0), 0.5);
  EXPECT_NEAR(LogisticRegression::Sigmoid(2.0), 0.8807970779778823, 1e-12);
  EXPECT_NEAR(LogisticRegression::Sigmoid(-2.0), 0.11920292202211755, 1e-12);
  // No overflow at extremes.
  EXPECT_NEAR(LogisticRegression::Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(LogisticRegression::Sigmoid(-1000.0), 0.0, 1e-12);
}

TEST(LogisticRegressionTest, LearnsLinearlySeparableData) {
  // y = 1 iff x0 > 0.
  Matrix x(40, 1);
  std::vector<int> y(40);
  for (size_t i = 0; i < 40; ++i) {
    const double v = (static_cast<double>(i) - 19.5) / 10.0;
    x.at(i, 0) = v;
    y[i] = v > 0 ? 1 : 0;
  }
  LogisticRegression model;
  LogisticRegressionOptions options;
  options.l2 = 0.1;
  ASSERT_TRUE(model.Fit(x, y, options).ok());
  EXPECT_GT(model.coefficients()[0], 0.0);
  EXPECT_EQ(model.Predict({1.0}), 1);
  EXPECT_EQ(model.Predict({-1.0}), 0);
  EXPECT_GT(model.PredictProba({2.0}), 0.9);
  EXPECT_LT(model.PredictProba({-2.0}), 0.1);
}

TEST(LogisticRegressionTest, ProbabilitiesAreCalibratedOnNoisyData) {
  // Bernoulli(sigmoid(1.5 x - 0.5)) data; the fit should recover the
  // coefficients approximately.
  Rng rng(99);
  const size_t n = 5000;
  Matrix x(n, 1);
  std::vector<int> y(n);
  for (size_t i = 0; i < n; ++i) {
    const double v = rng.NextDouble(-3.0, 3.0);
    x.at(i, 0) = v;
    y[i] = rng.NextBernoulli(LogisticRegression::Sigmoid(1.5 * v - 0.5));
  }
  LogisticRegression model;
  LogisticRegressionOptions options;
  options.l2 = 1e-6;
  options.balanced_class_weights = false;
  ASSERT_TRUE(model.Fit(x, y, options).ok());
  EXPECT_NEAR(model.coefficients()[0], 1.5, 0.15);
  EXPECT_NEAR(model.intercept(), -0.5, 0.15);
}

TEST(LogisticRegressionTest, L2ShrinksCoefficients) {
  Matrix x(20, 1);
  std::vector<int> y(20);
  for (size_t i = 0; i < 20; ++i) {
    x.at(i, 0) = static_cast<double>(i) - 9.5;
    y[i] = x.at(i, 0) > 0 ? 1 : 0;
  }
  LogisticRegression weak, strong;
  LogisticRegressionOptions weak_options, strong_options;
  weak_options.l2 = 0.01;
  strong_options.l2 = 50.0;
  ASSERT_TRUE(weak.Fit(x, y, weak_options).ok());
  ASSERT_TRUE(strong.Fit(x, y, strong_options).ok());
  EXPECT_GT(weak.coefficients()[0], strong.coefficients()[0]);
}

TEST(LogisticRegressionTest, BalancedWeightsShiftThresholdOnImbalancedData) {
  // 90% negatives around -0.1, 10% positives around +1 with overlap:
  // without balancing, the boundary sits far on the positive side.
  Rng rng(7);
  const size_t n = 2000;
  Matrix x(n, 1);
  std::vector<int> y(n);
  for (size_t i = 0; i < n; ++i) {
    const bool pos = i % 10 == 0;
    x.at(i, 0) = (pos ? 1.0 : -0.1) + rng.NextGaussian() * 0.8;
    y[i] = pos;
  }
  LogisticRegression balanced, unbalanced;
  LogisticRegressionOptions opt_b, opt_u;
  opt_b.balanced_class_weights = true;
  opt_u.balanced_class_weights = false;
  ASSERT_TRUE(balanced.Fit(x, y, opt_b).ok());
  ASSERT_TRUE(unbalanced.Fit(x, y, opt_u).ok());
  // At the midpoint feature value the balanced model gives a higher match
  // probability than the unbalanced one.
  EXPECT_GT(balanced.PredictProba({0.45}), unbalanced.PredictProba({0.45}));
}

TEST(LogisticRegressionTest, RejectsDegenerateInputs) {
  LogisticRegression model;
  Matrix x(2, 1);
  EXPECT_FALSE(model.Fit(x, {1}).ok());                 // size mismatch
  EXPECT_FALSE(model.Fit(x, {1, 1}).ok());              // single class
  EXPECT_FALSE(model.Fit(x, {2, 0}).ok());              // invalid label
  EXPECT_FALSE(model.Fit(Matrix(0, 0), {}).ok());       // empty
  EXPECT_FALSE(model.is_fitted());
}

TEST(LogisticRegressionTest, BatchMatchesSinglePredictions) {
  Matrix x(10, 2);
  std::vector<int> y(10);
  for (size_t i = 0; i < 10; ++i) {
    x.at(i, 0) = static_cast<double>(i);
    x.at(i, 1) = static_cast<double>(i % 3);
    y[i] = i >= 5;
  }
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  Vector batch = model.PredictProbaBatch(x);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(batch[i], model.PredictProba({x.at(i, 0), x.at(i, 1)}));
  }
}

}  // namespace
}  // namespace landmark
