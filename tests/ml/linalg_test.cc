#include "ml/linalg.h"

#include <gtest/gtest.h>

namespace landmark {
namespace {

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix a(2, 3);
  // [1 2 3; 4 5 6]
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(0, 2) = 3;
  a.at(1, 0) = 4; a.at(1, 1) = 5; a.at(1, 2) = 6;
  Vector x = {1, 0, -1};
  Vector y = a.Multiply(x);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(MatrixTest, MultiplyTransposedKnownValues) {
  Matrix a(2, 3);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(0, 2) = 3;
  a.at(1, 0) = 4; a.at(1, 1) = 5; a.at(1, 2) = 6;
  Vector x = {1, 2};
  Vector y = a.MultiplyTransposed(x);
  EXPECT_DOUBLE_EQ(y[0], 9.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 15.0);
}

TEST(MatrixTest, GramWeightedMatchesManualComputation) {
  Matrix a(3, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2;
  a.at(1, 0) = 3; a.at(1, 1) = 4;
  a.at(2, 0) = 5; a.at(2, 1) = 6;
  Vector w = {1.0, 0.5, 2.0};
  Matrix g = a.GramWeighted(w);
  // g[0][0] = 1*1 + 0.5*9 + 2*25 = 55.5
  EXPECT_DOUBLE_EQ(g.at(0, 0), 55.5);
  // g[0][1] = 1*2 + 0.5*12 + 2*30 = 68
  EXPECT_DOUBLE_EQ(g.at(0, 1), 68.0);
  EXPECT_DOUBLE_EQ(g.at(1, 0), g.at(0, 1));
  // g[1][1] = 4 + 8 + 72 = 84
  EXPECT_DOUBLE_EQ(g.at(1, 1), 84.0);
}

TEST(MatrixTest, IdentityConstruction) {
  Matrix id = Matrix::Identity(3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(id.at(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(VectorOpsTest, DotNormAxpy) {
  Vector a = {1, 2, 3};
  Vector b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
  Vector y = {1, 1, 1};
  Axpy(2.0, a, y);
  EXPECT_EQ(y, (Vector{3, 5, 7}));
}

TEST(CholeskyTest, SolvesSpdSystem) {
  // A = [4 2; 2 3], b = [2; 1] -> x = [0.5; 0]
  Matrix a(2, 2);
  a.at(0, 0) = 4; a.at(0, 1) = 2;
  a.at(1, 0) = 2; a.at(1, 1) = 3;
  auto x = CholeskySolve(a, {2, 1});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 0.5, 1e-12);
  EXPECT_NEAR((*x)[1], 0.0, 1e-12);
}

TEST(CholeskyTest, ResidualIsSmallOnLargerSystem) {
  // Build SPD A = M Mᵀ + I deterministically.
  const size_t n = 12;
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      m.at(i, j) = static_cast<double>((i * 31 + j * 17) % 7) - 3.0;
    }
  }
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < n; ++k) acc += m.at(i, k) * m.at(j, k);
      a.at(i, j) = acc + (i == j ? 1.0 : 0.0);
    }
  }
  Vector b(n);
  for (size_t i = 0; i < n; ++i) b[i] = static_cast<double>(i) - 5.0;
  auto x = CholeskySolve(a, b);
  ASSERT_TRUE(x.ok());
  Vector ax = a.Multiply(*x);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a(2, 2);
  a.at(0, 0) = 0; a.at(0, 1) = 1;
  a.at(1, 0) = 1; a.at(1, 1) = 0;
  EXPECT_FALSE(CholeskySolve(a, {1, 1}).ok());
}

TEST(CholeskyTest, RejectsShapeMismatch) {
  Matrix a(2, 3);
  EXPECT_FALSE(CholeskySolve(a, {1, 1}).ok());
}

TEST(SolveRidgeTest, ShrinksTowardsZero) {
  // One feature, y = 2x, equal weights.
  Matrix x(4, 1);
  Vector y(4), w(4, 1.0);
  for (size_t i = 0; i < 4; ++i) {
    x.at(i, 0) = static_cast<double>(i + 1);
    y[i] = 2.0 * static_cast<double>(i + 1);
  }
  auto no_reg = SolveRidge(x, y, w, 0.0);
  ASSERT_TRUE(no_reg.ok());
  EXPECT_NEAR((*no_reg)[0], 2.0, 1e-10);

  auto reg = SolveRidge(x, y, w, 100.0);
  ASSERT_TRUE(reg.ok());
  EXPECT_LT((*reg)[0], 2.0);
  EXPECT_GT((*reg)[0], 0.0);
}

TEST(SolveRidgeTest, UnpenalizedIndexIsNotShrunk) {
  // Two identical columns; penalize only the first.
  Matrix x(3, 2);
  Vector y = {1, 2, 3};
  Vector w(3, 1.0);
  for (size_t i = 0; i < 3; ++i) {
    x.at(i, 0) = static_cast<double>(i + 1);
    x.at(i, 1) = 1.0;  // intercept column
  }
  auto beta = SolveRidge(x, y, w, 10.0, {1});
  ASSERT_TRUE(beta.ok());
  // Strong penalty on the slope pushes predictions onto the intercept.
  EXPECT_LT((*beta)[0], 1.0);
  EXPECT_GT((*beta)[1], 0.5);
}

}  // namespace
}  // namespace landmark
