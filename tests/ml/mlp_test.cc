#include "ml/mlp.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace landmark {
namespace {

TEST(MlpTest, LearnsLinearlySeparableData) {
  Rng rng(1);
  const size_t n = 400;
  Matrix x(n, 2);
  std::vector<int> y(n);
  for (size_t i = 0; i < n; ++i) {
    x.at(i, 0) = rng.NextDouble(-1, 1);
    x.at(i, 1) = rng.NextDouble(-1, 1);
    y[i] = x.at(i, 0) + x.at(i, 1) > 0;
  }
  Mlp mlp;
  MlpOptions options;
  options.epochs = 40;
  ASSERT_TRUE(mlp.Fit(x, y, options).ok());
  size_t correct = 0;
  for (size_t i = 0; i < n; ++i) {
    correct += (mlp.PredictProba({x.at(i, 0), x.at(i, 1)}) >= 0.5) == (y[i] == 1);
  }
  EXPECT_GT(static_cast<double>(correct) / n, 0.95);
}

TEST(MlpTest, LearnsXorUnlikeALinearModel) {
  Rng rng(2);
  const size_t n = 600;
  Matrix x(n, 2);
  std::vector<int> y(n);
  for (size_t i = 0; i < n; ++i) {
    x.at(i, 0) = rng.NextDouble();
    x.at(i, 1) = rng.NextDouble();
    y[i] = (x.at(i, 0) > 0.5) != (x.at(i, 1) > 0.5);
  }
  Mlp mlp;
  MlpOptions options;
  options.hidden = {16, 8};
  options.epochs = 120;
  options.learning_rate = 5e-3;
  ASSERT_TRUE(mlp.Fit(x, y, options).ok());
  size_t correct = 0;
  for (size_t i = 0; i < n; ++i) {
    correct += (mlp.PredictProba({x.at(i, 0), x.at(i, 1)}) >= 0.5) == (y[i] == 1);
  }
  EXPECT_GT(static_cast<double>(correct) / n, 0.9);
}

TEST(MlpTest, OutputsAreProbabilities) {
  Rng rng(3);
  Matrix x(50, 3);
  std::vector<int> y(50);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 3; ++j) x.at(i, j) = rng.NextDouble();
    y[i] = i % 2;
  }
  Mlp mlp;
  MlpOptions options;
  options.epochs = 5;
  ASSERT_TRUE(mlp.Fit(x, y, options).ok());
  for (size_t i = 0; i < 50; ++i) {
    const double p = mlp.PredictProba({x.at(i, 0), x.at(i, 1), x.at(i, 2)});
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(MlpTest, DeterministicInSeed) {
  Rng rng(4);
  Matrix x(100, 2);
  std::vector<int> y(100);
  for (size_t i = 0; i < 100; ++i) {
    x.at(i, 0) = rng.NextDouble();
    x.at(i, 1) = rng.NextDouble();
    y[i] = x.at(i, 0) > 0.5;
  }
  MlpOptions options;
  options.epochs = 10;
  Mlp a, b;
  ASSERT_TRUE(a.Fit(x, y, options).ok());
  ASSERT_TRUE(b.Fit(x, y, options).ok());
  EXPECT_DOUBLE_EQ(a.PredictProba({0.3, 0.7}), b.PredictProba({0.3, 0.7}));
}

TEST(MlpTest, ParameterCountMatchesArchitecture) {
  Rng rng(5);
  Matrix x(60, 4);
  std::vector<int> y(60);
  for (size_t i = 0; i < 60; ++i) {
    for (size_t j = 0; j < 4; ++j) x.at(i, j) = rng.NextDouble();
    y[i] = i % 2;
  }
  Mlp mlp;
  MlpOptions options;
  options.hidden = {8};
  options.epochs = 1;
  ASSERT_TRUE(mlp.Fit(x, y, options).ok());
  // (4*8 + 8) + (8*1 + 1) = 49.
  EXPECT_EQ(mlp.num_parameters(), 49u);
}

TEST(MlpTest, RejectsDegenerateInputs) {
  Mlp mlp;
  Matrix x(2, 1);
  EXPECT_FALSE(mlp.Fit(x, {1}, {}).ok());
  EXPECT_FALSE(mlp.Fit(x, {1, 1}, {}).ok());
  EXPECT_FALSE(mlp.Fit(Matrix(0, 0), {}, {}).ok());
  MlpOptions bad;
  bad.epochs = 0;
  EXPECT_FALSE(mlp.Fit(x, {0, 1}, bad).ok());
  EXPECT_FALSE(mlp.is_fitted());
}

}  // namespace
}  // namespace landmark
