#include <cmath>

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "ml/scaler.h"

namespace landmark {
namespace {

TEST(ScalerTest, StandardizesToZeroMeanUnitVariance) {
  Matrix x(4, 2);
  // col0: 1,2,3,4 ; col1: 10,10,10,10 (constant)
  for (size_t i = 0; i < 4; ++i) {
    x.at(i, 0) = static_cast<double>(i + 1);
    x.at(i, 1) = 10.0;
  }
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(x).ok());
  EXPECT_DOUBLE_EQ(scaler.means()[0], 2.5);
  EXPECT_DOUBLE_EQ(scaler.means()[1], 10.0);
  EXPECT_DOUBLE_EQ(scaler.stddevs()[1], 1.0);  // constant column guard

  ASSERT_TRUE(scaler.TransformInPlace(x).ok());
  double mean = 0.0, var = 0.0;
  for (size_t i = 0; i < 4; ++i) mean += x.at(i, 0);
  mean /= 4.0;
  for (size_t i = 0; i < 4; ++i) var += x.at(i, 0) * x.at(i, 0);
  var /= 4.0;
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(var, 1.0, 1e-12);
  // Constant column is centered, not scaled.
  EXPECT_DOUBLE_EQ(x.at(0, 1), 0.0);
}

TEST(ScalerTest, TransformVectorMatchesMatrix) {
  Matrix x(3, 1);
  x.at(0, 0) = 0.0;
  x.at(1, 0) = 1.0;
  x.at(2, 0) = 2.0;
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(x).ok());
  Vector v = {2.0};
  ASSERT_TRUE(scaler.TransformInPlace(v).ok());
  Matrix m(1, 1);
  m.at(0, 0) = 2.0;
  ASSERT_TRUE(scaler.TransformInPlace(m).ok());
  EXPECT_DOUBLE_EQ(v[0], m.at(0, 0));
}

TEST(ScalerTest, ErrorsOnMisuse) {
  StandardScaler scaler;
  Matrix x(2, 2);
  EXPECT_TRUE(scaler.TransformInPlace(x).IsFailedPrecondition());
  ASSERT_TRUE(scaler.Fit(x).ok());
  Matrix wrong(2, 3);
  EXPECT_TRUE(scaler.TransformInPlace(wrong).IsInvalidArgument());
  EXPECT_FALSE(scaler.Fit(Matrix(0, 0)).ok());
}

TEST(ConfusionTest, CountsAndDerivedMetrics) {
  //              true:  1  1  0  0  1
  //              pred:  1  0  0  1  1
  ConfusionMatrix cm = ComputeConfusion({1, 1, 0, 0, 1}, {1, 0, 0, 1, 1});
  EXPECT_EQ(cm.true_positive, 2u);
  EXPECT_EQ(cm.false_negative, 1u);
  EXPECT_EQ(cm.true_negative, 1u);
  EXPECT_EQ(cm.false_positive, 1u);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.6);
  EXPECT_DOUBLE_EQ(cm.Precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.Recall(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.F1(), 2.0 / 3.0);
}

TEST(ConfusionTest, DegenerateCasesReturnZero) {
  ConfusionMatrix empty;
  EXPECT_DOUBLE_EQ(empty.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(empty.F1(), 0.0);
}

TEST(MetricsTest, AccuracyMaeRmse) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1}, {1, 1, 1}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1.0, 2.0}, {1.5, 1.5}), 0.5);
  EXPECT_DOUBLE_EQ(RootMeanSquaredError({0.0, 0.0}, {3.0, 4.0}),
                   std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({}, {}), 0.0);
}

TEST(MetricsTest, R2Score) {
  // Perfect fit -> 1; predicting the mean -> 0.
  EXPECT_DOUBLE_EQ(R2Score({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(R2Score({1, 2, 3}, {2, 2, 2}), 0.0);
  EXPECT_LT(R2Score({1, 2, 3}, {3, 2, 1}), 0.0);
  EXPECT_DOUBLE_EQ(R2Score({5, 5, 5}, {1, 2, 3}), 0.0);  // constant target
}

}  // namespace
}  // namespace landmark
