#include "ml/linear_regression.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace landmark {
namespace {

Matrix RandomDesign(size_t n, size_t d, Rng& rng) {
  Matrix x(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) x.at(i, j) = rng.NextDouble(-1.0, 1.0);
  }
  return x;
}

TEST(RidgeTest, RecoversLinearFunctionWithLowLambda) {
  Rng rng(1);
  const size_t n = 200, d = 3;
  Matrix x = RandomDesign(n, d, rng);
  const Vector true_w = {2.0, -1.0, 0.5};
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = 3.0;  // intercept
    for (size_t j = 0; j < d; ++j) y[i] += true_w[j] * x.at(i, j);
  }
  Vector w(n, 1.0);
  auto model = FitWeightedRidge(x, y, w, 1e-8);
  ASSERT_TRUE(model.ok());
  for (size_t j = 0; j < d; ++j) {
    EXPECT_NEAR(model->coefficients[j], true_w[j], 1e-5);
  }
  EXPECT_NEAR(model->intercept, 3.0, 1e-5);
  EXPECT_NEAR(model->Predict({1.0, 1.0, 1.0}), 4.5, 1e-4);
}

TEST(RidgeTest, InterceptIsNotPenalized) {
  // Constant target: even with huge lambda the intercept must match it.
  Rng rng(2);
  Matrix x = RandomDesign(50, 2, rng);
  Vector y(50, 7.0);
  Vector w(50, 1.0);
  auto model = FitWeightedRidge(x, y, w, 1e6);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->intercept, 7.0, 1e-3);
  EXPECT_NEAR(model->coefficients[0], 0.0, 1e-3);
}

TEST(RidgeTest, SampleWeightsFocusTheFit) {
  // Two clusters with different slopes; weighting one cluster should pull
  // the fit towards its slope.
  Matrix x(20, 1);
  Vector y(20), w_a(20), w_b(20);
  for (size_t i = 0; i < 10; ++i) {
    x.at(i, 0) = static_cast<double>(i);
    y[i] = 2.0 * x.at(i, 0);  // slope 2 cluster
    w_a[i] = 1.0;
    w_b[i] = 1e-6;
  }
  for (size_t i = 10; i < 20; ++i) {
    x.at(i, 0) = static_cast<double>(i - 10);
    y[i] = -1.0 * x.at(i, 0);  // slope -1 cluster
    w_a[i] = 1e-6;
    w_b[i] = 1.0;
  }
  auto ma = FitWeightedRidge(x, y, w_a, 1e-6);
  auto mb = FitWeightedRidge(x, y, w_b, 1e-6);
  ASSERT_TRUE(ma.ok());
  ASSERT_TRUE(mb.ok());
  EXPECT_NEAR(ma->coefficients[0], 2.0, 1e-3);
  EXPECT_NEAR(mb->coefficients[0], -1.0, 1e-3);
}

TEST(RidgeTest, RejectsShapeMismatch) {
  Matrix x(3, 1);
  EXPECT_FALSE(FitWeightedRidge(x, {1, 2}, {1, 1, 1}, 1.0).ok());
  EXPECT_FALSE(FitWeightedRidge(x, {1, 2, 3}, {1, 1}, 1.0).ok());
  EXPECT_FALSE(FitWeightedRidge(Matrix(0, 0), {}, {}, 1.0).ok());
}

TEST(LassoTest, RecoversSparseSignal) {
  Rng rng(3);
  const size_t n = 300, d = 8;
  Matrix x = RandomDesign(n, d, rng);
  // Only features 1 and 4 matter.
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = 1.0 + 3.0 * x.at(i, 1) - 2.0 * x.at(i, 4) +
           0.01 * rng.NextGaussian();
  }
  Vector w(n, 1.0);
  LassoOptions options;
  options.lambda = 0.05;
  auto model = FitWeightedLasso(x, y, w, options);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->coefficients[1], 2.0);
  EXPECT_LT(model->coefficients[4], -1.0);
  // Irrelevant features are (nearly) zeroed.
  for (size_t j : {0u, 2u, 3u, 5u, 6u, 7u}) {
    EXPECT_NEAR(model->coefficients[j], 0.0, 0.05) << "feature " << j;
  }
}

TEST(LassoTest, LargerLambdaGivesSparserModels) {
  Rng rng(4);
  const size_t n = 200, d = 6;
  Matrix x = RandomDesign(n, d, rng);
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = 0.5 * x.at(i, 0) + 0.4 * x.at(i, 1) + 0.3 * x.at(i, 2) +
           0.2 * x.at(i, 3) + 0.1 * x.at(i, 4);
  }
  Vector w(n, 1.0);
  auto count_nonzero = [](const LinearModel& m) {
    size_t nz = 0;
    for (double c : m.coefficients) nz += std::abs(c) > 1e-9;
    return nz;
  };
  LassoOptions weak, strong;
  weak.lambda = 0.001;
  strong.lambda = 0.3;
  auto mw = FitWeightedLasso(x, y, w, weak);
  auto ms = FitWeightedLasso(x, y, w, strong);
  ASSERT_TRUE(mw.ok());
  ASSERT_TRUE(ms.ok());
  EXPECT_GT(count_nonzero(*mw), count_nonzero(*ms));
}

TEST(LassoTest, ZeroLambdaMatchesRidgeLimit) {
  Rng rng(5);
  Matrix x = RandomDesign(100, 2, rng);
  Vector y(100);
  for (size_t i = 0; i < 100; ++i) y[i] = 1.0 + x.at(i, 0) - 2.0 * x.at(i, 1);
  Vector w(100, 1.0);
  LassoOptions options;
  options.lambda = 0.0;
  auto lasso = FitWeightedLasso(x, y, w, options);
  auto ridge = FitWeightedRidge(x, y, w, 1e-10);
  ASSERT_TRUE(lasso.ok());
  ASSERT_TRUE(ridge.ok());
  EXPECT_NEAR(lasso->coefficients[0], ridge->coefficients[0], 1e-4);
  EXPECT_NEAR(lasso->coefficients[1], ridge->coefficients[1], 1e-4);
  EXPECT_NEAR(lasso->intercept, ridge->intercept, 1e-4);
}

}  // namespace
}  // namespace landmark
