#include "data/em_dataset.h"

#include <set>

#include <gtest/gtest.h>

namespace landmark {
namespace {

std::shared_ptr<const Schema> TestSchema() {
  return *Schema::Make({"name"});
}

PairRecord MakePair(const std::shared_ptr<const Schema>& schema,
                    const std::string& l, const std::string& r,
                    MatchLabel label) {
  PairRecord pair;
  pair.left = *Record::Make(schema, {Value::Of(l)});
  pair.right = *Record::Make(schema, {Value::Of(r)});
  pair.label = label;
  return pair;
}

EmDataset MakeDataset(size_t num_match, size_t num_non_match) {
  auto schema = TestSchema();
  EmDataset dataset("test", schema);
  for (size_t i = 0; i < num_match; ++i) {
    EXPECT_TRUE(
        dataset.Append(MakePair(schema, "a", "a", MatchLabel::kMatch)).ok());
  }
  for (size_t i = 0; i < num_non_match; ++i) {
    EXPECT_TRUE(
        dataset.Append(MakePair(schema, "a", "b", MatchLabel::kNonMatch)).ok());
  }
  return dataset;
}

TEST(EmDatasetTest, StatsMatchTable1Format) {
  EmDataset d = MakeDataset(15, 85);
  EmDatasetStats stats = d.Stats();
  EXPECT_EQ(stats.size, 100u);
  EXPECT_EQ(stats.num_match, 15u);
  EXPECT_DOUBLE_EQ(stats.match_percent, 15.0);
}

TEST(EmDatasetTest, AppendAssignsSequentialIds) {
  EmDataset d = MakeDataset(2, 1);
  EXPECT_EQ(d.pair(0).id, 0);
  EXPECT_EQ(d.pair(2).id, 2);
}

TEST(EmDatasetTest, AppendRejectsWrongSchema) {
  EmDataset d("test", TestSchema());
  auto other = *Schema::Make({"different"});
  PairRecord pair = MakePair(other, "x", "y", MatchLabel::kMatch);
  EXPECT_TRUE(d.Append(pair).IsInvalidArgument());
}

TEST(EmDatasetTest, IndicesWithLabel) {
  EmDataset d = MakeDataset(3, 7);
  EXPECT_EQ(d.IndicesWithLabel(MatchLabel::kMatch).size(), 3u);
  EXPECT_EQ(d.IndicesWithLabel(MatchLabel::kNonMatch).size(), 7u);
}

TEST(EmDatasetTest, SampleByLabelCapsAtAvailable) {
  // The paper: "all records are sampled when the dataset contains less than
  // 100 records" with the requested label.
  EmDataset d = MakeDataset(5, 50);
  Rng rng(1);
  EXPECT_EQ(d.SampleByLabel(MatchLabel::kMatch, 100, rng).size(), 5u);
  EXPECT_EQ(d.SampleByLabel(MatchLabel::kNonMatch, 10, rng).size(), 10u);
}

TEST(EmDatasetTest, SampleByLabelReturnsRequestedLabelOnly) {
  EmDataset d = MakeDataset(30, 70);
  Rng rng(2);
  for (size_t idx : d.SampleByLabel(MatchLabel::kMatch, 10, rng)) {
    EXPECT_TRUE(d.pair(idx).is_match());
  }
}

TEST(EmDatasetTest, SampleByLabelHasNoDuplicates) {
  EmDataset d = MakeDataset(50, 50);
  Rng rng(3);
  auto sample = d.SampleByLabel(MatchLabel::kMatch, 20, rng);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), sample.size());
}

TEST(EmDatasetTest, SplitIsDisjointAndComplete) {
  EmDataset d = MakeDataset(20, 80);
  Rng rng(4);
  EmDatasetSplit split = *d.Split(0.2, 0.2, rng);
  std::set<size_t> all;
  for (auto* part : {&split.train, &split.valid, &split.test}) {
    for (size_t i : *part) {
      EXPECT_TRUE(all.insert(i).second) << "index " << i << " duplicated";
    }
  }
  EXPECT_EQ(all.size(), d.size());
}

TEST(EmDatasetTest, SplitIsStratified) {
  EmDataset d = MakeDataset(20, 80);
  Rng rng(5);
  EmDatasetSplit split = *d.Split(0.25, 0.25, rng);
  auto count_matches = [&](const std::vector<size_t>& part) {
    size_t n = 0;
    for (size_t i : part) n += d.pair(i).is_match();
    return n;
  };
  EXPECT_EQ(count_matches(split.valid), 5u);
  EXPECT_EQ(count_matches(split.test), 5u);
  EXPECT_EQ(count_matches(split.train), 10u);
}

TEST(EmDatasetTest, SplitRejectsBadFractions) {
  EmDataset d = MakeDataset(5, 5);
  Rng rng(6);
  EXPECT_FALSE(d.Split(0.7, 0.7, rng).ok());
  EXPECT_FALSE(d.Split(-0.1, 0.2, rng).ok());
}

TEST(EmDatasetTest, EmptyDatasetStats) {
  EmDataset d("empty", TestSchema());
  EXPECT_EQ(d.Stats().size, 0u);
  EXPECT_DOUBLE_EQ(d.Stats().match_percent, 0.0);
}

}  // namespace
}  // namespace landmark
