#include "data/dataset_io.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace landmark {
namespace {

EmDataset SmallDataset() {
  auto schema = *Schema::Make({"name", "price"});
  EmDataset d("io-test", schema);
  PairRecord p1;
  p1.left = *Record::Make(schema, {Value::Of("sony camera"), Value::Of("849.99")});
  p1.right = *Record::Make(schema, {Value::Of("sony cam"), Value::Null()});
  p1.label = MatchLabel::kMatch;
  EXPECT_TRUE(d.Append(p1).ok());
  PairRecord p2;
  p2.left = *Record::Make(schema, {Value::Of("nikon, \"pro\""), Value::Of("7.99")});
  p2.right = *Record::Make(schema, {Value::Of("case"), Value::Of("7.99")});
  p2.label = MatchLabel::kNonMatch;
  EXPECT_TRUE(d.Append(p2).ok());
  return d;
}

TEST(DatasetIoTest, CsvHeaderLayout) {
  CsvTable table = EmDatasetToCsv(SmallDataset());
  EXPECT_EQ(table.header,
            (std::vector<std::string>{"id", "left_name", "left_price",
                                      "right_name", "right_price", "label"}));
}

TEST(DatasetIoTest, RoundTripPreservesEverything) {
  EmDataset original = SmallDataset();
  auto loaded = EmDatasetFromCsv(EmDatasetToCsv(original), "io-test");
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded->pair(i).label, original.pair(i).label);
    EXPECT_EQ(loaded->pair(i).id, original.pair(i).id);
    EXPECT_EQ(loaded->pair(i).left.value(0), original.pair(i).left.value(0));
    EXPECT_EQ(loaded->pair(i).right.value(1), original.pair(i).right.value(1));
  }
  EXPECT_TRUE(loaded->entity_schema()->Equals(*original.entity_schema()));
}

TEST(DatasetIoTest, NullRoundTripsAsEmptyCell) {
  auto loaded = EmDatasetFromCsv(EmDatasetToCsv(SmallDataset()), "t");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->pair(0).right.value(1).is_null());
}

TEST(DatasetIoTest, RejectsMissingLabelColumn) {
  CsvTable table;
  table.header = {"left_a", "right_a"};
  table.rows = {{"x", "y"}};
  EXPECT_FALSE(EmDatasetFromCsv(table, "t").ok());
}

TEST(DatasetIoTest, RejectsUnpairedLeftColumn) {
  CsvTable table;
  table.header = {"left_a", "left_b", "right_a", "label"};
  table.rows = {{"1", "2", "3", "0"}};
  auto r = EmDatasetFromCsv(table, "t");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("right_"), std::string::npos);
}

TEST(DatasetIoTest, RejectsBadLabel) {
  CsvTable table;
  table.header = {"left_a", "right_a", "label"};
  table.rows = {{"x", "y", "maybe"}};
  EXPECT_FALSE(EmDatasetFromCsv(table, "t").ok());
}

TEST(DatasetIoTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/landmark_ds_test.csv";
  EmDataset original = SmallDataset();
  ASSERT_TRUE(WriteEmDataset(original, path).ok());
  auto loaded = ReadEmDataset(path, "io-test");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), original.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace landmark
