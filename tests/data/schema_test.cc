#include "data/schema.h"

#include <gtest/gtest.h>

namespace landmark {
namespace {

TEST(SchemaTest, BasicLookup) {
  auto schema = Schema::Make({"title", "authors", "year"});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ((*schema)->num_attributes(), 3u);
  EXPECT_EQ((*schema)->attribute_name(1), "authors");
  EXPECT_EQ(*(*schema)->IndexOf("year"), 2u);
  EXPECT_TRUE((*schema)->Contains("title"));
  EXPECT_FALSE((*schema)->Contains("venue"));
}

TEST(SchemaTest, IndexOfMissingIsNotFound) {
  auto schema = Schema::Make({"a"});
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE((*schema)->IndexOf("b").status().IsNotFound());
}

TEST(SchemaTest, RejectsEmptySchema) {
  EXPECT_FALSE(Schema::Make({}).ok());
}

TEST(SchemaTest, RejectsEmptyName) {
  EXPECT_FALSE(Schema::Make({"a", ""}).ok());
}

TEST(SchemaTest, RejectsDuplicates) {
  auto r = Schema::Make({"a", "b", "a"});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(SchemaTest, EqualsComparesNamesInOrder) {
  auto a = *Schema::Make({"x", "y"});
  auto b = *Schema::Make({"x", "y"});
  auto c = *Schema::Make({"y", "x"});
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
}

}  // namespace
}  // namespace landmark
