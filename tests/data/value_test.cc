#include "data/value.h"

#include <gtest/gtest.h>

namespace landmark {
namespace {

TEST(ValueTest, NullValue) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.text(), "");
  EXPECT_FALSE(v.AsDouble().has_value());
  EXPECT_EQ(v, Value::Null());
}

TEST(ValueTest, TextValue) {
  Value v = Value::Of("sony camera");
  EXPECT_FALSE(v.is_null());
  EXPECT_EQ(v.text(), "sony camera");
  EXPECT_FALSE(v.AsDouble().has_value());
}

TEST(ValueTest, NumericParsing) {
  EXPECT_DOUBLE_EQ(*Value::Of("849.99").AsDouble(), 849.99);
  EXPECT_DOUBLE_EQ(*Value::Of("-3").AsDouble(), -3.0);
  EXPECT_FALSE(Value::Of("7.99 usd").AsDouble().has_value());
}

TEST(ValueTest, OfNumberFormatsIntegersWithoutDecimals) {
  EXPECT_EQ(Value::OfNumber(2005).text(), "2005");
  EXPECT_EQ(Value::OfNumber(849.99).text(), "849.99");
}

TEST(ValueTest, OfNumberRoundTripsThroughAsDouble) {
  for (double d : {0.0, 1.0, -5.0, 12.25, 999.5}) {
    EXPECT_DOUBLE_EQ(*Value::OfNumber(d).AsDouble(), d);
  }
}

TEST(ValueTest, EqualityDistinguishesNullFromEmpty) {
  EXPECT_NE(Value::Null(), Value::Of(""));
  EXPECT_EQ(Value::Of("x"), Value::Of("x"));
  EXPECT_NE(Value::Of("x"), Value::Of("y"));
}

}  // namespace
}  // namespace landmark
