#include "data/record.h"

#include <gtest/gtest.h>

#include "data/pair_record.h"

namespace landmark {
namespace {

std::shared_ptr<const Schema> TestSchema() {
  return *Schema::Make({"name", "price"});
}

TEST(RecordTest, MakeValidatesArity) {
  auto schema = TestSchema();
  EXPECT_TRUE(Record::Make(schema, {Value::Of("tv"), Value::Of("99")}).ok());
  EXPECT_FALSE(Record::Make(schema, {Value::Of("tv")}).ok());
  EXPECT_FALSE(Record::Make(nullptr, {}).ok());
}

TEST(RecordTest, ValueAccess) {
  auto schema = TestSchema();
  Record r = *Record::Make(schema, {Value::Of("tv"), Value::Null()});
  EXPECT_EQ(r.value(0).text(), "tv");
  EXPECT_TRUE(r.value(1).is_null());
  EXPECT_EQ(r.ValueOf("name").ValueOrDie().text(), "tv");
}

TEST(RecordTest, ValueOfMissingAttribute) {
  Record r = Record::Empty(TestSchema());
  EXPECT_TRUE(r.ValueOf("missing").status().IsNotFound());
}

TEST(RecordTest, SetValue) {
  Record r = Record::Empty(TestSchema());
  EXPECT_TRUE(r.value(0).is_null());
  r.SetValue(0, Value::Of("radio"));
  EXPECT_EQ(r.value(0).text(), "radio");
}

TEST(RecordTest, EqualityAndToString) {
  auto schema = TestSchema();
  Record a = *Record::Make(schema, {Value::Of("tv"), Value::Of("9")});
  Record b = *Record::Make(schema, {Value::Of("tv"), Value::Of("9")});
  Record c = *Record::Make(schema, {Value::Of("tv"), Value::Null()});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_NE(a.ToString().find("name='tv'"), std::string::npos);
  EXPECT_NE(c.ToString().find("<null>"), std::string::npos);
}

TEST(PairRecordTest, EntityAccessorAndSides) {
  auto schema = TestSchema();
  PairRecord pair;
  pair.left = *Record::Make(schema, {Value::Of("l"), Value::Null()});
  pair.right = *Record::Make(schema, {Value::Of("r"), Value::Null()});
  pair.label = MatchLabel::kMatch;
  EXPECT_EQ(pair.entity(EntitySide::kLeft).value(0).text(), "l");
  EXPECT_EQ(pair.entity(EntitySide::kRight).value(0).text(), "r");
  EXPECT_TRUE(pair.is_match());
  EXPECT_EQ(OppositeSide(EntitySide::kLeft), EntitySide::kRight);
  EXPECT_EQ(EntitySideName(EntitySide::kRight), "right");
}

}  // namespace
}  // namespace landmark
