#include "text/similarity.h"

#include <gtest/gtest.h>

namespace landmark {
namespace {

using Tokens = std::vector<std::string>;

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
}

TEST(LevenshteinSimilarityTest, NormalizedRange) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("kitten", "sitting"), 1.0 - 3.0 / 7.0,
              1e-12);
}

TEST(JaroTest, KnownValues) {
  // Classic reference pairs.
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.7667, 1e-3);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.9611, 1e-3);
  EXPECT_NEAR(JaroWinklerSimilarity("dixon", "dicksonx"), 0.8133, 1e-3);
  // Winkler never decreases the Jaro score.
  for (auto [a, b] : std::vector<std::pair<std::string, std::string>>{
           {"sony", "snoy"}, {"camera", "cam"}, {"x", "y"}}) {
    EXPECT_GE(JaroWinklerSimilarity(a, b), JaroSimilarity(a, b));
  }
}

TEST(JaccardTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "a", "b"}, {"a", "b"}), 1.0);
}

TEST(OverlapTest, KnownValues) {
  EXPECT_DOUBLE_EQ(OverlapCoefficient({"a", "b", "c"}, {"a"}), 1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({"a", "b"}, {"b", "c"}), 0.5);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({"a"}, {}), 0.0);
}

TEST(DiceTest, KnownValues) {
  EXPECT_DOUBLE_EQ(DiceSimilarity({"a", "b"}, {"b", "c"}), 0.5);
  EXPECT_DOUBLE_EQ(DiceSimilarity({}, {}), 1.0);
}

TEST(CosineTokenTest, KnownValues) {
  EXPECT_DOUBLE_EQ(CosineTokenSimilarity({"a"}, {"a"}), 1.0);
  EXPECT_DOUBLE_EQ(CosineTokenSimilarity({"a"}, {"b"}), 0.0);
  EXPECT_NEAR(CosineTokenSimilarity({"a", "b"}, {"a", "c"}), 0.5, 1e-12);
  // Multiset-aware: repeated tokens raise the weight.
  EXPECT_GT(CosineTokenSimilarity({"a", "a", "b"}, {"a"}),
            CosineTokenSimilarity({"a", "b", "c"}, {"a"}));
}

TEST(MongeElkanTest, FindsBestAlignments) {
  const Tokens a = {"sony", "camera"};
  const Tokens b = {"camera", "sony"};
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity(a, b), 1.0);  // order-insensitive
  EXPECT_GT(MongeElkanSymmetric({"sony"}, {"snoy", "case"}), 0.5);
  EXPECT_DOUBLE_EQ(MongeElkanSymmetric({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanSymmetric({"a"}, {}), 0.0);
}

TEST(TrigramTest, SharedSubstringsScoreHigher) {
  EXPECT_GT(TrigramSimilarity("dslra200w", "dslra200"),
            TrigramSimilarity("dslra200w", "kx5811"));
  EXPECT_DOUBLE_EQ(TrigramSimilarity("abc", "abc"), 1.0);
}

TEST(NumericTest, RelativeCloseness) {
  EXPECT_DOUBLE_EQ(NumericSimilarity(100.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity(50.0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(NumericSimilarity(0.0, 100.0), 0.0);
  // Opposite signs clamp to 0.
  EXPECT_DOUBLE_EQ(NumericSimilarity(-10.0, 10.0), 0.0);
}

TEST(ExactMatchTest, Basics) {
  EXPECT_DOUBLE_EQ(ExactMatch("a", "a"), 1.0);
  EXPECT_DOUBLE_EQ(ExactMatch("a", "A"), 0.0);
}

// --- Property sweeps over representative string pairs -----------------------

struct SimCase {
  std::string a;
  std::string b;
};

class SimilarityPropertyTest : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimilarityPropertyTest, AllMeasuresAreInUnitRangeAndSymmetric) {
  const auto& p = GetParam();
  const Tokens ta = {p.a};
  const Tokens tb = {p.b};

  struct Named {
    const char* name;
    double ab;
    double ba;
  };
  const Named results[] = {
      {"lev", LevenshteinSimilarity(p.a, p.b), LevenshteinSimilarity(p.b, p.a)},
      {"jaro", JaroSimilarity(p.a, p.b), JaroSimilarity(p.b, p.a)},
      {"jw", JaroWinklerSimilarity(p.a, p.b), JaroWinklerSimilarity(p.b, p.a)},
      {"jaccard", JaccardSimilarity(ta, tb), JaccardSimilarity(tb, ta)},
      {"overlap", OverlapCoefficient(ta, tb), OverlapCoefficient(tb, ta)},
      {"dice", DiceSimilarity(ta, tb), DiceSimilarity(tb, ta)},
      {"cosine", CosineTokenSimilarity(ta, tb), CosineTokenSimilarity(tb, ta)},
      {"me", MongeElkanSymmetric(ta, tb), MongeElkanSymmetric(tb, ta)},
      {"trigram", TrigramSimilarity(p.a, p.b), TrigramSimilarity(p.b, p.a)},
  };
  for (const auto& r : results) {
    EXPECT_GE(r.ab, 0.0) << r.name;
    EXPECT_LE(r.ab, 1.0) << r.name;
    EXPECT_NEAR(r.ab, r.ba, 1e-12) << r.name << " is not symmetric";
  }
}

TEST_P(SimilarityPropertyTest, IdentityScoresOne) {
  const auto& p = GetParam();
  if (p.a.empty()) return;
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity(p.a, p.a), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity(p.a, p.a), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity(p.a, p.a), 1.0);
  EXPECT_DOUBLE_EQ(TrigramSimilarity(p.a, p.a), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, SimilarityPropertyTest,
    ::testing::Values(SimCase{"sony", "nikon"}, SimCase{"camera", "cam"},
                      SimCase{"dslra200w", "dslra200"},
                      SimCase{"", "nonempty"}, SimCase{"", ""},
                      SimCase{"a", "a"}, SimCase{"849.99", "7.99"},
                      SimCase{"hello world", "world hello"},
                      SimCase{"x", "yyyyyyyyyyyyyyyyyyyy"}));

TEST(LevenshteinPropertyTest, TriangleInequalityOnSamples) {
  const std::string words[] = {"sony", "snoy", "sonny", "nikon", "",
                               "camera", "cam"};
  for (const auto& a : words) {
    for (const auto& b : words) {
      for (const auto& c : words) {
        EXPECT_LE(LevenshteinDistance(a, c),
                  LevenshteinDistance(a, b) + LevenshteinDistance(b, c));
      }
    }
  }
}

}  // namespace
}  // namespace landmark
