#include "text/tfidf.h"

#include <cmath>

#include <gtest/gtest.h>

#include "text/vocab.h"

namespace landmark {
namespace {

TEST(VocabularyTest, AssignsStableIds) {
  Vocabulary v;
  EXPECT_EQ(v.GetOrAdd("a"), 0u);
  EXPECT_EQ(v.GetOrAdd("b"), 1u);
  EXPECT_EQ(v.GetOrAdd("a"), 0u);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.TokenOf(1), "b");
  EXPECT_EQ(v.Lookup("a"), 0);
  EXPECT_EQ(v.Lookup("missing"), -1);
}

TEST(TfIdfTest, TransformIsL2Normalized) {
  TfIdfVectorizer tfidf;
  tfidf.Fit({{"a", "b"}, {"a", "c"}, {"b", "c", "d"}});
  auto vec = tfidf.Transform({"a", "b", "d"});
  double norm_sq = 0.0;
  for (const auto& [id, w] : vec) norm_sq += w * w;
  EXPECT_NEAR(norm_sq, 1.0, 1e-12);
}

TEST(TfIdfTest, IdfOrdering) {
  TfIdfVectorizer tfidf;
  tfidf.Fit({{"common", "rare"}, {"common"}, {"common"}});
  const auto rare_id = static_cast<size_t>(tfidf.vocab().Lookup("rare"));
  const auto common_id = static_cast<size_t>(tfidf.vocab().Lookup("common"));
  EXPECT_GT(tfidf.Idf(rare_id), tfidf.Idf(common_id));
}

TEST(TfIdfTest, CosineOfIdenticalDocsIsOne) {
  TfIdfVectorizer tfidf;
  tfidf.Fit({{"a", "b", "c"}, {"d", "e"}});
  auto v = tfidf.Transform({"a", "b"});
  EXPECT_NEAR(TfIdfVectorizer::Cosine(v, v), 1.0, 1e-12);
}

TEST(TfIdfTest, CosineOfDisjointDocsIsZero) {
  TfIdfVectorizer tfidf;
  tfidf.Fit({{"a", "b"}, {"c", "d"}});
  auto va = tfidf.Transform({"a", "b"});
  auto vc = tfidf.Transform({"c", "d"});
  EXPECT_DOUBLE_EQ(TfIdfVectorizer::Cosine(va, vc), 0.0);
}

TEST(TfIdfTest, UnseenTokensAreIgnored) {
  TfIdfVectorizer tfidf;
  tfidf.Fit({{"a"}});
  EXPECT_TRUE(tfidf.Transform({"zzz"}).empty());
}

}  // namespace
}  // namespace landmark
