#include "text/tokenize.h"

#include <gtest/gtest.h>

namespace landmark {
namespace {

TEST(WordTokensTest, SplitsOnWhitespaceOnly) {
  EXPECT_EQ(WordTokens("sony digital camera"),
            (std::vector<std::string>{"sony", "digital", "camera"}));
  // Punctuation and case are preserved (the explainers need the exact
  // surface forms for lossless reconstruction).
  EXPECT_EQ(WordTokens("DSLR-A200W, 10.2"),
            (std::vector<std::string>{"DSLR-A200W,", "10.2"}));
  EXPECT_EQ(WordTokens(""), (std::vector<std::string>{}));
  EXPECT_EQ(WordTokens("  x  "), (std::vector<std::string>{"x"}));
}

TEST(NormalizedTokensTest, LowercasesAndStripsPunctuation) {
  EXPECT_EQ(NormalizedTokens("Sony, Camera!"),
            (std::vector<std::string>{"sony", "camera"}));
  // Interior punctuation stays (model numbers).
  EXPECT_EQ(NormalizedTokens("dslr-a200w"),
            (std::vector<std::string>{"dslr-a200w"}));
  // Pure punctuation tokens vanish.
  EXPECT_EQ(NormalizedTokens("a - b"), (std::vector<std::string>{"a", "b"}));
}

TEST(QGramsTest, BasicTrigrams) {
  EXPECT_EQ(QGrams("abcd", 3), (std::vector<std::string>{"abc", "bcd"}));
  EXPECT_EQ(QGrams("ab", 3), (std::vector<std::string>{"ab"}));
  EXPECT_EQ(QGrams("", 3), (std::vector<std::string>{}));
  EXPECT_EQ(QGrams("abc", 1), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(QGrams("abc", 0), (std::vector<std::string>{}));
}

TEST(QGramsTest, CountIsLengthMinusQPlusOne) {
  const std::string s = "abcdefgh";
  for (size_t q = 1; q <= s.size(); ++q) {
    EXPECT_EQ(QGrams(s, q).size(), s.size() - q + 1);
  }
}

}  // namespace
}  // namespace landmark
