#include "text/token_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "text/similarity.h"
#include "text/tokenize.h"
#include "util/telemetry/metrics.h"

namespace landmark {
namespace {

/// Adversarial corpus for the bit-identity contract: empty and
/// whitespace-only strings, repeated tokens (frequency > 1 exercises the
/// cosine accumulation order), punctuation stripped to nothing, tokens that
/// sort differently than they appear, numbers, and strings shorter than a
/// trigram.
const std::vector<std::string>& Corpus() {
  static const std::vector<std::string>* corpus = new std::vector<std::string>{
      "",
      " ",
      "   \t  ",
      "word",
      "alpha beta gamma",
      "gamma beta alpha",
      "a a a b",
      "b a a a",
      "The, quick. BROWN fox!",
      "the quick brown fox",
      "!!! ... ---",
      "849.99",
      "sony cyber-shot dsc-w350 14.1mp digital camera",
      "zz yy xx zz yy zz",
      "ab",
      "a",
      "one two three four five six seven eight nine ten one two three",
  };
  return *corpus;
}

TEST(TokenizedValueTest, ProfilesMatchTokenizer) {
  for (const std::string& text : Corpus()) {
    const TokenizedValue v = TokenizedValue::Of(text);
    EXPECT_EQ(v.tokens, NormalizedTokens(text)) << "text: \"" << text << "\"";
    // token_counts is sorted, distinct, and its frequencies sum to the
    // token count.
    double freq_sum = 0.0;
    for (size_t i = 0; i < v.token_counts.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(v.token_counts[i - 1].first, v.token_counts[i].first);
      }
      freq_sum += v.token_counts[i].second;
    }
    EXPECT_EQ(freq_sum, static_cast<double>(v.tokens.size()));
  }
}

TEST(TokenizedValueTest, SimilaritiesBitIdenticalToStringPath) {
  for (const std::string& a : Corpus()) {
    for (const std::string& b : Corpus()) {
      const TokenizedValue va = TokenizedValue::Of(a);
      const TokenizedValue vb = TokenizedValue::Of(b);
      const std::vector<std::string> ta = NormalizedTokens(a);
      const std::vector<std::string> tb = NormalizedTokens(b);
      // EXPECT_EQ on doubles is exact comparison — the contract is
      // bit-identity, not closeness.
      EXPECT_EQ(JaccardSimilarity(va, vb), JaccardSimilarity(ta, tb))
          << "jaccard(\"" << a << "\", \"" << b << "\")";
      EXPECT_EQ(OverlapCoefficient(va, vb), OverlapCoefficient(ta, tb))
          << "overlap(\"" << a << "\", \"" << b << "\")";
      EXPECT_EQ(CosineTokenSimilarity(va, vb), CosineTokenSimilarity(ta, tb))
          << "cosine(\"" << a << "\", \"" << b << "\")";
      EXPECT_EQ(MongeElkanSymmetric(va, vb), MongeElkanSymmetric(ta, tb))
          << "monge_elkan(\"" << a << "\", \"" << b << "\")";
      EXPECT_EQ(TrigramSimilarity(va, vb), TrigramSimilarity(a, b))
          << "trigram(\"" << a << "\", \"" << b << "\")";
    }
  }
}

TEST(TokenCacheTest, CountsHitsAndMisses) {
  TokenCache cache;
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);

  const TokenizedValue& first = cache.Get("alpha beta");
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  const TokenizedValue& second = cache.Get("alpha beta");
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  // Stable reference: the hit returns the same entry.
  EXPECT_EQ(&first, &second);

  cache.Get("gamma");
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.size(), cache.misses());
}

TEST(TokenCacheTest, KeysByExactString) {
  TokenCache cache;
  // Same token profile, different raw strings: distinct entries (the key is
  // the string, not its normalization).
  cache.Get("a b");
  cache.Get("a  b");
  cache.Get("A B");
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.hits(), 0u);
  // The empty string is a valid key.
  const TokenizedValue& empty = cache.Get("");
  EXPECT_TRUE(empty.tokens.empty());
  EXPECT_EQ(cache.size(), 4u);
}

TEST(TokenCacheTest, ReferencesSurviveRehash) {
  TokenCache cache;
  const TokenizedValue& pinned = cache.Get("pinned value");
  const std::vector<std::string> before = pinned.tokens;
  // Force many inserts so the unordered_map rehashes several times.
  for (int i = 0; i < 5000; ++i) {
    cache.Get("filler " + std::to_string(i));
  }
  EXPECT_EQ(pinned.tokens, before);
  EXPECT_EQ(&cache.Get("pinned value"), &pinned);
}

TEST(TokenCacheTest, PublishTelemetryAddsExactDeltasOnce) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& hits = registry.GetCounter("text/token_cache_hits");
  Counter& misses = registry.GetCounter("text/token_cache_misses");

  TokenCache cache;
  cache.Get("x");
  cache.Get("x");
  cache.Get("x");
  cache.Get("y");

  const uint64_t hits_before = hits.Value();
  const uint64_t misses_before = misses.Value();
  cache.PublishTelemetry();
  EXPECT_EQ(hits.Value(), hits_before + 2);
  EXPECT_EQ(misses.Value(), misses_before + 2);

  // Re-publishing without new lookups adds nothing.
  cache.PublishTelemetry();
  EXPECT_EQ(hits.Value(), hits_before + 2);
  EXPECT_EQ(misses.Value(), misses_before + 2);

  // Only the post-publish delta lands on the next call.
  cache.Get("y");
  cache.PublishTelemetry();
  EXPECT_EQ(hits.Value(), hits_before + 3);
  EXPECT_EQ(misses.Value(), misses_before + 2);
}

}  // namespace
}  // namespace landmark
