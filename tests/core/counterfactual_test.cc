#include "core/counterfactual.h"

#include <gtest/gtest.h>

#include "core/landmark_explainer.h"
#include "em/heuristic_model.h"

namespace landmark {
namespace {

std::shared_ptr<const Schema> TestSchema() {
  return *Schema::Make({"name", "price"});
}

PairRecord MakePair(const std::string& l0, const std::string& l1,
                    const std::string& r0, const std::string& r1) {
  PairRecord pair;
  pair.id = 3;
  pair.left = *Record::Make(TestSchema(), {Value::Of(l0), Value::Of(l1)});
  pair.right = *Record::Make(TestSchema(), {Value::Of(r0), Value::Of(r1)});
  return pair;
}

ExplainerOptions FastOptions() {
  ExplainerOptions options;
  options.num_samples = 200;
  return options;
}

TEST(CounterfactualTest, FlipsAMatchByRemovingSharedTokens) {
  JaccardEmModel model;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, FastOptions());
  // p = 1.0 match; removing shared tokens must flip it.
  PairRecord pair = MakePair("alpha beta gamma", "9", "alpha beta gamma", "9");
  auto explanations = explainer.Explain(model, pair);
  ASSERT_TRUE(explanations.ok());
  auto cf = FindCounterfactual(model, explainer, (*explanations)[0], pair);
  ASSERT_TRUE(cf.ok());
  EXPECT_TRUE(cf->flipped);
  EXPECT_GE(cf->probability_before, 0.5);
  EXPECT_LT(cf->probability_after, 0.5);
  EXPECT_GT(cf->removed_features.size(), 0u);
  EXPECT_LT(cf->removed_features.size(), (*explanations)[0].size());
}

TEST(CounterfactualTest, PruningYieldsIrreducibleSet) {
  JaccardEmModel model;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, FastOptions());
  PairRecord pair =
      MakePair("alpha beta gamma delta", "9", "alpha beta gamma delta", "9");
  auto explanations = explainer.Explain(model, pair);
  ASSERT_TRUE(explanations.ok());
  const Explanation& exp = (*explanations)[0];
  auto cf = FindCounterfactual(model, explainer, exp, pair);
  ASSERT_TRUE(cf.ok());
  ASSERT_TRUE(cf->flipped);

  // Irreducibility: restoring any single removed token un-flips the record.
  for (size_t restore : cf->removed_features) {
    std::vector<uint8_t> active(exp.size(), 1);
    for (size_t idx : cf->removed_features) active[idx] = 0;
    active[restore] = 1;
    PairRecord rec = explainer.Reconstruct(exp, pair, active).ValueOrDie();
    EXPECT_GE(model.PredictProba(rec), 0.5)
        << "removal set was not minimal: token " << restore << " not needed";
  }
}

TEST(CounterfactualTest, DoubleEntityFlipsANonMatchByKeepingInjected) {
  JaccardEmModel model;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, FastOptions());
  PairRecord pair = MakePair("aaa bbb ccc", "9", "xxx yyy", "5");
  auto explanations = explainer.Explain(model, pair);
  ASSERT_TRUE(explanations.ok());
  const Explanation& exp = (*explanations)[0];
  // The augmented record is what the explanation reasons about; its class
  // may be either side of the threshold — the counterfactual flips it.
  auto cf = FindCounterfactual(model, explainer, exp, pair);
  ASSERT_TRUE(cf.ok());
  EXPECT_TRUE(cf->flipped);
}

TEST(CounterfactualTest, MaxRemovalsBoundsTheSearch) {
  JaccardEmModel model;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, FastOptions());
  PairRecord pair = MakePair("a b c d e f g h", "9", "a b c d e f g h", "9");
  auto explanations = explainer.Explain(model, pair);
  ASSERT_TRUE(explanations.ok());
  CounterfactualOptions options;
  options.max_removals = 1;  // cannot flip with one token out of many
  auto cf = FindCounterfactual(model, explainer, (*explanations)[0], pair,
                               options);
  ASSERT_TRUE(cf.ok());
  EXPECT_FALSE(cf->flipped);
  EXPECT_LE(cf->removed_features.size(), 1u);
}

TEST(CounterfactualTest, RejectsEmptyExplanation) {
  JaccardEmModel model;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, FastOptions());
  Explanation empty;
  PairRecord pair = MakePair("a", "1", "b", "2");
  EXPECT_FALSE(FindCounterfactual(model, explainer, empty, pair).ok());
}

}  // namespace
}  // namespace landmark
