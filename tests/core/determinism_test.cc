// Reproducibility guarantees: every experiment artifact must be a pure
// function of its seeds. These tests pin that end-to-end.

#include <gtest/gtest.h>

#include "eval/experiment.h"

namespace landmark {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.records_per_label = 5;
  config.explainer_options.num_samples = 96;
  return config;
}

TEST(DeterminismTest, ExperimentContextIsReproducible) {
  MagellanDatasetSpec spec = *FindMagellanSpec("S-BR");
  auto a = ExperimentContext::Create(spec, SmallConfig());
  auto b = ExperimentContext::Create(spec, SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->sample(MatchLabel::kMatch), b->sample(MatchLabel::kMatch));
  EXPECT_EQ(a->sample(MatchLabel::kNonMatch),
            b->sample(MatchLabel::kNonMatch));
  // Same training outcome (spot-check a prediction).
  EXPECT_DOUBLE_EQ(a->model().PredictProba(a->dataset().pair(0)),
                   b->model().PredictProba(b->dataset().pair(0)));
}

TEST(DeterminismTest, FullEvaluationPipelineIsReproducible) {
  MagellanDatasetSpec spec = *FindMagellanSpec("S-BR");
  ExperimentConfig config = SmallConfig();

  auto run_once = [&]() {
    auto context = ExperimentContext::Create(spec, config).ValueOrDie();
    LandmarkExplainer explainer(GenerationStrategy::kSingle,
                                config.explainer_options);
    ExplainBatchResult batch =
        ExplainRecords(context.model(), explainer, context.dataset(),
                       context.sample(MatchLabel::kMatch));
    return EvaluateTokenRemoval(context.model(), explainer, context.dataset(),
                                batch.records, config.token_removal)
        .ValueOrDie();
  };
  TokenRemovalResult first = run_once();
  TokenRemovalResult second = run_once();
  EXPECT_DOUBLE_EQ(first.accuracy, second.accuracy);
  EXPECT_DOUBLE_EQ(first.mae, second.mae);
  EXPECT_EQ(first.num_trials, second.num_trials);
}

TEST(DeterminismTest, DifferentExplainerSeedsChangeTheNeighbourhood) {
  MagellanDatasetSpec spec = *FindMagellanSpec("S-BR");
  auto context = ExperimentContext::Create(spec, SmallConfig()).ValueOrDie();
  const PairRecord& pair =
      context.dataset().pair(context.sample(MatchLabel::kMatch)[0]);

  ExplainerOptions options_a = SmallConfig().explainer_options;
  ExplainerOptions options_b = options_a;
  options_b.seed = options_a.seed + 1;
  LandmarkExplainer a(GenerationStrategy::kSingle, options_a);
  LandmarkExplainer b(GenerationStrategy::kSingle, options_b);
  auto ea = a.Explain(context.model(), pair);
  auto eb = b.Explain(context.model(), pair);
  ASSERT_TRUE(ea.ok());
  ASSERT_TRUE(eb.ok());
  bool any_diff = false;
  for (size_t i = 0; i < (*ea)[0].size(); ++i) {
    any_diff |= (*ea)[0].token_weights[i].weight !=
                (*eb)[0].token_weights[i].weight;
  }
  EXPECT_TRUE(any_diff);
}

TEST(DeterminismTest, ShapNeighborhoodIsAlsoReproducible) {
  MagellanDatasetSpec spec = *FindMagellanSpec("S-BR");
  auto context = ExperimentContext::Create(spec, SmallConfig()).ValueOrDie();
  const PairRecord& pair =
      context.dataset().pair(context.sample(MatchLabel::kNonMatch)[0]);
  ExplainerOptions options = SmallConfig().explainer_options;
  options.neighborhood = NeighborhoodKind::kShap;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, options);
  auto a = explainer.Explain(context.model(), pair);
  auto b = explainer.Explain(context.model(), pair);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t e = 0; e < a->size(); ++e) {
    for (size_t i = 0; i < (*a)[e].size(); ++i) {
      EXPECT_DOUBLE_EQ((*a)[e].token_weights[i].weight,
                       (*b)[e].token_weights[i].weight);
    }
  }
}

}  // namespace
}  // namespace landmark
