#include <gtest/gtest.h>

#include "core/explanation.h"

namespace landmark {
namespace {

Explanation SampleExplanation() {
  Explanation exp;
  exp.explainer_name = "landmark-double";
  exp.landmark = EntitySide::kLeft;
  exp.model_prediction = 0.123;
  exp.surrogate_intercept = 0.05;
  exp.surrogate_r2 = 0.87;

  Token own;
  own.attribute = 0;
  own.occurrence = 0;
  own.text = "nikon";
  own.side = EntitySide::kRight;

  Token injected;
  injected.attribute = 0;
  injected.occurrence = 1;
  injected.text = "sony";
  injected.side = EntitySide::kRight;
  injected.injected = true;

  exp.token_weights = {TokenWeight{own, -0.4}, TokenWeight{injected, 0.6}};
  return exp;
}

TEST(ExplanationRenderTest, ToStringContainsAllKeyFields) {
  auto schema = *Schema::Make({"name"});
  const std::string out = SampleExplanation().ToString(*schema);
  EXPECT_NE(out.find("landmark-double"), std::string::npos);
  EXPECT_NE(out.find("landmark=left"), std::string::npos);
  EXPECT_NE(out.find("model_p=0.123"), std::string::npos);
  EXPECT_NE(out.find("r2=0.870"), std::string::npos);
  // Injected tokens carry the '+' marker; weights carry their signs.
  EXPECT_NE(out.find("R:+name__1__sony"), std::string::npos);
  EXPECT_NE(out.find("R:name__0__nikon"), std::string::npos);
  EXPECT_NE(out.find("+0.6000"), std::string::npos);
  EXPECT_NE(out.find("-0.4000"), std::string::npos);
}

TEST(ExplanationRenderTest, TopKTruncates) {
  auto schema = *Schema::Make({"name"});
  const std::string full = SampleExplanation().ToString(*schema, 2);
  const std::string one = SampleExplanation().ToString(*schema, 1);
  EXPECT_GT(full.size(), one.size());
  // Top-1 is the injected token (larger |weight|).
  EXPECT_NE(one.find("sony"), std::string::npos);
  EXPECT_EQ(one.find("nikon"), std::string::npos);
}

TEST(ExplanationRenderTest, NoLandmarkOmitsTheLabel) {
  Explanation exp = SampleExplanation();
  exp.landmark.reset();
  auto schema = *Schema::Make({"name"});
  EXPECT_EQ(exp.ToString(*schema).find("landmark="), std::string::npos);
}

}  // namespace
}  // namespace landmark
