// Tests for the KernelSHAP neighborhood (the second generic explainer that
// can be plugged into the Landmark framework).

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/landmark_explainer.h"
#include "core/mojito_copy_explainer.h"
#include "core/sampling.h"
#include "core/surrogate.h"
#include "em/em_model.h"
#include "text/tokenize.h"

namespace landmark {
namespace {

TEST(ShapleyKernelTest, ClosedFormForSmallD) {
  // d = 4, k = 1: (d-1) / (C(4,1) * 1 * 3) = 3 / 12 = 0.25
  EXPECT_NEAR(ShapleyKernelWeight({1, 0, 0, 0}), 0.25, 1e-12);
  // d = 4, k = 2: 3 / (6 * 2 * 2) = 0.125
  EXPECT_NEAR(ShapleyKernelWeight({1, 1, 0, 0}), 0.125, 1e-12);
  // Symmetric in k <-> d-k.
  EXPECT_NEAR(ShapleyKernelWeight({1, 1, 1, 0}),
              ShapleyKernelWeight({1, 0, 0, 0}), 1e-12);
}

TEST(ShapleyKernelTest, AnchorsGetTheAnchorWeight) {
  EXPECT_DOUBLE_EQ(ShapleyKernelWeight({1, 1, 1}, 123.0), 123.0);
  EXPECT_DOUBLE_EQ(ShapleyKernelWeight({0, 0, 0}, 123.0), 123.0);
}

TEST(ShapleyKernelTest, StableForLargeD) {
  std::vector<uint8_t> mask(200, 0);
  for (size_t i = 0; i < 100; ++i) mask[i] = 1;
  const double w = ShapleyKernelWeight(mask);
  EXPECT_TRUE(std::isfinite(w));
  EXPECT_GT(w, 0.0);
}

TEST(SampleShapMasksTest, AnchorsComeFirst) {
  Rng rng(1);
  auto masks = SampleShapMasks(6, 50, rng);
  ASSERT_EQ(masks.size(), 50u);
  for (uint8_t bit : masks[0]) EXPECT_EQ(bit, 1);
  for (uint8_t bit : masks[1]) EXPECT_EQ(bit, 0);
  for (size_t s = 2; s < masks.size(); ++s) {
    size_t k = 0;
    for (uint8_t bit : masks[s]) k += bit;
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 5u);
  }
}

TEST(SampleShapMasksTest, ExtremeSizesAreMostCommon) {
  // p(k) ∝ 1/(k(d-k)) peaks at k = 1 and k = d-1.
  Rng rng(2);
  auto masks = SampleShapMasks(8, 4000, rng);
  std::vector<size_t> counts(9, 0);
  for (size_t s = 2; s < masks.size(); ++s) {
    size_t k = 0;
    for (uint8_t bit : masks[s]) k += bit;
    ++counts[k];
  }
  EXPECT_GT(counts[1], counts[4]);
  EXPECT_GT(counts[7], counts[4]);
}

TEST(SampleShapMasksTest, SingleFeatureSpace) {
  Rng rng(3);
  auto masks = SampleShapMasks(1, 6, rng);
  ASSERT_EQ(masks.size(), 6u);
  EXPECT_EQ(masks[0][0], 1);
  EXPECT_EQ(masks[1][0], 0);
}

/// Additive model over the right entity's tokens: p = clamp(sum of
/// per-token scores). For such a model KernelSHAP's surrogate must recover
/// each token's score as its weight.
class AdditiveTokenModel : public EmModel {
 public:
  double PredictProba(const PairRecord& pair) const override {
    double total = 0.1;  // base rate
    for (size_t a = 0; a < pair.right.num_attributes(); ++a) {
      if (pair.right.value(a).is_null()) continue;
      for (const auto& token : WordTokens(pair.right.value(a).text())) {
        total += ScoreOf(token);
      }
    }
    return std::clamp(total, 0.0, 1.0);
  }
  std::string name() const override { return "additive-token"; }

  static double ScoreOf(const std::string& token) {
    if (token == "alpha") return 0.30;
    if (token == "beta") return 0.20;
    if (token == "gamma") return 0.10;
    if (token == "noise") return 0.00;
    return 0.0;
  }
};

TEST(ShapNeighborhoodTest, RecoversAdditiveContributions) {
  auto schema = *Schema::Make({"name"});
  PairRecord pair;
  pair.id = 1;
  pair.left = *Record::Make(schema, {Value::Of("anything here")});
  pair.right = *Record::Make(schema, {Value::Of("alpha beta gamma noise")});

  AdditiveTokenModel model;
  ExplainerOptions options;
  options.neighborhood = NeighborhoodKind::kShap;
  options.num_samples = 512;
  options.ridge_lambda = 1e-6;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, options);
  auto explanations = explainer.ExplainWithLandmark(model, pair,
                                                    EntitySide::kLeft);
  ASSERT_TRUE(explanations.ok());
  for (const TokenWeight& tw : explanations->token_weights) {
    EXPECT_NEAR(tw.weight, AdditiveTokenModel::ScoreOf(tw.token.text), 0.02)
        << tw.token.text;
  }
  // Local accuracy: intercept ~ f(empty) = 0.1.
  EXPECT_NEAR(explanations->surrogate_intercept, 0.1, 0.02);
}

TEST(ShapNeighborhoodTest, LimeAlsoApproximatesButShapAnchorsTheEndpoints) {
  // Both neighborhoods produce usable explanations; SHAP additionally pins
  // the all-active prediction: intercept + sum(w) ~ f(x).
  auto schema = *Schema::Make({"name"});
  PairRecord pair;
  pair.id = 2;
  pair.left = *Record::Make(schema, {Value::Of("x")});
  pair.right = *Record::Make(schema, {Value::Of("alpha beta gamma noise")});
  AdditiveTokenModel model;

  ExplainerOptions shap;
  shap.neighborhood = NeighborhoodKind::kShap;
  shap.num_samples = 512;
  shap.ridge_lambda = 1e-6;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, shap);
  auto exp = explainer.ExplainWithLandmark(model, pair, EntitySide::kLeft);
  ASSERT_TRUE(exp.ok());
  EXPECT_NEAR(exp->SurrogatePrediction(), exp->model_prediction, 0.02);
}

TEST(ShapNeighborhoodTest, WorksThroughMojitoCopyToo) {
  auto schema = *Schema::Make({"name", "price"});
  PairRecord pair;
  pair.id = 3;
  pair.left = *Record::Make(schema, {Value::Of("aaa bbb"), Value::Of("5")});
  pair.right = *Record::Make(schema, {Value::Of("ccc ddd"), Value::Of("9")});
  AdditiveTokenModel model;
  ExplainerOptions options;
  options.neighborhood = NeighborhoodKind::kShap;
  options.num_samples = 128;
  MojitoCopyExplainer copy(options);
  auto explanations = copy.Explain(model, pair);
  ASSERT_TRUE(explanations.ok());
  EXPECT_EQ(explanations->size(), 2u);
}

}  // namespace
}  // namespace landmark
