// Observation must not change behaviour: ExplainBatch with the audit sink
// attached (and with the HTTP exporter scraping concurrently) must be
// bit-identical to a bare run, across thread counts — the same contract
// engine_fast_path_test pins for the query fast path. The audit stream
// itself is checked for the append-order determinism promise: unit lines
// are byte-identical across thread counts, ordinals are monotone, and
// every planned unit produced exactly one line.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/engine/explainer_engine.h"
#include "core/engine/quality.h"
#include "core/landmark_explainer.h"
#include "datagen/magellan.h"
#include "em/heuristic_model.h"
#include "util/telemetry/audit.h"
#include "util/telemetry/http_exporter.h"

namespace landmark {
namespace {

const EmDataset& TestDataset() {
  static const EmDataset* dataset = [] {
    MagellanGenOptions gen;
    gen.size_scale = 0.25;
    return new EmDataset(
        *GenerateMagellanDataset(*FindMagellanSpec("S-AG"), gen));
  }();
  return *dataset;
}

void ExpectIdenticalResults(const EngineBatchResult& a,
                            const EngineBatchResult& b,
                            const std::string& label) {
  ASSERT_EQ(a.results.size(), b.results.size()) << label;
  for (size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_EQ(a.results[i].ok(), b.results[i].ok())
        << label << " record " << i;
    if (!a.results[i].ok()) continue;
    const std::vector<Explanation>& ea = *a.results[i];
    const std::vector<Explanation>& eb = *b.results[i];
    ASSERT_EQ(ea.size(), eb.size()) << label << " record " << i;
    for (size_t e = 0; e < ea.size(); ++e) {
      EXPECT_EQ(ea[e].model_prediction, eb[e].model_prediction)
          << label << " record " << i << " explanation " << e;
      EXPECT_EQ(ea[e].surrogate_intercept, eb[e].surrogate_intercept)
          << label << " record " << i << " explanation " << e;
      EXPECT_EQ(ea[e].surrogate_r2, eb[e].surrogate_r2)
          << label << " record " << i << " explanation " << e;
      ASSERT_EQ(ea[e].token_weights.size(), eb[e].token_weights.size());
      for (size_t t = 0; t < ea[e].token_weights.size(); ++t) {
        EXPECT_EQ(ea[e].token_weights[t].weight, eb[e].token_weights[t].weight)
            << label << " record " << i << " explanation " << e << " token "
            << t;
      }
    }
  }
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

/// The unit lines only — the batch trailer carries wall-clock stage
/// latencies, which legitimately differ between runs.
std::vector<std::string> UnitLines(const std::vector<std::string>& lines) {
  std::vector<std::string> units;
  for (const std::string& line : lines) {
    if (line.rfind("{\"type\":\"unit\"", 0) == 0) units.push_back(line);
  }
  return units;
}

TEST(EngineAuditTest, AuditAndExporterDoNotChangeExplanations) {
  const JaccardEmModel model;
  const EmDataset& dataset = TestDataset();
  std::vector<const PairRecord*> pairs;
  for (size_t i = 0; i < 4 && i < dataset.size(); ++i) {
    pairs.push_back(&dataset.pair(i));
  }
  ExplainerOptions explainer_options;
  explainer_options.num_samples = 64;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, explainer_options);

  // Baseline: no observation.
  EngineBatchResult baseline =
      ExplainerEngine(EngineOptions{}).ExplainBatch(model, pairs, explainer);

  auto exporter = HttpExporter::Start({});
  ASSERT_TRUE(exporter.ok()) << exporter.status().ToString();

  std::vector<std::string> unit_lines_by_threads;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    const std::string path = ::testing::TempDir() + "/engine_audit_" +
                             std::to_string(threads) + ".jsonl";
    auto sink = AuditSink::Open(path);
    ASSERT_TRUE(sink.ok()) << sink.status().ToString();

    EngineOptions options;
    options.num_threads = threads;
    options.audit_sink = sink->get();
    EngineBatchResult audited =
        ExplainerEngine(options).ExplainBatch(model, pairs, explainer);

    // Scrape mid-test so the exporter thread provably ran concurrently.
    int status = 0;
    auto scrape = HttpGetLoopback((*exporter)->port(), "/metrics", &status);
    ASSERT_TRUE(scrape.ok()) << scrape.status().ToString();
    EXPECT_EQ(status, 200);
    EXPECT_NE(scrape->find("landmark_explain_quality_r2_count"),
              std::string::npos);

    const std::string label = "threads=" + std::to_string(threads);
    ExpectIdenticalResults(baseline, audited, label);

    sink->reset();  // flush before reading
    const std::vector<std::string> lines = ReadLines(path);
    const std::vector<std::string> units = UnitLines(lines);
    EXPECT_EQ(units.size(), audited.stats.num_units) << label;
    EXPECT_EQ(lines.back().rfind("{\"type\":\"batch\"", 0), 0u) << label;
    for (size_t u = 0; u < units.size(); ++u) {
      const std::string prefix =
          "{\"type\":\"unit\",\"unit\":" + std::to_string(u) + ",";
      EXPECT_EQ(units[u].rfind(prefix, 0), 0u)
          << label << " line " << u << ": " << units[u];
      EXPECT_NE(units[u].find("\"explainer\":\"landmark-double\""),
                std::string::npos)
          << label;
      EXPECT_NE(units[u].find("\"top_tokens\":["), std::string::npos)
          << label;
    }
    unit_lines_by_threads.push_back(
        [&units] {
          std::string joined;
          for (const std::string& line : units) joined += line + "\n";
          return joined;
        }());
  }
  // The determinism contract extends to the audit stream: unit lines are
  // byte-identical regardless of thread count.
  ASSERT_EQ(unit_lines_by_threads.size(), 2u);
  EXPECT_EQ(unit_lines_by_threads[0], unit_lines_by_threads[1]);
}

TEST(EngineAuditTest, SingleRecordPathWritesOneUnitPerExplanation) {
  const JaccardEmModel model;
  const EmDataset& dataset = TestDataset();
  ExplainerOptions explainer_options;
  explainer_options.num_samples = 32;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, explainer_options);

  const std::string path = ::testing::TempDir() + "/engine_audit_one.jsonl";
  auto sink = AuditSink::Open(path);
  ASSERT_TRUE(sink.ok()) << sink.status().ToString();

  EngineOptions options;
  options.audit_sink = sink->get();
  ExplainerEngine engine(options);
  auto direct = engine.ExplainOne(model, dataset.pair(0), explainer);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  sink->reset();
  const std::vector<std::string> units = UnitLines(ReadLines(path));
  ASSERT_EQ(units.size(), direct->size());
  EXPECT_NE(units[0].find("\"record_index\":0"), std::string::npos);
}

TEST(ExplanationQualityTest, SignalsMatchHandComputation) {
  Explanation explanation;
  explanation.explainer_name = "landmark-single";
  explanation.model_prediction = 0.8;  // match verdict
  explanation.surrogate_r2 = 0.9;
  explanation.surrogate_intercept = 0.4;
  // Two tokens push towards match, one against (the interesting one under
  // a match verdict), one is ridge dust below epsilon.
  for (double weight : {0.6, 0.3, -0.2, 1e-15}) {
    TokenWeight tw;
    tw.token.text = "t";
    tw.weight = weight;
    explanation.token_weights.push_back(tw);
  }
  const std::vector<double> predictions = {0.8, 0.6, 0.3, 0.9};

  const ExplanationQuality quality =
      ComputeExplanationQuality(explanation, predictions);
  EXPECT_EQ(quality.weighted_r2, 0.9);
  EXPECT_EQ(quality.intercept, 0.4);
  EXPECT_EQ(quality.match_fraction, 0.75);  // 3 of 4 at or above 0.5
  EXPECT_EQ(quality.interesting_tokens, 1u);
  EXPECT_FALSE(quality.low_r2);
  EXPECT_FALSE(quality.degenerate_neighborhood);
  // All four tokens fit in top_k=5, so the share is the full mass.
  EXPECT_EQ(quality.top_weight_share, 1.0);
}

TEST(ExplanationQualityTest, DegenerateAndLowR2Flags) {
  Explanation explanation;
  explanation.model_prediction = 0.1;  // non-match verdict
  explanation.surrogate_r2 = std::nan("");
  TokenWeight tw;
  tw.weight = 0.5;  // pushes towards match: interesting under non-match
  explanation.token_weights.push_back(tw);

  // Neighbourhood never reaches the match class.
  const ExplanationQuality quality =
      ComputeExplanationQuality(explanation, {0.1, 0.2, 0.3});
  EXPECT_TRUE(std::isnan(quality.weighted_r2));
  EXPECT_TRUE(quality.low_r2);
  EXPECT_EQ(quality.match_fraction, 0.0);
  EXPECT_TRUE(quality.degenerate_neighborhood);
  EXPECT_EQ(quality.interesting_tokens, 1u);
}

}  // namespace
}  // namespace landmark
