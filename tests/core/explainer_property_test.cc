// Property sweep: invariants that must hold for EVERY explainer technique on
// EVERY benchmark domain (parameterized gtest over the cross product).

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/landmark_explainer.h"
#include "core/lime_explainer.h"
#include "core/mojito_copy_explainer.h"
#include "datagen/magellan.h"
#include "em/heuristic_model.h"

namespace landmark {
namespace {

enum class TechniqueKind { kSingle, kDouble, kAuto, kLime, kCopy };

struct PropertyCase {
  TechniqueKind technique;
  std::string dataset_code;
};

std::unique_ptr<PairExplainer> MakeExplainer(TechniqueKind kind) {
  ExplainerOptions options;
  options.num_samples = 96;  // enough for invariants, fast in a sweep
  switch (kind) {
    case TechniqueKind::kSingle:
      return std::make_unique<LandmarkExplainer>(GenerationStrategy::kSingle,
                                                 options);
    case TechniqueKind::kDouble:
      return std::make_unique<LandmarkExplainer>(GenerationStrategy::kDouble,
                                                 options);
    case TechniqueKind::kAuto:
      return std::make_unique<LandmarkExplainer>(GenerationStrategy::kAuto,
                                                 options);
    case TechniqueKind::kLime:
      return std::make_unique<LimeExplainer>(options);
    case TechniqueKind::kCopy:
      return std::make_unique<MojitoCopyExplainer>(options);
  }
  return nullptr;
}

class ExplainerPropertyTest : public ::testing::TestWithParam<PropertyCase> {
 protected:
  static EmDataset MakeDataset(const std::string& code) {
    MagellanDatasetSpec spec = *FindMagellanSpec(code);
    MagellanGenOptions gen;
    gen.size_scale = spec.size > 1000 ? 0.05 : 1.0;
    return *GenerateMagellanDataset(spec, gen);
  }
};

TEST_P(ExplainerPropertyTest, InvariantsHoldOnSampledRecords) {
  const PropertyCase& param = GetParam();
  EmDataset dataset = MakeDataset(param.dataset_code);
  JaccardEmModel model;  // transparent, fast, exercises token sensitivity
  std::unique_ptr<PairExplainer> explainer = MakeExplainer(param.technique);

  Rng rng(11);
  std::vector<size_t> sample;
  for (MatchLabel label : {MatchLabel::kMatch, MatchLabel::kNonMatch}) {
    for (size_t idx : dataset.SampleByLabel(label, 3, rng)) {
      sample.push_back(idx);
    }
  }
  ASSERT_FALSE(sample.empty());

  for (size_t idx : sample) {
    const PairRecord& pair = dataset.pair(idx);
    auto explanations = explainer->Explain(model, pair);
    if (!explanations.ok()) continue;  // dirty records may be all-null
    for (const Explanation& exp : *explanations) {
      SCOPED_TRACE("dataset " + param.dataset_code + " pair " +
                   std::to_string(idx) + " technique " + exp.explainer_name);

      // (1) Every weight and diagnostic is finite.
      for (const TokenWeight& tw : exp.token_weights) {
        EXPECT_TRUE(std::isfinite(tw.weight));
      }
      EXPECT_TRUE(std::isfinite(exp.surrogate_intercept));
      EXPECT_TRUE(std::isfinite(exp.surrogate_r2));

      // (2) model_prediction is the model on the all-active reconstruction.
      PairRecord all_active =
          explainer->Reconstruct(exp, pair, {}).ValueOrDie();
      EXPECT_NEAR(exp.model_prediction, model.PredictProba(all_active),
                  1e-12);

      // (3) model_prediction is a probability.
      EXPECT_GE(exp.model_prediction, 0.0);
      EXPECT_LE(exp.model_prediction, 1.0);

      // (4) Landmark techniques: the non-varying entity is reconstructed
      // bit-identically, whatever the mask.
      if (exp.landmark.has_value()) {
        std::vector<uint8_t> half(exp.size(), 1);
        for (size_t i = 0; i < half.size(); i += 2) half[i] = 0;
        PairRecord rec = explainer->Reconstruct(exp, pair, half).ValueOrDie();
        const EntitySide fixed = *exp.landmark;
        EXPECT_EQ(rec.entity(fixed), pair.entity(fixed));
      }

      // (5) Token provenance is valid: attributes in range, occurrences
      // unique per (side, attribute).
      std::set<std::tuple<int, size_t, size_t>> seen;
      for (const TokenWeight& tw : exp.token_weights) {
        EXPECT_LT(tw.token.attribute,
                  dataset.entity_schema()->num_attributes());
        EXPECT_TRUE(seen.insert({static_cast<int>(tw.token.side),
                                 tw.token.attribute, tw.token.occurrence})
                        .second);
      }

      // (6) The surrogate's all-active prediction is a sane probability
      // estimate (within a generous band around [0,1]).
      const double p_hat = exp.SurrogatePrediction();
      EXPECT_GT(p_hat, -0.6);
      EXPECT_LT(p_hat, 1.6);
    }
  }
}

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  std::string technique;
  switch (info.param.technique) {
    case TechniqueKind::kSingle: technique = "Single"; break;
    case TechniqueKind::kDouble: technique = "Double"; break;
    case TechniqueKind::kAuto: technique = "Auto"; break;
    case TechniqueKind::kLime: technique = "Lime"; break;
    case TechniqueKind::kCopy: technique = "Copy"; break;
  }
  std::string code = info.param.dataset_code;
  for (char& c : code) {
    if (c == '-') c = '_';
  }
  return technique + "_" + code;
}

std::vector<PropertyCase> AllCases() {
  std::vector<PropertyCase> cases;
  for (TechniqueKind technique :
       {TechniqueKind::kSingle, TechniqueKind::kDouble, TechniqueKind::kAuto,
        TechniqueKind::kLime, TechniqueKind::kCopy}) {
    for (const char* code : {"S-BR", "S-FZ", "S-AG", "T-AB", "D-IA", "D-WA"}) {
      cases.push_back(PropertyCase{technique, code});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllTechniquesAndDomains, ExplainerPropertyTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace landmark
