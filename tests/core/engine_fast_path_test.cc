// A/B equivalence suite for the query-stage fast path: ExplainBatch with
// EngineOptions::cache_features on must be bit-identical to the string path
// for every bundled model type, across thread counts and with the
// prediction memo on or off (docs/architecture.md, "Query fast path").

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine/explainer_engine.h"
#include "core/landmark_explainer.h"
#include "core/lime_explainer.h"
#include "core/mojito_copy_explainer.h"
#include "datagen/magellan.h"
#include "em/embedding_em_model.h"
#include "em/forest_em_model.h"
#include "em/heuristic_model.h"
#include "em/logreg_em_model.h"
#include "em/rule_em_model.h"

namespace landmark {
namespace {

/// One realistic generated dataset shared by every model (training real
/// models needs more rows than a hand-rolled fixture provides).
const EmDataset& TestDataset() {
  static const EmDataset* dataset = [] {
    MagellanGenOptions gen;
    gen.size_scale = 0.25;
    return new EmDataset(
        *GenerateMagellanDataset(*FindMagellanSpec("S-AG"), gen));
  }();
  return *dataset;
}

/// Trained once per model type, shared across all parameter combinations.
const EmModel& TestModel(const std::string& kind) {
  static auto* models = new std::map<std::string, std::unique_ptr<EmModel>>();
  auto it = models->find(kind);
  if (it != models->end()) return *it->second;
  std::unique_ptr<EmModel> model;
  if (kind == "jaccard-em") {
    model = std::make_unique<JaccardEmModel>();
  } else if (kind == "logreg-em") {
    model = std::move(LogRegEmModel::Train(TestDataset())).ValueOrDie();
  } else if (kind == "forest-em") {
    model = std::move(ForestEmModel::Train(TestDataset())).ValueOrDie();
  } else if (kind == "rule-em") {
    model = std::move(RuleEmModel::Train(TestDataset())).ValueOrDie();
  } else {
    EmbeddingEmModelOptions options;
    options.mlp.hidden = {16};
    options.mlp.epochs = 3;  // equivalence needs a scorer, not a good one
    model = std::move(EmbeddingEmModel::Train(TestDataset(), options))
                .ValueOrDie();
  }
  return *models->emplace(kind, std::move(model)).first->second;
}

/// Bit-identical comparison — the contract is exact equality of every
/// double, not approximate agreement.
void ExpectIdenticalResults(const EngineBatchResult& a,
                            const EngineBatchResult& b,
                            const std::string& label) {
  ASSERT_EQ(a.results.size(), b.results.size()) << label;
  for (size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_EQ(a.results[i].ok(), b.results[i].ok())
        << label << " record " << i;
    if (!a.results[i].ok()) continue;
    const std::vector<Explanation>& ea = *a.results[i];
    const std::vector<Explanation>& eb = *b.results[i];
    ASSERT_EQ(ea.size(), eb.size()) << label << " record " << i;
    for (size_t e = 0; e < ea.size(); ++e) {
      EXPECT_EQ(ea[e].model_prediction, eb[e].model_prediction)
          << label << " record " << i << " explanation " << e;
      EXPECT_EQ(ea[e].surrogate_intercept, eb[e].surrogate_intercept)
          << label << " record " << i << " explanation " << e;
      EXPECT_EQ(ea[e].surrogate_r2, eb[e].surrogate_r2)
          << label << " record " << i << " explanation " << e;
      ASSERT_EQ(ea[e].token_weights.size(), eb[e].token_weights.size());
      for (size_t t = 0; t < ea[e].token_weights.size(); ++t) {
        EXPECT_EQ(ea[e].token_weights[t].weight, eb[e].token_weights[t].weight)
            << label << " record " << i << " explanation " << e << " token "
            << t;
      }
    }
  }
}

std::unique_ptr<PairExplainer> MakeExplainer(const std::string& kind,
                                             const ExplainerOptions& options) {
  if (kind == "landmark-single") {
    return std::make_unique<LandmarkExplainer>(GenerationStrategy::kSingle,
                                               options);
  }
  if (kind == "landmark-double") {
    return std::make_unique<LandmarkExplainer>(GenerationStrategy::kDouble,
                                               options);
  }
  if (kind == "lime") return std::make_unique<LimeExplainer>(options);
  return std::make_unique<MojitoCopyExplainer>(options);
}

class EngineFastPathTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineFastPathTest, FastPathBitIdenticalToStringPath) {
  const EmModel& model = TestModel(GetParam());
  const EmDataset& dataset = TestDataset();
  std::vector<const PairRecord*> pairs;
  for (size_t i = 0; i < 3 && i < dataset.size(); ++i) {
    pairs.push_back(&dataset.pair(i));
  }
  ExplainerOptions explainer_options;
  explainer_options.num_samples = 64;

  for (const char* explainer_kind :
       {"landmark-single", "landmark-double", "lime", "mojito-copy"}) {
    std::unique_ptr<PairExplainer> explainer =
        MakeExplainer(explainer_kind, explainer_options);
    for (size_t threads : {size_t{1}, size_t{4}}) {
      for (bool memo : {true, false}) {
        EngineOptions fast_options;
        fast_options.num_threads = threads;
        fast_options.cache_predictions = memo;
        fast_options.cache_features = true;
        EngineOptions string_options = fast_options;
        string_options.cache_features = false;

        const std::string label = std::string(GetParam()) + "/" +
                                  explainer_kind + "/threads=" +
                                  std::to_string(threads) +
                                  (memo ? "/memo" : "/nomemo");
        EngineBatchResult fast =
            ExplainerEngine(fast_options).ExplainBatch(model, pairs,
                                                       *explainer);
        EngineBatchResult slow =
            ExplainerEngine(string_options).ExplainBatch(model, pairs,
                                                         *explainer);
        ExpectIdenticalResults(fast, slow, label);
        // The fast path actually engaged (and the string path did not).
        EXPECT_GT(fast.stats.token_cache_misses, 0u) << label;
        EXPECT_GT(fast.stats.token_cache_hits, 0u) << label;
        EXPECT_EQ(slow.stats.token_cache_misses, 0u) << label;
        EXPECT_EQ(slow.stats.token_cache_hits, 0u) << label;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBundledModels, EngineFastPathTest,
                         ::testing::Values("jaccard-em", "logreg-em",
                                           "forest-em", "rule-em",
                                           "embedding-em"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(EngineFastPathSingleTest, RunUnitMatchesBatchWithFastPath) {
  // The single-unit path (ExplainOne/RunUnit) also routes through the
  // prepared batch; it must agree with ExplainBatch under both settings.
  const EmModel& model = TestModel("logreg-em");
  const EmDataset& dataset = TestDataset();
  ExplainerOptions options;
  options.num_samples = 64;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, options);

  for (bool cache_features : {true, false}) {
    EngineOptions engine_options;
    engine_options.cache_features = cache_features;
    ExplainerEngine engine(engine_options);
    std::vector<const PairRecord*> one = {&dataset.pair(0)};
    EngineBatchResult batch = engine.ExplainBatch(model, one, explainer);
    auto direct = engine.ExplainOne(model, dataset.pair(0), explainer);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(batch.results[0].ok());
    ASSERT_EQ(direct->size(), batch.results[0]->size());
    for (size_t e = 0; e < direct->size(); ++e) {
      EXPECT_EQ((*direct)[e].model_prediction,
                (*batch.results[0])[e].model_prediction);
      for (size_t t = 0; t < (*direct)[e].token_weights.size(); ++t) {
        EXPECT_EQ((*direct)[e].token_weights[t].weight,
                  (*batch.results[0])[e].token_weights[t].weight);
      }
    }
  }
}

}  // namespace
}  // namespace landmark
