#include <gtest/gtest.h>

#include "core/landmark_explainer.h"
#include "core/lime_explainer.h"
#include "core/mojito_copy_explainer.h"
#include "em/heuristic_model.h"

namespace landmark {
namespace {

std::shared_ptr<const Schema> NameSchema() {
  return *Schema::Make({"name", "price"});
}

PairRecord MakePair(const std::string& l0, const std::string& l1,
                    const std::string& r0, const std::string& r1,
                    int64_t id = 1) {
  auto schema = NameSchema();
  PairRecord pair;
  pair.id = id;
  pair.left = *Record::Make(schema, {Value::Of(l0), Value::Of(l1)});
  pair.right = *Record::Make(schema, {Value::Of(r0), Value::Of(r1)});
  return pair;
}

ExplainerOptions FastOptions() {
  ExplainerOptions options;
  options.num_samples = 200;
  return options;
}

TEST(LimeExplainerTest, CoversTokensOfBothEntities) {
  JaccardEmModel model;
  LimeExplainer lime(FastOptions());
  PairRecord pair = MakePair("sony camera", "10", "sony case", "12");
  auto explanations = lime.Explain(model, pair);
  ASSERT_TRUE(explanations.ok());
  ASSERT_EQ(explanations->size(), 1u);
  const Explanation& exp = (*explanations)[0];
  EXPECT_EQ(exp.size(), 6u);  // 3 left + 3 right tokens
  EXPECT_FALSE(exp.landmark.has_value());
  size_t left = 0, right = 0;
  for (const auto& tw : exp.token_weights) {
    left += tw.token.side == EntitySide::kLeft;
    right += tw.token.side == EntitySide::kRight;
  }
  EXPECT_EQ(left, 3u);
  EXPECT_EQ(right, 3u);
}

TEST(LimeExplainerTest, IsDeterministic) {
  JaccardEmModel model;
  LimeExplainer lime(FastOptions());
  PairRecord pair = MakePair("alpha beta gamma", "5", "alpha delta", "5");
  auto a = lime.Explain(model, pair);
  auto b = lime.Explain(model, pair);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < (*a)[0].size(); ++i) {
    EXPECT_DOUBLE_EQ((*a)[0].token_weights[i].weight,
                     (*b)[0].token_weights[i].weight);
  }
}

TEST(LimeExplainerTest, DifferentRecordsGetDifferentNeighbourhoods) {
  JaccardEmModel model;
  LimeExplainer lime(FastOptions());
  PairRecord a = MakePair("alpha beta", "5", "alpha beta", "5", /*id=*/1);
  PairRecord b = MakePair("alpha beta", "5", "alpha beta", "5", /*id=*/2);
  auto ea = lime.Explain(model, a);
  auto eb = lime.Explain(model, b);
  ASSERT_TRUE(ea.ok());
  ASSERT_TRUE(eb.ok());
  // Same content, different ids -> different sampled masks -> weights are
  // extremely unlikely to be bit-identical across all tokens.
  bool any_diff = false;
  for (size_t i = 0; i < (*ea)[0].size(); ++i) {
    any_diff |= (*ea)[0].token_weights[i].weight !=
                (*eb)[0].token_weights[i].weight;
  }
  EXPECT_TRUE(any_diff);
}

TEST(LimeExplainerTest, EmptyRecordIsAnError) {
  JaccardEmModel model;
  LimeExplainer lime(FastOptions());
  PairRecord pair;
  pair.left = Record::Empty(NameSchema());
  pair.right = Record::Empty(NameSchema());
  EXPECT_FALSE(lime.Explain(model, pair).ok());
}

TEST(LandmarkSingleTest, ProducesTwoExplanationsWithOppositeVaryingSides) {
  JaccardEmModel model;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, FastOptions());
  PairRecord pair = MakePair("sony camera", "10", "sony case", "12");
  auto explanations = explainer.Explain(model, pair);
  ASSERT_TRUE(explanations.ok());
  ASSERT_EQ(explanations->size(), 2u);

  const Explanation& left_landmark = (*explanations)[0];
  EXPECT_EQ(left_landmark.landmark, EntitySide::kLeft);
  for (const auto& tw : left_landmark.token_weights) {
    EXPECT_EQ(tw.token.side, EntitySide::kRight);
    EXPECT_FALSE(tw.token.injected);
  }
  const Explanation& right_landmark = (*explanations)[1];
  EXPECT_EQ(right_landmark.landmark, EntitySide::kRight);
  for (const auto& tw : right_landmark.token_weights) {
    EXPECT_EQ(tw.token.side, EntitySide::kLeft);
  }
}

TEST(LandmarkSingleTest, SharedTokenPositiveNoiseTokenNegative) {
  // Model = mean jaccard. Landmark left = "alpha beta". Varying right =
  // "alpha zzz": dropping "alpha" lowers similarity (positive weight),
  // dropping "zzz" raises it (negative weight).
  JaccardEmModel model;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, FastOptions());
  PairRecord pair = MakePair("alpha beta", "7", "alpha zzz", "7");
  auto explanations = explainer.Explain(model, pair);
  ASSERT_TRUE(explanations.ok());
  const Explanation& exp = (*explanations)[0];  // landmark = left
  double w_alpha = 0, w_zzz = 0;
  for (const auto& tw : exp.token_weights) {
    if (tw.token.text == "alpha") w_alpha = tw.weight;
    if (tw.token.text == "zzz") w_zzz = tw.weight;
  }
  EXPECT_GT(w_alpha, 0.0);
  EXPECT_LT(w_zzz, 0.0);
  EXPECT_GT(w_alpha, w_zzz + 0.1);
}

TEST(LandmarkSingleTest, ReconstructNeverTouchesTheLandmark) {
  JaccardEmModel model;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, FastOptions());
  PairRecord pair = MakePair("sony camera kit", "10", "nikon case", "12");
  auto explanations = explainer.Explain(model, pair);
  ASSERT_TRUE(explanations.ok());
  const Explanation& exp = (*explanations)[0];  // landmark = left

  std::vector<uint8_t> all_removed(exp.size(), 0);
  auto rec = explainer.Reconstruct(exp, pair, all_removed);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->left, pair.left);  // landmark untouched
  for (size_t a = 0; a < rec->right.num_attributes(); ++a) {
    EXPECT_TRUE(rec->right.value(a).is_null());
  }
}

TEST(LandmarkDoubleTest, InjectsLandmarkTokensIntoVaryingEntity) {
  JaccardEmModel model;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, FastOptions());
  PairRecord pair = MakePair("sony camera", "10", "nikon case", "12");
  auto explanations = explainer.Explain(model, pair);
  ASSERT_TRUE(explanations.ok());
  const Explanation& exp = (*explanations)[0];  // landmark = left

  size_t injected = 0, original = 0;
  for (const auto& tw : exp.token_weights) {
    EXPECT_EQ(tw.token.side, EntitySide::kRight);
    injected += tw.token.injected;
    original += !tw.token.injected;
  }
  EXPECT_EQ(original, 3u);  // nikon, case, 12
  EXPECT_EQ(injected, 3u);  // sony, camera, 10
}

TEST(LandmarkDoubleTest, AllActiveRepresentationIsTheAugmentedRecord) {
  JaccardEmModel model;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, FastOptions());
  PairRecord pair = MakePair("sony camera", "10", "nikon case", "12");
  auto explanations = explainer.Explain(model, pair);
  ASSERT_TRUE(explanations.ok());
  const Explanation& exp = (*explanations)[0];

  auto rec = explainer.Reconstruct(exp, pair, {});
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->right.value(0).text(), "nikon case sony camera");
  EXPECT_EQ(rec->right.value(1).text(), "12 10");
  EXPECT_DOUBLE_EQ(exp.model_prediction, model.PredictProba(*rec));
}

TEST(LandmarkDoubleTest, InjectedLandmarkTokensHavePositiveWeight) {
  // For a non-matching pair, injected landmark tokens make the varying
  // entity more similar to the landmark: their weights must be positive.
  JaccardEmModel model;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, FastOptions());
  PairRecord pair = MakePair("alpha beta gamma", "7", "zzz yyy", "9");
  auto explanations = explainer.Explain(model, pair);
  ASSERT_TRUE(explanations.ok());
  const Explanation& exp = (*explanations)[0];  // landmark = left
  double injected_total = 0.0;
  double original_total = 0.0;
  for (const auto& tw : exp.token_weights) {
    if (tw.token.injected) injected_total += tw.weight;
    else original_total += tw.weight;
  }
  EXPECT_GT(injected_total, 0.0);
  EXPECT_GT(injected_total, original_total);
}

TEST(LandmarkAutoTest, PicksStrategyByPredictedClass) {
  JaccardEmModel model;
  LandmarkExplainer explainer(GenerationStrategy::kAuto, FastOptions());

  // Matching pair (p = 1): single-entity generation, no injected tokens.
  PairRecord match = MakePair("same name", "5", "same name", "5");
  auto m = explainer.Explain(model, match);
  ASSERT_TRUE(m.ok());
  for (const auto& tw : (*m)[0].token_weights) {
    EXPECT_FALSE(tw.token.injected);
  }

  // Non-matching pair (p = 0): double-entity generation injects tokens.
  PairRecord non_match = MakePair("aaa bbb", "5", "ccc ddd", "9");
  auto n = explainer.Explain(model, non_match);
  ASSERT_TRUE(n.ok());
  bool any_injected = false;
  for (const auto& tw : (*n)[0].token_weights) {
    any_injected |= tw.token.injected;
  }
  EXPECT_TRUE(any_injected);
}

TEST(LandmarkExplainerTest, NamesFollowStrategy) {
  EXPECT_EQ(LandmarkExplainer(GenerationStrategy::kSingle).name(),
            "landmark-single");
  EXPECT_EQ(LandmarkExplainer(GenerationStrategy::kDouble).name(),
            "landmark-double");
  EXPECT_EQ(LandmarkExplainer(GenerationStrategy::kAuto).name(),
            "landmark-auto");
}

TEST(MojitoCopyTest, TokenSpaceIsTheVaryingEntityWithUniformWeights) {
  JaccardEmModel model;
  MojitoCopyExplainer copy(FastOptions());
  PairRecord pair = MakePair("sony camera kit", "10", "nikon leather case", "12");
  auto explanations = copy.Explain(model, pair);
  ASSERT_TRUE(explanations.ok());
  ASSERT_EQ(explanations->size(), 2u);

  const Explanation& exp = (*explanations)[0];  // source = left, varying = right
  EXPECT_EQ(exp.landmark, EntitySide::kLeft);
  // Tokens are the right entity's original tokens.
  std::vector<std::string> texts;
  for (const auto& tw : exp.token_weights) {
    EXPECT_EQ(tw.token.side, EntitySide::kRight);
    texts.push_back(tw.token.text);
  }
  EXPECT_EQ(texts, (std::vector<std::string>{"nikon", "leather", "case", "12"}));

  // "Mojito treats attributes atomically": equal weights within an attribute.
  double name_weight = exp.token_weights[0].weight;
  EXPECT_DOUBLE_EQ(exp.token_weights[1].weight, name_weight);
  EXPECT_DOUBLE_EQ(exp.token_weights[2].weight, name_weight);
}

TEST(MojitoCopyTest, ModelPredictionIsTheOriginalRecord) {
  JaccardEmModel model;
  MojitoCopyExplainer copy(FastOptions());
  PairRecord pair = MakePair("aaa bbb", "5", "ccc", "9");
  auto explanations = copy.Explain(model, pair);
  ASSERT_TRUE(explanations.ok());
  EXPECT_DOUBLE_EQ((*explanations)[0].model_prediction,
                   model.PredictProba(pair));
}

TEST(MojitoCopyTest, CopyWeightsAreNegativeOnNonMatches) {
  // Keeping the original (non-matching) value active *lowers* the match
  // probability relative to copying, so attribute weights come out negative.
  JaccardEmModel model;
  MojitoCopyExplainer copy(FastOptions());
  PairRecord pair = MakePair("aaa bbb", "5", "ccc ddd", "9");
  auto explanations = copy.Explain(model, pair);
  ASSERT_TRUE(explanations.ok());
  double total = 0.0;
  for (const auto& tw : (*explanations)[0].token_weights) total += tw.weight;
  EXPECT_LT(total, 0.0);
}

TEST(ReconstructTest, RejectsWrongMaskSize) {
  JaccardEmModel model;
  LimeExplainer lime(FastOptions());
  PairRecord pair = MakePair("a b", "5", "c", "9");
  auto explanations = lime.Explain(model, pair);
  ASSERT_TRUE(explanations.ok());
  std::vector<uint8_t> wrong(3, 1);  // space has 5 tokens
  EXPECT_FALSE(lime.Reconstruct((*explanations)[0], pair, wrong).ok());
}

TEST(ExplanationTest, HelperAccessors) {
  Explanation exp;
  exp.surrogate_intercept = 0.5;
  auto add = [&](const std::string& text, size_t attr, double w) {
    Token t;
    t.text = text;
    t.attribute = attr;
    exp.token_weights.push_back(TokenWeight{t, w});
  };
  add("a", 0, 0.3);
  add("b", 0, -0.1);
  add("c", 1, 0.2);

  EXPECT_DOUBLE_EQ(exp.SurrogatePrediction(), 0.9);
  EXPECT_DOUBLE_EQ(exp.SurrogatePrediction({1, 0, 1}), 1.0);

  EXPECT_EQ(exp.TopFeatures(2), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(exp.PositiveFeatures(), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(exp.NegativeFeatures(), (std::vector<size_t>{1}));

  auto attr_weights = exp.AttributeWeights(2);
  EXPECT_DOUBLE_EQ(attr_weights[0], 0.4);
  EXPECT_DOUBLE_EQ(attr_weights[1], 0.2);
}

TEST(ExplanationTest, SurrogateTracksModelOnJaccard) {
  // Jaccard responds sub-linearly to token removal, but the surrogate should
  // still achieve a decent local fit (R² diagnostic).
  JaccardEmModel model;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, FastOptions());
  PairRecord pair =
      MakePair("alpha beta gamma delta", "7", "alpha beta epsilon", "7");
  auto explanations = explainer.Explain(model, pair);
  ASSERT_TRUE(explanations.ok());
  EXPECT_GT((*explanations)[0].surrogate_r2, 0.5);
}

}  // namespace
}  // namespace landmark
