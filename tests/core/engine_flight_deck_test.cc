// Engine-level flight-deck tests: scraping /statusz, /statusz?format=json
// and /profilez *during* an in-flight multi-threaded ExplainBatch must
// return well-formed responses describing the batch (and never perturb the
// explanations), and a model made slow on the injectable deck clock must
// raise `engine/stalls_total` with a structured stall entry in the audit
// batch trailer — all bit-identical to a run with the flight deck disabled.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine/explainer_engine.h"
#include "core/landmark_explainer.h"
#include "datagen/magellan.h"
#include "em/logreg_em_model.h"
#include "util/telemetry/audit.h"
#include "util/telemetry/flight_deck.h"
#include "util/telemetry/http_exporter.h"
#include "util/telemetry/metrics.h"
#include "util/timer.h"

namespace landmark {
namespace {

const EmDataset& TestDataset() {
  static const EmDataset* dataset = [] {
    MagellanGenOptions gen;
    gen.size_scale = 0.25;
    return new EmDataset(
        *GenerateMagellanDataset(*FindMagellanSpec("S-AG"), gen));
  }();
  return *dataset;
}

const EmModel& TestModel() {
  static const EmModel* model =
      LogRegEmModel::Train(TestDataset()).ValueOrDie().release();
  return *model;
}

std::vector<const PairRecord*> TestPairs(size_t n) {
  std::vector<const PairRecord*> pairs;
  for (size_t i = 0; i < n && i < TestDataset().size(); ++i) {
    pairs.push_back(&TestDataset().pair(i));
  }
  return pairs;
}

/// Bit-identical comparison — the flight deck must never change a single
/// double of any explanation.
void ExpectIdenticalResults(const EngineBatchResult& a,
                            const EngineBatchResult& b,
                            const std::string& label) {
  ASSERT_EQ(a.results.size(), b.results.size()) << label;
  for (size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_EQ(a.results[i].ok(), b.results[i].ok()) << label << " rec " << i;
    if (!a.results[i].ok()) continue;
    const std::vector<Explanation>& ea = *a.results[i];
    const std::vector<Explanation>& eb = *b.results[i];
    ASSERT_EQ(ea.size(), eb.size()) << label << " rec " << i;
    for (size_t e = 0; e < ea.size(); ++e) {
      EXPECT_EQ(ea[e].model_prediction, eb[e].model_prediction)
          << label << " rec " << i << " expl " << e;
      EXPECT_EQ(ea[e].surrogate_intercept, eb[e].surrogate_intercept)
          << label << " rec " << i << " expl " << e;
      EXPECT_EQ(ea[e].surrogate_r2, eb[e].surrogate_r2)
          << label << " rec " << i << " expl " << e;
      ASSERT_EQ(ea[e].token_weights.size(), eb[e].token_weights.size());
      for (size_t t = 0; t < ea[e].token_weights.size(); ++t) {
        EXPECT_EQ(ea[e].token_weights[t].weight, eb[e].token_weights[t].weight)
            << label << " rec " << i << " expl " << e << " token " << t;
      }
    }
  }
}

uint64_t StallsTotal() {
  return MetricsRegistry::Global().Snapshot().CounterValue(
      "engine/stalls_total", 0);
}

/// Delegating model that parks every query-stage scoring call at a gate
/// until the test releases it, so the batch is verifiably in flight while
/// the test scrapes the exporter. Plan-stage single predictions pass
/// through — only the range/prepared paths (the query stage) gate.
class GateModel : public EmModel {
 public:
  explicit GateModel(const EmModel& inner) : inner_(inner) {}

  double PredictProba(const PairRecord& pair) const override {
    return inner_.PredictProba(pair);
  }
  void PredictProbaRange(const std::vector<PairRecord>& pairs, size_t begin,
                         size_t end, double* out) const override {
    WaitAtGate();
    inner_.PredictProbaRange(pairs, begin, end, out);
  }
  void PredictProbaPrepared(const PreparedPairBatch& prepared, size_t begin,
                            size_t end, double* out) const override {
    WaitAtGate();
    inner_.PredictProbaPrepared(prepared, begin, end, out);
  }
  std::string name() const override { return inner_.name(); }

  bool in_query() const { return in_query_.load(std::memory_order_acquire); }
  void Release() { release_.store(true, std::memory_order_release); }

 private:
  void WaitAtGate() const {
    in_query_.store(true, std::memory_order_release);
    while (!release_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }

  const EmModel& inner_;
  mutable std::atomic<bool> in_query_{false};
  std::atomic<bool> release_{false};
};

TEST(EngineFlightDeckTest, ConcurrentScrapeDuringInFlightBatch) {
  const std::vector<const PairRecord*> pairs = TestPairs(4);
  ExplainerOptions explainer_options;
  explainer_options.num_samples = 64;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, explainer_options);

  EngineOptions options;
  options.num_threads = 4;
  options.use_task_graph = true;

  auto exporter = HttpExporter::Start({});
  ASSERT_TRUE(exporter.ok()) << exporter.status().ToString();
  const uint16_t port = (*exporter)->port();

  GateModel gated(TestModel());
  ExplainerEngine engine(options);
  EngineBatchResult gated_result;
  // landmark-lint: allow(raw-thread) the batch must run while this test
  // thread scrapes the exporter; the pool is busy being the thing observed
  std::thread batch_thread([&] {
    gated_result = engine.ExplainBatch(gated, pairs, explainer);
  });

  // Wait (bounded, no sleeping) until a worker is parked inside the query
  // stage, i.e. the batch is genuinely in flight.
  Timer timer;
  while (!gated.in_query() && timer.ElapsedSeconds() < 30.0) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(gated.in_query()) << "batch never reached the query stage";

  // Scrape repeatedly while the batch is pinned in flight: every response
  // must be well-formed and describe the live batch.
  for (int round = 0; round < 3; ++round) {
    int status = 0;
    auto text = HttpGetLoopback(port, "/statusz", &status);
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    EXPECT_EQ(status, 200);
    EXPECT_NE(text->find("engine/batches"), std::string::npos);
    EXPECT_NE(text->find("-- flight deck --"), std::string::npos);
    EXPECT_NE(text->find("scheduler=task-graph records=4"),
              std::string::npos)
        << *text;

    auto json = HttpGetLoopback(port, "/statusz?format=json", &status);
    ASSERT_TRUE(json.ok()) << json.status().ToString();
    EXPECT_EQ(status, 200);
    ASSERT_FALSE(json->empty());
    EXPECT_EQ(json->front(), '{');
    // Per-stage DAG node counts of the attached graph.
    EXPECT_NE(json->find("\"stage\":\"engine/"), std::string::npos) << *json;
    EXPECT_NE(json->find("\"pending\":"), std::string::npos);
    EXPECT_NE(json->find("\"done\":"), std::string::npos);
    // Per-worker activity: the pool workers are registered and at least one
    // is parked inside an engine stage right now.
    EXPECT_NE(json->find("\"worker\":\"pool-worker-"), std::string::npos)
        << *json;
    EXPECT_NE(json->find("engine/"), std::string::npos);
  }

  // A short profile window while workers hold engine-stage frames must
  // observe at least one folded stack naming an engine stage.
  int status = 0;
  auto profile = HttpGetLoopback(port, "/profilez?seconds=0.3", &status);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(status, 200);
  EXPECT_NE(profile->find("engine/"), std::string::npos) << *profile;

  gated.Release();
  batch_thread.join();
  (*exporter)->Stop();

  // The scraped run explains bit-identically to an unobserved one.
  EngineBatchResult plain =
      ExplainerEngine(options).ExplainBatch(TestModel(), pairs, explainer);
  ExpectIdenticalResults(gated_result, plain, "scraped-vs-plain");
}

std::atomic<uint64_t> g_fake_now_ns{0};
uint64_t FakeNow() { return g_fake_now_ns.load(std::memory_order_relaxed); }

/// Delegating model whose *first* query-stage call advances the fake deck
/// clock past the stall threshold and then holds the node open until the
/// engine's watchdog has reported the stall (bounded by a real-time
/// timeout). Scoring itself is untouched, so explanations stay identical.
class SlowFirstQueryModel : public EmModel {
 public:
  SlowFirstQueryModel(const EmModel& inner, uint64_t stalls_baseline)
      : inner_(inner), stalls_baseline_(stalls_baseline) {}

  double PredictProba(const PairRecord& pair) const override {
    return inner_.PredictProba(pair);
  }
  void PredictProbaRange(const std::vector<PairRecord>& pairs, size_t begin,
                         size_t end, double* out) const override {
    StallOnce();
    inner_.PredictProbaRange(pairs, begin, end, out);
  }
  void PredictProbaPrepared(const PreparedPairBatch& prepared, size_t begin,
                            size_t end, double* out) const override {
    StallOnce();
    inner_.PredictProbaPrepared(prepared, begin, end, out);
  }
  std::string name() const override { return inner_.name(); }

 private:
  void StallOnce() const {
    if (stalled_.exchange(true)) return;
    g_fake_now_ns.fetch_add(uint64_t{10} * 1000 * 1000 * 1000,
                            std::memory_order_relaxed);
    // Keep the node running until the watchdog (real-time 5ms poll) sees
    // the 10 virtual seconds of elapsed node time. Bounded spin.
    Timer timer;
    while (StallsTotal() <= stalls_baseline_ &&
           timer.ElapsedSeconds() < 30.0) {
      std::this_thread::yield();
    }
  }

  const EmModel& inner_;
  const uint64_t stalls_baseline_;
  mutable std::atomic<bool> stalled_{false};
};

std::string LastLine(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::string last;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) last = line;
  }
  return last;
}

TEST(EngineFlightDeckTest, StallRaisesCounterAndAuditTrailer) {
  const std::vector<const PairRecord*> pairs = TestPairs(2);
  ExplainerOptions explainer_options;
  explainer_options.num_samples = 64;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, explainer_options);

  const std::string audit_path =
      ::testing::TempDir() + "/flight_deck_stall_audit.jsonl";
  const uint64_t baseline = StallsTotal();

  g_fake_now_ns.store(1000, std::memory_order_relaxed);
  SetFlightDeckClockForTest(&FakeNow);
  EngineBatchResult slow_result;
  {
    auto sink = AuditSink::Open(audit_path);
    ASSERT_TRUE(sink.ok()) << sink.status().ToString();
    EngineOptions options;
    options.num_threads = 1;
    options.stall_threshold = 0.5;
    options.audit_sink = sink->get();
    SlowFirstQueryModel slow(TestModel(), baseline);
    slow_result = ExplainerEngine(options).ExplainBatch(slow, pairs,
                                                        explainer);
  }
  SetFlightDeckClockForTest(nullptr);

  // The watchdog counted the stall...
  EXPECT_GE(StallsTotal(), baseline + 1);

  // ...and the audit batch trailer carries the structured report.
  const std::string trailer = LastLine(audit_path);
  ASSERT_NE(trailer.find("\"type\":\"batch\""), std::string::npos) << trailer;
  EXPECT_EQ(trailer.find("\"num_stalls\":0"), std::string::npos) << trailer;
  EXPECT_NE(trailer.find("\"stalls\":["), std::string::npos) << trailer;
  EXPECT_NE(trailer.find("\"stage\":\"engine/query\""), std::string::npos)
      << trailer;
  EXPECT_NE(trailer.find("\"elapsed_seconds\":"), std::string::npos);
  EXPECT_NE(trailer.find("\"worker\":"), std::string::npos);
  std::remove(audit_path.c_str());

  // Explanations are bit-identical to a run with the flight deck disabled.
  EngineOptions plain_options;
  plain_options.num_threads = 1;
  EngineBatchResult plain =
      ExplainerEngine(plain_options).ExplainBatch(TestModel(), pairs,
                                                  explainer);
  ExpectIdenticalResults(slow_result, plain, "stalled-vs-plain");
}

}  // namespace
}  // namespace landmark
