// The bit-packed mask layout (core/sampling.h): the packed samplers must
// be bit-for-bit consistent with the legacy byte samplers on the same RNG
// stream, popcount-based weights must equal the byte-path weights exactly,
// and the padding-bits-stay-zero invariant the engine's word-wise mask
// deduplication relies on must hold everywhere.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/sampling.h"
#include "util/rng.h"

namespace landmark {
namespace {

/// Padding bits of the last word of every row are zero — the invariant
/// that makes word-wise row comparison equivalent to mask comparison.
void ExpectPaddingZero(const MaskMatrix& masks) {
  const size_t tail = masks.dim() % 64;
  if (tail == 0 || masks.rows() == 0) return;
  const uint64_t padding = ~((uint64_t{1} << tail) - 1);
  for (size_t r = 0; r < masks.rows(); ++r) {
    EXPECT_EQ(masks.row_words(r)[masks.words_per_row() - 1] & padding, 0u)
        << "row " << r;
  }
}

TEST(MaskMatrixTest, LayoutAndBitOps) {
  MaskMatrix masks(3, 70);  // two words per row, 6 padding bits
  EXPECT_EQ(masks.rows(), 3u);
  EXPECT_EQ(masks.dim(), 70u);
  EXPECT_EQ(masks.words_per_row(), 2u);
  EXPECT_FALSE(masks.bit(1, 65));
  masks.SetBit(1, 65);
  EXPECT_TRUE(masks.bit(1, 65));
  EXPECT_FALSE(masks.bit(0, 65));  // row-local
  EXPECT_FALSE(masks.bit(2, 65));
  EXPECT_EQ(masks.ActiveCount(1), 1u);
  masks.ClearBit(1, 65);
  EXPECT_FALSE(masks.bit(1, 65));
  EXPECT_EQ(masks.ActiveCount(1), 0u);
}

TEST(MaskMatrixTest, FillRowKeepsPaddingZero) {
  MaskMatrix masks(2, 70);
  masks.FillRow(0);
  EXPECT_EQ(masks.ActiveCount(0), 70u);
  EXPECT_EQ(masks.ActiveCount(1), 0u);
  ExpectPaddingZero(masks);
  // Row views agree with the matrix accessors.
  const MaskRow row = masks.row(0);
  EXPECT_EQ(row.dim, 70u);
  EXPECT_EQ(row.num_words(), 2u);
  EXPECT_EQ(row.ActiveCount(), 70u);
  for (size_t i = 0; i < 70; ++i) EXPECT_TRUE(row.bit(i)) << i;
}

TEST(MaskMatrixTest, ToBytesRoundTrip) {
  MaskMatrix masks(1, 9);
  masks.SetBit(0, 0);
  masks.SetBit(0, 3);
  masks.SetBit(0, 8);
  const std::vector<uint8_t> bytes = masks.row(0).ToBytes();
  ASSERT_EQ(bytes.size(), 9u);
  for (size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(bytes[i] != 0, masks.bit(0, i)) << i;
  }
}

class PackedSamplerTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PackedSamplerTest, PerturbationSamplerMatchesByteSampler) {
  const size_t dim = GetParam();
  Rng packed_rng(77);
  Rng byte_rng(77);
  const MaskMatrix packed = SamplePerturbationMaskMatrix(dim, 33, packed_rng);
  const std::vector<std::vector<uint8_t>> bytes =
      SamplePerturbationMasks(dim, 33, byte_rng);
  ASSERT_EQ(packed.rows(), bytes.size());
  ASSERT_EQ(packed.dim(), dim);
  for (size_t r = 0; r < packed.rows(); ++r) {
    for (size_t i = 0; i < dim; ++i) {
      ASSERT_EQ(packed.bit(r, i), bytes[r][i] != 0)
          << "row " << r << " bit " << i;
    }
  }
  // Both samplers consumed the identical RNG sequence.
  EXPECT_EQ(packed_rng.Next(), byte_rng.Next());
  // First mask is the unperturbed all-ones representation.
  EXPECT_EQ(packed.ActiveCount(0), dim);
  ExpectPaddingZero(packed);
}

TEST_P(PackedSamplerTest, ShapSamplerMatchesByteSampler) {
  const size_t dim = GetParam();
  Rng packed_rng(78);
  Rng byte_rng(78);
  const MaskMatrix packed = SampleShapMaskMatrix(dim, 33, packed_rng);
  const std::vector<std::vector<uint8_t>> bytes =
      SampleShapMasks(dim, 33, byte_rng);
  ASSERT_EQ(packed.rows(), bytes.size());
  for (size_t r = 0; r < packed.rows(); ++r) {
    for (size_t i = 0; i < dim; ++i) {
      ASSERT_EQ(packed.bit(r, i), bytes[r][i] != 0)
          << "row " << r << " bit " << i;
    }
  }
  EXPECT_EQ(packed_rng.Next(), byte_rng.Next());
  ExpectPaddingZero(packed);
}

TEST_P(PackedSamplerTest, PopcountWeightsEqualBytePathWeights) {
  const size_t dim = GetParam();
  Rng rng(79);
  const MaskMatrix packed = SamplePerturbationMaskMatrix(dim, 33, rng);
  for (size_t r = 0; r < packed.rows(); ++r) {
    const MaskRow row = packed.row(r);
    const std::vector<uint8_t> bytes = row.ToBytes();
    // Bit-equality of the derived doubles, not approximate agreement: the
    // packed path feeds the same arithmetic from a popcount.
    EXPECT_EQ(ActiveFraction(row), ActiveFraction(bytes)) << r;
    EXPECT_EQ(KernelWeight(row, 0.25), KernelWeight(bytes, 0.25)) << r;
    EXPECT_EQ(ShapleyKernelWeight(row), ShapleyKernelWeight(bytes)) << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, PackedSamplerTest,
                         ::testing::Values(1, 2, 7, 63, 64, 65, 130),
                         [](const auto& info) {
                           return "dim" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace landmark
