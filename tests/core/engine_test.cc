#include "core/engine/explainer_engine.h"

#include <gtest/gtest.h>

#include "core/landmark_explainer.h"
#include "core/lime_explainer.h"
#include "core/mojito_copy_explainer.h"
#include "data/em_dataset.h"
#include "em/heuristic_model.h"

namespace landmark {
namespace {

std::shared_ptr<const Schema> TestSchema() {
  return *Schema::Make({"name", "price"});
}

EmDataset SmallDataset() {
  auto schema = TestSchema();
  EmDataset dataset("engine-test", schema);
  auto add = [&](const std::string& l0, const std::string& l1,
                 const std::string& r0, const std::string& r1,
                 MatchLabel label) {
    PairRecord p;
    p.id = static_cast<int64_t>(dataset.size());
    p.left = *Record::Make(schema, {Value::Of(l0), Value::Of(l1)});
    p.right = *Record::Make(schema, {Value::Of(r0), Value::Of(r1)});
    p.label = label;
    ASSERT_TRUE(dataset.Append(std::move(p)).ok());
  };
  add("alpha beta gamma", "10", "alpha beta delta", "10", MatchLabel::kMatch);
  add("epsilon zeta eta", "20", "epsilon zeta eta", "20", MatchLabel::kMatch);
  add("one two three", "30", "nine eight seven", "99", MatchLabel::kNonMatch);
  add("red green blue", "5", "cyan magenta", "77", MatchLabel::kNonMatch);
  return dataset;
}

ExplainerOptions FastOptions() {
  ExplainerOptions options;
  options.num_samples = 120;
  return options;
}

std::vector<const PairRecord*> AllPairs(const EmDataset& dataset) {
  std::vector<const PairRecord*> pairs;
  for (size_t i = 0; i < dataset.size(); ++i) {
    pairs.push_back(&dataset.pair(i));
  }
  return pairs;
}

/// Bit-identical comparison of two batch outputs — the determinism contract
/// promises exact equality, not approximate agreement.
void ExpectIdenticalResults(const EngineBatchResult& a,
                            const EngineBatchResult& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_EQ(a.results[i].ok(), b.results[i].ok()) << "record " << i;
    if (!a.results[i].ok()) continue;
    const std::vector<Explanation>& ea = *a.results[i];
    const std::vector<Explanation>& eb = *b.results[i];
    ASSERT_EQ(ea.size(), eb.size()) << "record " << i;
    for (size_t e = 0; e < ea.size(); ++e) {
      EXPECT_EQ(ea[e].explainer_name, eb[e].explainer_name);
      EXPECT_EQ(ea[e].landmark, eb[e].landmark);
      EXPECT_EQ(ea[e].model_prediction, eb[e].model_prediction);
      EXPECT_EQ(ea[e].surrogate_intercept, eb[e].surrogate_intercept);
      EXPECT_EQ(ea[e].surrogate_r2, eb[e].surrogate_r2);
      ASSERT_EQ(ea[e].token_weights.size(), eb[e].token_weights.size());
      for (size_t t = 0; t < ea[e].token_weights.size(); ++t) {
        EXPECT_EQ(ea[e].token_weights[t].weight, eb[e].token_weights[t].weight)
            << "record " << i << " explanation " << e << " token " << t;
      }
    }
  }
}

class EngineDeterminismTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<PairExplainer> MakeExplainer() const {
    const std::string kind = GetParam();
    if (kind == "landmark-single") {
      return std::make_unique<LandmarkExplainer>(GenerationStrategy::kSingle,
                                                 FastOptions());
    }
    if (kind == "landmark-double") {
      return std::make_unique<LandmarkExplainer>(GenerationStrategy::kDouble,
                                                 FastOptions());
    }
    if (kind == "lime") return std::make_unique<LimeExplainer>(FastOptions());
    return std::make_unique<MojitoCopyExplainer>(FastOptions());
  }
};

TEST_P(EngineDeterminismTest, ThreadCountNeverChangesResults) {
  EmDataset dataset = SmallDataset();
  JaccardEmModel model;
  std::unique_ptr<PairExplainer> explainer = MakeExplainer();
  std::vector<const PairRecord*> pairs = AllPairs(dataset);

  EngineOptions serial_options;
  serial_options.num_threads = 1;
  ExplainerEngine serial(serial_options);
  EngineOptions parallel_options;
  parallel_options.num_threads = 4;
  ExplainerEngine parallel(parallel_options);

  EngineBatchResult a = serial.ExplainBatch(model, pairs, *explainer);
  EngineBatchResult b = parallel.ExplainBatch(model, pairs, *explainer);
  ExpectIdenticalResults(a, b);
}

TEST_P(EngineDeterminismTest, CacheNeverChangesResults) {
  EmDataset dataset = SmallDataset();
  JaccardEmModel model;
  std::unique_ptr<PairExplainer> explainer = MakeExplainer();
  std::vector<const PairRecord*> pairs = AllPairs(dataset);

  EngineOptions cached_options;
  cached_options.cache_predictions = true;
  ExplainerEngine cached(cached_options);
  EngineOptions raw_options;
  raw_options.cache_predictions = false;
  ExplainerEngine raw(raw_options);

  EngineBatchResult a = cached.ExplainBatch(model, pairs, *explainer);
  EngineBatchResult b = raw.ExplainBatch(model, pairs, *explainer);
  ExpectIdenticalResults(a, b);
  EXPECT_EQ(b.stats.cache_hits, 0u);
  EXPECT_EQ(b.stats.num_model_queries, b.stats.num_masks);
}

TEST_P(EngineDeterminismTest, BatchAgreesWithPerRecordExplain) {
  EmDataset dataset = SmallDataset();
  JaccardEmModel model;
  std::unique_ptr<PairExplainer> explainer = MakeExplainer();
  std::vector<const PairRecord*> pairs = AllPairs(dataset);

  EngineOptions options;
  options.num_threads = 4;
  ExplainerEngine engine(options);
  EngineBatchResult batch = engine.ExplainBatch(model, pairs, *explainer);

  for (size_t i = 0; i < pairs.size(); ++i) {
    auto direct = explainer->Explain(model, *pairs[i]);
    ASSERT_EQ(direct.ok(), batch.results[i].ok()) << "record " << i;
    if (!direct.ok()) continue;
    ASSERT_EQ(direct->size(), batch.results[i]->size());
    for (size_t e = 0; e < direct->size(); ++e) {
      const Explanation& a = (*direct)[e];
      const Explanation& b = (*batch.results[i])[e];
      EXPECT_EQ(a.model_prediction, b.model_prediction);
      EXPECT_EQ(a.surrogate_intercept, b.surrogate_intercept);
      EXPECT_EQ(a.surrogate_r2, b.surrogate_r2);
      ASSERT_EQ(a.token_weights.size(), b.token_weights.size());
      for (size_t t = 0; t < a.token_weights.size(); ++t) {
        EXPECT_EQ(a.token_weights[t].weight, b.token_weights[t].weight);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, EngineDeterminismTest,
                         ::testing::Values("landmark-single",
                                           "landmark-double", "lime",
                                           "mojito-copy"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(EngineCacheTest, SmallTokenSpacesQueryFarFewerPairsThanMasks) {
  // "alpha beta" vs "alpha beta": 2 tokens per side -> at most 2^2 distinct
  // masks per unit, while the sampler draws 120. The memo must collapse the
  // query count accordingly.
  auto schema = TestSchema();
  EmDataset dataset("tiny", schema);
  PairRecord p;
  p.left = *Record::Make(schema, {Value::Of("alpha beta"), Value::Null()});
  p.right = *Record::Make(schema, {Value::Of("alpha gamma"), Value::Null()});
  p.label = MatchLabel::kMatch;
  ASSERT_TRUE(dataset.Append(std::move(p)).ok());

  JaccardEmModel model;
  LimeExplainer lime(FastOptions());
  ExplainerEngine engine;
  EngineBatchResult batch =
      engine.ExplainBatch(model, AllPairs(dataset), lime);
  ASSERT_TRUE(batch.results[0].ok());
  EXPECT_EQ(batch.stats.num_masks, 120u);
  // 4 tokens total in LIME's joint space -> at most 16 distinct masks.
  EXPECT_LE(batch.stats.num_model_queries, 16u);
  EXPECT_EQ(batch.stats.cache_hits,
            batch.stats.num_masks - batch.stats.num_model_queries);
  EXPECT_GT(batch.stats.cache_hits, 0u);
}

TEST(EngineValidationTest, RejectsInvalidOptionsUpFront) {
  for (auto mutate : std::vector<std::function<void(ExplainerOptions&)>>{
           [](ExplainerOptions& o) { o.num_samples = 0; },
           [](ExplainerOptions& o) { o.num_samples = 1; },
           [](ExplainerOptions& o) { o.kernel_width = 0.0; },
           [](ExplainerOptions& o) { o.kernel_width = -1.0; },
           [](ExplainerOptions& o) { o.ridge_lambda = -0.5; }}) {
    ExplainerOptions options;
    mutate(options);
    EXPECT_EQ(ValidateExplainerOptions(options).code(),
              StatusCode::kInvalidArgument);

    EmDataset dataset = SmallDataset();
    JaccardEmModel model;
    LimeExplainer lime(options);
    // The whole batch is rejected before any work happens.
    ExplainerEngine engine;
    EngineBatchResult batch =
        engine.ExplainBatch(model, AllPairs(dataset), lime);
    EXPECT_EQ(batch.stats.num_failed_records, dataset.size());
    for (const auto& result : batch.results) {
      ASSERT_FALSE(result.ok());
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    }
    // Per-record paths reject identically.
    EXPECT_EQ(lime.Explain(model, dataset.pair(0)).status().code(),
              StatusCode::kInvalidArgument);
  }
  EXPECT_TRUE(ValidateExplainerOptions(ExplainerOptions{}).ok());
}

TEST(EngineBatchTest, FailedRecordsAreReportedInPlace) {
  auto schema = TestSchema();
  EmDataset dataset("mixed", schema);
  PairRecord good;
  good.left = *Record::Make(schema, {Value::Of("alpha beta"), Value::Of("1")});
  good.right = *Record::Make(schema, {Value::Of("alpha beta"), Value::Of("1")});
  good.label = MatchLabel::kMatch;
  ASSERT_TRUE(dataset.Append(std::move(good)).ok());
  PairRecord empty;  // no tokens on either side: unexplainable
  empty.left = Record::Empty(schema);
  empty.right = Record::Empty(schema);
  ASSERT_TRUE(dataset.Append(std::move(empty)).ok());

  JaccardEmModel model;
  LimeExplainer lime(FastOptions());
  ExplainerEngine engine;
  EngineBatchResult batch = engine.ExplainBatch(model, AllPairs(dataset), lime);
  ASSERT_EQ(batch.results.size(), 2u);
  EXPECT_TRUE(batch.results[0].ok());
  EXPECT_FALSE(batch.results[1].ok());
  EXPECT_EQ(batch.stats.num_failed_records, 1u);
}

TEST(EngineBatchTest, EmptyBatchIsANoOp) {
  JaccardEmModel model;
  LimeExplainer lime(FastOptions());
  ExplainerEngine engine;
  EngineBatchResult batch = engine.ExplainBatch(
      model, std::vector<const PairRecord*>{}, lime);
  EXPECT_TRUE(batch.results.empty());
  EXPECT_EQ(batch.stats.num_records, 0u);
  EXPECT_EQ(batch.stats.num_model_queries, 0u);
}

TEST(EngineBatchTest, StatsCountStages) {
  EmDataset dataset = SmallDataset();
  JaccardEmModel model;
  LandmarkExplainer single(GenerationStrategy::kSingle, FastOptions());
  ExplainerEngine engine;
  EngineBatchResult batch =
      engine.ExplainBatch(model, AllPairs(dataset), single);
  EXPECT_EQ(batch.stats.num_records, 4u);
  // Landmark techniques plan two units per record (one per side).
  EXPECT_EQ(batch.stats.num_units, 8u);
  EXPECT_EQ(batch.stats.num_masks, 8u * 120u);
  EXPECT_GT(batch.stats.num_model_queries, 0u);
  EXPECT_LE(batch.stats.num_model_queries, batch.stats.num_masks);
  EXPECT_FALSE(batch.stats.ToString().empty());
}

}  // namespace
}  // namespace landmark
