#include "core/token_space.h"

#include <set>

#include <gtest/gtest.h>

namespace landmark {
namespace {

std::shared_ptr<const Schema> TestSchema() {
  return *Schema::Make({"name", "description", "price"});
}

Record CameraEntity() {
  return *Record::Make(TestSchema(),
                       {Value::Of("sony digital camera"),
                        Value::Of("camera with lens kit"), Value::Of("849.99")});
}

TEST(TokenizeEntityTest, OneTokenPerSpaceSeparatedTerm) {
  std::vector<Token> tokens = TokenizeEntity(CameraEntity(), EntitySide::kLeft);
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].text, "sony");
  EXPECT_EQ(tokens[0].attribute, 0u);
  EXPECT_EQ(tokens[0].occurrence, 0u);
  EXPECT_EQ(tokens[2].text, "camera");
  EXPECT_EQ(tokens[2].occurrence, 2u);
  EXPECT_EQ(tokens[7].text, "849.99");
  EXPECT_EQ(tokens[7].attribute, 2u);
  for (const auto& t : tokens) {
    EXPECT_EQ(t.side, EntitySide::kLeft);
    EXPECT_FALSE(t.injected);
  }
}

TEST(TokenizeEntityTest, OccurrenceDisambiguatesRepeatedWords) {
  // "camera" appears in both attributes; prefixes must differ.
  std::vector<Token> tokens = TokenizeEntity(CameraEntity(), EntitySide::kLeft);
  auto schema_ptr = TestSchema();
  const Schema& schema = *schema_ptr;
  std::set<std::string> names;
  for (const auto& t : tokens) {
    EXPECT_TRUE(names.insert(t.PrefixedName(schema)).second)
        << "duplicate prefix " << t.PrefixedName(schema);
  }
}

TEST(TokenizeEntityTest, NullAttributesYieldNoTokens) {
  Record e = Record::Empty(TestSchema());
  EXPECT_TRUE(TokenizeEntity(e, EntitySide::kLeft).empty());
  e.SetValue(0, Value::Of("only"));
  EXPECT_EQ(TokenizeEntity(e, EntitySide::kLeft).size(), 1u);
}

TEST(TokenTest, PrefixedNameFormat) {
  Token t;
  t.attribute = 1;
  t.occurrence = 2;
  t.text = "lens";
  t.side = EntitySide::kRight;
  EXPECT_EQ(t.PrefixedName(*TestSchema()), "R:description__2__lens");
  t.injected = true;
  EXPECT_EQ(t.PrefixedName(*TestSchema()), "R:+description__2__lens");
}

TEST(ReconstructEntityTest, FullMaskRoundTripsTheEntity) {
  Record original = CameraEntity();
  std::vector<Token> tokens = TokenizeEntity(original, EntitySide::kLeft);
  Record rebuilt = ReconstructEntity(TestSchema(), tokens, {},
                                     EntitySide::kLeft);
  EXPECT_EQ(rebuilt, original);
}

TEST(ReconstructEntityTest, PartialMaskDropsTokens) {
  Record original = CameraEntity();
  std::vector<Token> tokens = TokenizeEntity(original, EntitySide::kLeft);
  std::vector<uint8_t> active(tokens.size(), 1);
  active[0] = 0;  // drop "sony"
  Record rebuilt =
      ReconstructEntity(TestSchema(), tokens, active, EntitySide::kLeft);
  EXPECT_EQ(rebuilt.value(0).text(), "digital camera");
  EXPECT_EQ(rebuilt.value(1).text(), "camera with lens kit");
}

TEST(ReconstructEntityTest, EmptyAttributeBecomesNull) {
  Record original = CameraEntity();
  std::vector<Token> tokens = TokenizeEntity(original, EntitySide::kLeft);
  std::vector<uint8_t> active(tokens.size(), 1);
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].attribute == 0) active[i] = 0;
  }
  Record rebuilt =
      ReconstructEntity(TestSchema(), tokens, active, EntitySide::kLeft);
  EXPECT_TRUE(rebuilt.value(0).is_null());
  EXPECT_FALSE(rebuilt.value(1).is_null());
}

TEST(ReconstructEntityTest, IgnoresTokensOfOtherSide) {
  Record original = CameraEntity();
  std::vector<Token> tokens = TokenizeEntity(original, EntitySide::kRight);
  Record rebuilt =
      ReconstructEntity(TestSchema(), tokens, {}, EntitySide::kLeft);
  for (size_t a = 0; a < rebuilt.num_attributes(); ++a) {
    EXPECT_TRUE(rebuilt.value(a).is_null());
  }
}

TEST(BuildAugmentedTokensTest, ConcatenatesPerAttribute) {
  auto schema = *Schema::Make({"name"});
  Record varying = *Record::Make(schema, {Value::Of("nikon case")});
  Record landmark_entity = *Record::Make(schema, {Value::Of("sony camera")});
  std::vector<Token> tokens =
      BuildAugmentedTokens(varying, EntitySide::kRight, landmark_entity);
  ASSERT_EQ(tokens.size(), 4u);
  // Varying tokens first, then injected landmark tokens, occurrences
  // continuing.
  EXPECT_EQ(tokens[0].text, "nikon");
  EXPECT_FALSE(tokens[0].injected);
  EXPECT_EQ(tokens[2].text, "sony");
  EXPECT_TRUE(tokens[2].injected);
  EXPECT_EQ(tokens[2].occurrence, 2u);
  EXPECT_EQ(tokens[3].occurrence, 3u);
  // All tokens belong to the varying side, so reconstruction writes them
  // into the varying entity.
  for (const auto& t : tokens) EXPECT_EQ(t.side, EntitySide::kRight);
}

TEST(BuildAugmentedTokensTest, ReconstructionOfFullMaskIsConcatenation) {
  auto schema = *Schema::Make({"name"});
  Record varying = *Record::Make(schema, {Value::Of("nikon case")});
  Record landmark_entity = *Record::Make(schema, {Value::Of("sony camera")});
  std::vector<Token> tokens =
      BuildAugmentedTokens(varying, EntitySide::kRight, landmark_entity);
  Record rebuilt = ReconstructEntity(schema, tokens, {}, EntitySide::kRight);
  EXPECT_EQ(rebuilt.value(0).text(), "nikon case sony camera");
}

TEST(BuildAugmentedTokensTest, HandlesNullsOnEitherSide) {
  auto schema = *Schema::Make({"a", "b"});
  Record varying = *Record::Make(schema, {Value::Of("x"), Value::Null()});
  Record landmark_entity =
      *Record::Make(schema, {Value::Null(), Value::Of("y")});
  std::vector<Token> tokens =
      BuildAugmentedTokens(varying, EntitySide::kLeft, landmark_entity);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "x");
  EXPECT_FALSE(tokens[0].injected);
  EXPECT_EQ(tokens[1].text, "y");
  EXPECT_TRUE(tokens[1].injected);
  EXPECT_EQ(tokens[1].attribute, 1u);
  EXPECT_EQ(tokens[1].occurrence, 0u);
}

}  // namespace
}  // namespace landmark
