// A/B equivalence suite for the per-unit task-graph scheduler: ExplainBatch
// with EngineOptions::use_task_graph (the default) must be bit-identical to
// the legacy staged path (--no-task-graph) for every bundled model type,
// across thread counts and with the prediction memo on or off — and the
// audit unit stream must be byte-identical between the two schedulers
// (docs/architecture.md, "Scheduling").

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine/explainer_engine.h"
#include "core/landmark_explainer.h"
#include "core/lime_explainer.h"
#include "core/mojito_copy_explainer.h"
#include "datagen/magellan.h"
#include "em/embedding_em_model.h"
#include "em/forest_em_model.h"
#include "em/heuristic_model.h"
#include "em/logreg_em_model.h"
#include "em/rule_em_model.h"
#include "util/telemetry/audit.h"

namespace landmark {
namespace {

/// One realistic generated dataset shared by every model (training real
/// models needs more rows than a hand-rolled fixture provides).
const EmDataset& TestDataset() {
  static const EmDataset* dataset = [] {
    MagellanGenOptions gen;
    gen.size_scale = 0.25;
    return new EmDataset(
        *GenerateMagellanDataset(*FindMagellanSpec("S-AG"), gen));
  }();
  return *dataset;
}

/// Trained once per model type, shared across all parameter combinations.
const EmModel& TestModel(const std::string& kind) {
  static auto* models = new std::map<std::string, std::unique_ptr<EmModel>>();
  auto it = models->find(kind);
  if (it != models->end()) return *it->second;
  std::unique_ptr<EmModel> model;
  if (kind == "jaccard-em") {
    model = std::make_unique<JaccardEmModel>();
  } else if (kind == "logreg-em") {
    model = std::move(LogRegEmModel::Train(TestDataset())).ValueOrDie();
  } else if (kind == "forest-em") {
    model = std::move(ForestEmModel::Train(TestDataset())).ValueOrDie();
  } else if (kind == "rule-em") {
    model = std::move(RuleEmModel::Train(TestDataset())).ValueOrDie();
  } else {
    EmbeddingEmModelOptions options;
    options.mlp.hidden = {16};
    options.mlp.epochs = 3;  // equivalence needs a scorer, not a good one
    model = std::move(EmbeddingEmModel::Train(TestDataset(), options))
                .ValueOrDie();
  }
  return *models->emplace(kind, std::move(model)).first->second;
}

std::unique_ptr<PairExplainer> MakeExplainer(const std::string& kind,
                                             const ExplainerOptions& options) {
  if (kind == "landmark-single") {
    return std::make_unique<LandmarkExplainer>(GenerationStrategy::kSingle,
                                               options);
  }
  if (kind == "landmark-double") {
    return std::make_unique<LandmarkExplainer>(GenerationStrategy::kDouble,
                                               options);
  }
  if (kind == "lime") return std::make_unique<LimeExplainer>(options);
  return std::make_unique<MojitoCopyExplainer>(options);
}

/// Bit-identical comparison — the contract is exact equality of every
/// double, not approximate agreement.
void ExpectIdenticalResults(const EngineBatchResult& a,
                            const EngineBatchResult& b,
                            const std::string& label) {
  ASSERT_EQ(a.results.size(), b.results.size()) << label;
  for (size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_EQ(a.results[i].ok(), b.results[i].ok())
        << label << " record " << i;
    if (!a.results[i].ok()) {
      EXPECT_EQ(a.results[i].status().code(), b.results[i].status().code())
          << label << " record " << i;
      continue;
    }
    const std::vector<Explanation>& ea = *a.results[i];
    const std::vector<Explanation>& eb = *b.results[i];
    ASSERT_EQ(ea.size(), eb.size()) << label << " record " << i;
    for (size_t e = 0; e < ea.size(); ++e) {
      EXPECT_EQ(ea[e].explainer_name, eb[e].explainer_name);
      EXPECT_EQ(ea[e].landmark, eb[e].landmark);
      EXPECT_EQ(ea[e].model_prediction, eb[e].model_prediction)
          << label << " record " << i << " explanation " << e;
      EXPECT_EQ(ea[e].surrogate_intercept, eb[e].surrogate_intercept)
          << label << " record " << i << " explanation " << e;
      EXPECT_EQ(ea[e].surrogate_r2, eb[e].surrogate_r2)
          << label << " record " << i << " explanation " << e;
      ASSERT_EQ(ea[e].token_weights.size(), eb[e].token_weights.size());
      for (size_t t = 0; t < ea[e].token_weights.size(); ++t) {
        EXPECT_EQ(ea[e].token_weights[t].weight, eb[e].token_weights[t].weight)
            << label << " record " << i << " explanation " << e << " token "
            << t;
      }
    }
  }
}

/// The work-accounting counters must also agree — the scheduler may not do
/// more (or fewer) model queries, mask samples, or token lookups than the
/// staged path it replaces.
void ExpectIdenticalCounters(const EngineStats& a, const EngineStats& b,
                             const std::string& label) {
  EXPECT_EQ(a.num_records, b.num_records) << label;
  EXPECT_EQ(a.num_failed_records, b.num_failed_records) << label;
  EXPECT_EQ(a.num_units, b.num_units) << label;
  EXPECT_EQ(a.num_masks, b.num_masks) << label;
  EXPECT_EQ(a.num_model_queries, b.num_model_queries) << label;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << label;
  EXPECT_EQ(a.token_cache_hits, b.token_cache_hits) << label;
  EXPECT_EQ(a.token_cache_misses, b.token_cache_misses) << label;
}

class EngineSchedulerTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineSchedulerTest, TaskGraphBitIdenticalToStagedPath) {
  const EmModel& model = TestModel(GetParam());
  const EmDataset& dataset = TestDataset();
  std::vector<const PairRecord*> pairs;
  for (size_t i = 0; i < 3 && i < dataset.size(); ++i) {
    pairs.push_back(&dataset.pair(i));
  }
  ExplainerOptions explainer_options;
  explainer_options.num_samples = 64;

  for (const char* explainer_kind :
       {"landmark-single", "landmark-double", "lime", "mojito-copy"}) {
    std::unique_ptr<PairExplainer> explainer =
        MakeExplainer(explainer_kind, explainer_options);
    for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
      for (bool memo : {true, false}) {
        EngineOptions graph_options;
        graph_options.num_threads = threads;
        graph_options.cache_predictions = memo;
        graph_options.use_task_graph = true;
        EngineOptions staged_options = graph_options;
        staged_options.use_task_graph = false;

        const std::string label = std::string(GetParam()) + "/" +
                                  explainer_kind + "/threads=" +
                                  std::to_string(threads) +
                                  (memo ? "/memo" : "/nomemo");
        EngineBatchResult graph =
            ExplainerEngine(graph_options).ExplainBatch(model, pairs,
                                                        *explainer);
        EngineBatchResult staged =
            ExplainerEngine(staged_options).ExplainBatch(model, pairs,
                                                         *explainer);
        ExpectIdenticalResults(graph, staged, label);
        ExpectIdenticalCounters(graph.stats, staged.stats, label);
        // The scheduler reports its latency split; the staged path never
        // fills the critical-path field.
        EXPECT_GT(graph.stats.wall_seconds, 0.0) << label;
        EXPECT_GT(graph.stats.critical_path_seconds, 0.0) << label;
        EXPECT_EQ(staged.stats.critical_path_seconds, 0.0) << label;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBundledModels, EngineSchedulerTest,
                         ::testing::Values("jaccard-em", "logreg-em",
                                           "forest-em", "rule-em",
                                           "embedding-em"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

/// The unit lines only — the batch trailer carries wall-clock stage
/// latencies, which legitimately differ between runs.
std::vector<std::string> UnitLines(const std::vector<std::string>& lines) {
  std::vector<std::string> units;
  for (const std::string& line : lines) {
    if (line.rfind("{\"type\":\"unit\"", 0) == 0) units.push_back(line);
  }
  return units;
}

TEST(EngineSchedulerAuditTest, AuditUnitStreamByteIdenticalToStagedPath) {
  const EmModel& model = TestModel("logreg-em");
  const EmDataset& dataset = TestDataset();
  std::vector<const PairRecord*> pairs;
  for (size_t i = 0; i < 4 && i < dataset.size(); ++i) {
    pairs.push_back(&dataset.pair(i));
  }
  ExplainerOptions explainer_options;
  explainer_options.num_samples = 64;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, explainer_options);

  auto run = [&](bool use_task_graph, size_t threads,
                 const std::string& path) {
    {
      auto sink = AuditSink::Open(path);
      EXPECT_TRUE(sink.ok()) << path;
      EngineOptions options;
      options.num_threads = threads;
      options.use_task_graph = use_task_graph;
      options.audit_sink = sink->get();
      ExplainerEngine(options).ExplainBatch(model, pairs, explainer);
    }
    return UnitLines(ReadLines(path));
  };

  const std::string dir = ::testing::TempDir();
  const std::vector<std::string> staged =
      run(false, 1, dir + "/scheduler_audit_staged.jsonl");
  ASSERT_FALSE(staged.empty());
  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    const std::string path = dir + "/scheduler_audit_graph_" +
                             std::to_string(threads) + ".jsonl";
    const std::vector<std::string> graph = run(true, threads, path);
    ASSERT_EQ(graph.size(), staged.size()) << "threads=" << threads;
    for (size_t i = 0; i < staged.size(); ++i) {
      EXPECT_EQ(graph[i], staged[i]) << "threads=" << threads << " line " << i;
    }
    std::remove(path.c_str());
  }
  std::remove((dir + "/scheduler_audit_staged.jsonl").c_str());
}

TEST(EngineSchedulerFailureTest, FailedRecordsMatchStagedPath) {
  // A mixed batch — explainable records around one with no tokens at all —
  // must fail the same record with the same status under both schedulers,
  // at every thread count (the per-record join node reproduces the staged
  // barrier's failure semantics).
  auto schema = *Schema::Make({"name", "price"});
  EmDataset dataset("scheduler-mixed", schema);
  auto add = [&](const std::string& l0, const std::string& r0) {
    PairRecord p;
    p.id = static_cast<int64_t>(dataset.size());
    p.left = *Record::Make(schema, {Value::Of(l0), Value::Of("10")});
    p.right = *Record::Make(schema, {Value::Of(r0), Value::Of("10")});
    p.label = MatchLabel::kMatch;
    ASSERT_TRUE(dataset.Append(std::move(p)).ok());
  };
  add("alpha beta gamma", "alpha beta delta");
  PairRecord empty;  // no tokens on either side: unexplainable
  empty.id = 1;
  empty.left = Record::Empty(schema);
  empty.right = Record::Empty(schema);
  ASSERT_TRUE(dataset.Append(std::move(empty)).ok());
  add("one two three", "one two four");

  std::vector<const PairRecord*> pairs;
  for (size_t i = 0; i < dataset.size(); ++i) pairs.push_back(&dataset.pair(i));

  JaccardEmModel model;
  ExplainerOptions explainer_options;
  explainer_options.num_samples = 64;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, explainer_options);

  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    EngineOptions graph_options;
    graph_options.num_threads = threads;
    EngineOptions staged_options = graph_options;
    staged_options.use_task_graph = false;
    EngineBatchResult graph =
        ExplainerEngine(graph_options).ExplainBatch(model, pairs, explainer);
    EngineBatchResult staged =
        ExplainerEngine(staged_options).ExplainBatch(model, pairs, explainer);
    const std::string label = "threads=" + std::to_string(threads);
    EXPECT_EQ(graph.stats.num_failed_records, 1u) << label;
    ASSERT_EQ(graph.results.size(), 3u) << label;
    EXPECT_TRUE(graph.results[0].ok()) << label;
    EXPECT_FALSE(graph.results[1].ok()) << label;
    EXPECT_TRUE(graph.results[2].ok()) << label;
    ExpectIdenticalResults(graph, staged, label);
    ExpectIdenticalCounters(graph.stats, staged.stats, label);
  }
}

}  // namespace
}  // namespace landmark
