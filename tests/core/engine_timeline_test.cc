// Time-series telemetry around a real multi-threaded ExplainBatch: the
// global SnapshotCollector (driven by the injectable deck clock and manual
// TickOnce() calls) must emit one non-empty window per batch whose counter
// deltas sum back to the cumulative registry totals, /timelinez and /sloz
// must serve well-formed scrapes over the live exporter, OpenMetrics
// exemplar ordinals must resolve to real --audit-out unit lines, and —
// the tentpole contract — explanations plus the audit stream must be
// byte-identical with the collector armed versus off.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/engine/explainer_engine.h"
#include "core/landmark_explainer.h"
#include "datagen/magellan.h"
#include "em/heuristic_model.h"
#include "util/telemetry/audit.h"
#include "util/telemetry/flight_deck.h"
#include "util/telemetry/http_exporter.h"
#include "util/telemetry/metrics.h"
#include "util/telemetry/slo.h"
#include "util/telemetry/timeseries.h"

namespace landmark {
namespace {

std::atomic<uint64_t> g_fake_now_ns{0};
uint64_t FakeNow() { return g_fake_now_ns.load(std::memory_order_relaxed); }

/// Scoped deck-clock override; restores the real clock on destruction so a
/// failing test cannot poison its neighbors.
class FakeClockScope {
 public:
  explicit FakeClockScope(uint64_t start_ns) {
    g_fake_now_ns.store(start_ns, std::memory_order_relaxed);
    SetFlightDeckClockForTest(&FakeNow);
  }
  ~FakeClockScope() { SetFlightDeckClockForTest(nullptr); }

  void AdvanceSeconds(double seconds) {
    g_fake_now_ns.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                            std::memory_order_relaxed);
  }
};

const EmDataset& TestDataset() {
  static const EmDataset* dataset = [] {
    MagellanGenOptions gen;
    gen.size_scale = 0.25;
    return new EmDataset(
        *GenerateMagellanDataset(*FindMagellanSpec("S-AG"), gen));
  }();
  return *dataset;
}

std::vector<const PairRecord*> TestPairs() {
  const EmDataset& dataset = TestDataset();
  std::vector<const PairRecord*> pairs;
  for (size_t i = 0; i < 4 && i < dataset.size(); ++i) {
    pairs.push_back(&dataset.pair(i));
  }
  return pairs;
}

uint64_t CounterDelta(const TimeseriesWindow& window,
                      const std::string& name) {
  for (const WindowCounter& c : window.counters) {
    if (c.name == name) return c.delta;
  }
  return 0;
}

uint64_t BaseCounter(const TimeseriesBase& base, const std::string& name) {
  for (const auto& [n, v] : base.counters) {
    if (n == name) return v;
  }
  return 0;
}

const WindowHistogram* FindWindowHistogram(const TimeseriesWindow& window,
                                           const std::string& name) {
  for (const WindowHistogram& h : window.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

std::vector<std::string> UnitLines(const std::vector<std::string>& lines) {
  std::vector<std::string> units;
  for (const std::string& line : lines) {
    if (line.rfind("{\"type\":\"unit\"", 0) == 0) units.push_back(line);
  }
  return units;
}

/// Every audit ordinal referenced from an OpenMetrics exemplar annotation.
std::vector<uint64_t> ExemplarOrdinals(const std::string& body) {
  std::vector<uint64_t> ordinals;
  const std::string needle = "# {ordinal=\"";
  for (size_t pos = body.find(needle); pos != std::string::npos;
       pos = body.find(needle, pos + needle.size())) {
    const size_t start = pos + needle.size();
    const size_t end = body.find('"', start);
    if (end == std::string::npos) break;
    ordinals.push_back(std::stoull(body.substr(start, end - start)));
  }
  return ordinals;
}

void ExpectIdenticalResults(const EngineBatchResult& a,
                            const EngineBatchResult& b,
                            const std::string& label) {
  ASSERT_EQ(a.results.size(), b.results.size()) << label;
  for (size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_EQ(a.results[i].ok(), b.results[i].ok())
        << label << " record " << i;
    if (!a.results[i].ok()) continue;
    const std::vector<Explanation>& ea = *a.results[i];
    const std::vector<Explanation>& eb = *b.results[i];
    ASSERT_EQ(ea.size(), eb.size()) << label << " record " << i;
    for (size_t e = 0; e < ea.size(); ++e) {
      EXPECT_EQ(ea[e].model_prediction, eb[e].model_prediction)
          << label << " record " << i << " explanation " << e;
      EXPECT_EQ(ea[e].surrogate_intercept, eb[e].surrogate_intercept)
          << label << " record " << i << " explanation " << e;
      EXPECT_EQ(ea[e].surrogate_r2, eb[e].surrogate_r2)
          << label << " record " << i << " explanation " << e;
      ASSERT_EQ(ea[e].token_weights.size(), eb[e].token_weights.size());
      for (size_t t = 0; t < ea[e].token_weights.size(); ++t) {
        EXPECT_EQ(ea[e].token_weights[t].weight,
                  eb[e].token_weights[t].weight)
            << label << " record " << i << " explanation " << e << " token "
            << t;
      }
    }
  }
}

TEST(EngineTimelineTest, WindowsCoverAMultiThreadedBatchEndToEnd) {
  const JaccardEmModel model;
  const std::vector<const PairRecord*> pairs = TestPairs();
  ExplainerOptions explainer_options;
  explainer_options.num_samples = 64;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, explainer_options);

  FakeClockScope clock(123456789);
  SnapshotCollector& collector = SnapshotCollector::Global();
  collector.ResetForTest();
  SloRegistry::Global().Clear();

  // Exercise the real --slo grammar end to end.
  Result<std::vector<SloPolicy>> policies = ParseSloSpecs(
      "unit_q=engine/unit/query_seconds,p95<0.05,window=300");
  ASSERT_TRUE(policies.ok()) << policies.status().ToString();
  for (const SloPolicy& policy : *policies) {
    SloRegistry::Global().Register(policy);
  }

  // Arm the base against whatever the registry already accumulated from
  // other tests in this binary.
  collector.TickOnce();
  ASSERT_TRUE(collector.armed());
  const uint64_t base_units =
      BaseCounter(collector.Base(), "engine/units");

  const std::string audit_path =
      ::testing::TempDir() + "/engine_timeline_audit.jsonl";
  auto sink = AuditSink::Open(audit_path);
  ASSERT_TRUE(sink.ok()) << sink.status().ToString();

  EngineOptions options;
  options.num_threads = 4;
  options.audit_sink = sink->get();
  ExplainerEngine engine(options);

  // Two batches, one collector window each.
  EngineBatchResult first = engine.ExplainBatch(model, pairs, explainer);
  clock.AdvanceSeconds(1.0);
  collector.TickOnce();
  EngineBatchResult second = engine.ExplainBatch(model, pairs, explainer);
  clock.AdvanceSeconds(1.0);
  collector.TickOnce();

  const std::vector<TimeseriesWindow> windows = collector.Windows();
  ASSERT_GE(windows.size(), 2u);
  for (const TimeseriesWindow& window : windows) {
    EXPECT_GT(window.end_ns, window.start_ns);
    EXPECT_GT(CounterDelta(window, "engine/units"), 0u)
        << "window " << window.index;
    // The 4-thread batch runs the task-graph scheduler, so the per-unit
    // stage histograms move inside each window.
    const WindowHistogram* fit =
        FindWindowHistogram(window, "engine/unit/fit_seconds");
    ASSERT_NE(fit, nullptr) << "window " << window.index;
    EXPECT_GT(fit->count_delta, 0u);
    EXPECT_FALSE(fit->buckets.empty());
    EXPECT_GT(fit->p95, 0.0);
    EXPECT_LE(fit->p50, fit->p99);
  }

  // Delta exactness: base + every window's delta == the cumulative total.
  uint64_t delta_sum = 0;
  for (const TimeseriesWindow& window : windows) {
    delta_sum += CounterDelta(window, "engine/units");
  }
  EXPECT_EQ(base_units + delta_sum,
            MetricsRegistry::Global().GetCounter("engine/units").Value());

  // SLO evaluation over the emitted windows publishes a finite burn rate.
  SloRegistry::Global().Evaluate(windows);
  const std::vector<SloStatus> statuses = SloRegistry::Global().Statuses();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_TRUE(statuses[0].has_data);
  EXPECT_TRUE(std::isfinite(statuses[0].burn_rate));
  EXPECT_TRUE(std::isfinite(
      MetricsRegistry::Global().GetGauge("slo/unit_q/burn_rate").Value()));

  // Live scrapes: /timelinez (text + JSON) and /sloz (text + JSON).
  auto exporter = HttpExporter::Start({});
  ASSERT_TRUE(exporter.ok()) << exporter.status().ToString();
  const uint16_t port = (*exporter)->port();

  int status = 0;
  auto timeline_json =
      HttpGetLoopback(port, "/timelinez?format=json", &status);
  ASSERT_TRUE(timeline_json.ok()) << timeline_json.status().ToString();
  EXPECT_EQ(status, 200);
  EXPECT_NE(timeline_json->find("\"windows\":["), std::string::npos);
  EXPECT_NE(timeline_json->find("engine/units"), std::string::npos);

  auto timeline_text = HttpGetLoopback(port, "/timelinez", &status);
  ASSERT_TRUE(timeline_text.ok()) << timeline_text.status().ToString();
  EXPECT_EQ(status, 200);
  EXPECT_NE(timeline_text->find("landmark timeline"), std::string::npos);

  auto sloz = HttpGetLoopback(port, "/sloz", &status);
  ASSERT_TRUE(sloz.ok()) << sloz.status().ToString();
  EXPECT_EQ(status, 200);
  EXPECT_NE(sloz->find("unit_q"), std::string::npos);
  EXPECT_NE(sloz->find("burn_rate"), std::string::npos);

  auto sloz_json = HttpGetLoopback(port, "/sloz?format=json", &status);
  ASSERT_TRUE(sloz_json.ok()) << sloz_json.status().ToString();
  EXPECT_EQ(status, 200);
  EXPECT_NE(sloz_json->find("\"burn_rate\":"), std::string::npos);

  // OpenMetrics exposition carries exemplars whose audit ordinals resolve
  // to real unit lines in this run's audit file. Ordinals count per sink,
  // so flush ours and match against its lines; buckets last touched by an
  // earlier test's sink may carry out-of-range ordinals — at least one
  // must come from the batches above (they rewrote every bucket they hit).
  sink->reset();
  const std::vector<std::string> units = UnitLines(ReadLines(audit_path));
  ASSERT_FALSE(units.empty());

  auto openmetrics = HttpGetLoopback(
      port, "/metrics", {"Accept: application/openmetrics-text"}, &status);
  ASSERT_TRUE(openmetrics.ok()) << openmetrics.status().ToString();
  EXPECT_EQ(status, 200);
  EXPECT_NE(openmetrics->find("# EOF"), std::string::npos);
  const std::vector<uint64_t> ordinals = ExemplarOrdinals(*openmetrics);
  ASSERT_FALSE(ordinals.empty());
  bool resolved = false;
  for (uint64_t ordinal : ordinals) {
    if (ordinal >= units.size()) continue;
    const std::string prefix =
        "{\"type\":\"unit\",\"unit\":" + std::to_string(ordinal) + ",";
    EXPECT_EQ(units[ordinal].rfind(prefix, 0), 0u) << units[ordinal];
    resolved = true;
  }
  EXPECT_TRUE(resolved) << "no exemplar ordinal resolved to an audit line";

  // The two batches were observed identically.
  ExpectIdenticalResults(first, second, "first vs second batch");

  SloRegistry::Global().Clear();
  collector.ResetForTest();
}

TEST(EngineTimelineTest, ExplanationsBitIdenticalCollectorOnAndOff) {
  const JaccardEmModel model;
  const std::vector<const PairRecord*> pairs = TestPairs();
  ExplainerOptions explainer_options;
  explainer_options.num_samples = 64;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, explainer_options);

  SnapshotCollector& collector = SnapshotCollector::Global();
  collector.ResetForTest();

  auto run = [&](const std::string& audit_path) {
    auto sink = AuditSink::Open(audit_path);
    EXPECT_TRUE(sink.ok()) << sink.status().ToString();
    EngineOptions options;
    options.num_threads = 4;
    options.audit_sink = sink->get();
    EngineBatchResult result =
        ExplainerEngine(options).ExplainBatch(model, pairs, explainer);
    sink->reset();  // flush before reading
    return result;
  };

  // Collector off.
  const std::string off_path =
      ::testing::TempDir() + "/engine_timeline_off.jsonl";
  EngineBatchResult off = run(off_path);

  // Collector armed on a real 2 ms thread, ticking throughout the batch.
  TimeseriesOptions timeseries_options;
  timeseries_options.period_ns = 2000000;  // 2 ms
  collector.Configure(timeseries_options);
  collector.Start();
  ASSERT_TRUE(collector.running());
  const std::string on_path =
      ::testing::TempDir() + "/engine_timeline_on.jsonl";
  EngineBatchResult on = run(on_path);
  collector.Stop();

  ExpectIdenticalResults(off, on, "collector off vs on");
  const std::vector<std::string> off_units = UnitLines(ReadLines(off_path));
  const std::vector<std::string> on_units = UnitLines(ReadLines(on_path));
  ASSERT_FALSE(off_units.empty());
  ASSERT_EQ(off_units.size(), on_units.size());
  for (size_t i = 0; i < off_units.size(); ++i) {
    EXPECT_EQ(off_units[i], on_units[i]) << "unit " << i;
  }

  collector.ResetForTest();
}

}  // namespace
}  // namespace landmark
