// Telemetry contract of the staged engine: registry counters advance in
// lockstep with the per-batch EngineStats, stage histograms fill, and
// turning tracing on never changes explanation output (bit-identical).

#include <gtest/gtest.h>

#include "core/engine/explainer_engine.h"
#include "core/landmark_explainer.h"
#include "data/em_dataset.h"
#include "em/heuristic_model.h"
#include "util/telemetry/metrics.h"
#include "util/telemetry/trace.h"

namespace landmark {
namespace {

std::shared_ptr<const Schema> TestSchema() {
  return *Schema::Make({"name", "price"});
}

EmDataset SmallDataset() {
  auto schema = TestSchema();
  EmDataset dataset("engine-telemetry-test", schema);
  auto add = [&](const std::string& l0, const std::string& l1,
                 const std::string& r0, const std::string& r1,
                 MatchLabel label) {
    PairRecord p;
    p.id = static_cast<int64_t>(dataset.size());
    p.left = *Record::Make(schema, {Value::Of(l0), Value::Of(l1)});
    p.right = *Record::Make(schema, {Value::Of(r0), Value::Of(r1)});
    p.label = label;
    ASSERT_TRUE(dataset.Append(std::move(p)).ok());
  };
  add("alpha beta gamma", "10", "alpha beta delta", "10", MatchLabel::kMatch);
  add("epsilon zeta eta", "20", "epsilon zeta eta", "20", MatchLabel::kMatch);
  add("one two three", "30", "nine eight seven", "99", MatchLabel::kNonMatch);
  return dataset;
}

std::vector<const PairRecord*> AllPairs(const EmDataset& dataset) {
  std::vector<const PairRecord*> pairs;
  for (size_t i = 0; i < dataset.size(); ++i) {
    pairs.push_back(&dataset.pair(i));
  }
  return pairs;
}

ExplainerOptions FastOptions() {
  ExplainerOptions options;
  options.num_samples = 96;
  return options;
}

/// Bit-identical comparison — the determinism contract promises exact
/// equality whether or not telemetry is recording.
void ExpectIdenticalResults(const EngineBatchResult& a,
                            const EngineBatchResult& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_EQ(a.results[i].ok(), b.results[i].ok()) << "record " << i;
    if (!a.results[i].ok()) continue;
    const std::vector<Explanation>& ea = *a.results[i];
    const std::vector<Explanation>& eb = *b.results[i];
    ASSERT_EQ(ea.size(), eb.size()) << "record " << i;
    for (size_t e = 0; e < ea.size(); ++e) {
      EXPECT_EQ(ea[e].explainer_name, eb[e].explainer_name);
      EXPECT_EQ(ea[e].landmark, eb[e].landmark);
      EXPECT_EQ(ea[e].model_prediction, eb[e].model_prediction);
      EXPECT_EQ(ea[e].surrogate_intercept, eb[e].surrogate_intercept);
      EXPECT_EQ(ea[e].surrogate_r2, eb[e].surrogate_r2);
      ASSERT_EQ(ea[e].token_weights.size(), eb[e].token_weights.size());
      for (size_t t = 0; t < ea[e].token_weights.size(); ++t) {
        EXPECT_EQ(ea[e].token_weights[t].weight,
                  eb[e].token_weights[t].weight)
            << "record " << i << " explanation " << e << " token " << t;
      }
    }
  }
}

TEST(EngineTelemetryTest, RegistryCountersAdvanceWithEngineStats) {
  EmDataset dataset = SmallDataset();
  JaccardEmModel model;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, FastOptions());
  ExplainerEngine engine;

  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  EngineBatchResult batch =
      engine.ExplainBatch(model, AllPairs(dataset), explainer);
  MetricsSnapshot after = MetricsRegistry::Global().Snapshot();

  // The registry carries process-lifetime totals; the delta across one
  // batch must equal that batch's EngineStats.
  auto delta = [&](const char* name) {
    return after.CounterValue(name) - before.CounterValue(name);
  };
  EXPECT_EQ(delta("engine/batches"), 1u);
  EXPECT_EQ(delta("engine/records"), batch.stats.num_records);
  EXPECT_EQ(delta("engine/records_failed"), batch.stats.num_failed_records);
  EXPECT_EQ(delta("engine/units"), batch.stats.num_units);
  EXPECT_EQ(delta("engine/masks"), batch.stats.num_masks);
  EXPECT_EQ(delta("engine/model_queries"), batch.stats.num_model_queries);
  EXPECT_EQ(delta("engine/cache_hits"), batch.stats.cache_hits);
  EXPECT_GT(batch.stats.num_units, 0u);
}

TEST(EngineTelemetryTest, StageHistogramsFill) {
  EmDataset dataset = SmallDataset();
  JaccardEmModel model;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, FastOptions());
  ExplainerEngine engine;

  const uint64_t before =
      MetricsRegistry::Global().GetHistogram("engine/batch_seconds").Count();
  engine.ExplainBatch(model, AllPairs(dataset), explainer);
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();

  for (const char* name :
       {"engine/plan_seconds", "engine/reconstruct_seconds",
        "engine/query_seconds", "engine/fit_seconds",
        "engine/batch_seconds", "model/query_latency"}) {
    const HistogramSnapshot* h = snapshot.FindHistogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GT(h->count, 0u) << name;
    EXPECT_LE(h->p50, h->p99) << name;
  }
  EXPECT_EQ(snapshot.FindHistogram("engine/batch_seconds")->count,
            before + 1);
}

TEST(EngineTelemetryTest, TracingOnIsBitIdenticalToTracingOff) {
  EmDataset dataset = SmallDataset();
  JaccardEmModel model;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, FastOptions());
  std::vector<const PairRecord*> pairs = AllPairs(dataset);

  EngineOptions options;
  options.num_threads = 4;  // exercise the pool spans too
  ExplainerEngine engine(options);

  TraceRecorder::Global().Stop();
  TraceRecorder::Global().Clear();
  EngineBatchResult off = engine.ExplainBatch(model, pairs, explainer);

  TraceRecorder::Global().Start();
  EngineBatchResult on = engine.ExplainBatch(model, pairs, explainer);
  TraceRecorder::Global().Stop();

  EXPECT_GT(TraceRecorder::Global().num_events(), 0u);
  ExpectIdenticalResults(off, on);
  TraceRecorder::Global().Clear();
}

TEST(EngineTelemetryTest, TraceContainsAllFourStageSpans) {
  EmDataset dataset = SmallDataset();
  JaccardEmModel model;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, FastOptions());
  ExplainerEngine engine;

  TraceRecorder::Global().Start();
  engine.ExplainBatch(model, AllPairs(dataset), explainer);
  // The single-record path opens per-unit spans instead of stage spans.
  ASSERT_TRUE(engine.ExplainOne(model, dataset.pair(0), explainer).ok());
  TraceRecorder::Global().Stop();
  const std::string json = TraceRecorder::Global().ToChromeTraceJson();
  for (const char* span :
       {"engine/batch", "engine/plan", "engine/reconstruct", "engine/query",
        "engine/fit", "engine/unit", "model/query"}) {
    EXPECT_NE(json.find(std::string("\"") + span + "\""), std::string::npos)
        << span;
  }
  TraceRecorder::Global().Clear();
}

}  // namespace
}  // namespace landmark
