// A/B equivalence suite for the SIMD kernel variants: ExplainBatch with
// EngineOptions::simd on must be bit-identical to the scalar path for every
// bundled model type, across explainers and thread counts — the same
// contract engine_fast_path_test pins for the query fast path and
// engine_scheduler_test pins for the task graph. The audit stream's unit
// lines must also be byte-identical simd on vs off.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine/explainer_engine.h"
#include "core/landmark_explainer.h"
#include "core/lime_explainer.h"
#include "core/mojito_copy_explainer.h"
#include "datagen/magellan.h"
#include "em/embedding_em_model.h"
#include "em/forest_em_model.h"
#include "em/heuristic_model.h"
#include "em/logreg_em_model.h"
#include "em/rule_em_model.h"
#include "util/telemetry/audit.h"

namespace landmark {
namespace {

const EmDataset& TestDataset() {
  static const EmDataset* dataset = [] {
    MagellanGenOptions gen;
    gen.size_scale = 0.25;
    return new EmDataset(
        *GenerateMagellanDataset(*FindMagellanSpec("S-AG"), gen));
  }();
  return *dataset;
}

const EmModel& TestModel(const std::string& kind) {
  static auto* models = new std::map<std::string, std::unique_ptr<EmModel>>();
  auto it = models->find(kind);
  if (it != models->end()) return *it->second;
  std::unique_ptr<EmModel> model;
  if (kind == "jaccard-em") {
    model = std::make_unique<JaccardEmModel>();
  } else if (kind == "logreg-em") {
    model = std::move(LogRegEmModel::Train(TestDataset())).ValueOrDie();
  } else if (kind == "forest-em") {
    model = std::move(ForestEmModel::Train(TestDataset())).ValueOrDie();
  } else if (kind == "rule-em") {
    model = std::move(RuleEmModel::Train(TestDataset())).ValueOrDie();
  } else {
    EmbeddingEmModelOptions options;
    options.mlp.hidden = {16};
    options.mlp.epochs = 3;  // equivalence needs a scorer, not a good one
    model = std::move(EmbeddingEmModel::Train(TestDataset(), options))
                .ValueOrDie();
  }
  return *models->emplace(kind, std::move(model)).first->second;
}

/// Bit-identical comparison — the contract is exact equality of every
/// double, not approximate agreement.
void ExpectIdenticalResults(const EngineBatchResult& a,
                            const EngineBatchResult& b,
                            const std::string& label) {
  ASSERT_EQ(a.results.size(), b.results.size()) << label;
  for (size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_EQ(a.results[i].ok(), b.results[i].ok())
        << label << " record " << i;
    if (!a.results[i].ok()) continue;
    const std::vector<Explanation>& ea = *a.results[i];
    const std::vector<Explanation>& eb = *b.results[i];
    ASSERT_EQ(ea.size(), eb.size()) << label << " record " << i;
    for (size_t e = 0; e < ea.size(); ++e) {
      EXPECT_EQ(ea[e].model_prediction, eb[e].model_prediction)
          << label << " record " << i << " explanation " << e;
      EXPECT_EQ(ea[e].surrogate_intercept, eb[e].surrogate_intercept)
          << label << " record " << i << " explanation " << e;
      EXPECT_EQ(ea[e].surrogate_r2, eb[e].surrogate_r2)
          << label << " record " << i << " explanation " << e;
      ASSERT_EQ(ea[e].token_weights.size(), eb[e].token_weights.size());
      for (size_t t = 0; t < ea[e].token_weights.size(); ++t) {
        EXPECT_EQ(ea[e].token_weights[t].weight, eb[e].token_weights[t].weight)
            << label << " record " << i << " explanation " << e << " token "
            << t;
      }
    }
  }
}

std::unique_ptr<PairExplainer> MakeExplainer(const std::string& kind,
                                             const ExplainerOptions& options) {
  if (kind == "landmark-single") {
    return std::make_unique<LandmarkExplainer>(GenerationStrategy::kSingle,
                                               options);
  }
  if (kind == "landmark-double") {
    return std::make_unique<LandmarkExplainer>(GenerationStrategy::kDouble,
                                               options);
  }
  if (kind == "lime") return std::make_unique<LimeExplainer>(options);
  return std::make_unique<MojitoCopyExplainer>(options);
}

class EngineSimdTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineSimdTest, SimdBitIdenticalToScalar) {
  const EmModel& model = TestModel(GetParam());
  const EmDataset& dataset = TestDataset();
  std::vector<const PairRecord*> pairs;
  for (size_t i = 0; i < 3 && i < dataset.size(); ++i) {
    pairs.push_back(&dataset.pair(i));
  }
  ExplainerOptions explainer_options;
  explainer_options.num_samples = 64;

  for (const char* explainer_kind :
       {"landmark-single", "landmark-double", "lime", "mojito-copy"}) {
    std::unique_ptr<PairExplainer> explainer =
        MakeExplainer(explainer_kind, explainer_options);
    for (size_t threads : {size_t{1}, size_t{4}}) {
      for (bool task_graph : {true, false}) {
        EngineOptions simd_options;
        simd_options.num_threads = threads;
        simd_options.use_task_graph = task_graph;
        simd_options.simd = true;
        EngineOptions scalar_options = simd_options;
        scalar_options.simd = false;

        const std::string label =
            std::string(GetParam()) + "/" + explainer_kind +
            "/threads=" + std::to_string(threads) +
            (task_graph ? "/graph" : "/staged");
        EngineBatchResult vectorized =
            ExplainerEngine(simd_options).ExplainBatch(model, pairs,
                                                       *explainer);
        EngineBatchResult scalar =
            ExplainerEngine(scalar_options).ExplainBatch(model, pairs,
                                                         *explainer);
        ExpectIdenticalResults(vectorized, scalar, label);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBundledModels, EngineSimdTest,
                         ::testing::Values("jaccard-em", "logreg-em",
                                           "forest-em", "rule-em",
                                           "embedding-em"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

/// The unit lines only — the batch trailer carries wall-clock stage
/// latencies, which legitimately differ between runs.
std::vector<std::string> UnitLines(const std::vector<std::string>& lines) {
  std::vector<std::string> units;
  for (const std::string& line : lines) {
    if (line.rfind("{\"type\":\"unit\"", 0) == 0) units.push_back(line);
  }
  return units;
}

TEST(EngineSimdAuditTest, AuditUnitLinesByteIdenticalSimdOnOff) {
  const EmModel& model = TestModel("logreg-em");
  const EmDataset& dataset = TestDataset();
  std::vector<const PairRecord*> pairs;
  for (size_t i = 0; i < 4 && i < dataset.size(); ++i) {
    pairs.push_back(&dataset.pair(i));
  }
  ExplainerOptions explainer_options;
  explainer_options.num_samples = 64;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, explainer_options);

  std::vector<std::vector<std::string>> streams;
  for (bool simd_on : {true, false}) {
    const std::string path = ::testing::TempDir() + "/engine_simd_audit_" +
                             (simd_on ? "on" : "off") + ".jsonl";
    auto sink = AuditSink::Open(path);
    ASSERT_TRUE(sink.ok()) << sink.status().ToString();
    EngineOptions options;
    options.simd = simd_on;
    options.audit_sink = sink->get();
    EngineBatchResult result =
        ExplainerEngine(options).ExplainBatch(model, pairs, explainer);
    ASSERT_EQ(result.stats.num_failed_records, 0u);
    sink->reset();  // flush before reading
    streams.push_back(UnitLines(ReadLines(path)));
    EXPECT_EQ(streams.back().size(), result.stats.num_units);
  }
  ASSERT_EQ(streams.size(), 2u);
  ASSERT_EQ(streams[0].size(), streams[1].size());
  for (size_t u = 0; u < streams[0].size(); ++u) {
    EXPECT_EQ(streams[0][u], streams[1][u]) << "unit line " << u;
  }
}

TEST(EngineSimdAuditTest, ExplainOneMatchesBatchUnderBothSettings) {
  const EmModel& model = TestModel("logreg-em");
  const EmDataset& dataset = TestDataset();
  ExplainerOptions options;
  options.num_samples = 64;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, options);

  std::vector<Result<std::vector<Explanation>>> runs;
  for (bool simd_on : {true, false}) {
    EngineOptions engine_options;
    engine_options.simd = simd_on;
    ExplainerEngine engine(engine_options);
    runs.push_back(engine.ExplainOne(model, dataset.pair(0), explainer));
    ASSERT_TRUE(runs.back().ok());
  }
  ASSERT_EQ(runs[0]->size(), runs[1]->size());
  for (size_t e = 0; e < runs[0]->size(); ++e) {
    EXPECT_EQ((*runs[0])[e].model_prediction, (*runs[1])[e].model_prediction);
    ASSERT_EQ((*runs[0])[e].token_weights.size(),
              (*runs[1])[e].token_weights.size());
    for (size_t t = 0; t < (*runs[0])[e].token_weights.size(); ++t) {
      EXPECT_EQ((*runs[0])[e].token_weights[t].weight,
                (*runs[1])[e].token_weights[t].weight);
    }
  }
}

}  // namespace
}  // namespace landmark
