#include "core/anchor_explainer.h"

#include <gtest/gtest.h>

#include "em/heuristic_model.h"
#include "text/similarity.h"
#include "text/tokenize.h"

namespace landmark {
namespace {

std::shared_ptr<const Schema> TestSchema() {
  return *Schema::Make({"name", "price"});
}

PairRecord MakePair(const std::string& l0, const std::string& l1,
                    const std::string& r0, const std::string& r1) {
  PairRecord pair;
  pair.id = 5;
  pair.left = *Record::Make(TestSchema(), {Value::Of(l0), Value::Of(l1)});
  pair.right = *Record::Make(TestSchema(), {Value::Of(r0), Value::Of(r1)});
  return pair;
}

/// Deterministic rule model: match iff the right name contains "magic".
class MagicWordModel : public EmModel {
 public:
  double PredictProba(const PairRecord& pair) const override {
    const Value& v = pair.right.value(0);
    if (v.is_null()) return 0.0;
    for (const auto& token : WordTokens(v.text())) {
      if (token == "magic") return 1.0;
    }
    return 0.0;
  }
  std::string name() const override { return "magic-word"; }
};

TEST(AnchorExplainerTest, FindsTheDecidingToken) {
  MagicWordModel model;
  AnchorExplainer explainer;
  PairRecord pair = MakePair("whatever", "1", "some magic words here", "2");
  // Landmark = left, varying = right: the anchor must be exactly {magic}.
  auto rule = explainer.FindAnchor(model, pair, EntitySide::kLeft);
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(rule->predicts_match);
  EXPECT_GE(rule->precision, 0.95);
  ASSERT_EQ(rule->anchor_tokens.size(), 1u);
  EXPECT_EQ(rule->anchor_tokens[0].text, "magic");
}

TEST(AnchorExplainerTest, NonMatchAnchorsCanBeEmpty) {
  // Without "magic" the model always says non-match, whatever is dropped:
  // the empty anchor already has precision 1.
  MagicWordModel model;
  AnchorExplainer explainer;
  PairRecord pair = MakePair("whatever", "1", "plain words only", "2");
  auto rule = explainer.FindAnchor(model, pair, EntitySide::kLeft);
  ASSERT_TRUE(rule.ok());
  EXPECT_FALSE(rule->predicts_match);
  EXPECT_GE(rule->precision, 0.95);
  EXPECT_TRUE(rule->anchor_features.empty());
}

TEST(AnchorExplainerTest, BothLandmarkPerspectives) {
  JaccardEmModel model;
  AnchorOptions options;
  options.samples_per_candidate = 32;
  AnchorExplainer explainer(options);
  PairRecord pair = MakePair("alpha beta", "9", "alpha beta", "9");
  auto rules = explainer.Explain(model, pair);
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 2u);
  for (const AnchorRule& rule : *rules) {
    EXPECT_TRUE(rule.predicts_match);
    EXPECT_GT(rule.precision, 0.5);
  }
}

TEST(AnchorExplainerTest, MaxAnchorSizeIsRespected) {
  JaccardEmModel model;
  AnchorOptions options;
  options.max_anchor_size = 2;
  options.target_precision = 1.01;  // unreachable: forces growth to the cap
  options.samples_per_candidate = 16;
  AnchorExplainer explainer(options);
  PairRecord pair =
      MakePair("a b c d e f", "9", "a b c d e f", "9");
  auto rule = explainer.FindAnchor(model, pair, EntitySide::kLeft);
  ASSERT_TRUE(rule.ok());
  EXPECT_LE(rule->anchor_features.size(), 2u);
}

TEST(AnchorExplainerTest, DeterministicAcrossCalls) {
  JaccardEmModel model;
  AnchorExplainer explainer;
  PairRecord pair = MakePair("sony camera kit", "9", "sony camera bag", "7");
  auto a = explainer.FindAnchor(model, pair, EntitySide::kLeft);
  auto b = explainer.FindAnchor(model, pair, EntitySide::kLeft);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->anchor_features, b->anchor_features);
  EXPECT_DOUBLE_EQ(a->precision, b->precision);
}

TEST(AnchorExplainerTest, RuleRendersReadably) {
  MagicWordModel model;
  AnchorExplainer explainer;
  PairRecord pair = MakePair("x", "1", "magic", "2");
  auto rule = explainer.FindAnchor(model, pair, EntitySide::kLeft);
  ASSERT_TRUE(rule.ok());
  auto schema = TestSchema();
  const std::string rendered = rule->ToString(*schema);
  EXPECT_NE(rendered.find("IF {"), std::string::npos);
  EXPECT_NE(rendered.find("THEN match"), std::string::npos);
}

TEST(AnchorExplainerTest, RejectsEmptyVaryingEntity) {
  MagicWordModel model;
  AnchorExplainer explainer;
  PairRecord pair;
  pair.left = *Record::Make(TestSchema(), {Value::Of("x"), Value::Of("1")});
  pair.right = Record::Empty(TestSchema());
  EXPECT_FALSE(explainer.FindAnchor(model, pair, EntitySide::kLeft).ok());
}

}  // namespace
}  // namespace landmark
