#include <gtest/gtest.h>

#include "core/lime_explainer.h"
#include "core/sampling.h"
#include "core/surrogate.h"
#include "util/rng.h"

namespace landmark {
namespace {

TEST(SamplingTest, FirstMaskIsAllOnes) {
  Rng rng(1);
  auto masks = SamplePerturbationMasks(5, 10, rng);
  ASSERT_EQ(masks.size(), 10u);
  for (uint8_t bit : masks[0]) EXPECT_EQ(bit, 1);
}

TEST(SamplingTest, EveryOtherMaskRemovesAtLeastOne) {
  Rng rng(2);
  auto masks = SamplePerturbationMasks(8, 200, rng);
  for (size_t s = 1; s < masks.size(); ++s) {
    size_t removed = 0;
    for (uint8_t bit : masks[s]) removed += bit == 0;
    EXPECT_GE(removed, 1u);
    EXPECT_LE(removed, 8u);
  }
}

TEST(SamplingTest, RemovalCountsSpanTheRange) {
  Rng rng(3);
  auto masks = SamplePerturbationMasks(6, 500, rng);
  std::set<size_t> removal_counts;
  for (size_t s = 1; s < masks.size(); ++s) {
    size_t removed = 0;
    for (uint8_t bit : masks[s]) removed += bit == 0;
    removal_counts.insert(removed);
  }
  // Uniform k in {1..6}: all values appear in 500 samples.
  EXPECT_EQ(removal_counts.size(), 6u);
}

TEST(SamplingTest, SingleFeatureSpace) {
  Rng rng(4);
  auto masks = SamplePerturbationMasks(1, 5, rng);
  EXPECT_EQ(masks[0][0], 1);
  for (size_t s = 1; s < 5; ++s) EXPECT_EQ(masks[s][0], 0);
}

TEST(SamplingTest, ShapFirstMaskIsAllOnes) {
  // Slot 0 is the all-active anchor — the engine's fit stage reads
  // predictions[0] as f(all-active), for the SHAP neighborhood too.
  Rng rng(11);
  auto masks = SampleShapMasks(5, 12, rng);
  ASSERT_EQ(masks.size(), 12u);
  for (uint8_t bit : masks[0]) EXPECT_EQ(bit, 1);
  for (uint8_t bit : masks[1]) EXPECT_EQ(bit, 0);  // the all-zeros anchor
}

TEST(SamplingTest, FirstMaskContractHoldsForBothNeighborhoods) {
  // Regression test for the predictions[0] contract at the explainer level:
  // SampleNeighborhood must yield an all-active first mask regardless of
  // which generic explainer (LIME or KernelSHAP) is plugged in.
  for (NeighborhoodKind kind :
       {NeighborhoodKind::kLime, NeighborhoodKind::kShap}) {
    ExplainerOptions options;
    options.neighborhood = kind;
    options.num_samples = 40;
    LimeExplainer explainer(options);
    for (size_t dim : {1u, 3u, 9u}) {
      Rng rng(13);
      std::vector<std::vector<uint8_t>> masks;
      std::vector<double> kernel_weights;
      explainer.SampleNeighborhood(dim, rng, &masks, &kernel_weights);
      ASSERT_EQ(masks.size(), 40u);
      ASSERT_EQ(kernel_weights.size(), 40u);
      for (uint8_t bit : masks[0]) {
        EXPECT_EQ(bit, 1) << "kind=" << static_cast<int>(kind)
                          << " dim=" << dim;
      }
      EXPECT_GT(kernel_weights[0], 0.0);
    }
  }
}

TEST(SamplingTest, ActiveFraction) {
  EXPECT_DOUBLE_EQ(ActiveFraction({1, 1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(ActiveFraction({1, 0, 0, 1}), 0.5);
  EXPECT_DOUBLE_EQ(ActiveFraction(std::vector<uint8_t>{0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(ActiveFraction(std::vector<uint8_t>{}), 0.0);
}

TEST(KernelTest, FullMaskHasWeightOne) {
  EXPECT_DOUBLE_EQ(KernelWeight({1, 1, 1}, 0.25), 1.0);
}

TEST(KernelTest, WeightDecreasesWithRemovals) {
  const double w3 = KernelWeight({1, 1, 1, 0}, 0.25);
  const double w2 = KernelWeight({1, 1, 0, 0}, 0.25);
  const double w1 = KernelWeight({1, 0, 0, 0}, 0.25);
  EXPECT_GT(1.0, w3);
  EXPECT_GT(w3, w2);
  EXPECT_GT(w2, w1);
  EXPECT_GT(w1, 0.0);
}

TEST(KernelTest, WiderKernelFlattensWeights) {
  const std::vector<uint8_t> mask = {1, 0, 0, 0};
  EXPECT_GT(KernelWeight(mask, 1.0), KernelWeight(mask, 0.25));
}

TEST(SurrogateTest, RecoversLinearResponseExactly) {
  // Target is a perfectly linear function of the mask bits; the fit must
  // recover it (up to ridge shrinkage with tiny lambda).
  Rng rng(5);
  const size_t d = 6;
  auto masks = SamplePerturbationMasks(d, 300, rng);
  const std::vector<double> true_w = {0.3, -0.2, 0.1, 0.0, 0.25, -0.15};
  std::vector<double> targets, weights;
  for (const auto& mask : masks) {
    double y = 0.5;
    for (size_t i = 0; i < d; ++i) y += mask[i] * true_w[i];
    targets.push_back(y);
    weights.push_back(KernelWeight(mask, 0.25));
  }
  SurrogateOptions options;
  options.ridge_lambda = 1e-8;
  auto fit = FitSurrogate(masks, targets, weights, options);
  ASSERT_TRUE(fit.ok());
  for (size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(fit->model.coefficients[i], true_w[i], 1e-6);
  }
  EXPECT_NEAR(fit->model.intercept, 0.5, 1e-6);
  EXPECT_NEAR(fit->weighted_r2, 1.0, 1e-9);
}

TEST(SurrogateTest, R2DropsForNonLinearResponse) {
  Rng rng(6);
  const size_t d = 5;
  auto masks = SamplePerturbationMasks(d, 300, rng);
  std::vector<double> targets, weights;
  for (const auto& mask : masks) {
    // XOR-ish response: linear model cannot represent it.
    targets.push_back(static_cast<double>((mask[0] + mask[1]) % 2));
    weights.push_back(KernelWeight(mask, 0.25));
  }
  auto fit = FitSurrogate(masks, targets, weights, {});
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->weighted_r2, 0.6);
}

TEST(SurrogateTest, FeatureSelectionKeepsTopFeatures) {
  Rng rng(7);
  const size_t d = 10;
  auto masks = SamplePerturbationMasks(d, 400, rng);
  std::vector<double> targets, weights;
  for (const auto& mask : masks) {
    // Only features 2 and 7 matter.
    targets.push_back(0.8 * mask[2] - 0.5 * mask[7]);
    weights.push_back(1.0);
  }
  SurrogateOptions options;
  options.ridge_lambda = 1e-6;
  options.max_features = 2;
  auto fit = FitSurrogate(masks, targets, weights, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->model.coefficients[2], 0.8, 1e-4);
  EXPECT_NEAR(fit->model.coefficients[7], -0.5, 1e-4);
  for (size_t i = 0; i < d; ++i) {
    if (i == 2 || i == 7) continue;
    EXPECT_DOUBLE_EQ(fit->model.coefficients[i], 0.0);
  }
}

TEST(SurrogateTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(
      FitSurrogate(std::vector<std::vector<uint8_t>>{}, {}, {}, {}).ok());
  EXPECT_FALSE(FitSurrogate({{1, 1}}, {0.5, 0.1}, {1.0}, {}).ok());
  EXPECT_FALSE(FitSurrogate({{1, 1}, {1}}, {0.5, 0.1}, {1.0, 1.0}, {}).ok());
  EXPECT_FALSE(FitSurrogate({{}}, {0.5}, {1.0}, {}).ok());
}

}  // namespace
}  // namespace landmark
