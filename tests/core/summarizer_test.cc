#include "core/summarizer.h"

#include <gtest/gtest.h>

#include "core/landmark_explainer.h"
#include "datagen/magellan.h"
#include "em/heuristic_model.h"

namespace landmark {
namespace {

Explanation MakeExplanation(
    const std::vector<std::tuple<size_t, std::string, double, bool>>& tokens) {
  Explanation exp;
  for (const auto& [attr, text, weight, injected] : tokens) {
    Token t;
    t.attribute = attr;
    t.text = text;
    t.injected = injected;
    exp.token_weights.push_back(TokenWeight{t, weight});
  }
  return exp;
}

TEST(SummarizerTest, AggregatesAcrossExplanations) {
  std::vector<Explanation> explanations = {
      MakeExplanation({{0, "sony", 0.4, false}, {1, "cheap", -0.1, false}}),
      MakeExplanation({{0, "sony", 0.2, false}, {0, "nikon", -0.3, false}}),
  };
  SummarizerOptions options;
  options.min_support = 1;
  ExplanationSummary summary = SummarizeExplanations(explanations, 2, options);
  EXPECT_EQ(summary.num_explanations, 2u);

  const GlobalTokenImportance* sony = nullptr;
  for (const auto& t : summary.tokens) {
    if (t.text == "sony") sony = &t;
  }
  ASSERT_NE(sony, nullptr);
  EXPECT_EQ(sony->support, 2u);
  EXPECT_NEAR(sony->mean_weight, 0.3, 1e-12);
  EXPECT_NEAR(sony->mean_abs_weight, 0.3, 1e-12);
}

TEST(SummarizerTest, MinSupportFiltersRareTokens) {
  std::vector<Explanation> explanations = {
      MakeExplanation({{0, "common", 0.5, false}, {0, "rare", 0.9, false}}),
      MakeExplanation({{0, "common", 0.5, false}}),
  };
  SummarizerOptions options;
  options.min_support = 2;
  ExplanationSummary summary = SummarizeExplanations(explanations, 1, options);
  ASSERT_EQ(summary.tokens.size(), 1u);
  EXPECT_EQ(summary.tokens[0].text, "common");
}

TEST(SummarizerTest, SortedByMeanAbsoluteWeight) {
  std::vector<Explanation> explanations = {
      MakeExplanation({{0, "weak", 0.1, false},
                       {0, "strong", -0.9, false},
                       {0, "medium", 0.5, false}}),
  };
  SummarizerOptions options;
  options.min_support = 1;
  ExplanationSummary summary = SummarizeExplanations(explanations, 1, options);
  ASSERT_EQ(summary.tokens.size(), 3u);
  EXPECT_EQ(summary.tokens[0].text, "strong");
  EXPECT_EQ(summary.tokens[1].text, "medium");
  EXPECT_EQ(summary.tokens[2].text, "weak");
}

TEST(SummarizerTest, RepeatedTokenWithinOneExplanationCountsOnce) {
  // Two occurrences of "sony" in one explanation merge (weights summed)
  // before aggregation.
  std::vector<Explanation> explanations = {
      MakeExplanation({{0, "sony", 0.2, false}, {0, "sony", 0.3, false}}),
  };
  SummarizerOptions options;
  options.min_support = 1;
  ExplanationSummary summary = SummarizeExplanations(explanations, 1, options);
  ASSERT_EQ(summary.tokens.size(), 1u);
  EXPECT_EQ(summary.tokens[0].support, 1u);
  EXPECT_NEAR(summary.tokens[0].mean_weight, 0.5, 1e-12);
}

TEST(SummarizerTest, InjectedTokensCanBeExcluded) {
  std::vector<Explanation> explanations = {
      MakeExplanation({{0, "own", 0.4, false}, {0, "borrowed", 0.6, true}}),
  };
  SummarizerOptions options;
  options.min_support = 1;
  options.include_injected = false;
  ExplanationSummary summary = SummarizeExplanations(explanations, 1, options);
  ASSERT_EQ(summary.tokens.size(), 1u);
  EXPECT_EQ(summary.tokens[0].text, "own");
}

TEST(SummarizerTest, AttributeImportanceNormalizedAndOrdered) {
  std::vector<Explanation> explanations = {
      MakeExplanation({{0, "big", 0.9, false}, {1, "small", 0.1, false}}),
      MakeExplanation({{0, "big", -0.7, false}, {1, "tiny", 0.1, false}}),
  };
  SummarizerOptions options;
  options.min_support = 1;
  ExplanationSummary summary = SummarizeExplanations(explanations, 2, options);
  ASSERT_EQ(summary.attribute_importance.size(), 2u);
  EXPECT_NEAR(summary.attribute_importance[0] + summary.attribute_importance[1],
              1.0, 1e-12);
  EXPECT_GT(summary.attribute_importance[0],
            summary.attribute_importance[1]);
}

TEST(SummarizerTest, EndToEndOnBenchmark) {
  // The summary of a Jaccard model must put its weight on genuinely shared
  // tokens and produce a sane attribute distribution.
  EmDataset dataset =
      *GenerateMagellanDataset(*FindMagellanSpec("S-BR"));
  JaccardEmModel model;
  LandmarkExplainer explainer(GenerationStrategy::kSingle);
  Rng rng(3);
  std::vector<Explanation> all;
  for (size_t idx : dataset.SampleByLabel(MatchLabel::kMatch, 15, rng)) {
    auto explanations = explainer.Explain(model, dataset.pair(idx));
    if (!explanations.ok()) continue;
    for (auto& e : *explanations) all.push_back(std::move(e));
  }
  ASSERT_FALSE(all.empty());
  ExplanationSummary summary = SummarizeExplanations(
      all, dataset.entity_schema()->num_attributes());
  EXPECT_GT(summary.tokens.size(), 0u);
  double total = 0.0;
  for (double v : summary.attribute_importance) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // ToString renders without crashing and mentions the top token.
  std::string rendered = summary.ToString(*dataset.entity_schema(), 5);
  EXPECT_NE(rendered.find("top tokens"), std::string::npos);
}

}  // namespace
}  // namespace landmark
