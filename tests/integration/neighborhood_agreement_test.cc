// Cross-neighborhood sanity: the LIME and KernelSHAP backends are different
// estimators of the same local behaviour, so on a transparent model they
// must largely agree about which tokens matter.

#include <algorithm>
#include <gtest/gtest.h>

#include "core/landmark_explainer.h"
#include "datagen/magellan.h"
#include "em/heuristic_model.h"

namespace landmark {
namespace {

TEST(NeighborhoodAgreementTest, TopTokenOverlapIsHigh) {
  EmDataset dataset = *GenerateMagellanDataset(*FindMagellanSpec("S-BR"));
  JaccardEmModel model;

  ExplainerOptions lime_options;
  lime_options.num_samples = 384;
  ExplainerOptions shap_options = lime_options;
  shap_options.neighborhood = NeighborhoodKind::kShap;

  LandmarkExplainer lime_backend(GenerationStrategy::kSingle, lime_options);
  LandmarkExplainer shap_backend(GenerationStrategy::kSingle, shap_options);

  Rng rng(13);
  double overlap_total = 0.0;
  size_t compared = 0;
  constexpr size_t kTop = 3;
  for (size_t idx : dataset.SampleByLabel(MatchLabel::kMatch, 10, rng)) {
    const PairRecord& pair = dataset.pair(idx);
    auto lime_exp =
        lime_backend.ExplainWithLandmark(model, pair, EntitySide::kLeft);
    auto shap_exp =
        shap_backend.ExplainWithLandmark(model, pair, EntitySide::kLeft);
    if (!lime_exp.ok() || !shap_exp.ok()) continue;
    if (lime_exp->size() < kTop) continue;

    auto top_texts = [&](const Explanation& exp) {
      std::vector<std::string> texts;
      for (size_t i : exp.TopFeatures(kTop)) {
        texts.push_back(exp.token_weights[i].token.text);
      }
      std::sort(texts.begin(), texts.end());
      return texts;
    };
    std::vector<std::string> a = top_texts(*lime_exp);
    std::vector<std::string> b = top_texts(*shap_exp);
    std::vector<std::string> common;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(common));
    overlap_total += static_cast<double>(common.size()) / kTop;
    ++compared;
  }
  ASSERT_GT(compared, 5u);
  EXPECT_GT(overlap_total / static_cast<double>(compared), 0.5);
}

TEST(NeighborhoodAgreementTest, SignsAgreeOnTheStrongestToken) {
  // The most important token's sign (match-supporting or not) must be the
  // same under both backends.
  EmDataset dataset = *GenerateMagellanDataset(*FindMagellanSpec("S-BR"));
  JaccardEmModel model;

  ExplainerOptions lime_options;
  lime_options.num_samples = 384;
  ExplainerOptions shap_options = lime_options;
  shap_options.neighborhood = NeighborhoodKind::kShap;
  LandmarkExplainer lime_backend(GenerationStrategy::kSingle, lime_options);
  LandmarkExplainer shap_backend(GenerationStrategy::kSingle, shap_options);

  Rng rng(17);
  size_t agreements = 0, compared = 0;
  for (size_t idx : dataset.SampleByLabel(MatchLabel::kMatch, 10, rng)) {
    const PairRecord& pair = dataset.pair(idx);
    auto a = lime_backend.ExplainWithLandmark(model, pair, EntitySide::kLeft);
    auto b = shap_backend.ExplainWithLandmark(model, pair, EntitySide::kLeft);
    if (!a.ok() || !b.ok() || a->size() == 0) continue;
    const size_t top_a = a->TopFeatures(1)[0];
    // Find the same token in b's space (identical spaces: same record).
    const double wa = a->token_weights[top_a].weight;
    const double wb = b->token_weights[top_a].weight;
    agreements += (wa >= 0) == (wb >= 0);
    ++compared;
  }
  ASSERT_GT(compared, 5u);
  EXPECT_GE(static_cast<double>(agreements) / compared, 0.8);
}

}  // namespace
}  // namespace landmark
