// End-to-end integration tests asserting the *shapes* of the paper's
// headline results at reduced scale (fewer records / samples than the bench
// binaries, same pipeline).

#include <gtest/gtest.h>

#include "eval/experiment.h"

namespace landmark {
namespace {

class PaperClaimsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentConfig config;
    config.records_per_label = 30;
    config.size_scale = 1.0;  // S-BR is small (450 pairs)
    config.explainer_options.num_samples = 192;
    config.token_removal.repetitions = 2;
    context_ = new Result<ExperimentContext>(
        ExperimentContext::Create(*FindMagellanSpec("S-BR"), config));
    config_ = new ExperimentConfig(config);
    ASSERT_TRUE(context_->ok());
  }
  static void TearDownTestSuite() {
    delete context_;
    delete config_;
    context_ = nullptr;
    config_ = nullptr;
  }

  const ExperimentContext& context() { return **context_; }
  const ExperimentConfig& config() { return *config_; }

  static Result<ExperimentContext>* context_;
  static ExperimentConfig* config_;
};

Result<ExperimentContext>* PaperClaimsTest::context_ = nullptr;
ExperimentConfig* PaperClaimsTest::config_ = nullptr;

TEST_F(PaperClaimsTest, ModelIsAccurateEnoughToBeWorthExplaining) {
  EXPECT_GT(context().model().report().f1, 0.7);
}

TEST_F(PaperClaimsTest, Table2a_SingleBeatsLimeOnMatchingRecords) {
  LandmarkExplainer single(GenerationStrategy::kSingle,
                           config().explainer_options);
  LimeExplainer lime(config().explainer_options);
  const auto& sample = context().sample(MatchLabel::kMatch);

  auto eval = [&](const PairExplainer& explainer) {
    ExplainBatchResult batch = ExplainRecords(
        context().model(), explainer, context().dataset(), sample);
    return *EvaluateTokenRemoval(context().model(), explainer,
                                 context().dataset(), batch.records,
                                 config().token_removal);
  };
  TokenRemovalResult single_result = eval(single);
  TokenRemovalResult lime_result = eval(lime);
  EXPECT_GT(single_result.accuracy, lime_result.accuracy - 0.02);
  EXPECT_LT(single_result.mae, lime_result.mae);
}

TEST_F(PaperClaimsTest, Table2b_MojitoCopyIsTheLeastReliable) {
  MojitoCopyExplainer copy(config().explainer_options);
  LandmarkExplainer dbl(GenerationStrategy::kDouble,
                        config().explainer_options);
  const auto& sample = context().sample(MatchLabel::kNonMatch);

  auto eval = [&](const PairExplainer& explainer) {
    ExplainBatchResult batch = ExplainRecords(
        context().model(), explainer, context().dataset(), sample);
    return *EvaluateTokenRemoval(context().model(), explainer,
                                 context().dataset(), batch.records,
                                 config().token_removal);
  };
  TokenRemovalResult copy_result = eval(copy);
  TokenRemovalResult double_result = eval(dbl);
  EXPECT_GT(copy_result.mae, double_result.mae);
  EXPECT_LT(copy_result.accuracy, double_result.accuracy);
}

TEST_F(PaperClaimsTest, Table4b_DoubleEntityMaximizesInterestOnNonMatches) {
  LandmarkExplainer dbl(GenerationStrategy::kDouble,
                        config().explainer_options);
  MojitoCopyExplainer copy(config().explainer_options);
  const auto& sample = context().sample(MatchLabel::kNonMatch);

  auto eval = [&](const PairExplainer& explainer) {
    ExplainBatchResult batch = ExplainRecords(
        context().model(), explainer, context().dataset(), sample);
    return *EvaluateInterest(context().model(), explainer, context().dataset(),
                             batch.records, MatchLabel::kNonMatch,
                             config().interest);
  };
  InterestResult double_result = eval(dbl);
  InterestResult copy_result = eval(copy);
  EXPECT_GT(double_result.interest, 0.6);
  EXPECT_LT(copy_result.interest, 0.2);
  EXPECT_GT(double_result.interest, copy_result.interest + 0.4);
}

TEST_F(PaperClaimsTest, LandmarkSurrogatesFitBetterThanLime) {
  // The motivation of the paper: on non-matching records, plain LIME's
  // neighbourhood stays glued to the non-match class, while double-entity
  // generation spans both classes — so the landmark surrogate explains far
  // more of the model's local variance.
  LandmarkExplainer dbl(GenerationStrategy::kDouble,
                        config().explainer_options);
  LimeExplainer lime(config().explainer_options);
  const auto& sample = context().sample(MatchLabel::kNonMatch);

  auto mean_r2 = [&](const PairExplainer& explainer) {
    ExplainBatchResult batch = ExplainRecords(
        context().model(), explainer, context().dataset(), sample);
    double total = 0.0;
    size_t n = 0;
    for (const auto& record : batch.records) {
      for (const auto& exp : record.explanations) {
        total += exp.surrogate_r2;
        ++n;
      }
    }
    return total / static_cast<double>(n);
  };
  EXPECT_GT(mean_r2(dbl), mean_r2(lime) + 0.1);
}

TEST_F(PaperClaimsTest, ExplanationsAreReproducibleAcrossRuns) {
  LandmarkExplainer explainer(GenerationStrategy::kAuto,
                              config().explainer_options);
  const PairRecord& pair =
      context().dataset().pair(context().sample(MatchLabel::kMatch)[0]);
  auto a = explainer.Explain(context().model(), pair);
  auto b = explainer.Explain(context().model(), pair);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t e = 0; e < a->size(); ++e) {
    ASSERT_EQ((*a)[e].size(), (*b)[e].size());
    for (size_t i = 0; i < (*a)[e].size(); ++i) {
      EXPECT_DOUBLE_EQ((*a)[e].token_weights[i].weight,
                       (*b)[e].token_weights[i].weight);
    }
  }
}

}  // namespace
}  // namespace landmark
