#include "util/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace landmark {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextUint64(bound), bound);
    }
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsCentered) {
  Rng rng(17);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.NextDouble();
  EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(19);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyTracksProbability) {
  Rng rng(23);
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(p);
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.03);
  }
}

TEST(RngTest, WeightedPickFollowsWeights) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(37);
  for (size_t n : {1u, 5u, 20u}) {
    for (size_t k = 0; k <= n; ++k) {
      std::vector<size_t> sample = rng.SampleWithoutReplacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<size_t> distinct(sample.begin(), sample.end());
      EXPECT_EQ(distinct.size(), k);
      for (size_t idx : sample) EXPECT_LT(idx, n);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementIsUniform) {
  // Each element of [0,10) should appear in a 3-subset with p = 0.3.
  Rng rng(41);
  std::vector<int> counts(10, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    for (size_t idx : rng.SampleWithoutReplacement(10, 3)) ++counts[idx];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.3, 0.03);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(43);
  Rng child = a.Fork();
  // The child should not replay the parent's stream.
  Rng b(43);
  b.Next();  // advance as Fork did
  int equal = 0;
  for (int i = 0; i < 50; ++i) equal += child.Next() == b.Next();
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace landmark
