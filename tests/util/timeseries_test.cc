// SnapshotCollector unit tests, driven entirely by the injectable deck
// clock and synchronous TickOnce() calls — no real waiting: ring-buffer
// rotation with monotone window indices, delta-vs-cumulative exactness
// (base + sum of window deltas == registry total), windowed rates on a
// virtual 2 s window, windowed histogram quantiles staying inside the one
// bucket that moved, exemplar latest/peak retention, observer delivery,
// the JSONL dump shape and one real Start/Stop thread smoke.
//
// The metrics registry is process-global and shared with every other test
// in this binary, so each test works with uniquely-named metrics and
// asserts only on names it owns.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/telemetry/flight_deck.h"
#include "util/telemetry/metrics.h"
#include "util/telemetry/timeseries.h"

namespace landmark {
namespace {

std::atomic<uint64_t> g_fake_now_ns{0};
uint64_t FakeNow() { return g_fake_now_ns.load(std::memory_order_relaxed); }

/// Scoped deck-clock override; restores the real clock on destruction so a
/// failing test cannot poison its neighbors.
class FakeClockScope {
 public:
  explicit FakeClockScope(uint64_t start_ns) {
    g_fake_now_ns.store(start_ns, std::memory_order_relaxed);
    SetFlightDeckClockForTest(&FakeNow);
  }
  ~FakeClockScope() { SetFlightDeckClockForTest(nullptr); }

  void AdvanceSeconds(double seconds) {
    g_fake_now_ns.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                            std::memory_order_relaxed);
  }
};

/// The window's delta for `name`, or 0 when the counter did not move.
uint64_t CounterDelta(const TimeseriesWindow& window,
                      const std::string& name) {
  for (const WindowCounter& c : window.counters) {
    if (c.name == name) return c.delta;
  }
  return 0;
}

const WindowHistogram* FindWindowHistogram(const TimeseriesWindow& window,
                                           const std::string& name) {
  for (const WindowHistogram& h : window.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

TEST(WindowedQuantileTest, SingleBucketStaysInsideItsBounds) {
  std::array<uint64_t, Histogram::kNumBuckets> deltas{};
  // 100 observations, all in the bucket whose range is
  // (bounds[9], bounds[10]].
  deltas[10] = 100;
  const double lower = Histogram::BucketUpperBound(9);
  const double upper = Histogram::BucketUpperBound(10);
  for (double q : {0.5, 0.95, 0.99}) {
    const double value = WindowedQuantile(deltas, 100, 0.0, q);
    EXPECT_GE(value, lower) << "q=" << q;
    EXPECT_LE(value, upper) << "q=" << q;
  }
  // Quantiles are monotone in q.
  EXPECT_LE(WindowedQuantile(deltas, 100, 0.0, 0.5),
            WindowedQuantile(deltas, 100, 0.0, 0.99));
}

TEST(WindowedQuantileTest, EmptyDeltasReturnZero) {
  std::array<uint64_t, Histogram::kNumBuckets> deltas{};
  EXPECT_EQ(WindowedQuantile(deltas, 0, 0.0, 0.95), 0.0);
}

TEST(SnapshotCollectorTest, FirstTickArmsBaseWithoutAWindow) {
  FakeClockScope clock(1000);
  SnapshotCollector collector;
  EXPECT_FALSE(collector.armed());
  collector.TickOnce();
  EXPECT_TRUE(collector.armed());
  EXPECT_EQ(collector.ticks(), 0u);
  EXPECT_TRUE(collector.Windows().empty());
  EXPECT_EQ(collector.Base().start_ns, 1000u);
}

TEST(SnapshotCollectorTest, DeltaPlusBaseEqualsCumulative) {
  FakeClockScope clock(0);
  Counter& counter = MetricsRegistry::Global().GetCounter(
      "test/timeseries/exactness_total");
  counter.Add(7);  // pre-existing value lands in the base, not a delta

  SnapshotCollector collector;
  collector.TickOnce();  // arm
  const uint64_t base =
      [&] {
        for (const auto& [name, value] : collector.Base().counters) {
          if (name == "test/timeseries/exactness_total") return value;
        }
        return uint64_t{0};
      }();
  EXPECT_EQ(base, 7u);

  uint64_t delta_sum = 0;
  for (uint64_t bump : {3u, 0u, 11u, 1u}) {
    counter.Add(bump);
    clock.AdvanceSeconds(1.0);
    collector.TickOnce();
  }
  for (const TimeseriesWindow& window : collector.Windows()) {
    delta_sum += CounterDelta(window, "test/timeseries/exactness_total");
  }
  EXPECT_EQ(base + delta_sum, counter.Value());
  EXPECT_EQ(delta_sum, 15u);
  // The zero-delta window omitted the counter entirely.
  EXPECT_EQ(collector.Windows().size(), 4u);
  EXPECT_EQ(CounterDelta(collector.Windows()[1],
                         "test/timeseries/exactness_total"),
            0u);
}

TEST(SnapshotCollectorTest, RingRotationKeepsMonotoneIndices) {
  FakeClockScope clock(0);
  TimeseriesOptions options;
  options.capacity = 3;
  SnapshotCollector collector(options);
  collector.TickOnce();  // arm
  for (int i = 0; i < 5; ++i) {
    clock.AdvanceSeconds(1.0);
    collector.TickOnce();
  }
  EXPECT_EQ(collector.ticks(), 5u);
  EXPECT_EQ(collector.dropped(), 2u);
  const std::vector<TimeseriesWindow> windows = collector.Windows();
  ASSERT_EQ(windows.size(), 3u);
  // Window identity survives eviction: the retained windows are 2, 3, 4.
  EXPECT_EQ(windows[0].index, 2u);
  EXPECT_EQ(windows[1].index, 3u);
  EXPECT_EQ(windows[2].index, 4u);
  EXPECT_LT(windows[0].start_ns, windows[0].end_ns);
  EXPECT_EQ(windows[0].end_ns, windows[1].start_ns);
}

TEST(SnapshotCollectorTest, RatesUseTheVirtualWindowLength) {
  FakeClockScope clock(0);
  Counter& counter =
      MetricsRegistry::Global().GetCounter("test/timeseries/rate_total");
  SnapshotCollector collector;
  collector.TickOnce();  // arm
  counter.Add(10);
  clock.AdvanceSeconds(2.0);
  collector.TickOnce();
  const std::vector<TimeseriesWindow> windows = collector.Windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].seconds(), 2.0);
  for (const WindowCounter& c : windows[0].counters) {
    if (c.name != "test/timeseries/rate_total") continue;
    EXPECT_EQ(c.delta, 10u);
    EXPECT_DOUBLE_EQ(c.rate, 5.0);
    return;
  }
  FAIL() << "counter missing from window";
}

TEST(SnapshotCollectorTest, WindowedHistogramQuantilesTrackTheWindow) {
  FakeClockScope clock(0);
  Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "test/timeseries/latency_seconds");
  // Cumulative history in a *low* bucket, before the collector arms: the
  // windowed quantiles must not see it.
  for (int i = 0; i < 50; ++i) histogram.Record(2e-6);

  SnapshotCollector collector;
  collector.TickOnce();  // arm
  // This window's observations all land in the bucket containing 1e-3.
  for (int i = 0; i < 20; ++i) histogram.Record(1e-3);
  clock.AdvanceSeconds(1.0);
  collector.TickOnce();

  const std::vector<TimeseriesWindow> windows = collector.Windows();
  ASSERT_EQ(windows.size(), 1u);
  const WindowHistogram* wh =
      FindWindowHistogram(windows[0], "test/timeseries/latency_seconds");
  ASSERT_NE(wh, nullptr);
  EXPECT_EQ(wh->count_delta, 20u);
  EXPECT_NEAR(wh->sum_delta, 20 * 1e-3, 1e-9);
  // All three quantiles stay inside the single moved bucket — far above
  // the 2e-6 mass that dominates the cumulative distribution.
  const size_t bucket = Histogram::BucketIndexForBound(
      wh->buckets.front().first);
  const double lower = bucket == 0 ? 0.0 : Histogram::BucketUpperBound(
                                               bucket - 1);
  const double upper = Histogram::BucketUpperBound(bucket);
  ASSERT_EQ(wh->buckets.size(), 1u);
  for (double q : {wh->p50, wh->p95, wh->p99}) {
    EXPECT_GE(q, lower);
    EXPECT_LE(q, upper);
  }
  EXPECT_GT(wh->p50, 1e-4);
}

TEST(SnapshotCollectorTest, ObserversSeeEachEmittedWindow) {
  FakeClockScope clock(0);
  SnapshotCollector collector;
  std::vector<uint64_t> seen;
  collector.AddObserver(
      [&seen](const TimeseriesWindow& window) {
        seen.push_back(window.index);
      });
  collector.TickOnce();  // arm — no window, no callback
  EXPECT_TRUE(seen.empty());
  for (int i = 0; i < 3; ++i) {
    clock.AdvanceSeconds(1.0);
    collector.TickOnce();
  }
  EXPECT_EQ(seen, (std::vector<uint64_t>{0, 1, 2}));
}

TEST(SnapshotCollectorTest, JsonlDumpHasBaseAndWindowLines) {
  FakeClockScope clock(0);
  Counter& counter =
      MetricsRegistry::Global().GetCounter("test/timeseries/jsonl_total");
  SnapshotCollector collector;
  collector.TickOnce();  // arm
  counter.Add(4);
  clock.AdvanceSeconds(1.0);
  collector.TickOnce();

  const std::string path = ::testing::TempDir() + "/timeseries_test.jsonl";
  ASSERT_TRUE(collector.WriteJsonl(path).ok());
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("{\"type\":\"timeline_base\"", 0), 0u);
  EXPECT_EQ(lines[1].rfind("{\"type\":\"window\"", 0), 0u);
  EXPECT_NE(lines[1].find("\"test/timeseries/jsonl_total\""),
            std::string::npos);

  // The /timelinez JSON shape mirrors the dump.
  const std::string json = collector.TimelinezJson();
  EXPECT_NE(json.find("\"windows\":["), std::string::npos);
  EXPECT_NE(json.find("\"base\":{"), std::string::npos);
  // And the human table names the same counter.
  EXPECT_NE(collector.TimelinezText().find("test/timeseries/jsonl_total"),
            std::string::npos);
}

TEST(SnapshotCollectorTest, StartStopThreadSmoke) {
  TimeseriesOptions options;
  options.period_ns = 5ull * 1000 * 1000;  // 5 ms — real clock, real thread
  SnapshotCollector collector(options);
  collector.Start();
  EXPECT_TRUE(collector.running());
  EXPECT_TRUE(collector.armed());  // Start arms the base synchronously
  collector.Stop();
  EXPECT_FALSE(collector.running());
  collector.Stop();  // idempotent
  // The ring survives Stop (linger contract).
  EXPECT_TRUE(collector.armed());
}

TEST(HistogramExemplarTest, LatestAndPeakPerBucket) {
  Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "test/timeseries/exemplar_seconds");
  ExemplarContext first;
  first.audit_ordinal = 41;
  first.has_audit_ordinal = true;
  first.record_id = 100;
  ExemplarContext second;
  second.audit_ordinal = 42;
  second.has_audit_ordinal = true;
  second.record_id = 200;
  // Same bucket, second observation smaller: latest moves, peak stays.
  LANDMARK_OBSERVE_WITH_EXEMPLAR(histogram, 1.9e-3, first);
  LANDMARK_OBSERVE_WITH_EXEMPLAR(histogram, 1.1e-3, second);

  const HistogramSnapshot snapshot =
      histogram.Snapshot("test/timeseries/exemplar_seconds");
  ASSERT_EQ(snapshot.exemplars.size(), 1u);
  const BucketExemplars& bucket = snapshot.exemplars[0];
  EXPECT_TRUE(bucket.latest.valid);
  EXPECT_EQ(bucket.latest.audit_ordinal, 42u);
  EXPECT_EQ(bucket.latest.record_id, 200);
  EXPECT_DOUBLE_EQ(bucket.latest.value, 1.1e-3);
  EXPECT_TRUE(bucket.peak.valid);
  EXPECT_EQ(bucket.peak.audit_ordinal, 41u);
  EXPECT_DOUBLE_EQ(bucket.peak.value, 1.9e-3);
  // Reset drops the slots with the counts.
  histogram.Reset();
  EXPECT_TRUE(histogram.Snapshot("x").exemplars.empty());
}

}  // namespace
}  // namespace landmark
