#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include "util/mutex.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

namespace landmark {
namespace {

TEST(ThreadPoolTest, InlinePoolSpawnsNoWorkers) {
  ThreadPool zero(0);
  ThreadPool one(1);
  EXPECT_EQ(zero.num_threads(), 0u);
  EXPECT_EQ(one.num_threads(), 0u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 4u, 7u}) {
    ThreadPool pool(threads);
    for (size_t n : {0u, 1u, 3u, 8u, 100u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h = 0;
      pool.ParallelFor(n, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) ++hits[i];
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n
                                     << " index=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ChunksAreContiguousAndOrderedByFirstIndex) {
  ThreadPool pool(4);
  Mutex mu{"chunk-log"};
  std::vector<std::pair<size_t, size_t>> chunks;
  pool.ParallelFor(10, [&](size_t begin, size_t end) {
    MutexLock lock(&mu);
    chunks.emplace_back(begin, end);
  });
  ASSERT_EQ(chunks.size(), pool.NumChunks(10));
  std::sort(chunks.begin(), chunks.end());
  size_t expected_begin = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_GT(end, begin);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, 10u);
}

TEST(ThreadPoolTest, PartitionDependsOnlyOnRangeSize) {
  // Two same-sized pools must produce the same chunk boundaries: that is
  // what makes parallel stage output independent of scheduling.
  ThreadPool a(3), b(3);
  for (size_t n : {1u, 2u, 3u, 7u, 11u, 64u}) {
    auto boundaries = [n](ThreadPool& pool) {
      Mutex mu{"boundary-log"};
      std::vector<std::pair<size_t, size_t>> chunks;
      pool.ParallelFor(n, [&](size_t begin, size_t end) {
        MutexLock lock(&mu);
        chunks.emplace_back(begin, end);
      });
      std::sort(chunks.begin(), chunks.end());
      return chunks;
    };
    EXPECT_EQ(boundaries(a), boundaries(b)) << "n=" << n;
  }
}

TEST(ThreadPoolTest, NumChunksNeverExceedsRangeOrPoolSize) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.NumChunks(0), 0u);
  EXPECT_EQ(pool.NumChunks(2), 2u);
  EXPECT_EQ(pool.NumChunks(4), 4u);
  EXPECT_EQ(pool.NumChunks(100), 4u);
  ThreadPool inline_pool(1);
  EXPECT_EQ(inline_pool.NumChunks(100), 1u);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossCalls) {
  ThreadPool pool(4);
  std::vector<long> out(1000);
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(out.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        out[i] = static_cast<long>(i) * (round + 1);
      }
    });
    const long sum = std::accumulate(out.begin(), out.end(), 0L);
    EXPECT_EQ(sum, 999L * 1000L / 2 * (round + 1));
  }
}

TEST(ThreadPoolTest, SubmitAndWaitRunEveryTask) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 50);
  // Wait with an empty queue returns immediately.
  pool.Wait();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, SubmitLocalRunsEveryTask) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  // From a non-worker thread SubmitLocal falls back to the shared queue.
  for (int i = 0; i < 10; ++i) {
    pool.SubmitLocal([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 10);
  // From inside a worker it lands on that worker's own deque; tasks still
  // all run (idle workers steal), and nested submission drains before Wait
  // returns.
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &count] {
      for (int j = 0; j < 5; ++j) {
        pool.SubmitLocal([&count] { ++count; });
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 10 + 8 * 5);
}

TEST(ThreadPoolTest, SubmitLocalRunsInlineOnWorkerlessPool) {
  ThreadPool pool(1);
  int count = 0;
  pool.SubmitLocal([&count] { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { ++count; });
    }
  }
  EXPECT_EQ(count.load(), 20);
}

}  // namespace
}  // namespace landmark
