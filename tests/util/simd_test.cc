// The SIMD shim's exactness contract (util/simd.h): every kernel must
// produce bit-identical results to a reference scalar implementation, with
// the vector paths enabled and disabled. The references here are written
// out independently (classic DP / nested loops), so the tests hold on any
// ISA the dispatcher picks — scalar, SSE2, AVX2, or NEON.

#include "util/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace landmark {
namespace {

std::string RandomString(Rng& rng, size_t max_len, int alphabet) {
  const size_t len =
      static_cast<size_t>(rng.NextInt(0, static_cast<int64_t>(max_len)));
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('a' + rng.NextInt(0, static_cast<int64_t>(alphabet) - 1)));
  }
  return out;
}

/// Classic O(m*n) Levenshtein, the oracle for Myers.
size_t ReferenceLevenshtein(const std::string& a, const std::string& b) {
  const size_t m = a.size();
  const size_t n = b.size();
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> curr(m + 1);
  for (size_t i = 0; i <= m; ++i) prev[i] = i;
  for (size_t j = 1; j <= n; ++j) {
    curr[0] = j;
    for (size_t i = 1; i <= m; ++i) {
      const size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      curr[i] = std::min({prev[i] + 1, curr[i - 1] + 1, prev[i - 1] + cost});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

/// Classic nested-loop Jaro match/transposition counting, the oracle for
/// JaroCounts.
void ReferenceJaroCounts(const std::string& a, const std::string& b,
                         size_t* matches, size_t* transpositions) {
  const size_t la = a.size();
  const size_t lb = b.size();
  const size_t window = std::max<size_t>(1, std::max(la, lb) / 2) - 1;
  std::vector<bool> a_matched(la, false);
  std::vector<bool> b_matched(lb, false);
  size_t m = 0;
  for (size_t i = 0; i < la; ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(lb, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++m;
      break;
    }
  }
  size_t t = 0;
  size_t j = 0;
  for (size_t i = 0; i < la; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++t;
    ++j;
  }
  *matches = m;
  *transpositions = t;
}

TEST(SimdTest, MyersLevenshteinMatchesClassicDp) {
  Rng rng(42);
  for (int trial = 0; trial < 500; ++trial) {
    // Small alphabets force repeats, the hard case for the bit deltas.
    const int alphabet = trial % 2 == 0 ? 3 : 26;
    const std::string a = RandomString(rng, 64, alphabet);
    const std::string b = RandomString(rng, 80, alphabet);
    if (a.empty() || b.empty()) continue;
    EXPECT_EQ(simd::MyersLevenshtein(a, b), ReferenceLevenshtein(a, b))
        << "a=" << a << " b=" << b;
  }
}

TEST(SimdTest, JaroCountsMatchClassicScan) {
  Rng rng(43);
  for (int trial = 0; trial < 500; ++trial) {
    const int alphabet = trial % 2 == 0 ? 3 : 26;
    const std::string a = RandomString(rng, 64, alphabet);
    const std::string b = RandomString(rng, 64, alphabet);
    size_t fast_m = 0, fast_t = 0, ref_m = 0, ref_t = 0;
    simd::JaroCounts(a, b, &fast_m, &fast_t);
    ReferenceJaroCounts(a, b, &ref_m, &ref_t);
    EXPECT_EQ(fast_m, ref_m) << "a=" << a << " b=" << b;
    EXPECT_EQ(fast_t, ref_t) << "a=" << a << " b=" << b;
  }
}

TEST(SimdTest, PopcountWords) {
  std::vector<uint64_t> words = {0, ~0ULL, 0x5555555555555555ULL, 1, 1ULL << 63};
  EXPECT_EQ(simd::PopcountWords(words.data(), words.size()), 0u + 64 + 32 + 1 + 1);
  EXPECT_EQ(simd::PopcountWords(words.data(), 0), 0u);
}

TEST(SimdTest, AdvanceWhileLessAgreesWithScalarScan) {
  Rng rng(44);
  std::vector<uint64_t> keys64;
  std::vector<uint32_t> keys32;
  for (int i = 0; i < 200; ++i) {
    keys64.push_back(static_cast<uint64_t>(rng.NextInt(0, 1000)));
    keys32.push_back(static_cast<uint32_t>(rng.NextInt(0, 1000)));
  }
  std::sort(keys64.begin(), keys64.end());
  std::sort(keys32.begin(), keys32.end());
  for (int trial = 0; trial < 200; ++trial) {
    const size_t start = static_cast<size_t>(
        rng.NextInt(0, static_cast<int64_t>(keys64.size())));
    const uint64_t limit64 = static_cast<uint64_t>(rng.NextInt(0, 1100));
    size_t expected = start;
    while (expected < keys64.size() && keys64[expected] < limit64) ++expected;
    EXPECT_EQ(
        simd::AdvanceWhileLess64(keys64.data(), start, keys64.size(), limit64),
        expected);
    const uint32_t limit32 = static_cast<uint32_t>(rng.NextInt(0, 1100));
    expected = start;
    while (expected < keys32.size() && keys32[expected] < limit32) ++expected;
    EXPECT_EQ(
        simd::AdvanceWhileLess32(keys32.data(), start, keys32.size(), limit32),
        expected);
  }
}

TEST(SimdTest, FloatKernelsAreBitIdenticalToScalarLoops) {
  Rng rng(45);
  for (size_t n : {size_t{1}, size_t{3}, size_t{4}, size_t{17}, size_t{256}}) {
    std::vector<double> x(n), y(n), a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.NextDouble(-10, 10);
      y[i] = rng.NextDouble(-10, 10);
      a[i] = rng.NextDouble(-10, 10);
      b[i] = rng.NextDouble(-10, 10);
    }
    const double alpha = rng.NextDouble(-2, 2);

    // Reference: the exact scalar sequence (one mul, one add per element).
    std::vector<double> y_ref = y;
    for (size_t i = 0; i < n; ++i) y_ref[i] += alpha * x[i];
    std::vector<double> prod_ref(n);
    for (size_t i = 0; i < n; ++i) prod_ref[i] = a[i] * b[i];

    for (bool enabled : {false, true}) {
      simd::ScopedSimdEnabled scope(enabled);
      std::vector<double> y_out = y;
      simd::AddScaled(y_out.data(), x.data(), alpha, n);
      std::vector<double> prod_out(n);
      simd::Multiply(prod_out.data(), a.data(), b.data(), n);
      for (size_t i = 0; i < n; ++i) {
        // EXPECT_EQ on doubles: the contract is bit-equality, not epsilon.
        EXPECT_EQ(y_out[i], y_ref[i]) << "n=" << n << " i=" << i;
        EXPECT_EQ(prod_out[i], prod_ref[i]) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdTest, ExpandBitsToDoubles) {
  for (size_t dim : {size_t{1}, size_t{5}, size_t{64}, size_t{65}, size_t{130}}) {
    const size_t words = (dim + 63) / 64;
    std::vector<uint64_t> mask(words, 0);
    Rng rng(46 + static_cast<uint64_t>(dim));
    for (size_t i = 0; i < dim; ++i) {
      if (rng.NextDouble() < 0.5) mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
    for (bool enabled : {false, true}) {
      simd::ScopedSimdEnabled scope(enabled);
      std::vector<double> out(dim, -1.0);
      simd::ExpandBitsToDoubles(mask.data(), dim, out.data());
      for (size_t i = 0; i < dim; ++i) {
        const bool bit = ((mask[i >> 6] >> (i & 63)) & 1u) != 0;
        EXPECT_EQ(out[i], bit ? 1.0 : 0.0) << "dim=" << dim << " i=" << i;
      }
    }
  }
}

TEST(SimdTest, ScopedSimdEnabledRestores) {
  const bool initial = simd::Enabled();
  {
    simd::ScopedSimdEnabled off(false);
    EXPECT_FALSE(simd::Enabled());
    {
      simd::ScopedSimdEnabled on(true);
      EXPECT_TRUE(simd::Enabled());
    }
    EXPECT_FALSE(simd::Enabled());
  }
  EXPECT_EQ(simd::Enabled(), initial);
}

TEST(SimdTest, ActiveIsaNameTracksSwitch) {
  {
    simd::ScopedSimdEnabled off(false);
    EXPECT_STREQ(simd::ActiveIsaName(), "scalar");
  }
  simd::ScopedSimdEnabled on(true);
  EXPECT_STREQ(simd::ActiveIsaName(),
               simd::SimdLevelName(simd::DetectedLevel()));
}

}  // namespace
}  // namespace landmark
