// Serialization contract of the explanation flight recorder: golden JSON
// lines for unit and batch records, NaN-as-null for the quality signals,
// and the monotone write-time ordinal (the append-order determinism
// contract validated on the Python side by scripts/validate_trace.py).

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "util/telemetry/audit.h"

namespace landmark {
namespace {

AuditUnitRecord MakeRecord() {
  AuditUnitRecord record;
  record.record_id = 42;
  record.record_index = 3;
  record.explainer = "landmark-double";
  record.landmark_side = "left";
  record.model_prediction = 0.75;
  record.weighted_r2 = 0.5;
  record.intercept = 0.25;
  record.match_fraction = 0.5;
  record.top_weight_share = 1;
  record.interesting_tokens = 2;
  record.low_r2 = false;
  record.degenerate_neighborhood = false;
  record.num_masks = 64;
  record.num_model_queries = 60;
  record.cache_hits = 4;
  AuditTokenWeight token;
  token.attribute = "title";
  token.occurrence = 1;
  token.text = "ipa";
  token.side = "right";
  token.injected = true;
  token.weight = -0.5;
  record.top_tokens.push_back(token);
  return record;
}

TEST(AuditSinkTest, UnitToJsonGolden) {
  EXPECT_EQ(
      AuditSink::UnitToJson(MakeRecord(), 7),
      "{\"type\":\"unit\",\"unit\":7,\"record_id\":42,\"record_index\":3,"
      "\"explainer\":\"landmark-double\",\"landmark_side\":\"left\","
      "\"model_prediction\":0.75,\"weighted_r2\":0.5,\"intercept\":0.25,"
      "\"match_fraction\":0.5,\"top_weight_share\":1,"
      "\"interesting_tokens\":2,\"low_r2\":false,"
      "\"degenerate_neighborhood\":false,\"num_masks\":64,"
      "\"num_model_queries\":60,\"cache_hits\":4,\"top_tokens\":["
      "{\"attr\":\"title\",\"occ\":1,\"text\":\"ipa\",\"side\":\"right\","
      "\"injected\":true,\"weight\":-0.5}]}");
}

TEST(AuditSinkTest, NanR2SerializesAsNullNeverZero) {
  AuditUnitRecord record = MakeRecord();
  record.weighted_r2 = std::nan("");
  const std::string line = AuditSink::UnitToJson(record, 0);
  EXPECT_NE(line.find("\"weighted_r2\":null"), std::string::npos) << line;
  EXPECT_EQ(line.find("\"weighted_r2\":0"), std::string::npos) << line;
}

TEST(AuditSinkTest, ErrorRecordCarriesNoQualityBlock) {
  AuditUnitRecord record = MakeRecord();
  record.error = "model exploded";
  EXPECT_EQ(AuditSink::UnitToJson(record, 0),
            "{\"type\":\"unit\",\"unit\":0,\"record_id\":42,"
            "\"record_index\":3,\"explainer\":\"landmark-double\","
            "\"landmark_side\":\"left\",\"error\":\"model exploded\"}");
}

TEST(AuditSinkTest, BatchToJsonGolden) {
  AuditBatchStats stats;
  stats.num_records = 8;
  stats.num_failed_records = 1;
  stats.num_units = 14;
  stats.num_masks = 896;
  stats.num_model_queries = 800;
  stats.cache_hits = 96;
  stats.token_cache_hits = 500;
  stats.token_cache_misses = 20;
  stats.plan_seconds = 0.5;
  stats.reconstruct_seconds = 0.25;
  stats.query_seconds = 2;
  stats.fit_seconds = 0.125;
  EXPECT_EQ(AuditSink::BatchToJson(stats),
            "{\"type\":\"batch\",\"num_records\":8,\"num_failed_records\":1,"
            "\"num_units\":14,\"num_masks\":896,\"num_model_queries\":800,"
            "\"cache_hits\":96,\"token_cache_hits\":500,"
            "\"token_cache_misses\":20,\"plan_seconds\":0.5,"
            "\"reconstruct_seconds\":0.25,\"query_seconds\":2,"
            "\"fit_seconds\":0.125,\"num_stalls\":0}");
}

TEST(AuditSinkTest, JsonStringsAreEscaped) {
  AuditUnitRecord record = MakeRecord();
  record.explainer = "a\"b\\c\nd";
  const std::string line = AuditSink::UnitToJson(record, 0);
  EXPECT_NE(line.find("\"explainer\":\"a\\\"b\\\\c\\nd\""),
            std::string::npos)
      << line;
}

TEST(AuditSinkTest, OrdinalsAreMonotoneAcrossBatches) {
  const std::string path = ::testing::TempDir() + "/audit_sink_test.jsonl";
  auto sink = AuditSink::Open(path);
  ASSERT_TRUE(sink.ok()) << sink.status().ToString();

  const AuditUnitRecord record = MakeRecord();
  (*sink)->WriteUnit(record);
  (*sink)->WriteUnit(record);
  (*sink)->WriteBatch(AuditBatchStats{});
  (*sink)->WriteUnit(record);  // a second batch continues the ordinal
  (*sink)->WriteBatch(AuditBatchStats{});
  EXPECT_EQ((*sink)->units_written(), 3u);
  sink->reset();  // destructor flushes

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0].rfind("{\"type\":\"unit\",\"unit\":0,", 0), 0u);
  EXPECT_EQ(lines[1].rfind("{\"type\":\"unit\",\"unit\":1,", 0), 0u);
  EXPECT_EQ(lines[2].rfind("{\"type\":\"batch\",", 0), 0u);
  EXPECT_EQ(lines[3].rfind("{\"type\":\"unit\",\"unit\":2,", 0), 0u);
  EXPECT_EQ(lines[4].rfind("{\"type\":\"batch\",", 0), 0u);
}

TEST(AuditSinkTest, OpenFailsOnUnwritablePath) {
  auto sink = AuditSink::Open("/nonexistent-dir/audit.jsonl");
  EXPECT_FALSE(sink.ok());
}

}  // namespace
}  // namespace landmark
