#include "util/telemetry/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

namespace landmark {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ExactUnderConcurrentIncrements) {
  // The hot-path contract: concurrent Add()s from many threads are never
  // lost. 8 threads x 100k increments must sum exactly.
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  Counter counter;
  // landmark-lint: allow(raw-thread) the exactness contract is about raw
  // concurrent writers; routing through ThreadPool would serialize by chunk
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge gauge;
  gauge.Set(3.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.5);
  gauge.Add(-1.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.0);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

TEST(GaugeTest, ConcurrentAddsAccumulateExactly) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  Gauge gauge;
  // landmark-lint: allow(raw-thread) the exactness contract is about raw
  // concurrent writers; routing through ThreadPool would serialize by chunk
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  // Every delta is 1.0, so the CAS-loop sum is exact in double arithmetic.
  EXPECT_DOUBLE_EQ(gauge.Value(), kThreads * kPerThread);
}

TEST(HistogramTest, BucketBoundsAreExponential) {
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(0), 1e-6);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(1), 2e-6);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(10), 1024e-6);
  EXPECT_TRUE(
      std::isinf(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1)));
}

TEST(HistogramTest, CountSumMinMax) {
  Histogram histogram;
  histogram.Record(0.5);
  histogram.Record(1.5);
  histogram.Record(0.25);
  HistogramSnapshot snapshot = histogram.Snapshot("h");
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 2.25);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.25);
  EXPECT_DOUBLE_EQ(snapshot.max, 1.5);
  EXPECT_DOUBLE_EQ(snapshot.mean(), 0.75);
}

TEST(HistogramTest, SingleValuePercentilesAreExact) {
  // min/max clamping must collapse every percentile of a one-point
  // distribution onto that point, despite the coarse bucket.
  Histogram histogram;
  histogram.Record(0.037);
  HistogramSnapshot snapshot = histogram.Snapshot("h");
  EXPECT_DOUBLE_EQ(snapshot.p50, 0.037);
  EXPECT_DOUBLE_EQ(snapshot.p95, 0.037);
  EXPECT_DOUBLE_EQ(snapshot.p99, 0.037);
}

TEST(HistogramTest, PercentilesAreOrderedAndBracketed) {
  Histogram histogram;
  // 1ms..1s log-uniform-ish spread.
  for (int i = 0; i < 1000; ++i) {
    histogram.Record(0.001 * std::pow(1000.0, i / 999.0));
  }
  HistogramSnapshot snapshot = histogram.Snapshot("h");
  EXPECT_LE(snapshot.min, snapshot.p50);
  EXPECT_LE(snapshot.p50, snapshot.p95);
  EXPECT_LE(snapshot.p95, snapshot.p99);
  EXPECT_LE(snapshot.p99, snapshot.max);
  // The true p50 is ~0.032; the bucket estimate must land in the right
  // decade (the bucket containing it spans [~0.0168, ~0.0336]).
  EXPECT_GT(snapshot.p50, 0.01);
  EXPECT_LT(snapshot.p50, 0.07);
}

TEST(HistogramTest, UniformDistributionPercentileEstimates) {
  // 100 values in one decade: percentile interpolation should be within a
  // bucket width of the exact answer.
  Histogram histogram;
  for (int i = 1; i <= 100; ++i) histogram.Record(i * 0.01);
  HistogramSnapshot snapshot = histogram.Snapshot("h");
  EXPECT_EQ(snapshot.count, 100u);
  EXPECT_GT(snapshot.p95, snapshot.p50);
  EXPECT_GE(snapshot.p99, snapshot.p95);
  EXPECT_LE(snapshot.p99, 1.0);
  EXPECT_GE(snapshot.p50, 0.25);  // exact p50 = 0.505, bucket (0.256, 0.512]
  EXPECT_LE(snapshot.p50, 0.55);
}

TEST(HistogramTest, OverflowBucketCatchesHugeValues) {
  Histogram histogram;
  histogram.Record(1e12);  // far past the last bounded bucket
  HistogramSnapshot snapshot = histogram.Snapshot("h");
  EXPECT_EQ(snapshot.count, 1u);
  ASSERT_EQ(snapshot.buckets.size(), 1u);
  EXPECT_TRUE(std::isinf(snapshot.buckets[0].first));
  EXPECT_DOUBLE_EQ(snapshot.max, 1e12);
}

TEST(HistogramTest, ConcurrentRecordsKeepExactCount) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Histogram histogram;
  // landmark-lint: allow(raw-thread) the exactness contract is about raw
  // concurrent writers; routing through ThreadPool would serialize by chunk
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(1e-4 * (t + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x");
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  // Counters, gauges and histograms live in separate namespaces.
  Gauge& gauge = registry.GetGauge("x");
  gauge.Set(7.0);
  a.Add(3);
  EXPECT_EQ(registry.GetCounter("x").Value(), 3u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("x").Value(), 7.0);
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(MetricsRegistryTest, SnapshotSortsNamesAndCopiesValues) {
  MetricsRegistry registry;
  registry.GetCounter("b").Add(2);
  registry.GetCounter("a").Add(1);
  registry.GetGauge("g").Set(4.0);
  registry.GetHistogram("h").Record(0.5);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "a");
  EXPECT_EQ(snapshot.counters[1].first, "b");
  EXPECT_EQ(snapshot.CounterValue("b"), 2u);
  EXPECT_EQ(snapshot.CounterValue("missing", 99), 99u);
  ASSERT_NE(snapshot.FindHistogram("h"), nullptr);
  EXPECT_EQ(snapshot.FindHistogram("h")->count, 1u);
  EXPECT_EQ(snapshot.FindHistogram("nope"), nullptr);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsHandles) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("c");
  Histogram& histogram = registry.GetHistogram("h");
  counter.Add(5);
  histogram.Record(1.0);
  registry.Reset();
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(histogram.Count(), 0u);
  counter.Add(1);  // the old reference still feeds the same metric
  EXPECT_EQ(registry.GetCounter("c").Value(), 1u);
}

TEST(MetricsRegistryTest, ConcurrentGetAndUpdateIsSafe) {
  // Threads race name interning and updates on a shared registry; the final
  // sums must still be exact.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  MetricsRegistry registry;
  // landmark-lint: allow(raw-thread) the exactness contract is about raw
  // concurrent writers; routing through ThreadPool would serialize by chunk
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.GetCounter("shared").Add();
        registry.GetHistogram("lat").Record(1e-5);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("shared").Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.GetHistogram("lat").Count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace landmark
