#include <gtest/gtest.h>

#include <cstdlib>

#include "util/logging.h"
#include "util/telemetry/metrics.h"
#include "util/timer.h"

namespace landmark {
namespace {

TEST(LoggingTest, LevelGateSuppressesLowerSeverities) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // The macro's side expression must not run when suppressed.
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  LANDMARK_LOG(Info) << count();
  EXPECT_EQ(evaluations, 0);
  LANDMARK_LOG(Error) << count();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(original);
}

TEST(LoggingTest, SetGetRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(original);
}

TEST(LoggingTest, ParseLogLevelAcceptsNamesAndDigits) {
  EXPECT_EQ(ParseLogLevel("debug", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("WARNING", LogLevel::kInfo), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("Error", LogLevel::kInfo), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("0", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("3", LogLevel::kInfo), LogLevel::kError);
  // Junk falls back.
  EXPECT_EQ(ParseLogLevel("verbose", LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("", LogLevel::kError), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("7", LogLevel::kInfo), LogLevel::kInfo);
}

TEST(LoggingTest, ReloadLogLevelFromEnvAppliesVariable) {
  const LogLevel original = GetLogLevel();
  ASSERT_EQ(setenv("LANDMARK_LOG_LEVEL", "error", /*overwrite=*/1), 0);
  ReloadLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  ASSERT_EQ(setenv("LANDMARK_LOG_LEVEL", "debug", 1), 0);
  ReloadLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  // Unset means "keep the current level".
  ASSERT_EQ(unsetenv("LANDMARK_LOG_LEVEL"), 0);
  ReloadLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, LogEveryNGatesOnOccurrenceCount) {
  // Distinct (file, line) sites count independently; emit on the 1st,
  // (n+1)th, (2n+1)th occurrence.
  int emitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (internal_logging::LogEveryN("fake_file.cc", 1, 4)) ++emitted;
  }
  EXPECT_EQ(emitted, 3);  // occurrences 1, 5, 9
  // A different site has its own counter.
  EXPECT_TRUE(internal_logging::LogEveryN("fake_file.cc", 2, 4));
  // n <= 1 always emits.
  EXPECT_TRUE(internal_logging::LogEveryN("fake_file.cc", 3, 1));
  EXPECT_TRUE(internal_logging::LogEveryN("fake_file.cc", 3, 1));
}

TEST(LoggingTest, LogEveryNMacroBodyRunsOnlyWhenDue) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // suppress output, not the gate
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  for (int i = 0; i < 6; ++i) {
    LANDMARK_LOG_EVERY_N(Error, 3) << count();
  }
  EXPECT_EQ(evaluations, 2);  // occurrences 1 and 4
  // Single-statement expansion: must bind to an unbraced if.
  if (false) LANDMARK_LOG_EVERY_N(Error, 1) << count();
  EXPECT_EQ(evaluations, 2);
  SetLogLevel(original);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  // Burn a little CPU deterministically.
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + static_cast<double>(i) * 1e-9;
  const double elapsed = timer.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.0);
  EXPECT_LT(elapsed, 10.0);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1000.0,
              timer.ElapsedSeconds() * 100.0);
}

TEST(TimerTest, ResetRestartsTheClock) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + static_cast<double>(i) * 1e-9;
  const double before = timer.ElapsedSeconds();
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), before + 1e-3);
}

TEST(ScopedTimerTest, RecordsIntoHistogramAtScopeExit) {
  Histogram histogram;
  double elapsed = -1.0;
  {
    ScopedTimer timer(&histogram, &elapsed);
  }
  EXPECT_EQ(histogram.Count(), 1u);
  EXPECT_GE(elapsed, 0.0);
  HistogramSnapshot snapshot = histogram.Snapshot("scoped");
  EXPECT_DOUBLE_EQ(snapshot.sum, elapsed);
}

TEST(ScopedTimerTest, StopIsIdempotentAndEarly) {
  Histogram histogram;
  double elapsed = -1.0;
  ScopedTimer timer(&histogram, &elapsed);
  timer.Stop();
  const double first = elapsed;
  EXPECT_GE(first, 0.0);
  timer.Stop();  // second Stop and the destructor must not re-record
  EXPECT_EQ(histogram.Count(), 1u);
  EXPECT_EQ(elapsed, first);
}

TEST(ScopedTimerTest, NullHistogramJustReportsElapsed) {
  double elapsed = -1.0;
  {
    ScopedTimer timer(nullptr, &elapsed);
  }
  EXPECT_GE(elapsed, 0.0);
}

}  // namespace
}  // namespace landmark
