#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/timer.h"

namespace landmark {
namespace {

TEST(LoggingTest, LevelGateSuppressesLowerSeverities) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // The macro's side expression must not run when suppressed.
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  LANDMARK_LOG(Info) << count();
  EXPECT_EQ(evaluations, 0);
  LANDMARK_LOG(Error) << count();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(original);
}

TEST(LoggingTest, SetGetRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(original);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  // Burn a little CPU deterministically.
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<double>(i) * 1e-9;
  const double elapsed = timer.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.0);
  EXPECT_LT(elapsed, 10.0);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1000.0,
              timer.ElapsedSeconds() * 100.0);
}

TEST(TimerTest, ResetRestartsTheClock) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<double>(i) * 1e-9;
  const double before = timer.ElapsedSeconds();
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), before + 1e-3);
}

}  // namespace
}  // namespace landmark
