#include "util/flags.h"

#include <gtest/gtest.h>

namespace landmark {
namespace {

Flags ParseArgs(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& a : storage) argv.push_back(a.data());
  auto r = Flags::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(r.ok());
  return *r;
}

TEST(FlagsTest, EqualsSyntax) {
  Flags f = ParseArgs({"--records=50", "--scale=0.5"});
  EXPECT_EQ(f.GetInt("records", 0), 50);
  EXPECT_DOUBLE_EQ(f.GetDouble("scale", 0.0), 0.5);
}

TEST(FlagsTest, SpaceSyntax) {
  Flags f = ParseArgs({"--name", "value"});
  EXPECT_EQ(f.GetString("name", ""), "value");
}

TEST(FlagsTest, BareFlagIsBooleanTrue) {
  Flags f = ParseArgs({"--verbose"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_TRUE(f.Has("verbose"));
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  Flags f = ParseArgs({});
  EXPECT_EQ(f.GetInt("n", 42), 42);
  EXPECT_DOUBLE_EQ(f.GetDouble("d", 1.5), 1.5);
  EXPECT_EQ(f.GetString("s", "dflt"), "dflt");
  EXPECT_FALSE(f.GetBool("b", false));
  EXPECT_FALSE(f.Has("n"));
}

TEST(FlagsTest, PositionalArguments) {
  Flags f = ParseArgs({"input.csv", "--n=1", "output.csv"});
  EXPECT_EQ(f.positional(),
            (std::vector<std::string>{"input.csv", "output.csv"}));
}

TEST(FlagsTest, BoolSpellings) {
  Flags f = ParseArgs({"--a=true", "--b=1", "--c=YES", "--d=off"});
  EXPECT_TRUE(f.GetBool("a", false));
  EXPECT_TRUE(f.GetBool("b", false));
  EXPECT_TRUE(f.GetBool("c", false));
  EXPECT_FALSE(f.GetBool("d", true));
}

TEST(FlagsTest, LastValueWins) {
  Flags f = ParseArgs({"--n=1", "--n=2"});
  EXPECT_EQ(f.GetInt("n", 0), 2);
}

}  // namespace
}  // namespace landmark
