// TaskGraph contract: dependency order is respected for chains, diamonds
// and fan-outs; graphs may grow from inside running nodes; a throwing node
// cancels the rest and Wait() rethrows; inline (worker-less) execution is
// deterministic FIFO.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_pool.h"

namespace landmark {
namespace {

/// Thread-safe append-only log of node labels, for order assertions.
class ExecutionLog {
 public:
  void Append(const std::string& label) {
    MutexLock lock(&mu_);
    entries_.push_back(label);
  }
  std::vector<std::string> entries() const {
    MutexLock lock(&mu_);
    return entries_;
  }
  /// Position of `label` in the log; fails the test when absent.
  size_t IndexOf(const std::string& label) const {
    MutexLock lock(&mu_);
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i] == label) return i;
    }
    ADD_FAILURE() << "label not executed: " << label;
    return entries_.size();
  }

 private:
  mutable Mutex mu_{"ExecutionLog::mu_"};
  std::vector<std::string> entries_;
};

TEST(TaskGraphTest, ChainRunsInDependencyOrder) {
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    TaskGraph graph(&pool);
    ExecutionLog log;
    TaskGraph::NodeId prev = graph.AddNode([&log] { log.Append("n0"); });
    for (int i = 1; i < 8; ++i) {
      prev = graph.AddNode(
          [&log, i] { log.Append("n" + std::to_string(i)); }, {prev});
    }
    graph.Run();
    graph.Wait();
    const std::vector<std::string> entries = log.entries();
    ASSERT_EQ(entries.size(), 8u) << "threads=" << threads;
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(entries[i], "n" + std::to_string(i)) << "threads=" << threads;
    }
  }
}

TEST(TaskGraphTest, DiamondJoinWaitsForBothBranches) {
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    TaskGraph graph(&pool);
    ExecutionLog log;
    const TaskGraph::NodeId top = graph.AddNode([&log] { log.Append("top"); });
    const TaskGraph::NodeId left =
        graph.AddNode([&log] { log.Append("left"); }, {top});
    const TaskGraph::NodeId right =
        graph.AddNode([&log] { log.Append("right"); }, {top});
    graph.AddNode([&log] { log.Append("join"); }, {left, right});
    graph.Run();
    graph.Wait();
    EXPECT_EQ(log.entries().size(), 4u);
    const size_t join = log.IndexOf("join");
    EXPECT_LT(log.IndexOf("top"), log.IndexOf("left"));
    EXPECT_LT(log.IndexOf("top"), log.IndexOf("right"));
    EXPECT_LT(log.IndexOf("left"), join);
    EXPECT_LT(log.IndexOf("right"), join);
  }
}

TEST(TaskGraphTest, FanOutRunsEveryLeafExactlyOnce) {
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    TaskGraph graph(&pool);
    std::atomic<int> root_runs{0};
    std::vector<std::atomic<int>> leaf_runs(64);
    for (auto& r : leaf_runs) r = 0;
    const TaskGraph::NodeId root = graph.AddNode([&root_runs] { ++root_runs; });
    for (size_t i = 0; i < leaf_runs.size(); ++i) {
      graph.AddNode([&leaf_runs, i] { ++leaf_runs[i]; }, {root});
    }
    graph.Run();
    graph.Wait();
    EXPECT_EQ(root_runs.load(), 1);
    for (size_t i = 0; i < leaf_runs.size(); ++i) {
      EXPECT_EQ(leaf_runs[i].load(), 1) << "leaf " << i;
    }
    EXPECT_EQ(graph.num_nodes(), leaf_runs.size() + 1);
  }
}

TEST(TaskGraphTest, NodesCanGrowTheGraphWhileRunning) {
  // The engine's shape: a seed node adds a chain per "unit", plus a join
  // over the chains — all from inside the running graph.
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    TaskGraph graph(&pool);
    std::atomic<int> stage_a{0}, stage_b{0}, joined{0};
    graph.AddNode([&] {
      std::vector<TaskGraph::NodeId> firsts;
      for (int u = 0; u < 6; ++u) {
        const TaskGraph::NodeId a = graph.AddNode([&stage_a] { ++stage_a; });
        graph.AddNode([&stage_b] { ++stage_b; }, {a});
        firsts.push_back(a);
      }
      graph.AddNode([&] { joined = stage_a.load(); }, firsts);
    });
    graph.Run();
    graph.Wait();
    EXPECT_EQ(stage_a.load(), 6);
    EXPECT_EQ(stage_b.load(), 6);
    // The join depended on every first-stage node, so it observed all six.
    EXPECT_EQ(joined.load(), 6);
    EXPECT_EQ(graph.num_nodes(), 1u + 6u * 2u + 1u);
  }
}

TEST(TaskGraphTest, DependencyThatAlreadyFinishedIsSatisfiedImmediately) {
  // When `b` runs, its dependency `a` has finished; the node `b` adds on
  // `a` must become ready immediately rather than wait for a release that
  // will never come.
  ThreadPool pool(1);
  TaskGraph graph(&pool);
  ExecutionLog log;
  TaskGraph::NodeId a = graph.AddNode([&log] { log.Append("a"); });
  graph.AddNode(
      [&, a] {
        log.Append("b");
        graph.AddNode([&log] { log.Append("c"); }, {a});
      },
      {a});
  graph.Run();
  graph.Wait();
  EXPECT_EQ(log.entries(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(TaskGraphTest, ExceptionCancelsRemainingNodesAndWaitRethrows) {
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    TaskGraph graph(&pool);
    std::atomic<int> ran{0};
    const TaskGraph::NodeId boom = graph.AddNode(
        [] { throw std::runtime_error("node failed"); });
    // A long chain behind the throwing node: none of it may run.
    TaskGraph::NodeId prev = boom;
    for (int i = 0; i < 5; ++i) {
      prev = graph.AddNode([&ran] { ++ran; }, {prev});
    }
    graph.Run();
    EXPECT_THROW(graph.Wait(), std::runtime_error);
    EXPECT_TRUE(graph.cancelled());
    EXPECT_EQ(ran.load(), 0) << "threads=" << threads;
  }
}

TEST(TaskGraphTest, CancelSkipsUnstartedNodesButStillDrains) {
  ThreadPool pool(1);
  TaskGraph graph(&pool);
  std::atomic<int> ran{0};
  TaskGraph::NodeId prev = graph.AddNode([&] {
    ++ran;
    graph.Cancel();
  });
  for (int i = 0; i < 10; ++i) {
    prev = graph.AddNode([&ran] { ++ran; }, {prev});
  }
  graph.Run();
  graph.Wait();  // terminates despite the skipped bodies; nothing rethrown
  EXPECT_TRUE(graph.cancelled());
  EXPECT_EQ(ran.load(), 1);
}

TEST(TaskGraphTest, InlineExecutionIsDeterministicFifo) {
  // Worker-less pools drain ready nodes first-in-first-out: two identical
  // graphs produce identical logs.
  auto run_once = [] {
    ThreadPool pool(1);
    TaskGraph graph(&pool);
    ExecutionLog log;
    const TaskGraph::NodeId a = graph.AddNode([&log] { log.Append("a"); });
    const TaskGraph::NodeId b = graph.AddNode([&log] { log.Append("b"); });
    graph.AddNode([&log] { log.Append("c"); }, {a});
    graph.AddNode([&log] { log.Append("d"); }, {b});
    graph.AddNode([&log] { log.Append("e"); }, {a, b});
    graph.Run();
    graph.Wait();
    return log.entries();
  };
  const std::vector<std::string> first = run_once();
  EXPECT_EQ(first, run_once());
  EXPECT_EQ(first.size(), 5u);
  EXPECT_EQ(first[0], "a");
  EXPECT_EQ(first[1], "b");
}

TEST(TaskGraphTest, NullPoolRunsInline) {
  TaskGraph graph(nullptr);
  int ran = 0;
  const TaskGraph::NodeId a = graph.AddNode([&ran] { ++ran; });
  graph.AddNode([&ran] { ++ran; }, {a});
  graph.Run();
  graph.Wait();
  EXPECT_EQ(ran, 2);
}

TEST(TaskGraphTest, EmptyGraphWaitsWithoutBlocking) {
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    TaskGraph graph(&pool);
    graph.Run();
    graph.Wait();
    EXPECT_EQ(graph.num_nodes(), 0u);
    EXPECT_FALSE(graph.cancelled());
  }
}

}  // namespace
}  // namespace landmark
