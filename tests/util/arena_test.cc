// The per-thread bump arena (util/arena.h): alignment, frame reset/reuse,
// high-water tracking, and the per-frame telemetry publication
// (`arena/bytes_allocated` counter, `arena/high_water_bytes` gauge).

#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "util/telemetry/metrics.h"

namespace landmark {
namespace {

TEST(ArenaTest, AllocationsAreCacheLineAligned) {
  Arena arena;
  for (size_t n : {size_t{1}, size_t{7}, size_t{64}, size_t{1000}}) {
    void* p = arena.Allocate(n);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % Arena::kDefaultAlignment, 0u)
        << n;
  }
  // Explicit smaller alignments are honored too.
  void* p = arena.Allocate(16, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
}

TEST(ArenaTest, ZeroByteAllocationIsNonNull) {
  Arena arena;
  EXPECT_NE(arena.Allocate(0), nullptr);
}

TEST(ArenaTest, ResetReusesMemoryWithoutNewChunks) {
  Arena arena;
  const Arena::Mark mark = arena.CurrentMark();
  double* first = arena.AllocateDoubles(256);
  arena.ResetTo(mark);
  double* second = arena.AllocateDoubles(256);
  // Same frame shape after a reset lands on the same chunk offset.
  EXPECT_EQ(first, second);
}

TEST(ArenaTest, FramesNest) {
  Arena arena;
  const Arena::Mark outer = arena.CurrentMark();
  arena.AllocateDoubles(8);
  const size_t live_outer = arena.live_bytes();
  {
    const Arena::Mark inner = arena.CurrentMark();
    arena.AllocateDoubles(1024);
    EXPECT_GT(arena.live_bytes(), live_outer);
    arena.ResetTo(inner);
    EXPECT_EQ(arena.live_bytes(), live_outer);
  }
  arena.ResetTo(outer);
  EXPECT_EQ(arena.live_bytes(), 0u);
}

TEST(ArenaTest, CountersAreMonotonicAndHighWaterSticks) {
  Arena arena;
  const Arena::Mark mark = arena.CurrentMark();
  arena.AllocateDoubles(512);
  const uint64_t total_after_first = arena.total_allocated_bytes();
  const size_t high_water = arena.high_water_bytes();
  EXPECT_GE(total_after_first, 512 * sizeof(double));
  EXPECT_GE(high_water, 512 * sizeof(double));
  arena.ResetTo(mark);
  // Reset rewinds live bytes but neither the lifetime total nor the peak.
  EXPECT_EQ(arena.live_bytes(), 0u);
  EXPECT_EQ(arena.total_allocated_bytes(), total_after_first);
  EXPECT_EQ(arena.high_water_bytes(), high_water);
  arena.AllocateDoubles(1);
  EXPECT_GT(arena.total_allocated_bytes(), total_after_first);
}

TEST(ArenaTest, ThisThreadIsPerThread) {
  Arena* main_arena = &Arena::ThisThread();
  EXPECT_EQ(main_arena, &Arena::ThisThread());  // stable within a thread
  Arena* worker_arena = nullptr;
  // landmark-lint: allow(raw-thread) the property under test is literally
  // per-OS-thread storage; a pool would hide which thread runs the body.
  std::thread worker([&] { worker_arena = &Arena::ThisThread(); });
  worker.join();
  EXPECT_NE(worker_arena, nullptr);
  EXPECT_NE(worker_arena, main_arena);
}

TEST(ArenaFrameTest, PublishesAllocationDeltaToRegistry) {
  Counter& allocated =
      MetricsRegistry::Global().GetCounter("arena/bytes_allocated");
  Gauge& high_water =
      MetricsRegistry::Global().GetGauge("arena/high_water_bytes");
  const uint64_t before = allocated.Value();
  {
    ArenaFrame frame;
    frame.arena().AllocateDoubles(128);
  }
  EXPECT_GE(allocated.Value() - before, 128 * sizeof(double));
  EXPECT_GE(high_water.Value(),
            static_cast<double>(128 * sizeof(double)));
}

}  // namespace
}  // namespace landmark
