#include "util/telemetry/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "util/telemetry/metrics.h"
#include "util/telemetry/sink.h"

namespace landmark {
namespace {

// --- Minimal recursive-descent JSON well-formedness checker. The exporter
// promises syntactically valid Chrome-trace JSON; this verifies exactly that
// (structure, string escaping, number syntax) without third-party parsers.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') { ++pos_; return true; }
    for (;;) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') { ++pos_; return true; }
    for (;;) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ - 1]));
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
    }
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

/// Fresh-state fixture: the recorder is global, so each test starts by
/// clearing whatever a previous test buffered.
class TraceRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().Stop();
    TraceRecorder::Global().Clear();
  }
  void TearDown() override {
    TraceRecorder::Global().Stop();
    TraceRecorder::Global().Clear();
  }
};

TEST_F(TraceRecorderTest, DisabledRecorderBuffersNothing) {
  {
    LANDMARK_TRACE_SPAN("test/noop");
  }
  EXPECT_EQ(TraceRecorder::Global().num_events(), 0u);
}

TEST_F(TraceRecorderTest, SpansRecordWhileEnabled) {
  TraceRecorder::Global().Start();
  {
    LANDMARK_TRACE_SPAN("test/outer");
    LANDMARK_TRACE_SPAN("test/inner");
  }
  TraceRecorder::Global().Stop();
  EXPECT_EQ(TraceRecorder::Global().num_events(), 2u);
  // Spans opened after Stop() must not record.
  {
    LANDMARK_TRACE_SPAN("test/late");
  }
  EXPECT_EQ(TraceRecorder::Global().num_events(), 2u);
}

TEST_F(TraceRecorderTest, EndIsIdempotent) {
  TraceRecorder::Global().Start();
  TraceSpan span("test/manual");
  span.End();
  span.End();
  EXPECT_EQ(TraceRecorder::Global().num_events(), 1u);
}

TEST_F(TraceRecorderTest, ExportIsWellFormedJsonWithExpectedFields) {
  TraceRecorder::Global().Start();
  {
    LANDMARK_TRACE_SPAN("test/a");
    LANDMARK_TRACE_SPAN("test/b \"quoted\\name\"");  // must be escaped
  }
  TraceRecorder::Global().Stop();
  const std::string json = TraceRecorder::Global().ToChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"test/a\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // The raw quote/backslash must not appear unescaped.
  EXPECT_EQ(json.find("b \"quoted"), std::string::npos);
}

TEST_F(TraceRecorderTest, EmptyExportIsStillValidJson) {
  const std::string json = TraceRecorder::Global().ToChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST_F(TraceRecorderTest, RingOverflowDropsOldestAndCounts) {
  TraceRecorder::Global().Start(/*events_per_thread=*/8);
  for (int i = 0; i < 20; ++i) {
    LANDMARK_TRACE_SPAN("test/wrap");
  }
  TraceRecorder::Global().Stop();
  EXPECT_EQ(TraceRecorder::Global().num_events(), 8u);
  EXPECT_EQ(TraceRecorder::Global().num_dropped(), 12u);
}

TEST_F(TraceRecorderTest, ThreadsGetDistinctTids) {
  TraceRecorder::Global().Start();
  // landmark-lint: allow(raw-thread) distinct-tid assignment is only
  // observable from genuinely new threads, not pooled workers
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([] { LANDMARK_TRACE_SPAN("test/worker"); });
  }
  for (auto& thread : threads) thread.join();
  TraceRecorder::Global().Stop();
  EXPECT_EQ(TraceRecorder::Global().num_events(), 3u);
  const std::string json = TraceRecorder::Global().ToChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
}

TEST(MetricsJsonTest, SnapshotJsonIsWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("engine/batches").Add(3);
  registry.GetGauge("pool/queue_depth").Set(2.0);
  registry.GetHistogram("engine/plan_seconds").Record(0.01);
  registry.GetHistogram("weird \"name\"\\path").Record(1e12);  // escaping
  const std::string json = MetricsSnapshotToJson(registry.Snapshot());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Infinity (the overflow bucket bound) must not leak into the JSON.
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

}  // namespace
}  // namespace landmark
