// Accuracy contract of the histogram percentile estimator: with
// exponential buckets the estimate cannot be exact, but p50/p95/p99 must
// land within one bucket of the true quantile, stay inside the observed
// [min, max], and be exact for point-mass distributions (the min/max
// clamp). This is what makes the `*_seconds` p95s in the metric table
// trustworthy enough to act on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "util/telemetry/metrics.h"

namespace landmark {
namespace {

/// Index of the bucket a value falls into (the estimator can only resolve
/// location up to this granularity).
size_t BucketIndexOf(double value) {
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (value <= Histogram::BucketUpperBound(i)) return i;
  }
  return Histogram::kNumBuckets - 1;
}

/// True quantile by nearest-rank over the recorded sample.
double TrueQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(
      std::min<double>(static_cast<double>(values.size()) - 1.0,
                       q * static_cast<double>(values.size())));
  return values[rank];
}

void ExpectWithinOneBucket(double estimate, double truth,
                           const std::string& label) {
  const double lo = static_cast<double>(BucketIndexOf(estimate));
  const double hi = static_cast<double>(BucketIndexOf(truth));
  EXPECT_LE(std::fabs(lo - hi), 1.0)
      << label << ": estimate " << estimate << " (bucket "
      << BucketIndexOf(estimate) << ") vs true " << truth << " (bucket "
      << BucketIndexOf(truth) << ")";
}

HistogramSnapshot Snap(const std::vector<double>& values) {
  Histogram histogram;
  for (double v : values) histogram.Record(v);
  return histogram.Snapshot("test");
}

TEST(HistogramQuantileTest, UniformDistributionWithinOneBucket) {
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) values.push_back(static_cast<double>(i));
  const HistogramSnapshot s = Snap(values);
  ExpectWithinOneBucket(s.p50, TrueQuantile(values, 0.50), "p50");
  ExpectWithinOneBucket(s.p95, TrueQuantile(values, 0.95), "p95");
  ExpectWithinOneBucket(s.p99, TrueQuantile(values, 0.99), "p99");
}

TEST(HistogramQuantileTest, LatencyLikeDistributionWithinOneBucket) {
  // The common shape: a fast mode with a slow tail, 4 orders of magnitude
  // apart — the case per-bucket interpolation could get badly wrong.
  std::vector<double> values;
  for (int i = 0; i < 900; ++i) values.push_back(1e-3);
  for (int i = 0; i < 100; ++i) values.push_back(10.0);
  const HistogramSnapshot s = Snap(values);
  ExpectWithinOneBucket(s.p50, TrueQuantile(values, 0.50), "p50");
  ExpectWithinOneBucket(s.p95, TrueQuantile(values, 0.95), "p95");
  ExpectWithinOneBucket(s.p99, TrueQuantile(values, 0.99), "p99");
}

TEST(HistogramQuantileTest, PercentilesAreOrderedAndClamped) {
  std::vector<double> values;
  for (int i = 1; i <= 257; ++i) {
    values.push_back(static_cast<double>(i) * 1e-5);
  }
  const HistogramSnapshot s = Snap(values);
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
  EXPECT_EQ(s.min, 1.0 * 1e-5);
  EXPECT_EQ(s.max, 257.0 * 1e-5);
}

TEST(HistogramQuantileTest, PointMassIsExact) {
  // Everything in one bucket: the min/max clamp collapses the
  // interpolation interval, so every percentile is exactly the value.
  const HistogramSnapshot s = Snap(std::vector<double>(1000, 0.25));
  EXPECT_EQ(s.p50, 0.25);
  EXPECT_EQ(s.p95, 0.25);
  EXPECT_EQ(s.p99, 0.25);
}

TEST(HistogramQuantileTest, OverflowBucketClampsToObservedMax) {
  // A sample beyond the last bounded bucket: the infinite bucket bound
  // must not leak into the estimate — max clamps it to the real value.
  const HistogramSnapshot s = Snap({1e12});
  EXPECT_EQ(s.p50, 1e12);
  EXPECT_EQ(s.p99, 1e12);
  EXPECT_EQ(s.max, 1e12);
}

}  // namespace
}  // namespace landmark
