// SLO layer unit tests: the --slo spec grammar (goldens and rejection
// messages), burn-rate goldens over synthetic time-series windows, budget
// exhaustion, the trailing-window horizon, and gauge publication through
// SloRegistry::Evaluate.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/telemetry/metrics.h"
#include "util/telemetry/slo.h"
#include "util/telemetry/timeseries.h"

namespace landmark {
namespace {

/// One synthetic window moving `metric`: `buckets` holds (value-ish upper
/// bound index, delta) pairs against the real histogram bucket grid.
TimeseriesWindow MakeWindow(uint64_t index, uint64_t start_ns,
                            uint64_t end_ns, const std::string& metric,
                            const std::vector<std::pair<size_t, uint64_t>>&
                                bucket_deltas) {
  TimeseriesWindow window;
  window.index = index;
  window.start_ns = start_ns;
  window.end_ns = end_ns;
  WindowHistogram histogram;
  histogram.name = metric;
  for (const auto& [bucket, delta] : bucket_deltas) {
    histogram.count_delta += delta;
    histogram.buckets.emplace_back(Histogram::BucketUpperBound(bucket),
                                   delta);
  }
  window.histograms.push_back(std::move(histogram));
  return window;
}

TEST(ParseSloSpecsTest, FullSpecGolden) {
  Result<std::vector<SloPolicy>> parsed = ParseSloSpecs(
      "unit_q=engine/unit/query_seconds,p95<0.05,window=300,objective=0.999");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  const SloPolicy& policy = (*parsed)[0];
  EXPECT_EQ(policy.name, "unit_q");
  EXPECT_EQ(policy.metric, "engine/unit/query_seconds");
  EXPECT_DOUBLE_EQ(policy.quantile, 0.95);
  EXPECT_DOUBLE_EQ(policy.threshold, 0.05);
  EXPECT_DOUBLE_EQ(policy.window_seconds, 300.0);
  EXPECT_DOUBLE_EQ(policy.objective, 0.999);
}

TEST(ParseSloSpecsTest, SemicolonSeparatesPoliciesInOneFlagValue) {
  // The flag parser keeps only the last occurrence of a repeated flag, so
  // multiple policies must share one --slo value.
  Result<std::vector<SloPolicy>> parsed = ParseSloSpecs(
      "a=m/one,p50<0.01,window=60; b=m/two,p99.9<1.5,window=120");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].name, "a");
  EXPECT_DOUBLE_EQ((*parsed)[0].quantile, 0.50);
  EXPECT_EQ((*parsed)[1].name, "b");
  EXPECT_DOUBLE_EQ((*parsed)[1].quantile, 0.999);
  EXPECT_DOUBLE_EQ((*parsed)[1].threshold, 1.5);
  // Default objective applies when omitted.
  EXPECT_DOUBLE_EQ((*parsed)[1].objective, 0.99);
}

TEST(ParseSloSpecsTest, RejectsMalformedSpecs) {
  for (const char* bad : {
           "",                                     // nothing parsed
           "no_equals,p95<0.05,window=300",        // missing NAME=METRIC
           "a=m,p95<0.05",                         // missing window
           "a=m,window=300",                       // missing quantile
           "a=m,p95<0.05,window=-3",               // negative window
           "a=m,p0<0.05,window=300",               // quantile out of range
           "a=m,p95<0.05,window=300,objective=2",  // objective out of range
           "a=m,p95<0.05,window=300,bogus=1",      // unknown field
       }) {
    EXPECT_FALSE(ParseSloSpecs(bad).ok()) << "accepted: " << bad;
  }
}

TEST(EvaluateSloPolicyTest, BurnRateGolden) {
  SloPolicy policy;
  policy.name = "g";
  policy.metric = "m/latency";
  policy.quantile = 0.95;
  // Threshold exactly on a bucket boundary: everything in buckets above
  // index 20 is bad, everything at or below is good — no interpolation.
  policy.threshold = Histogram::BucketUpperBound(20);
  policy.window_seconds = 300.0;
  policy.objective = 0.99;

  // 98 good observations, 2 bad → bad_fraction 0.02, allowed 0.01,
  // burn rate 2.0, budget exhausted.
  const std::vector<TimeseriesWindow> windows = {
      MakeWindow(0, 0, 1000000000ull, "m/latency", {{10, 98}, {22, 2}}),
  };
  const SloStatus status = EvaluateSloPolicy(policy, windows);
  EXPECT_TRUE(status.has_data);
  EXPECT_EQ(status.total, 100u);
  EXPECT_NEAR(status.bad, 2.0, 1e-9);
  EXPECT_NEAR(status.bad_fraction, 0.02, 1e-9);
  EXPECT_NEAR(status.burn_rate, 2.0, 1e-6);
  EXPECT_DOUBLE_EQ(status.budget_remaining, 0.0);
  // The p95 sits in the good mass, under the threshold.
  EXPECT_LE(status.windowed_quantile, policy.threshold);
}

TEST(EvaluateSloPolicyTest, ZeroBadBurnsNothing) {
  SloPolicy policy;
  policy.metric = "m/latency";
  policy.threshold = Histogram::BucketUpperBound(30);
  policy.window_seconds = 300.0;
  const std::vector<TimeseriesWindow> windows = {
      MakeWindow(0, 0, 1000000000ull, "m/latency", {{10, 50}}),
  };
  const SloStatus status = EvaluateSloPolicy(policy, windows);
  EXPECT_TRUE(status.has_data);
  EXPECT_DOUBLE_EQ(status.burn_rate, 0.0);
  EXPECT_DOUBLE_EQ(status.budget_remaining, 1.0);
}

TEST(EvaluateSloPolicyTest, TrailingHorizonExcludesOldWindows) {
  SloPolicy policy;
  policy.metric = "m/latency";
  policy.threshold = Histogram::BucketUpperBound(5);
  policy.window_seconds = 2.0;  // only the last two 1 s windows count

  const uint64_t s = 1000000000ull;
  // Old window: all bad. Recent windows: all good. A 2 s horizon must see
  // only the good ones.
  const std::vector<TimeseriesWindow> windows = {
      MakeWindow(0, 0 * s, 1 * s, "m/latency", {{30, 100}}),
      MakeWindow(1, 1 * s, 2 * s, "m/latency", {{2, 10}}),
      MakeWindow(2, 2 * s, 3 * s, "m/latency", {{2, 10}}),
  };
  const SloStatus status = EvaluateSloPolicy(policy, windows);
  EXPECT_EQ(status.total, 20u);
  EXPECT_DOUBLE_EQ(status.bad, 0.0);
  EXPECT_DOUBLE_EQ(status.burn_rate, 0.0);
}

TEST(EvaluateSloPolicyTest, NoDataInHorizon) {
  SloPolicy policy;
  policy.metric = "m/absent";
  policy.threshold = 0.5;
  const std::vector<TimeseriesWindow> windows = {
      MakeWindow(0, 0, 1000000000ull, "m/latency", {{10, 50}}),
  };
  const SloStatus status = EvaluateSloPolicy(policy, windows);
  EXPECT_FALSE(status.has_data);
  EXPECT_EQ(status.total, 0u);
  EXPECT_DOUBLE_EQ(status.burn_rate, 0.0);
}

TEST(SloRegistryTest, EvaluatePublishesGaugesAndStatuses) {
  SloRegistry registry;
  SloPolicy policy;
  policy.name = "test_slo_gauges";
  policy.metric = "m/latency";
  policy.threshold = Histogram::BucketUpperBound(20);
  policy.window_seconds = 300.0;
  policy.objective = 0.99;
  registry.Register(policy);
  // Re-registering by name replaces, not duplicates.
  registry.Register(policy);
  EXPECT_EQ(registry.Policies().size(), 1u);

  const std::vector<TimeseriesWindow> windows = {
      MakeWindow(0, 0, 1000000000ull, "m/latency", {{10, 98}, {22, 2}}),
  };
  registry.Evaluate(windows);
  const std::vector<SloStatus> statuses = registry.Statuses();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_NEAR(statuses[0].burn_rate, 2.0, 1e-6);

  MetricsRegistry& metrics = MetricsRegistry::Global();
  EXPECT_NEAR(metrics.GetGauge("slo/test_slo_gauges/burn_rate").Value(), 2.0,
              1e-6);
  EXPECT_NEAR(metrics.GetGauge("slo/test_slo_gauges/bad_fraction").Value(),
              0.02, 1e-9);
  EXPECT_DOUBLE_EQ(
      metrics.GetGauge("slo/test_slo_gauges/budget_remaining").Value(), 0.0);

  // Renderers mention the policy and the burn rate.
  EXPECT_NE(registry.StatusText().find("test_slo_gauges"),
            std::string::npos);
  EXPECT_NE(registry.StatusJson().find("\"burn_rate\":"), std::string::npos);

  registry.Clear();
  EXPECT_TRUE(registry.Policies().empty());
  EXPECT_TRUE(registry.Statuses().empty());
}

}  // namespace
}  // namespace landmark
