#include "util/string_util.h"

#include <gtest/gtest.h>

namespace landmark {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitWhitespaceTest, DropsEmptyFields) {
  EXPECT_EQ(SplitWhitespace("  a  b\tc \n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitWhitespace(""), (std::vector<std::string>{}));
  EXPECT_EQ(SplitWhitespace("   "), (std::vector<std::string>{}));
  EXPECT_EQ(SplitWhitespace("one"), (std::vector<std::string>{"one"}));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(JoinTest, SplitJoinRoundTrip) {
  const std::string s = "x|y|z|";
  EXPECT_EQ(Join(Split(s, '|'), "|"), s);
}

TEST(ToLowerTest, LowercasesAsciiOnly) {
  EXPECT_EQ(ToLower("AbC123!"), "abc123!");
  EXPECT_EQ(ToLower(""), "");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("\t\n "), "");
  EXPECT_EQ(Trim(" a b "), "a b");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("left_name", "left_"));
  EXPECT_FALSE(StartsWith("name", "left_"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ParseDoubleTest, ValidNumbers) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2"), -2.0);
  EXPECT_DOUBLE_EQ(*ParseDouble(" 10 "), 10.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e3"), 1000.0);
}

TEST(ParseDoubleTest, RejectsNonNumbers) {
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("3.5x").has_value());
  EXPECT_FALSE(ParseDouble("12 34").has_value());
}

TEST(FormatDoubleTest, FixedDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.5, 0), "2");  // round-to-even at .5
}

}  // namespace
}  // namespace landmark
