#include "util/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace landmark {
namespace {

TEST(CsvParseTest, SimpleTable) {
  auto table = ParseCsv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(table->rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvParseTest, QuotedFieldsWithCommasQuotesNewlines) {
  auto table = ParseCsv("h1,h2\n\"a,b\",\"say \"\"hi\"\"\"\n\"line1\nline2\",x\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "a,b");
  EXPECT_EQ(table->rows[0][1], "say \"hi\"");
  EXPECT_EQ(table->rows[1][0], "line1\nline2");
}

TEST(CsvParseTest, CrlfLineEndings) {
  auto table = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0][1], "2");
}

TEST(CsvParseTest, MissingFinalNewline) {
  auto table = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);
}

TEST(CsvParseTest, EmptyFieldsSurvive) {
  auto table = ParseCsv("a,b,c\n,,\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvParseTest, RejectsRaggedRows) {
  auto table = ParseCsv("a,b\n1,2,3\n");
  EXPECT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsInvalidArgument());
}

TEST(CsvParseTest, RejectsUnterminatedQuote) {
  auto table = ParseCsv("a\n\"unterminated\n");
  EXPECT_FALSE(table.ok());
}

TEST(CsvParseTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvWriteTest, RoundTripWithSpecialCharacters) {
  CsvTable table;
  table.header = {"name", "note"};
  table.rows = {{"a,b", "plain"},
                {"with \"quote\"", "line\nbreak"},
                {"", "trailing"}};
  auto parsed = ParseCsv(WriteCsvString(table));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, table.header);
  EXPECT_EQ(parsed->rows, table.rows);
}

TEST(CsvFileTest, WriteAndReadBack) {
  CsvTable table;
  table.header = {"x"};
  table.rows = {{"1"}, {"2"}};
  const std::string path = testing::TempDir() + "/landmark_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(table, path).ok());
  auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows, table.rows);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIoError) {
  auto r = ReadCsvFile("/nonexistent/dir/file.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIoError());
}

}  // namespace
}  // namespace landmark
