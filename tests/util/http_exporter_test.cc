// Prometheus exposition and loopback exporter tests: a golden render of a
// hand-built snapshot (the exact text contract scrapers parse), structural
// invariants of histogram rendering against a live Histogram (cumulative
// buckets, the final `+Inf` sample equal to `_count`), and the HTTP
// surface (/metrics, /healthz, /statusz, /statusz?format=json, /profilez,
// 404) over a real socket.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "util/telemetry/http_exporter.h"
#include "util/telemetry/metrics.h"

namespace landmark {
namespace {

TEST(PrometheusTextTest, GoldenExposition) {
  MetricsSnapshot snapshot;
  snapshot.counters = {{"engine/batches", 3}};
  snapshot.gauges = {{"pool/workers", 4.0}};
  HistogramSnapshot h;
  h.name = "engine/fit_seconds";
  h.count = 4;
  h.sum = 2.5;
  h.min = 0.25;
  h.max = 2.0;
  h.buckets = {{0.5, 3},
               {std::numeric_limits<double>::infinity(), 1}};
  snapshot.histograms = {h};

  EXPECT_EQ(ToPrometheusText(snapshot),
            "# TYPE landmark_engine_batches_total counter\n"
            "landmark_engine_batches_total 3\n"
            "# TYPE landmark_pool_workers gauge\n"
            "landmark_pool_workers 4\n"
            "# TYPE landmark_engine_fit_seconds histogram\n"
            "landmark_engine_fit_seconds_bucket{le=\"0.5\"} 3\n"
            "landmark_engine_fit_seconds_bucket{le=\"+Inf\"} 4\n"
            "landmark_engine_fit_seconds_sum 2.5\n"
            "landmark_engine_fit_seconds_count 4\n");
}

TEST(PrometheusTextTest, AllOverflowHistogramStillEndsAtInf) {
  // Every sample in the overflow bucket: the only bucket line must be the
  // +Inf one, and it must equal the count.
  MetricsSnapshot snapshot;
  HistogramSnapshot h;
  h.name = "x";
  h.count = 2;
  h.sum = 1e9;
  h.buckets = {{std::numeric_limits<double>::infinity(), 2}};
  snapshot.histograms = {h};
  EXPECT_EQ(ToPrometheusText(snapshot),
            "# TYPE landmark_x histogram\n"
            "landmark_x_bucket{le=\"+Inf\"} 2\n"
            "landmark_x_sum 1000000000\n"
            "landmark_x_count 2\n");
}

TEST(PrometheusTextTest, NameSanitization) {
  MetricsSnapshot snapshot;
  snapshot.counters = {{"explain/quality/low_r2", 1}};
  const std::string text = ToPrometheusText(snapshot);
  EXPECT_NE(text.find("landmark_explain_quality_low_r2_total 1\n"),
            std::string::npos)
      << text;
}

TEST(PrometheusTextTest, CounterAlreadyEndingInTotalIsNotDoubled) {
  // engine/stalls_total carries the conventional suffix in its metric name;
  // the exposition must not render landmark_engine_stalls_total_total.
  MetricsSnapshot snapshot;
  snapshot.counters = {{"engine/stalls_total", 2}};
  EXPECT_EQ(ToPrometheusText(snapshot),
            "# TYPE landmark_engine_stalls_total counter\n"
            "landmark_engine_stalls_total 2\n");
}

TEST(PrometheusTextTest, LiveHistogramBucketsAreCumulativeUpToCount) {
  Histogram histogram;
  for (int i = 1; i <= 1000; ++i) {
    histogram.Record(static_cast<double>(i) * 1e-4);
  }
  MetricsSnapshot snapshot;
  snapshot.histograms = {histogram.Snapshot("test/latency")};
  const std::string text = ToPrometheusText(snapshot);

  // Parse the bucket series back and check the Prometheus invariants:
  // cumulative counts never decrease, and the final +Inf sample equals
  // `_count`.
  std::istringstream lines(text);
  std::vector<uint64_t> cumulative;
  uint64_t inf_value = 0;
  uint64_t count_value = 0;
  for (std::string line; std::getline(lines, line);) {
    const std::string bucket_prefix = "landmark_test_latency_bucket{le=\"";
    if (line.rfind(bucket_prefix, 0) == 0) {
      const size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos);
      const uint64_t value = std::stoull(line.substr(space + 1));
      cumulative.push_back(value);
      if (line.find("+Inf") != std::string::npos) inf_value = value;
    } else if (line.rfind("landmark_test_latency_count ", 0) == 0) {
      count_value = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  ASSERT_GE(cumulative.size(), 2u);
  for (size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_LE(cumulative[i - 1], cumulative[i]) << "bucket " << i;
  }
  EXPECT_EQ(inf_value, 1000u);
  EXPECT_EQ(count_value, 1000u);
}

TEST(PrometheusTextTest, NonFiniteGaugeUsesExpositionLiterals) {
  MetricsSnapshot snapshot;
  snapshot.gauges = {{"a", std::nan("")},
                     {"b", std::numeric_limits<double>::infinity()}};
  const std::string text = ToPrometheusText(snapshot);
  EXPECT_NE(text.find("landmark_a NaN\n"), std::string::npos) << text;
  EXPECT_NE(text.find("landmark_b +Inf\n"), std::string::npos) << text;
}

TEST(HttpExporterTest, ServesMetricsHealthzStatusz) {
  // Seed the registry with an explain/quality histogram so the exposition
  // contains one, mirroring what a finished batch guarantees.
  MetricsRegistry::Global()
      .GetHistogram("explain/quality/match_fraction")
      .Record(0.5);

  auto exporter = HttpExporter::Start({});
  ASSERT_TRUE(exporter.ok()) << exporter.status().ToString();
  const uint16_t port = (*exporter)->port();
  ASSERT_NE(port, 0);

  int status = 0;
  auto metrics = HttpGetLoopback(port, "/metrics", &status);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(status, 200);
  EXPECT_NE(metrics->find("# TYPE "), std::string::npos);
  EXPECT_NE(
      metrics->find("landmark_explain_quality_match_fraction_count"),
      std::string::npos);
  EXPECT_NE(metrics->find("landmark_telemetry_http_requests_total"),
            std::string::npos);

  auto healthz = HttpGetLoopback(port, "/healthz", &status);
  ASSERT_TRUE(healthz.ok()) << healthz.status().ToString();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(*healthz, "ok\n");

  auto statusz = HttpGetLoopback(port, "/statusz", &status);
  ASSERT_TRUE(statusz.ok()) << statusz.status().ToString();
  EXPECT_EQ(status, 200);
  EXPECT_NE(statusz->find("uptime_seconds"), std::string::npos);
  EXPECT_NE(statusz->find("engine/batches"), std::string::npos);

  auto missing = HttpGetLoopback(port, "/nope", &status);
  ASSERT_TRUE(missing.ok()) << missing.status().ToString();
  EXPECT_EQ(status, 404);
  // The 404 body advertises every endpoint, including the flight deck.
  EXPECT_NE(missing->find("/statusz?format=json"), std::string::npos)
      << *missing;
  EXPECT_NE(missing->find("/profilez"), std::string::npos) << *missing;

  (*exporter)->Stop();
  (*exporter)->Stop();  // idempotent
}

TEST(HttpExporterTest, ServesFlightDeckEndpoints) {
  auto exporter = HttpExporter::Start({});
  ASSERT_TRUE(exporter.ok()) << exporter.status().ToString();
  const uint16_t port = (*exporter)->port();

  int status = 0;
  // Text /statusz now carries the flight-deck block after the engine totals.
  auto statusz = HttpGetLoopback(port, "/statusz", &status);
  ASSERT_TRUE(statusz.ok()) << statusz.status().ToString();
  EXPECT_EQ(status, 200);
  EXPECT_NE(statusz->find("-- flight deck --"), std::string::npos) << *statusz;
  EXPECT_NE(statusz->find("in-flight batches:"), std::string::npos);
  EXPECT_NE(statusz->find("profiler:"), std::string::npos);

  auto json = HttpGetLoopback(port, "/statusz?format=json", &status);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_EQ(status, 200);
  ASSERT_FALSE(json->empty());
  EXPECT_EQ(json->front(), '{') << *json;
  EXPECT_NE(json->find("\"batches\""), std::string::npos) << *json;
  EXPECT_NE(json->find("\"workers\""), std::string::npos) << *json;
  EXPECT_NE(json->find("\"profiler\""), std::string::npos) << *json;

  // seconds=0 returns the cumulative profile without blocking the loop.
  auto profile = HttpGetLoopback(port, "/profilez?seconds=0", &status);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(status, 200);

  (*exporter)->Stop();
}

TEST(HttpExporterTest, StartFailsOnTakenPort) {
  auto first = HttpExporter::Start({});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  HttpExporterOptions taken;
  taken.port = (*first)->port();
  auto second = HttpExporter::Start(taken);
  EXPECT_FALSE(second.ok());
}

TEST(HttpExporterTest, StopUnblocksIdleAcceptLoop) {
  // No request ever arrives; destruction must still join promptly.
  auto exporter = HttpExporter::Start({});
  ASSERT_TRUE(exporter.ok()) << exporter.status().ToString();
  exporter->reset();
}

}  // namespace
}  // namespace landmark
