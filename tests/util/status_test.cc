#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace landmark {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());

  Status st = Status::InvalidArgument("bad value");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "bad value");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad value");
}

TEST(StatusTest, CopyingSharesState) {
  Status st = Status::NotFound("missing");
  Status copy = st;
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_EQ(copy.message(), "missing");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::IoError("disk"); };
  auto wrapper = [&]() -> Status {
    LANDMARK_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsIoError());

  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper2 = [&]() -> Status {
    LANDMARK_RETURN_NOT_OK(succeeds());
    return Status::InvalidArgument("reached");
  };
  EXPECT_TRUE(wrapper2().IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nothing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    LANDMARK_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  ASSERT_TRUE(outer(false).ok());
  EXPECT_EQ(*outer(false), 8);
  EXPECT_TRUE(outer(true).status().IsInternal());
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace landmark
