// Death tests for the LANDMARK_DEADLOCK_DEBUG runtime detector in
// util/mutex.cc: an ABBA acquisition must abort with a report naming both
// mutexes and both thread activity descriptions, and holding any lock
// across a registered blocking point (ThreadPool::Submit) must abort
// naming the blocking point and the held lock. In builds without the
// option (the default preset) the suite skips — the wrapper compiles down
// to plain std::mutex and there is nothing to observe.
#include "util/mutex.h"

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace landmark {
namespace {

#if defined(LANDMARK_DEADLOCK_DEBUG)

// Death tests fork; "threadsafe" re-execs the binary so the child replays
// only this test, keeping the process-wide order graph deterministic.
class DeadlockDebugDeathTest : public testing::Test {
 protected:
  DeadlockDebugDeathTest() {
    testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(DeadlockDebugDeathTest, AbbaCycleAbortsNamingBothMutexesAndThreads) {
  Mutex a{"DeadlockDebugTest::a"};
  Mutex b{"DeadlockDebugTest::b"};
  {  // Establish the order a -> b; releasing changes nothing recorded.
    MutexLock hold_a(&a);
    MutexLock hold_b(&b);
  }
  EXPECT_DEATH(
      {
        MutexLock hold_b(&b);
        MutexLock hold_a(&a);
      },
      "lock-order cycle — acquiring \"DeadlockDebugTest::a\" while holding "
      "\"DeadlockDebugTest::b\"(.|\n)*first held by(.|\n)*"
      "acquiring thread: ");
}

TEST_F(DeadlockDebugDeathTest, SameRankReacquisitionAborts) {
  // Two instances sharing one name share a rank (the TokenCache shard
  // convention), so holding both at once is reported like a recursive
  // acquisition.
  Mutex first{"DeadlockDebugTest::shard"};
  Mutex second{"DeadlockDebugTest::shard"};
  EXPECT_DEATH(
      {
        MutexLock hold_first(&first);
        MutexLock hold_second(&second);
      },
      "acquiring \"DeadlockDebugTest::shard\" while already holding a lock "
      "of that rank");
}

TEST_F(DeadlockDebugDeathTest, LockHeldAcrossSubmitAborts) {
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        Mutex mu{"DeadlockDebugTest::held"};
        MutexLock hold(&mu);
        pool.Submit([] {});
      },
      "held across blocking point \"ThreadPool::Submit\"(.|\n)*"
      "held locks: DeadlockDebugTest::held");
}

TEST(DeadlockDebugTest, ConsistentOrderAndWaitExemptionRunClean) {
  // The same nesting repeated is fine, and a condition-variable style wait
  // may keep its own lock (LANDMARK_BLOCKING_POINT_WAIT allows it).
  Mutex outer{"DeadlockDebugTest::outer"};
  Mutex inner{"DeadlockDebugTest::inner"};
  for (int i = 0; i < 3; ++i) {
    MutexLock hold_outer(&outer);
    MutexLock hold_inner(&inner);
  }
  MutexLock hold(&outer);
  LANDMARK_BLOCKING_POINT_WAIT("DeadlockDebugTest/wait", &outer);
}

#else  // !LANDMARK_DEADLOCK_DEBUG

TEST(DeadlockDebugTest, DetectorCompiledOut) {
  GTEST_SKIP() << "LANDMARK_DEADLOCK_DEBUG is OFF in this build; the "
                  "detector is exercised by the asan-ubsan preset";
}

#endif  // LANDMARK_DEADLOCK_DEBUG

}  // namespace
}  // namespace landmark
