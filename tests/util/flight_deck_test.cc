// Flight-deck unit tests: activity-stack push/pop/snapshot semantics
// (including depth clamping), the batch registry, folded-stack rendering,
// a live SamplingProfiler capture, and the stall watchdog driven entirely
// by the injectable deck clock — no real waiting, one report per node
// execution, counter + trailer both updated.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "util/telemetry/flight_deck.h"
#include "util/telemetry/metrics.h"
#include "util/timer.h"

namespace landmark {
namespace {

std::atomic<uint64_t> g_fake_now_ns{0};
uint64_t FakeNow() { return g_fake_now_ns.load(std::memory_order_relaxed); }

/// Scoped deck-clock override; restores the real clock on destruction so a
/// failing test cannot poison its neighbors.
class FakeClockScope {
 public:
  explicit FakeClockScope(uint64_t start_ns) {
    g_fake_now_ns.store(start_ns, std::memory_order_relaxed);
    SetFlightDeckClockForTest(&FakeNow);
  }
  ~FakeClockScope() { SetFlightDeckClockForTest(nullptr); }

  void AdvanceSeconds(double seconds) {
    g_fake_now_ns.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                            std::memory_order_relaxed);
  }
};

TEST(ThreadActivityTest, PushPopSnapshot) {
  ThreadActivity activity;
  EXPECT_TRUE(activity.SnapshotStack().empty());

  activity.Push("engine/query");
  activity.Push("model/query");
  std::vector<const char*> frames = activity.SnapshotStack();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_STREQ(frames[0], "engine/query");
  EXPECT_STREQ(frames[1], "model/query");

  activity.Pop();
  frames = activity.SnapshotStack();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_STREQ(frames[0], "engine/query");

  activity.Pop();
  EXPECT_TRUE(activity.SnapshotStack().empty());
  activity.Pop();  // unbalanced pop is ignored, not UB
  EXPECT_TRUE(activity.SnapshotStack().empty());
}

TEST(ThreadActivityTest, SnapshotClampsToMaxDepth) {
  ThreadActivity activity;
  for (size_t i = 0; i < kMaxActivityDepth + 3; ++i) {
    activity.Push("frame");
  }
  EXPECT_EQ(activity.SnapshotStack().size(), kMaxActivityDepth);
  // Pops balance the overflow pushes back down.
  for (size_t i = 0; i < kMaxActivityDepth + 3; ++i) {
    activity.Pop();
  }
  EXPECT_TRUE(activity.SnapshotStack().empty());
}

TEST(ThreadActivityTest, RoleLabel) {
  ThreadActivity activity;
  activity.SetRole("pool-worker", 3);
  EXPECT_EQ(activity.Label(), "pool-worker-3");
}

TEST(ThreadActivityTest, NodeTagLifecycle) {
  ThreadActivity activity;
  EXPECT_EQ(activity.SnapshotNode().batch_id, 0u);

  activity.BeginNode(42, "engine/fit", 7, 1);
  ThreadActivity::NodeSnapshot tag = activity.SnapshotNode();
  EXPECT_EQ(tag.batch_id, 42u);
  EXPECT_STREQ(tag.stage, "engine/fit");
  EXPECT_EQ(tag.record_index, 7u);
  EXPECT_EQ(tag.unit_index, 1u);
  const uint64_t generation = tag.generation;

  activity.EndNode();
  EXPECT_EQ(activity.SnapshotNode().batch_id, 0u);

  // A new node execution gets a new generation (the stall dedup key).
  activity.BeginNode(42, "engine/fit", 7, 1);
  EXPECT_GT(activity.SnapshotNode().generation, generation);
  activity.EndNode();
}

TEST(ThreadActivityTest, ClaimStallReportIsOncePerGeneration) {
  ThreadActivity activity;
  activity.BeginNode(1, "engine/query", 0, 0);
  const uint64_t generation = activity.SnapshotNode().generation;
  EXPECT_TRUE(activity.ClaimStallReport(generation));
  EXPECT_FALSE(activity.ClaimStallReport(generation));  // already reported
  activity.EndNode();
  activity.BeginNode(1, "engine/query", 0, 0);
  EXPECT_TRUE(activity.ClaimStallReport(activity.SnapshotNode().generation));
  activity.EndNode();
}

TEST(ActivityRegistryTest, LocalSlotIsRegisteredAndStable) {
  ThreadActivity& slot = ActivityRegistry::Global().Local();
  EXPECT_EQ(&slot, &ActivityRegistry::Global().Local());
  bool found = false;
  for (const auto& live : ActivityRegistry::Global().Slots()) {
    if (live.get() == &slot) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(FlightDeckTest, RegisterFindUnregister) {
  FlightDeck& deck = FlightDeck::Global();
  std::shared_ptr<BatchProgress> batch = deck.RegisterBatch(5, "staged", 1.5);
  ASSERT_NE(batch, nullptr);
  EXPECT_GT(batch->id(), 0u);
  EXPECT_EQ(batch->num_records(), 5u);
  EXPECT_STREQ(batch->scheduler(), "staged");
  EXPECT_EQ(batch->stall_threshold(), 1.5);

  EXPECT_EQ(deck.FindBatch(batch->id()), batch);
  deck.UnregisterBatch(batch->id());
  EXPECT_EQ(deck.FindBatch(batch->id()), nullptr);
  // The shared_ptr a scraper grabbed keeps the progress alive regardless.
  EXPECT_EQ(batch->num_records(), 5u);
}

TEST(FlightDeckTest, BatchProgressStallRecording) {
  BatchProgress progress(9, 2, "task-graph", 0.25);
  EXPECT_EQ(progress.num_stalls(), 0u);

  StallReport report;
  report.batch_id = 9;
  report.stage = "engine/query";
  report.record_index = 1;
  report.elapsed_seconds = 3.0;
  report.worker = "pool-worker-0";
  progress.RecordStall(report);
  progress.RecordStall(report);

  std::vector<StallReport> taken = progress.TakeStalls();
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_STREQ(taken[0].stage, "engine/query");
  EXPECT_TRUE(progress.TakeStalls().empty());  // drained
  EXPECT_EQ(progress.num_stalls(), 2u);        // monotone count survives
}

TEST(FlightDeckTest, StatusRendersBatchesAndWorkers) {
  BatchProgressScope scope(3, "task-graph", 0.0);
  scope.progress().SetTokenCacheProbe([] {
    return std::vector<size_t>{4, 0, 2};
  });

  const std::string text = FlightDeckStatusText();
  EXPECT_NE(text.find("-- flight deck --"), std::string::npos) << text;
  EXPECT_NE(text.find("scheduler=task-graph records=3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("token_cache shards: 4 0 2 (total 6)"),
            std::string::npos)
      << text;

  const std::string json = FlightDeckStatusJson();
  EXPECT_EQ(json.front(), '{') << json;
  EXPECT_NE(json.find("\"scheduler\":\"task-graph\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"token_cache_shards\":[4,0,2]"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"workers\":["), std::string::npos) << json;
}

TEST(SamplingProfilerTest, RenderFoldedIsSortedFlamegraphText) {
  std::map<std::string, uint64_t> counts;
  counts["thread-0;engine/query;model/query"] = 3;
  counts["thread-0;engine/plan"] = 1;
  EXPECT_EQ(SamplingProfiler::RenderFolded(counts),
            "thread-0;engine/plan 1\n"
            "thread-0;engine/query;model/query 3\n");
}

TEST(SamplingProfilerTest, CapturesLiveActivityFrames) {
  SamplingProfiler& profiler = SamplingProfiler::Global();
  profiler.Start(/*interval_ns=*/50 * 1000);

  // Hold a distinctive frame on this thread until the sampler has seen it.
  // Bounded spin (no sleeping): the 50us sampler needs only one wakeup.
  LANDMARK_ACTIVITY("engine/test-stage");
  Timer timer;
  bool seen = false;
  while (!seen && timer.ElapsedSeconds() < 10.0) {
    for (const auto& [stack, count] : profiler.FoldedCounts()) {
      if (stack.find("engine/test-stage") != std::string::npos && count > 0) {
        seen = true;
        break;
      }
    }
    std::this_thread::yield();
  }
  EXPECT_TRUE(seen) << profiler.FoldedText();
  EXPECT_GT(profiler.samples(), 0u);

  profiler.Stop();
  EXPECT_FALSE(profiler.running());
  // Counts survive Stop for export.
  EXPECT_NE(profiler.FoldedText().find("engine/test-stage"),
            std::string::npos);
}

TEST(StallWatchdogTest, VirtualClockStallIsReportedOnce) {
  FakeClockScope clock(1000);

  BatchProgressScope batch(4, "task-graph", /*stall_threshold=*/0.5);
  const uint64_t batch_id = batch.progress().id();

  // A watchdog whose monitor thread practically never fires on its own: the
  // test drives ScanOnce() synchronously against the fake clock.
  StallWatchdogOptions options;
  options.poll_interval_ns = 3600ull * 1000 * 1000 * 1000;
  StallWatchdog watchdog(options);

  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  const uint64_t stalls_before =
      before.CounterValue("engine/stalls_total", 0);

  {
    NodeTagScope tag(batch_id, "engine/query", 2, 1);
    EXPECT_EQ(watchdog.ScanOnce(), 0u);  // just started, not stalled
    clock.AdvanceSeconds(10.0);
    EXPECT_EQ(watchdog.ScanOnce(), 1u);
    EXPECT_EQ(watchdog.ScanOnce(), 0u);  // same execution reports once

    const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
    EXPECT_EQ(after.CounterValue("engine/stalls_total", 0),
              stalls_before + 1);

    std::vector<StallReport> stalls = batch.progress().TakeStalls();
    ASSERT_EQ(stalls.size(), 1u);
    EXPECT_EQ(stalls[0].batch_id, batch_id);
    EXPECT_STREQ(stalls[0].stage, "engine/query");
    EXPECT_EQ(stalls[0].record_index, 2u);
    EXPECT_EQ(stalls[0].unit_index, 1u);
    EXPECT_GE(stalls[0].elapsed_seconds, 10.0);
    EXPECT_FALSE(stalls[0].worker.empty());
    EXPECT_EQ(batch.progress().num_stalls(), 1u);
  }

  // A fresh node execution on the same thread is a new generation: if it
  // stalls too, it is reported again.
  {
    NodeTagScope tag(batch_id, "engine/fit", 3, 0);
    clock.AdvanceSeconds(10.0);
    EXPECT_EQ(watchdog.ScanOnce(), 1u);
    std::vector<StallReport> stalls = batch.progress().TakeStalls();
    ASSERT_EQ(stalls.size(), 1u);
    EXPECT_STREQ(stalls[0].stage, "engine/fit");
  }

  watchdog.Stop();
  watchdog.Stop();  // idempotent
}

TEST(StallWatchdogTest, DisabledThresholdNeverReports) {
  FakeClockScope clock(1000);
  BatchProgressScope batch(1, "staged", /*stall_threshold=*/0.0);

  StallWatchdogOptions options;
  options.poll_interval_ns = 3600ull * 1000 * 1000 * 1000;
  StallWatchdog watchdog(options);

  NodeTagScope tag(batch.progress().id(), "engine/query", 0, 0);
  clock.AdvanceSeconds(1e6);  // eleven virtual days in one node
  EXPECT_EQ(watchdog.ScanOnce(), 0u);
  EXPECT_EQ(batch.progress().num_stalls(), 0u);
}

}  // namespace
}  // namespace landmark
