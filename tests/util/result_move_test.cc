#include <memory>

#include <gtest/gtest.h>

#include "util/result.h"

namespace landmark {
namespace {

Result<std::unique_ptr<int>> MakePtr(bool fail) {
  if (fail) return Status::NotFound("nope");
  return std::make_unique<int>(41);
}

TEST(ResultMoveTest, MoveOnlyPayloadRoundTrips) {
  auto r = MakePtr(false);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).ValueOrDie();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 41);
}

TEST(ResultMoveTest, ErrorPathForMoveOnlyPayload) {
  auto r = MakePtr(true);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultMoveTest, AssignOrReturnWithMoveOnlyType) {
  auto outer = [](bool fail) -> Result<int> {
    LANDMARK_ASSIGN_OR_RETURN(std::unique_ptr<int> p, MakePtr(fail));
    return *p + 1;
  };
  ASSERT_TRUE(outer(false).ok());
  EXPECT_EQ(*outer(false), 42);
  EXPECT_TRUE(outer(true).status().IsNotFound());
}

TEST(ResultMoveTest, ResultIsCopyableWhenPayloadIs) {
  Result<std::string> a = std::string("x");
  Result<std::string> b = a;  // copy
  EXPECT_EQ(*a, "x");
  EXPECT_EQ(*b, "x");
}

TEST(ResultMoveTest, ArrowOnMutableResult) {
  Result<std::string> r = std::string("ab");
  r->push_back('c');
  EXPECT_EQ(*r, "abc");
}

}  // namespace
}  // namespace landmark
