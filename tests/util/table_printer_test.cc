#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace landmark {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"", "Acc", "MAE"});
  tp.AddRow({"S-BR", "0.9", "0.12"});
  tp.AddRow({"longer-code", "1", "2"});
  const std::string out = tp.ToString();
  // Every line has the same length.
  size_t line_len = out.find('\n');
  size_t pos = 0;
  while (pos < out.size()) {
    size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, line_len);
    pos = next + 1;
  }
}

TEST(TablePrinterTest, FormatsDoubles) {
  TablePrinter tp({"", "v"});
  tp.AddRow("row", {0.12345}, 3);
  EXPECT_NE(tp.ToString().find("0.123"), std::string::npos);
}

TEST(TablePrinterTest, HeaderAndRuleArePresent) {
  TablePrinter tp({"", "x"});
  tp.AddRow({"a", "1"});
  const std::string out = tp.ToString();
  EXPECT_NE(out.find("| x"), std::string::npos);
  EXPECT_NE(out.find("|-"), std::string::npos);
}

}  // namespace
}  // namespace landmark
