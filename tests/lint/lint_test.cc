// Tests for tools/landmark_lint against tests/lint/fixtures/: one fixture
// per rule with a known violation (exact rule id and file:line asserted), a
// clean fixture, and the suppression machinery in both placement forms.
// The fixture tree mirrors a repo root (fixtures/src/..., fixtures/docs.md)
// so path-scoped rules behave exactly as in the real scan.
#include "landmark_lint/lint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

namespace {

using landmark_lint::Diagnostic;
using landmark_lint::LintConfig;
using landmark_lint::RunLint;

std::filesystem::path FixtureRoot() {
  return std::filesystem::path(LANDMARK_LINT_FIXTURE_DIR);
}

std::vector<Diagnostic> Lint(const std::vector<std::string>& files,
                             bool with_doc) {
  LintConfig config;
  config.root = FixtureRoot();
  for (const std::string& file : files) {
    config.sources.push_back(config.root / file);
  }
  config.doc_path = with_doc ? "docs.md" : "";
  std::vector<Diagnostic> diagnostics;
  std::string error;
  EXPECT_TRUE(RunLint(config, &diagnostics, &error)) << error;
  return diagnostics;
}

testing::AssertionResult HasDiagnostic(const std::vector<Diagnostic>& all,
                                       const std::string& file, int line,
                                       const std::string& rule) {
  for (const Diagnostic& d : all) {
    if (d.file == file && d.line == line && d.rule == rule) {
      return testing::AssertionSuccess();
    }
  }
  auto result = testing::AssertionFailure()
                << "no {" << file << ":" << line << ", " << rule
                << "} among " << all.size() << " diagnostic(s):";
  for (const Diagnostic& d : all) {
    result << "\n  " << landmark_lint::FormatDiagnostic(d);
  }
  return result;
}

TEST(LandmarkLint, BannedApiFiresAtExactLocation) {
  const std::vector<Diagnostic> diags = Lint({"src/banned_api.cc"}, false);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(HasDiagnostic(diags, "src/banned_api.cc", 5, "banned-api"));
}

TEST(LandmarkLint, RawThreadFiresAtExactLocation) {
  const std::vector<Diagnostic> diags = Lint({"src/raw_thread.cc"}, false);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(HasDiagnostic(diags, "src/raw_thread.cc", 5, "raw-thread"));
}

TEST(LandmarkLint, CondvarFiresUnderRawThreadRule) {
  // The annotated mutex keeps mutex-guard quiet; only the ad-hoc
  // condition_variable member trips the extended raw-thread rule.
  const std::vector<Diagnostic> diags = Lint({"src/condvar.cc"}, false);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(HasDiagnostic(diags, "src/condvar.cc", 10, "raw-thread"));
}

TEST(LandmarkLint, SleepPollFiresAndRespectsSuppression) {
  // One ad-hoc sleep loop fires; the allow(sleep-poll)-annotated sleep in
  // the same file stays quiet (and the suppression counts as used).
  const std::vector<Diagnostic> diags = Lint({"src/sleep_poll.cc"}, false);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(HasDiagnostic(diags, "src/sleep_poll.cc", 7, "sleep-poll"));
}

TEST(LandmarkLint, MutexGuardFiresAtExactLocation) {
  const std::vector<Diagnostic> diags = Lint({"src/mutex_guard.h"}, false);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(HasDiagnostic(diags, "src/mutex_guard.h", 8, "mutex-guard"));
}

TEST(LandmarkLint, HeaderGuardFiresAtExactLocation) {
  const std::vector<Diagnostic> diags = Lint({"src/header_guard.h"}, false);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(HasDiagnostic(diags, "src/header_guard.h", 1, "header-guard"));
}

TEST(LandmarkLint, UsingNamespaceFiresAtExactLocation) {
  const std::vector<Diagnostic> diags = Lint({"src/using_namespace.h"}, false);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(
      HasDiagnostic(diags, "src/using_namespace.h", 6, "using-namespace"));
}

TEST(LandmarkLint, MetricNameChecksBothDirections) {
  const std::vector<Diagnostic> diags = Lint({"src/metric_name.cc"}, true);
  ASSERT_EQ(diags.size(), 3u);
  // Undocumented literal in code...
  EXPECT_TRUE(HasDiagnostic(diags, "src/metric_name.cc", 5, "metric-name"));
  // ...and stale entries in the contract table (exact + dynamic prefix).
  EXPECT_TRUE(HasDiagnostic(diags, "docs.md", 7, "metric-name"));
  EXPECT_TRUE(HasDiagnostic(diags, "docs.md", 8, "metric-name"));
}

TEST(LandmarkLint, SuppressionsSilenceBothPlacementForms) {
  EXPECT_TRUE(Lint({"src/suppressed.cc"}, false).empty());
}

TEST(LandmarkLint, SuppressionHygieneIsEnforced) {
  const std::vector<Diagnostic> diags =
      Lint({"src/suppression_bad.cc"}, false);
  ASSERT_EQ(diags.size(), 3u);
  // Rationale missing (the banned-api finding itself stays suppressed).
  EXPECT_TRUE(
      HasDiagnostic(diags, "src/suppression_bad.cc", 5, "suppression"));
  // Suppression matching no violation.
  EXPECT_TRUE(
      HasDiagnostic(diags, "src/suppression_bad.cc", 9, "suppression"));
  // Unknown rule id.
  EXPECT_TRUE(
      HasDiagnostic(diags, "src/suppression_bad.cc", 14, "suppression"));
}

TEST(LandmarkLint, CleanFixtureProducesNoDiagnostics) {
  EXPECT_TRUE(Lint({"src/clean.cc", "src/clean.h"}, true).empty());
}

TEST(LandmarkLint, FormatIsFileLineRuleMessage) {
  const Diagnostic d{"src/x.cc", 7, "banned-api", "message text"};
  EXPECT_EQ(landmark_lint::FormatDiagnostic(d),
            "src/x.cc:7: [banned-api] message text");
}

TEST(LandmarkLint, MissingExplicitFileIsAnError) {
  LintConfig config;
  config.root = FixtureRoot();
  config.sources.push_back(config.root / "src/does_not_exist.cc");
  config.doc_path = "";
  std::vector<Diagnostic> diagnostics;
  std::string error;
  EXPECT_FALSE(RunLint(config, &diagnostics, &error));
  EXPECT_NE(error.find("does_not_exist"), std::string::npos);
}

}  // namespace
