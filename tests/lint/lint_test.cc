// Tests for tools/landmark_lint against tests/lint/fixtures/: one fixture
// per rule with a known violation (exact rule id and file:line asserted), a
// clean fixture, and the suppression machinery in both placement forms.
// The fixture tree mirrors a repo root (fixtures/src/..., fixtures/docs.md)
// so path-scoped rules behave exactly as in the real scan.
#include "landmark_lint/lint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using landmark_lint::Diagnostic;
using landmark_lint::LintConfig;
using landmark_lint::RunLint;

std::filesystem::path FixtureRoot() {
  return std::filesystem::path(LANDMARK_LINT_FIXTURE_DIR);
}

std::vector<Diagnostic> Lint(const std::vector<std::string>& files,
                             bool with_doc) {
  LintConfig config;
  config.root = FixtureRoot();
  for (const std::string& file : files) {
    config.sources.push_back(config.root / file);
  }
  config.doc_path = with_doc ? "docs.md" : "";
  std::vector<Diagnostic> diagnostics;
  std::string error;
  EXPECT_TRUE(RunLint(config, &diagnostics, &error)) << error;
  return diagnostics;
}

testing::AssertionResult HasDiagnostic(const std::vector<Diagnostic>& all,
                                       const std::string& file, int line,
                                       const std::string& rule) {
  for (const Diagnostic& d : all) {
    if (d.file == file && d.line == line && d.rule == rule) {
      return testing::AssertionSuccess();
    }
  }
  auto result = testing::AssertionFailure()
                << "no {" << file << ":" << line << ", " << rule
                << "} among " << all.size() << " diagnostic(s):";
  for (const Diagnostic& d : all) {
    result << "\n  " << landmark_lint::FormatDiagnostic(d);
  }
  return result;
}

TEST(LandmarkLint, BannedApiFiresAtExactLocation) {
  const std::vector<Diagnostic> diags = Lint({"src/banned_api.cc"}, false);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(HasDiagnostic(diags, "src/banned_api.cc", 5, "banned-api"));
}

TEST(LandmarkLint, RawThreadFiresAtExactLocation) {
  const std::vector<Diagnostic> diags = Lint({"src/raw_thread.cc"}, false);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(HasDiagnostic(diags, "src/raw_thread.cc", 5, "raw-thread"));
}

TEST(LandmarkLint, CondvarFiresUnderRawThreadRule) {
  // The annotated mutex keeps mutex-guard quiet; only the ad-hoc
  // condition_variable member trips the extended raw-thread rule.
  const std::vector<Diagnostic> diags = Lint({"src/condvar.cc"}, false);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(HasDiagnostic(diags, "src/condvar.cc", 10, "raw-thread"));
}

TEST(LandmarkLint, SleepPollFiresAndRespectsSuppression) {
  // One ad-hoc sleep loop fires; the allow(sleep-poll)-annotated sleep in
  // the same file stays quiet (and the suppression counts as used).
  const std::vector<Diagnostic> diags = Lint({"src/sleep_poll.cc"}, false);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(HasDiagnostic(diags, "src/sleep_poll.cc", 7, "sleep-poll"));
}

TEST(LandmarkLint, RawSimdFiresForIntrinsicsAndOmp) {
  const std::vector<Diagnostic> diags = Lint({"src/raw_simd.cc"}, false);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_TRUE(HasDiagnostic(diags, "src/raw_simd.cc", 4, "raw-simd"));
  EXPECT_TRUE(HasDiagnostic(diags, "src/raw_simd.cc", 8, "raw-simd"));
}

TEST(LandmarkLint, MutexGuardFiresAtExactLocation) {
  const std::vector<Diagnostic> diags = Lint({"src/mutex_guard.h"}, false);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(HasDiagnostic(diags, "src/mutex_guard.h", 8, "mutex-guard"));
}

TEST(LandmarkLint, HeaderGuardFiresAtExactLocation) {
  const std::vector<Diagnostic> diags = Lint({"src/header_guard.h"}, false);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(HasDiagnostic(diags, "src/header_guard.h", 1, "header-guard"));
}

TEST(LandmarkLint, UsingNamespaceFiresAtExactLocation) {
  const std::vector<Diagnostic> diags = Lint({"src/using_namespace.h"}, false);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(
      HasDiagnostic(diags, "src/using_namespace.h", 6, "using-namespace"));
}

TEST(LandmarkLint, MetricNameChecksBothDirections) {
  const std::vector<Diagnostic> diags = Lint({"src/metric_name.cc"}, true);
  ASSERT_EQ(diags.size(), 3u);
  // Undocumented literal in code...
  EXPECT_TRUE(HasDiagnostic(diags, "src/metric_name.cc", 5, "metric-name"));
  // ...and stale entries in the contract table (exact + dynamic prefix).
  EXPECT_TRUE(HasDiagnostic(diags, "docs.md", 7, "metric-name"));
  EXPECT_TRUE(HasDiagnostic(diags, "docs.md", 8, "metric-name"));
}

TEST(LandmarkLint, SuppressionsSilenceBothPlacementForms) {
  EXPECT_TRUE(Lint({"src/suppressed.cc"}, false).empty());
}

TEST(LandmarkLint, SuppressionHygieneIsEnforced) {
  const std::vector<Diagnostic> diags =
      Lint({"src/suppression_bad.cc"}, false);
  ASSERT_EQ(diags.size(), 3u);
  // Rationale missing (the banned-api finding itself stays suppressed).
  EXPECT_TRUE(
      HasDiagnostic(diags, "src/suppression_bad.cc", 5, "suppression"));
  // Suppression matching no violation.
  EXPECT_TRUE(
      HasDiagnostic(diags, "src/suppression_bad.cc", 9, "suppression"));
  // Unknown rule id.
  EXPECT_TRUE(
      HasDiagnostic(diags, "src/suppression_bad.cc", 14, "suppression"));
}

TEST(LandmarkLint, CleanFixtureProducesNoDiagnostics) {
  EXPECT_TRUE(Lint({"src/clean.cc", "src/clean.h"}, true).empty());
}

TEST(LandmarkLint, FormatIsFileLineRuleMessage) {
  const Diagnostic d{"src/x.cc", 7, "banned-api", "message text"};
  EXPECT_EQ(landmark_lint::FormatDiagnostic(d),
            "src/x.cc:7: [banned-api] message text");
}

TEST(LandmarkLint, RawMutexFiresForRawAndMisnamedMutexes) {
  const std::vector<Diagnostic> diags = Lint({"src/raw_mutex.cc"}, false);
  ASSERT_EQ(diags.size(), 2u);
  // A raw std::mutex member outside src/util/mutex.h...
  EXPECT_TRUE(HasDiagnostic(diags, "src/raw_mutex.cc", 7, "raw-mutex"));
  // ...and a named Mutex whose literal does not match Class::member.
  EXPECT_TRUE(HasDiagnostic(diags, "src/raw_mutex.cc", 9, "raw-mutex"));
}

TEST(LandmarkLint, DanglingGuardAnnotationFires) {
  const std::vector<Diagnostic> diags =
      Lint({"src/dangling_guard.cc"}, false);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(
      HasDiagnostic(diags, "src/dangling_guard.cc", 8, "mutex-guard"));
}

TEST(LandmarkLint, AbbaNestingIsRejectedAsLockOrderCycle) {
  const std::vector<Diagnostic> diags = Lint({"src/lock_cycle.cc"}, false);
  ASSERT_EQ(diags.size(), 1u);
  // The cycle is reported once, at the lexically latest witness edge
  // (Second()'s inner acquisition of a_ while b_ is held).
  EXPECT_TRUE(HasDiagnostic(diags, "src/lock_cycle.cc", 15, "lock-order"));
  EXPECT_NE(diags[0].message.find("AbbaPair::a_"), std::string::npos);
  EXPECT_NE(diags[0].message.find("AbbaPair::b_"), std::string::npos);
}

TEST(LandmarkLint, LockHeldAcrossBlockingCallIsRejected) {
  const std::vector<Diagnostic> diags =
      Lint({"src/lock_blocking.cc"}, false);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(
      HasDiagnostic(diags, "src/lock_blocking.cc", 9, "lock-blocking"));
  EXPECT_NE(diags[0].message.find("BlockingHolder::mu_"), std::string::npos);
}

TEST(LandmarkLint, NestingContradictingAcquiredBeforeIsRejected) {
  const std::vector<Diagnostic> diags =
      Lint({"src/lock_contradiction.cc"}, false);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(
      HasDiagnostic(diags, "src/lock_contradiction.cc", 9, "lock-order"));
  // The finding names the annotation it contradicts, including its site.
  EXPECT_NE(diags[0].message.find("ACQUIRED_BEFORE"), std::string::npos);
  EXPECT_NE(diags[0].message.find("lock_contradiction.cc:14"),
            std::string::npos);
}

TEST(LandmarkLint, LockGraphDotListsNodesAndWitnessedEdges) {
  LintConfig config;
  config.root = FixtureRoot();
  config.sources.push_back(config.root / "src/lock_cycle.cc");
  config.doc_path = "";
  config.lock_graph_out =
      std::filesystem::path(testing::TempDir()) / "lock_graph_test.dot";
  std::vector<Diagnostic> diagnostics;
  std::string error;
  ASSERT_TRUE(RunLint(config, &diagnostics, &error)) << error;
  std::ifstream in(config.lock_graph_out);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string dot = buffer.str();
  EXPECT_NE(dot.find("digraph lock_order"), std::string::npos);
  EXPECT_NE(dot.find("\"AbbaPair::a_\" -> \"AbbaPair::b_\""),
            std::string::npos);
  EXPECT_NE(dot.find("\"AbbaPair::b_\" -> \"AbbaPair::a_\""),
            std::string::npos);
  std::filesystem::remove(config.lock_graph_out);
}

TEST(LandmarkLint, MissingExplicitFileIsAnError) {
  LintConfig config;
  config.root = FixtureRoot();
  config.sources.push_back(config.root / "src/does_not_exist.cc");
  config.doc_path = "";
  std::vector<Diagnostic> diagnostics;
  std::string error;
  EXPECT_FALSE(RunLint(config, &diagnostics, &error));
  EXPECT_NE(error.find("does_not_exist"), std::string::npos);
}

}  // namespace
