// Fixture: lock-order (cycle) — First() nests b_ under a_, Second() nests
// a_ under b_. Two threads interleaving the two methods deadlock; the
// combined graph has the 2-cycle a_ -> b_ -> a_, reported at the later
// witness site (line 15).

class AbbaPair {
 public:
  void First() {
    MutexLock lock_a(&a_);
    MutexLock lock_b(&b_);
    ++count_b_;
  }
  void Second() {
    MutexLock lock_b(&b_);
    MutexLock lock_a(&a_);
    ++count_a_;
  }

 private:
  Mutex a_{"AbbaPair::a_"};
  Mutex b_{"AbbaPair::b_"};
  int count_a_ GUARDED_BY(a_) = 0;
  int count_b_ GUARDED_BY(b_) = 0;
};
