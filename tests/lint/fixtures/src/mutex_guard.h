#ifndef LANDMARK_MUTEX_GUARD_H_
#define LANDMARK_MUTEX_GUARD_H_
// Fixture: mutex-guard — the named Mutex member on line 8 guards
// nothing.

class UnguardedState {
 private:
  Mutex mu_{"UnguardedState::mu_"};
  int counter_ = 0;
};

#endif  // LANDMARK_MUTEX_GUARD_H_
