#ifndef LANDMARK_MUTEX_GUARD_H_
#define LANDMARK_MUTEX_GUARD_H_
// Fixture: mutex-guard — the mutex member on line 8 guards nothing.
#include <mutex>

class UnguardedState {
 private:
  std::mutex mu_;
  int counter_ = 0;
};

#endif  // LANDMARK_MUTEX_GUARD_H_
