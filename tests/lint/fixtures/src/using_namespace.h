#ifndef LANDMARK_USING_NAMESPACE_H_
#define LANDMARK_USING_NAMESPACE_H_
// Fixture: using-namespace — the dump on line 6 leaks into every includer.
#include <string>

using namespace std;

#endif  // LANDMARK_USING_NAMESPACE_H_
