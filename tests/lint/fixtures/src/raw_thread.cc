// Fixture: raw-thread — one raw std::thread construction on line 5.
#include <thread>

void SpawnWorker() {
  std::thread worker([] {});
  worker.join();
}
