// Fixture: raw-mutex — two violations of the lock-discipline rule: a raw
// std::mutex member (line 7) and a named Mutex whose constructor literal
// does not match its Class::member identity (line 9).

class RawMutexHolder {
 private:
  std::mutex raw_;
  int count_ GUARDED_BY(raw_) = 0;
  Mutex wrong_{"Renamed::wrong_"};
  int total_ GUARDED_BY(wrong_) = 0;
};
