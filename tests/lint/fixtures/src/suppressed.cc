// Fixture: suppressions — both placement forms, each with a rationale.
// Linting this file must produce zero diagnostics.
#include <cstdlib>
#include <thread>

void Helper() {
  std::thread t([] {});  // landmark-lint: allow(raw-thread) fixture exercises the trailing form
  t.join();
}

int Draw() {
  // landmark-lint: allow(banned-api) fixture exercises the standalone form
  return rand();
}
