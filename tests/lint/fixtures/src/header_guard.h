#ifndef LINT_FIXTURE_WRONG_GUARD_H
#define LINT_FIXTURE_WRONG_GUARD_H
// Fixture: header-guard — the guard does not follow LANDMARK_<PATH>_H_.

#endif  // LINT_FIXTURE_WRONG_GUARD_H
