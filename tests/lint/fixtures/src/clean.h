#ifndef LANDMARK_CLEAN_H_
#define LANDMARK_CLEAN_H_
// Fixture: fully conforming header — proper guard, annotated named Mutex
// whose constructor literal matches its Class::member identity.
#include <vector>

class GuardedState {
 private:
  mutable Mutex mu_{"GuardedState::mu_"};
  std::vector<int> values_ GUARDED_BY(mu_);
};

#endif  // LANDMARK_CLEAN_H_
