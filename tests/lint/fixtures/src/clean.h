#ifndef LANDMARK_CLEAN_H_
#define LANDMARK_CLEAN_H_
// Fixture: fully conforming header — proper guard, annotated mutex.
#include <mutex>
#include <vector>

class GuardedState {
 private:
  std::mutex mu_;
  std::vector<int> values_ GUARDED_BY(mu_);
};

#endif  // LANDMARK_CLEAN_H_
