// Fixture: metric-name — the literal on line 5 is not in the fixture doc
// (docs.md), and the doc's own entries are unused here, so both directions
// of the cross-check fire.
void Publish(MetricsRegistryLike& registry) {
  registry.GetCounter("lint/undocumented").Add(1);
}
