// Fixture: sleep-poll — an ad-hoc monitor loop sleeping on line 7, and a
// suppressed sleep on line 12 (the allow() form keeps it quiet).
#include <chrono>
#include <thread>

void PollUntilDone(bool* done) {
  while (!*done) std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

void SettleBeforeMeasuring() {
  // landmark-lint: allow(sleep-poll) fixture exercises the standalone form
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
