// Fixture: raw-simd — a raw intrinsic include on line 4 and an OpenMP
// pragma on line 8; both belong in src/util/simd.* only.
// NOLINTNEXTLINE
#include <immintrin.h>

double SumFour(const double* x) {
  double acc = 0.0;
#pragma omp simd
  for (int i = 0; i < 4; ++i) acc += x[i];
  return acc;
}
