// Fixture: mutex-guard (dangling) — GUARDED_BY(old_mu_) on line 8 names a
// mutex that no longer exists in this file, so the annotation guards
// nothing (typically a member renamed out from under its annotations).

class RenamedHolder {
 private:
  Mutex mu_{"RenamedHolder::mu_"};
  int stale_ GUARDED_BY(old_mu_) = 0;
  int fresh_ GUARDED_BY(mu_) = 0;
};
