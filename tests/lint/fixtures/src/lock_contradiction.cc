// Fixture: lock-order (annotation contradiction) — outer_ declares
// ACQUIRED_BEFORE(inner_), but Touch() acquires outer_ while holding
// inner_ (line 9).

class OrderedPair {
 public:
  void Touch() {
    MutexLock hold_inner(&inner_);
    MutexLock hold_outer(&outer_);
    ++outer_count_;
  }

 private:
  Mutex outer_ ACQUIRED_BEFORE(inner_){"OrderedPair::outer_"};
  Mutex inner_{"OrderedPair::inner_"};
  int outer_count_ GUARDED_BY(outer_) = 0;
  int inner_count_ GUARDED_BY(inner_) = 0;
};
