// Fixture: raw-thread (condition-variable form) — the ad-hoc
// std::condition_variable member on line 10 is banned outside the
// thread-pool / telemetry allowances. The mutex is annotated so only the
// condvar diagnostic fires.
#include <condition_variable>
#include <mutex>

class AdHocWaiter {
 private:
  std::condition_variable cv_;
  std::mutex mu_;
  bool ready_ GUARDED_BY(mu_) = false;
};
