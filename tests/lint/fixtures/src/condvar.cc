// Fixture: raw-thread (condition-variable form) — the ad-hoc
// std::condition_variable member on line 10 is banned outside the
// thread-pool / telemetry allowances. The mutex is annotated so only the
// condvar diagnostic fires.
#include <condition_variable>

class AdHocWaiter {
 private:
  Mutex mu_{"AdHocWaiter::mu_"};
  std::condition_variable cv_;
  bool ready_ GUARDED_BY(mu_) = false;
};
