// Fixture: fully conforming source — documented metric names only, both the
// exact and the dynamic-prefix form.
#include <string>

#include "clean.h"

void Publish(MetricsRegistryLike& registry, int shard) {
  registry.GetCounter("lint/documented").Add(1);
  registry.GetGauge("lint/dynamic/" + std::to_string(shard)).Set(1.0);
}
