// Fixture: lock-blocking — mu_ is still held when Drain() submits to the
// thread pool (line 9); a pool task needing mu_ would deadlock against a
// full queue, which is why Submit is a registered blocking point.

class BlockingHolder {
 public:
  void Drain(ThreadPool* pool) {
    MutexLock lock(&mu_);
    pool->Submit([] {});
    ++pending_;
  }

 private:
  Mutex mu_{"BlockingHolder::mu_"};
  int pending_ GUARDED_BY(mu_) = 0;
};
