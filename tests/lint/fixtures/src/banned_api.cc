// Fixture: banned-api — one rand() call site on line 5.
#include <cstdlib>

int UnseededDraw() {
  return rand();
}
