// Fixture: suppression hygiene — all three failure modes, one per function.
#include <cstdlib>

int MissingRationale() {
  return rand();  // landmark-lint: allow(banned-api)
}

int Unused() {
  // landmark-lint: allow(raw-thread) nothing on the next line spawns a thread
  return 0;
}

int UnknownRule() {
  // landmark-lint: allow(no-such-rule) the rule id does not exist
  return 0;
}
