#!/usr/bin/env bash
# Static-analysis entry point: builds and runs landmark_lint over the whole
# tree (determinism / concurrency / telemetry / hygiene contracts — see
# docs/architecture.md, "Static analysis"), then runs clang-tidy with the
# checked-in .clang-tidy when the binary is on PATH (skipped with a notice
# otherwise; the GCC-only CI image has no clang-tidy).
#
# Usage: scripts/lint.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"
BUILD_DIR="${BUILD_DIR:-build}"

echo "=== [lint] build landmark_lint ==="
cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target landmark_lint

echo "=== [lint] landmark_lint --root . ==="
# The DOT dump is the authoritative picture of the tree's lock-order graph
# (docs/architecture.md, "Lock discipline"); the grep asserts the emitter
# actually produced a graph rather than an empty file.
"./$BUILD_DIR/tools/landmark_lint" --root . \
  --lock-graph-out "$BUILD_DIR/lock_order.dot"
grep -q "digraph lock_order" "$BUILD_DIR/lock_order.dot"
echo "landmark_lint: clean (lock graph: $BUILD_DIR/lock_order.dot)"

echo "=== [lint] clang-tidy ==="
if command -v clang-tidy >/dev/null 2>&1; then
  # Library sources only: tests/bench/examples inherit the contract through
  # landmark_lint; clang-tidy adds compiler-grade checks where it exists.
  find src -name '*.cc' -print0 |
    xargs -0 -P "$JOBS" -n 8 clang-tidy -p "$BUILD_DIR" --quiet
  echo "clang-tidy: clean"
else
  echo "clang-tidy not found on PATH; skipped (checks run where a Clang"
  echo "toolchain exists — the .clang-tidy config pins the check set)"
fi
