#!/usr/bin/env python3
"""Compares two canonical BENCH_*.json trajectory files (stdlib-only).

Usage:
    scripts/bench_diff.py OLD.json NEW.json [--threshold 0.10]

Both files must use the landmark-bench-v1 schema written by
query_stage_bench --canonical-out: a `benchmarks` object mapping benchmark
name -> {"wall_ns": N, "throughput": F}. The diff walks the benchmark
names common to both files and reports each one's wall-time change.

Exit codes:
    0 — no common benchmark regressed by more than the threshold, or the
        comparison is not meaningful (no common benchmark names, or the
        two files were captured on machines with different — or
        unrecorded — `hardware_concurrency` or `simd_isa`, where absolute
        wall times say nothing).
    1 — at least one common benchmark's wall_ns grew by more than the
        threshold (default 10%) on comparable hardware.
    2 — bad usage or unreadable/ill-formed input.

scripts/check.sh runs this warn-only (|| true) against the committed
previous-PR baseline; CI hardware varies, so a hard gate lives with the
humans reading the table, not the script.
"""

import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict) or not isinstance(doc.get("benchmarks"), dict):
        print(f"bench_diff: {path}: missing 'benchmarks' object",
              file=sys.stderr)
        sys.exit(2)
    return doc


def main(argv) -> int:
    args = list(argv[1:])
    threshold = 0.10
    if "--threshold" in args:
        at = args.index("--threshold")
        if at + 1 >= len(args):
            print(__doc__, file=sys.stderr)
            return 2
        try:
            threshold = float(args[at + 1])
        except ValueError:
            print(f"bench_diff: bad threshold {args[at + 1]!r}",
                  file=sys.stderr)
            return 2
        del args[at:at + 2]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    old_path, new_path = args
    old = load(old_path)
    new = load(new_path)

    common = sorted(set(old["benchmarks"]) & set(new["benchmarks"]))
    if not common:
        print(f"bench_diff: no common benchmark names between {old_path} "
              f"and {new_path}; nothing to compare")
        return 0

    old_hc = old.get("hardware_concurrency")
    new_hc = new.get("hardware_concurrency")
    comparable = old_hc is not None and old_hc == new_hc
    if not comparable:
        print(f"bench_diff: hardware_concurrency differs or is unrecorded "
              f"(old={old_hc}, new={new_hc}); reporting only, not gating")

    # SIMD benches additionally record the detected vector ISA; a wall-time
    # diff between, say, an AVX2 and a NEON capture says nothing, so when
    # either side records `simd_isa` both must, and they must agree.
    old_isa = old.get("simd_isa")
    new_isa = new.get("simd_isa")
    if (old_isa is not None or new_isa is not None) and old_isa != new_isa:
        comparable = False
        print(f"bench_diff: simd_isa differs or is unrecorded on one side "
              f"(old={old_isa}, new={new_isa}); reporting only, not gating")

    regressions = []
    name_width = max(len(name) for name in common)
    print(f"{'benchmark':<{name_width}}  {'old wall_ns':>14}  "
          f"{'new wall_ns':>14}  {'delta':>8}")
    for name in common:
        old_ns = old["benchmarks"][name].get("wall_ns")
        new_ns = new["benchmarks"][name].get("wall_ns")
        if not isinstance(old_ns, (int, float)) or old_ns <= 0 or \
                not isinstance(new_ns, (int, float)):
            print(f"{name:<{name_width}}  {'?':>14}  {'?':>14}  {'n/a':>8}")
            continue
        delta = new_ns / old_ns - 1.0
        flag = ""
        if delta > threshold:
            flag = "  <-- regression" if comparable else "  (ignored)"
            if comparable:
                regressions.append((name, delta))
        print(f"{name:<{name_width}}  {old_ns:>14.0f}  {new_ns:>14.0f}  "
              f"{delta:>+7.1%}{flag}")

    if regressions:
        names = ", ".join(f"{n} ({d:+.1%})" for n, d in regressions)
        print(f"bench_diff: FAIL: wall time regressed beyond "
              f"{threshold:.0%}: {names}", file=sys.stderr)
        return 1
    print("bench_diff: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
