#!/usr/bin/env python3
"""Validates telemetry output files (stdlib-only, no pip dependencies).

Usage:
    scripts/validate_trace.py TRACE.json [METRICS.json]

Checks that TRACE.json is a loadable Chrome trace-event file — a JSON object
with a `traceEvents` list whose entries carry the keys chrome://tracing and
Perfetto require (`ph`, `pid`, `tid`, plus `name`/`ts`/`dur` for complete
events, with `dur >= 0`) — and, when given, that METRICS.json is a metrics
snapshot with `counters`/`gauges`/`histograms` keys and internally
consistent histograms (count/bucket agreement, p50 <= p95 <= p99).

Exit code 0 when everything holds; 1 with a message on the first violation.
"""

import json
import sys


def fail(message: str) -> None:
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate_trace(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not loadable JSON: {e}")

    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: missing 'traceEvents' list")

    complete = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"{path}: traceEvents[{i}] is not an object")
        for key in ("ph", "pid", "tid"):
            if key not in event:
                fail(f"{path}: traceEvents[{i}] missing '{key}'")
        if event["ph"] == "X":
            complete += 1
            for key in ("name", "ts", "dur"):
                if key not in event:
                    fail(f"{path}: complete event [{i}] missing '{key}'")
            if not isinstance(event["name"], str) or not event["name"]:
                fail(f"{path}: complete event [{i}] has an empty name")
            if event["dur"] < 0:
                fail(f"{path}: traceEvents[{i}] has negative dur")
            if event["ts"] < 0:
                fail(f"{path}: traceEvents[{i}] has negative ts")
    print(f"validate_trace: {path}: ok "
          f"({len(events)} events, {complete} complete spans)")


def validate_metrics(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not loadable JSON: {e}")

    for key in ("counters", "gauges", "histograms"):
        if key not in doc:
            fail(f"{path}: missing '{key}'")
    if not isinstance(doc["counters"], dict):
        fail(f"{path}: 'counters' must be an object")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter '{name}' must be a non-negative integer")

    histograms = doc["histograms"]
    if not isinstance(histograms, dict):
        fail(f"{path}: 'histograms' must be an object")
    for name, h in histograms.items():
        for key in ("count", "sum", "min", "max", "p50", "p95", "p99",
                    "buckets"):
            if key not in h:
                fail(f"{path}: histogram '{name}' missing '{key}'")
        if h["count"] < 0:
            fail(f"{path}: histogram '{name}' has negative count")
        if h["count"] > 0:
            if not h["min"] <= h["p50"] <= h["p95"] <= h["p99"] <= h["max"]:
                fail(f"{path}: histogram '{name}' percentiles out of order: "
                     f"min={h['min']} p50={h['p50']} p95={h['p95']} "
                     f"p99={h['p99']} max={h['max']}")
            bucket_total = sum(b["count"] for b in h["buckets"])
            if bucket_total != h["count"]:
                fail(f"{path}: histogram '{name}' bucket counts sum to "
                     f"{bucket_total}, expected count={h['count']}")
    print(f"validate_trace: {path}: ok "
          f"({len(doc['counters'])} counters, {len(histograms)} histograms)")


def main(argv) -> int:
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    validate_trace(argv[1])
    if len(argv) == 3:
        validate_metrics(argv[2])
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
