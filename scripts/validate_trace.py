#!/usr/bin/env python3
"""Validates telemetry output files (stdlib-only, no pip dependencies).

Usage:
    scripts/validate_trace.py [TRACE.json [METRICS.json]] [--audit AUDIT.jsonl]
                              [--profile PROFILE.folded]
                              [--timeline TIMELINE.jsonl]

TRACE.json may be omitted when at least one of the --audit/--profile/
--timeline validations is requested on its own.

Checks that TRACE.json is a loadable Chrome trace-event file — a JSON object
with a `traceEvents` list whose entries carry the keys chrome://tracing and
Perfetto require (`ph`, `pid`, `tid`, plus `name`/`ts`/`dur` for complete
events, with `dur >= 0`) — and that spans nest properly per thread: within
one `(pid, tid)` track, two complete spans either nest or are disjoint;
partial overlap means the recorder emitted garbage. When given, METRICS.json
must be a metrics snapshot with `counters`/`gauges`/`histograms` keys and
internally consistent histograms (count/bucket agreement, p50 <= p95 <=
p99), and AUDIT.jsonl must be an engine flight-recorder stream: one JSON
object per line, every `unit` record carrying the schema fields with a
globally monotone unit ordinal (the append-order determinism contract), and
`weighted_r2` either a number or null (NaN serializes as null, never 0).
PROFILE.folded must be flamegraph-compatible folded-stack text: at least
one `frame;frame;... COUNT` line with non-empty semicolon-separated frames
and a positive integer count.
TIMELINE.jsonl must be a `--timeline-out` dump from the snapshot collector:
one `timeline_base` line first (cumulative counters the deltas build on),
then `window` lines with strictly monotone indices, non-overlapping
monotone `[start_ns, end_ns)` spans, non-negative counter deltas and
rates, and internally consistent windowed histograms (bucket deltas sum
to the window count, p50 <= p95 <= p99).

Exit code 0 when everything holds; 1 with a message on the first violation.
"""

import json
import sys


def fail(message: str) -> None:
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_span_nesting(path: str, events) -> None:
    """Within a (pid, tid) track, complete spans must nest or be disjoint."""
    tracks = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        tracks.setdefault((event["pid"], event["tid"]), []).append(event)
    for (pid, tid), spans in tracks.items():
        # Sort by start time, longest first on ties, so a parent precedes
        # the children it encloses.
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for span in spans:
            begin, end = span["ts"], span["ts"] + span["dur"]
            while stack and begin >= stack[-1][1]:
                stack.pop()
            if stack and end > stack[-1][1]:
                fail(f"{path}: span '{span['name']}' [{begin}, {end}) on "
                     f"track ({pid}, {tid}) partially overlaps enclosing "
                     f"'{stack[-1][0]}' ending at {stack[-1][1]}")
            stack.append((span["name"], end))


def validate_trace(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not loadable JSON: {e}")

    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: missing 'traceEvents' list")

    complete = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"{path}: traceEvents[{i}] is not an object")
        for key in ("ph", "pid", "tid"):
            if key not in event:
                fail(f"{path}: traceEvents[{i}] missing '{key}'")
        if event["ph"] == "X":
            complete += 1
            for key in ("name", "ts", "dur"):
                if key not in event:
                    fail(f"{path}: complete event [{i}] missing '{key}'")
            if not isinstance(event["name"], str) or not event["name"]:
                fail(f"{path}: complete event [{i}] has an empty name")
            if event["dur"] < 0:
                fail(f"{path}: traceEvents[{i}] has negative dur")
            if event["ts"] < 0:
                fail(f"{path}: traceEvents[{i}] has negative ts")
    check_span_nesting(path, events)
    print(f"validate_trace: {path}: ok "
          f"({len(events)} events, {complete} complete spans)")


def validate_metrics(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not loadable JSON: {e}")

    for key in ("counters", "gauges", "histograms"):
        if key not in doc:
            fail(f"{path}: missing '{key}'")
    if not isinstance(doc["counters"], dict):
        fail(f"{path}: 'counters' must be an object")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter '{name}' must be a non-negative integer")

    histograms = doc["histograms"]
    if not isinstance(histograms, dict):
        fail(f"{path}: 'histograms' must be an object")
    for name, h in histograms.items():
        for key in ("count", "sum", "min", "max", "p50", "p95", "p99",
                    "buckets"):
            if key not in h:
                fail(f"{path}: histogram '{name}' missing '{key}'")
        if h["count"] < 0:
            fail(f"{path}: histogram '{name}' has negative count")
        if h["count"] > 0:
            if not h["min"] <= h["p50"] <= h["p95"] <= h["p99"] <= h["max"]:
                fail(f"{path}: histogram '{name}' percentiles out of order: "
                     f"min={h['min']} p50={h['p50']} p95={h['p95']} "
                     f"p99={h['p99']} max={h['max']}")
            bucket_total = sum(b["count"] for b in h["buckets"])
            if bucket_total != h["count"]:
                fail(f"{path}: histogram '{name}' bucket counts sum to "
                     f"{bucket_total}, expected count={h['count']}")
    print(f"validate_trace: {path}: ok "
          f"({len(doc['counters'])} counters, {len(histograms)} histograms)")


# Fields every successful audit unit record must carry (failed units carry
# `error` instead of the quality block). Mirrors AuditSink::UnitToJson.
AUDIT_UNIT_FIELDS = (
    "record_id", "record_index", "explainer", "landmark_side",
    "model_prediction", "weighted_r2", "intercept", "match_fraction",
    "top_weight_share", "interesting_tokens", "low_r2",
    "degenerate_neighborhood", "num_masks", "num_model_queries",
    "cache_hits", "top_tokens",
)

AUDIT_BATCH_FIELDS = (
    "num_records", "num_failed_records", "num_units", "num_masks",
    "num_model_queries", "cache_hits", "plan_seconds",
    "reconstruct_seconds", "query_seconds", "fit_seconds", "num_stalls",
)


def validate_audit(path: str) -> None:
    units = 0
    batches = 0
    expected_ordinal = 0
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.readlines()
    except OSError as e:
        fail(f"{path}: unreadable: {e}")
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{lineno}: not valid JSON: {e}")
        if not isinstance(record, dict) or "type" not in record:
            fail(f"{path}:{lineno}: every line must be an object with 'type'")
        if record["type"] == "unit":
            units += 1
            if record.get("unit") != expected_ordinal:
                fail(f"{path}:{lineno}: unit ordinal {record.get('unit')} "
                     f"breaks the monotone append order "
                     f"(expected {expected_ordinal})")
            expected_ordinal += 1
            if "error" in record:
                continue
            for key in AUDIT_UNIT_FIELDS:
                if key not in record:
                    fail(f"{path}:{lineno}: unit record missing '{key}'")
            r2 = record["weighted_r2"]
            if r2 is not None and not isinstance(r2, (int, float)):
                fail(f"{path}:{lineno}: weighted_r2 must be a number or "
                     f"null, got {r2!r}")
            if not isinstance(record["top_tokens"], list):
                fail(f"{path}:{lineno}: top_tokens must be a list")
            if not 0.0 <= record["match_fraction"] <= 1.0:
                fail(f"{path}:{lineno}: match_fraction out of [0, 1]")
        elif record["type"] == "batch":
            batches += 1
            for key in AUDIT_BATCH_FIELDS:
                if key not in record:
                    fail(f"{path}:{lineno}: batch record missing '{key}'")
        else:
            fail(f"{path}:{lineno}: unknown record type {record['type']!r}")
    if units == 0:
        fail(f"{path}: no unit records (the run explained nothing?)")
    print(f"validate_trace: {path}: ok "
          f"({units} unit records, {batches} batch records)")


def validate_profile(path: str) -> None:
    """Folded-stack profile: `frame;frame;... COUNT` lines, nothing else."""
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.readlines()
    except OSError as e:
        fail(f"{path}: unreadable: {e}")
    stacks = 0
    total_samples = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.rstrip("\n")
        if not line:
            continue
        stack, sep, count_text = line.rpartition(" ")
        if not sep or not stack:
            fail(f"{path}:{lineno}: expected 'frames COUNT', got {line!r}")
        if not count_text.isdigit() or int(count_text) <= 0:
            fail(f"{path}:{lineno}: count must be a positive integer, "
                 f"got {count_text!r}")
        for frame in stack.split(";"):
            if not frame:
                fail(f"{path}:{lineno}: empty frame in stack {stack!r}")
        stacks += 1
        total_samples += int(count_text)
    if stacks == 0:
        fail(f"{path}: no folded stacks (the profiler sampled nothing?)")
    print(f"validate_trace: {path}: ok "
          f"({stacks} folded stacks, {total_samples} samples)")


def validate_timeline(path: str) -> None:
    """`--timeline-out` JSONL: one timeline_base line, then window lines."""
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.readlines()
    except OSError as e:
        fail(f"{path}: unreadable: {e}")
    saw_base = False
    windows = 0
    prev_index = None
    prev_end = None
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{lineno}: not valid JSON: {e}")
        if not isinstance(record, dict) or "type" not in record:
            fail(f"{path}:{lineno}: every line must be an object with 'type'")
        if record["type"] == "timeline_base":
            if saw_base:
                fail(f"{path}:{lineno}: duplicate timeline_base line")
            if windows:
                fail(f"{path}:{lineno}: timeline_base must precede windows")
            saw_base = True
            if not isinstance(record.get("start_ns"), int) \
                    or record["start_ns"] < 0:
                fail(f"{path}:{lineno}: base start_ns must be a non-negative "
                     f"integer")
            if not isinstance(record.get("counters"), dict):
                fail(f"{path}:{lineno}: base 'counters' must be an object")
            for name, value in record["counters"].items():
                if not isinstance(value, int) or value < 0:
                    fail(f"{path}:{lineno}: base counter '{name}' must be a "
                         f"non-negative integer")
        elif record["type"] == "window":
            if not saw_base:
                fail(f"{path}:{lineno}: window line before timeline_base")
            windows += 1
            for key in ("index", "start_ns", "end_ns", "seconds", "counters",
                        "gauges", "histograms"):
                if key not in record:
                    fail(f"{path}:{lineno}: window missing '{key}'")
            if prev_index is not None and record["index"] <= prev_index:
                fail(f"{path}:{lineno}: window index {record['index']} not "
                     f"strictly monotone (previous {prev_index})")
            prev_index = record["index"]
            if record["end_ns"] <= record["start_ns"]:
                fail(f"{path}:{lineno}: window end_ns must exceed start_ns")
            if prev_end is not None and record["start_ns"] < prev_end:
                fail(f"{path}:{lineno}: window starts at "
                     f"{record['start_ns']}, before the previous window "
                     f"ended at {prev_end} (timestamps must be monotone)")
            prev_end = record["end_ns"]
            for c in record["counters"]:
                if not isinstance(c.get("delta"), int) or c["delta"] < 0:
                    fail(f"{path}:{lineno}: counter '{c.get('name')}' delta "
                         f"must be a non-negative integer")
                if c.get("rate", 0) < 0:
                    fail(f"{path}:{lineno}: counter '{c.get('name')}' has a "
                         f"negative rate")
            for h in record["histograms"]:
                for key in ("name", "count", "sum", "p50", "p95", "p99",
                            "buckets"):
                    if key not in h:
                        fail(f"{path}:{lineno}: histogram "
                             f"'{h.get('name')}' missing '{key}'")
                if h["count"] < 0 or h["sum"] < 0:
                    fail(f"{path}:{lineno}: histogram '{h['name']}' has a "
                         f"negative count or sum delta")
                bucket_total = sum(b["delta"] for b in h["buckets"])
                if bucket_total != h["count"]:
                    fail(f"{path}:{lineno}: histogram '{h['name']}' bucket "
                         f"deltas sum to {bucket_total}, expected "
                         f"count={h['count']}")
                if h["count"] > 0 and not h["p50"] <= h["p95"] <= h["p99"]:
                    fail(f"{path}:{lineno}: histogram '{h['name']}' windowed "
                         f"percentiles out of order: p50={h['p50']} "
                         f"p95={h['p95']} p99={h['p99']}")
        else:
            fail(f"{path}:{lineno}: unknown record type {record['type']!r}")
    if not saw_base:
        fail(f"{path}: no timeline_base line (collector never armed?)")
    print(f"validate_trace: {path}: ok (1 base, {windows} windows)")


def main(argv) -> int:
    args = list(argv[1:])
    audit_path = None
    profile_path = None
    if "--audit" in args:
        at = args.index("--audit")
        if at + 1 >= len(args):
            print(__doc__, file=sys.stderr)
            return 2
        audit_path = args[at + 1]
        del args[at:at + 2]
    if "--profile" in args:
        at = args.index("--profile")
        if at + 1 >= len(args):
            print(__doc__, file=sys.stderr)
            return 2
        profile_path = args[at + 1]
        del args[at:at + 2]
    timeline_path = None
    if "--timeline" in args:
        at = args.index("--timeline")
        if at + 1 >= len(args):
            print(__doc__, file=sys.stderr)
            return 2
        timeline_path = args[at + 1]
        del args[at:at + 2]
    flags_only = (
        audit_path is not None
        or profile_path is not None
        or timeline_path is not None
    )
    if len(args) > 2 or (len(args) < 1 and not flags_only):
        print(__doc__, file=sys.stderr)
        return 2
    if args:
        validate_trace(args[0])
    if len(args) == 2:
        validate_metrics(args[1])
    if audit_path is not None:
        validate_audit(audit_path)
    if profile_path is not None:
        validate_profile(profile_path)
    if timeline_path is not None:
        validate_timeline(timeline_path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
