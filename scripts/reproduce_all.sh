#!/usr/bin/env bash
# Reproduces every experiment in EXPERIMENTS.md from a clean checkout.
#
# Usage: scripts/reproduce_all.sh [output_dir]
#
# Runtime on a single core is roughly 35 minutes, dominated by the four
# paper-table benches (full Table-1 dataset sizes, 100 records per label).
# Pass e.g. RECORDS=25 SCALE=0.25 for a ~5x faster smoke reproduction:
#   RECORDS=25 SCALE=0.25 scripts/reproduce_all.sh out_quick

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-experiment_outputs}"
RECORDS="${RECORDS:-100}"
SCALE="${SCALE:-1.0}"

cmake -B build -G Ninja
cmake --build build
mkdir -p "$OUT"

ctest --test-dir build 2>&1 | tee "$OUT/tests.txt"

run() {
  local name="$1"; shift
  echo "=== $name ==="
  "./build/bench/$name" "$@" 2>&1 | tee "$OUT/$name.txt"
}

run table1_datasets --scale "$SCALE"
run table2_token_eval --records "$RECORDS" --scale "$SCALE"
run table3_attribute_eval --records "$RECORDS" --scale "$SCALE"
run table4_interest --records "$RECORDS" --scale "$SCALE"
run ablation_sweeps --scale "$SCALE"
run model_zoo_faithfulness
run stability_sweep
run perf_explainers

echo "all outputs written to $OUT/"
