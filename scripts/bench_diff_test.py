#!/usr/bin/env python3
"""Unit tests for scripts/bench_diff.py (stdlib-only, run by ctest as
`lint.bench_diff`). Covers the exit-code contract: 0 for clean/incomparable
runs, 1 for a genuine regression on comparable hardware, 2 for unusable
input."""

import importlib.util
import json
import os
import sys
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "bench_diff", os.path.join(_HERE, "bench_diff.py"))
bench_diff = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_diff)


def doc(benchmarks, concurrency=8, isa=None):
    out = {"benchmarks": benchmarks}
    if concurrency is not None:
        out["hardware_concurrency"] = concurrency
    if isa is not None:
        out["simd_isa"] = isa
    return out


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, name, payload):
        path = os.path.join(self._dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            if isinstance(payload, str):
                f.write(payload)
            else:
                json.dump(payload, f)
        return path

    def run_diff(self, *argv):
        try:
            return bench_diff.main(["bench_diff.py", *argv])
        except SystemExit as e:  # load() exits directly on bad input
            return e.code

    def test_no_change_is_clean(self):
        old = self.write("old.json", doc({"q": {"wall_ns": 100}}))
        new = self.write("new.json", doc({"q": {"wall_ns": 104}}))
        self.assertEqual(self.run_diff(old, new), 0)

    def test_regression_beyond_threshold_fails(self):
        old = self.write("old.json", doc({"q": {"wall_ns": 100}}))
        new = self.write("new.json", doc({"q": {"wall_ns": 150}}))
        self.assertEqual(self.run_diff(old, new), 1)

    def test_threshold_flag_widens_the_gate(self):
        old = self.write("old.json", doc({"q": {"wall_ns": 100}}))
        new = self.write("new.json", doc({"q": {"wall_ns": 150}}))
        self.assertEqual(self.run_diff("--threshold", "0.6", old, new), 0)

    def test_different_hardware_reports_but_does_not_gate(self):
        old = self.write("old.json", doc({"q": {"wall_ns": 100}},
                                         concurrency=4))
        new = self.write("new.json", doc({"q": {"wall_ns": 900}},
                                         concurrency=16))
        self.assertEqual(self.run_diff(old, new), 0)

    def test_unrecorded_hardware_does_not_gate(self):
        old = self.write("old.json", doc({"q": {"wall_ns": 100}},
                                         concurrency=None))
        new = self.write("new.json", doc({"q": {"wall_ns": 900}},
                                         concurrency=None))
        self.assertEqual(self.run_diff(old, new), 0)

    def test_different_simd_isa_reports_but_does_not_gate(self):
        old = self.write("old.json", doc({"q": {"wall_ns": 100}},
                                         isa="avx2"))
        new = self.write("new.json", doc({"q": {"wall_ns": 900}},
                                         isa="neon"))
        self.assertEqual(self.run_diff(old, new), 0)

    def test_simd_isa_on_one_side_only_does_not_gate(self):
        old = self.write("old.json", doc({"q": {"wall_ns": 100}}))
        new = self.write("new.json", doc({"q": {"wall_ns": 900}},
                                         isa="avx2"))
        self.assertEqual(self.run_diff(old, new), 0)

    def test_matching_simd_isa_still_gates(self):
        old = self.write("old.json", doc({"q": {"wall_ns": 100}},
                                         isa="avx2"))
        new = self.write("new.json", doc({"q": {"wall_ns": 900}},
                                         isa="avx2"))
        self.assertEqual(self.run_diff(old, new), 1)

    def test_no_common_names_is_clean(self):
        old = self.write("old.json", doc({"a": {"wall_ns": 100}}))
        new = self.write("new.json", doc({"b": {"wall_ns": 900}}))
        self.assertEqual(self.run_diff(old, new), 0)

    def test_malformed_wall_ns_is_skipped_not_fatal(self):
        old = self.write("old.json", doc({"q": {"wall_ns": 0},
                                          "r": {"wall_ns": 100}}))
        new = self.write("new.json", doc({"q": {"wall_ns": 900},
                                          "r": {"wall_ns": 90}}))
        self.assertEqual(self.run_diff(old, new), 0)

    def test_missing_benchmarks_object_is_usage_error(self):
        old = self.write("old.json", {"not_benchmarks": {}})
        new = self.write("new.json", doc({"q": {"wall_ns": 100}}))
        self.assertEqual(self.run_diff(old, new), 2)

    def test_unparseable_json_is_usage_error(self):
        old = self.write("old.json", "{nope")
        new = self.write("new.json", doc({"q": {"wall_ns": 100}}))
        self.assertEqual(self.run_diff(old, new), 2)

    def test_bad_threshold_is_usage_error(self):
        old = self.write("old.json", doc({"q": {"wall_ns": 100}}))
        new = self.write("new.json", doc({"q": {"wall_ns": 100}}))
        self.assertEqual(self.run_diff("--threshold", "fast", old, new), 2)

    def test_missing_file_is_usage_error(self):
        new = self.write("new.json", doc({"q": {"wall_ns": 100}}))
        missing = os.path.join(self._dir.name, "absent.json")
        self.assertEqual(self.run_diff(missing, new), 2)


if __name__ == "__main__":
    unittest.main()
