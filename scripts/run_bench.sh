#!/usr/bin/env bash
# Performance benchmark driver.
#
# Builds the bench binaries (default, non-sanitized preset), runs
#   1. perf_explainers   — google-benchmark per-op latencies
#   2. query_stage_bench — per-stage engine timings, string path vs the
#                          cache_features fast path, written to
#                          BENCH_query.json (per-stage seconds, token-cache
#                          hit/miss counts, query/total speedup)
#   3. query_stage_bench --mode scheduler — end-to-end wall time of the
#                          legacy barriered stage loops vs the per-unit
#                          task-graph scheduler on a heterogeneous-unit
#                          workload, written to BENCH_scheduler.json
#                          (scheduler_speedup is the headline ratio)
#   4. query_stage_bench --mode flightdeck — the same task-graph workload
#                          with the flight deck idle vs armed (profiler +
#                          stall watchdog + one /statusz render per rep),
#                          written to BENCH_flightdeck.json (deck_overhead
#                          is the headline ratio; should stay near 1.0)
#   5. query_stage_bench --mode timeline — the same task-graph workload
#                          with the snapshot collector idle vs armed at its
#                          production cadence (1 s windows, an SLO policy
#                          registered, one /timelinez JSON render per rep),
#                          written to BENCH_timeline.json
#                          (timeline_overhead is the headline ratio; the
#                          acceptance bar is < 1.02)
#   6. query_stage_bench --mode simd — scalar vs vectorized kernel variants
#                          (EngineOptions::simd) end to end, plus per-kernel
#                          micro-timings (Levenshtein, token merges,
#                          surrogate fit), written to BENCH_simd.json
#                          (query_fit_speedup is the headline ratio; the
#                          detected ISA is recorded next to it because the
#                          ratios only compare on like hardware)
#
# Reference numbers live in bench/baselines/: BENCH_query_pre.json was
# captured immediately before the query fast path landed,
# BENCH_query_post.json immediately after, on the same machine. Compare a
# fresh BENCH_query.json against those to judge a perf change; the absolute
# numbers are machine-dependent, the speedup ratios should hold anywhere.
#
# Alongside the per-mode JSON documents, the canonical cross-PR trajectory
# files BENCH_5.json (fastpath), BENCH_6.json (scheduler; also carries the
# scheduler_speedup ratio), BENCH_7.json (flightdeck; also carries the
# deck_overhead ratio and re-emits scheduler/task_graph for continuity),
# BENCH_8.json (simd; carries the simd/query_fit speedup ratios plus
# hardware_concurrency and simd_isa so bench_diff.py refuses to compare
# across different vector units), and BENCH_9.json (timeline; carries the
# timeline_overhead ratio and re-emits scheduler/task_graph for continuity)
# (schema: benchmark name -> wall_ns + throughput) are written to the repo
# root so tooling can compare runs across PRs without knowing each
# benchmark's bespoke layout — scripts/bench_diff.py does exactly that.
#
# Usage: scripts/run_bench.sh [jobs]   (output: BENCH_query.json,
#                                       BENCH_scheduler.json,
#                                       BENCH_flightdeck.json,
#                                       BENCH_timeline.json and
#                                       BENCH_simd.json in $PWD,
#                                       BENCH_5.json through BENCH_9.json
#                                       in the repo root)
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${1:-$(nproc)}"
OUT_DIR="$PWD"

cmake -B "$REPO/build" -S "$REPO" >/dev/null
cmake --build "$REPO/build" -j "$JOBS" \
  --target perf_explainers query_stage_bench

echo "=== perf_explainers ==="
# Bare double: the bundled google-benchmark predates the "0.05s" syntax.
"$REPO/build/bench/perf_explainers" --benchmark_min_time=0.05

echo "=== query_stage_bench ==="
"$REPO/build/bench/query_stage_bench" \
  --json-out "$OUT_DIR/BENCH_query.json" \
  --canonical-out "$REPO/BENCH_5.json"
cat "$OUT_DIR/BENCH_query.json"
echo "wrote $OUT_DIR/BENCH_query.json (baselines: bench/baselines/)"
echo "wrote $REPO/BENCH_5.json (canonical cross-PR trajectory)"

echo "=== query_stage_bench --mode scheduler ==="
"$REPO/build/bench/query_stage_bench" --mode scheduler \
  --json-out "$OUT_DIR/BENCH_scheduler.json" \
  --canonical-out "$REPO/BENCH_6.json"
cat "$OUT_DIR/BENCH_scheduler.json"
echo "wrote $OUT_DIR/BENCH_scheduler.json (staged vs task-graph)"
echo "wrote $REPO/BENCH_6.json (canonical cross-PR trajectory)"

echo "=== query_stage_bench --mode flightdeck ==="
"$REPO/build/bench/query_stage_bench" --mode flightdeck \
  --json-out "$OUT_DIR/BENCH_flightdeck.json" \
  --canonical-out "$REPO/BENCH_7.json"
cat "$OUT_DIR/BENCH_flightdeck.json"
echo "wrote $OUT_DIR/BENCH_flightdeck.json (flight deck off vs on)"
echo "wrote $REPO/BENCH_7.json (canonical cross-PR trajectory)"

echo "=== query_stage_bench --mode timeline ==="
"$REPO/build/bench/query_stage_bench" --mode timeline \
  --json-out "$OUT_DIR/BENCH_timeline.json" \
  --canonical-out "$REPO/BENCH_9.json"
cat "$OUT_DIR/BENCH_timeline.json"
echo "wrote $OUT_DIR/BENCH_timeline.json (snapshot collector off vs on)"
echo "wrote $REPO/BENCH_9.json (canonical cross-PR trajectory)"

echo "=== query_stage_bench --mode simd ==="
"$REPO/build/bench/query_stage_bench" --mode simd \
  --json-out "$OUT_DIR/BENCH_simd.json" \
  --canonical-out "$REPO/BENCH_8.json"
cat "$OUT_DIR/BENCH_simd.json"
echo "wrote $OUT_DIR/BENCH_simd.json (scalar vs vectorized kernels)"
echo "wrote $REPO/BENCH_8.json (canonical cross-PR trajectory)"
