#!/usr/bin/env bash
# Performance benchmark driver.
#
# Builds the bench binaries (default, non-sanitized preset), runs
#   1. perf_explainers   — google-benchmark per-op latencies
#   2. query_stage_bench — per-stage engine timings, string path vs the
#                          cache_features fast path, written to
#                          BENCH_query.json (per-stage seconds, token-cache
#                          hit/miss counts, query/total speedup)
#
# Reference numbers live in bench/baselines/: BENCH_query_pre.json was
# captured immediately before the query fast path landed,
# BENCH_query_post.json immediately after, on the same machine. Compare a
# fresh BENCH_query.json against those to judge a perf change; the absolute
# numbers are machine-dependent, the speedup ratios should hold anywhere.
#
# Alongside the per-stage BENCH_query.json, the canonical cross-PR
# trajectory file BENCH_5.json (schema: benchmark name -> wall_ns +
# throughput) is written to the repo root so tooling can compare runs
# across PRs without knowing each benchmark's bespoke layout.
#
# Usage: scripts/run_bench.sh [jobs]   (output: BENCH_query.json in $PWD,
#                                       BENCH_5.json in the repo root)
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${1:-$(nproc)}"
OUT_DIR="$PWD"

cmake -B "$REPO/build" -S "$REPO" >/dev/null
cmake --build "$REPO/build" -j "$JOBS" \
  --target perf_explainers query_stage_bench

echo "=== perf_explainers ==="
# Bare double: the bundled google-benchmark predates the "0.05s" syntax.
"$REPO/build/bench/perf_explainers" --benchmark_min_time=0.05

echo "=== query_stage_bench ==="
"$REPO/build/bench/query_stage_bench" \
  --json-out "$OUT_DIR/BENCH_query.json" \
  --canonical-out "$REPO/BENCH_5.json"
cat "$OUT_DIR/BENCH_query.json"
echo "wrote $OUT_DIR/BENCH_query.json (baselines: bench/baselines/)"
echo "wrote $REPO/BENCH_5.json (canonical cross-PR trajectory)"
