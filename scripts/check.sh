#!/usr/bin/env bash
# Pre-merge gate: static analysis first, then the sanitizer matrix with the
# full test suite under each configuration. Every build here runs with
# LANDMARK_WERROR=ON, so a new compiler warning fails the gate:
#
#   lint        scripts/lint.sh — landmark_lint over the whole tree
#               (determinism / concurrency / telemetry / hygiene contracts)
#               plus clang-tidy where available
#   asan-ubsan  memory errors + undefined behaviour
#   tsan        data races in the engine pipeline (both the task-graph
#               scheduler and the legacy barriered path) and the telemetry
#               hot paths (sharded counters, trace rings, the pool gauges);
#               an explicit second pass re-runs the telemetry-, scheduler-
#               and flight-deck-focused tests (TaskGraph/Scheduler/
#               FlightDeck/Profiler/Stall suites, including the
#               concurrent-scrape-during-batch test) so a race there fails
#               loudly even when triaging the full run
#   deadlock-debug  dedicated -DLANDMARK_DEADLOCK_DEBUG=ON build (no
#               sanitizers): death tests for the runtime lock-order
#               detector, the engine/telemetry suites under
#               instrumentation, and a byte-compare of `landmark_cli
#               explain` output against the default build proving the
#               detector is observation-only
#   simd        byte-compare of `landmark_cli explain` output and the audit
#               unit lines with and without `--no-simd`, on the default
#               build and again under asan-ubsan — the vectorized kernels'
#               bit-exactness contract, end to end
#
# After the sanitizer matrix, a default (non-sanitized) landmark_cli runs
# `telemetry-demo --trace-out --metrics-out --audit-out --profile-out
# --timeline-out` and the outputs are checked by scripts/validate_trace.py
# (stdlib Python; skipped when python3 is absent), the perf_smoke ctest
# label smoke-runs the query-stage benchmark (scripts/run_bench.sh is the
# full driver), and scripts/bench_diff.py compares the committed
# BENCH_6/BENCH_7 trajectory files warn-only (CI hardware varies; the
# table is for humans).
#
# Finally the exporter smoke stage starts a tiny batch with
# `--metrics-port 0` (ephemeral port announced on stdout), scrapes /metrics
# and /healthz through tools/http_probe (raw sockets; the image has no
# curl), and asserts the exposition contains the explain/quality histograms
# — once against the default build and once against the TSan build. The
# timeline smoke stage does the same with `--slo` armed and additionally
# scrapes /timelinez (text + JSON), /sloz, and the OpenMetrics exposition
# (Accept negotiation + the mandatory `# EOF` trailer).
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

scripts/lint.sh "$JOBS"

for preset in asan-ubsan tsan; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset" -DLANDMARK_WERROR=ON
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] test ==="
  ctest --preset "$preset" -j "$JOBS"
done

echo "=== [tsan] telemetry + scheduler focused re-run ==="
ctest --preset tsan -j "$JOBS" -R \
  'Counter|Gauge|Histogram|MetricsRegistry|TraceRecorder|EngineTelemetry|ThreadPool|HttpExporter|Audit|Prometheus|TaskGraph|Scheduler|FlightDeck|Profiler|Activity|Stall|SnapshotCollector|WindowedQuantile|Timeline|Slo'

echo "=== [default] telemetry outputs + perf smoke ==="
cmake -B build -S . -DLANDMARK_WERROR=ON >/dev/null
cmake --build build -j "$JOBS" --target landmark_cli query_stage_bench http_probe
(cd build && ctest -L perf_smoke --output-on-failure)
TELEMETRY_TMP="$(mktemp -d)"
trap 'rm -rf "$TELEMETRY_TMP"' EXIT
./build/tools/landmark_cli telemetry-demo --records 8 \
  --trace-out="$TELEMETRY_TMP/trace.json" \
  --metrics-out="$TELEMETRY_TMP/metrics.json" \
  --audit-out="$TELEMETRY_TMP/audit.jsonl" \
  --profile-out="$TELEMETRY_TMP/profile.folded" \
  --timeline-out="$TELEMETRY_TMP/timeline.jsonl" \
  --timeline-period 0.05 >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/validate_trace.py \
    "$TELEMETRY_TMP/trace.json" "$TELEMETRY_TMP/metrics.json" \
    --audit "$TELEMETRY_TMP/audit.jsonl" \
    --profile "$TELEMETRY_TMP/profile.folded" \
    --timeline "$TELEMETRY_TMP/timeline.jsonl"
  if [ -f BENCH_6.json ] && [ -f BENCH_7.json ]; then
    # Warn-only: trajectory files may come from different machines.
    python3 scripts/bench_diff.py BENCH_6.json BENCH_7.json || \
      echo "bench_diff: regression reported above (warn-only)"
  fi
else
  echo "python3 not found; skipped trace/metrics validation"
fi

# Deadlock-debug stage: a dedicated (non-sanitized) build with the runtime
# lock-order detector on. The asan-ubsan preset above already runs the full
# suite with the detector; this stage runs fast and in isolation so a
# lock-discipline failure is attributable without sanitizer noise, then
# proves the detector only observes: `landmark_cli explain` output must be
# byte-identical between the default build and the instrumented one.
echo "=== [deadlock-debug] build (runtime lock-order detector ON) ==="
cmake -B build-deadlock -S . -DLANDMARK_WERROR=ON \
  -DLANDMARK_DEADLOCK_DEBUG=ON >/dev/null
cmake --build build-deadlock -j "$JOBS"
echo "=== [deadlock-debug] death tests + engine/telemetry suites ==="
(cd build-deadlock && ctest --output-on-failure -j "$JOBS" -R \
  'DeadlockDebug|ThreadPool|TaskGraph|Scheduler|Engine|HttpExporter|FlightDeck|Profiler|Stall|Audit')
echo "=== [deadlock-debug] explanations bit-identical with detection on ==="
./build/tools/landmark_cli explain --dataset S-BR --pair 7 \
  --technique double >"$TELEMETRY_TMP/explain_detector_off.txt"
./build-deadlock/tools/landmark_cli explain --dataset S-BR --pair 7 \
  --technique double >"$TELEMETRY_TMP/explain_detector_on.txt"
cmp "$TELEMETRY_TMP/explain_detector_off.txt" \
  "$TELEMETRY_TMP/explain_detector_on.txt"
# Audit unit lines are deterministic too (the "batch" trailer carries wall
# times, so it is excluded).
./build/tools/landmark_cli telemetry-demo --records 8 \
  --audit-out="$TELEMETRY_TMP/audit_detector_off.jsonl" >/dev/null
./build-deadlock/tools/landmark_cli telemetry-demo --records 8 \
  --audit-out="$TELEMETRY_TMP/audit_detector_on.jsonl" >/dev/null
cmp <(grep '"type":"unit"' "$TELEMETRY_TMP/audit_detector_off.jsonl") \
  <(grep '"type":"unit"' "$TELEMETRY_TMP/audit_detector_on.jsonl")
echo "deadlock-debug: detector is observation-only (outputs identical)"

# SIMD equivalence stage: the vectorized kernels must be bit-identical to
# their scalar twins end to end, so `landmark_cli explain` output and the
# audit unit lines must not change under `--no-simd` — checked on the
# default build and again under asan-ubsan, where a lane overrun or
# misaligned load in a kernel would trip the sanitizer.
simd_equivalence() {
  local bindir="$1" tag="$2"
  "$bindir/tools/landmark_cli" explain --dataset S-BR --pair 7 \
    --technique double >"$TELEMETRY_TMP/explain_simd_on_$tag.txt"
  "$bindir/tools/landmark_cli" explain --dataset S-BR --pair 7 \
    --technique double --no-simd >"$TELEMETRY_TMP/explain_simd_off_$tag.txt"
  cmp "$TELEMETRY_TMP/explain_simd_on_$tag.txt" \
    "$TELEMETRY_TMP/explain_simd_off_$tag.txt"
  "$bindir/tools/landmark_cli" telemetry-demo --records 8 \
    --audit-out="$TELEMETRY_TMP/audit_simd_on_$tag.jsonl" >/dev/null
  "$bindir/tools/landmark_cli" telemetry-demo --records 8 --no-simd \
    --audit-out="$TELEMETRY_TMP/audit_simd_off_$tag.jsonl" >/dev/null
  cmp <(grep '"type":"unit"' "$TELEMETRY_TMP/audit_simd_on_$tag.jsonl") \
    <(grep '"type":"unit"' "$TELEMETRY_TMP/audit_simd_off_$tag.jsonl")
  echo "simd equivalence [$tag]: scalar and vectorized outputs identical"
}

echo "=== simd equivalence [default] ==="
simd_equivalence build default
echo "=== simd equivalence [asan-ubsan] ==="
simd_equivalence build-asan-ubsan asan-ubsan

# Exporter smoke: background a tiny batch that serves /metrics on an
# ephemeral port and lingers, poll the announced port until the finished
# batch's explain/quality histograms appear in the exposition, check
# /healthz, then take the process down.
exporter_smoke() {
  local bindir="$1" tag="$2"
  local log="$TELEMETRY_TMP/exporter_$tag.log"
  "$bindir/tools/landmark_cli" telemetry-demo --records 4 --samples 32 \
    --scale 0.25 --metrics-port 0 --metrics-linger 300 >"$log" 2>&1 &
  local pid=$!
  local port=""
  for _ in $(seq 1 600); do
    port="$(sed -n 's#.*http://127\.0\.0\.1:\([0-9]*\)/metrics.*#\1#p' \
      "$log" | head -n 1)"
    [ -n "$port" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "exporter smoke [$tag]: process exited before announcing a port"
      cat "$log"
      return 1
    fi
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "exporter smoke [$tag]: no port announced"
    kill "$pid" 2>/dev/null || true
    return 1
  fi
  local scraped=""
  for _ in $(seq 1 600); do
    if "$bindir/tools/http_probe" "$port" /metrics \
        --expect-substring landmark_explain_quality_match_fraction_count \
        >"$TELEMETRY_TMP/metrics_$tag.prom" 2>/dev/null; then
      scraped=1
      break
    fi
    sleep 0.2
  done
  if [ -z "$scraped" ]; then
    echo "exporter smoke [$tag]: /metrics never showed explain/quality"
    kill "$pid" 2>/dev/null || true
    return 1
  fi
  test -s "$TELEMETRY_TMP/metrics_$tag.prom"
  "$bindir/tools/http_probe" "$port" /healthz --expect-substring ok \
    >/dev/null
  "$bindir/tools/http_probe" "$port" /statusz \
    --expect-substring engine/batches >/dev/null
  kill "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  echo "exporter smoke [$tag]: ok (port $port)"
}

echo "=== exporter smoke [default] ==="
exporter_smoke build default
echo "=== exporter smoke [tsan] ==="
exporter_smoke build-tsan tsan

# Timeline smoke: same backgrounded-batch pattern, with the snapshot
# collector ticking fast and an SLO policy registered. The lingering
# process must serve the windowed time series on /timelinez (text + JSON),
# the burn-rate table on /sloz, and the OpenMetrics exposition (with the
# mandatory `# EOF` trailer) behind Accept negotiation on /metrics.
timeline_smoke() {
  local bindir="$1" tag="$2"
  local log="$TELEMETRY_TMP/timeline_$tag.log"
  "$bindir/tools/landmark_cli" telemetry-demo --records 4 --samples 32 \
    --scale 0.25 --metrics-port 0 --metrics-linger 300 \
    --timeline-period 0.05 \
    --slo "unit_q=engine/unit/query_seconds,p95<0.5,window=300" \
    >"$log" 2>&1 &
  local pid=$!
  local port=""
  for _ in $(seq 1 600); do
    port="$(sed -n 's#.*http://127\.0\.0\.1:\([0-9]*\)/metrics.*#\1#p' \
      "$log" | head -n 1)"
    [ -n "$port" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "timeline smoke [$tag]: process exited before announcing a port"
      cat "$log"
      return 1
    fi
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "timeline smoke [$tag]: no port announced"
    kill "$pid" 2>/dev/null || true
    return 1
  fi
  local scraped=""
  for _ in $(seq 1 600); do
    if "$bindir/tools/http_probe" "$port" '/timelinez?format=json' \
        --expect-substring '"windows":[' \
        >"$TELEMETRY_TMP/timelinez_$tag.json" 2>/dev/null; then
      scraped=1
      break
    fi
    sleep 0.2
  done
  if [ -z "$scraped" ]; then
    echo "timeline smoke [$tag]: /timelinez never served a window"
    kill "$pid" 2>/dev/null || true
    return 1
  fi
  "$bindir/tools/http_probe" "$port" /timelinez \
    --expect-substring "landmark timeline" >/dev/null
  "$bindir/tools/http_probe" "$port" /sloz \
    --expect-substring burn_rate >/dev/null
  "$bindir/tools/http_probe" "$port" '/sloz?format=json' \
    --expect-substring '"burn_rate":' >/dev/null
  "$bindir/tools/http_probe" "$port" /metrics \
    --accept application/openmetrics-text \
    --expect-substring "# EOF" \
    >"$TELEMETRY_TMP/openmetrics_$tag.prom"
  kill "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  echo "timeline smoke [$tag]: ok (port $port)"
}

echo "=== timeline smoke [default] ==="
timeline_smoke build default
echo "=== timeline smoke [tsan] ==="
timeline_smoke build-tsan tsan

echo "All sanitizer checks passed."
