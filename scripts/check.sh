#!/usr/bin/env bash
# Pre-merge gate: static analysis first, then the sanitizer matrix with the
# full test suite under each configuration. Every build here runs with
# LANDMARK_WERROR=ON, so a new compiler warning fails the gate:
#
#   lint        scripts/lint.sh — landmark_lint over the whole tree
#               (determinism / concurrency / telemetry / hygiene contracts)
#               plus clang-tidy where available
#   asan-ubsan  memory errors + undefined behaviour
#   tsan        data races in the staged pipeline and the telemetry hot
#               paths (sharded counters, trace rings, the pool gauges); an
#               explicit second pass re-runs the telemetry-focused tests so
#               a race there fails loudly even when triaging the full run
#
# After the sanitizer matrix, a default (non-sanitized) landmark_cli runs
# `telemetry-demo --trace-out --metrics-out` and the outputs are checked by
# scripts/validate_trace.py (stdlib Python; skipped when python3 is absent),
# and the perf_smoke ctest label smoke-runs the query-stage benchmark
# (scripts/run_bench.sh is the full driver).
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

scripts/lint.sh "$JOBS"

for preset in asan-ubsan tsan; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset" -DLANDMARK_WERROR=ON
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] test ==="
  ctest --preset "$preset" -j "$JOBS"
done

echo "=== [tsan] telemetry-focused re-run ==="
ctest --preset tsan -j "$JOBS" -R \
  'Counter|Gauge|Histogram|MetricsRegistry|TraceRecorder|EngineTelemetry|ThreadPool'

echo "=== [default] telemetry outputs + perf smoke ==="
cmake -B build -S . -DLANDMARK_WERROR=ON >/dev/null
cmake --build build -j "$JOBS" --target landmark_cli query_stage_bench
(cd build && ctest -L perf_smoke --output-on-failure)
TELEMETRY_TMP="$(mktemp -d)"
trap 'rm -rf "$TELEMETRY_TMP"' EXIT
./build/tools/landmark_cli telemetry-demo --records 8 \
  --trace-out="$TELEMETRY_TMP/trace.json" \
  --metrics-out="$TELEMETRY_TMP/metrics.json" >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/validate_trace.py \
    "$TELEMETRY_TMP/trace.json" "$TELEMETRY_TMP/metrics.json"
else
  echo "python3 not found; skipped trace/metrics validation"
fi

echo "All sanitizer checks passed."
