#!/usr/bin/env bash
# Builds the sanitizer configurations and runs the full test suite under
# each. This is the pre-merge gate for changes that touch the ExplainerEngine
# or anything else that runs on the thread pool:
#
#   asan-ubsan  memory errors + undefined behaviour
#   tsan        data races in the staged pipeline (run the engine tests with
#               --threads > 1 paths; the determinism tests exercise them)
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

for preset in asan-ubsan tsan; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] test ==="
  ctest --preset "$preset" -j "$JOBS"
done

echo "All sanitizer checks passed."
