// Regenerates the paper's threshold discussion (§4.2.1 and §4.3: "If we
// pushed the decision threshold to 0.4 (instead of 0.5), Landmark
// Explanation would obtain a better performance than LIME/Mojito drop in
// 10/12 datasets") as a full series: token-eval accuracy and interest as a
// function of the decision threshold, per technique.
//
// Run:  ./threshold_sweep [--dataset S-AG] [--records 40] [--scale F]
//                         [--threads N] [--no-predict-cache]

#include <iostream>

#include "eval/experiment.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/telemetry/telemetry.h"

namespace {

using namespace landmark;  // NOLINT

int Run(const Flags& flags, AuditSink* audit_sink) {
  ExperimentConfig config = ExperimentConfig::FromFlags(flags);
  config.engine_options.audit_sink = audit_sink;
  config.records_per_label = static_cast<size_t>(flags.GetInt("records", 40));
  MagellanDatasetSpec spec =
      FindMagellanSpec(flags.GetString("dataset", "S-AG")).ValueOrDie();
  auto context = ExperimentContext::Create(spec, config).ValueOrDie();
  ExplainerEngine engine = config.MakeEngine();
  const double thresholds[] = {0.3, 0.4, 0.5, 0.6, 0.7};

  std::vector<Technique> techniques = MakeTechniques(config.explainer_options);

  std::cout << "Decision-threshold series on " << spec.code
            << " (paper discusses 0.4 vs 0.5)\n\n";
  for (MatchLabel label : {MatchLabel::kMatch, MatchLabel::kNonMatch}) {
    std::cout << "--- "
              << (label == MatchLabel::kMatch ? "matching" : "non-matching")
              << " records: token-eval accuracy / interest per threshold ---\n";
    TablePrinter table({"technique", "t=0.3", "t=0.4", "t=0.5", "t=0.6",
                        "t=0.7"});
    for (const Technique& technique : techniques) {
      if (technique.non_match_only && label == MatchLabel::kMatch) continue;
      ExplainBatchResult batch =
          ExplainRecords(context.model(), *technique.explainer,
                         context.dataset(), context.sample(label), engine);
      std::vector<std::string> acc_row{technique.label + " acc"};
      std::vector<std::string> interest_row{technique.label + " interest"};
      for (double threshold : thresholds) {
        TokenRemovalOptions token_options = config.token_removal;
        token_options.decision_threshold = threshold;
        auto token =
            EvaluateTokenRemoval(context.model(), *technique.explainer,
                                 context.dataset(), batch.records,
                                 token_options)
                .ValueOrDie();
        InterestOptions interest_options;
        interest_options.decision_threshold = threshold;
        auto interest =
            EvaluateInterest(context.model(), *technique.explainer,
                             context.dataset(), batch.records, label,
                             interest_options)
                .ValueOrDie();
        acc_row.push_back(FormatDouble(token.accuracy, 3));
        interest_row.push_back(FormatDouble(interest.interest, 3));
      }
      table.AddRow(std::move(acc_row));
      table.AddRow(std::move(interest_row));
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = landmark::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status().ToString() << "\n";
    return 1;
  }
  landmark::TelemetryScope telemetry =
      landmark::TelemetryScope::FromFlags(*flags);
  return Run(*flags, telemetry.audit_sink());
}
