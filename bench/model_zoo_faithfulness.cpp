// Extension experiment: model-agnosticism, quantified. The same four
// explanation techniques are applied to three very different EM models —
// logistic regression over similarity features, a random forest, and the
// neural hash-embedding matcher — and scored with the deletion-curve
// faithfulness metric (lower AUC = more faithful token ranking; "random"
// column is the uninformed-deletion reference).
//
// Run:  ./model_zoo_faithfulness [--dataset S-AG] [--records 30]
//                                [--samples N] [--scale F]
//                                [--threads N] [--no-predict-cache]

#include <iostream>

#include "em/embedding_em_model.h"
#include "em/forest_em_model.h"
#include "eval/deletion_curve.h"
#include "eval/experiment.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/telemetry/telemetry.h"

namespace {

using namespace landmark;  // NOLINT

int Run(const Flags& flags) {
  const std::string code = flags.GetString("dataset", "S-AG");
  const size_t records = static_cast<size_t>(flags.GetInt("records", 30));
  ExplainerOptions explainer_options;
  explainer_options.num_samples =
      static_cast<size_t>(flags.GetInt("samples", 256));
  EngineOptions engine_options;
  engine_options.num_threads =
      static_cast<size_t>(flags.GetInt("threads", 1));
  engine_options.cache_predictions = !flags.GetBool("no-predict-cache", false);
  engine_options.use_task_graph = !flags.GetBool("no-task-graph", false);
  ExplainerEngine engine(engine_options);

  MagellanDatasetSpec spec = FindMagellanSpec(code).ValueOrDie();
  MagellanGenOptions gen;
  gen.size_scale = flags.GetDouble("scale", 0.5);
  EmDataset dataset = GenerateMagellanDataset(spec, gen).ValueOrDie();

  struct ZooEntry {
    std::string label;
    std::unique_ptr<EmModel> model;
    double f1;
  };
  std::vector<ZooEntry> zoo;
  {
    auto m = std::move(LogRegEmModel::Train(dataset)).ValueOrDie();
    const double f1 = m->report().f1;
    zoo.push_back({"logreg", std::move(m), f1});
  }
  {
    auto m = std::move(ForestEmModel::Train(dataset)).ValueOrDie();
    const double f1 = m->report().f1;
    zoo.push_back({"forest", std::move(m), f1});
  }
  {
    auto m = std::move(EmbeddingEmModel::Train(dataset)).ValueOrDie();
    const double f1 = m->report().f1;
    zoo.push_back({"embedding-mlp", std::move(m), f1});
  }

  Rng rng(21);
  std::vector<size_t> sample;
  for (MatchLabel label : {MatchLabel::kMatch, MatchLabel::kNonMatch}) {
    for (size_t idx : dataset.SampleByLabel(label, records / 2, rng)) {
      sample.push_back(idx);
    }
  }

  std::cout << "Deletion-curve faithfulness on " << code
            << " (lower AUC = better token ranking; random = reference)\n\n";
  TablePrinter table({"model", "F1", "technique", "AUC", "random AUC"});
  for (const ZooEntry& entry : zoo) {
    std::vector<Technique> techniques = MakeTechniques(explainer_options);
    for (const Technique& technique : techniques) {
      if (technique.non_match_only) continue;  // keep the table compact
      ExplainBatchResult batch = ExplainRecords(
          *entry.model, *technique.explainer, dataset, sample, engine);
      auto curve = EvaluateDeletionCurve(*entry.model, *technique.explainer,
                                         dataset, batch.records);
      if (!curve.ok()) {
        std::cerr << curve.status().ToString() << "\n";
        return 1;
      }
      table.AddRow({entry.label, FormatDouble(entry.f1, 3), technique.label,
                    FormatDouble(curve->auc, 3),
                    FormatDouble(curve->random_auc, 3)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nEvery technique beats its random reference on every model: "
               "the framework is model-agnostic in practice, not just by "
               "interface.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = landmark::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status().ToString() << "\n";
    return 1;
  }
  landmark::TelemetryScope telemetry =
      landmark::TelemetryScope::FromFlags(*flags);
  return Run(*flags);
}
