// Regenerates the paper's Table 3 (attribute-based evaluation): the weighted
// Kendall tau correlation between the attribute ranking induced by the EM
// model's own coefficients and the ranking induced by each technique's
// surrogate token weights.
//
// Run:  ./table3_attribute_eval [--records N] [--samples N] [--scale F]
//                               [--datasets S-BR,...]
//                               [--threads N] [--no-predict-cache]

#include <iostream>

#include "eval/experiment.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/telemetry/telemetry.h"
#include "util/timer.h"

namespace {

using namespace landmark;  // NOLINT

int RunTable3(const Flags& flags, AuditSink* audit_sink) {
  ExperimentConfig config = ExperimentConfig::FromFlags(flags);
  config.engine_options.audit_sink = audit_sink;
  std::vector<MagellanDatasetSpec> specs = SelectSpecs(flags);
  ExplainerEngine engine = config.MakeEngine();

  struct Row {
    std::string code;
    double tau[4] = {0, 0, 0, 0};  // Single, Double, LIME, Copy
  };
  std::vector<Row> match_rows, non_match_rows;

  Histogram& dataset_seconds =
      MetricsRegistry::Global().GetHistogram("bench/dataset_seconds");
  double total_seconds = 0.0;
  for (const MagellanDatasetSpec& spec : specs) {
    double elapsed = 0.0;
    ScopedTimer dataset_timer(&dataset_seconds, &elapsed);
    auto context = ExperimentContext::Create(spec, config);
    if (!context.ok()) {
      std::cerr << spec.code << ": " << context.status().ToString() << "\n";
      return 1;
    }
    std::vector<Technique> techniques =
        MakeTechniques(config.explainer_options);

    for (MatchLabel label : {MatchLabel::kMatch, MatchLabel::kNonMatch}) {
      Row row;
      row.code = spec.code;
      for (size_t t = 0; t < techniques.size(); ++t) {
        if (techniques[t].non_match_only && label == MatchLabel::kMatch) {
          continue;
        }
        ExplainBatchResult batch =
            ExplainRecords(context->model(), *techniques[t].explainer,
                           context->dataset(), context->sample(label), engine);
        auto eval = EvaluateAttributeCorrelation(
            context->model(), context->dataset(), batch.records);
        if (!eval.ok()) {
          std::cerr << spec.code << "/" << techniques[t].label << ": "
                    << eval.status().ToString() << "\n";
          return 1;
        }
        row.tau[t] = eval->mean_weighted_tau;
      }
      (label == MatchLabel::kMatch ? match_rows : non_match_rows)
          .push_back(row);
    }
    dataset_timer.Stop();
    total_seconds += elapsed;
    std::cerr << "[table3] " << spec.code << " done ("
              << FormatDouble(elapsed, 1) << "s, "
              << FormatDouble(total_seconds, 1) << "s elapsed)\n";
  }

  std::cout << "Table 3(a): attribute-based evaluation (weighted Kendall "
               "tau), matching label\n";
  TablePrinter ta({"", "Single", "Double", "LIME"});
  for (const auto& r : match_rows) {
    ta.AddRow(r.code, {r.tau[0], r.tau[1], r.tau[2]});
  }
  ta.Print(std::cout);

  std::cout << "\nTable 3(b): attribute-based evaluation (weighted Kendall "
               "tau), non-matching label\n";
  TablePrinter tb({"", "Single", "Double", "LIME", "Mojito Copy"});
  for (const auto& r : non_match_rows) {
    tb.AddRow(r.code, {r.tau[0], r.tau[1], r.tau[2], r.tau[3]});
  }
  tb.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = landmark::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status().ToString() << "\n";
    return 1;
  }
  landmark::TelemetryScope telemetry =
      landmark::TelemetryScope::FromFlags(*flags);
  return RunTable3(*flags, telemetry.audit_sink());
}
