// Query-stage microbenchmark: per-stage wall times of the staged
// ExplainerEngine on the perf_explainers workload (S-AG products, logreg EM
// model, landmark-single explainer), emitted as a single JSON document so
// scripts/run_bench.sh can track the repo's perf trajectory over time
// (BENCH_query.json; committed baselines live in bench/baselines/).
//
// Unlike perf_explainers (google-benchmark, per-op latencies) this binary
// reports the engine's own EngineStats per stage, which is what the
// query-stage optimisations target: the model-query stage dominates the
// pipeline (PAPER.md / LEMON both call this out), so its seconds are the
// number a perf PR must move.
//
// Flags: --records N --samples N --reps N --threads N --scale F
//        --json-out FILE (default: stdout)
//        --canonical-out FILE (cross-PR benchmark trajectory schema:
//        benchmark name -> wall ns + records/second; scripts/run_bench.sh
//        writes it to the repo root as BENCH_5.json)

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine/explainer_engine.h"
#include "core/landmark_explainer.h"
#include "datagen/magellan.h"
#include "em/logreg_em_model.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace landmark {
namespace {

/// Per-stage minima over the benchmark repetitions (min is the stable
/// estimator for wall-clock microbenchmarks: noise is strictly additive).
struct StageTimes {
  double plan = 0.0;
  double reconstruct = 0.0;
  double query = 0.0;
  double fit = 0.0;
  double total = 0.0;

  static StageTimes MinOf(const std::vector<EngineStats>& reps) {
    StageTimes out;
    out.plan = out.reconstruct = out.query = out.fit = out.total = 1e300;
    for (const EngineStats& s : reps) {
      out.plan = std::min(out.plan, s.plan_seconds);
      out.reconstruct = std::min(out.reconstruct, s.reconstruct_seconds);
      out.query = std::min(out.query, s.query_seconds);
      out.fit = std::min(out.fit, s.fit_seconds);
      out.total = std::min(out.total, s.total_seconds());
    }
    return out;
  }

  std::string ToJson() const {
    std::string out = "{";
    out += "\"plan_seconds\": " + FormatDouble(plan, 6);
    out += ", \"reconstruct_seconds\": " + FormatDouble(reconstruct, 6);
    out += ", \"query_seconds\": " + FormatDouble(query, 6);
    out += ", \"fit_seconds\": " + FormatDouble(fit, 6);
    out += ", \"total_seconds\": " + FormatDouble(total, 6);
    out += "}";
    return out;
  }
};

int Run(int argc, char** argv) {
  Result<Flags> parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    LANDMARK_LOG(Error) << "bad flags: " << parsed.status().ToString();
    return 1;
  }
  const Flags& flags = *parsed;
  const size_t records = static_cast<size_t>(flags.GetInt("records", 16));
  const size_t samples = static_cast<size_t>(flags.GetInt("samples", 128));
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 5));
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 1));
  const double scale = flags.GetDouble("scale", 0.25);
  const std::string json_out = flags.GetString("json-out", "");
  const std::string canonical_out = flags.GetString("canonical-out", "");

  MagellanGenOptions gen;
  gen.size_scale = scale;
  Result<EmDataset> dataset =
      GenerateMagellanDataset(*FindMagellanSpec("S-AG"), gen);
  if (!dataset.ok()) {
    LANDMARK_LOG(Error) << "dataset generation failed: "
                        << dataset.status().ToString();
    return 1;
  }
  Result<std::unique_ptr<LogRegEmModel>> model = LogRegEmModel::Train(*dataset);
  if (!model.ok()) {
    LANDMARK_LOG(Error) << "model training failed: "
                        << model.status().ToString();
    return 1;
  }

  ExplainerOptions explainer_options;
  explainer_options.num_samples = samples;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, explainer_options);
  std::vector<const PairRecord*> batch;
  for (size_t i = 0; i < records && i < dataset->size(); ++i) {
    batch.push_back(&dataset->pair(i));
  }

  EngineStats last_stats;
  auto measure = [&](const EngineOptions& engine_options) {
    ExplainerEngine engine(engine_options);
    std::vector<EngineStats> stats;
    // One untimed warm-up run per configuration (page-in, allocator state).
    (void)engine.ExplainBatch(**model, batch, explainer);
    for (size_t r = 0; r < reps; ++r) {
      EngineBatchResult result = engine.ExplainBatch(**model, batch, explainer);
      stats.push_back(result.stats);
      last_stats = result.stats;
    }
    return StageTimes::MinOf(stats);
  };

  EngineOptions string_options;
  string_options.num_threads = threads;
  string_options.cache_features = false;
  const StageTimes string_path = measure(string_options);

  EngineOptions fast_options;
  fast_options.num_threads = threads;
  fast_options.cache_features = true;
  const StageTimes fast_path = measure(fast_options);
  const EngineStats fast_stats = last_stats;

  const double query_speedup =
      fast_path.query > 0.0 ? string_path.query / fast_path.query : 0.0;
  const double total_speedup =
      fast_path.total > 0.0 ? string_path.total / fast_path.total : 0.0;

  std::string json = "{\n";
  json += "  \"workload\": {\"dataset\": \"S-AG\", \"size_scale\": " +
          FormatDouble(scale, 2) + ", \"model\": \"logreg-em\", " +
          "\"explainer\": \"landmark-single\", \"records\": " +
          std::to_string(batch.size()) + ", \"num_samples\": " +
          std::to_string(samples) + ", \"threads\": " +
          std::to_string(threads) + ", \"reps\": " + std::to_string(reps) +
          "},\n";
  json += "  \"string_path\": " + string_path.ToJson() + ",\n";
  json += "  \"fast_path\": " + fast_path.ToJson() + ",\n";
  json += "  \"token_cache\": {\"hits\": " +
          std::to_string(fast_stats.token_cache_hits) + ", \"misses\": " +
          std::to_string(fast_stats.token_cache_misses) + "},\n";
  json += "  \"query_speedup\": " + FormatDouble(query_speedup, 3) + ",\n";
  json += "  \"total_speedup\": " + FormatDouble(total_speedup, 3) + "\n";
  json += "}\n";

  if (json_out.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      LANDMARK_LOG(Error) << "cannot open " << json_out;
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    LANDMARK_LOG(Info) << "wrote " << json_out;
  }

  if (!canonical_out.empty()) {
    // Canonical cross-PR schema: one entry per benchmark, wall time in
    // nanoseconds plus throughput in explained records per second, so the
    // repo-root BENCH_<n>.json trajectory is comparable across PRs without
    // knowing each benchmark's bespoke layout.
    auto entry = [&](const std::string& name, double wall_seconds) {
      const double throughput =
          wall_seconds > 0.0 ? static_cast<double>(batch.size()) / wall_seconds
                             : 0.0;
      return "    \"" + name + "\": {\"wall_ns\": " +
             std::to_string(static_cast<long long>(wall_seconds * 1e9)) +
             ", \"throughput\": " + FormatDouble(throughput, 3) + "}";
    };
    std::string canonical = "{\n";
    canonical += "  \"schema\": \"landmark-bench-v1\",\n";
    canonical += "  \"unit\": {\"wall_ns\": \"nanoseconds\", "
                 "\"throughput\": \"records/second\"},\n";
    canonical += "  \"benchmarks\": {\n";
    canonical +=
        entry("query_stage/string_path", string_path.total) + ",\n";
    canonical += entry("query_stage/fast_path", fast_path.total) + "\n";
    canonical += "  }\n}\n";
    std::FILE* f = std::fopen(canonical_out.c_str(), "w");
    if (f == nullptr) {
      LANDMARK_LOG(Error) << "cannot open " << canonical_out;
      return 1;
    }
    std::fputs(canonical.c_str(), f);
    std::fclose(f);
    LANDMARK_LOG(Info) << "wrote " << canonical_out;
  }
  return 0;
}

}  // namespace
}  // namespace landmark

int main(int argc, char** argv) { return landmark::Run(argc, argv); }
