// Engine microbenchmarks emitted as a single JSON document so
// scripts/run_bench.sh can track the repo's perf trajectory over time
// (committed baselines live in bench/baselines/). Two modes:
//
//   --mode fastpath (default) — per-stage times of the engine on the
//     perf_explainers workload (S-AG products, logreg EM model,
//     landmark-single explainer), string path vs the cache_features fast
//     path (BENCH_query.json / canonical BENCH_5.json).
//   --mode scheduler — end-to-end wall time of the legacy barriered stage
//     loops (--no-task-graph) vs the per-unit task-graph scheduler on a
//     multi-thread heterogeneous-unit workload (landmark-double, records
//     sorted heavy-first so static partitioning is adversarial); the
//     "scheduler_speedup" ratio is the number a scheduling PR must move
//     (canonical BENCH_6.json). The ratio is only meaningful on multi-core
//     hardware — with one core both paths serialize the same CPU work and
//     the ratio degenerates to ~1.0, which is why the JSON records
//     "hardware_concurrency" next to it.
//   --mode flightdeck — end-to-end wall time of the task-graph scheduler on
//     the scheduler workload with the flight deck idle vs fully armed
//     (sampling profiler running, stall watchdog enabled, one /statusz JSON
//     render per repetition). "deck_overhead" is the on/off wall ratio a
//     telemetry PR must keep near 1.0; the canonical file re-emits
//     scheduler/task_graph so the BENCH_6 -> BENCH_7 trajectory stays
//     comparable (canonical BENCH_7.json).
//   --mode timeline — end-to-end wall time of the task-graph scheduler on
//     the scheduler workload with the snapshot collector idle vs armed at
//     its production cadence (1 s windows, an SLO policy registered, one
//     /timelinez JSON render per repetition). "timeline_overhead" is the
//     on/off wall ratio a time-series PR must keep near 1.0 (< 1.02 is the
//     acceptance bar); the canonical file re-emits scheduler/task_graph so
//     the BENCH_7 -> BENCH_9 trajectory stays comparable (canonical
//     BENCH_9.json).
//   --mode simd — A/B of the scalar vs vectorized kernel variants
//     (EngineOptions::simd, CLI --no-simd) on the landmark-double workload:
//     end-to-end engine stage times plus per-kernel micro-timings
//     (Levenshtein, token-profile merge, packed surrogate fit). The
//     "simd_speedup" ratio is the number a vectorization PR must move; the
//     JSON records the detected ISA ("simd_isa") next to it because the
//     ratio is meaningless across different vector units (canonical
//     BENCH_8.json).
//   --mode all — every mode, printed to stdout (file flags are ignored).
//
// Unlike perf_explainers (google-benchmark, per-op latencies) this binary
// reports the engine's own EngineStats, which is what the engine
// optimisations target: the model-query stage dominates the pipeline
// (PAPER.md / LEMON both call this out), and the stage barriers it used to
// run between are what the task-graph scheduler removes.
//
// Flags: --mode fastpath|scheduler|flightdeck|timeline|simd|all
//        --records N --samples N --reps N --threads N --scale F
//        (defaults differ per mode; scheduler defaults to 4 threads)
//        --json-out FILE (default: stdout)
//        --canonical-out FILE (cross-PR benchmark trajectory schema:
//        benchmark name -> wall ns + records/second; scripts/run_bench.sh
//        writes BENCH_5.json for fastpath, BENCH_6.json for scheduler,
//        BENCH_7.json for flightdeck, BENCH_8.json for simd,
//        BENCH_9.json for timeline)

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/engine/explainer_engine.h"
#include "core/landmark_explainer.h"
#include "core/sampling.h"
#include "core/surrogate.h"
#include "datagen/magellan.h"
#include "em/logreg_em_model.h"
#include "text/similarity.h"
#include "text/token_cache.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/string_util.h"
#include "util/telemetry/flight_deck.h"
#include "util/telemetry/slo.h"
#include "util/telemetry/timeseries.h"
#include "util/timer.h"

namespace landmark {
namespace {

/// Per-stage minima over the benchmark repetitions (min is the stable
/// estimator for wall-clock microbenchmarks: noise is strictly additive).
struct StageTimes {
  double plan = 0.0;
  double reconstruct = 0.0;
  double query = 0.0;
  double fit = 0.0;
  double total = 0.0;

  static StageTimes MinOf(const std::vector<EngineStats>& reps) {
    StageTimes out;
    out.plan = out.reconstruct = out.query = out.fit = out.total = 1e300;
    for (const EngineStats& s : reps) {
      out.plan = std::min(out.plan, s.plan_seconds);
      out.reconstruct = std::min(out.reconstruct, s.reconstruct_seconds);
      out.query = std::min(out.query, s.query_seconds);
      out.fit = std::min(out.fit, s.fit_seconds);
      out.total = std::min(out.total, s.total_seconds());
    }
    return out;
  }

  std::string ToJson() const {
    std::string out = "{";
    out += "\"plan_seconds\": " + FormatDouble(plan, 6);
    out += ", \"reconstruct_seconds\": " + FormatDouble(reconstruct, 6);
    out += ", \"query_seconds\": " + FormatDouble(query, 6);
    out += ", \"fit_seconds\": " + FormatDouble(fit, 6);
    out += ", \"total_seconds\": " + FormatDouble(total, 6);
    out += "}";
    return out;
  }
};

/// Writes `content` to `path`, or to stdout when `path` is empty (or when
/// `to_stdout` forces it, as in --mode all). Returns false on open failure.
bool EmitJson(const std::string& path, bool to_stdout,
              const std::string& content) {
  if (path.empty() || to_stdout) {
    std::fputs(content.c_str(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    LANDMARK_LOG(Error) << "cannot open " << path;
    return false;
  }
  std::fputs(content.c_str(), f);
  std::fclose(f);
  LANDMARK_LOG(Info) << "wrote " << path;
  return true;
}

/// One canonical cross-PR schema entry: wall time in nanoseconds plus
/// throughput in explained records per second, so the repo-root
/// BENCH_<n>.json trajectory is comparable across PRs without knowing each
/// benchmark's bespoke layout.
std::string CanonicalEntry(const std::string& name, double wall_seconds,
                           size_t records) {
  const double throughput =
      wall_seconds > 0.0 ? static_cast<double>(records) / wall_seconds : 0.0;
  return "    \"" + name + "\": {\"wall_ns\": " +
         std::to_string(static_cast<long long>(wall_seconds * 1e9)) +
         ", \"throughput\": " + FormatDouble(throughput, 3) + "}";
}

int RunFastpath(const Flags& flags, bool to_stdout) {
  const size_t records = static_cast<size_t>(flags.GetInt("records", 16));
  const size_t samples = static_cast<size_t>(flags.GetInt("samples", 128));
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 5));
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 1));
  const double scale = flags.GetDouble("scale", 0.25);
  const std::string json_out = flags.GetString("json-out", "");
  const std::string canonical_out = flags.GetString("canonical-out", "");

  MagellanGenOptions gen;
  gen.size_scale = scale;
  Result<EmDataset> dataset =
      GenerateMagellanDataset(*FindMagellanSpec("S-AG"), gen);
  if (!dataset.ok()) {
    LANDMARK_LOG(Error) << "dataset generation failed: "
                        << dataset.status().ToString();
    return 1;
  }
  Result<std::unique_ptr<LogRegEmModel>> model = LogRegEmModel::Train(*dataset);
  if (!model.ok()) {
    LANDMARK_LOG(Error) << "model training failed: "
                        << model.status().ToString();
    return 1;
  }

  ExplainerOptions explainer_options;
  explainer_options.num_samples = samples;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, explainer_options);
  std::vector<const PairRecord*> batch;
  for (size_t i = 0; i < records && i < dataset->size(); ++i) {
    batch.push_back(&dataset->pair(i));
  }

  EngineStats last_stats;
  auto measure = [&](const EngineOptions& engine_options) {
    ExplainerEngine engine(engine_options);
    std::vector<EngineStats> stats;
    // One untimed warm-up run per configuration (page-in, allocator state).
    (void)engine.ExplainBatch(**model, batch, explainer);
    for (size_t r = 0; r < reps; ++r) {
      EngineBatchResult result = engine.ExplainBatch(**model, batch, explainer);
      stats.push_back(result.stats);
      last_stats = result.stats;
    }
    return StageTimes::MinOf(stats);
  };

  EngineOptions string_options;
  string_options.num_threads = threads;
  string_options.cache_features = false;
  const StageTimes string_path = measure(string_options);

  EngineOptions fast_options;
  fast_options.num_threads = threads;
  fast_options.cache_features = true;
  const StageTimes fast_path = measure(fast_options);
  const EngineStats fast_stats = last_stats;

  const double query_speedup =
      fast_path.query > 0.0 ? string_path.query / fast_path.query : 0.0;
  const double total_speedup =
      fast_path.total > 0.0 ? string_path.total / fast_path.total : 0.0;

  std::string json = "{\n";
  json += "  \"workload\": {\"dataset\": \"S-AG\", \"size_scale\": " +
          FormatDouble(scale, 2) + ", \"model\": \"logreg-em\", " +
          "\"explainer\": \"landmark-single\", \"records\": " +
          std::to_string(batch.size()) + ", \"num_samples\": " +
          std::to_string(samples) + ", \"threads\": " +
          std::to_string(threads) + ", \"reps\": " + std::to_string(reps) +
          "},\n";
  json += "  \"string_path\": " + string_path.ToJson() + ",\n";
  json += "  \"fast_path\": " + fast_path.ToJson() + ",\n";
  json += "  \"token_cache\": {\"hits\": " +
          std::to_string(fast_stats.token_cache_hits) + ", \"misses\": " +
          std::to_string(fast_stats.token_cache_misses) + "},\n";
  json += "  \"query_speedup\": " + FormatDouble(query_speedup, 3) + ",\n";
  json += "  \"total_speedup\": " + FormatDouble(total_speedup, 3) + "\n";
  json += "}\n";

  if (!EmitJson(json_out, to_stdout, json)) {
    return 1;
  }

  if (!canonical_out.empty() && !to_stdout) {
    std::string canonical = "{\n";
    canonical += "  \"schema\": \"landmark-bench-v1\",\n";
    canonical += "  \"unit\": {\"wall_ns\": \"nanoseconds\", "
                 "\"throughput\": \"records/second\"},\n";
    canonical += "  \"benchmarks\": {\n";
    canonical += CanonicalEntry("query_stage/string_path", string_path.total,
                                batch.size()) +
                 ",\n";
    canonical += CanonicalEntry("query_stage/fast_path", fast_path.total,
                                batch.size()) +
                 "\n";
    canonical += "  }\n}\n";
    if (!EmitJson(canonical_out, false, canonical)) {
      return 1;
    }
  }
  return 0;
}

int RunScheduler(const Flags& flags, bool to_stdout) {
  const size_t records = static_cast<size_t>(flags.GetInt("records", 24));
  const size_t samples = static_cast<size_t>(flags.GetInt("samples", 256));
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 5));
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 4));
  const double scale = flags.GetDouble("scale", 0.25);
  const std::string json_out = flags.GetString("json-out", "");
  const std::string canonical_out = flags.GetString("canonical-out", "");

  MagellanGenOptions gen;
  gen.size_scale = scale;
  Result<EmDataset> dataset =
      GenerateMagellanDataset(*FindMagellanSpec("S-AG"), gen);
  if (!dataset.ok()) {
    LANDMARK_LOG(Error) << "dataset generation failed: "
                        << dataset.status().ToString();
    return 1;
  }
  Result<std::unique_ptr<LogRegEmModel>> model = LogRegEmModel::Train(*dataset);
  if (!model.ok()) {
    LANDMARK_LOG(Error) << "model training failed: "
                        << model.status().ToString();
    return 1;
  }

  // Heterogeneous-unit workload: landmark-double plans two units per record
  // (one per landmark side), and the batch is sorted heaviest-record-first
  // so the staged path's static contiguous partitioning is maximally
  // imbalanced — exactly the straggler shape the task graph's work stealing
  // exists to absorb.
  ExplainerOptions explainer_options;
  explainer_options.num_samples = samples;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, explainer_options);
  std::vector<const PairRecord*> batch;
  for (size_t i = 0; i < records && i < dataset->size(); ++i) {
    batch.push_back(&dataset->pair(i));
  }
  std::sort(batch.begin(), batch.end(),
            [](const PairRecord* a, const PairRecord* b) {
              const size_t wa = a->ToString().size();
              const size_t wb = b->ToString().size();
              return wa != wb ? wa > wb : a->id < b->id;
            });

  EngineStats last_stats;
  auto measure = [&](bool use_task_graph) {
    EngineOptions engine_options;
    engine_options.num_threads = threads;
    engine_options.use_task_graph = use_task_graph;
    ExplainerEngine engine(engine_options);
    std::vector<EngineStats> stats;
    (void)engine.ExplainBatch(**model, batch, explainer);
    for (size_t r = 0; r < reps; ++r) {
      EngineBatchResult result = engine.ExplainBatch(**model, batch, explainer);
      stats.push_back(result.stats);
      last_stats = result.stats;
    }
    return StageTimes::MinOf(stats);
  };

  const StageTimes staged = measure(false);
  const StageTimes task_graph = measure(true);
  const double critical_path = last_stats.critical_path_seconds;

  // StageTimes::total is EngineStats::total_seconds(), which is batch wall
  // time on both paths — the end-to-end number the barriers gate.
  const double scheduler_speedup =
      task_graph.total > 0.0 ? staged.total / task_graph.total : 0.0;

  std::string json = "{\n";
  json += "  \"workload\": {\"dataset\": \"S-AG\", \"size_scale\": " +
          FormatDouble(scale, 2) + ", \"model\": \"logreg-em\", " +
          "\"explainer\": \"landmark-double\", \"records\": " +
          std::to_string(batch.size()) + ", \"num_samples\": " +
          std::to_string(samples) + ", \"threads\": " +
          std::to_string(threads) + ", \"reps\": " + std::to_string(reps) +
          ", \"order\": \"heaviest-first\", \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + "},\n";
  json += "  \"staged\": " + staged.ToJson() + ",\n";
  json += "  \"task_graph\": " + task_graph.ToJson() + ",\n";
  json += "  \"critical_path_seconds\": " + FormatDouble(critical_path, 6) +
          ",\n";
  json += "  \"scheduler_speedup\": " + FormatDouble(scheduler_speedup, 3) +
          "\n";
  json += "}\n";

  if (!EmitJson(json_out, to_stdout, json)) {
    return 1;
  }

  if (!canonical_out.empty() && !to_stdout) {
    std::string canonical = "{\n";
    canonical += "  \"schema\": \"landmark-bench-v1\",\n";
    canonical += "  \"unit\": {\"wall_ns\": \"nanoseconds\", "
                 "\"throughput\": \"records/second\"},\n";
    canonical += "  \"scheduler_speedup\": " +
                 FormatDouble(scheduler_speedup, 3) + ",\n";
    canonical += "  \"hardware_concurrency\": " +
                 std::to_string(std::thread::hardware_concurrency()) + ",\n";
    canonical += "  \"benchmarks\": {\n";
    canonical +=
        CanonicalEntry("scheduler/staged", staged.total, batch.size()) + ",\n";
    canonical += CanonicalEntry("scheduler/task_graph", task_graph.total,
                                batch.size()) +
                 "\n";
    canonical += "  }\n}\n";
    if (!EmitJson(canonical_out, false, canonical)) {
      return 1;
    }
  }
  return 0;
}

int RunFlightdeck(const Flags& flags, bool to_stdout) {
  const size_t records = static_cast<size_t>(flags.GetInt("records", 24));
  const size_t samples = static_cast<size_t>(flags.GetInt("samples", 256));
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 5));
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 4));
  const double scale = flags.GetDouble("scale", 0.25);
  const std::string json_out = flags.GetString("json-out", "");
  const std::string canonical_out = flags.GetString("canonical-out", "");

  MagellanGenOptions gen;
  gen.size_scale = scale;
  Result<EmDataset> dataset =
      GenerateMagellanDataset(*FindMagellanSpec("S-AG"), gen);
  if (!dataset.ok()) {
    LANDMARK_LOG(Error) << "dataset generation failed: "
                        << dataset.status().ToString();
    return 1;
  }
  Result<std::unique_ptr<LogRegEmModel>> model = LogRegEmModel::Train(*dataset);
  if (!model.ok()) {
    LANDMARK_LOG(Error) << "model training failed: "
                        << model.status().ToString();
    return 1;
  }

  // Same heterogeneous task-graph workload as --mode scheduler, so the
  // "off" run doubles as this PR's scheduler/task_graph trajectory point.
  ExplainerOptions explainer_options;
  explainer_options.num_samples = samples;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, explainer_options);
  std::vector<const PairRecord*> batch;
  for (size_t i = 0; i < records && i < dataset->size(); ++i) {
    batch.push_back(&dataset->pair(i));
  }
  std::sort(batch.begin(), batch.end(),
            [](const PairRecord* a, const PairRecord* b) {
              const size_t wa = a->ToString().size();
              const size_t wb = b->ToString().size();
              return wa != wb ? wa > wb : a->id < b->id;
            });

  auto measure = [&](bool deck_on) {
    EngineOptions engine_options;
    engine_options.num_threads = threads;
    engine_options.use_task_graph = true;
    // A 5s threshold never fires on this microbenchmark, so the "on" run
    // pays the watchdog's scanning cost without any report noise.
    if (deck_on) engine_options.stall_threshold = 5.0;
    ExplainerEngine engine(engine_options);
    if (deck_on) SamplingProfiler::Global().Start();
    std::vector<EngineStats> stats;
    (void)engine.ExplainBatch(**model, batch, explainer);
    for (size_t r = 0; r < reps; ++r) {
      EngineBatchResult result = engine.ExplainBatch(**model, batch, explainer);
      if (deck_on) {
        // One live scrape per repetition: the cost a dashboard poll adds to
        // an in-flight batch is part of what this mode measures.
        (void)FlightDeckStatusJson();
      }
      stats.push_back(result.stats);
    }
    if (deck_on) SamplingProfiler::Global().Stop();
    return StageTimes::MinOf(stats);
  };

  const StageTimes deck_off = measure(false);
  const StageTimes deck_on = measure(true);
  const double deck_overhead =
      deck_off.total > 0.0 ? deck_on.total / deck_off.total : 0.0;

  std::string json = "{\n";
  json += "  \"workload\": {\"dataset\": \"S-AG\", \"size_scale\": " +
          FormatDouble(scale, 2) + ", \"model\": \"logreg-em\", " +
          "\"explainer\": \"landmark-double\", \"records\": " +
          std::to_string(batch.size()) + ", \"num_samples\": " +
          std::to_string(samples) + ", \"threads\": " +
          std::to_string(threads) + ", \"reps\": " + std::to_string(reps) +
          ", \"order\": \"heaviest-first\", \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + "},\n";
  json += "  \"deck_off\": " + deck_off.ToJson() + ",\n";
  json += "  \"deck_on\": " + deck_on.ToJson() + ",\n";
  json += "  \"profiler_samples\": " +
          std::to_string(SamplingProfiler::Global().samples()) + ",\n";
  json += "  \"deck_overhead\": " + FormatDouble(deck_overhead, 3) + "\n";
  json += "}\n";

  if (!EmitJson(json_out, to_stdout, json)) {
    return 1;
  }

  if (!canonical_out.empty() && !to_stdout) {
    std::string canonical = "{\n";
    canonical += "  \"schema\": \"landmark-bench-v1\",\n";
    canonical += "  \"unit\": {\"wall_ns\": \"nanoseconds\", "
                 "\"throughput\": \"records/second\"},\n";
    canonical += "  \"deck_overhead\": " + FormatDouble(deck_overhead, 3) +
                 ",\n";
    canonical += "  \"hardware_concurrency\": " +
                 std::to_string(std::thread::hardware_concurrency()) + ",\n";
    canonical += "  \"benchmarks\": {\n";
    canonical += CanonicalEntry("scheduler/task_graph", deck_off.total,
                                batch.size()) +
                 ",\n";
    canonical +=
        CanonicalEntry("flightdeck/off", deck_off.total, batch.size()) + ",\n";
    canonical +=
        CanonicalEntry("flightdeck/on", deck_on.total, batch.size()) + "\n";
    canonical += "  }\n}\n";
    if (!EmitJson(canonical_out, false, canonical)) {
      return 1;
    }
  }
  return 0;
}


int RunTimeline(const Flags& flags, bool to_stdout) {
  const size_t records = static_cast<size_t>(flags.GetInt("records", 24));
  const size_t samples = static_cast<size_t>(flags.GetInt("samples", 256));
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 5));
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 4));
  const double scale = flags.GetDouble("scale", 0.25);
  const std::string json_out = flags.GetString("json-out", "");
  const std::string canonical_out = flags.GetString("canonical-out", "");

  MagellanGenOptions gen;
  gen.size_scale = scale;
  Result<EmDataset> dataset =
      GenerateMagellanDataset(*FindMagellanSpec("S-AG"), gen);
  if (!dataset.ok()) {
    LANDMARK_LOG(Error) << "dataset generation failed: "
                        << dataset.status().ToString();
    return 1;
  }
  Result<std::unique_ptr<LogRegEmModel>> model = LogRegEmModel::Train(*dataset);
  if (!model.ok()) {
    LANDMARK_LOG(Error) << "model training failed: "
                        << model.status().ToString();
    return 1;
  }

  // Same heterogeneous task-graph workload as --mode scheduler, so the
  // "off" run doubles as this PR's scheduler/task_graph trajectory point.
  ExplainerOptions explainer_options;
  explainer_options.num_samples = samples;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, explainer_options);
  std::vector<const PairRecord*> batch;
  for (size_t i = 0; i < records && i < dataset->size(); ++i) {
    batch.push_back(&dataset->pair(i));
  }
  std::sort(batch.begin(), batch.end(),
            [](const PairRecord* a, const PairRecord* b) {
              const size_t wa = a->ToString().size();
              const size_t wb = b->ToString().size();
              return wa != wb ? wa > wb : a->id < b->id;
            });

  auto measure = [&](bool collector_on) {
    EngineOptions engine_options;
    engine_options.num_threads = threads;
    engine_options.use_task_graph = true;
    ExplainerEngine engine(engine_options);
    SnapshotCollector& collector = SnapshotCollector::Global();
    if (collector_on) {
      // Production cadence: 1 s windows, one registered policy burning on
      // every emitted window through the observer hook.
      SloPolicy policy;
      policy.name = "bench_unit_q";
      policy.metric = "engine/unit/query_seconds";
      policy.threshold = 0.5;
      SloRegistry::Global().Register(policy);
      collector.Configure(TimeseriesOptions{});
      collector.Start();
    }
    std::vector<EngineStats> stats;
    (void)engine.ExplainBatch(**model, batch, explainer);
    for (size_t r = 0; r < reps; ++r) {
      EngineBatchResult result = engine.ExplainBatch(**model, batch, explainer);
      if (collector_on) {
        // One live scrape per repetition: the cost a dashboard poll adds to
        // an in-flight batch is part of what this mode measures.
        (void)collector.TimelinezJson();
      }
      stats.push_back(result.stats);
    }
    if (collector_on) {
      collector.Stop();
      SloRegistry::Global().Clear();
      collector.ResetForTest();
    }
    return StageTimes::MinOf(stats);
  };

  const StageTimes collector_off = measure(false);
  const StageTimes collector_on = measure(true);
  const double timeline_overhead =
      collector_off.total > 0.0 ? collector_on.total / collector_off.total
                                : 0.0;

  std::string json = "{\n";
  json += "  \"workload\": {\"dataset\": \"S-AG\", \"size_scale\": " +
          FormatDouble(scale, 2) + ", \"model\": \"logreg-em\", " +
          "\"explainer\": \"landmark-double\", \"records\": " +
          std::to_string(batch.size()) + ", \"num_samples\": " +
          std::to_string(samples) + ", \"threads\": " +
          std::to_string(threads) + ", \"reps\": " + std::to_string(reps) +
          ", \"order\": \"heaviest-first\", \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + "},\n";
  json += "  \"timeline_off\": " + collector_off.ToJson() + ",\n";
  json += "  \"timeline_on\": " + collector_on.ToJson() + ",\n";
  json += "  \"timeline_overhead\": " + FormatDouble(timeline_overhead, 3) +
          "\n";
  json += "}\n";

  if (!EmitJson(json_out, to_stdout, json)) {
    return 1;
  }

  if (!canonical_out.empty() && !to_stdout) {
    std::string canonical = "{\n";
    canonical += "  \"schema\": \"landmark-bench-v1\",\n";
    canonical += "  \"unit\": {\"wall_ns\": \"nanoseconds\", "
                 "\"throughput\": \"records/second\"},\n";
    canonical += "  \"timeline_overhead\": " +
                 FormatDouble(timeline_overhead, 3) + ",\n";
    canonical += "  \"hardware_concurrency\": " +
                 std::to_string(std::thread::hardware_concurrency()) + ",\n";
    canonical += "  \"benchmarks\": {\n";
    canonical += CanonicalEntry("scheduler/task_graph", collector_off.total,
                                batch.size()) +
                 ",\n";
    canonical += CanonicalEntry("timeline/off", collector_off.total,
                                batch.size()) +
                 ",\n";
    canonical += CanonicalEntry("timeline/on", collector_on.total,
                                batch.size()) +
                 "\n";
    canonical += "  }\n}\n";
    if (!EmitJson(canonical_out, false, canonical)) {
      return 1;
    }
  }
  return 0;
}


/// Defeats dead-code elimination of the micro-kernel loops; the checksum is
/// also emitted in the JSON so two runs can be diffed for agreement.
volatile double g_kernel_sink = 0.0;

/// Minimum wall time of `body` over `reps` runs plus one warm-up.
template <typename Body>
double MinKernelSeconds(size_t reps, const Body& body) {
  body();
  double best = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    Timer timer;
    body();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

std::string KernelJson(double scalar_seconds, double simd_seconds) {
  const double speedup =
      simd_seconds > 0.0 ? scalar_seconds / simd_seconds : 0.0;
  return "{\"scalar_seconds\": " + FormatDouble(scalar_seconds, 6) +
         ", \"simd_seconds\": " + FormatDouble(simd_seconds, 6) +
         ", \"speedup\": " + FormatDouble(speedup, 3) + "}";
}

int RunSimd(const Flags& flags, bool to_stdout) {
  const size_t records = static_cast<size_t>(flags.GetInt("records", 16));
  const size_t samples = static_cast<size_t>(flags.GetInt("samples", 256));
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 5));
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 1));
  const double scale = flags.GetDouble("scale", 0.25);
  const std::string json_out = flags.GetString("json-out", "");
  const std::string canonical_out = flags.GetString("canonical-out", "");

  MagellanGenOptions gen;
  gen.size_scale = scale;
  Result<EmDataset> dataset =
      GenerateMagellanDataset(*FindMagellanSpec("S-AG"), gen);
  if (!dataset.ok()) {
    LANDMARK_LOG(Error) << "dataset generation failed: "
                        << dataset.status().ToString();
    return 1;
  }
  Result<std::unique_ptr<LogRegEmModel>> model = LogRegEmModel::Train(*dataset);
  if (!model.ok()) {
    LANDMARK_LOG(Error) << "model training failed: "
                        << model.status().ToString();
    return 1;
  }

  // landmark-double exercises both landmark sides, so the query stage runs
  // every similarity-kernel family the SIMD pass touches.
  ExplainerOptions explainer_options;
  explainer_options.num_samples = samples;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, explainer_options);
  std::vector<const PairRecord*> batch;
  for (size_t i = 0; i < records && i < dataset->size(); ++i) {
    batch.push_back(&dataset->pair(i));
  }

  auto measure = [&](bool simd_on) {
    EngineOptions engine_options;
    engine_options.num_threads = threads;
    engine_options.simd = simd_on;
    ExplainerEngine engine(engine_options);
    std::vector<EngineStats> stats;
    (void)engine.ExplainBatch(**model, batch, explainer);
    for (size_t r = 0; r < reps; ++r) {
      EngineBatchResult result = engine.ExplainBatch(**model, batch, explainer);
      stats.push_back(result.stats);
    }
    return StageTimes::MinOf(stats);
  };

  const StageTimes scalar = measure(false);
  const StageTimes vectorized = measure(true);
  const double query_speedup =
      vectorized.query > 0.0 ? scalar.query / vectorized.query : 0.0;
  const double fit_speedup =
      vectorized.fit > 0.0 ? scalar.fit / vectorized.fit : 0.0;
  // The acceptance metric: the two model-facing stages together, which is
  // where the vectorized kernels (similarity merges, ridge solve) live.
  const double query_fit_speedup =
      vectorized.query + vectorized.fit > 0.0
          ? (scalar.query + scalar.fit) / (vectorized.query + vectorized.fit)
          : 0.0;
  const double simd_speedup =
      vectorized.total > 0.0 ? scalar.total / vectorized.total : 0.0;

  // Per-kernel micro-timings on the same data the engine scored: attribute
  // strings of the batch (Levenshtein, token-profile merges) and a sampled
  // packed neighborhood (surrogate fit). Each kernel runs the identical
  // loop under simd off / on.
  std::vector<std::string> texts;
  for (const PairRecord* pair : batch) {
    for (const Record* entity : {&pair->left, &pair->right}) {
      for (size_t a = 0; a < entity->num_attributes(); ++a) {
        if (!entity->value(a).is_null()) texts.push_back(entity->value(a).text());
      }
    }
  }
  std::vector<TokenizedValue> profiles;
  profiles.reserve(texts.size());
  for (const std::string& text : texts) {
    profiles.push_back(TokenizedValue::Of(text));
  }

  // Inner repeats lift each timed body well above clock resolution.
  auto lev_loop = [&] {
    size_t acc = 0;
    for (int rep = 0; rep < 40; ++rep) {
      for (size_t i = 0; i + 1 < texts.size(); ++i) {
        acc += LevenshteinDistance(texts[i], texts[i + 1]);
      }
    }
    g_kernel_sink = g_kernel_sink + static_cast<double>(acc);
  };
  auto merge_loop = [&] {
    double acc = 0.0;
    for (int rep = 0; rep < 200; ++rep) {
      for (size_t i = 0; i + 1 < profiles.size(); ++i) {
        acc += CosineTokenSimilarity(profiles[i], profiles[i + 1]);
      }
    }
    g_kernel_sink = g_kernel_sink + acc;
  };
  const size_t fit_dim = 48;
  Rng fit_rng(1234);
  MaskMatrix fit_masks = SamplePerturbationMaskMatrix(fit_dim, samples, fit_rng);
  std::vector<double> fit_targets(fit_masks.rows());
  std::vector<double> fit_weights(fit_masks.rows());
  for (size_t r = 0; r < fit_masks.rows(); ++r) {
    fit_targets[r] = fit_rng.NextDouble();
    fit_weights[r] = KernelWeight(fit_masks.row(r), 0.25);
  }
  auto fit_loop = [&] {
    for (int rep = 0; rep < 8; ++rep) {
      Result<SurrogateFit> fit =
          FitSurrogate(fit_masks, fit_targets, fit_weights, SurrogateOptions{});
      if (fit.ok()) g_kernel_sink = g_kernel_sink + fit->model.intercept;
    }
  };

  const size_t kernel_reps = std::max<size_t>(reps * 4, 20);
  auto time_kernel = [&](const auto& body) {
    double scalar_seconds, simd_seconds;
    {
      simd::ScopedSimdEnabled off(false);
      scalar_seconds = MinKernelSeconds(kernel_reps, body);
    }
    {
      simd::ScopedSimdEnabled on(true);
      simd_seconds = MinKernelSeconds(kernel_reps, body);
    }
    return KernelJson(scalar_seconds, simd_seconds);
  };
  const std::string lev_json = time_kernel(lev_loop);
  const std::string merge_json = time_kernel(merge_loop);
  const std::string fit_json = time_kernel(fit_loop);

  const char* isa = simd::SimdLevelName(simd::DetectedLevel());
  std::string json = "{\n";
  json += "  \"workload\": {\"dataset\": \"S-AG\", \"size_scale\": " +
          FormatDouble(scale, 2) + ", \"model\": \"logreg-em\", " +
          "\"explainer\": \"landmark-double\", \"records\": " +
          std::to_string(batch.size()) + ", \"num_samples\": " +
          std::to_string(samples) + ", \"threads\": " +
          std::to_string(threads) + ", \"reps\": " + std::to_string(reps) +
          ", \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) +
          ", \"simd_isa\": \"" + isa + "\"},\n";
  json += "  \"scalar\": " + scalar.ToJson() + ",\n";
  json += "  \"simd\": " + vectorized.ToJson() + ",\n";
  json += "  \"kernels\": {\"levenshtein\": " + lev_json +
          ", \"token_merge\": " + merge_json + ", \"surrogate_fit\": " +
          fit_json + "},\n";
  json += "  \"query_speedup\": " + FormatDouble(query_speedup, 3) + ",\n";
  json += "  \"fit_speedup\": " + FormatDouble(fit_speedup, 3) + ",\n";
  json += "  \"query_fit_speedup\": " + FormatDouble(query_fit_speedup, 3) +
          ",\n";
  json += "  \"simd_speedup\": " + FormatDouble(simd_speedup, 3) + "\n";
  json += "}\n";

  if (!EmitJson(json_out, to_stdout, json)) {
    return 1;
  }

  if (!canonical_out.empty() && !to_stdout) {
    std::string canonical = "{\n";
    canonical += "  \"schema\": \"landmark-bench-v1\",\n";
    canonical += "  \"unit\": {\"wall_ns\": \"nanoseconds\", "
                 "\"throughput\": \"records/second\"},\n";
    canonical += "  \"simd_speedup\": " + FormatDouble(simd_speedup, 3) +
                 ",\n";
    canonical += "  \"query_speedup\": " + FormatDouble(query_speedup, 3) +
                 ",\n";
    canonical += "  \"fit_speedup\": " + FormatDouble(fit_speedup, 3) +
                 ",\n";
    canonical += "  \"query_fit_speedup\": " +
                 FormatDouble(query_fit_speedup, 3) + ",\n";
    canonical += "  \"hardware_concurrency\": " +
                 std::to_string(std::thread::hardware_concurrency()) + ",\n";
    canonical += "  \"simd_isa\": \"" + std::string(isa) + "\",\n";
    canonical += "  \"benchmarks\": {\n";
    canonical +=
        CanonicalEntry("simd/scalar", scalar.total, batch.size()) + ",\n";
    canonical +=
        CanonicalEntry("simd/vectorized", vectorized.total, batch.size()) +
        "\n";
    canonical += "  }\n}\n";
    if (!EmitJson(canonical_out, false, canonical)) {
      return 1;
    }
  }
  return 0;
}

int Run(int argc, char** argv) {
  Result<Flags> parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    LANDMARK_LOG(Error) << "bad flags: " << parsed.status().ToString();
    return 1;
  }
  const Flags& flags = *parsed;
  const std::string mode = flags.GetString("mode", "fastpath");
  if (mode == "fastpath") {
    return RunFastpath(flags, /*to_stdout=*/false);
  }
  if (mode == "scheduler") {
    return RunScheduler(flags, /*to_stdout=*/false);
  }
  if (mode == "flightdeck") {
    return RunFlightdeck(flags, /*to_stdout=*/false);
  }
  if (mode == "timeline") {
    return RunTimeline(flags, /*to_stdout=*/false);
  }
  if (mode == "simd") {
    return RunSimd(flags, /*to_stdout=*/false);
  }
  if (mode == "all") {
    const int fastpath_rc = RunFastpath(flags, /*to_stdout=*/true);
    const int scheduler_rc = RunScheduler(flags, /*to_stdout=*/true);
    const int flightdeck_rc = RunFlightdeck(flags, /*to_stdout=*/true);
    const int timeline_rc = RunTimeline(flags, /*to_stdout=*/true);
    const int simd_rc = RunSimd(flags, /*to_stdout=*/true);
    if (fastpath_rc != 0) return fastpath_rc;
    if (scheduler_rc != 0) return scheduler_rc;
    if (flightdeck_rc != 0) return flightdeck_rc;
    return timeline_rc != 0 ? timeline_rc : simd_rc;
  }
  LANDMARK_LOG(Error) << "unknown --mode '" << mode
                      << "' (expected fastpath, scheduler, flightdeck, "
                      << "timeline, simd, or all)";
  return 1;
}

}  // namespace
}  // namespace landmark

int main(int argc, char** argv) { return landmark::Run(argc, argv); }
