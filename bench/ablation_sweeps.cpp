// Ablation studies for the design choices DESIGN.md calls out:
//   (1) number of perturbation samples vs. surrogate fidelity,
//   (2) locality-kernel width vs. surrogate fidelity,
//   (3) the landmark-token injection (double-entity generation) vs. plain
//       single-entity generation on non-matching records — the mechanism
//       behind Tables 2b and 4b,
//   (4) the decision threshold 0.5 -> 0.4 discussion of §4.2/§4.3.
//
// Run:  ./ablation_sweeps [--dataset S-AG] [--records 40]
//                         [--threads N] [--no-predict-cache]

#include <iostream>

#include "eval/experiment.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/telemetry/telemetry.h"

namespace {

using namespace landmark;  // NOLINT

double MeanR2(const std::vector<ExplainedRecord>& records) {
  double total = 0.0;
  size_t n = 0;
  for (const auto& record : records) {
    for (const auto& exp : record.explanations) {
      total += exp.surrogate_r2;
      ++n;
    }
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

int Run(const Flags& flags, AuditSink* audit_sink) {
  ExperimentConfig config = ExperimentConfig::FromFlags(flags);
  config.engine_options.audit_sink = audit_sink;
  config.records_per_label =
      static_cast<size_t>(flags.GetInt("records", 40));
  MagellanDatasetSpec spec =
      FindMagellanSpec(flags.GetString("dataset", "S-AG")).ValueOrDie();
  auto context = ExperimentContext::Create(spec, config).ValueOrDie();
  ExplainerEngine engine = config.MakeEngine();
  const auto& match_sample = context.sample(MatchLabel::kMatch);
  const auto& non_match_sample = context.sample(MatchLabel::kNonMatch);

  // ------------------------------------------------------------------ (1)
  std::cout << "Ablation 1: perturbation sample count (landmark-single, "
               "matching records, dataset "
            << spec.code << ")\n";
  {
    TablePrinter table({"samples", "token-eval Acc", "token-eval MAE",
                        "surrogate R2"});
    for (size_t samples : {32u, 64u, 128u, 256u, 512u, 1024u}) {
      ExplainerOptions options = config.explainer_options;
      options.num_samples = samples;
      LandmarkExplainer explainer(GenerationStrategy::kSingle, options);
      ExplainBatchResult batch =
          ExplainRecords(context.model(), explainer, context.dataset(),
                         match_sample, engine);
      auto eval =
          EvaluateTokenRemoval(context.model(), explainer, context.dataset(),
                               batch.records, config.token_removal)
              .ValueOrDie();
      table.AddRow(std::to_string(samples),
                   {eval.accuracy, eval.mae, MeanR2(batch.records)});
    }
    table.Print(std::cout);
  }

  // ------------------------------------------------------------------ (2)
  std::cout << "\nAblation 2: kernel width (landmark-single, matching "
               "records)\n";
  {
    TablePrinter table({"kernel width", "token-eval Acc", "token-eval MAE",
                        "surrogate R2"});
    for (double width : {0.1, 0.25, 0.5, 1.0, 3.0}) {
      ExplainerOptions options = config.explainer_options;
      options.kernel_width = width;
      LandmarkExplainer explainer(GenerationStrategy::kSingle, options);
      ExplainBatchResult batch =
          ExplainRecords(context.model(), explainer, context.dataset(),
                         match_sample, engine);
      auto eval =
          EvaluateTokenRemoval(context.model(), explainer, context.dataset(),
                               batch.records, config.token_removal)
              .ValueOrDie();
      table.AddRow(FormatDouble(width, 2),
                   {eval.accuracy, eval.mae, MeanR2(batch.records)});
    }
    table.Print(std::cout);
  }

  // ------------------------------------------------------------------ (3)
  std::cout << "\nAblation 3: landmark-token injection on non-matching "
               "records (the double-entity mechanism)\n";
  {
    TablePrinter table(
        {"strategy", "interest", "mean p(augmented)", "surrogate R2"});
    for (GenerationStrategy strategy :
         {GenerationStrategy::kSingle, GenerationStrategy::kDouble}) {
      LandmarkExplainer explainer(strategy, config.explainer_options);
      ExplainBatchResult batch =
          ExplainRecords(context.model(), explainer, context.dataset(),
                         non_match_sample, engine);
      auto interest =
          EvaluateInterest(context.model(), explainer, context.dataset(),
                           batch.records, MatchLabel::kNonMatch,
                           config.interest)
              .ValueOrDie();
      double mean_p = 0.0;
      size_t n = 0;
      for (const auto& record : batch.records) {
        for (const auto& exp : record.explanations) {
          mean_p += exp.model_prediction;
          ++n;
        }
      }
      mean_p = n == 0 ? 0.0 : mean_p / static_cast<double>(n);
      table.AddRow(std::string(GenerationStrategyName(strategy)),
                   {interest.interest, mean_p, MeanR2(batch.records)});
    }
    table.Print(std::cout);
    std::cout << "Injection pushes the all-active representation towards the "
                 "match class (higher mean p), which is what makes the\n"
                 "negative-token removal flip non-matching records (higher "
                 "interest).\n";
  }

  // ------------------------------------------------------------------ (4)
  std::cout << "\nAblation 4: decision threshold 0.5 vs 0.4 (token-eval "
               "accuracy, matching records)\n";
  {
    TablePrinter table({"technique", "Acc @0.5", "Acc @0.4"});
    std::vector<Technique> techniques =
        MakeTechniques(config.explainer_options);
    for (const Technique& technique : techniques) {
      if (technique.non_match_only) continue;
      ExplainBatchResult batch =
          ExplainRecords(context.model(), *technique.explainer,
                         context.dataset(), match_sample, engine);
      TokenRemovalOptions at5 = config.token_removal;
      at5.decision_threshold = 0.5;
      TokenRemovalOptions at4 = config.token_removal;
      at4.decision_threshold = 0.4;
      auto acc5 = EvaluateTokenRemoval(context.model(), *technique.explainer,
                                       context.dataset(), batch.records, at5)
                      .ValueOrDie();
      auto acc4 = EvaluateTokenRemoval(context.model(), *technique.explainer,
                                       context.dataset(), batch.records, at4)
                      .ValueOrDie();
      table.AddRow(technique.label, {acc5.accuracy, acc4.accuracy});
    }
    table.Print(std::cout);
  }
  // ------------------------------------------------------------------ (5)
  std::cout << "\nAblation 5: generic explainer plugged into the framework "
               "(LIME vs KernelSHAP neighborhood, landmark-single, matching "
               "records)\n";
  {
    TablePrinter table({"neighborhood", "token-eval Acc", "token-eval MAE",
                        "surrogate R2"});
    for (auto [label, kind] :
         {std::pair<const char*, NeighborhoodKind>{"lime",
                                                   NeighborhoodKind::kLime},
          std::pair<const char*, NeighborhoodKind>{"shap",
                                                   NeighborhoodKind::kShap}}) {
      ExplainerOptions options = config.explainer_options;
      options.neighborhood = kind;
      LandmarkExplainer explainer(GenerationStrategy::kSingle, options);
      ExplainBatchResult batch =
          ExplainRecords(context.model(), explainer, context.dataset(),
                         match_sample, engine);
      auto eval =
          EvaluateTokenRemoval(context.model(), explainer, context.dataset(),
                               batch.records, config.token_removal)
              .ValueOrDie();
      table.AddRow(label, {eval.accuracy, eval.mae, MeanR2(batch.records)});
    }
    table.Print(std::cout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = landmark::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status().ToString() << "\n";
    return 1;
  }
  landmark::TelemetryScope telemetry =
      landmark::TelemetryScope::FromFlags(*flags);
  return Run(*flags, telemetry.audit_sink());
}
