// Extension experiment: stability of each technique's top-5 tokens under
// perturbation-sampling randomness, as a function of the sample budget.
// Landmark's restricted token space should make it at least as stable as
// plain LIME at every budget.
//
// Run:  ./stability_sweep [--dataset S-AG] [--records 20] [--scale F]

#include <iostream>

#include "eval/experiment.h"
#include "eval/stability.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/telemetry/telemetry.h"

namespace {

using namespace landmark;  // NOLINT

int Run(const Flags& flags, AuditSink* audit_sink) {
  ExperimentConfig config = ExperimentConfig::FromFlags(flags);
  config.engine_options.audit_sink = audit_sink;
  config.records_per_label = static_cast<size_t>(flags.GetInt("records", 12));
  MagellanDatasetSpec spec =
      FindMagellanSpec(flags.GetString("dataset", "S-AG")).ValueOrDie();
  auto context = ExperimentContext::Create(spec, config).ValueOrDie();

  std::vector<size_t> sample = context.sample(MatchLabel::kMatch);
  const auto& non_match = context.sample(MatchLabel::kNonMatch);
  sample.insert(sample.end(), non_match.begin(), non_match.end());

  struct Row {
    const char* label;
    ExplainerFactory factory;
  };
  const std::vector<Row> techniques = {
      {"Single",
       [](const ExplainerOptions& o) -> std::unique_ptr<PairExplainer> {
         return std::make_unique<LandmarkExplainer>(GenerationStrategy::kSingle,
                                                    o);
       }},
      {"Double",
       [](const ExplainerOptions& o) -> std::unique_ptr<PairExplainer> {
         return std::make_unique<LandmarkExplainer>(GenerationStrategy::kDouble,
                                                    o);
       }},
      {"LIME",
       [](const ExplainerOptions& o) -> std::unique_ptr<PairExplainer> {
         return std::make_unique<LimeExplainer>(o);
       }},
      {"Mojito Copy",
       [](const ExplainerOptions& o) -> std::unique_ptr<PairExplainer> {
         return std::make_unique<MojitoCopyExplainer>(o);
       }},
  };

  std::cout << "Top-5 token stability across 5 sampling seeds (mean Jaccard; "
               "1.0 = identical top tokens every run), dataset "
            << spec.code << "\n\n";
  TablePrinter table({"technique", "n=64", "n=128", "n=256", "n=512"});
  for (const Row& technique : techniques) {
    std::vector<double> cells;
    for (size_t samples : {64u, 128u, 256u, 512u}) {
      ExplainerOptions options = config.explainer_options;
      options.num_samples = samples;
      auto result =
          EvaluateStability(context.model(), technique.factory, options,
                            context.dataset(), sample);
      if (!result.ok()) {
        std::cerr << result.status().ToString() << "\n";
        return 1;
      }
      cells.push_back(result->mean_topk_jaccard);
    }
    table.AddRow(technique.label, cells);
  }
  table.Print(std::cout);
  std::cout << "\nStability rises with the sample budget for every "
               "technique; Mojito Copy is trivially stable because its "
               "attribute-atomic weights quantize the ranking.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = landmark::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status().ToString() << "\n";
    return 1;
  }
  landmark::TelemetryScope telemetry =
      landmark::TelemetryScope::FromFlags(*flags);
  return Run(*flags, telemetry.audit_sink());
}
