// Micro-benchmarks (google-benchmark) for the performance-critical pieces:
// feature extraction, EM model inference, perturbation sampling, surrogate
// fitting, full explanations per technique, and the staged ExplainerEngine
// batch path at different worker-thread counts.
//
// On top of google-benchmark's own flags, --metrics-out=FILE dumps the
// metrics registry (per-stage engine histograms, model-query latency, pool
// stats) and --trace-out=FILE records a Chrome/Perfetto trace of the run.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>

#include "core/landmark_explanation.h"
#include "core/sampling.h"
#include "core/surrogate.h"
#include "datagen/magellan.h"
#include "em/forest_em_model.h"
#include "util/telemetry/telemetry.h"

namespace landmark {
namespace {

/// Lazily-built shared fixture: a mid-sized product dataset and its model.
struct PerfContext {
  EmDataset dataset;
  std::unique_ptr<LogRegEmModel> model;
};

const PerfContext& GetContext() {
  static const PerfContext& context = *[] {
    auto* ctx = new PerfContext();
    MagellanGenOptions gen;
    gen.size_scale = 0.25;
    ctx->dataset = GenerateMagellanDataset(*FindMagellanSpec("S-AG"), gen)
                       .ValueOrDie();
    ctx->model =
        std::move(LogRegEmModel::Train(ctx->dataset)).ValueOrDie();
    return ctx;
  }();
  return context;
}

void BM_FeatureExtraction(benchmark::State& state) {
  const PerfContext& ctx = GetContext();
  const FeatureExtractor& fx = ctx.model->feature_extractor();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.Extract(ctx.dataset.pair(i)));
    i = (i + 1) % ctx.dataset.size();
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_ModelPredict(benchmark::State& state) {
  const PerfContext& ctx = GetContext();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.model->PredictProba(ctx.dataset.pair(i)));
    i = (i + 1) % ctx.dataset.size();
  }
}
BENCHMARK(BM_ModelPredict);

void BM_MaskSampling(benchmark::State& state) {
  Rng rng(1);
  const size_t dim = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SamplePerturbationMasks(dim, 384, rng));
  }
}
BENCHMARK(BM_MaskSampling)->Arg(10)->Arg(40)->Arg(160);

void BM_SurrogateFit(benchmark::State& state) {
  Rng rng(2);
  const size_t dim = static_cast<size_t>(state.range(0));
  auto masks = SamplePerturbationMasks(dim, 384, rng);
  std::vector<double> targets, weights;
  for (const auto& mask : masks) {
    targets.push_back(ActiveFraction(mask));
    weights.push_back(KernelWeight(mask, 0.25));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitSurrogate(masks, targets, weights, {}));
  }
}
BENCHMARK(BM_SurrogateFit)->Arg(10)->Arg(40)->Arg(160);

template <typename ExplainerT, GenerationStrategy kStrategy>
void BM_LandmarkExplain(benchmark::State& state) {
  const PerfContext& ctx = GetContext();
  ExplainerOptions options;
  options.num_samples = static_cast<size_t>(state.range(0));
  ExplainerT explainer(kStrategy, options);
  size_t i = 0;
  for (auto _ : state) {
    auto result = explainer.Explain(*ctx.model, ctx.dataset.pair(i));
    benchmark::DoNotOptimize(result);
    i = (i + 1) % ctx.dataset.size();
  }
}
BENCHMARK(BM_LandmarkExplain<LandmarkExplainer, GenerationStrategy::kSingle>)
    ->Arg(128)
    ->Arg(384)
    ->Name("BM_ExplainLandmarkSingle");
BENCHMARK(BM_LandmarkExplain<LandmarkExplainer, GenerationStrategy::kDouble>)
    ->Arg(128)
    ->Arg(384)
    ->Name("BM_ExplainLandmarkDouble");

void BM_LimeExplain(benchmark::State& state) {
  const PerfContext& ctx = GetContext();
  ExplainerOptions options;
  options.num_samples = static_cast<size_t>(state.range(0));
  LimeExplainer explainer(options);
  size_t i = 0;
  for (auto _ : state) {
    auto result = explainer.Explain(*ctx.model, ctx.dataset.pair(i));
    benchmark::DoNotOptimize(result);
    i = (i + 1) % ctx.dataset.size();
  }
}
BENCHMARK(BM_LimeExplain)->Arg(128)->Arg(384);

void BM_MojitoCopyExplain(benchmark::State& state) {
  const PerfContext& ctx = GetContext();
  ExplainerOptions options;
  options.num_samples = static_cast<size_t>(state.range(0));
  MojitoCopyExplainer explainer(options);
  size_t i = 0;
  for (auto _ : state) {
    auto result = explainer.Explain(*ctx.model, ctx.dataset.pair(i));
    benchmark::DoNotOptimize(result);
    i = (i + 1) % ctx.dataset.size();
  }
}
BENCHMARK(BM_MojitoCopyExplain)->Arg(128)->Arg(384);

/// Lazily-built forest model on the shared dataset: per-pair inference is an
/// order of magnitude more expensive than logreg, which is where the
/// engine's query-stage parallelism pays off.
const ForestEmModel& GetForestModel() {
  static const ForestEmModel* model =
      std::move(ForestEmModel::Train(GetContext().dataset))
          .ValueOrDie()
          .release();
  return *model;
}

/// The staged batch path: 16 records per iteration through one engine.
/// state.range(0) = worker threads. The determinism contract makes the
/// thread counts directly comparable — they produce identical explanations.
template <typename ModelGetter>
void BM_EngineBatch(benchmark::State& state, ModelGetter getter) {
  const PerfContext& ctx = GetContext();
  const EmModel& model = getter();
  ExplainerOptions options;
  options.num_samples = 128;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, options);
  EngineOptions engine_options;
  engine_options.num_threads = static_cast<size_t>(state.range(0));
  ExplainerEngine engine(engine_options);
  std::vector<const PairRecord*> batch;
  for (size_t i = 0; i < 16 && i < ctx.dataset.size(); ++i) {
    batch.push_back(&ctx.dataset.pair(i));
  }
  for (auto _ : state) {
    EngineBatchResult result = engine.ExplainBatch(model, batch, explainer);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch.size()));
}

void BM_EngineBatchLogReg(benchmark::State& state) {
  BM_EngineBatch(state,
                 []() -> const EmModel& { return *GetContext().model; });
}
BENCHMARK(BM_EngineBatchLogReg)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_EngineBatchForest(benchmark::State& state) {
  BM_EngineBatch(state, []() -> const EmModel& { return GetForestModel(); });
}
BENCHMARK(BM_EngineBatchForest)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/// Prediction-memo effect in isolation: tiny token spaces produce many
/// duplicate masks, so the deduplicated query stage calls the model far
/// fewer times than the raw sample count. state.range(0) = cache on/off.
void BM_EnginePredictionCache(benchmark::State& state) {
  const PerfContext& ctx = GetContext();
  ExplainerOptions options;
  options.num_samples = 384;
  LandmarkExplainer explainer(GenerationStrategy::kSingle, options);
  EngineOptions engine_options;
  engine_options.cache_predictions = state.range(0) != 0;
  ExplainerEngine engine(engine_options);
  std::vector<const PairRecord*> batch;
  for (size_t i = 0; i < 8 && i < ctx.dataset.size(); ++i) {
    batch.push_back(&ctx.dataset.pair(i));
  }
  for (auto _ : state) {
    EngineBatchResult result =
        engine.ExplainBatch(*ctx.model, batch, explainer);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EnginePredictionCache)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("cache");

void BM_DatasetGeneration(benchmark::State& state) {
  MagellanDatasetSpec spec = *FindMagellanSpec("S-AG");
  MagellanGenOptions gen;
  gen.size_scale = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateMagellanDataset(spec, gen));
  }
}
BENCHMARK(BM_DatasetGeneration);

}  // namespace
}  // namespace landmark

// Custom main instead of BENCHMARK_MAIN(): benchmark::Initialize aborts on
// flags it does not recognize, so the telemetry flags must be consumed
// (and compacted out of argv) before it runs.
int main(int argc, char** argv) {
  std::string metrics_path, trace_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_path = arg + 14;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_path = arg + 12;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  landmark::TelemetryScope telemetry(metrics_path, trace_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
