// Regenerates the paper's Table 2 (token-based evaluation): for every
// dataset and label, the Accuracy and MAE of the surrogate model under
// random 25% token removal, for Landmark Single / Landmark Double / LIME
// (Mojito Drop) and — on non-matching records — Mojito Copy.
//
// Run:  ./table2_token_eval [--records N] [--samples N] [--scale F]
//                           [--datasets S-BR,...] [--threshold F]
//                           [--threads N] [--no-predict-cache]

#include <iostream>

#include "eval/experiment.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/telemetry/telemetry.h"
#include "util/timer.h"

namespace {

using namespace landmark;  // NOLINT

int RunTable2(const Flags& flags, AuditSink* audit_sink) {
  ExperimentConfig config = ExperimentConfig::FromFlags(flags);
  config.engine_options.audit_sink = audit_sink;
  std::vector<MagellanDatasetSpec> specs = SelectSpecs(flags);
  ExplainerEngine engine = config.MakeEngine();

  struct Row {
    std::string code;
    // 0=Single 1=Double 2=LIME 3=Copy; Copy only on non-match.
    double acc[4] = {0, 0, 0, 0};
    double mae[4] = {0, 0, 0, 0};
  };
  std::vector<Row> match_rows, non_match_rows;

  Histogram& dataset_seconds =
      MetricsRegistry::Global().GetHistogram("bench/dataset_seconds");
  double total_seconds = 0.0;
  for (const MagellanDatasetSpec& spec : specs) {
    double elapsed = 0.0;
    ScopedTimer dataset_timer(&dataset_seconds, &elapsed);
    auto context = ExperimentContext::Create(spec, config);
    if (!context.ok()) {
      std::cerr << spec.code << ": " << context.status().ToString() << "\n";
      return 1;
    }
    std::vector<Technique> techniques =
        MakeTechniques(config.explainer_options);

    for (MatchLabel label : {MatchLabel::kMatch, MatchLabel::kNonMatch}) {
      Row row;
      row.code = spec.code;
      for (size_t t = 0; t < techniques.size(); ++t) {
        if (techniques[t].non_match_only && label == MatchLabel::kMatch) {
          continue;
        }
        ExplainBatchResult batch =
            ExplainRecords(context->model(), *techniques[t].explainer,
                           context->dataset(), context->sample(label), engine);
        auto eval = EvaluateTokenRemoval(
            context->model(), *techniques[t].explainer, context->dataset(),
            batch.records, config.token_removal);
        if (!eval.ok()) {
          std::cerr << spec.code << "/" << techniques[t].label << ": "
                    << eval.status().ToString() << "\n";
          return 1;
        }
        row.acc[t] = eval->accuracy;
        row.mae[t] = eval->mae;
      }
      (label == MatchLabel::kMatch ? match_rows : non_match_rows)
          .push_back(row);
    }
    dataset_timer.Stop();
    total_seconds += elapsed;
    std::cerr << "[table2] " << spec.code << " done ("
              << FormatDouble(elapsed, 1) << "s, "
              << FormatDouble(total_seconds, 1) << "s elapsed)\n";
  }

  std::cout << "Table 2(a): token-based evaluation, matching label\n";
  TablePrinter ta({"", "Single Acc", "Single MAE", "Double Acc", "Double MAE",
                   "LIME Acc", "LIME MAE"});
  for (const auto& r : match_rows) {
    ta.AddRow(r.code,
              {r.acc[0], r.mae[0], r.acc[1], r.mae[1], r.acc[2], r.mae[2]});
  }
  ta.Print(std::cout);

  std::cout << "\nTable 2(b): token-based evaluation, non-matching label\n";
  TablePrinter tb({"", "Single Acc", "Single MAE", "Double Acc", "Double MAE",
                   "LIME Acc", "LIME MAE", "Copy Acc", "Copy MAE"});
  for (const auto& r : non_match_rows) {
    tb.AddRow(r.code, {r.acc[0], r.mae[0], r.acc[1], r.mae[1], r.acc[2],
                       r.mae[2], r.acc[3], r.mae[3]});
  }
  tb.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = landmark::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status().ToString() << "\n";
    return 1;
  }
  landmark::TelemetryScope telemetry =
      landmark::TelemetryScope::FromFlags(*flags);
  return RunTable2(*flags, telemetry.audit_sink());
}
