// Regenerates the paper's Table 1: the Magellan benchmark datasets with
// their sizes and match percentages, plus (as a sanity column) the held-out
// F1 of the logistic-regression EM model trained on each.
//
// Run:  ./table1_datasets [--scale F] [--datasets S-BR,S-IA] [--skip-model]

#include <iostream>

#include "datagen/magellan.h"
#include "em/logreg_em_model.h"
#include "eval/experiment.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/telemetry/telemetry.h"

int main(int argc, char** argv) {
  using namespace landmark;  // NOLINT
  auto flags_result = Flags::Parse(argc, argv);
  if (!flags_result.ok()) {
    std::cerr << flags_result.status().ToString() << "\n";
    return 1;
  }
  const Flags& flags = *flags_result;
  TelemetryScope telemetry = TelemetryScope::FromFlags(flags);
  const double scale = flags.GetDouble("scale", 1.0);
  const bool skip_model = flags.GetBool("skip-model", false);

  std::cout << "Table 1: Magellan Benchmark (synthetic reproduction)\n";
  std::cout << "paper columns: Size, %Match; extra column: model F1\n\n";

  TablePrinter table({"", "Type", "Dataset", "Size", "% Match", "Model F1"});
  for (const MagellanDatasetSpec& spec : SelectSpecs(flags)) {
    MagellanGenOptions gen;
    gen.size_scale = scale;
    auto dataset = GenerateMagellanDataset(spec, gen);
    if (!dataset.ok()) {
      std::cerr << spec.code << ": " << dataset.status().ToString() << "\n";
      return 1;
    }
    EmDatasetStats stats = dataset->Stats();

    std::string f1 = "-";
    if (!skip_model) {
      auto model = LogRegEmModel::Train(*dataset);
      if (!model.ok()) {
        std::cerr << spec.code << ": " << model.status().ToString() << "\n";
        return 1;
      }
      f1 = FormatDouble((*model)->report().f1, 3);
    }
    table.AddRow({spec.code, spec.type, spec.source_name,
                  std::to_string(stats.size),
                  FormatDouble(stats.match_percent, 2), f1});
  }
  table.Print(std::cout);
  return 0;
}
