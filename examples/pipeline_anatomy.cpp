// Walks through the paper's Figure 2 stage by stage, printing every
// intermediate artifact of the Landmark Explanation pipeline for one record:
// the tokenized entities, sampled perturbation masks, reconstructed pairs,
// model probabilities, kernel weights, and the fitted surrogate.
//
// Run:  ./pipeline_anatomy

#include <iostream>

#include "core/landmark_explanation.h"
#include "core/sampling.h"
#include "util/string_util.h"

namespace {

using namespace landmark;  // NOLINT: example code

int Run() {
  // The Figure 1 record: a digital camera vs. a leather case.
  auto schema = Schema::Make({"name", "description", "price"}).ValueOrDie();
  PairRecord record;
  record.id = 0;
  record.left =
      Record::Make(schema, {Value::Of("sony digital camera with lens kit dslra200w"),
                            Value::Of("sony alpha digital slr camera 10.2 megapixels"),
                            Value::Of("849.99")})
          .ValueOrDie();
  record.right =
      Record::Make(schema, {Value::Of("nikon digital camera leather case 5811"),
                            Value::Of("leather black"), Value::Of("7.99")})
          .ValueOrDie();
  record.label = MatchLabel::kNonMatch;

  // Any EmModel works; the transparent Jaccard model keeps the walkthrough
  // verifiable by hand.
  JaccardEmModel model;
  std::cout << "=== the record ===\n" << record.ToString() << "\n";
  std::cout << "model match probability: " << model.PredictProba(record)
            << "\n\n";

  // --- Stage 1: Landmark generation (tokenizer + strategy) -----------------
  std::cout << "=== stage 1: landmark generation ===\n";
  std::cout << "landmark = left entity; varying = right entity\n";
  std::vector<Token> single_tokens =
      TokenizeEntity(record.right, EntitySide::kRight);
  std::cout << "single-entity token space (" << single_tokens.size()
            << " tokens):\n ";
  for (const auto& t : single_tokens) std::cout << " " << t.PrefixedName(*schema);
  std::cout << "\n";
  std::vector<Token> double_tokens =
      BuildAugmentedTokens(record.right, EntitySide::kRight, record.left);
  std::cout << "double-entity token space (" << double_tokens.size()
            << " tokens, '+' marks injected landmark tokens):\n ";
  for (const auto& t : double_tokens) std::cout << " " << t.PrefixedName(*schema);
  std::cout << "\n\n";

  // --- Stage 2: Perturbation generation ------------------------------------
  std::cout << "=== stage 2: perturbation generation ===\n";
  Rng rng(7);
  auto masks = SamplePerturbationMasks(double_tokens.size(), 6, rng);
  for (const auto& mask : masks) {
    std::cout << "  mask [";
    for (uint8_t bit : mask) std::cout << int{bit};
    std::cout << "]  kernel weight = "
              << FormatDouble(KernelWeight(mask, 0.25), 3) << "\n";
  }
  std::cout << "\n";

  // --- Stage 3: Pair reconstruction + dataset reconstruction ---------------
  std::cout << "=== stage 3: pair + dataset reconstruction ===\n";
  ExplainerOptions options;
  options.num_samples = 6;
  LandmarkExplainer explainer(GenerationStrategy::kDouble, options);
  // Build a shell explanation so Reconstruct can be demonstrated directly.
  auto full = explainer.ExplainWithLandmark(model, record, EntitySide::kLeft)
                  .ValueOrDie();
  for (const auto& mask : masks) {
    PairRecord rec = explainer.Reconstruct(full, record, mask).ValueOrDie();
    std::cout << "  varying name = '"
              << (rec.right.value(0).is_null() ? "<null>"
                                               : rec.right.value(0).text())
              << "'  ->  p = " << FormatDouble(model.PredictProba(rec), 3)
              << "\n";
  }
  std::cout << "\n";

  // --- Stage 4: Surrogate model (the explanation) ---------------------------
  std::cout << "=== stage 4: surrogate model ===\n";
  ExplainerOptions full_options;  // default sample count for a real fit
  LandmarkExplainer full_explainer(GenerationStrategy::kDouble, full_options);
  auto explanations = full_explainer.Explain(model, record).ValueOrDie();
  for (const auto& exp : explanations) {
    std::cout << exp.ToString(*schema, /*top_k=*/6) << "\n";
  }
  std::cout << "Positive weights: adding the token to the varying entity "
               "pushes the pair towards matching the landmark.\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
