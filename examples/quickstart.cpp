// Quickstart: train an EM model on a synthetic Amazon-Google-style dataset
// and explain one of its predictions with Landmark Explanation, reproducing
// the paper's Figure 1 walkthrough (a camera vs. a leather case).
//
// Run:  ./quickstart [--records N]

#include <iostream>

#include "core/landmark_explanation.h"
#include "datagen/magellan.h"
#include "util/flags.h"

namespace {

using namespace landmark;  // NOLINT: example code

int RunQuickstart(const Flags& flags) {
  // 1. Get a benchmark dataset. The generator reproduces the schema, size
  //    and class imbalance of the Magellan Amazon-Google dataset.
  MagellanDatasetSpec spec = FindMagellanSpec("S-AG").ValueOrDie();
  MagellanGenOptions gen;
  gen.size_scale = flags.GetDouble("scale", 0.25);
  EmDataset dataset = GenerateMagellanDataset(spec, gen).ValueOrDie();
  EmDatasetStats stats = dataset.Stats();
  std::cout << "dataset " << dataset.name() << ": " << stats.size
            << " pairs, " << stats.match_percent << "% matching\n";

  // 2. Train the EM model the paper explains: logistic regression over
  //    per-attribute similarity features.
  auto model = LogRegEmModel::Train(dataset).ValueOrDie();
  std::cout << "trained " << model->name()
            << " (held-out F1 = " << model->report().f1 << ")\n\n";

  // 3. Pick a non-matching record the model is confident about.
  const PairRecord* record = nullptr;
  for (size_t i : dataset.IndicesWithLabel(MatchLabel::kNonMatch)) {
    if (model->PredictProba(dataset.pair(i)) < 0.3) {
      record = &dataset.pair(i);
      break;
    }
  }
  if (record == nullptr) record = &dataset.pair(0);
  std::cout << "record to explain:\n" << record->ToString() << "\n";
  std::cout << "model match probability: "
            << model->PredictProba(*record) << "\n\n";

  const Schema& schema = *dataset.entity_schema();

  // 4. Landmark Explanation. kAuto picks double-entity generation for this
  //    non-matching record: the landmark's tokens are injected into the
  //    varying entity so the explanation can say which tokens would *make*
  //    the pair match.
  LandmarkExplainer landmark_explainer(GenerationStrategy::kAuto);
  auto explanations = landmark_explainer.Explain(*model, *record).ValueOrDie();
  for (const Explanation& exp : explanations) {
    std::cout << exp.ToString(schema, /*top_k=*/5) << "\n";
  }

  // 5. Compare with plain LIME (Mojito Drop), which perturbs both entities
  //    at once.
  LimeExplainer lime;
  auto lime_explanations = lime.Explain(*model, *record).ValueOrDie();
  std::cout << lime_explanations[0].ToString(schema, /*top_k=*/5) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = landmark::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status().ToString() << "\n";
    return 1;
  }
  return RunQuickstart(*flags);
}
