// Model-agnosticism demo: Landmark Explanation only sees PredictProba, so
// any EM system can be explained by implementing the EmModel interface.
// This example defines a quirky rule-based matcher *with a hidden bug* (it
// ignores every attribute except the first and is case... rather,
// punctuation-sensitive on model numbers), then uses the explanations to
// surface that behaviour without looking at the code.
//
// Run:  ./custom_model

#include <iostream>

#include "core/landmark_explanation.h"
#include "text/similarity.h"
#include "text/tokenize.h"
#include "util/string_util.h"

namespace {

using namespace landmark;  // NOLINT: example code

/// A rule-based matcher someone inherited from a legacy codebase: the match
/// score is the token overlap of the *name* attribute only. Descriptions and
/// prices are silently ignored — exactly the kind of behaviour an
/// explanation should expose.
class LegacyNameMatcher : public EmModel {
 public:
  double PredictProba(const PairRecord& pair) const override {
    const Value& l = pair.left.value(0);
    const Value& r = pair.right.value(0);
    if (l.is_null() || r.is_null()) return 0.0;
    return OverlapCoefficient(NormalizedTokens(l.text()),
                              NormalizedTokens(r.text()));
  }
  std::string name() const override { return "legacy-name-matcher"; }
};

int Run() {
  auto schema = Schema::Make({"name", "description", "price"}).ValueOrDie();
  PairRecord record;
  record.id = 42;
  record.left = Record::Make(schema, {Value::Of("canon powershot sx530"),
                                      Value::Of("16 megapixels zoom camera"),
                                      Value::Of("279.00")})
                    .ValueOrDie();
  record.right = Record::Make(schema, {Value::Of("canon powershot sx530"),
                                       Value::Of("leather tripod bundle"),
                                       Value::Of("12.50")})
                     .ValueOrDie();

  LegacyNameMatcher model;
  std::cout << "record:\n" << record.ToString() << "\n";
  std::cout << "legacy matcher says p(match) = " << model.PredictProba(record)
            << " although description and price scream non-match.\n\n";

  LandmarkExplainer explainer(GenerationStrategy::kSingle);
  auto explanations = explainer.Explain(model, record).ValueOrDie();
  const Explanation& exp = explanations[0];  // landmark = left

  std::cout << exp.ToString(*schema, /*top_k=*/10);
  std::cout << "\nPer-attribute importance (sum of |token weights|):\n";
  std::vector<double> attr = exp.AttributeWeights(schema->num_attributes());
  for (size_t a = 0; a < attr.size(); ++a) {
    std::cout << "  " << schema->attribute_name(a) << ": "
              << FormatDouble(attr[a], 4) << "\n";
  }
  std::cout << "\nAll the weight sits on 'name' tokens: the explanation has "
               "exposed that the matcher ignores every other attribute.\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
