// The full EM pipeline the paper's introduction situates itself in:
//
//   two entity collections  ->  blocking  ->  matching model  ->  matches
//                                                 |
//                                                 v
//                                     Landmark Explanation per decision
//
// This example builds two overlapping product catalogs, blocks them with the
// token blocker, scores candidates with a trained EM model, and explains the
// most confident match and the most borderline candidate.
//
// Run:  ./end_to_end_pipeline [--catalog-size 300] [--threads N]
//                             [--show-metrics]
//                             [--metrics-out FILE] [--trace-out FILE]

#include <algorithm>
#include <iostream>

#include "core/landmark_explanation.h"
#include "datagen/corruptions.h"
#include "datagen/domains.h"
#include "datagen/magellan.h"
#include "em/blocking.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/telemetry/telemetry.h"

namespace {

using namespace landmark;  // NOLINT: example code

int Run(const Flags& flags) {
  const size_t catalog_size =
      static_cast<size_t>(flags.GetInt("catalog-size", 300));

  // --- Build two overlapping catalogs (the "Walmart" and "Amazon" sides).
  auto generator = MakeEntityGenerator(MagellanDomain::kProductWalmartAmazon);
  Rng rng(2024);
  CorruptionOptions corruption;  // the second source describes items noisily
  std::vector<Record> left_catalog, right_catalog;
  size_t true_overlaps = 0;
  for (size_t i = 0; i < catalog_size; ++i) {
    Record product = generator->Generate(rng);
    left_catalog.push_back(product);
    if (rng.NextBernoulli(0.3)) {  // ~30% of products exist in both catalogs
      right_catalog.push_back(CorruptEntity(product, corruption, rng));
      ++true_overlaps;
    }
    if (rng.NextBernoulli(0.7)) {  // plus right-only products
      right_catalog.push_back(generator->Generate(rng));
    }
  }
  std::cout << "left catalog: " << left_catalog.size()
            << " products, right catalog: " << right_catalog.size() << " ("
            << true_overlaps << " true overlaps)\n";

  // --- Stage 1: blocking.
  TokenBlocker blocker;
  auto candidates = blocker.Block(left_catalog, right_catalog).ValueOrDie();
  const double reduction =
      1.0 - static_cast<double>(candidates.size()) /
                (static_cast<double>(left_catalog.size()) *
                 static_cast<double>(right_catalog.size()));
  std::cout << "blocking: " << candidates.size() << " candidate pairs ("
            << FormatDouble(100.0 * reduction, 1)
            << "% of the cross product pruned)\n";

  // --- Stage 2: matching model (trained on the corresponding benchmark).
  EmDataset train =
      GenerateMagellanDataset(FindMagellanSpec("S-WA").ValueOrDie())
          .ValueOrDie();
  auto model = LogRegEmModel::Train(train).ValueOrDie();
  std::cout << "matcher F1 on its benchmark test split: "
            << FormatDouble(model->report().f1, 3) << "\n\n";

  struct Scored {
    PairRecord pair;
    double probability;
  };
  std::vector<Scored> scored;
  for (const CandidatePair& c : candidates) {
    PairRecord pair;
    pair.id = static_cast<int64_t>(scored.size());
    pair.left = left_catalog[c.left_index];
    pair.right = right_catalog[c.right_index];
    const double p = model->PredictProba(pair);
    pair.label = p >= 0.5 ? MatchLabel::kMatch : MatchLabel::kNonMatch;
    scored.push_back({pair, p});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    return a.probability > b.probability;
  });
  size_t matches = 0;
  for (const auto& s : scored) matches += s.probability >= 0.5;
  std::cout << "matching: " << matches << " predicted matches\n\n";

  // --- Stage 3: explain the decisions that matter, through the staged
  // engine: both records go out as ONE batch, so their perturbations share
  // the prediction memo and (with --threads > 1) the worker pool.
  const Schema& schema = *generator->schema();
  LandmarkExplainer explainer(GenerationStrategy::kAuto);
  EngineOptions engine_options;
  engine_options.num_threads =
      static_cast<size_t>(flags.GetInt("threads", 1));
  ExplainerEngine engine(engine_options);

  // The most borderline candidate is where a human reviewer needs help.
  auto borderline = std::min_element(
      scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
        return std::abs(a.probability - 0.5) < std::abs(b.probability - 0.5);
      });

  std::vector<const PairRecord*> to_explain;
  if (!scored.empty()) to_explain.push_back(&scored.front().pair);
  if (borderline != scored.end()) to_explain.push_back(&borderline->pair);
  EngineBatchResult batch = engine.ExplainBatch(*model, to_explain, explainer);

  size_t slot = 0;
  if (!scored.empty()) {
    std::cout << "=== most confident match (p = "
              << FormatDouble(scored.front().probability, 3) << ") ===\n"
              << scored.front().pair.ToString() << "\n";
    const auto& explanations = batch.results[slot++];
    if (explanations.ok()) {
      std::cout << (*explanations)[0].ToString(schema, 5) << "\n";
    }
  }

  if (borderline != scored.end()) {
    std::cout << "=== most borderline candidate (p = "
              << FormatDouble(borderline->probability, 3) << ") ===\n"
              << borderline->pair.ToString() << "\n";
    const auto& explanations = batch.results[slot++];
    if (explanations.ok()) {
      for (const auto& exp : *explanations) {
        std::cout << exp.ToString(schema, 5) << "\n";
      }
    }
  }
  std::cout << "engine: " << batch.stats.ToString() << "\n";

  if (flags.GetBool("show-metrics", false)) {
    std::cout << "\nmetrics registry after the run:\n";
    TableSink sink(std::cout);
    sink.Emit(MetricsRegistry::Global().Snapshot());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = landmark::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status().ToString() << "\n";
    return 1;
  }
  landmark::TelemetryScope telemetry =
      landmark::TelemetryScope::FromFlags(*flags);
  return Run(*flags);
}
