// Batch use of the library: generate a benchmark dataset (or load one from
// CSV in the Magellan layout), explain a sample of records with every
// technique, and export the token weights to a CSV that downstream tools
// (spreadsheets, notebooks) can consume.
//
// Run:  ./export_explanations [--dataset S-IA] [--records 20]
//                             [--input pairs.csv] [--output explanations.csv]

#include <iostream>

#include "core/landmark_explanation.h"
#include "datagen/magellan.h"
#include "eval/experiment.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace {

using namespace landmark;  // NOLINT: example code

int Run(const Flags& flags) {
  const std::string output = flags.GetString("output", "explanations.csv");
  const size_t records = static_cast<size_t>(flags.GetInt("records", 20));

  // Either load user data or fall back to a generated benchmark dataset.
  EmDataset dataset;
  if (flags.Has("input")) {
    dataset =
        ReadEmDataset(flags.GetString("input", ""), "user-data").ValueOrDie();
    std::cout << "loaded " << dataset.size() << " pairs from "
              << flags.GetString("input", "") << "\n";
  } else {
    const std::string code = flags.GetString("dataset", "S-IA");
    dataset = GenerateMagellanDataset(FindMagellanSpec(code).ValueOrDie())
                  .ValueOrDie();
    std::cout << "generated benchmark dataset " << code << " ("
              << dataset.size() << " pairs)\n";
  }

  auto model = LogRegEmModel::Train(dataset).ValueOrDie();
  std::cout << "model F1 = " << FormatDouble(model->report().f1, 3) << "\n";

  Rng rng(123);
  std::vector<size_t> sample;
  for (MatchLabel label : {MatchLabel::kMatch, MatchLabel::kNonMatch}) {
    for (size_t i : dataset.SampleByLabel(label, records / 2, rng)) {
      sample.push_back(i);
    }
  }

  CsvTable out;
  out.header = {"pair_id",   "label",     "technique", "landmark",
                "attribute", "occurrence", "token",    "injected",
                "weight",    "model_p",   "surrogate_r2"};

  const Schema& schema = *dataset.entity_schema();
  std::vector<Technique> techniques = MakeTechniques(ExplainerOptions{});
  for (size_t idx : sample) {
    const PairRecord& pair = dataset.pair(idx);
    for (const Technique& technique : techniques) {
      auto explanations = technique.explainer->Explain(*model, pair);
      if (!explanations.ok()) continue;
      for (const Explanation& exp : *explanations) {
        for (const TokenWeight& tw : exp.token_weights) {
          out.rows.push_back(
              {std::to_string(pair.id), pair.is_match() ? "1" : "0",
               exp.explainer_name,
               exp.landmark ? std::string(EntitySideName(*exp.landmark)) : "",
               schema.attribute_name(tw.token.attribute),
               std::to_string(tw.token.occurrence), tw.token.text,
               tw.token.injected ? "1" : "0", FormatDouble(tw.weight, 6),
               FormatDouble(exp.model_prediction, 6),
               FormatDouble(exp.surrogate_r2, 4)});
        }
      }
    }
  }

  Status st = WriteCsvFile(out, output);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << out.rows.size() << " token weights for "
            << sample.size() << " records to " << output << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = landmark::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status().ToString() << "\n";
    return 1;
  }
  return Run(*flags);
}
