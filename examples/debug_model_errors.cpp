// The paper's motivating use case: use explanations "to debug erroneous
// behaviors and diagnose unexpected results" (§1). This example trains the
// EM model on a benchmark dataset, hunts for its worst mistakes on held-out
// style records (false positives and false negatives), and explains each one
// from both landmark perspectives so a practitioner can see *which tokens*
// misled the model.
//
// Run:  ./debug_model_errors [--dataset S-WA] [--errors 3]

#include <algorithm>
#include <iostream>

#include "core/landmark_explanation.h"
#include "datagen/magellan.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace {

using namespace landmark;  // NOLINT: example code

int Run(const Flags& flags) {
  const std::string code = flags.GetString("dataset", "S-WA");
  const size_t max_errors =
      static_cast<size_t>(flags.GetInt("errors", 3));

  MagellanDatasetSpec spec = FindMagellanSpec(code).ValueOrDie();
  MagellanGenOptions gen;
  gen.size_scale = flags.GetDouble("scale", 0.5);
  EmDataset dataset = GenerateMagellanDataset(spec, gen).ValueOrDie();
  auto model = LogRegEmModel::Train(dataset).ValueOrDie();
  std::cout << "dataset " << code << ", model F1 = "
            << FormatDouble(model->report().f1, 3) << "\n\n";

  // Rank records by how wrong the model is: |p - label|.
  struct Mistake {
    size_t index;
    double probability;
  };
  std::vector<Mistake> false_positives, false_negatives;
  for (size_t i = 0; i < dataset.size(); ++i) {
    const PairRecord& pair = dataset.pair(i);
    const double p = model->PredictProba(pair);
    if (!pair.is_match() && p >= 0.5) false_positives.push_back({i, p});
    if (pair.is_match() && p < 0.5) false_negatives.push_back({i, p});
  }
  std::sort(false_positives.begin(), false_positives.end(),
            [](const Mistake& a, const Mistake& b) {
              return a.probability > b.probability;
            });
  std::sort(false_negatives.begin(), false_negatives.end(),
            [](const Mistake& a, const Mistake& b) {
              return a.probability < b.probability;
            });
  std::cout << false_positives.size() << " false positives, "
            << false_negatives.size() << " false negatives\n\n";

  LandmarkExplainer explainer(GenerationStrategy::kAuto);
  const Schema& schema = *dataset.entity_schema();

  auto explain_mistakes = [&](const char* title,
                              const std::vector<Mistake>& mistakes) {
    std::cout << "==== " << title << " ====\n";
    for (size_t k = 0; k < std::min(max_errors, mistakes.size()); ++k) {
      const PairRecord& pair = dataset.pair(mistakes[k].index);
      std::cout << pair.ToString() << "\n  model p = "
                << FormatDouble(mistakes[k].probability, 3) << "\n";
      auto explanations = explainer.Explain(*model, pair);
      if (!explanations.ok()) {
        std::cout << "  (unexplainable: "
                  << explanations.status().ToString() << ")\n";
        continue;
      }
      for (const Explanation& exp : *explanations) {
        std::cout << "  -- landmark=" << EntitySideName(*exp.landmark)
                  << ", the tokens that drove the decision:\n";
        for (size_t idx : exp.TopFeatures(4)) {
          const TokenWeight& tw = exp.token_weights[idx];
          std::cout << "     " << (tw.weight >= 0 ? "+" : "")
                    << FormatDouble(tw.weight, 4) << "  "
                    << tw.token.PrefixedName(schema) << "\n";
        }
      }
      std::cout << "\n";
    }
  };
  explain_mistakes("false positives (predicted match, labeled non-match)",
                   false_positives);
  explain_mistakes("false negatives (predicted non-match, labeled match)",
                   false_negatives);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = landmark::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status().ToString() << "\n";
    return 1;
  }
  return Run(*flags);
}
