// The paper's §5 future work, implemented: summarize many local
// explanations into a global view of the EM model. The example also shows
// model-agnosticism by summarizing a *nonlinear* random-forest EM model
// side by side with the logistic-regression one.
//
// Run:  ./global_summary [--dataset S-IA] [--records 40]

#include <iostream>

#include "core/landmark_explanation.h"
#include "core/summarizer.h"
#include "datagen/magellan.h"
#include "em/forest_em_model.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace {

using namespace landmark;  // NOLINT: example code

ExplanationSummary Summarize(const EmModel& model, const EmDataset& dataset,
                             size_t records) {
  LandmarkExplainer explainer(GenerationStrategy::kAuto);
  Rng rng(5);
  std::vector<Explanation> all;
  for (MatchLabel label : {MatchLabel::kMatch, MatchLabel::kNonMatch}) {
    for (size_t idx : dataset.SampleByLabel(label, records / 2, rng)) {
      auto explanations = explainer.Explain(model, dataset.pair(idx));
      if (!explanations.ok()) continue;
      for (auto& exp : *explanations) all.push_back(std::move(exp));
    }
  }
  return SummarizeExplanations(all,
                               dataset.entity_schema()->num_attributes());
}

int Run(const Flags& flags) {
  const std::string code = flags.GetString("dataset", "S-IA");
  const size_t records = static_cast<size_t>(flags.GetInt("records", 40));
  EmDataset dataset =
      GenerateMagellanDataset(FindMagellanSpec(code).ValueOrDie())
          .ValueOrDie();
  const Schema& schema = *dataset.entity_schema();

  auto logreg = LogRegEmModel::Train(dataset).ValueOrDie();
  std::cout << "=== " << logreg->name()
            << " (F1 = " << FormatDouble(logreg->report().f1, 3) << ") ===\n";
  std::cout << Summarize(*logreg, dataset, records).ToString(schema) << "\n";

  auto forest = ForestEmModel::Train(dataset).ValueOrDie();
  std::cout << "=== " << forest->name()
            << " (F1 = " << FormatDouble(forest->report().f1, 3) << ") ===\n";
  ExplanationSummary forest_summary = Summarize(*forest, dataset, records);
  std::cout << forest_summary.ToString(schema) << "\n";

  // Cross-check the summary's attribute ranking against the forest's own
  // impurity-based importances — the global analogue of the paper's
  // attribute-based evaluation.
  auto internal = forest->AttributeWeights().ValueOrDie();
  std::cout << "forest-internal attribute importances (impurity decrease):\n";
  for (size_t a = 0; a < internal.size(); ++a) {
    std::cout << "  " << schema.attribute_name(a) << ": "
              << FormatDouble(internal[a], 3) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = landmark::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status().ToString() << "\n";
    return 1;
  }
  return Run(*flags);
}
