#ifndef LANDMARK_EVAL_EXPERIMENT_H_
#define LANDMARK_EVAL_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/landmark_explainer.h"
#include "core/lime_explainer.h"
#include "core/mojito_copy_explainer.h"
#include "data/em_dataset.h"
#include "datagen/magellan.h"
#include "em/logreg_em_model.h"
#include "eval/evaluation.h"
#include "util/flags.h"
#include "util/result.h"

namespace landmark {

/// \brief Everything a paper experiment needs to run on one dataset:
/// generation, model training, and the paper's per-label record sampling.
struct ExperimentConfig {
  /// The paper samples 100 records per label ("all records are sampled when
  /// the dataset contains less").
  size_t records_per_label = 100;
  /// Scales the generated dataset sizes (1.0 = the sizes of Table 1).
  double size_scale = 1.0;
  ExplainerOptions explainer_options;
  /// Staged-pipeline knobs (worker threads, prediction memo). The thread
  /// count never changes results — see the ExplainerEngine determinism
  /// contract.
  EngineOptions engine_options;
  TokenRemovalOptions token_removal;
  InterestOptions interest;
  MagellanGenOptions gen_options;
  LogRegEmModelOptions model_options;
  uint64_t sample_seed = 7;

  /// Reads overrides from command-line flags:
  ///   --records N --samples N --scale F --kernel-width F --lambda F
  ///   --threshold F --seed N --datasets S-BR,S-IA
  ///   --threads N (0 = hardware concurrency) --no-predict-cache
  ///   --no-feature-cache --no-task-graph (legacy barriered stage loops;
  ///   same results, kept as the scheduler's equivalence oracle)
  ///   --no-simd (scalar kernel variants; same results, kept as the
  ///   vectorized kernels' equivalence oracle)
  ///   --stall-threshold SECONDS (flag nodes running longer than this in
  ///   the stall watchdog; 0 = disabled, never changes explanations)
  static ExperimentConfig FromFlags(const Flags& flags);

  /// Builds the engine configured by `engine_options`.
  ExplainerEngine MakeEngine() const { return ExplainerEngine(engine_options); }
};

/// Returns the dataset codes selected by --datasets (comma separated), or
/// all 12 when the flag is absent.
std::vector<MagellanDatasetSpec> SelectSpecs(const Flags& flags);

/// \brief A generated dataset, its trained EM model and the sampled record
/// indices for both labels.
class ExperimentContext {
 public:
  /// Generates the dataset of `spec` and trains the logistic-regression EM
  /// model on it.
  static Result<ExperimentContext> Create(const MagellanDatasetSpec& spec,
                                          const ExperimentConfig& config);

  const MagellanDatasetSpec& spec() const { return spec_; }
  const EmDataset& dataset() const { return dataset_; }
  const LogRegEmModel& model() const { return *model_; }

  /// The sampled pair indices for a label (the paper's "100 per label").
  const std::vector<size_t>& sample(MatchLabel label) const {
    return label == MatchLabel::kMatch ? match_sample_ : non_match_sample_;
  }

 private:
  ExperimentContext() = default;

  MagellanDatasetSpec spec_;
  EmDataset dataset_;
  std::unique_ptr<LogRegEmModel> model_;
  std::vector<size_t> match_sample_;
  std::vector<size_t> non_match_sample_;
};

/// \brief The four techniques of the paper's evaluation, in table order.
struct Technique {
  std::string label;  // column label: "Single", "Double", "LIME", "Mojito Copy"
  std::unique_ptr<PairExplainer> explainer;
  /// Mojito Copy is only evaluated on non-matching records in the paper.
  bool non_match_only = false;
};

/// Builds {Single, Double, LIME, Mojito Copy} with the given options.
std::vector<Technique> MakeTechniques(const ExplainerOptions& options);

}  // namespace landmark

#endif  // LANDMARK_EVAL_EXPERIMENT_H_
