#ifndef LANDMARK_EVAL_STABILITY_H_
#define LANDMARK_EVAL_STABILITY_H_

#include <functional>
#include <memory>

#include "eval/evaluation.h"

namespace landmark {

/// \brief Stability of explanations under perturbation-sampling randomness
/// (extension experiment). An explanation technique is only trustworthy if
/// re-running it with a different sampling seed surfaces (mostly) the same
/// top tokens.
struct StabilityOptions {
  /// Independent explanation runs per record.
  size_t num_seeds = 5;
  /// Top-k token sets compared across runs.
  size_t top_k = 5;
  /// Seeds used are base_seed, base_seed + 1, ...
  uint64_t base_seed = 1000;
};

struct StabilityResult {
  /// Mean pairwise Jaccard similarity of the top-k token sets across seeds,
  /// averaged over records (1.0 = perfectly stable).
  double mean_topk_jaccard = 0.0;
  size_t num_records = 0;
};

/// Builds a fresh explainer for a given options value (the seed is varied by
/// the evaluator).
using ExplainerFactory =
    std::function<std::unique_ptr<PairExplainer>(const ExplainerOptions&)>;

/// Measures top-k stability of the technique produced by `factory` on the
/// records in `indices`. Records that fail to explain are skipped.
Result<StabilityResult> EvaluateStability(
    const EmModel& model, const ExplainerFactory& factory,
    const ExplainerOptions& base_options, const EmDataset& dataset,
    const std::vector<size_t>& indices, const StabilityOptions& options = {});

}  // namespace landmark

#endif  // LANDMARK_EVAL_STABILITY_H_
