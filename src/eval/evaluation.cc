#include "eval/evaluation.h"

#include <algorithm>
#include <cmath>

#include "ml/kendall.h"
#include "util/logging.h"

namespace landmark {

ExplainBatchResult ExplainRecords(const EmModel& model,
                                  const PairExplainer& explainer,
                                  const EmDataset& dataset,
                                  const std::vector<size_t>& indices,
                                  const ExplainerEngine& engine) {
  std::vector<const PairRecord*> pairs;
  pairs.reserve(indices.size());
  for (size_t idx : indices) pairs.push_back(&dataset.pair(idx));

  EngineBatchResult batch = engine.ExplainBatch(model, pairs, explainer);

  ExplainBatchResult out;
  out.stats = batch.stats;
  out.records.reserve(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    Result<std::vector<Explanation>>& result = batch.results[i];
    if (!result.ok()) {
      // A sweep over a degenerate dataset can skip thousands of pairs;
      // sample the warning instead of flooding the log.
      LANDMARK_LOG_EVERY_N(Warning, 64)
          << "skipping pair " << indices[i] << ": "
          << result.status().ToString();
      ++out.num_skipped;
      continue;
    }
    ExplainedRecord record;
    record.pair_index = indices[i];
    record.explanations = std::move(result).ValueOrDie();
    out.records.push_back(std::move(record));
  }
  return out;
}

ExplainBatchResult ExplainRecords(const EmModel& model,
                                  const PairExplainer& explainer,
                                  const EmDataset& dataset,
                                  const std::vector<size_t>& indices) {
  return ExplainRecords(model, explainer, dataset, indices,
                        ExplainerEngine::Serial());
}

Result<TokenRemovalResult> EvaluateTokenRemoval(
    const EmModel& model, const PairExplainer& explainer,
    const EmDataset& dataset, const std::vector<ExplainedRecord>& records,
    const TokenRemovalOptions& options) {
  if (options.removal_fraction <= 0.0 || options.removal_fraction >= 1.0) {
    return Status::InvalidArgument("removal_fraction must be in (0, 1)");
  }
  if (options.repetitions == 0) {
    return Status::InvalidArgument("repetitions must be >= 1");
  }

  Rng rng(options.seed);
  TokenRemovalResult result;
  double abs_error_total = 0.0;
  size_t agreements = 0;

  for (const ExplainedRecord& record : records) {
    const PairRecord& pair = dataset.pair(record.pair_index);
    for (const Explanation& explanation : record.explanations) {
      const size_t dim = explanation.size();
      if (dim < 2) continue;  // nothing meaningful to remove
      const size_t num_remove = std::max<size_t>(
          1, static_cast<size_t>(std::lround(dim * options.removal_fraction)));
      for (size_t rep = 0; rep < options.repetitions; ++rep) {
        std::vector<uint8_t> active(dim, 1);
        double removed_weight = 0.0;
        for (size_t idx : rng.SampleWithoutReplacement(dim, num_remove)) {
          active[idx] = 0;
          removed_weight += explanation.token_weights[idx].weight;
        }

        LANDMARK_ASSIGN_OR_RETURN(
            PairRecord reconstructed,
            explainer.Reconstruct(explanation, pair, active));
        const double p_model = model.PredictProba(reconstructed);
        const double p_surrogate =
            explanation.model_prediction - removed_weight;

        abs_error_total += std::abs(p_model - p_surrogate);
        const bool model_match = p_model >= options.decision_threshold;
        const bool surrogate_match =
            p_surrogate >= options.decision_threshold;
        agreements += model_match == surrogate_match;
        ++result.num_trials;
      }
    }
  }

  if (result.num_trials > 0) {
    result.mae = abs_error_total / static_cast<double>(result.num_trials);
    result.accuracy = static_cast<double>(agreements) /
                      static_cast<double>(result.num_trials);
  }
  return result;
}

Result<AttributeEvalResult> EvaluateAttributeCorrelation(
    const EmModel& model, const EmDataset& dataset,
    const std::vector<ExplainedRecord>& records) {
  LANDMARK_ASSIGN_OR_RETURN(std::vector<double> model_weights,
                            model.AttributeWeights());
  const size_t num_attrs = dataset.entity_schema()->num_attributes();
  if (model_weights.size() != num_attrs) {
    return Status::Internal("model attribute weights do not match schema");
  }
  if (num_attrs < 2) {
    return Status::InvalidArgument(
        "attribute evaluation needs at least two attributes");
  }

  AttributeEvalResult result;
  double tau_total = 0.0;
  for (const ExplainedRecord& record : records) {
    for (const Explanation& explanation : record.explanations) {
      std::vector<double> surrogate_weights =
          explanation.AttributeWeights(num_attrs);
      tau_total += WeightedKendallTau(model_weights, surrogate_weights);
      ++result.num_explanations;
    }
  }
  if (result.num_explanations > 0) {
    result.mean_weighted_tau =
        tau_total / static_cast<double>(result.num_explanations);
  }
  return result;
}

Result<InterestResult> EvaluateInterest(
    const EmModel& model, const PairExplainer& explainer,
    const EmDataset& dataset, const std::vector<ExplainedRecord>& records,
    MatchLabel label, const InterestOptions& options) {
  InterestResult result;
  size_t flips = 0;
  for (const ExplainedRecord& record : records) {
    const PairRecord& pair = dataset.pair(record.pair_index);
    // The reference class is the model's verdict on the *original* record —
    // not on the technique's internal representation (e.g. the augmented
    // record of double-entity generation), which may already sit on the
    // other side of the threshold.
    const bool before =
        model.PredictProba(pair) >= options.decision_threshold;
    for (const Explanation& explanation : record.explanations) {
      // Matching records: drop the tokens that argue *for* the match.
      // Non-matching records: drop the tokens that argue against it.
      std::vector<size_t> to_remove = label == MatchLabel::kMatch
                                          ? explanation.PositiveFeatures()
                                          : explanation.NegativeFeatures();
      std::vector<uint8_t> active(explanation.size(), 1);
      for (size_t idx : to_remove) active[idx] = 0;

      LANDMARK_ASSIGN_OR_RETURN(
          PairRecord reconstructed,
          explainer.Reconstruct(explanation, pair, active));
      const bool after =
          model.PredictProba(reconstructed) >= options.decision_threshold;
      flips += before != after;
      ++result.num_explanations;
    }
  }
  if (result.num_explanations > 0) {
    result.interest =
        static_cast<double>(flips) /
        static_cast<double>(result.num_explanations);
  }
  return result;
}

}  // namespace landmark
