#include "eval/stability.h"

#include <set>
#include <tuple>

namespace landmark {

namespace {

/// Identity of a token within one record's space (surface text included so
/// the comparison is meaningful to a user).
using TokenKey = std::tuple<int, bool, size_t, size_t, std::string>;

std::set<TokenKey> TopTokenSet(const Explanation& exp, size_t k) {
  std::set<TokenKey> keys;
  for (size_t idx : exp.TopFeatures(k)) {
    const Token& t = exp.token_weights[idx].token;
    keys.insert({static_cast<int>(t.side), t.injected, t.attribute,
                 t.occurrence, t.text});
  }
  return keys;
}

double SetJaccard(const std::set<TokenKey>& a, const std::set<TokenKey>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& key : a) inter += b.count(key);
  const size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

Result<StabilityResult> EvaluateStability(
    const EmModel& model, const ExplainerFactory& factory,
    const ExplainerOptions& base_options, const EmDataset& dataset,
    const std::vector<size_t>& indices, const StabilityOptions& options) {
  if (options.num_seeds < 2) {
    return Status::InvalidArgument("stability needs at least two seeds");
  }

  StabilityResult result;
  double total = 0.0;

  for (size_t idx : indices) {
    // One run per seed; each run may return several explanations (the two
    // landmark perspectives) — compare them position-wise.
    std::vector<std::vector<std::set<TokenKey>>> runs;
    bool failed = false;
    for (size_t s = 0; s < options.num_seeds; ++s) {
      ExplainerOptions seeded = base_options;
      seeded.seed = options.base_seed + s;
      std::unique_ptr<PairExplainer> explainer = factory(seeded);
      auto explanations = explainer->Explain(model, dataset.pair(idx));
      if (!explanations.ok()) {
        failed = true;
        break;
      }
      std::vector<std::set<TokenKey>> top_sets;
      for (const Explanation& exp : *explanations) {
        top_sets.push_back(TopTokenSet(exp, options.top_k));
      }
      runs.push_back(std::move(top_sets));
    }
    if (failed || runs.empty()) continue;

    double record_total = 0.0;
    size_t record_pairs = 0;
    for (size_t a = 0; a < runs.size(); ++a) {
      for (size_t b = a + 1; b < runs.size(); ++b) {
        const size_t positions = std::min(runs[a].size(), runs[b].size());
        for (size_t p = 0; p < positions; ++p) {
          record_total += SetJaccard(runs[a][p], runs[b][p]);
          ++record_pairs;
        }
      }
    }
    if (record_pairs == 0) continue;
    total += record_total / static_cast<double>(record_pairs);
    ++result.num_records;
  }

  if (result.num_records > 0) {
    result.mean_topk_jaccard =
        total / static_cast<double>(result.num_records);
  }
  return result;
}

}  // namespace landmark
