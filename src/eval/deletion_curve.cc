#include "eval/deletion_curve.h"

#include <algorithm>
#include <numeric>

namespace landmark {

namespace {

/// Probability trajectory deleting features of `exp` in `order`.
Result<std::vector<double>> CurveForOrder(
    const EmModel& model, const PairExplainer& explainer,
    const Explanation& exp, const PairRecord& pair,
    const std::vector<size_t>& order, size_t max_steps) {
  std::vector<double> curve;
  curve.reserve(order.size() + 1);
  curve.push_back(exp.model_prediction);
  std::vector<uint8_t> active(exp.size(), 1);
  const size_t steps =
      max_steps == 0 ? order.size() : std::min(max_steps, order.size());
  for (size_t s = 0; s < steps; ++s) {
    active[order[s]] = 0;
    LANDMARK_ASSIGN_OR_RETURN(PairRecord rec,
                              explainer.Reconstruct(exp, pair, active));
    curve.push_back(model.PredictProba(rec));
  }
  return curve;
}

double NormalizedAuc(const std::vector<double>& curve) {
  if (curve.size() < 2) return curve.empty() ? 0.0 : curve[0];
  // Trapezoid rule over the unit-normalized x axis.
  double area = 0.0;
  for (size_t i = 1; i < curve.size(); ++i) {
    area += 0.5 * (curve[i - 1] + curve[i]);
  }
  return area / static_cast<double>(curve.size() - 1);
}

}  // namespace

Result<DeletionCurveResult> EvaluateDeletionCurve(
    const EmModel& model, const PairExplainer& explainer,
    const EmDataset& dataset, const std::vector<ExplainedRecord>& records,
    const DeletionCurveOptions& options) {
  DeletionCurveResult result;
  Rng rng(options.seed);

  std::vector<std::vector<double>> guided_curves;
  double guided_auc_total = 0.0;
  double random_auc_total = 0.0;
  size_t random_count = 0;

  for (const ExplainedRecord& record : records) {
    const PairRecord& pair = dataset.pair(record.pair_index);
    for (const Explanation& exp : record.explanations) {
      if (exp.size() < 2) continue;

      // Guided order: most match-supporting weight first.
      std::vector<size_t> order(exp.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&exp](size_t a, size_t b) {
        const double wa = exp.token_weights[a].weight;
        const double wb = exp.token_weights[b].weight;
        if (wa != wb) return wa > wb;
        return a < b;
      });
      LANDMARK_ASSIGN_OR_RETURN(
          std::vector<double> guided,
          CurveForOrder(model, explainer, exp, pair, order,
                        options.max_steps));
      guided_auc_total += NormalizedAuc(guided);
      guided_curves.push_back(std::move(guided));
      ++result.num_explanations;

      for (size_t rep = 0; rep < options.random_repetitions; ++rep) {
        std::vector<size_t> random_order = order;
        rng.Shuffle(random_order);
        LANDMARK_ASSIGN_OR_RETURN(
            std::vector<double> random_curve,
            CurveForOrder(model, explainer, exp, pair, random_order,
                          options.max_steps));
        random_auc_total += NormalizedAuc(random_curve);
        ++random_count;
      }
    }
  }

  if (result.num_explanations == 0) return result;
  result.auc = guided_auc_total / static_cast<double>(result.num_explanations);
  if (random_count > 0) {
    result.random_auc = random_auc_total / static_cast<double>(random_count);
  }

  // Mean curve over the shortest common length.
  size_t min_len = guided_curves[0].size();
  for (const auto& c : guided_curves) min_len = std::min(min_len, c.size());
  result.mean_curve.assign(min_len, 0.0);
  for (const auto& c : guided_curves) {
    for (size_t i = 0; i < min_len; ++i) result.mean_curve[i] += c[i];
  }
  for (double& v : result.mean_curve) {
    v /= static_cast<double>(guided_curves.size());
  }
  return result;
}

}  // namespace landmark
