#ifndef LANDMARK_EVAL_EVALUATION_H_
#define LANDMARK_EVAL_EVALUATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine/explainer_engine.h"
#include "core/explainer.h"
#include "data/em_dataset.h"
#include "em/em_model.h"
#include "util/result.h"
#include "util/rng.h"

namespace landmark {

/// \brief One explained record: the pair plus every explanation a technique
/// produced for it (two for landmark techniques, one for plain LIME).
struct ExplainedRecord {
  size_t pair_index = 0;
  std::vector<Explanation> explanations;
};

/// Explains each pair in `indices` through the staged ExplainerEngine.
/// Records whose explanation fails (e.g. all values null after the dirty
/// transform) are skipped with a warning counter rather than failing the
/// sweep; `num_skipped` reports how many.
struct ExplainBatchResult {
  std::vector<ExplainedRecord> records;
  size_t num_skipped = 0;
  /// Stage counters of the underlying engine batch.
  EngineStats stats;
};

/// Runs the batch on `engine` (thread count and prediction-memo behaviour
/// come from its EngineOptions).
ExplainBatchResult ExplainRecords(const EmModel& model,
                                  const PairExplainer& explainer,
                                  const EmDataset& dataset,
                                  const std::vector<size_t>& indices,
                                  const ExplainerEngine& engine);

/// Convenience overload on the shared serial engine.
ExplainBatchResult ExplainRecords(const EmModel& model,
                                  const PairExplainer& explainer,
                                  const EmDataset& dataset,
                                  const std::vector<size_t>& indices);

/// \brief Token-based evaluation (paper §4.2.1, Table 2).
///
/// For every explanation: remove `removal_fraction` of its interpretable
/// features at random, reconstruct the record, and compare the EM model's
/// probability with the surrogate estimate
///   p̂ = f(x) − Σ_{removed} wᵢ.
/// Accuracy is agreement of the two at `decision_threshold`; MAE is the
/// mean |p_model − p̂|.
struct TokenRemovalOptions {
  double removal_fraction = 0.25;
  size_t repetitions = 1;  // independent removals per explanation
  double decision_threshold = 0.5;
  uint64_t seed = 7;
};

struct TokenRemovalResult {
  double accuracy = 0.0;
  double mae = 0.0;
  size_t num_trials = 0;
};

Result<TokenRemovalResult> EvaluateTokenRemoval(
    const EmModel& model, const PairExplainer& explainer,
    const EmDataset& dataset, const std::vector<ExplainedRecord>& records,
    const TokenRemovalOptions& options);

/// \brief Attribute-based evaluation (paper §4.2.2, Table 3).
///
/// Correlates the EM model's internal attribute ranking (sum of absolute
/// feature coefficients per attribute) with the surrogate's (sum of
/// absolute token weights per attribute), using the weighted Kendall tau;
/// the result is the mean correlation over all explanations.
struct AttributeEvalResult {
  double mean_weighted_tau = 0.0;
  size_t num_explanations = 0;
};

Result<AttributeEvalResult> EvaluateAttributeCorrelation(
    const EmModel& model, const EmDataset& dataset,
    const std::vector<ExplainedRecord>& records);

/// \brief Interest evaluation (paper §4.3, Table 4).
///
/// For match-labeled records every positive-weight token is removed; for
/// non-match-labeled records every negative-weight token is removed.
/// Interest is the fraction of explanations whose reconstructed record flips
/// the model's predicted class.
struct InterestOptions {
  double decision_threshold = 0.5;
};

struct InterestResult {
  double interest = 0.0;
  size_t num_explanations = 0;
};

Result<InterestResult> EvaluateInterest(
    const EmModel& model, const PairExplainer& explainer,
    const EmDataset& dataset, const std::vector<ExplainedRecord>& records,
    MatchLabel label, const InterestOptions& options);

}  // namespace landmark

#endif  // LANDMARK_EVAL_EVALUATION_H_
