#include "eval/experiment.h"

#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace landmark {

ExperimentConfig ExperimentConfig::FromFlags(const Flags& flags) {
  ExperimentConfig config;
  config.records_per_label = static_cast<size_t>(
      flags.GetInt("records", static_cast<int64_t>(config.records_per_label)));
  config.size_scale = flags.GetDouble("scale", config.size_scale);
  config.explainer_options.num_samples = static_cast<size_t>(flags.GetInt(
      "samples", static_cast<int64_t>(config.explainer_options.num_samples)));
  config.explainer_options.kernel_width =
      flags.GetDouble("kernel-width", config.explainer_options.kernel_width);
  config.explainer_options.ridge_lambda =
      flags.GetDouble("lambda", config.explainer_options.ridge_lambda);
  config.explainer_options.seed = static_cast<uint64_t>(
      flags.GetInt("seed", static_cast<int64_t>(config.explainer_options.seed)));
  config.token_removal.decision_threshold =
      flags.GetDouble("threshold", config.token_removal.decision_threshold);
  config.interest.decision_threshold = config.token_removal.decision_threshold;
  config.token_removal.removal_fraction = flags.GetDouble(
      "removal-fraction", config.token_removal.removal_fraction);
  const std::string neighborhood = flags.GetString("neighborhood", "lime");
  if (neighborhood == "shap") {
    config.explainer_options.neighborhood = NeighborhoodKind::kShap;
  } else if (neighborhood != "lime") {
    LANDMARK_LOG(Warning) << "unknown --neighborhood '" << neighborhood
                          << "', using lime";
  }
  const int64_t threads = flags.GetInt(
      "threads", static_cast<int64_t>(config.engine_options.num_threads));
  if (threads < 0) {
    LANDMARK_LOG(Warning) << "--threads " << threads << " is negative, using 1";
    config.engine_options.num_threads = 1;
  } else {
    config.engine_options.num_threads = static_cast<size_t>(threads);
  }
  if (flags.GetBool("no-predict-cache", false)) {
    config.engine_options.cache_predictions = false;
  }
  if (flags.GetBool("no-feature-cache", false)) {
    config.engine_options.cache_features = false;
  }
  if (flags.GetBool("no-task-graph", false)) {
    config.engine_options.use_task_graph = false;
  }
  if (flags.GetBool("no-simd", false)) {
    config.engine_options.simd = false;
  }
  config.engine_options.stall_threshold =
      flags.GetDouble("stall-threshold", config.engine_options.stall_threshold);
  return config;
}

std::vector<MagellanDatasetSpec> SelectSpecs(const Flags& flags) {
  const std::vector<MagellanDatasetSpec>& all = MagellanBenchmark();
  if (!flags.Has("datasets")) return all;
  std::vector<MagellanDatasetSpec> selected;
  for (const std::string& code : Split(flags.GetString("datasets", ""), ',')) {
    const std::string trimmed = Trim(code);
    if (trimmed.empty()) continue;
    Result<MagellanDatasetSpec> spec = FindMagellanSpec(trimmed);
    if (spec.ok()) {
      selected.push_back(*spec);
    } else {
      LANDMARK_LOG(Warning) << "unknown dataset code: " << trimmed;
    }
  }
  return selected;
}

Result<ExperimentContext> ExperimentContext::Create(
    const MagellanDatasetSpec& spec, const ExperimentConfig& config) {
  ExperimentContext context;
  context.spec_ = spec;

  Timer timer;
  MagellanGenOptions gen = config.gen_options;
  gen.size_scale = config.size_scale;
  LANDMARK_ASSIGN_OR_RETURN(context.dataset_,
                            GenerateMagellanDataset(spec, gen));
  const double gen_secs = timer.ElapsedSeconds();

  timer.Reset();
  LANDMARK_ASSIGN_OR_RETURN(
      context.model_,
      LogRegEmModel::Train(context.dataset_, config.model_options));
  LANDMARK_LOG(Info) << spec.code << ": generated "
                     << context.dataset_.size() << " pairs in "
                     << FormatDouble(gen_secs, 2) << "s, trained model in "
                     << FormatDouble(timer.ElapsedSeconds(), 2)
                     << "s (test F1=" << FormatDouble(context.model_->report().f1, 3)
                     << ")";

  Rng rng(config.sample_seed ^ spec.seed);
  context.match_sample_ = context.dataset_.SampleByLabel(
      MatchLabel::kMatch, config.records_per_label, rng);
  context.non_match_sample_ = context.dataset_.SampleByLabel(
      MatchLabel::kNonMatch, config.records_per_label, rng);
  return context;
}

std::vector<Technique> MakeTechniques(const ExplainerOptions& options) {
  std::vector<Technique> techniques;
  techniques.push_back(Technique{
      "Single",
      std::make_unique<LandmarkExplainer>(GenerationStrategy::kSingle, options),
      /*non_match_only=*/false});
  techniques.push_back(Technique{
      "Double",
      std::make_unique<LandmarkExplainer>(GenerationStrategy::kDouble, options),
      /*non_match_only=*/false});
  techniques.push_back(
      Technique{"LIME", std::make_unique<LimeExplainer>(options),
                /*non_match_only=*/false});
  techniques.push_back(Technique{
      "Mojito Copy", std::make_unique<MojitoCopyExplainer>(options),
      /*non_match_only=*/true});
  return techniques;
}

}  // namespace landmark
