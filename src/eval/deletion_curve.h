#ifndef LANDMARK_EVAL_DELETION_CURVE_H_
#define LANDMARK_EVAL_DELETION_CURVE_H_

#include <vector>

#include "eval/evaluation.h"

namespace landmark {

/// \brief Deletion-curve faithfulness (extension experiment; not in the
/// paper, standard in the XAI literature).
///
/// Tokens are deleted one at a time in descending order of their weight
/// *towards the match class*, re-querying the model after every deletion.
/// A faithful explanation ranks the truly influential tokens first, so the
/// model's match probability collapses early and the (normalized) area
/// under the deletion curve is low. A random deletion order gives the
/// reference AUC; faithful explanations sit clearly below it.
struct DeletionCurveOptions {
  /// Deletions per explanation (0 = all tokens).
  size_t max_steps = 20;
  /// Random-baseline repetitions per explanation.
  size_t random_repetitions = 3;
  uint64_t seed = 99;
};

struct DeletionCurveResult {
  /// Mean model probability after k deletions (index 0 = no deletion),
  /// averaged over explanations; curves are truncated/padded to the
  /// shortest common length.
  std::vector<double> mean_curve;
  /// Normalized area under the mean curve, in [0, 1].
  double auc = 0.0;
  /// Same, deleting in random order (the reference).
  double random_auc = 0.0;
  size_t num_explanations = 0;
};

/// Computes deletion curves for every explanation in `records`.
Result<DeletionCurveResult> EvaluateDeletionCurve(
    const EmModel& model, const PairExplainer& explainer,
    const EmDataset& dataset, const std::vector<ExplainedRecord>& records,
    const DeletionCurveOptions& options = {});

}  // namespace landmark

#endif  // LANDMARK_EVAL_DELETION_CURVE_H_
