#include "util/mutex.h"

#if defined(LANDMARK_DEADLOCK_DEBUG)

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/telemetry/flight_deck.h"

namespace landmark {
namespace deadlock_detail {
namespace {

// The acquisition-order graph. Nodes are mutex names (rank identities);
// an edge a -> b records that some thread held a while acquiring b, along
// with a description of that thread (label + activity stack) from the
// first observation. Guarded by a raw spinlock rather than a Mutex so the
// detector never feeds back into itself, and leaked on purpose so it
// outlives every static destructor.
struct Edges {
  std::unordered_map<std::string, std::string> out;  // to-name -> holder desc
};
std::unordered_map<std::string, Edges>* const g_graph =
    new std::unordered_map<std::string, Edges>();
std::atomic_flag g_graph_lock = ATOMIC_FLAG_INIT;

class GraphLock {
 public:
  GraphLock() {
    while (g_graph_lock.test_and_set(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  ~GraphLock() { g_graph_lock.clear(std::memory_order_release); }
  GraphLock(const GraphLock&) = delete;
  GraphLock& operator=(const GraphLock&) = delete;
};

thread_local std::vector<const Mutex*> t_held;
// Set while the detector itself runs (including the report path, which
// reads the activity registry and therefore acquires instrumented locks):
// nested hook invocations become no-ops instead of recursing.
thread_local bool t_in_detector = false;

class DetectorScope {
 public:
  DetectorScope() { t_in_detector = true; }
  ~DetectorScope() { t_in_detector = false; }
};

// "pool-worker-3 [engine/query;model/predict]" for the calling thread.
std::string DescribeSelf() {
  ThreadActivity& slot = ActivityRegistry::Global().Local();
  std::string out = slot.Label();
  out += " [";
  bool first = true;
  for (const char* frame : slot.SnapshotStack()) {
    if (!first) out += ";";
    out += frame;
    first = false;
  }
  out += "]";
  return out;
}

std::string HeldNames() {
  std::string out;
  for (const Mutex* held : t_held) {
    if (!out.empty()) out += ", ";
    out += held->name();
  }
  return out;
}

// DFS for a path from -> ... -> to in g_graph; fills *path with the node
// names when found. Caller holds the graph lock.
bool FindPath(const std::string& from, const std::string& to,
              std::vector<std::string>* path) {
  path->push_back(from);
  if (from == to) return true;
  auto it = g_graph->find(from);
  if (it != g_graph->end()) {
    for (const auto& [next, desc] : it->second.out) {
      bool seen = false;
      for (const std::string& node : *path) {
        if (node == next) {
          seen = true;
          break;
        }
      }
      if (seen) continue;
      if (FindPath(next, to, path)) return true;
    }
  }
  path->pop_back();
  return false;
}

[[noreturn]] void AbortWithReport(const std::string& report) {
  std::fprintf(stderr, "%s", report.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void OnAcquire(const Mutex* mu) {
  if (t_in_detector) return;
  DetectorScope scope;
  if (t_held.empty()) {  // nothing held: no ordering to check or record
    t_held.push_back(mu);
    return;
  }
  for (const Mutex* held : t_held) {
    if (std::strcmp(held->name(), mu->name()) == 0) {
      std::string report = "landmark::Mutex deadlock detected: acquiring \"";
      report += mu->name();
      report +=
          "\" while already holding a lock of that rank (recursive "
          "acquisition or two same-rank instances)\n  acquiring thread: ";
      report += DescribeSelf();
      report += "\n  held locks: " + HeldNames() + "\n";
      AbortWithReport(report);
    }
  }
  const std::string name = mu->name();
  const std::string self = DescribeSelf();
  std::string violation;
  {
    GraphLock lock;
    for (const Mutex* held : t_held) {
      std::vector<std::string> path;
      if (FindPath(name, held->name(), &path)) {
        violation =
            "landmark::Mutex deadlock detected: lock-order cycle — "
            "acquiring \"";
        violation += name;
        violation += "\" while holding \"";
        violation += held->name();
        violation += "\" contradicts the established order:\n";
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          violation += "    " + path[i] + " -> " + path[i + 1] +
                       "  (first held by " + (*g_graph)[path[i]].out[path[i + 1]] +
                       ")\n";
        }
        violation += "  acquiring thread: " + self + "\n";
        violation += "  held locks: " + HeldNames() + "\n";
        break;
      }
      (*g_graph)[held->name()].out.emplace(name, self);
    }
  }
  if (!violation.empty()) AbortWithReport(violation);
  t_held.push_back(mu);
}

void OnTryAcquired(const Mutex* mu) {
  if (t_in_detector) return;
  DetectorScope scope;
  t_held.push_back(mu);
}

void OnRelease(const Mutex* mu) {
  if (t_in_detector) return;
  DetectorScope scope;
  for (size_t i = t_held.size(); i > 0; --i) {
    if (t_held[i - 1] == mu) {
      t_held.erase(t_held.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
}

void CheckBlockingPoint(const char* what, const Mutex* allowed) {
  if (t_in_detector) return;
  DetectorScope scope;
  std::string offenders;
  for (const Mutex* held : t_held) {
    if (held == allowed) continue;
    if (!offenders.empty()) offenders += ", ";
    offenders += held->name();
  }
  if (offenders.empty()) return;
  std::string report = "landmark::Mutex deadlock hazard: lock(s) held across "
                       "blocking point \"";
  report += what;
  report += "\"\n  held locks: " + offenders;
  report += "\n  blocking thread: " + DescribeSelf() + "\n";
  AbortWithReport(report);
}

}  // namespace deadlock_detail
}  // namespace landmark

#endif  // LANDMARK_DEADLOCK_DEBUG
