#ifndef LANDMARK_UTIL_RESULT_H_
#define LANDMARK_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/check.h"
#include "util/status.h"

namespace landmark {

/// \brief Holds either a value of type T or an error Status, in the style of
/// arrow::Result.
///
/// A Result constructed from an OK status is a programmer error (there would
/// be no value to return) and aborts.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit so functions can `return value;`).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status (implicit so functions can
  /// `return Status::...;`).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    LANDMARK_CHECK_MSG(!this->status().ok(),
                       "Result constructed from OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the error status, or OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Returns the held value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    LANDMARK_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(payload_);
  }
  T& ValueOrDie() & {
    LANDMARK_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(payload_);
  }
  T&& ValueOrDie() && {
    LANDMARK_CHECK_MSG(ok(), status().ToString().c_str());
    return std::move(std::get<T>(payload_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> payload_;
};

}  // namespace landmark

/// Assigns the value of a Result expression to `lhs`, or propagates its error
/// status to the caller.
#define LANDMARK_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueOrDie();

#define LANDMARK_ASSIGN_OR_RETURN(lhs, expr)                              \
  LANDMARK_ASSIGN_OR_RETURN_IMPL(                                         \
      LANDMARK_CONCAT_NAME(_landmark_result_, __COUNTER__), lhs, expr)

#define LANDMARK_CONCAT_NAME(x, y) LANDMARK_CONCAT_NAME_INNER(x, y)
#define LANDMARK_CONCAT_NAME_INNER(x, y) x##y

#endif  // LANDMARK_UTIL_RESULT_H_
