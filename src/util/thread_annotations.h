#ifndef LANDMARK_UTIL_THREAD_ANNOTATIONS_H_
#define LANDMARK_UTIL_THREAD_ANNOTATIONS_H_

/// \file
/// Clang thread-safety-analysis attribute macros, no-ops on other
/// compilers. Annotating a member with GUARDED_BY(mu_) states the
/// synchronization contract in the declaration itself; when the compiler is
/// Clang and the CMake option LANDMARK_THREAD_SAFETY_ANALYSIS is ON the
/// contract is enforced at compile time (-Werror=thread-safety), and
/// `landmark_lint` checks textually — on every toolchain — that each
/// std::mutex member is referenced by at least one GUARDED_BY.
///
/// Conventions (see docs/architecture.md, "Static analysis"):
///  - every std::mutex / std::shared_mutex member carries the state it
///    guards via GUARDED_BY / PT_GUARDED_BY on those members;
///  - functions that must run under a lock are annotated REQUIRES(mu_);
///  - functions that take/drop a lock themselves are ACQUIRE/RELEASE;
///  - a condition_variable never needs its own annotation — it waits on an
///    annotated mutex.

#if defined(__clang__) && !defined(SWIG)
#define LANDMARK_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define LANDMARK_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

#define CAPABILITY(x) \
  LANDMARK_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

#define SCOPED_CAPABILITY \
  LANDMARK_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

#define GUARDED_BY(x) \
  LANDMARK_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

#define PT_GUARDED_BY(x) \
  LANDMARK_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  LANDMARK_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  LANDMARK_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  LANDMARK_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  LANDMARK_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  LANDMARK_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  LANDMARK_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  LANDMARK_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  LANDMARK_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  LANDMARK_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) \
  LANDMARK_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  LANDMARK_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

#define RETURN_CAPABILITY(x) \
  LANDMARK_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  LANDMARK_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // LANDMARK_UTIL_THREAD_ANNOTATIONS_H_
