#ifndef LANDMARK_UTIL_THREAD_POOL_H_
#define LANDMARK_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/telemetry/metrics.h"
#include "util/thread_annotations.h"

namespace landmark {

/// \brief Small fixed-size worker pool for the staged explanation pipeline.
///
/// Work is distributed by *static contiguous partitioning* (ParallelFor):
/// each chunk of the index range is processed exactly once and the caller
/// writes results into pre-sized slots, so the output of a parallel stage is
/// independent of thread scheduling. That is the mechanism behind the
/// engine's determinism contract — parallel and serial runs must produce
/// bit-identical explanations.
///
/// A pool with `num_threads <= 1` spawns no workers; ParallelFor then runs
/// the body inline on the calling thread, which keeps single-threaded use
/// free of synchronization entirely.
///
/// Every pool reports into the global MetricsRegistry under the stable names
/// `pool/tasks` (counter), `pool/queue_depth` (gauge, sampled at
/// enqueue/dequeue), `pool/task_seconds` and `pool/queue_wait_seconds`
/// (histograms) and `pool/worker_busy_seconds/<i>` (per-worker accumulated
/// gauge — utilization relative to wall time). Tasks are chunky (one per
/// worker per stage), so the two clock reads per task are noise.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for an inline pool).
  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Splits [0, n) into at most num_threads() contiguous chunks of
  /// near-equal size and runs `body(begin, end)` for each, blocking until
  /// all chunks are done. Chunk boundaries depend only on `n` and the pool
  /// size — never on scheduling — so writes to disjoint index ranges are
  /// race-free and deterministic. Runs inline when the pool has no workers.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body);

  /// Chunk count ParallelFor would use for a range of size n.
  size_t NumChunks(size_t n) const;

 private:
  struct Task {
    std::function<void()> fn;
    uint64_t enqueue_ns = 0;
  };

  void WorkerLoop(size_t worker_index);
  /// Runs one task with telemetry (latency histogram, busy-seconds gauge).
  void RunTask(Task task, Gauge* busy_seconds);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::deque<Task> queue_ GUARDED_BY(mu_);
  std::condition_variable work_cv_;   // signals workers: queue non-empty/stop
  std::condition_variable done_cv_;   // signals Wait(): all tasks drained
  // Queued + currently running tasks.
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;

  // Global-registry handles, resolved once at construction (never null).
  Counter* tasks_total_;
  Gauge* queue_depth_;
  Histogram* task_seconds_;
  Histogram* queue_wait_seconds_;
  std::vector<Gauge*> worker_busy_seconds_;  // one per worker
};

}  // namespace landmark

#endif  // LANDMARK_UTIL_THREAD_POOL_H_
