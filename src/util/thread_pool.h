#ifndef LANDMARK_UTIL_THREAD_POOL_H_
#define LANDMARK_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/telemetry/flight_deck.h"
#include "util/telemetry/metrics.h"
#include "util/thread_annotations.h"

namespace landmark {

/// \brief Fixed-size worker pool for the explanation engine, with two
/// execution disciplines layered on the same workers:
///
///  - **ParallelFor** — static contiguous partitioning. Each chunk of the
///    index range is processed exactly once and the caller writes results
///    into pre-sized slots, so the output of a parallel stage is independent
///    of thread scheduling. The staged (`--no-task-graph`) pipeline runs on
///    this alone.
///  - **TaskGraph** (below) — per-unit dependency DAGs. Completing a node
///    enqueues its ready successors onto the completing worker's own deque
///    (LIFO, cache-warm); idle workers steal from the front of other
///    workers' deques (FIFO, oldest first). Scheduling order is free, but
///    graph nodes write only to their own pre-assigned slots, so results
///    stay deterministic.
///
/// Work distribution state is one shared FIFO queue (Submit / ParallelFor
/// chunks) plus one deque per worker (SubmitLocal / graph successors), all
/// guarded by a single pool mutex. Tasks are chunky — one per worker per
/// stage, or one per unit-stage node — so the lock is never contended
/// relative to task bodies.
///
/// A pool with `num_threads <= 1` spawns no workers; ParallelFor and
/// TaskGraph then run inline on the calling thread in deterministic FIFO
/// order, which keeps single-threaded use free of synchronization entirely.
///
/// Every pool reports into the global MetricsRegistry under the stable names
/// `pool/tasks` (counter), `pool/steals` (counter, cross-worker deque pops),
/// `pool/queue_depth` (gauge — shared queue plus all per-worker deques,
/// sampled at enqueue/dequeue), `pool/shared_queue_depth` (gauge — the
/// shared FIFO alone) and `pool/deque_depth/<i>` (gauge per worker deque),
/// `pool/task_seconds` and `pool/queue_wait_seconds` (histograms) and
/// `pool/worker_busy_seconds/<i>` (per-worker accumulated gauge —
/// utilization relative to wall time). Workers also register on the
/// flight-deck ActivityRegistry as `pool-worker-<i>` so /statusz and the
/// sampling profiler can attribute their current activity.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for an inline pool).
  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task on the shared queue. Tasks must not throw.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Enqueues one task on the calling worker's own deque when called from
  /// one of this pool's workers (newest-first execution, stealable by idle
  /// workers); falls back to the shared queue from any other thread. This
  /// is how TaskGraph keeps a unit's chain on one core while it is hot.
  void SubmitLocal(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until every submitted task has finished. EXCLUDES(mu_) is
  /// the static face of the registered blocking point: callers must not
  /// hold any lock here, least of all the pool's own.
  void Wait() EXCLUDES(mu_);

  /// Splits [0, n) into at most num_threads() contiguous chunks of
  /// near-equal size and runs `body(begin, end)` for each, blocking until
  /// all chunks are done. Chunk boundaries depend only on `n` and the pool
  /// size — never on scheduling — so writes to disjoint index ranges are
  /// race-free and deterministic. Runs inline when the pool has no workers.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body)
      EXCLUDES(mu_);

  /// Chunk count ParallelFor would use for a range of size n.
  size_t NumChunks(size_t n) const;

 private:
  friend class TaskGraph;

  struct Task {
    std::function<void()> fn;
    uint64_t enqueue_ns = 0;
  };

  void WorkerLoop(size_t worker_index);
  /// Runs one task with telemetry (latency histogram, busy-seconds gauge).
  void RunTask(Task task, Gauge* busy_seconds);
  /// Shared enqueue path; `local_index` < workers size routes to that
  /// worker's deque, anything else to the shared queue.
  void Enqueue(std::function<void()> task, size_t local_index);
  /// Index of the calling thread within this pool's workers, or
  /// `workers_.size()` when the caller is not one of them.
  size_t CallerWorkerIndex() const;

  std::vector<std::thread> workers_;
  // Leaf lock: nothing else is ever acquired under it (Submit/Wait are
  // registered blocking points, so holding any lock into them aborts under
  // LANDMARK_DEADLOCK_DEBUG).
  mutable Mutex mu_{"ThreadPool::mu_"};
  std::deque<Task> queue_ GUARDED_BY(mu_);          // shared FIFO
  std::vector<std::deque<Task>> local_ GUARDED_BY(mu_);  // one per worker
  std::condition_variable_any work_cv_;  // signals workers: work/stop
  std::condition_variable_any done_cv_;  // signals Wait(): all tasks drained
  // Tasks sitting in the shared queue or any worker deque.
  size_t queued_ GUARDED_BY(mu_) = 0;
  // Queued + currently running tasks.
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;

  // Global-registry handles, resolved once at construction (never null).
  Counter* tasks_total_;
  Counter* steals_total_;
  Gauge* queue_depth_;
  Gauge* shared_queue_depth_;
  Histogram* task_seconds_;
  Histogram* queue_wait_seconds_;
  std::vector<Gauge*> worker_busy_seconds_;  // one per worker
  std::vector<Gauge*> deque_depth_;          // one per worker
};

/// \brief A dependency DAG of small tasks executed on a ThreadPool — the
/// scheduling primitive behind the engine's per-unit pipeline
/// (docs/architecture.md, "Scheduling").
///
/// Nodes are added with AddNode, naming already-added nodes as
/// dependencies; a node becomes *ready* when its last dependency finishes
/// and is then pushed onto the completing worker's deque (see
/// ThreadPool::SubmitLocal). Nodes may add further nodes while running —
/// that is how the engine grows each record's unit chains from inside the
/// record's plan node. A dependency that already finished is satisfied
/// immediately, so growing a running graph is race-free.
///
/// **Drain handle.** Run() seeds the initial ready set; Wait() blocks until
/// every node (including nodes added mid-run) has finished, then rethrows
/// the first node exception if any. A node that throws cancels the graph:
/// nodes not yet started are skipped (their bodies never run) but still
/// release their successors, so Wait() always terminates. Cancel() triggers
/// the same skip-draining explicitly.
///
/// **Determinism.** On an inline pool (no workers) nodes execute on the
/// calling thread in FIFO ready order, which is a fixed topological order
/// of the graph. With workers the interleaving is scheduling-dependent;
/// callers keep results deterministic the same way ParallelFor users do —
/// every node writes only to slots assigned before Run().
///
/// A TaskGraph is single-use: build, Run, Wait, destroy. It must outlive
/// its Wait() call and must not be destroyed while nodes are in flight.
class TaskGraph {
 public:
  using NodeId = size_t;

  /// `pool` may be null or worker-less; the graph then runs inline inside
  /// Wait(). The pool must outlive the graph.
  explicit TaskGraph(ThreadPool* pool);
  ~TaskGraph();

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a node running `fn` after every node in `deps`. Thread-safe;
  /// callable before Run() or from inside a running node. `label` (static
  /// storage, e.g. a stage name) groups the node in StageCounts() and names
  /// its flight-deck activity frame; nullptr files it under "(unlabeled)".
  NodeId AddNode(std::function<void()> fn, const std::vector<NodeId>& deps = {},
                 const char* label = nullptr);

  /// Starts executing: enqueues every currently-ready node. Call exactly
  /// once; AddNode stays legal afterwards (from inside running nodes).
  void Run() EXCLUDES(mu_);

  /// Blocks until the graph has drained, then rethrows the first exception
  /// thrown by a node body (if any). Safe to call exactly once, after
  /// Run(), from a non-worker thread.
  void Wait() EXCLUDES(mu_);

  /// Skips every node that has not started yet (bodies never run; counts
  /// still release successors so Wait() terminates).
  void Cancel();

  /// True once Cancel() was called or a node threw.
  bool cancelled() const;

  /// Nodes added so far.
  size_t num_nodes() const;

  /// Live pending/ready/running/done node counts, grouped by AddNode label
  /// in first-seen order (the flight deck's per-batch DAG progress view).
  /// Thread-safe; callable while the graph runs.
  std::vector<TaskGraphStageCounts> StageCounts() const;

 private:
  struct Node {
    std::function<void()> fn;
    const char* label = nullptr;   // static string; groups StageCounts()
    size_t pending = 0;            // unfinished dependencies
    bool started = false;          // body entered (running when !done)
    bool done = false;             // body ran (or was skipped by Cancel)
    std::vector<NodeId> successors;
  };

  /// Executes node `id` (or skips it when cancelled), then releases its
  /// successors, pushing newly-ready ones onto the current worker's deque.
  void RunNode(NodeId id);
  /// Marks `id` ready under mu_: appends it to the inline ready queue when
  /// the pool has no workers, otherwise to *to_pool for the caller to hand
  /// to Dispatch *after* releasing mu_ — ThreadPool::SubmitLocal is a
  /// registered blocking point (it takes the pool lock and may run a task
  /// inline), so it must never be entered with the graph lock held.
  void MarkReady(NodeId id, std::vector<NodeId>* to_pool) REQUIRES(mu_);
  /// Submits every node collected by MarkReady. Call without mu_ held.
  void Dispatch(const std::vector<NodeId>& to_pool);
  /// Drains the inline ready queue on the calling thread (worker-less
  /// pools).
  void DrainInline();

  ThreadPool* pool_;  // may be null (inline execution)
  mutable Mutex mu_{"TaskGraph::mu_"};
  std::vector<Node> nodes_ GUARDED_BY(mu_);
  std::deque<NodeId> inline_ready_ GUARDED_BY(mu_);
  size_t unfinished_ GUARDED_BY(mu_) = 0;
  bool running_ GUARDED_BY(mu_) = false;
  bool cancelled_ GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ GUARDED_BY(mu_);
  std::condition_variable_any drained_cv_;  // signals Wait(): unfinished_==0
};

}  // namespace landmark

#endif  // LANDMARK_UTIL_THREAD_POOL_H_
