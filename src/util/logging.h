#ifndef LANDMARK_UTIL_LOGGING_H_
#define LANDMARK_UTIL_LOGGING_H_

#include <ostream>
#include <sstream>
#include <string>

namespace landmark {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Lets the ternary in LANDMARK_LOG type-match `(void)0` (glog idiom).
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace landmark

/// Usage: LANDMARK_LOG(Info) << "trained in " << secs << "s";
#define LANDMARK_LOG(level)                                          \
  (static_cast<int>(::landmark::LogLevel::k##level) <                \
   static_cast<int>(::landmark::GetLogLevel()))                      \
      ? (void)0                                                      \
      : ::landmark::internal_logging::Voidify() &                    \
            ::landmark::internal_logging::LogMessage(                \
                ::landmark::LogLevel::k##level, __FILE__, __LINE__)  \
                .stream()

#endif  // LANDMARK_UTIL_LOGGING_H_
