#ifndef LANDMARK_UTIL_LOGGING_H_
#define LANDMARK_UTIL_LOGGING_H_

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>

namespace landmark {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is emitted. The initial level comes from
/// the LANDMARK_LOG_LEVEL environment variable when set ("debug", "info",
/// "warning", "error" or 0-3; default kInfo); SetLogLevel overrides it.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warning" / "error" (any case) or "0".."3";
/// returns `fallback` for anything else.
LogLevel ParseLogLevel(const std::string& text, LogLevel fallback);

/// Re-reads LANDMARK_LOG_LEVEL and applies it (no-op when unset). The first
/// GetLogLevel/SetLogLevel call does this implicitly once; this entry point
/// exists for tests and for long-running processes told to re-read their
/// environment.
void ReloadLogLevelFromEnv();

namespace internal_logging {

/// Stream-style log sink; emits one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Lets the ternary in LANDMARK_LOG type-match `(void)0` (glog idiom).
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

/// Occurrence gate behind LANDMARK_LOG_EVERY_N: returns true on the 1st,
/// (n+1)th, (2n+1)th, ... call for this (file, line) site, thread-safely.
bool LogEveryN(const char* file, int line, uint64_t n);

}  // namespace internal_logging
}  // namespace landmark

/// Usage: LANDMARK_LOG(Info) << "trained in " << secs << "s";
#define LANDMARK_LOG(level)                                          \
  (static_cast<int>(::landmark::LogLevel::k##level) <                \
   static_cast<int>(::landmark::GetLogLevel()))                      \
      ? (void)0                                                      \
      : ::landmark::internal_logging::Voidify() &                    \
            ::landmark::internal_logging::LogMessage(                \
                ::landmark::LogLevel::k##level, __FILE__, __LINE__)  \
                .stream()

/// Rate-limited logging for per-record warning paths: emits on the first
/// occurrence at this call site and then once every `n` occurrences.
/// Usage: LANDMARK_LOG_EVERY_N(Warning, 64) << "skipping " << id;
/// Expands to a single statement (safe in an unbraced if/else).
#define LANDMARK_LOG_EVERY_N(level, n)                                    \
  for (bool landmark_log_every_n_now =                                    \
           ::landmark::internal_logging::LogEveryN(__FILE__, __LINE__,    \
                                                   (n));                  \
       landmark_log_every_n_now; landmark_log_every_n_now = false)        \
  LANDMARK_LOG(level)

#endif  // LANDMARK_UTIL_LOGGING_H_
