#include "util/flags.h"

#include <cstdlib>

#include "util/check.h"
#include "util/string_util.h"

namespace landmark {

Result<Flags> Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "true";  // bare boolean flag
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  LANDMARK_CHECK_MSG(end == it->second.c_str() + it->second.size(),
                     ("flag --" + name + " is not an integer").c_str());
  return v;
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  auto parsed = ParseDouble(it->second);
  LANDMARK_CHECK_MSG(parsed.has_value(),
                     ("flag --" + name + " is not a number").c_str());
  return *parsed;
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::string v = ToLower(it->second);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace landmark
