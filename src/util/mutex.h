#ifndef LANDMARK_UTIL_MUTEX_H_
#define LANDMARK_UTIL_MUTEX_H_

/// \file
/// The repo's only mutex. `landmark::Mutex` is a named wrapper over
/// `std::mutex`: in release builds it compiles down to the plain mutex (the
/// name is one stored pointer), and under `-DLANDMARK_DEADLOCK_DEBUG=ON`
/// (default in the asan-ubsan preset) every acquisition is recorded into a
/// process-wide lock-order graph keyed by the mutex's name. The first
/// acquisition that closes a cycle in that graph — i.e. the first execution
/// that *could* deadlock under a different interleaving, even if this run
/// got away with it — aborts with a report naming both mutexes, the
/// acquiring thread's activity stack and the activity stack recorded when
/// the contradicting order was first observed (util/telemetry/flight_deck.h).
///
/// The name doubles as the lock's global *rank identity*: instances that
/// share a name (e.g. the 16 `TokenCache::Shard::mu` shards) share a rank,
/// so holding two of them at once is reported as a self-deadlock hazard
/// just like a recursive acquisition. By convention the name is the
/// `Class::member` spelling of the declaration — `landmark_lint` checks the
/// literal against the declaration site (rule `raw-mutex`) and runs the
/// same cycle analysis statically over lexical guard nesting, so the static
/// and runtime layers agree on identities (docs/architecture.md, "Lock
/// discipline").
///
/// Blocking points — `ThreadPool::Submit`/`Wait`, `TaskGraph::Wait`,
/// condition-variable waits, the exporter's socket loop — are registered
/// via `LANDMARK_BLOCKING_POINT` / `LANDMARK_BLOCKING_POINT_WAIT`; entering
/// one with any lock held (other than the lock a wait is about to release)
/// also aborts. Detection only observes — with it on, explanations are
/// bit-identical and audit streams byte-identical.
///
/// Condition variables pair with the wrapper as
/// `std::condition_variable_any` + `std::unique_lock<Mutex>`, so the wait's
/// internal unlock/relock flows through the instrumentation.

#include <mutex>

#include "util/thread_annotations.h"

namespace landmark {

class Mutex;

#if defined(LANDMARK_DEADLOCK_DEBUG)
namespace deadlock_detail {
/// Cycle-checks `mu` against the calling thread's held set, records new
/// order edges, and pushes `mu` onto the held set. Aborts with a lock-order
/// report on the first cycle-closing acquisition. Called *before* the
/// underlying lock so the report fires instead of the deadlock.
void OnAcquire(const Mutex* mu);
/// Pushes `mu` onto the held set without recording order edges: a
/// successful try_lock cannot block, so it proves nothing about intended
/// order.
void OnTryAcquired(const Mutex* mu);
/// Pops `mu` from the held set.
void OnRelease(const Mutex* mu);
/// Aborts when the calling thread holds any lock other than `allowed`
/// while entering the blocking point `what`. `allowed` is the lock a
/// condition-variable wait releases for its duration; pass nullptr for
/// plain blocking points (pool submits, joins-on-drain, socket I/O).
void CheckBlockingPoint(const char* what, const Mutex* allowed);
}  // namespace deadlock_detail
#endif  // LANDMARK_DEADLOCK_DEBUG

/// \brief Named std::mutex. The name must be a string literal with the
/// declaration's `Class::member` spelling (enforced by landmark_lint); it
/// is the node identity in both lock-order graphs.
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name) : name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
#if defined(LANDMARK_DEADLOCK_DEBUG)
    deadlock_detail::OnAcquire(this);
#endif
    mu_.lock();
  }

  bool try_lock() TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
#if defined(LANDMARK_DEADLOCK_DEBUG)
    if (acquired) deadlock_detail::OnTryAcquired(this);
#endif
    return acquired;
  }

  void unlock() RELEASE() {
    mu_.unlock();
#if defined(LANDMARK_DEADLOCK_DEBUG)
    deadlock_detail::OnRelease(this);
#endif
  }

  const char* name() const { return name_; }

 private:
  // landmark-lint: allow(mutex-guard) the wrapper is the guard primitive;
  // its internal mutex protects nothing nameable
  std::mutex mu_;
  const char* const name_;
};

/// \brief RAII lock for the scope of a block — the `std::lock_guard` of the
/// wrapper world, spelled Abseil-style so guard scopes are greppable.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace landmark

#if defined(LANDMARK_DEADLOCK_DEBUG)
/// Asserts (debug builds) that the calling thread holds no landmark::Mutex
/// on entry to the blocking operation `what` (a string literal).
#define LANDMARK_BLOCKING_POINT(what) \
  ::landmark::deadlock_detail::CheckBlockingPoint(what, nullptr)
/// Same, but `mu` (the lock the wait releases while blocked) may be held.
#define LANDMARK_BLOCKING_POINT_WAIT(what, mu) \
  ::landmark::deadlock_detail::CheckBlockingPoint(what, mu)
#else
#define LANDMARK_BLOCKING_POINT(what) ((void)0)
#define LANDMARK_BLOCKING_POINT_WAIT(what, mu) ((void)0)
#endif

#endif  // LANDMARK_UTIL_MUTEX_H_
