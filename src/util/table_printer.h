#ifndef LANDMARK_UTIL_TABLE_PRINTER_H_
#define LANDMARK_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace landmark {

/// \brief Renders aligned plain-text tables, in the layout the paper's
/// tables use (row label column plus grouped metric columns).
///
/// Example:
///   TablePrinter tp({"", "Single Acc", "Single MAE", "LIME Acc"});
///   tp.AddRow({"S-BR", "0.923", "0.121", "0.830"});
///   tp.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a data row; must have as many cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with 3 decimals; the first cell is a label.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int digits = 3);

  /// Writes the table with column-aligned cells and a header rule.
  void Print(std::ostream& os) const;

  /// Returns the rendered table as a string.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace landmark

#endif  // LANDMARK_UTIL_TABLE_PRINTER_H_
