#include "util/logging.h"

#include <cstdio>
#include <cstring>

namespace landmark {

namespace {
LogLevel g_log_level = LogLevel::kInfo;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  std::string line = stream_.str();
  std::fprintf(stderr, "%s\n", line.c_str());
  if (level_ == LogLevel::kError) std::fflush(stderr);
}

}  // namespace internal_logging
}  // namespace landmark
