#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace landmark {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::once_flag g_env_once;

/// LANDMARK_LOG_EVERY_N occurrence counts, keyed by call site. The mutex is
/// only on warning-class paths, never the engine hot path, so a simple map
/// beats per-site static registration. Leaked (plain pointer, allocated
/// under the lock) so late-exiting threads can still log during shutdown.
Mutex g_log_every_n_mu{"g_log_every_n_mu"};
std::map<std::pair<const void*, int>, uint64_t>* g_log_every_n_counts
    GUARDED_BY(g_log_every_n_mu) = nullptr;

void InitLogLevelFromEnvOnce() {
  std::call_once(g_env_once, [] { ReloadLogLevelFromEnv(); });
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

LogLevel ParseLogLevel(const std::string& text, LogLevel fallback) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn" || lower == "2") {
    return LogLevel::kWarning;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  return fallback;
}

void ReloadLogLevelFromEnv() {
  const char* env = std::getenv("LANDMARK_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return;
  const LogLevel current =
      static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
  g_log_level.store(static_cast<int>(ParseLogLevel(env, current)),
                    std::memory_order_relaxed);
}

void SetLogLevel(LogLevel level) {
  // Resolve the env default first so a later lazy init cannot clobber an
  // explicit SetLogLevel.
  InitLogLevelFromEnvOnce();
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  InitLogLevelFromEnvOnce();
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

bool LogEveryN(const char* file, int line, uint64_t n) {
  if (n <= 1) return true;
  MutexLock lock(&g_log_every_n_mu);
  if (g_log_every_n_counts == nullptr) {
    g_log_every_n_counts =
        new std::map<std::pair<const void*, int>, uint64_t>();
  }
  const uint64_t occurrence =
      (*g_log_every_n_counts)[{static_cast<const void*>(file), line}]++;
  return occurrence % n == 0;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  std::string line = stream_.str();
  std::fprintf(stderr, "%s\n", line.c_str());
  if (level_ == LogLevel::kError) std::fflush(stderr);
}

}  // namespace internal_logging
}  // namespace landmark
