#include "util/arena.h"

#include <algorithm>
#include <atomic>

#include "util/check.h"
#include "util/telemetry/metrics.h"

namespace landmark {
namespace {

// The gauge tracks the process-wide maximum across all thread arenas; a
// relaxed CAS loop keeps it monotonic without a registry read-back.
std::atomic<uint64_t> g_published_high_water{0};

}  // namespace

Arena& Arena::ThisThread() {
  thread_local Arena arena;
  return arena;
}

void* Arena::Allocate(size_t bytes, size_t alignment) {
  LANDMARK_CHECK(alignment != 0 && (alignment & (alignment - 1)) == 0);
  if (current_ < chunks_.size()) {
    Chunk& chunk = chunks_[current_];
    // Align the absolute address, not the offset: chunk bases are only
    // new[]-aligned, so an offset that is a multiple of `alignment` does
    // not imply the resulting pointer is.
    const auto base = reinterpret_cast<uintptr_t>(chunk.data.get());
    const size_t aligned =
        ((base + chunk.used + alignment - 1) & ~(uintptr_t{alignment} - 1)) -
        base;
    if (aligned + bytes <= chunk.capacity) {
      chunk.used = aligned + bytes;
      total_allocated_ += bytes;
      high_water_ = std::max(high_water_, live_bytes());
      return chunk.data.get() + aligned;
    }
    // Current chunk exhausted: try the next retained chunk or grow.
    ++current_;
    return Allocate(bytes, alignment);
  }
  // `new` returns memory aligned for any fundamental type only; over-size
  // the chunk so the first aligned offset always fits.
  const size_t capacity =
      std::max(kMinChunkBytes, bytes + alignment);
  Chunk chunk;
  chunk.data = std::make_unique<unsigned char[]>(capacity);
  chunk.capacity = capacity;
  const auto base = reinterpret_cast<uintptr_t>(chunk.data.get());
  const size_t skew = (alignment - (base & (alignment - 1))) & (alignment - 1);
  chunk.used = skew + bytes;
  total_allocated_ += bytes;
  void* out = chunk.data.get() + skew;
  chunks_.push_back(std::move(chunk));
  current_ = chunks_.size() - 1;
  high_water_ = std::max(high_water_, live_bytes());
  return out;
}

Arena::Mark Arena::CurrentMark() const {
  if (chunks_.empty()) return Mark{};
  const size_t chunk = std::min(current_, chunks_.size() - 1);
  return Mark{chunk, chunks_[chunk].used};
}

void Arena::ResetTo(const Mark& mark) {
  if (chunks_.empty()) return;
  LANDMARK_CHECK(mark.chunk < chunks_.size());
  chunks_[mark.chunk].used = mark.used;
  for (size_t i = mark.chunk + 1; i < chunks_.size(); ++i) {
    chunks_[i].used = 0;
  }
  current_ = mark.chunk;
}

size_t Arena::live_bytes() const {
  size_t live = 0;
  for (const Chunk& chunk : chunks_) live += chunk.used;
  return live;
}

ArenaFrame::ArenaFrame() : ArenaFrame(Arena::ThisThread()) {}

ArenaFrame::ArenaFrame(Arena& arena)
    : arena_(&arena),
      mark_(arena.CurrentMark()),
      allocated_at_entry_(arena.total_allocated_bytes()) {}

ArenaFrame::~ArenaFrame() {
  const uint64_t frame_bytes =
      arena_->total_allocated_bytes() - allocated_at_entry_;
  const uint64_t high_water = arena_->high_water_bytes();
  arena_->ResetTo(mark_);
  static Counter& bytes_counter =
      MetricsRegistry::Global().GetCounter("arena/bytes_allocated");
  if (frame_bytes != 0) bytes_counter.Add(frame_bytes);
  uint64_t published = g_published_high_water.load(std::memory_order_relaxed);
  while (high_water > published) {
    if (g_published_high_water.compare_exchange_weak(
            published, high_water, std::memory_order_relaxed)) {
      static Gauge& high_water_gauge =
          MetricsRegistry::Global().GetGauge("arena/high_water_bytes");
      high_water_gauge.Set(static_cast<double>(high_water));
      break;
    }
  }
}

}  // namespace landmark
