#ifndef LANDMARK_UTIL_CHECK_H_
#define LANDMARK_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Fatal assertion for programmer errors (violated invariants, impossible
/// states). Unlike Status, which reports recoverable runtime failures, a
/// failed check aborts the process. Enabled in all build types.
#define LANDMARK_CHECK(cond)                                                   \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__, __LINE__,  \
                   #cond);                                                     \
      std::abort();                                                            \
    }                                                                          \
  } while (false)

#define LANDMARK_CHECK_MSG(cond, msg)                                          \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,       \
                   __LINE__, #cond, msg);                                      \
      std::abort();                                                            \
    }                                                                          \
  } while (false)

#endif  // LANDMARK_UTIL_CHECK_H_
