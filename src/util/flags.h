#ifndef LANDMARK_UTIL_FLAGS_H_
#define LANDMARK_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace landmark {

/// \brief Minimal command-line flag parser for the bench and example
/// binaries.
///
/// Accepts `--name=value`, `--name value`, and bare `--name` (boolean true).
/// Anything that does not start with `--` is collected as a positional
/// argument.
class Flags {
 public:
  /// Parses argv; returns an error on malformed input (e.g. dangling
  /// `--name` that expects a value via GetInt/GetDouble and got none).
  static Result<Flags> Parse(int argc, char** argv);

  bool Has(const std::string& name) const;

  /// Typed getters; return `fallback` when the flag is absent and abort with
  /// a clear message when present but malformed.
  std::string GetString(const std::string& name, const std::string& fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace landmark

#endif  // LANDMARK_UTIL_FLAGS_H_
