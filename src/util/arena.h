#ifndef LANDMARK_UTIL_ARENA_H_
#define LANDMARK_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

/// \file
/// Per-thread bump arena for per-unit scratch on the explain hot path.
///
/// The engine's fit/reconstruct stages used to allocate short-lived
/// `Vector`s per unit (design matrices, prediction scatter buffers, mask
/// expansion scratch). The arena replaces those with pointer-bump
/// allocation into thread-local chunks that are reset — not freed — at the
/// end of each unit's frame, so steady-state explain batches do no heap
/// traffic at all (the frame-allocator idiom).
///
/// Threading: `Arena::ThisThread()` returns a thread-local instance, so
/// task-graph workers never share an arena and no locking is needed.
/// Frames nest (mark/reset), matching the strictly nested lifetimes of the
/// engine's stage bodies.
namespace landmark {

class Arena {
 public:
  /// Cache-line alignment: arena rows feed SIMD kernels, and 64 bytes
  /// keeps any allocation usable with aligned vector loads.
  static constexpr size_t kDefaultAlignment = 64;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// The calling thread's arena (created on first use, lives until thread
  /// exit; chunks are retained across frames).
  static Arena& ThisThread();

  /// Bump-allocates `bytes` aligned to `alignment` (a power of two).
  /// Returns non-null even for 0 bytes. The memory is uninitialized and
  /// valid until the enclosing frame resets past it.
  void* Allocate(size_t bytes, size_t alignment = kDefaultAlignment);

  double* AllocateDoubles(size_t n) {
    return static_cast<double*>(Allocate(n * sizeof(double)));
  }
  uint64_t* AllocateWords(size_t n) {
    return static_cast<uint64_t*>(Allocate(n * sizeof(uint64_t)));
  }
  uint8_t* AllocateBytes(size_t n) {
    return static_cast<uint8_t*>(Allocate(n));
  }

  /// Position marker for frame reset. Treat as opaque.
  struct Mark {
    size_t chunk = 0;
    size_t used = 0;
  };

  Mark CurrentMark() const;
  /// Rewinds to `mark`; everything allocated after it is invalidated.
  /// Chunks stay owned by the arena for reuse.
  void ResetTo(const Mark& mark);

  /// Bytes handed out over the arena's lifetime (monotonic).
  uint64_t total_allocated_bytes() const { return total_allocated_; }
  /// Live bytes right now (since the outermost reset).
  size_t live_bytes() const;
  /// Maximum of live_bytes() ever observed on this arena.
  size_t high_water_bytes() const { return high_water_; }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };

  static constexpr size_t kMinChunkBytes = 64 * 1024;

  std::vector<Chunk> chunks_;
  size_t current_ = 0;  // index of the chunk being bumped
  uint64_t total_allocated_ = 0;
  size_t high_water_ = 0;
};

/// RAII frame: marks the arena on entry, resets on exit, and publishes the
/// frame's allocation delta to the metrics registry (`arena/bytes_allocated`
/// counter, `arena/high_water_bytes` gauge) — one registry touch per frame,
/// never per allocation.
class ArenaFrame {
 public:
  ArenaFrame();
  explicit ArenaFrame(Arena& arena);
  ~ArenaFrame();
  ArenaFrame(const ArenaFrame&) = delete;
  ArenaFrame& operator=(const ArenaFrame&) = delete;

  Arena& arena() { return *arena_; }

 private:
  Arena* arena_;
  Arena::Mark mark_;
  uint64_t allocated_at_entry_;
};

}  // namespace landmark

#endif  // LANDMARK_UTIL_ARENA_H_
