#include "util/thread_pool.h"

#include <algorithm>
#include <string>
#include <string_view>
#include <utility>

#include "util/telemetry/trace.h"

namespace landmark {

namespace {

/// Identity of the pool worker currently running on this thread, so
/// SubmitLocal can route to the right deque without a registry lookup. Set
/// for the lifetime of WorkerLoop; null on every non-worker thread.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  size_t index = 0;
};
thread_local WorkerIdentity current_worker;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  tasks_total_ = &registry.GetCounter("pool/tasks");
  steals_total_ = &registry.GetCounter("pool/steals");
  queue_depth_ = &registry.GetGauge("pool/queue_depth");
  shared_queue_depth_ = &registry.GetGauge("pool/shared_queue_depth");
  task_seconds_ = &registry.GetHistogram("pool/task_seconds");
  queue_wait_seconds_ = &registry.GetHistogram("pool/queue_wait_seconds");
  if (num_threads <= 1) return;  // inline pool
  registry.GetGauge("pool/workers").Add(static_cast<double>(num_threads));
  workers_.reserve(num_threads);
  worker_busy_seconds_.reserve(num_threads);
  deque_depth_.reserve(num_threads);
  local_.resize(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    worker_busy_seconds_.push_back(&registry.GetGauge(
        "pool/worker_busy_seconds/" + std::to_string(i)));
    deque_depth_.push_back(
        &registry.GetGauge("pool/deque_depth/" + std::to_string(i)));
  }
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  LANDMARK_BLOCKING_POINT("ThreadPool::~ThreadPool/join");
  for (std::thread& worker : workers_) worker.join();
  if (!workers_.empty()) {
    MetricsRegistry::Global().GetGauge("pool/workers").Add(
        -static_cast<double>(workers_.size()));
  }
}

void ThreadPool::RunTask(Task task, Gauge* busy_seconds) {
  LANDMARK_TRACE_SPAN("pool/task");
  const uint64_t start_ns = TraceNowNs();
  if (task.enqueue_ns != 0) {
    queue_wait_seconds_->Record(static_cast<double>(start_ns -
                                                    task.enqueue_ns) /
                                1e9);
  }
  task.fn();
  const double seconds =
      static_cast<double>(TraceNowNs() - start_ns) / 1e9;
  task_seconds_->Record(seconds);
  if (busy_seconds != nullptr) busy_seconds->Add(seconds);
  tasks_total_->Add(1);
}

size_t ThreadPool::CallerWorkerIndex() const {
  return current_worker.pool == this ? current_worker.index : workers_.size();
}

void ThreadPool::Enqueue(std::function<void()> task, size_t local_index) {
  // Registered blocking point: a worker-less pool runs the task inline
  // right here, and even with workers a caller that submits under a lock
  // would let that lock order against everything the task body takes.
  LANDMARK_BLOCKING_POINT("ThreadPool::Submit");
  if (workers_.empty()) {
    RunTask(Task{std::move(task), 0}, nullptr);
    return;
  }
  {
    MutexLock lock(&mu_);
    if (local_index < local_.size()) {
      local_[local_index].push_back(Task{std::move(task), TraceNowNs()});
      deque_depth_[local_index]->Set(
          static_cast<double>(local_[local_index].size()));
    } else {
      queue_.push_back(Task{std::move(task), TraceNowNs()});
      shared_queue_depth_->Set(static_cast<double>(queue_.size()));
    }
    ++queued_;
    ++in_flight_;
    queue_depth_->Set(static_cast<double>(queued_));
  }
  work_cv_.notify_one();
}

void ThreadPool::Submit(std::function<void()> task) {
  Enqueue(std::move(task), workers_.size());
}

void ThreadPool::SubmitLocal(std::function<void()> task) {
  Enqueue(std::move(task), CallerWorkerIndex());
}

void ThreadPool::Wait() {
  LANDMARK_BLOCKING_POINT("ThreadPool::Wait");
  if (workers_.empty()) return;
  std::unique_lock<Mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  current_worker = WorkerIdentity{this, worker_index};
  ActivityRegistry::Global().Local().SetRole(
      "pool-worker", static_cast<uint32_t>(worker_index));
  Gauge* busy_seconds = worker_busy_seconds_[worker_index];
  const size_t num_workers = local_.size();
  for (;;) {
    Task task;
    bool stolen = false;
    {
      std::unique_lock<Mutex> lock(mu_);
      LANDMARK_BLOCKING_POINT_WAIT("ThreadPool::WorkerLoop/wait", &mu_);
      work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
      if (queued_ == 0) break;  // stop_ set and nothing left to run
      // Own deque newest-first (the task most likely to be cache-warm),
      // then the shared queue oldest-first, then steal the oldest task of
      // the first non-empty victim deque.
      if (!local_[worker_index].empty()) {
        task = std::move(local_[worker_index].back());
        local_[worker_index].pop_back();
        deque_depth_[worker_index]->Set(
            static_cast<double>(local_[worker_index].size()));
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
        shared_queue_depth_->Set(static_cast<double>(queue_.size()));
      } else {
        for (size_t v = 1; v < num_workers; ++v) {
          const size_t victim = (worker_index + v) % num_workers;
          if (local_[victim].empty()) continue;
          task = std::move(local_[victim].front());
          local_[victim].pop_front();
          deque_depth_[victim]->Set(
              static_cast<double>(local_[victim].size()));
          stolen = true;
          break;
        }
      }
      --queued_;
      queue_depth_->Set(static_cast<double>(queued_));
    }
    if (stolen) steals_total_->Add(1);
    RunTask(std::move(task), busy_seconds);
    {
      MutexLock lock(&mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
  current_worker = WorkerIdentity{};
}

size_t ThreadPool::NumChunks(size_t n) const {
  if (n == 0) return 0;
  return std::min(n, std::max<size_t>(1, workers_.size()));
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  const size_t chunks = NumChunks(n);
  if (chunks <= 1) {
    body(0, n);
    return;
  }
  // Static partition: chunk c covers [c*q + min(c,r), ...) with q = n/chunks,
  // r = n%chunks — the first r chunks get one extra element.
  const size_t q = n / chunks;
  const size_t r = n % chunks;
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t size = q + (c < r ? 1 : 0);
    const size_t end = begin + size;
    Submit([&body, begin, end] { body(begin, end); });
    begin = end;
  }
  Wait();
}

// ---------------------------------------------------------------------------
// TaskGraph

TaskGraph::TaskGraph(ThreadPool* pool)
    : pool_(pool != nullptr && pool->num_threads() > 0 ? pool : nullptr) {}

TaskGraph::~TaskGraph() = default;

TaskGraph::NodeId TaskGraph::AddNode(std::function<void()> fn,
                                     const std::vector<NodeId>& deps,
                                     const char* label) {
  std::vector<NodeId> to_pool;
  NodeId id = 0;
  {
    MutexLock lock(&mu_);
    id = nodes_.size();
    Node node;
    node.fn = std::move(fn);
    node.label = label;
    nodes_.push_back(std::move(node));
    ++unfinished_;
    // A dependency that already finished releases nothing later, so it never
    // counts towards the pending total (this is what makes growing a running
    // graph race-free: whichever side of the dep's completion AddNode lands
    // on, the count is consistent because both run under the graph mutex).
    for (NodeId dep : deps) {
      if (nodes_[dep].done) continue;
      nodes_[dep].successors.push_back(id);
      ++nodes_[id].pending;
    }
    if (nodes_[id].pending == 0 && running_) MarkReady(id, &to_pool);
  }
  Dispatch(to_pool);
  return id;
}

void TaskGraph::MarkReady(NodeId id, std::vector<NodeId>* to_pool) {
  if (pool_ == nullptr) {
    inline_ready_.push_back(id);
    return;
  }
  to_pool->push_back(id);
}

void TaskGraph::Dispatch(const std::vector<NodeId>& to_pool) {
  for (NodeId id : to_pool) {
    pool_->SubmitLocal([this, id] { RunNode(id); });
  }
}

void TaskGraph::Run() {
  std::vector<NodeId> to_pool;
  {
    MutexLock lock(&mu_);
    running_ = true;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      if (nodes_[id].pending == 0) MarkReady(id, &to_pool);
    }
  }
  Dispatch(to_pool);
}

void TaskGraph::RunNode(NodeId id) {
  std::function<void()> fn;
  const char* label = nullptr;
  {
    MutexLock lock(&mu_);
    nodes_[id].started = true;
    label = nodes_[id].label;
    if (!cancelled_) fn = std::move(nodes_[id].fn);
  }
  if (fn) {
    try {
      ActivityScope activity(label != nullptr ? label : "graph/node");
      fn();
    } catch (...) {
      MutexLock lock(&mu_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
      cancelled_ = true;
    }
  }
  std::vector<NodeId> to_pool;
  {
    MutexLock lock(&mu_);
    nodes_[id].fn = nullptr;
    nodes_[id].done = true;
    for (NodeId succ : nodes_[id].successors) {
      if (--nodes_[succ].pending == 0) MarkReady(succ, &to_pool);
    }
    // Successors are still counted in unfinished_, so notifying before they
    // are dispatched cannot wake Wait() early.
    if (--unfinished_ == 0) drained_cv_.notify_all();
  }
  Dispatch(to_pool);
}

void TaskGraph::DrainInline() {
  for (;;) {
    NodeId id = 0;
    {
      MutexLock lock(&mu_);
      if (inline_ready_.empty()) return;
      id = inline_ready_.front();
      inline_ready_.pop_front();
    }
    RunNode(id);
  }
}

void TaskGraph::Wait() {
  LANDMARK_BLOCKING_POINT("TaskGraph::Wait");
  if (pool_ == nullptr) {
    DrainInline();
  } else {
    std::unique_lock<Mutex> lock(mu_);
    drained_cv_.wait(lock, [this] { return unfinished_ == 0; });
  }
  std::exception_ptr error;
  {
    MutexLock lock(&mu_);
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void TaskGraph::Cancel() {
  MutexLock lock(&mu_);
  cancelled_ = true;
}

bool TaskGraph::cancelled() const {
  MutexLock lock(&mu_);
  return cancelled_;
}

size_t TaskGraph::num_nodes() const {
  MutexLock lock(&mu_);
  return nodes_.size();
}

std::vector<TaskGraphStageCounts> TaskGraph::StageCounts() const {
  MutexLock lock(&mu_);
  std::vector<TaskGraphStageCounts> stages;
  for (const Node& node : nodes_) {
    const char* label = node.label != nullptr ? node.label : "(unlabeled)";
    TaskGraphStageCounts* stage = nullptr;
    for (TaskGraphStageCounts& existing : stages) {
      // Labels are interned literals, but compare by content so nodes
      // labeled from different translation units still group.
      if (existing.label == label ||
          std::string_view(existing.label) == label) {
        stage = &existing;
        break;
      }
    }
    if (stage == nullptr) {
      stages.push_back(TaskGraphStageCounts{label, 0, 0, 0, 0});
      stage = &stages.back();
    }
    if (node.done) {
      ++stage->done;
    } else if (node.started) {
      ++stage->running;
    } else if (node.pending > 0) {
      ++stage->pending;
    } else {
      ++stage->ready;
    }
  }
  return stages;
}

}  // namespace landmark
