#include "util/thread_pool.h"

#include <algorithm>
#include <string>

#include "util/telemetry/trace.h"

namespace landmark {

ThreadPool::ThreadPool(size_t num_threads) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  tasks_total_ = &registry.GetCounter("pool/tasks");
  queue_depth_ = &registry.GetGauge("pool/queue_depth");
  task_seconds_ = &registry.GetHistogram("pool/task_seconds");
  queue_wait_seconds_ = &registry.GetHistogram("pool/queue_wait_seconds");
  if (num_threads <= 1) return;  // inline pool
  registry.GetGauge("pool/workers").Add(static_cast<double>(num_threads));
  workers_.reserve(num_threads);
  worker_busy_seconds_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    worker_busy_seconds_.push_back(&registry.GetGauge(
        "pool/worker_busy_seconds/" + std::to_string(i)));
  }
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  if (!workers_.empty()) {
    MetricsRegistry::Global().GetGauge("pool/workers").Add(
        -static_cast<double>(workers_.size()));
  }
}

void ThreadPool::RunTask(Task task, Gauge* busy_seconds) {
  LANDMARK_TRACE_SPAN("pool/task");
  const uint64_t start_ns = TraceNowNs();
  if (task.enqueue_ns != 0) {
    queue_wait_seconds_->Record(static_cast<double>(start_ns -
                                                    task.enqueue_ns) /
                                1e9);
  }
  task.fn();
  const double seconds =
      static_cast<double>(TraceNowNs() - start_ns) / 1e9;
  task_seconds_->Record(seconds);
  if (busy_seconds != nullptr) busy_seconds->Add(seconds);
  tasks_total_->Add(1);
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    RunTask(Task{std::move(task), 0}, nullptr);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(Task{std::move(task), TraceNowNs()});
    ++in_flight_;
    queue_depth_->Set(static_cast<double>(queue_.size()));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  Gauge* busy_seconds = worker_busy_seconds_[worker_index];
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_->Set(static_cast<double>(queue_.size()));
    }
    RunTask(std::move(task), busy_seconds);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

size_t ThreadPool::NumChunks(size_t n) const {
  if (n == 0) return 0;
  return std::min(n, std::max<size_t>(1, workers_.size()));
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  const size_t chunks = NumChunks(n);
  if (chunks <= 1) {
    body(0, n);
    return;
  }
  // Static partition: chunk c covers [c*q + min(c,r), ...) with q = n/chunks,
  // r = n%chunks — the first r chunks get one extra element.
  const size_t q = n / chunks;
  const size_t r = n % chunks;
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t size = q + (c < r ? 1 : 0);
    const size_t end = begin + size;
    Submit([&body, begin, end] { body(begin, end); });
    begin = end;
  }
  Wait();
}

}  // namespace landmark
