#include "util/thread_pool.h"

#include <algorithm>

namespace landmark {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // inline pool
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

size_t ThreadPool::NumChunks(size_t n) const {
  if (n == 0) return 0;
  return std::min(n, std::max<size_t>(1, workers_.size()));
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  const size_t chunks = NumChunks(n);
  if (chunks <= 1) {
    body(0, n);
    return;
  }
  // Static partition: chunk c covers [c*q + min(c,r), ...) with q = n/chunks,
  // r = n%chunks — the first r chunks get one extra element.
  const size_t q = n / chunks;
  const size_t r = n % chunks;
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t size = q + (c < r ? 1 : 0);
    const size_t end = begin + size;
    Submit([&body, begin, end] { body(begin, end); });
    begin = end;
  }
  Wait();
}

}  // namespace landmark
