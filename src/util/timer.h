#ifndef LANDMARK_UTIL_TIMER_H_
#define LANDMARK_UTIL_TIMER_H_

#include <chrono>

#include "util/telemetry/metrics.h"

namespace landmark {

/// \brief Wall-clock stopwatch on std::chrono::steady_clock (monotonic —
/// immune to wall-time adjustments; every timing path in the project goes
/// through this class so no call site can regress to system_clock).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief RAII stopwatch that reports into telemetry: at scope exit the
/// elapsed seconds are recorded into `histogram` (if any) and written to
/// `elapsed_seconds` (if any). Replaces the ad-hoc Timer/print pairs in the
/// bench binaries:
///
///   double secs = 0.0;
///   {
///     ScopedTimer timer(
///         &MetricsRegistry::Global().GetHistogram("bench/dataset_seconds"),
///         &secs);
///     ... work ...
///   }
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram,
                       double* elapsed_seconds = nullptr)
      : histogram_(histogram), elapsed_seconds_(elapsed_seconds) {}
  ~ScopedTimer() { Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now instead of at scope exit (idempotent).
  void Stop() {
    if (stopped_) return;
    stopped_ = true;
    const double seconds = timer_.ElapsedSeconds();
    if (histogram_ != nullptr) histogram_->Record(seconds);
    if (elapsed_seconds_ != nullptr) *elapsed_seconds_ = seconds;
  }

 private:
  Timer timer_;
  Histogram* histogram_;
  double* elapsed_seconds_;
  bool stopped_ = false;
};

}  // namespace landmark

#endif  // LANDMARK_UTIL_TIMER_H_
