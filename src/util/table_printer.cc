#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"
#include "util/string_util.h"

namespace landmark {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  LANDMARK_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  LANDMARK_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int digits) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, digits));
  AddRow(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  const size_t cols = header_.size();
  std::vector<size_t> widths(cols, 0);
  for (size_t c = 0; c < cols; ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < cols; ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < cols; ++c) {
      os << (c == 0 ? "| " : " | ");
      // Left-align the first (label) column, right-align metrics.
      const std::string& cell = row[c];
      size_t pad = widths[c] - cell.size();
      if (c == 0) {
        os << cell << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << cell;
      }
    }
    os << " |\n";
  };

  print_row(header_);
  os << "|";
  for (size_t c = 0; c < cols; ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace landmark
