#include "util/telemetry/telemetry.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <utility>

#include "util/flags.h"
#include "util/logging.h"

namespace landmark {

TelemetryScope::TelemetryScope(TelemetryScopeOptions options)
    : options_(std::move(options)) {
  active_ = !options_.metrics_path.empty() || !options_.trace_path.empty() ||
            !options_.audit_path.empty() || !options_.profile_path.empty() ||
            !options_.timeline_path.empty() || !options_.slo_spec.empty() ||
            options_.serve_metrics;
  if (!options_.trace_path.empty()) TraceRecorder::Global().Start();
  if (!options_.profile_path.empty()) SamplingProfiler::Global().Start();
  if (!options_.audit_path.empty()) {
    Result<std::unique_ptr<AuditSink>> sink =
        AuditSink::Open(options_.audit_path);
    if (sink.ok()) {
      audit_sink_ = std::move(sink).ValueOrDie();
    } else {
      LANDMARK_LOG(Error) << sink.status().ToString();
    }
  }
  if (options_.serve_metrics) {
    HttpExporterOptions exporter_options;
    exporter_options.port = options_.metrics_port;
    Result<std::unique_ptr<HttpExporter>> exporter =
        HttpExporter::Start(exporter_options);
    if (exporter.ok()) {
      exporter_ = std::move(exporter).ValueOrDie();
      // Scripts (scripts/check.sh) parse this line to learn the resolved
      // ephemeral port; keep the format stable and flush immediately.
      std::printf("[metrics] listening on http://127.0.0.1:%u/metrics\n",
                  static_cast<unsigned>(exporter_->port()));
      std::fflush(stdout);
    } else {
      LANDMARK_LOG(Error) << exporter.status().ToString();
    }
  }
  // Any time-series consumer — JSONL dump, SLO policies, or just a live
  // /timelinez behind the exporter — arms the global collector.
  if (!options_.timeline_path.empty() || !options_.slo_spec.empty() ||
      options_.serve_metrics) {
    if (!options_.slo_spec.empty()) {
      Result<std::vector<SloPolicy>> policies =
          ParseSloSpecs(options_.slo_spec);
      if (policies.ok()) {
        for (const SloPolicy& policy : *policies) {
          SloRegistry::Global().Register(policy);
        }
      } else {
        LANDMARK_LOG(Error) << policies.status().ToString();
      }
    }
    TimeseriesOptions timeseries_options;
    if (options_.timeline_period_seconds > 0.0) {
      timeseries_options.period_ns = static_cast<uint64_t>(
          options_.timeline_period_seconds * 1e9);
    }
    SnapshotCollector& collector = SnapshotCollector::Global();
    collector.Configure(timeseries_options);
    // The SLO hook rides the collector's observer list; attach it once per
    // process (scopes come and go, the global collector does not).
    static const bool slo_observer_attached = [] {
      SnapshotCollector::Global().AddObserver([](const TimeseriesWindow&) {
        SloRegistry::Global().Evaluate(SnapshotCollector::Global().Windows());
      });
      return true;
    }();
    (void)slo_observer_attached;
    collector.Start();
  }
}

TelemetryScope::TelemetryScope(std::string metrics_path,
                               std::string trace_path)
    : TelemetryScope([&] {
        TelemetryScopeOptions options;
        options.metrics_path = std::move(metrics_path);
        options.trace_path = std::move(trace_path);
        return options;
      }()) {}

TelemetryScope TelemetryScope::FromFlags(const Flags& flags) {
  TelemetryScopeOptions options;
  options.metrics_path = flags.GetString("metrics-out", "");
  options.trace_path = flags.GetString("trace-out", "");
  options.audit_path = flags.GetString("audit-out", "");
  options.profile_path = flags.GetString("profile-out", "");
  options.serve_metrics = flags.Has("metrics-port");
  if (options.serve_metrics) {
    options.metrics_port =
        static_cast<uint16_t>(flags.GetInt("metrics-port", 0));
  }
  options.linger_seconds = flags.GetDouble("metrics-linger", 0.0);
  options.timeline_path = flags.GetString("timeline-out", "");
  options.timeline_period_seconds = flags.GetDouble("timeline-period", 1.0);
  options.slo_spec = flags.GetString("slo", "");
  return TelemetryScope(std::move(options));
}

TelemetryScope::TelemetryScope(TelemetryScope&& other) noexcept
    : options_(std::move(other.options_)),
      audit_sink_(std::move(other.audit_sink_)),
      exporter_(std::move(other.exporter_)),
      active_(other.active_) {
  other.active_ = false;
}

TelemetryScope& TelemetryScope::operator=(TelemetryScope&& other) noexcept {
  if (this != &other) {
    Finish();
    options_ = std::move(other.options_);
    audit_sink_ = std::move(other.audit_sink_);
    exporter_ = std::move(other.exporter_);
    active_ = other.active_;
    other.active_ = false;
  }
  return *this;
}

TelemetryScope::~TelemetryScope() { Finish(); }

void TelemetryScope::Finish() {
  if (!active_) return;
  active_ = false;
  if (!options_.trace_path.empty()) {
    TraceRecorder& recorder = TraceRecorder::Global();
    recorder.Stop();
    Status status = recorder.WriteChromeTraceFile(options_.trace_path);
    if (status.ok()) {
      LANDMARK_LOG(Info) << "wrote " << recorder.num_events()
                         << " trace events to " << options_.trace_path
                         << (recorder.num_dropped() > 0
                                 ? " (" +
                                       std::to_string(recorder.num_dropped()) +
                                       " dropped by ring overflow)"
                                 : "");
    } else {
      LANDMARK_LOG(Error) << status.ToString();
    }
  }
  if (!options_.metrics_path.empty()) {
    Status status = WriteMetricsJsonFile(MetricsRegistry::Global().Snapshot(),
                                         options_.metrics_path);
    if (status.ok()) {
      LANDMARK_LOG(Info) << "wrote metrics snapshot to "
                         << options_.metrics_path;
    } else {
      LANDMARK_LOG(Error) << status.ToString();
    }
  }
  if (!options_.profile_path.empty()) {
    SamplingProfiler& profiler = SamplingProfiler::Global();
    profiler.Stop();
    const std::string folded = profiler.FoldedText();
    std::ofstream out(options_.profile_path,
                      std::ios::out | std::ios::trunc);
    if (out.is_open()) {
      out << folded;
      size_t lines = 0;
      for (char c : folded) lines += c == '\n' ? 1 : 0;
      LANDMARK_LOG(Info) << "wrote " << lines << " folded stacks ("
                         << profiler.samples() << " samples) to "
                         << options_.profile_path;
    } else {
      LANDMARK_LOG(Error) << "cannot open profile output file: "
                          << options_.profile_path;
    }
  }
  if (audit_sink_ != nullptr) {
    LANDMARK_LOG(Info) << "wrote " << audit_sink_->units_written()
                       << " audit records to " << options_.audit_path;
    audit_sink_.reset();  // flushes and closes the stream
  }
  if (!options_.timeline_path.empty() || !options_.slo_spec.empty() ||
      options_.serve_metrics) {
    SnapshotCollector& collector = SnapshotCollector::Global();
    if (collector.running()) {
      // One final synchronous window covering the tail of the run, then
      // stop the thread. The ring survives Stop(), so /timelinez keeps
      // serving the final windows through the linger below.
      collector.TickOnce();
      collector.Stop();
    }
    if (!options_.timeline_path.empty()) {
      Status status = collector.WriteJsonl(options_.timeline_path);
      if (status.ok()) {
        LANDMARK_LOG(Info) << "wrote " << collector.Windows().size()
                           << " timeline windows to "
                           << options_.timeline_path;
      } else {
        LANDMARK_LOG(Error) << status.ToString();
      }
    }
  }
  if (exporter_ != nullptr) {
    if (options_.linger_seconds > 0.0) {
      // Hold the scrape endpoint open so an external poller can observe the
      // final metrics of a short-lived batch (the check.sh smoke stage
      // kills the process once it has scraped).
      std::this_thread::sleep_for(std::chrono::duration<double>(
          options_.linger_seconds));
    }
    exporter_.reset();
  }
}

}  // namespace landmark
