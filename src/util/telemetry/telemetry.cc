#include "util/telemetry/telemetry.h"

#include <utility>

#include "util/flags.h"
#include "util/logging.h"

namespace landmark {

TelemetryScope::TelemetryScope(std::string metrics_path,
                               std::string trace_path)
    : metrics_path_(std::move(metrics_path)),
      trace_path_(std::move(trace_path)) {
  active_ = !metrics_path_.empty() || !trace_path_.empty();
  if (!trace_path_.empty()) TraceRecorder::Global().Start();
}

TelemetryScope TelemetryScope::FromFlags(const Flags& flags) {
  return TelemetryScope(flags.GetString("metrics-out", ""),
                        flags.GetString("trace-out", ""));
}

TelemetryScope::TelemetryScope(TelemetryScope&& other) noexcept
    : metrics_path_(std::move(other.metrics_path_)),
      trace_path_(std::move(other.trace_path_)),
      active_(other.active_) {
  other.active_ = false;
}

TelemetryScope& TelemetryScope::operator=(TelemetryScope&& other) noexcept {
  if (this != &other) {
    Finish();
    metrics_path_ = std::move(other.metrics_path_);
    trace_path_ = std::move(other.trace_path_);
    active_ = other.active_;
    other.active_ = false;
  }
  return *this;
}

TelemetryScope::~TelemetryScope() { Finish(); }

void TelemetryScope::Finish() {
  if (!active_) return;
  active_ = false;
  if (!trace_path_.empty()) {
    TraceRecorder& recorder = TraceRecorder::Global();
    recorder.Stop();
    Status status = recorder.WriteChromeTraceFile(trace_path_);
    if (status.ok()) {
      LANDMARK_LOG(Info) << "wrote " << recorder.num_events()
                         << " trace events to " << trace_path_
                         << (recorder.num_dropped() > 0
                                 ? " (" +
                                       std::to_string(recorder.num_dropped()) +
                                       " dropped by ring overflow)"
                                 : "");
    } else {
      LANDMARK_LOG(Error) << status.ToString();
    }
  }
  if (!metrics_path_.empty()) {
    Status status = WriteMetricsJsonFile(MetricsRegistry::Global().Snapshot(),
                                         metrics_path_);
    if (status.ok()) {
      LANDMARK_LOG(Info) << "wrote metrics snapshot to " << metrics_path_;
    } else {
      LANDMARK_LOG(Error) << status.ToString();
    }
  }
}

}  // namespace landmark
