#include "util/telemetry/timeseries.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>

#include "util/string_util.h"
#include "util/telemetry/flight_deck.h"
#include "util/telemetry/json_util.h"
#include "util/timer.h"

namespace landmark {

namespace {

/// Handles into the global registry for the collector's own footprint
/// (contract table in docs/architecture.md). The collector diffs the
/// registry it reports into, so its own ticks show up on the timeline —
/// which is the honest thing for an observability layer to do.
struct TimeseriesMetrics {
  Counter& ticks;
  Histogram& collect_seconds;
  Gauge& windows_retained;

  static const TimeseriesMetrics& Get() {
    static const TimeseriesMetrics* metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      return new TimeseriesMetrics{
          registry.GetCounter("timeseries/ticks"),
          registry.GetHistogram("timeseries/collect_seconds"),
          registry.GetGauge("timeseries/windows_retained"),
      };
    }();
    return *metrics;
  }
};

/// Expands a snapshot's sparse (bound, count) bucket list back into the
/// dense per-index array the delta math runs on.
std::array<uint64_t, Histogram::kNumBuckets> DenseCounts(
    const HistogramSnapshot& h) {
  std::array<uint64_t, Histogram::kNumBuckets> counts{};
  for (const auto& [bound, count] : h.buckets) {
    counts[Histogram::BucketIndexForBound(bound)] += count;
  }
  return counts;
}

/// Everything that moved between `prev` and `current`. Counters are
/// monotone by contract; a registry Reset() between ticks would make a
/// delta negative, which clamps to zero (the validate_trace.py schema
/// requires non-negative deltas).
TimeseriesWindow DiffSnapshots(const MetricsSnapshot& prev,
                               const MetricsSnapshot& current,
                               uint64_t start_ns, uint64_t end_ns,
                               uint64_t index) {
  TimeseriesWindow window;
  window.index = index;
  window.start_ns = start_ns;
  window.end_ns = end_ns;
  const double seconds = window.seconds();

  // Both lists are name-sorted (MetricsRegistry::Snapshot iterates maps), so
  // the diff is a two-pointer merge. A counter absent from `prev` was
  // interned mid-window: its whole value is this window's delta.
  size_t p = 0;
  for (const auto& [name, value] : current.counters) {
    while (p < prev.counters.size() && prev.counters[p].first < name) ++p;
    uint64_t before = 0;
    if (p < prev.counters.size() && prev.counters[p].first == name) {
      before = prev.counters[p].second;
    }
    if (value <= before) continue;
    WindowCounter counter;
    counter.name = name;
    counter.delta = value - before;
    counter.rate =
        seconds > 0.0 ? static_cast<double>(counter.delta) / seconds : 0.0;
    window.counters.push_back(std::move(counter));
  }

  window.gauges.reserve(current.gauges.size());
  for (const auto& [name, value] : current.gauges) {
    window.gauges.push_back(WindowGauge{name, value});
  }

  for (const HistogramSnapshot& h : current.histograms) {
    const HistogramSnapshot* before = prev.FindHistogram(h.name);
    const uint64_t count_before = before != nullptr ? before->count : 0;
    if (h.count <= count_before) continue;
    WindowHistogram wh;
    wh.name = h.name;
    wh.count_delta = h.count - count_before;
    const double sum_before = before != nullptr ? before->sum : 0.0;
    wh.sum_delta = std::max(0.0, h.sum - sum_before);
    std::array<uint64_t, Histogram::kNumBuckets> deltas = DenseCounts(h);
    if (before != nullptr) {
      const std::array<uint64_t, Histogram::kNumBuckets> prev_counts =
          DenseCounts(*before);
      for (size_t i = 0; i < deltas.size(); ++i) {
        deltas[i] = deltas[i] > prev_counts[i] ? deltas[i] - prev_counts[i]
                                               : 0;
      }
    }
    wh.p50 = WindowedQuantile(deltas, wh.count_delta, h.max, 0.50);
    wh.p95 = WindowedQuantile(deltas, wh.count_delta, h.max, 0.95);
    wh.p99 = WindowedQuantile(deltas, wh.count_delta, h.max, 0.99);
    for (size_t i = 0; i < deltas.size(); ++i) {
      if (deltas[i] > 0) {
        wh.buckets.emplace_back(Histogram::BucketUpperBound(i), deltas[i]);
      }
    }
    window.histograms.push_back(std::move(wh));
  }
  return window;
}

std::string WindowFieldsJson(const TimeseriesWindow& window) {
  std::string out = "\"index\":" + std::to_string(window.index);
  out += ",\"start_ns\":" + std::to_string(window.start_ns);
  out += ",\"end_ns\":" + std::to_string(window.end_ns);
  out += ",\"seconds\":" + JsonDouble(window.seconds());
  out += ",\"counters\":[";
  for (size_t i = 0; i < window.counters.size(); ++i) {
    const WindowCounter& c = window.counters[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(c.name) + "\",\"delta\":" +
           std::to_string(c.delta) + ",\"rate\":" + JsonDouble(c.rate) + "}";
  }
  out += "],\"gauges\":[";
  for (size_t i = 0; i < window.gauges.size(); ++i) {
    const WindowGauge& g = window.gauges[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(g.name) + "\",\"value\":" +
           JsonDouble(g.value) + "}";
  }
  out += "],\"histograms\":[";
  for (size_t i = 0; i < window.histograms.size(); ++i) {
    const WindowHistogram& h = window.histograms[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(h.name) + "\"";
    out += ",\"count\":" + std::to_string(h.count_delta);
    out += ",\"sum\":" + JsonDouble(h.sum_delta);
    out += ",\"p50\":" + JsonDouble(h.p50);
    out += ",\"p95\":" + JsonDouble(h.p95);
    out += ",\"p99\":" + JsonDouble(h.p99);
    out += ",\"buckets\":[";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ",";
      out += "{\"le\":" + JsonDouble(h.buckets[b].first) + ",\"delta\":" +
             std::to_string(h.buckets[b].second) + "}";
    }
    out += "]}";
  }
  out += "]";
  return out;
}

std::string BaseFieldsJson(const TimeseriesBase& base) {
  std::string out = "\"start_ns\":" + std::to_string(base.start_ns);
  out += ",\"counters\":{";
  for (size_t i = 0; i < base.counters.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(base.counters[i].first) + "\":" +
           std::to_string(base.counters[i].second);
  }
  out += "}";
  return out;
}

}  // namespace

double WindowedQuantile(
    const std::array<uint64_t, Histogram::kNumBuckets>& delta_counts,
    uint64_t count, double max_hint, double quantile) {
  if (count == 0) return 0.0;
  double min = 0.0;
  for (size_t i = 0; i < delta_counts.size(); ++i) {
    if (delta_counts[i] == 0) continue;
    min = i == 0 ? 0.0 : Histogram::BucketUpperBound(i - 1);
    break;
  }
  double max = min;
  for (size_t i = delta_counts.size(); i-- > 0;) {
    if (delta_counts[i] == 0) continue;
    const double upper = Histogram::BucketUpperBound(i);
    max = std::isinf(upper) ? std::max(min, max_hint) : upper;
    break;
  }
  return HistogramPercentileFromBuckets(delta_counts, count, min, max,
                                        quantile);
}

SnapshotCollector& SnapshotCollector::Global() {
  static SnapshotCollector* collector = new SnapshotCollector();
  return *collector;
}

SnapshotCollector::SnapshotCollector(TimeseriesOptions options) {
  MutexLock lock(&mu_);
  options_ = options;
}

SnapshotCollector::~SnapshotCollector() { Stop(); }

void SnapshotCollector::Configure(const TimeseriesOptions& options) {
  MutexLock lock(&mu_);
  options_ = options;
  if (options_.capacity == 0) options_.capacity = 1;
}

TimeseriesOptions SnapshotCollector::options() const {
  MutexLock lock(&mu_);
  return options_;
}

void SnapshotCollector::Start() {
  MutexLock lifecycle(&lifecycle_mu_);
  {
    MutexLock lock(&mu_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  // Arm the base synchronously so a caller that starts the collector and
  // immediately generates load never loses that load to an unarmed base.
  TickOnce();
  collector_ = std::thread([this] { CollectorLoop(); });  // landmark-lint: allow(raw-thread) the ticking cadence must survive a fully-stalled pool; parking it on a worker would stop the clock exactly when the timeline matters
}

void SnapshotCollector::Stop() {
  MutexLock lifecycle(&lifecycle_mu_);
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  // landmark-lint: allow(lock-blocking) lifecycle_mu_ is held across the
  // join deliberately: it serializes Start/Stop against each other, and the
  // collector thread only ever takes mu_, which was released above.
  if (collector_.joinable()) collector_.join();
  MutexLock lock(&mu_);
  running_ = false;
  stop_requested_ = false;
}

bool SnapshotCollector::running() const {
  MutexLock lock(&mu_);
  return running_;
}

void SnapshotCollector::CollectorLoop() {
  ActivityRegistry::Global().Local().SetRole("timeline-collector", 0);
  std::unique_lock<Mutex> lock(mu_);
  while (!stop_requested_) {
    const uint64_t period_ns = options_.period_ns;
    LANDMARK_BLOCKING_POINT_WAIT("SnapshotCollector::CollectorLoop/wait",
                                 &mu_);
    cv_.wait_for(lock, std::chrono::nanoseconds(period_ns));
    if (stop_requested_) break;
    lock.unlock();
    TickOnce();
    lock.lock();
  }
}

void SnapshotCollector::TickOnce() {
  Timer timer;
  const uint64_t now = FlightDeckNowNs();
  MetricsSnapshot current = MetricsRegistry::Global().Snapshot();
  TimeseriesWindow window;
  bool emitted = false;
  size_t retained = 0;
  std::vector<Observer> observers;
  {
    MutexLock lock(&mu_);
    if (!armed_) {
      armed_ = true;
      base_.start_ns = now;
      base_.counters = current.counters;
    } else {
      window = DiffSnapshots(prev_, current, last_tick_ns_, now, ticks_);
      ++ticks_;
      while (ring_.size() >= std::max<size_t>(options_.capacity, 1)) {
        ring_.erase(ring_.begin());
        ++dropped_;
      }
      ring_.push_back(window);
      emitted = true;
      observers = observers_;
    }
    prev_ = std::move(current);
    last_tick_ns_ = now;
    retained = ring_.size();
  }
  const TimeseriesMetrics& metrics = TimeseriesMetrics::Get();
  metrics.ticks.Add(1);
  metrics.windows_retained.Set(static_cast<double>(retained));
  metrics.collect_seconds.Record(timer.ElapsedSeconds());
  if (emitted) {
    for (const Observer& observer : observers) observer(window);
  }
}

std::vector<TimeseriesWindow> SnapshotCollector::Windows() const {
  MutexLock lock(&mu_);
  return ring_;
}

TimeseriesBase SnapshotCollector::Base() const {
  MutexLock lock(&mu_);
  return base_;
}

uint64_t SnapshotCollector::ticks() const {
  MutexLock lock(&mu_);
  return ticks_;
}

uint64_t SnapshotCollector::dropped() const {
  MutexLock lock(&mu_);
  return dropped_;
}

bool SnapshotCollector::armed() const {
  MutexLock lock(&mu_);
  return armed_;
}

void SnapshotCollector::AddObserver(Observer observer) {
  MutexLock lock(&mu_);
  observers_.push_back(std::move(observer));
}

void SnapshotCollector::ResetForTest() {
  Stop();
  MutexLock lock(&mu_);
  armed_ = false;
  base_ = TimeseriesBase{};
  prev_ = MetricsSnapshot{};
  last_tick_ns_ = 0;
  ticks_ = 0;
  dropped_ = 0;
  ring_.clear();
  observers_.clear();
}

std::string SnapshotCollector::TimelinezText() const {
  TimeseriesOptions options;
  TimeseriesBase base;
  std::vector<TimeseriesWindow> windows;
  uint64_t total_ticks = 0;
  uint64_t total_dropped = 0;
  {
    MutexLock lock(&mu_);
    options = options_;
    base = base_;
    windows = ring_;
    total_ticks = ticks_;
    total_dropped = dropped_;
  }
  std::string out = "landmark timeline\n\n";
  out += "period_seconds: " +
         FormatDouble(static_cast<double>(options.period_ns) * 1e-9, 3) + "\n";
  out += "capacity: " + std::to_string(options.capacity) + "\n";
  out += "ticks: " + std::to_string(total_ticks) + "\n";
  out += "retained: " + std::to_string(windows.size()) + "\n";
  out += "dropped: " + std::to_string(total_dropped) + "\n";
  out += "base_start_ns: " + std::to_string(base.start_ns) + "\n";
  // The human table shows the newest windows; the full ring is one
  // ?format=json (or --timeline-out) away.
  constexpr size_t kTextWindows = 10;
  const size_t first =
      windows.size() > kTextWindows ? windows.size() - kTextWindows : 0;
  if (first > 0) {
    out += "(showing last " + std::to_string(windows.size() - first) + " of " +
           std::to_string(windows.size()) + " retained windows)\n";
  }
  for (size_t i = first; i < windows.size(); ++i) {
    const TimeseriesWindow& w = windows[i];
    out += "\nwindow " + std::to_string(w.index) + " (" +
           FormatDouble(w.seconds(), 3) + "s):\n";
    for (const WindowCounter& c : w.counters) {
      out += "  counter " + c.name + ": +" + std::to_string(c.delta) + " (" +
             FormatDouble(c.rate, 3) + "/s)\n";
    }
    for (const WindowHistogram& h : w.histograms) {
      out += "  histogram " + h.name + ": count=" +
             std::to_string(h.count_delta) + " sum=" +
             FormatDouble(h.sum_delta, 6) + " p50=" + FormatDouble(h.p50, 6) +
             " p95=" + FormatDouble(h.p95, 6) + " p99=" +
             FormatDouble(h.p99, 6) + "\n";
    }
  }
  return out;
}

std::string SnapshotCollector::TimelinezJson() const {
  TimeseriesOptions options;
  TimeseriesBase base;
  std::vector<TimeseriesWindow> windows;
  uint64_t total_ticks = 0;
  uint64_t total_dropped = 0;
  {
    MutexLock lock(&mu_);
    options = options_;
    base = base_;
    windows = ring_;
    total_ticks = ticks_;
    total_dropped = dropped_;
  }
  std::string out = "{\"period_seconds\":" +
                    JsonDouble(static_cast<double>(options.period_ns) * 1e-9);
  out += ",\"capacity\":" + std::to_string(options.capacity);
  out += ",\"ticks\":" + std::to_string(total_ticks);
  out += ",\"dropped\":" + std::to_string(total_dropped);
  out += ",\"base\":{" + BaseFieldsJson(base) + "}";
  out += ",\"windows\":[";
  for (size_t i = 0; i < windows.size(); ++i) {
    if (i > 0) out += ",";
    out += "{" + WindowFieldsJson(windows[i]) + "}";
  }
  out += "]}";
  return out;
}

Status SnapshotCollector::WriteJsonl(const std::string& path) const {
  TimeseriesOptions options;
  TimeseriesBase base;
  std::vector<TimeseriesWindow> windows;
  uint64_t total_ticks = 0;
  uint64_t total_dropped = 0;
  {
    MutexLock lock(&mu_);
    options = options_;
    base = base_;
    windows = ring_;
    total_ticks = ticks_;
    total_dropped = dropped_;
  }
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open timeline output file: " + path);
  }
  out << "{\"type\":\"timeline_base\",\"period_seconds\":"
      << JsonDouble(static_cast<double>(options.period_ns) * 1e-9)
      << ",\"capacity\":" << options.capacity << ",\"ticks\":" << total_ticks
      << ",\"dropped\":" << total_dropped << "," << BaseFieldsJson(base)
      << "}\n";
  for (const TimeseriesWindow& window : windows) {
    out << "{\"type\":\"window\"," << WindowFieldsJson(window) << "}\n";
  }
  if (!out.good()) {
    return Status::IoError("write failed for timeline output file: " + path);
  }
  return Status::OK();
}

}  // namespace landmark
