#include "util/telemetry/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "util/telemetry/json_util.h"
#include "util/telemetry/metrics.h"

namespace landmark {

uint64_t TraceNowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           origin)
          .count());
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::ThreadBuffer& TraceRecorder::LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (buffer == nullptr) {
    buffer = std::make_shared<ThreadBuffer>(
        static_cast<uint32_t>(ThisThreadIndex()));
    MutexLock lock(&mu_);
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void TraceRecorder::Start(size_t events_per_thread) {
  events_per_thread_.store(std::max<size_t>(1, events_per_thread),
                           std::memory_order_relaxed);
  Clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Stop() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceRecorder::Record(const char* name, uint64_t begin_ns,
                           uint64_t dur_ns) {
  if (!enabled()) return;
  ThreadBuffer& buffer = LocalBuffer();
  // Uncontended for the owning thread except while an export walks the
  // rings; cheap relative to span granularity (stages, tasks, queries).
  MutexLock lock(&buffer.mu);
  const size_t capacity = events_per_thread_.load(std::memory_order_relaxed);
  if (buffer.ring.size() != capacity) {
    buffer.ring.assign(capacity, TraceEvent{});
    buffer.head = 0;
    buffer.recorded = 0;
  }
  buffer.ring[buffer.head] = TraceEvent{name, begin_ns, dur_ns};
  buffer.head = (buffer.head + 1) % buffer.ring.size();
  ++buffer.recorded;
}

size_t TraceRecorder::num_events() const {
  MutexLock lock(&mu_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(&buffer->mu);
    total += static_cast<size_t>(
        std::min<uint64_t>(buffer->recorded, buffer->ring.size()));
  }
  return total;
}

uint64_t TraceRecorder::num_dropped() const {
  MutexLock lock(&mu_);
  uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(&buffer->mu);
    if (buffer->recorded > buffer->ring.size()) {
      dropped += buffer->recorded - buffer->ring.size();
    }
  }
  return dropped;
}

void TraceRecorder::Clear() {
  MutexLock lock(&mu_);
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(&buffer->mu);
    buffer->ring.clear();
    buffer->head = 0;
    buffer->recorded = 0;
  }
}

std::string TraceRecorder::ToChromeTraceJson() const {
  struct TidEvent {
    uint32_t tid;
    TraceEvent event;
  };
  std::vector<TidEvent> events;
  std::vector<uint32_t> tids;
  {
    MutexLock lock(&mu_);
    for (const auto& buffer : buffers_) {
      MutexLock buffer_lock(&buffer->mu);
      if (buffer->recorded == 0) continue;
      tids.push_back(buffer->tid);
      const size_t size = static_cast<size_t>(
          std::min<uint64_t>(buffer->recorded, buffer->ring.size()));
      // Oldest-first: a wrapped ring starts at head, a partial one at 0.
      const size_t begin = buffer->recorded > buffer->ring.size()
                               ? buffer->head
                               : 0;
      for (size_t i = 0; i < size; ++i) {
        events.push_back(TidEvent{
            buffer->tid, buffer->ring[(begin + i) % buffer->ring.size()]});
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TidEvent& a, const TidEvent& b) {
                     return a.event.begin_ns < b.event.begin_ns;
                   });

  // Chrome trace-event format: complete events ("ph":"X") with microsecond
  // timestamps, plus thread-name metadata so Perfetto labels the tracks.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto append = [&](const std::string& event_json) {
    if (!first) out += ",";
    first = false;
    out += "\n" + event_json;
  };
  std::sort(tids.begin(), tids.end());
  for (uint32_t tid : tids) {
    append("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(tid) +
           ",\"args\":{\"name\":\"thread-" + std::to_string(tid) + "\"}}");
  }
  for (const TidEvent& e : events) {
    append("{\"name\":\"" + JsonEscape(e.event.name) +
           "\",\"cat\":\"landmark\",\"ph\":\"X\",\"ts\":" +
           JsonDouble(static_cast<double>(e.event.begin_ns) / 1e3) +
           ",\"dur\":" +
           JsonDouble(static_cast<double>(e.event.dur_ns) / 1e3) +
           ",\"pid\":1,\"tid\":" + std::to_string(e.tid) + "}");
  }
  out += "\n]}\n";
  return out;
}

Status TraceRecorder::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open trace file: " + path);
  out << ToChromeTraceJson();
  out.flush();
  if (!out) return Status::IoError("failed writing trace file: " + path);
  return Status::OK();
}

}  // namespace landmark
