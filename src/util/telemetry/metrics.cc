#include "util/telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace landmark {

size_t ThisThreadIndex() {
  static std::atomic<size_t> next_index{0};
  thread_local const size_t index =
      next_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

namespace {

/// The 43 finite bucket bounds: kFirstBound * 2^i.
const std::array<double, Histogram::kNumBuckets - 1>& BucketBounds() {
  static const std::array<double, Histogram::kNumBuckets - 1> bounds = [] {
    std::array<double, Histogram::kNumBuckets - 1> b{};
    double bound = Histogram::kFirstBound;
    for (size_t i = 0; i < b.size(); ++i) {
      b[i] = bound;
      bound *= 2.0;
    }
    return b;
  }();
  return bounds;
}

size_t BucketIndex(double value) {
  const auto& bounds = BucketBounds();
  // First bound >= value; NaN and negatives land in bucket 0 (the bounds are
  // all positive and the comparison below is false for NaN).
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  return static_cast<size_t>(it - bounds.begin());  // == kNumBuckets-1: overflow
}

}  // namespace

Histogram::Shard::Shard()
    : min(std::numeric_limits<double>::infinity()),
      max(-std::numeric_limits<double>::infinity()) {
  for (auto& c : counts) c.store(0, std::memory_order_relaxed);
}

double Histogram::BucketUpperBound(size_t index) {
  if (index >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return BucketBounds()[index];
}

size_t Histogram::BucketIndexForBound(double bound) {
  if (std::isinf(bound)) return kNumBuckets - 1;
  const auto& bounds = BucketBounds();
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (bounds[i] == bound) return i;
  }
  return kNumBuckets - 1;
}

void Histogram::Record(double value) {
  Shard& shard = shards_[telemetry_internal::ThisShard()];
  shard.counts[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  telemetry_internal::AtomicAddDouble(shard.sum, value);
  telemetry_internal::AtomicMinDouble(shard.min, value);
  telemetry_internal::AtomicMaxDouble(shard.max, value);
}

void Histogram::RecordWithExemplar(double value,
                                   const ExemplarContext& context) {
  Record(value);
  Exemplar exemplar;
  exemplar.valid = true;
  exemplar.value = value;
  exemplar.audit_ordinal = context.audit_ordinal;
  exemplar.has_audit_ordinal = context.has_audit_ordinal;
  exemplar.record_id = context.record_id;
  exemplar.record_index = context.record_index;
  exemplar.unit_index = context.unit_index;
  exemplar.thread_index = static_cast<uint32_t>(ThisThreadIndex());
  const size_t bucket = BucketIndex(value);
  MutexLock lock(&exemplar_mu_);
  if (exemplar_slots_ == nullptr) {
    exemplar_slots_ = std::make_unique<ExemplarSlots>();
  }
  exemplar_slots_->latest[bucket] = exemplar;
  Exemplar& peak = exemplar_slots_->peak[bucket];
  if (!peak.valid || value >= peak.value) peak = exemplar;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& c : shard.counts) c.store(0, std::memory_order_relaxed);
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.min.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    shard.max.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
  }
  MutexLock lock(&exemplar_mu_);
  exemplar_slots_.reset();
}

/// Rank-`target` value (0-based, in [0, count-1]) estimated from aggregated
/// bucket counts by linear interpolation within the owning bucket.
double HistogramPercentileFromBuckets(
    const std::array<uint64_t, Histogram::kNumBuckets>& counts, uint64_t count,
    double min, double max, double quantile) {
  if (count == 0) return 0.0;
  const double target = quantile * static_cast<double>(count - 1);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double bucket_begin = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (target >= static_cast<double>(cumulative)) continue;
    double lower = i == 0 ? 0.0 : Histogram::BucketUpperBound(i - 1);
    double upper = Histogram::BucketUpperBound(i);
    // The overflow bucket has no finite upper bound; the observed extrema
    // tighten both ends of whichever bucket owns the rank.
    lower = std::max(lower, std::min(min, max));
    upper = std::min(upper, max);
    if (upper < lower) upper = lower;
    const double fraction =
        (target - bucket_begin) / static_cast<double>(counts[i]);
    return lower + fraction * (upper - lower);
  }
  return max;
}

HistogramSnapshot Histogram::Snapshot(std::string name) const {
  HistogramSnapshot snapshot;
  snapshot.name = std::move(name);
  std::array<uint64_t, kNumBuckets> counts{};
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    snapshot.count += shard.count.load(std::memory_order_relaxed);
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
    min = std::min(min, shard.min.load(std::memory_order_relaxed));
    max = std::max(max, shard.max.load(std::memory_order_relaxed));
  }
  if (snapshot.count == 0) return snapshot;
  snapshot.min = min;
  snapshot.max = max;
  snapshot.p50 =
      HistogramPercentileFromBuckets(counts, snapshot.count, min, max, 0.50);
  snapshot.p95 =
      HistogramPercentileFromBuckets(counts, snapshot.count, min, max, 0.95);
  snapshot.p99 =
      HistogramPercentileFromBuckets(counts, snapshot.count, min, max, 0.99);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] > 0) {
      snapshot.buckets.emplace_back(BucketUpperBound(i), counts[i]);
    }
  }
  {
    MutexLock lock(&exemplar_mu_);
    if (exemplar_slots_ != nullptr) {
      for (size_t i = 0; i < kNumBuckets; ++i) {
        if (!exemplar_slots_->latest[i].valid) continue;
        BucketExemplars entry;
        entry.bucket_index = i;
        entry.bound = BucketUpperBound(i);
        entry.latest = exemplar_slots_->latest[i];
        entry.peak = exemplar_slots_->peak[i];
        snapshot.exemplars.push_back(entry);
      }
    }
  }
  return snapshot;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name,
                                       uint64_t fallback) const {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) return value;
  }
  return fallback;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back(histogram->Snapshot(name));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace landmark
