#include "util/telemetry/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <utility>

#include "util/string_util.h"
#include "util/telemetry/flight_deck.h"
#include "util/telemetry/slo.h"
#include "util/telemetry/timeseries.h"
#include "util/telemetry/trace.h"
#include "util/timer.h"

namespace landmark {

namespace {

/// Prometheus sample rendering: the exposition format *does* have
/// NaN/±Inf literals, unlike JSON, so no clamping here.
std::string PromDouble(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// `engine/plan_seconds` → `landmark_engine_plan_seconds`.
std::string PromName(const std::string& name) {
  std::string out = "landmark_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

/// Registry handles for the exporter's own metrics (contract table in
/// docs/architecture.md).
struct ExporterMetrics {
  Counter& requests;
  Histogram& scrape_seconds;

  static const ExporterMetrics& Get() {
    static const ExporterMetrics* metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      return new ExporterMetrics{
          registry.GetCounter("telemetry/http_requests"),
          registry.GetHistogram("telemetry/scrape_seconds"),
      };
    }();
    return *metrics;
  }
};

/// Value of `key` in an `a=1&b=2` query string, or `fallback` when absent
/// or empty. No percent-decoding — the exporter's parameters are plain
/// identifiers and numbers.
std::string QueryParam(const std::string& query, const std::string& key,
                       const std::string& fallback) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp && eq - pos == key.size() &&
        query.compare(pos, key.size(), key) == 0 && eq + 1 < amp + 1) {
      const std::string value = query.substr(eq + 1, amp - eq - 1);
      if (!value.empty()) return value;
    }
    pos = amp + 1;
  }
  return fallback;
}

/// OpenMetrics exemplar suffix for one retained observation:
/// ` # {ordinal="12",record="34",record_index="0",unit="1",thread="3"} 0.0034`.
/// The ordinal label is omitted when no audit sink was attached at capture
/// time (there is no line it could point at then).
std::string ExemplarSuffix(const Exemplar& exemplar) {
  if (!exemplar.valid) return "";
  std::string out = " # {";
  if (exemplar.has_audit_ordinal) {
    out += "ordinal=\"" + std::to_string(exemplar.audit_ordinal) + "\",";
  }
  out += "record=\"" + std::to_string(exemplar.record_id) + "\"";
  out += ",record_index=\"" + std::to_string(exemplar.record_index) + "\"";
  out += ",unit=\"" + std::to_string(exemplar.unit_index) + "\"";
  out += ",thread=\"" + std::to_string(exemplar.thread_index) + "\"";
  out += "} " + PromDouble(exemplar.value);
  return out;
}

std::string MakeResponse(int status, const std::string& reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

/// Human-readable status page: engine stage totals from the registry plus
/// compile-time build info.
std::string StatuszBody(uint64_t started_ns) {
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  std::string out = "landmark exporter status\n\n";
  out += "uptime_seconds: " +
         PromDouble(static_cast<double>(TraceNowNs() - started_ns) / 1e9) +
         "\n";
  out += "compiler: " __VERSION__ "\n";
  out += "c++_standard: " + std::to_string(__cplusplus) + "\n\n";
  out += "engine totals:\n";
  for (const char* name :
       {"engine/batches", "engine/records", "engine/records_failed",
        "engine/units", "engine/masks", "engine/model_queries",
        "engine/cache_hits", "explain/quality/units",
        "explain/quality/low_r2", "explain/quality/degenerate_neighborhoods",
        "telemetry/http_requests"}) {
    out += "  " + std::string(name) + ": " +
           std::to_string(snapshot.CounterValue(name)) + "\n";
  }
  out += "\nengine stage seconds (sum over batches):\n";
  for (const char* name :
       {"engine/plan_seconds", "engine/reconstruct_seconds",
        "engine/query_seconds", "engine/fit_seconds",
        "engine/batch_seconds"}) {
    const HistogramSnapshot* h = snapshot.FindHistogram(name);
    out += "  " + std::string(name) + ": " +
           PromDouble(h != nullptr ? h->sum : 0.0) + "\n";
  }
  bool exemplar_header_written = false;
  for (const HistogramSnapshot& h : snapshot.histograms) {
    for (const BucketExemplars& e : h.exemplars) {
      if (!e.latest.valid) continue;
      if (!exemplar_header_written) {
        out += "\nhistogram exemplars (latest per non-empty bucket):\n";
        exemplar_header_written = true;
      }
      out += "  " + h.name + " le=" + PromDouble(e.bound) + ": value=" +
             PromDouble(e.latest.value);
      if (e.latest.has_audit_ordinal) {
        out += " audit_unit=" + std::to_string(e.latest.audit_ordinal);
      }
      out += " record=" + std::to_string(e.latest.record_id) + " unit=" +
             std::to_string(e.latest.unit_index) + " thread=" +
             std::to_string(e.latest.thread_index);
      if (e.peak.valid && e.peak.value != e.latest.value) {
        out += " (peak " + PromDouble(e.peak.value) + ")";
      }
      out += "\n";
    }
  }
  return out;
}

/// The exporter's route list as a JSON array — spliced into the /statusz
/// JSON object and kept next to the 404 body so the two cannot drift apart.
std::string EndpointsJsonArray() {
  return "[\"/metrics\",\"/healthz\",\"/statusz\",\"/statusz?format=json\","
         "\"/profilez?seconds=N\",\"/timelinez\",\"/timelinez?format=json\","
         "\"/sloz\",\"/sloz?format=json\"]";
}

/// Folded-stack profile over a sampling window. seconds == 0 returns the
/// cumulative profile since the profiler started, without waiting;
/// otherwise the accept loop sleeps for the window and returns the delta.
std::string ProfilezBody(double seconds) {
  SamplingProfiler& profiler = SamplingProfiler::Global();
  profiler.Start();
  if (seconds <= 0.0) return profiler.FoldedText();
  const std::map<std::string, uint64_t> before = profiler.FoldedCounts();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  std::map<std::string, uint64_t> delta = profiler.FoldedCounts();
  for (const auto& [stack, count] : before) {
    auto it = delta.find(stack);
    if (it == delta.end()) continue;
    if (it->second <= count) {
      delta.erase(it);
    } else {
      it->second -= count;
    }
  }
  return SamplingProfiler::RenderFolded(delta);
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string prom = PromName(name);
    // Counters carry the conventional `_total` suffix — unless the metric
    // name already ends in it (engine/stalls_total), which must not become
    // `_total_total`.
    if (prom.size() < 6 || prom.compare(prom.size() - 6, 6, "_total") != 0) {
      prom += "_total";
    }
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + PromDouble(value) + "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string prom = PromName(h.name);
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (const auto& [bound, count] : h.buckets) {
      cumulative += count;
      // The overflow bucket has an infinite bound; it is exactly the final
      // `+Inf` sample below, so emitting it here would duplicate the line.
      if (std::isinf(bound)) continue;
      out += prom + "_bucket{le=\"" + PromDouble(bound) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += prom + "_sum " + PromDouble(h.sum) + "\n";
    out += prom + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string ToOpenMetricsText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string family = PromName(name);
    // OpenMetrics: the counter *family* must not end in `_total`; the
    // sample name carries the suffix instead.
    if (family.size() >= 6 &&
        family.compare(family.size() - 6, 6, "_total") == 0) {
      family.resize(family.size() - 6);
    }
    out += "# TYPE " + family + " counter\n";
    out += family + "_total " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string family = PromName(name);
    out += "# TYPE " + family + " gauge\n";
    out += family + " " + PromDouble(value) + "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string family = PromName(h.name);
    out += "# TYPE " + family + " histogram\n";
    // Exemplars by bucket index, and the peak of the highest bucket that
    // retained one (attached to the +Inf sample below).
    std::array<const Exemplar*, Histogram::kNumBuckets> latest{};
    const Exemplar* top_peak = nullptr;
    for (const BucketExemplars& e : h.exemplars) {
      if (e.bucket_index < latest.size()) latest[e.bucket_index] = &e.latest;
      if (e.peak.valid) top_peak = &e.peak;
    }
    uint64_t cumulative = 0;
    for (const auto& [bound, count] : h.buckets) {
      cumulative += count;
      if (std::isinf(bound)) continue;
      out += family + "_bucket{le=\"" + PromDouble(bound) + "\"} " +
             std::to_string(cumulative);
      const size_t index = Histogram::BucketIndexForBound(bound);
      if (latest[index] != nullptr) out += ExemplarSuffix(*latest[index]);
      out += "\n";
    }
    out += family + "_bucket{le=\"+Inf\"} " + std::to_string(h.count);
    if (top_peak != nullptr) out += ExemplarSuffix(*top_peak);
    out += "\n";
    out += family + "_sum " + PromDouble(h.sum) + "\n";
    out += family + "_count " + std::to_string(h.count) + "\n";
  }
  out += "# EOF\n";
  return out;
}

Result<std::unique_ptr<HttpExporter>> HttpExporter::Start(
    const HttpExporterOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("bind(127.0.0.1:" + std::to_string(options.port) +
                           "): " + error);
  }
  if (::listen(fd, 8) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("listen(): " + error);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("getsockname(): " + error);
  }
  return std::unique_ptr<HttpExporter>(
      new HttpExporter(fd, ntohs(bound.sin_port)));
}

HttpExporter::HttpExporter(int listen_fd, uint16_t port)
    : listen_fd_(listen_fd), port_(port), started_ns_(TraceNowNs()) {
  server_ = std::thread([this] { Serve(); });  // landmark-lint: allow(raw-thread) the accept loop blocks between scrapes; a pool worker would be held hostage for the process lifetime
}

HttpExporter::~HttpExporter() { Stop(); }

void HttpExporter::Stop() {
  {
    MutexLock lock(&mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Unblocks the accept() in Serve(); the loop then observes stopped_.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (server_.joinable()) server_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpExporter::Serve() {
  for (;;) {
    // Registered blocking point covering the whole request cycle: accept()
    // blocks between scrapes and read()/write() block on the peer, so the
    // serving thread must never carry a lock into this loop iteration.
    LANDMARK_BLOCKING_POINT("HttpExporter::Serve/socket-io");
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    {
      MutexLock lock(&mu_);
      if (stopped_) {
        if (client >= 0) ::close(client);
        return;
      }
    }
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket gone
    }
    // Read until the end of the header block (requests have no body).
    std::string request;
    char buf[1024];
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < 16 * 1024) {
      const ssize_t n = ::read(client, buf, sizeof(buf));
      if (n <= 0) break;
      request.append(buf, static_cast<size_t>(n));
    }
    const size_t line_end = request.find("\r\n");
    std::string method;
    std::string path;
    if (line_end != std::string::npos) {
      const std::string line = request.substr(0, line_end);
      const size_t sp1 = line.find(' ');
      const size_t sp2 =
          sp1 == std::string::npos ? std::string::npos
                                   : line.find(' ', sp1 + 1);
      if (sp1 != std::string::npos && sp2 != std::string::npos) {
        method = line.substr(0, sp1);
        path = line.substr(sp1 + 1, sp2 - sp1 - 1);
      }
    }
    // Accept header (case-insensitive name per RFC 9110) for /metrics
    // content negotiation. Header lines sit between the request line and
    // the blank terminator.
    std::string accept;
    size_t header_pos =
        line_end == std::string::npos ? std::string::npos : line_end + 2;
    while (header_pos != std::string::npos && header_pos < request.size()) {
      const size_t eol = request.find("\r\n", header_pos);
      if (eol == std::string::npos || eol == header_pos) break;
      const std::string header =
          request.substr(header_pos, eol - header_pos);
      const size_t colon = header.find(':');
      if (colon != std::string::npos &&
          ToLower(Trim(header.substr(0, colon))) == "accept") {
        accept = Trim(header.substr(colon + 1));
      }
      header_pos = eol + 2;
    }
    const std::string response = HandleRequest(method, path, accept);
    size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n =
          ::write(client, response.data() + sent, response.size() - sent);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    ::close(client);
  }
}

std::string HttpExporter::HandleRequest(const std::string& method,
                                        const std::string& path,
                                        const std::string& accept) const {
  ExporterMetrics::Get().requests.Add();
  if (method != "GET") {
    return MakeResponse(405, "Method Not Allowed", "text/plain",
                        "only GET is supported\n");
  }
  // "/statusz?format=json" → route "/statusz", query "format=json".
  const size_t qmark = path.find('?');
  const std::string route =
      qmark == std::string::npos ? path : path.substr(0, qmark);
  const std::string query =
      qmark == std::string::npos ? std::string() : path.substr(qmark + 1);
  if (route == "/metrics") {
    Timer timer;
    // Exemplars are only legal in the OpenMetrics format, so the default
    // stays Prometheus 0.0.4 and scrapers opt in via Accept.
    const bool open_metrics =
        accept.find("application/openmetrics-text") != std::string::npos;
    const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
    std::string body =
        open_metrics ? ToOpenMetricsText(snapshot) : ToPrometheusText(snapshot);
    ExporterMetrics::Get().scrape_seconds.Record(timer.ElapsedSeconds());
    return MakeResponse(
        200, "OK",
        open_metrics ? "application/openmetrics-text; version=1.0.0; "
                       "charset=utf-8"
                     : "text/plain; version=0.0.4; charset=utf-8",
        body);
  }
  if (route == "/healthz") {
    return MakeResponse(200, "OK", "text/plain", "ok\n");
  }
  if (route == "/statusz") {
    if (QueryParam(query, "format", "text") == "json") {
      // FlightDeckStatusJson renders one flat object; the endpoint list is
      // spliced in as its first member.
      std::string body = FlightDeckStatusJson();
      const size_t brace = body.find('{');
      if (brace != std::string::npos) {
        body.insert(brace + 1,
                    "\"endpoints\":" + EndpointsJsonArray() + ",");
      }
      return MakeResponse(200, "OK", "application/json", body + "\n");
    }
    return MakeResponse(200, "OK", "text/plain",
                        StatuszBody(started_ns_) + "\n" +
                            FlightDeckStatusText());
  }
  if (route == "/profilez") {
    double seconds = std::atof(QueryParam(query, "seconds", "1").c_str());
    if (!(seconds >= 0.0)) seconds = 0.0;  // NaN and negatives → cumulative
    if (seconds > 30.0) seconds = 30.0;
    return MakeResponse(200, "OK", "text/plain", ProfilezBody(seconds));
  }
  if (route == "/timelinez") {
    const SnapshotCollector& collector = SnapshotCollector::Global();
    if (QueryParam(query, "format", "text") == "json") {
      return MakeResponse(200, "OK", "application/json",
                          collector.TimelinezJson() + "\n");
    }
    return MakeResponse(200, "OK", "text/plain", collector.TimelinezText());
  }
  if (route == "/sloz") {
    const SloRegistry& slos = SloRegistry::Global();
    if (QueryParam(query, "format", "text") == "json") {
      return MakeResponse(200, "OK", "application/json",
                          slos.StatusJson() + "\n");
    }
    return MakeResponse(200, "OK", "text/plain", slos.StatusText());
  }
  return MakeResponse(404, "Not Found", "text/plain",
                      "unknown path; try /metrics, /healthz, /statusz, "
                      "/statusz?format=json, /profilez?seconds=N, "
                      "/timelinez, /timelinez?format=json, /sloz, "
                      "/sloz?format=json\n");
}

Result<std::string> HttpGetLoopback(uint16_t port, const std::string& path,
                                    int* status_code) {
  return HttpGetLoopback(port, path, {}, status_code);
}

Result<std::string> HttpGetLoopback(uint16_t port, const std::string& path,
                                    const std::vector<std::string>& headers,
                                    int* status_code) {
  LANDMARK_BLOCKING_POINT("HttpGetLoopback/socket-io");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("connect(127.0.0.1:" + std::to_string(port) +
                           "): " + error);
  }
  std::string request = "GET " + path +
                        " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                        "Connection: close\r\n";
  for (const std::string& header : headers) request += header + "\r\n";
  request += "\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) {
      ::close(fd);
      return Status::IoError("write() failed mid-request");
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::IoError("malformed HTTP response (no header terminator)");
  }
  if (status_code != nullptr) {
    *status_code = 0;
    const size_t sp = response.find(' ');
    if (sp != std::string::npos && sp + 4 <= response.size()) {
      *status_code = std::atoi(response.c_str() + sp + 1);
    }
  }
  return response.substr(header_end + 4);
}

}  // namespace landmark
