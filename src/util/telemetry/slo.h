#ifndef LANDMARK_UTIL_TELEMETRY_SLO_H_
#define LANDMARK_UTIL_TELEMETRY_SLO_H_

/// SLO burn-rate tracking over the time-series windows
/// (util/telemetry/timeseries.h). A declarative SloPolicy states a latency
/// objective ("p95 of engine/unit/query_seconds stays under 50 ms, with a
/// 99% objective over a 5-minute error-budget window"); the registry
/// re-aggregates the trailing windows covering that budget window into a
/// windowed distribution, estimates the fraction of observations over the
/// threshold ("bad"), and reports the burn rate: bad_fraction divided by the
/// allowed error fraction (1 - objective). Burn rate 1.0 means the budget is
/// being spent exactly as fast as it accrues; above 1.0 the budget is
/// burning down — the signal `landmark_serve` admission control will key on
/// (ROADMAP.md north-star).
///
/// Policies arrive from the `--slo` flag (ParseSloSpecs grammar below);
/// results are published as `slo/<name>/...` gauges, on `GET /sloz`, and via
/// Statuses() for tests. Evaluation is read-only over window copies, so the
/// determinism contract of the collector carries over unchanged.

#include <cstdint>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/result.h"
#include "util/telemetry/timeseries.h"
#include "util/thread_annotations.h"

namespace landmark {

/// \brief One declarative latency objective against a histogram metric.
struct SloPolicy {
  /// Short handle; names the `slo/<name>/...` gauges and the /sloz row.
  std::string name;
  /// Histogram metric the objective is stated over, e.g.
  /// "engine/unit/query_seconds".
  std::string metric;
  /// Target quantile in (0, 1), e.g. 0.95 for "p95 < threshold".
  double quantile = 0.95;
  /// Inclusive threshold in the metric's unit (seconds for latencies).
  double threshold = 0.0;
  /// Error-budget window: how far back windows are aggregated.
  double window_seconds = 300.0;
  /// Fraction of observations that must be under the threshold, e.g. 0.99
  /// allows 1% bad.
  double objective = 0.99;
};

/// \brief Evaluation outcome for one policy over the trailing windows.
struct SloStatus {
  SloPolicy policy;
  /// False when no window in the budget window moved the metric (burn rate
  /// and quantile are meaningless zeros then).
  bool has_data = false;
  /// The policy quantile of the windowed distribution.
  double windowed_quantile = 0.0;
  /// Observations aggregated over the budget window.
  uint64_t total = 0;
  /// Estimated observations over the threshold (interpolated within the
  /// straddling bucket, hence fractional).
  double bad = 0.0;
  /// bad / total (0 when total == 0).
  double bad_fraction = 0.0;
  /// bad_fraction / (1 - objective); 1.0 = spending the budget exactly as
  /// fast as it accrues.
  double burn_rate = 0.0;
  /// max(0, 1 - burn_rate): 1.0 = untouched budget, 0.0 = exhausted.
  double budget_remaining = 0.0;
};

/// Parses the `--slo` flag value: one or more `;`-separated policies, each
///   NAME=METRIC,pQQ<THRESHOLD,window=SECONDS[,objective=F]
/// e.g. `unit_query=engine/unit/query_seconds,p95<0.05,window=300` or with
/// an explicit objective `...,window=60,objective=0.999`. QQ is the
/// quantile percentage and may be fractional (p99.9). Policies are
/// `;`-separated inside one flag value because the flag parser keeps only
/// the last occurrence of a repeated flag.
Result<std::vector<SloPolicy>> ParseSloSpecs(const std::string& text);

/// Aggregates the trailing windows whose span covers `policy.window_seconds`
/// (counted back from the newest window) and evaluates the policy over the
/// summed bucket deltas. Pure function — the registry and tests share it.
SloStatus EvaluateSloPolicy(const SloPolicy& policy,
                            const std::vector<TimeseriesWindow>& windows);

/// \brief Process-wide set of registered policies plus their most recent
/// evaluation, behind `GET /sloz` and the `slo/*` gauges.
class SloRegistry {
 public:
  static SloRegistry& Global();

  SloRegistry() = default;
  SloRegistry(const SloRegistry&) = delete;
  SloRegistry& operator=(const SloRegistry&) = delete;

  /// Registers (or, by name, replaces) one policy.
  void Register(const SloPolicy& policy);
  std::vector<SloPolicy> Policies() const;

  /// Evaluates every registered policy over `windows`, publishes the
  /// `slo/<name>/...` gauges, and retains the statuses for Statuses() and
  /// the /sloz renderers. Called from the collector's observer hook
  /// (TelemetryScope wiring), so it must not call back into the collector.
  void Evaluate(const std::vector<TimeseriesWindow>& windows);

  /// The most recent Evaluate() results (empty before the first call).
  std::vector<SloStatus> Statuses() const;

  /// `GET /sloz` human table.
  std::string StatusText() const;
  /// `GET /sloz?format=json`.
  std::string StatusJson() const;

  /// Drops policies and statuses (tests).
  void Clear();

 private:
  mutable Mutex mu_{"SloRegistry::mu_"};
  std::vector<SloPolicy> policies_ GUARDED_BY(mu_);
  std::vector<SloStatus> statuses_ GUARDED_BY(mu_);
};

}  // namespace landmark

#endif  // LANDMARK_UTIL_TELEMETRY_SLO_H_
