#include "util/telemetry/slo.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/string_util.h"
#include "util/telemetry/json_util.h"
#include "util/telemetry/metrics.h"

namespace landmark {

namespace {

Status SpecError(const std::string& spec, const std::string& why) {
  return Status::InvalidArgument(
      "bad --slo spec \"" + spec + "\": " + why +
      " (expected NAME=METRIC,pQQ<THRESHOLD,window=SECONDS[,objective=F])");
}

Result<SloPolicy> ParseOneSpec(const std::string& spec) {
  SloPolicy policy;
  const std::vector<std::string> parts = Split(spec, ',');
  if (parts.empty()) return SpecError(spec, "empty spec");

  const std::string head = Trim(parts[0]);
  const size_t eq = head.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= head.size()) {
    return SpecError(spec, "first field must be NAME=METRIC");
  }
  policy.name = Trim(head.substr(0, eq));
  policy.metric = Trim(head.substr(eq + 1));

  bool saw_quantile = false;
  bool saw_window = false;
  for (size_t i = 1; i < parts.size(); ++i) {
    const std::string part = Trim(parts[i]);
    if (part.empty()) return SpecError(spec, "empty field");
    if (part[0] == 'p' || part[0] == 'P') {
      const size_t lt = part.find('<');
      if (lt == std::string::npos) {
        return SpecError(spec, "quantile field must be pQQ<THRESHOLD");
      }
      const std::optional<double> percent =
          ParseDouble(Trim(part.substr(1, lt - 1)));
      const std::optional<double> threshold =
          ParseDouble(Trim(part.substr(lt + 1)));
      if (!percent.has_value() || *percent <= 0.0 || *percent >= 100.0) {
        return SpecError(spec, "quantile percentage must be in (0, 100)");
      }
      if (!threshold.has_value() || *threshold <= 0.0) {
        return SpecError(spec, "threshold must be positive");
      }
      policy.quantile = *percent / 100.0;
      policy.threshold = *threshold;
      saw_quantile = true;
    } else if (StartsWith(part, "window=")) {
      const std::optional<double> seconds =
          ParseDouble(Trim(part.substr(7)));
      if (!seconds.has_value() || *seconds <= 0.0) {
        return SpecError(spec, "window seconds must be positive");
      }
      policy.window_seconds = *seconds;
      saw_window = true;
    } else if (StartsWith(part, "objective=")) {
      const std::optional<double> objective =
          ParseDouble(Trim(part.substr(10)));
      if (!objective.has_value() || *objective <= 0.0 || *objective >= 1.0) {
        return SpecError(spec, "objective must be in (0, 1)");
      }
      policy.objective = *objective;
    } else {
      return SpecError(spec, "unknown field \"" + part + "\"");
    }
  }
  if (!saw_quantile) return SpecError(spec, "missing pQQ<THRESHOLD field");
  if (!saw_window) return SpecError(spec, "missing window=SECONDS field");
  return policy;
}

}  // namespace

Result<std::vector<SloPolicy>> ParseSloSpecs(const std::string& text) {
  std::vector<SloPolicy> policies;
  for (const std::string& spec : Split(text, ';')) {
    if (Trim(spec).empty()) continue;
    SloPolicy policy;
    LANDMARK_ASSIGN_OR_RETURN(policy, ParseOneSpec(Trim(spec)));
    policies.push_back(std::move(policy));
  }
  if (policies.empty()) {
    return Status::InvalidArgument("--slo flag given but no spec parsed");
  }
  return policies;
}

SloStatus EvaluateSloPolicy(const SloPolicy& policy,
                            const std::vector<TimeseriesWindow>& windows) {
  SloStatus status;
  status.policy = policy;
  if (windows.empty()) return status;

  // Aggregate trailing windows from the newest back until the budget window
  // is covered.
  const uint64_t horizon_ns =
      static_cast<uint64_t>(policy.window_seconds * 1e9);
  const uint64_t newest_end = windows.back().end_ns;
  std::array<uint64_t, Histogram::kNumBuckets> counts{};
  for (size_t i = windows.size(); i-- > 0;) {
    const TimeseriesWindow& window = windows[i];
    if (newest_end - window.start_ns > horizon_ns) break;
    for (const WindowHistogram& h : window.histograms) {
      if (h.name != policy.metric) continue;
      status.total += h.count_delta;
      for (const auto& [bound, delta] : h.buckets) {
        counts[Histogram::BucketIndexForBound(bound)] += delta;
      }
    }
  }
  if (status.total == 0) return status;
  status.has_data = true;

  // Observations past the last finite bound (~50 days for latencies in
  // seconds) are over any realistic threshold; treating the overflow
  // bucket's span as "all bad once the threshold is below its lower bound"
  // keeps the estimate conservative without inventing a finite upper edge.
  const double last_finite_bound =
      Histogram::BucketUpperBound(Histogram::kNumBuckets - 2);
  status.windowed_quantile =
      WindowedQuantile(counts, status.total, last_finite_bound,
                       policy.quantile);

  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double count = static_cast<double>(counts[i]);
    const double lower = i == 0 ? 0.0 : Histogram::BucketUpperBound(i - 1);
    const double upper = Histogram::BucketUpperBound(i);
    if (lower >= policy.threshold) {
      status.bad += count;
    } else if (upper <= policy.threshold) {
      // entirely under the threshold
    } else if (std::isinf(upper)) {
      // Threshold inside the overflow bucket: see comment above.
    } else {
      status.bad += count * (upper - policy.threshold) / (upper - lower);
    }
  }
  status.bad_fraction = status.bad / static_cast<double>(status.total);
  const double allowed = std::max(1e-12, 1.0 - policy.objective);
  status.burn_rate = status.bad_fraction / allowed;
  status.budget_remaining = std::max(0.0, 1.0 - status.burn_rate);
  return status;
}

SloRegistry& SloRegistry::Global() {
  static SloRegistry* registry = new SloRegistry();
  return *registry;
}

void SloRegistry::Register(const SloPolicy& policy) {
  MutexLock lock(&mu_);
  for (SloPolicy& existing : policies_) {
    if (existing.name == policy.name) {
      existing = policy;
      return;
    }
  }
  policies_.push_back(policy);
}

std::vector<SloPolicy> SloRegistry::Policies() const {
  MutexLock lock(&mu_);
  return policies_;
}

void SloRegistry::Evaluate(const std::vector<TimeseriesWindow>& windows) {
  std::vector<SloPolicy> policies;
  {
    MutexLock lock(&mu_);
    policies = policies_;
  }
  // Evaluation and gauge publication run outside mu_: GetGauge takes
  // MetricsRegistry::mu_, and keeping this registry's lock a leaf keeps the
  // lock-order graph simple.
  std::vector<SloStatus> statuses;
  statuses.reserve(policies.size());
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (const SloPolicy& policy : policies) {
    SloStatus status = EvaluateSloPolicy(policy, windows);
    registry.GetGauge("slo/" + policy.name + "/burn_rate")
        .Set(status.burn_rate);
    registry.GetGauge("slo/" + policy.name + "/bad_fraction")
        .Set(status.bad_fraction);
    registry.GetGauge("slo/" + policy.name + "/windowed_quantile")
        .Set(status.windowed_quantile);
    registry.GetGauge("slo/" + policy.name + "/budget_remaining")
        .Set(status.budget_remaining);
    statuses.push_back(std::move(status));
  }
  MutexLock lock(&mu_);
  statuses_ = std::move(statuses);
}

std::vector<SloStatus> SloRegistry::Statuses() const {
  MutexLock lock(&mu_);
  return statuses_;
}

std::string SloRegistry::StatusText() const {
  std::vector<SloPolicy> policies;
  std::vector<SloStatus> statuses;
  {
    MutexLock lock(&mu_);
    policies = policies_;
    statuses = statuses_;
  }
  std::string out = "landmark slos\n\n";
  if (policies.empty()) {
    out += "no policies registered (pass --slo to register one)\n";
    return out;
  }
  if (statuses.empty()) {
    out += "policies registered, not yet evaluated (collector has not "
           "emitted a window)\n";
  }
  for (const SloStatus& status : statuses) {
    const SloPolicy& p = status.policy;
    out += p.name + ": p" + FormatDouble(p.quantile * 100.0, 1) + " of " +
           p.metric + " < " + FormatDouble(p.threshold, 6) + "s over " +
           FormatDouble(p.window_seconds, 0) + "s (objective " +
           FormatDouble(p.objective, 4) + ")\n";
    if (!status.has_data) {
      out += "  no data in budget window\n";
      continue;
    }
    out += "  windowed_quantile: " +
           FormatDouble(status.windowed_quantile, 6) + "s\n";
    out += "  observations: " + std::to_string(status.total) + " (bad " +
           FormatDouble(status.bad, 2) + ", fraction " +
           FormatDouble(status.bad_fraction, 6) + ")\n";
    out += "  burn_rate: " + FormatDouble(status.burn_rate, 4) +
           "  budget_remaining: " +
           FormatDouble(status.budget_remaining, 4) + "\n";
  }
  return out;
}

std::string SloRegistry::StatusJson() const {
  std::vector<SloStatus> statuses;
  {
    MutexLock lock(&mu_);
    statuses = statuses_;
  }
  std::string out = "{\"slos\":[";
  for (size_t i = 0; i < statuses.size(); ++i) {
    const SloStatus& status = statuses[i];
    const SloPolicy& p = status.policy;
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(p.name) + "\"";
    out += ",\"metric\":\"" + JsonEscape(p.metric) + "\"";
    out += ",\"quantile\":" + JsonDouble(p.quantile);
    out += ",\"threshold\":" + JsonDouble(p.threshold);
    out += ",\"window_seconds\":" + JsonDouble(p.window_seconds);
    out += ",\"objective\":" + JsonDouble(p.objective);
    out += ",\"has_data\":" + std::string(status.has_data ? "true" : "false");
    out += ",\"windowed_quantile\":" + JsonDouble(status.windowed_quantile);
    out += ",\"total\":" + std::to_string(status.total);
    out += ",\"bad\":" + JsonDouble(status.bad);
    out += ",\"bad_fraction\":" + JsonDouble(status.bad_fraction);
    out += ",\"burn_rate\":" + JsonDouble(status.burn_rate);
    out += ",\"budget_remaining\":" + JsonDouble(status.budget_remaining);
    out += "}";
  }
  out += "]}";
  return out;
}

void SloRegistry::Clear() {
  MutexLock lock(&mu_);
  policies_.clear();
  statuses_.clear();
}

}  // namespace landmark
