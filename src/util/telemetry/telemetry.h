#ifndef LANDMARK_UTIL_TELEMETRY_TELEMETRY_H_
#define LANDMARK_UTIL_TELEMETRY_TELEMETRY_H_

/// Umbrella header for the telemetry subsystem:
///   metrics.h        MetricsRegistry — counters, gauges, latency histograms
///   trace.h          TraceRecorder + LANDMARK_TRACE_SPAN — Chrome-trace spans
///   sink.h           TelemetrySink — JSON-lines and human-table emitters
///   audit.h          AuditSink — per-unit explanation flight recorder
///   http_exporter.h  HttpExporter — live /metrics + /healthz + /statusz
///                    (+ /statusz?format=json + /profilez)
///   flight_deck.h    activity stacks, SamplingProfiler, StallWatchdog,
///                    BatchProgress registry
///   timeseries.h     SnapshotCollector — windowed metric deltas behind
///                    /timelinez and --timeline-out
///   slo.h            SloRegistry — burn-rate tracking behind /sloz and
///                    the slo/* gauges
/// plus TelemetryScope, the binary-level wiring for the shared
/// `--metrics-out` / `--trace-out` / `--audit-out` / `--profile-out` /
/// `--metrics-port` / `--timeline-out` / `--slo` flags.

#include <cstdint>
#include <memory>
#include <string>

#include "util/telemetry/audit.h"
#include "util/telemetry/flight_deck.h"
#include "util/telemetry/http_exporter.h"
#include "util/telemetry/metrics.h"
#include "util/telemetry/sink.h"
#include "util/telemetry/slo.h"
#include "util/telemetry/timeseries.h"
#include "util/telemetry/trace.h"

namespace landmark {

class Flags;

/// \brief What one instrumented binary run should record and expose.
struct TelemetryScopeOptions {
  /// Full-registry metrics JSON written on Finish (`--metrics-out`).
  std::string metrics_path;
  /// Chrome/Perfetto trace written on Finish (`--trace-out`).
  std::string trace_path;
  /// Per-unit audit JSON-lines stream (`--audit-out`); opened eagerly so
  /// records flow during the run, flushed on Finish.
  std::string audit_path;
  /// Folded-stack activity profile (`--profile-out`): starts the global
  /// SamplingProfiler on construction, writes flamegraph-compatible
  /// `frame;frame;frame COUNT` lines on Finish.
  std::string profile_path;
  /// Start the loopback HTTP exporter (`--metrics-port`; port 0 is
  /// ephemeral — the resolved port is printed to stdout for scripts).
  bool serve_metrics = false;
  uint16_t metrics_port = 0;
  /// Keep the exporter alive this many seconds after Finish's outputs are
  /// written (`--metrics-linger`), so a scraper can observe the final state
  /// of a short-lived batch before the process exits.
  double linger_seconds = 0.0;
  /// Windowed time-series JSONL written on Finish (`--timeline-out`). Any
  /// of timeline_path, slo_spec or serve_metrics arms the global
  /// SnapshotCollector for the scope's lifetime.
  std::string timeline_path;
  /// Collector tick period in seconds (`--timeline-period`, default 1 s).
  double timeline_period_seconds = 1.0;
  /// SLO policy spec(s) for SloRegistry (`--slo`), `;`-separated — see
  /// ParseSloSpecs in util/telemetry/slo.h for the grammar.
  std::string slo_spec;
};

/// \brief Lifetime of one instrumented binary run.
///
/// Construction starts the global trace recorder when a trace path was
/// given, opens the audit sink, and starts the HTTP exporter; Finish() (or
/// destruction) stops tracing, writes the requested outputs, flushes the
/// audit stream, lingers if asked, and stops the exporter. With nothing
/// configured the scope is inert, so binaries create one unconditionally:
///
///   TelemetryScope telemetry = TelemetryScope::FromFlags(flags);
///   ... run (pass telemetry.audit_sink() to EngineOptions) ...
///   telemetry.Finish();  // or let the destructor do it
class TelemetryScope {
 public:
  TelemetryScope() = default;
  explicit TelemetryScope(TelemetryScopeOptions options);
  /// Back-compat convenience over the two original outputs.
  TelemetryScope(std::string metrics_path, std::string trace_path);
  /// Reads --metrics-out, --trace-out, --audit-out, --profile-out,
  /// --metrics-port, --metrics-linger, --timeline-out, --timeline-period
  /// and --slo.
  static TelemetryScope FromFlags(const Flags& flags);

  TelemetryScope(TelemetryScope&& other) noexcept;
  TelemetryScope& operator=(TelemetryScope&& other) noexcept;
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;
  ~TelemetryScope();

  /// Stops tracing and writes the output files (idempotent). Write failures
  /// are logged, not fatal — telemetry must never take the run down.
  void Finish();

  bool active() const { return active_; }
  /// The flight recorder when `--audit-out` was given, else nullptr. Wire
  /// it into EngineOptions::audit_sink; valid until Finish().
  AuditSink* audit_sink() const { return audit_sink_.get(); }
  /// The live exporter when `--metrics-port` was given, else nullptr.
  const HttpExporter* exporter() const { return exporter_.get(); }

 private:
  TelemetryScopeOptions options_;
  std::unique_ptr<AuditSink> audit_sink_;
  std::unique_ptr<HttpExporter> exporter_;
  bool active_ = false;
};

}  // namespace landmark

#endif  // LANDMARK_UTIL_TELEMETRY_TELEMETRY_H_
