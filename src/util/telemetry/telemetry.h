#ifndef LANDMARK_UTIL_TELEMETRY_TELEMETRY_H_
#define LANDMARK_UTIL_TELEMETRY_TELEMETRY_H_

/// Umbrella header for the telemetry subsystem:
///   metrics.h  MetricsRegistry — counters, gauges, latency histograms
///   trace.h    TraceRecorder + LANDMARK_TRACE_SPAN — Chrome-trace spans
///   sink.h     TelemetrySink — JSON-lines and human-table emitters
/// plus TelemetryScope, the binary-level wiring for the shared
/// `--metrics-out=FILE` / `--trace-out=FILE` flags.

#include <string>

#include "util/telemetry/metrics.h"
#include "util/telemetry/sink.h"
#include "util/telemetry/trace.h"

namespace landmark {

class Flags;

/// \brief Lifetime of one instrumented binary run.
///
/// Construction starts the global trace recorder when a trace path was
/// given; Finish() (or destruction) stops it and writes the requested
/// outputs: the full-registry metrics JSON to `metrics_path` and the
/// Chrome/Perfetto trace to `trace_path`. With both paths empty the scope
/// is inert, so binaries can create one unconditionally:
///
///   TelemetryScope telemetry = TelemetryScope::FromFlags(flags);
///   ... run ...
///   telemetry.Finish();  // or let the destructor do it
class TelemetryScope {
 public:
  TelemetryScope() = default;
  TelemetryScope(std::string metrics_path, std::string trace_path);
  /// Reads --metrics-out and --trace-out.
  static TelemetryScope FromFlags(const Flags& flags);

  TelemetryScope(TelemetryScope&& other) noexcept;
  TelemetryScope& operator=(TelemetryScope&& other) noexcept;
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;
  ~TelemetryScope();

  /// Stops tracing and writes the output files (idempotent). Write failures
  /// are logged, not fatal — telemetry must never take the run down.
  void Finish();

  bool active() const { return active_; }

 private:
  std::string metrics_path_;
  std::string trace_path_;
  bool active_ = false;
};

}  // namespace landmark

#endif  // LANDMARK_UTIL_TELEMETRY_TELEMETRY_H_
