#ifndef LANDMARK_UTIL_TELEMETRY_AUDIT_H_
#define LANDMARK_UTIL_TELEMETRY_AUDIT_H_

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace landmark {

/// \brief One surrogate coefficient in an audit record, as plain data (the
/// telemetry layer sits below core, so this mirrors core's TokenWeight
/// without depending on it).
struct AuditTokenWeight {
  std::string attribute;
  int occurrence = 0;
  std::string text;
  /// "left" / "right".
  std::string side;
  bool injected = false;
  double weight = 0.0;
};

/// \brief The flight-recorder line for one ExplainUnit: identity, the
/// quality signals computed in the fit stage, per-unit cache effectiveness
/// and the top-k surrogate weights — everything needed to diagnose one
/// failing explanation offline without rerunning the batch.
struct AuditUnitRecord {
  /// PairRecord::id of the explained pair.
  int64_t record_id = 0;
  /// Position of the record in the submitted batch.
  size_t record_index = 0;
  /// Technique name ("landmark-double", "lime", ...).
  std::string explainer;
  /// Frozen side: "left", "right", or "" when the explainer perturbs both.
  std::string landmark_side;
  /// Non-empty when the unit failed; the quality fields are then absent
  /// from the emitted line.
  std::string error;

  double model_prediction = 0.0;
  /// May be NaN (serialized as null).
  double weighted_r2 = 0.0;
  double intercept = 0.0;
  double match_fraction = 0.0;
  double top_weight_share = 0.0;
  size_t interesting_tokens = 0;
  bool low_r2 = false;
  bool degenerate_neighborhood = false;

  /// Per-unit perturbation counts: raw masks sampled, deduplicated model
  /// queries issued, and masks served from the prediction memo.
  size_t num_masks = 0;
  size_t num_model_queries = 0;
  size_t cache_hits = 0;

  /// The |weight|-largest coefficients, most important first.
  std::vector<AuditTokenWeight> top_tokens;
};

/// \brief One stall-watchdog observation carried in the batch trailer: a
/// pipeline node that ran past EngineOptions::stall_threshold (the work was
/// not cancelled — this is a report, not a verdict).
struct AuditStall {
  /// Stage of the stalled node ("engine/query", ...).
  std::string stage;
  /// Unit identity; SIZE_MAX-like sentinels mean "whole-stage chunk".
  size_t record_index = 0;
  size_t unit_index = 0;
  /// Runtime when flagged, on the flight-deck clock.
  double elapsed_seconds = 0.0;
  /// Thread that ran the node ("pool-worker-3", ...).
  std::string worker;
};

/// \brief Batch trailer: the stage latencies and cross-record cache totals
/// that have no per-unit decomposition, plus any stall reports.
struct AuditBatchStats {
  size_t num_records = 0;
  size_t num_failed_records = 0;
  size_t num_units = 0;
  size_t num_masks = 0;
  size_t num_model_queries = 0;
  size_t cache_hits = 0;
  size_t token_cache_hits = 0;
  size_t token_cache_misses = 0;
  double plan_seconds = 0.0;
  double reconstruct_seconds = 0.0;
  double query_seconds = 0.0;
  double fit_seconds = 0.0;
  /// Stalls flagged over the batch's lifetime. `stalls` holds the drained
  /// details; num_stalls is the monotone total and may exceed stalls.size()
  /// when a report lands between the drain and the batch end.
  size_t num_stalls = 0;
  std::vector<AuditStall> stalls;
};

/// \brief Append-only JSON-lines audit stream (`--audit-out=FILE`).
///
/// Each WriteUnit emits one `{"type":"unit","unit":<ordinal>,...}` line and
/// each WriteBatch one `{"type":"batch",...}` line. The ordinal is assigned
/// at write time under the sink's mutex and is strictly monotone across the
/// file; the engine writes units in input order from its epilogue (never
/// from worker threads), so a given workload produces a byte-identical
/// stream regardless of thread count. Observing is free of side effects on
/// the pipeline: explanations are bit-identical with the sink attached or
/// not (tests/core/engine_audit_test.cc).
class AuditSink {
 public:
  /// Opens (truncates) `path` for writing.
  static Result<std::unique_ptr<AuditSink>> Open(const std::string& path);

  AuditSink(const AuditSink&) = delete;
  AuditSink& operator=(const AuditSink&) = delete;
  ~AuditSink();

  /// Appends one unit line and returns the ordinal assigned to it — the
  /// `"unit":N` envelope number, which exemplar capture
  /// (LANDMARK_OBSERVE_WITH_EXEMPLAR in the engine epilogue) embeds so an
  /// OpenMetrics exemplar can point back at the exact audit line.
  uint64_t WriteUnit(const AuditUnitRecord& record);
  void WriteBatch(const AuditBatchStats& stats);

  /// Flushes buffered lines to the file (also done on destruction).
  void Flush();

  /// Units written so far (across all batches).
  uint64_t units_written() const;

  /// Serialization of one record as a JSON line without the ordinal-bearing
  /// envelope — exposed for tests and for the validate_trace.py contract.
  static std::string UnitToJson(const AuditUnitRecord& record,
                                uint64_t ordinal);
  static std::string BatchToJson(const AuditBatchStats& stats);

 private:
  explicit AuditSink(std::ofstream out);

  // Leaf lock: serializes appends to the stream; nothing else is acquired
  // while it is held, so audit bytes are interleaving-independent.
  mutable Mutex mu_{"AuditSink::mu_"};
  std::ofstream out_ GUARDED_BY(mu_);
  uint64_t next_unit_ GUARDED_BY(mu_) = 0;
};

}  // namespace landmark

#endif  // LANDMARK_UTIL_TELEMETRY_AUDIT_H_
