#ifndef LANDMARK_UTIL_TELEMETRY_HTTP_EXPORTER_H_
#define LANDMARK_UTIL_TELEMETRY_HTTP_EXPORTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/result.h"
#include "util/status.h"
#include "util/telemetry/metrics.h"
#include "util/thread_annotations.h"

namespace landmark {

/// Renders a metrics snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# TYPE` lines, cumulative `_bucket{le="..."}` series
/// ending in `+Inf`, and `_sum` / `_count` per histogram. Metric names are
/// sanitized (`/` → `_`), prefixed `landmark_`, and counters carry the
/// conventional `_total` suffix (not doubled when the metric name already
/// ends in `_total`, e.g. `engine/stalls_total`).
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// Renders a metrics snapshot in the OpenMetrics text format (version
/// 1.0.0): counter *families* drop the `_total` suffix (their samples carry
/// it), the exposition ends with the mandatory `# EOF` line, and — the
/// reason this format exists here at all — histogram bucket samples carry
/// exemplars (`... # {ordinal="12",...} 0.0034`), which are not legal in
/// the Prometheus 0.0.4 format. Bounded bucket lines carry the bucket's
/// most recent exemplar; the `+Inf` line carries the peak (max-valued)
/// exemplar of the highest bucket that retained one, i.e. the worst
/// observation the histogram can still name.
std::string ToOpenMetricsText(const MetricsSnapshot& snapshot);

/// \brief Options of the scrape endpoint.
struct HttpExporterOptions {
  /// Port to bind on 127.0.0.1; 0 asks the kernel for an ephemeral port
  /// (read the resolved one back from HttpExporter::port()).
  uint16_t port = 0;
};

/// \brief Dependency-free loopback HTTP server exposing the global
/// MetricsRegistry and the flight deck (util/telemetry/flight_deck.h) for
/// live scraping:
///
///   GET /metrics              Prometheus text exposition of the full
///                             registry; OpenMetrics 1.0.0 (with histogram
///                             exemplars and the `# EOF` trailer) when the
///                             request's Accept header asks for
///                             `application/openmetrics-text`
///   GET /healthz              200 "ok" while the server is running
///   GET /statusz              human-readable engine stage totals + build
///                             info + histogram exemplars + the flight
///                             deck: in-flight batches with per-stage DAG
///                             progress, per-worker current activity, queue
///                             depths, token-cache occupancy
///   GET /statusz?format=json  the flight-deck block (plus the endpoint
///                             list) as one JSON object
///   GET /profilez?seconds=N   folded activity stacks ("a;b;c COUNT",
///                             flamegraph-compatible) sampled over an
///                             N-second window (default 1, clamped to
///                             [0, 30]; 0 returns the cumulative profile
///                             without waiting). Starts the global
///                             SamplingProfiler on first use.
///   GET /timelinez            windowed time-series over the last N
///                             collector periods (SnapshotCollector ring):
///                             per-counter rates, windowed histogram
///                             quantiles; `?format=json` for the machine
///                             shape
///   GET /sloz                 registered SLO policies with burn rate and
///                             error-budget remaining; `?format=json`
///                             likewise
///
/// Every response carries an explicit Content-Type. The server binds
/// 127.0.0.1 only and answers one blocking request at a time — it is an
/// operational peephole for a long batch, not a serving stack; note a
/// /profilez window blocks that single accept loop for its duration. It
/// runs on a dedicated thread rather than the ThreadPool because the
/// accept loop blocks indefinitely between scrapes; parking it on a pool
/// worker would steal a determinism-contract thread from the engine for
/// the whole process lifetime. Scrapes only read snapshot values, so
/// explanations are bit-identical with the exporter running or not.
class HttpExporter {
 public:
  /// Binds, listens and starts the serving thread. Fails (IoError) when the
  /// port is taken.
  static Result<std::unique_ptr<HttpExporter>> Start(
      const HttpExporterOptions& options = {});

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;
  ~HttpExporter();

  /// Unblocks the accept loop and joins the serving thread (idempotent).
  void Stop();

  /// The bound port (the resolved one when options asked for 0).
  uint16_t port() const { return port_; }

 private:
  HttpExporter(int listen_fd, uint16_t port);

  void Serve();
  /// Builds the full HTTP response for one request line. `accept` is the
  /// request's Accept header value ("" when absent) — only /metrics
  /// inspects it (OpenMetrics vs Prometheus text).
  std::string HandleRequest(const std::string& method,
                            const std::string& path,
                            const std::string& accept) const;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  /// Start time of the server (trace clock), for /statusz uptime.
  uint64_t started_ns_ = 0;
  // Leaf lock: guards only the stop flag — never held across socket I/O
  // (the accept/read/write sites are registered blocking points).
  Mutex mu_{"HttpExporter::mu_"};
  bool stopped_ GUARDED_BY(mu_) = false;
  std::thread server_;  // landmark-lint: allow(raw-thread) dedicated blocking accept loop, never computes explanations
};

/// Minimal loopback HTTP/1.1 GET client used by the exporter tests and the
/// check.sh smoke probe (tools/http_probe.cc), so the CI gate needs no
/// curl. Returns the response body; `status_code` (optional) receives the
/// parsed HTTP status.
Result<std::string> HttpGetLoopback(uint16_t port, const std::string& path,
                                    int* status_code = nullptr);

/// Same, with extra request headers appended verbatim to the header block —
/// each entry must be a full `Name: value` line *without* the trailing CRLF
/// (e.g. "Accept: application/openmetrics-text"). Content negotiation
/// tests and `http_probe --accept` go through this overload.
Result<std::string> HttpGetLoopback(uint16_t port, const std::string& path,
                                    const std::vector<std::string>& headers,
                                    int* status_code = nullptr);

}  // namespace landmark

#endif  // LANDMARK_UTIL_TELEMETRY_HTTP_EXPORTER_H_
