#include "util/telemetry/sink.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>

#include "util/string_util.h"
#include "util/telemetry/json_util.h"

namespace landmark {

namespace {

std::string HistogramBodyJson(const HistogramSnapshot& h) {
  std::string out;
  out += "\"count\":" + std::to_string(h.count);
  out += ",\"sum\":" + JsonDouble(h.sum);
  out += ",\"min\":" + JsonDouble(h.min);
  out += ",\"max\":" + JsonDouble(h.max);
  out += ",\"mean\":" + JsonDouble(h.mean());
  out += ",\"p50\":" + JsonDouble(h.p50);
  out += ",\"p95\":" + JsonDouble(h.p95);
  out += ",\"p99\":" + JsonDouble(h.p99);
  out += ",\"buckets\":[";
  for (size_t i = 0; i < h.buckets.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"le\":" + JsonDouble(h.buckets[i].first) +
           ",\"count\":" + std::to_string(h.buckets[i].second) + "}";
  }
  out += "]";
  return out;
}

/// Seconds-or-count rendering for the human table: metric values span
/// nanoseconds to minutes, so pick a precision that keeps both readable.
std::string HumanValue(double value) {
  if (value == 0.0) return "0";
  if (std::abs(value) >= 1000.0) return FormatDouble(value, 1);
  if (std::abs(value) >= 1.0) return FormatDouble(value, 3);
  return FormatDouble(value, 6);
}

}  // namespace

void JsonLinesSink::Emit(const MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    *out_ << "{\"type\":\"counter\",\"name\":\"" << JsonEscape(name)
          << "\",\"value\":" << value << "}\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    *out_ << "{\"type\":\"gauge\",\"name\":\"" << JsonEscape(name)
          << "\",\"value\":" << JsonDouble(value) << "}\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    *out_ << "{\"type\":\"histogram\",\"name\":\"" << JsonEscape(h.name)
          << "\"," << HistogramBodyJson(h) << "}\n";
  }
  out_->flush();
}

void TableSink::Emit(const MetricsSnapshot& snapshot) {
  size_t name_width = 4;
  for (const auto& [name, value] : snapshot.counters) {
    name_width = std::max(name_width, name.size());
  }
  for (const auto& [name, value] : snapshot.gauges) {
    name_width = std::max(name_width, name.size());
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    name_width = std::max(name_width, h.name.size());
  }

  std::ostream& out = *out_;
  if (!snapshot.counters.empty()) {
    out << "counters\n";
    for (const auto& [name, value] : snapshot.counters) {
      out << "  " << std::left << std::setw(static_cast<int>(name_width))
          << name << "  " << value << "\n";
    }
  }
  if (!snapshot.gauges.empty()) {
    out << "gauges\n";
    for (const auto& [name, value] : snapshot.gauges) {
      out << "  " << std::left << std::setw(static_cast<int>(name_width))
          << name << "  " << HumanValue(value) << "\n";
    }
  }
  if (!snapshot.histograms.empty()) {
    out << "histograms\n";
    out << "  " << std::left << std::setw(static_cast<int>(name_width))
        << "name" << "  " << std::right << std::setw(8) << "count"
        << std::setw(12) << "mean" << std::setw(12) << "p50" << std::setw(12)
        << "p95" << std::setw(12) << "p99" << std::setw(12) << "max" << "\n";
    for (const HistogramSnapshot& h : snapshot.histograms) {
      out << "  " << std::left << std::setw(static_cast<int>(name_width))
          << h.name << "  " << std::right << std::setw(8) << h.count
          << std::setw(12) << HumanValue(h.mean()) << std::setw(12)
          << HumanValue(h.p50) << std::setw(12) << HumanValue(h.p95)
          << std::setw(12) << HumanValue(h.p99) << std::setw(12)
          << HumanValue(h.max) << "\n";
    }
  }
  if (snapshot.empty()) out << "(no metrics recorded)\n";
  out.flush();
}

std::string MetricsSnapshotToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n\"" + JsonEscape(snapshot.counters[i].first) +
           "\":" + std::to_string(snapshot.counters[i].second);
  }
  out += "},\n\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n\"" + JsonEscape(snapshot.gauges[i].first) +
           "\":" + JsonDouble(snapshot.gauges[i].second);
  }
  out += "},\n\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    if (i > 0) out += ",";
    const HistogramSnapshot& h = snapshot.histograms[i];
    out += "\n\"" + JsonEscape(h.name) + "\":{" + HistogramBodyJson(h) + "}";
  }
  out += "}\n}\n";
  return out;
}

Status WriteMetricsJsonFile(const MetricsSnapshot& snapshot,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open metrics file: " + path);
  out << MetricsSnapshotToJson(snapshot);
  out.flush();
  if (!out) return Status::IoError("failed writing metrics file: " + path);
  return Status::OK();
}

}  // namespace landmark
