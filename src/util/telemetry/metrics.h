#ifndef LANDMARK_UTIL_TELEMETRY_METRICS_H_
#define LANDMARK_UTIL_TELEMETRY_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace landmark {

/// Small dense per-thread index (0, 1, 2, ...), assigned on a thread's first
/// call and stable for its lifetime. The metric shards and the trace
/// recorder both use it: as a shard selector here, as the exported `tid`
/// there, so a Perfetto track and a shard always refer to the same thread.
size_t ThisThreadIndex();

namespace telemetry_internal {

/// Shard count for the hot-path metric types. Writers touch only their own
/// thread's shard (modulo kShards), readers sum all shards, so updates are a
/// single relaxed fetch_add with no sharing between the first kShards
/// threads.
inline constexpr size_t kShards = 16;

inline size_t ThisShard() { return ThisThreadIndex() % kShards; }

/// Lock-free add for pre-C++20-style atomic doubles (fetch_add on
/// std::atomic<double> is not universally lock-free; the CAS loop is).
inline void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

inline void AtomicMinDouble(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

inline void AtomicMaxDouble(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace telemetry_internal

/// \brief Monotonic event counter. Add() is a relaxed fetch_add on a
/// per-thread shard; Value() sums the shards, so concurrent increments are
/// never lost (exactness under N threads is a tested contract).
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    shards_[telemetry_internal::ThisShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  uint64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, telemetry_internal::kShards> shards_;
};

/// \brief Last-written (Set) or accumulated (Add) double value, e.g. a queue
/// depth or a busy-seconds total.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    telemetry_internal::AtomicAddDouble(value_, delta);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Context a caller attaches to one histogram observation so a latency
/// (or quality) outlier can be traced back to the concrete ExplainUnit that
/// produced it. The audit ordinal is the `"unit":N` envelope number of the
/// matching `--audit-out` line; it is absent when no audit sink was attached.
struct ExemplarContext {
  uint64_t audit_ordinal = 0;
  bool has_audit_ordinal = false;
  int64_t record_id = 0;
  uint32_t record_index = 0;
  uint32_t unit_index = 0;
};

/// \brief One retained observation-with-context. `thread_index` is
/// ThisThreadIndex() of the recording thread (the same dense index the trace
/// recorder exports as `tid`).
struct Exemplar {
  bool valid = false;
  double value = 0.0;
  uint64_t audit_ordinal = 0;
  bool has_audit_ordinal = false;
  int64_t record_id = 0;
  uint32_t record_index = 0;
  uint32_t unit_index = 0;
  uint32_t thread_index = 0;
};

/// \brief Exemplars of one non-empty histogram bucket: the most recent
/// observation and the largest-valued one ("peak" — for a latency histogram,
/// the worst case the bucket has seen).
struct BucketExemplars {
  size_t bucket_index = 0;
  /// Inclusive upper bound of the bucket (infinite for overflow).
  double bound = 0.0;
  Exemplar latest;
  Exemplar peak;
};

/// \brief Aggregated view of one Histogram at snapshot time. Percentiles are
/// estimated by linear interpolation inside the bucket containing the rank,
/// clamped to the observed [min, max].
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Non-empty buckets only, as (inclusive upper bound, count); the overflow
  /// bucket reports an infinite bound.
  std::vector<std::pair<double, uint64_t>> buckets;
  /// Buckets that have retained an exemplar (only histograms recorded through
  /// the LANDMARK_OBSERVE_WITH_EXEMPLAR path carry any), bucket order.
  std::vector<BucketExemplars> exemplars;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// \brief Fixed-bucket histogram for non-negative values (latencies in
/// seconds, sizes). Buckets are exponential: bucket 0 holds values up to
/// kFirstBound, each following bound doubles, and the last bucket catches
/// overflow — 1 microsecond to ~50 days when recording seconds. Record() is
/// lock-free: a bucket fetch_add plus CAS updates of the shard's sum and
/// min/max, all on the calling thread's shard.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 44;  // 43 bounded + 1 overflow
  static constexpr double kFirstBound = 1e-6;

  void Record(double value);
  /// Shortcut for recording a count-like value (e.g. batch sizes).
  void RecordCount(uint64_t value) { Record(static_cast<double>(value)); }
  /// Record() plus exemplar retention: the observation's context becomes the
  /// owning bucket's `latest` exemplar, and its `peak` when the value is the
  /// largest the bucket has seen. Exemplar slots sit behind a mutex — this
  /// is a cold-path entry point (the engine calls it from its
  /// single-threaded epilogue), while Record() stays lock-free.
  void RecordWithExemplar(double value, const ExemplarContext& context);

  uint64_t Count() const;
  HistogramSnapshot Snapshot(std::string name) const;
  void Reset();

  /// Inclusive upper bound of bucket `index` (infinity for the overflow
  /// bucket).
  static double BucketUpperBound(size_t index);
  /// Index of the bucket whose inclusive upper bound equals `bound` exactly
  /// (infinite bound → overflow bucket). Bounds in HistogramSnapshot come
  /// from BucketUpperBound, so exact equality is well-defined; a bound that
  /// matches no bucket maps to the overflow bucket.
  static size_t BucketIndexForBound(double bound);

 private:
  struct alignas(64) Shard {
    Shard();
    std::array<std::atomic<uint64_t>, kNumBuckets> counts;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min;  // +inf when empty
    std::atomic<double> max;  // -inf when empty
  };
  struct ExemplarSlots {
    std::array<Exemplar, kNumBuckets> latest;
    std::array<Exemplar, kNumBuckets> peak;
  };
  std::array<Shard, telemetry_internal::kShards> shards_;
  // Leaf lock: exemplar slots only — the lock-free Record() path never
  // touches it. Acquired under MetricsRegistry::mu_ by Snapshot().
  mutable Mutex exemplar_mu_{"Histogram::exemplar_mu_"};
  std::unique_ptr<ExemplarSlots> exemplar_slots_ GUARDED_BY(exemplar_mu_);
};

/// Rank-interpolated quantile from aggregated bucket counts, clamped to the
/// observed [min, max] extrema — the estimator behind
/// HistogramSnapshot::p50/p95/p99, exposed so the time-series layer
/// (util/telemetry/timeseries.h) can compute *windowed* quantiles from
/// per-window bucket deltas with the same semantics.
double HistogramPercentileFromBuckets(
    const std::array<uint64_t, Histogram::kNumBuckets>& counts, uint64_t count,
    double min, double max, double quantile);

/// \brief Everything the registry knew at one instant, with names sorted, as
/// plain values safe to format or ship without further synchronization.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// The histogram of that exact name, or nullptr.
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
  /// The counter value of that exact name, or `fallback`.
  uint64_t CounterValue(const std::string& name, uint64_t fallback = 0) const;
};

/// \brief Process-wide home of all named metrics.
///
/// GetCounter/GetGauge/GetHistogram intern the name under a mutex and return
/// a reference that stays valid for the registry's lifetime — resolve once,
/// then update lock-free. Metric names form a stable contract, documented in
/// docs/architecture.md ("Telemetry"): `engine/plan_seconds`,
/// `engine/cache_hits`, `model/query_latency`, `pool/queue_depth`, ...
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation point reports
  /// to (leaked intentionally: instrumented code may run during shutdown).
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every registered metric (handles stay valid). Meant for tests
  /// and for binaries that report per-phase snapshots.
  void Reset();

 private:
  // Interning plus snapshots. Snapshot() reads each histogram's exemplar
  // slots while holding this, hence the declared order over the exemplar
  // leaf lock.
  mutable Mutex mu_ ACQUIRED_BEFORE(Histogram::exemplar_mu_){"MetricsRegistry::mu_"};
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace landmark

/// Records one observation with traceback context into a histogram handle:
/// LANDMARK_OBSERVE_WITH_EXEMPLAR(metrics.fit_seconds, seconds, context);
/// The spelled-out macro marks exemplar capture sites greppably — they are
/// the (cold) places where an OpenMetrics exemplar can be born.
#define LANDMARK_OBSERVE_WITH_EXEMPLAR(hist, value, context) \
  (hist).RecordWithExemplar((value), (context))

#endif  // LANDMARK_UTIL_TELEMETRY_METRICS_H_
