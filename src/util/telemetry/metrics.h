#ifndef LANDMARK_UTIL_TELEMETRY_METRICS_H_
#define LANDMARK_UTIL_TELEMETRY_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace landmark {

/// Small dense per-thread index (0, 1, 2, ...), assigned on a thread's first
/// call and stable for its lifetime. The metric shards and the trace
/// recorder both use it: as a shard selector here, as the exported `tid`
/// there, so a Perfetto track and a shard always refer to the same thread.
size_t ThisThreadIndex();

namespace telemetry_internal {

/// Shard count for the hot-path metric types. Writers touch only their own
/// thread's shard (modulo kShards), readers sum all shards, so updates are a
/// single relaxed fetch_add with no sharing between the first kShards
/// threads.
inline constexpr size_t kShards = 16;

inline size_t ThisShard() { return ThisThreadIndex() % kShards; }

/// Lock-free add for pre-C++20-style atomic doubles (fetch_add on
/// std::atomic<double> is not universally lock-free; the CAS loop is).
inline void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

inline void AtomicMinDouble(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

inline void AtomicMaxDouble(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace telemetry_internal

/// \brief Monotonic event counter. Add() is a relaxed fetch_add on a
/// per-thread shard; Value() sums the shards, so concurrent increments are
/// never lost (exactness under N threads is a tested contract).
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    shards_[telemetry_internal::ThisShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  uint64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, telemetry_internal::kShards> shards_;
};

/// \brief Last-written (Set) or accumulated (Add) double value, e.g. a queue
/// depth or a busy-seconds total.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    telemetry_internal::AtomicAddDouble(value_, delta);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Aggregated view of one Histogram at snapshot time. Percentiles are
/// estimated by linear interpolation inside the bucket containing the rank,
/// clamped to the observed [min, max].
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Non-empty buckets only, as (inclusive upper bound, count); the overflow
  /// bucket reports an infinite bound.
  std::vector<std::pair<double, uint64_t>> buckets;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// \brief Fixed-bucket histogram for non-negative values (latencies in
/// seconds, sizes). Buckets are exponential: bucket 0 holds values up to
/// kFirstBound, each following bound doubles, and the last bucket catches
/// overflow — 1 microsecond to ~50 days when recording seconds. Record() is
/// lock-free: a bucket fetch_add plus CAS updates of the shard's sum and
/// min/max, all on the calling thread's shard.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 44;  // 43 bounded + 1 overflow
  static constexpr double kFirstBound = 1e-6;

  void Record(double value);
  /// Shortcut for recording a count-like value (e.g. batch sizes).
  void RecordCount(uint64_t value) { Record(static_cast<double>(value)); }

  uint64_t Count() const;
  HistogramSnapshot Snapshot(std::string name) const;
  void Reset();

  /// Inclusive upper bound of bucket `index` (infinity for the overflow
  /// bucket).
  static double BucketUpperBound(size_t index);

 private:
  struct alignas(64) Shard {
    Shard();
    std::array<std::atomic<uint64_t>, kNumBuckets> counts;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min;  // +inf when empty
    std::atomic<double> max;  // -inf when empty
  };
  std::array<Shard, telemetry_internal::kShards> shards_;
};

/// \brief Everything the registry knew at one instant, with names sorted, as
/// plain values safe to format or ship without further synchronization.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// The histogram of that exact name, or nullptr.
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
  /// The counter value of that exact name, or `fallback`.
  uint64_t CounterValue(const std::string& name, uint64_t fallback = 0) const;
};

/// \brief Process-wide home of all named metrics.
///
/// GetCounter/GetGauge/GetHistogram intern the name under a mutex and return
/// a reference that stays valid for the registry's lifetime — resolve once,
/// then update lock-free. Metric names form a stable contract, documented in
/// docs/architecture.md ("Telemetry"): `engine/plan_seconds`,
/// `engine/cache_hits`, `model/query_latency`, `pool/queue_depth`, ...
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation point reports
  /// to (leaked intentionally: instrumented code may run during shutdown).
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every registered metric (handles stay valid). Meant for tests
  /// and for binaries that report per-phase snapshots.
  void Reset();

 private:
  // Leaf lock: interning only — handles are updated lock-free afterwards.
  mutable Mutex mu_{"MetricsRegistry::mu_"};
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace landmark

#endif  // LANDMARK_UTIL_TELEMETRY_METRICS_H_
