#include "util/telemetry/flight_deck.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "util/logging.h"
#include "util/telemetry/json_util.h"
#include "util/telemetry/metrics.h"
#include "util/telemetry/trace.h"
#include "util/thread_pool.h"

namespace landmark {

namespace {

std::atomic<uint64_t (*)()> g_deck_clock{nullptr};

std::string FormatSeconds(double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  return buf;
}

}  // namespace

uint64_t FlightDeckNowNs() {
  uint64_t (*clock)() = g_deck_clock.load(std::memory_order_relaxed);
  return clock ? clock() : TraceNowNs();
}

void SetFlightDeckClockForTest(uint64_t (*clock)()) {
  g_deck_clock.store(clock, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// ThreadActivity

ThreadActivity::ThreadActivity() : role_("thread") {
  for (auto& frame : frames_) {
    frame.store(nullptr, std::memory_order_relaxed);
  }
  role_index_.store(static_cast<uint32_t>(ThisThreadIndex()),
                    std::memory_order_relaxed);
}

void ThreadActivity::Push(const char* frame) {
  uint32_t depth = depth_.load(std::memory_order_relaxed);
  if (depth < kMaxActivityDepth) {
    frames_[depth].store(frame, std::memory_order_relaxed);
  }
  top_since_ns_.store(FlightDeckNowNs(), std::memory_order_relaxed);
  // The frame store precedes the depth publication, so a sampler that sees
  // the new depth also sees the frame (release pairs with SnapshotStack's
  // acquire).
  depth_.store(depth + 1, std::memory_order_release);
}

void ThreadActivity::Pop() {
  uint32_t depth = depth_.load(std::memory_order_relaxed);
  if (depth == 0) return;  // unbalanced pop; keep the sampler safe
  depth_.store(depth - 1, std::memory_order_release);
  top_since_ns_.store(depth > 1 ? FlightDeckNowNs() : 0,
                      std::memory_order_relaxed);
}

void ThreadActivity::SetRole(const char* role, uint32_t role_index) {
  role_.store(role, std::memory_order_relaxed);
  role_index_.store(role_index, std::memory_order_relaxed);
}

void ThreadActivity::BeginNode(uint64_t batch_id, const char* stage,
                               uint32_t record_index, uint32_t unit_index) {
  node_stage_.store(stage, std::memory_order_relaxed);
  node_record_.store(record_index, std::memory_order_relaxed);
  node_unit_.store(unit_index, std::memory_order_relaxed);
  node_start_ns_.store(FlightDeckNowNs(), std::memory_order_relaxed);
  node_generation_.fetch_add(1, std::memory_order_relaxed);
  // Publishing the batch id last makes it the snapshot gate: a watchdog that
  // reads a non-zero id also reads this node's fields (release/acquire).
  node_batch_.store(batch_id, std::memory_order_release);
}

void ThreadActivity::EndNode() {
  node_batch_.store(0, std::memory_order_release);
  node_stage_.store(nullptr, std::memory_order_relaxed);
}

std::vector<const char*> ThreadActivity::SnapshotStack() const {
  uint32_t depth = depth_.load(std::memory_order_acquire);
  depth = std::min<uint32_t>(depth, kMaxActivityDepth);
  std::vector<const char*> frames;
  frames.reserve(depth);
  for (uint32_t i = 0; i < depth; ++i) {
    const char* frame = frames_[i].load(std::memory_order_relaxed);
    if (frame == nullptr) break;  // torn read mid-push; stop at the gap
    frames.push_back(frame);
  }
  return frames;
}

std::string ThreadActivity::Label() const {
  const char* role = role_.load(std::memory_order_relaxed);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s-%u", role ? role : "thread",
                role_index_.load(std::memory_order_relaxed));
  return buf;
}

ThreadActivity::NodeSnapshot ThreadActivity::SnapshotNode() const {
  NodeSnapshot snapshot;
  snapshot.batch_id = node_batch_.load(std::memory_order_acquire);
  if (snapshot.batch_id == 0) return snapshot;
  snapshot.stage = node_stage_.load(std::memory_order_relaxed);
  snapshot.record_index = node_record_.load(std::memory_order_relaxed);
  snapshot.unit_index = node_unit_.load(std::memory_order_relaxed);
  snapshot.start_ns = node_start_ns_.load(std::memory_order_relaxed);
  snapshot.generation = node_generation_.load(std::memory_order_relaxed);
  return snapshot;
}

bool ThreadActivity::ClaimStallReport(uint64_t generation) {
  uint64_t claimed = stall_claimed_generation_.load(std::memory_order_relaxed);
  while (claimed < generation) {
    if (stall_claimed_generation_.compare_exchange_weak(
            claimed, generation, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// ActivityRegistry

ActivityRegistry& ActivityRegistry::Global() {
  // Leaked intentionally: worker threads may touch their slot during
  // shutdown (the MetricsRegistry::Global pattern).
  static ActivityRegistry* registry = new ActivityRegistry();
  return *registry;
}

ThreadActivity& ActivityRegistry::Local() {
  thread_local std::shared_ptr<ThreadActivity> slot = [this] {
    auto created = std::make_shared<ThreadActivity>();
    MutexLock lock(&mu_);
    slots_.push_back(created);
    return created;
  }();
  return *slot;
}

std::vector<std::shared_ptr<ThreadActivity>> ActivityRegistry::Slots() const {
  std::vector<std::shared_ptr<ThreadActivity>> live;
  MutexLock lock(&mu_);
  live.reserve(slots_.size());
  size_t kept = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (auto strong = slots_[i].lock()) {
      // Compact in place, pruning slots of exited threads. The self-move
      // guard matters: moving a weak_ptr onto itself empties it.
      if (kept != i) slots_[kept] = std::move(slots_[i]);
      ++kept;
      live.push_back(std::move(strong));
    }
  }
  slots_.resize(kept);
  return live;
}

// ---------------------------------------------------------------------------
// BatchProgress / FlightDeck

BatchProgress::BatchProgress(uint64_t id, size_t num_records,
                             const char* scheduler, double stall_threshold)
    : id_(id),
      num_records_(num_records),
      scheduler_(scheduler),
      stall_threshold_(stall_threshold),
      start_ns_(FlightDeckNowNs()) {}

void BatchProgress::SetGraph(TaskGraph* graph) {
  MutexLock lock(&mu_);
  graph_ = graph;
}

std::vector<TaskGraphStageCounts> BatchProgress::GraphCounts() const {
  MutexLock lock(&mu_);
  if (graph_ == nullptr) return {};
  return graph_->StageCounts();
}

void BatchProgress::SetTokenCacheProbe(
    std::function<std::vector<size_t>()> probe) {
  MutexLock lock(&mu_);
  token_cache_probe_ = std::move(probe);
}

std::vector<size_t> BatchProgress::TokenCacheShardSizes() const {
  std::function<std::vector<size_t>()> probe;
  {
    MutexLock lock(&mu_);
    probe = token_cache_probe_;
  }
  return probe ? probe() : std::vector<size_t>();
}

void BatchProgress::RecordStall(StallReport report) {
  {
    MutexLock lock(&mu_);
    stalls_.push_back(std::move(report));
  }
  num_stalls_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<StallReport> BatchProgress::TakeStalls() {
  MutexLock lock(&mu_);
  std::vector<StallReport> taken;
  taken.swap(stalls_);
  return taken;
}

FlightDeck& FlightDeck::Global() {
  static FlightDeck* deck = new FlightDeck();  // leaked (shutdown-safe)
  return *deck;
}

std::shared_ptr<BatchProgress> FlightDeck::RegisterBatch(
    size_t num_records, const char* scheduler, double stall_threshold) {
  MutexLock lock(&mu_);
  auto progress = std::make_shared<BatchProgress>(
      ++next_id_, num_records, scheduler, stall_threshold);
  batches_.push_back(progress);
  return progress;
}

void FlightDeck::UnregisterBatch(uint64_t id) {
  MutexLock lock(&mu_);
  batches_.erase(std::remove_if(batches_.begin(), batches_.end(),
                                [id](const std::shared_ptr<BatchProgress>& b) {
                                  return b->id() == id;
                                }),
                 batches_.end());
}

std::shared_ptr<BatchProgress> FlightDeck::FindBatch(uint64_t id) const {
  MutexLock lock(&mu_);
  for (const auto& batch : batches_) {
    if (batch->id() == id) return batch;
  }
  return nullptr;
}

std::vector<std::shared_ptr<BatchProgress>> FlightDeck::InFlightBatches()
    const {
  MutexLock lock(&mu_);
  return batches_;
}

BatchProgressScope::BatchProgressScope(size_t num_records,
                                       const char* scheduler,
                                       double stall_threshold)
    : progress_(FlightDeck::Global().RegisterBatch(num_records, scheduler,
                                                   stall_threshold)) {}

BatchProgressScope::~BatchProgressScope() {
  // Detach before unregistering: a scraper holding the shared_ptr must never
  // chase pointers into the (about to be destroyed) graph or cache.
  progress_->SetGraph(nullptr);
  progress_->SetTokenCacheProbe(nullptr);
  FlightDeck::Global().UnregisterBatch(progress_->id());
}

// ---------------------------------------------------------------------------
// SamplingProfiler

SamplingProfiler& SamplingProfiler::Global() {
  static SamplingProfiler* profiler = new SamplingProfiler();  // leaked
  return *profiler;
}

void SamplingProfiler::Start(uint64_t interval_ns) {
  MutexLock lifecycle(&lifecycle_mu_);
  {
    MutexLock lock(&mu_);
    if (running_) return;
    stop_requested_ = false;
    running_ = true;
  }
  // landmark-lint: allow(raw-thread) the sampler must observe pool workers from outside; running it on a pool worker would sample itself
  sampler_ = std::thread([this, interval_ns] { SamplerLoop(interval_ns); });
}

void SamplingProfiler::Stop() {
  MutexLock lifecycle(&lifecycle_mu_);
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  // landmark-lint: allow(lock-blocking) lifecycle_mu_ is held across the
  // join deliberately: it serializes Start/Stop against each other, and the
  // sampler thread only ever takes mu_, which was released above.
  if (sampler_.joinable()) sampler_.join();
  sampler_ = {};
  MutexLock lock(&mu_);
  running_ = false;
}

bool SamplingProfiler::running() const {
  MutexLock lock(&mu_);
  return running_;
}

void SamplingProfiler::SamplerLoop(uint64_t interval_ns) {
  ActivityRegistry::Global().Local().SetRole("profiler-sampler", 0);
  Counter& samples_total =
      MetricsRegistry::Global().GetCounter("telemetry/profiler_samples");
  std::unique_lock<Mutex> lock(mu_);
  while (!stop_requested_) {
    LANDMARK_BLOCKING_POINT_WAIT("SamplingProfiler::SamplerLoop/wait", &mu_);
    cv_.wait_for(lock, std::chrono::nanoseconds(interval_ns));
    if (stop_requested_) break;
    lock.unlock();
    SampleOnce();
    samples_total.Add(1);
    lock.lock();
  }
}

void SamplingProfiler::SampleOnce() {
  auto slots = ActivityRegistry::Global().Slots();
  std::vector<std::pair<std::string, uint64_t>> observed;
  for (const auto& slot : slots) {
    std::vector<const char*> frames = slot->SnapshotStack();
    if (frames.empty()) continue;  // idle threads don't make folded stacks
    std::string key = slot->Label();
    for (const char* frame : frames) {
      key += ';';
      key += frame;
    }
    observed.emplace_back(std::move(key), 1);
  }
  if (observed.empty()) return;
  MutexLock lock(&mu_);
  for (auto& [key, count] : observed) {
    counts_[key] += count;
    samples_.fetch_add(count, std::memory_order_relaxed);
  }
}

std::map<std::string, uint64_t> SamplingProfiler::FoldedCounts() const {
  MutexLock lock(&mu_);
  return counts_;
}

std::string SamplingProfiler::RenderFolded(
    const std::map<std::string, uint64_t>& counts) {
  std::string out;
  for (const auto& [stack, count] : counts) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string SamplingProfiler::FoldedText() const {
  return RenderFolded(FoldedCounts());
}

// ---------------------------------------------------------------------------
// StallWatchdog

StallWatchdog::StallWatchdog(StallWatchdogOptions options)
    : options_(options) {
  // landmark-lint: allow(raw-thread) the watchdog must keep scanning while every pool worker is (by definition of a stall) stuck
  monitor_ = std::thread([this] { MonitorLoop(); });
}

StallWatchdog::~StallWatchdog() { Stop(); }

void StallWatchdog::Stop() {
  {
    MutexLock lock(&mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
}

void StallWatchdog::MonitorLoop() {
  ActivityRegistry::Global().Local().SetRole("stall-watchdog", 0);
  std::unique_lock<Mutex> lock(mu_);
  while (!stop_) {
    LANDMARK_BLOCKING_POINT_WAIT("StallWatchdog::MonitorLoop/wait", &mu_);
    cv_.wait_for(lock, std::chrono::nanoseconds(options_.poll_interval_ns));
    if (stop_) break;
    lock.unlock();
    ScanOnce();
    lock.lock();
  }
}

size_t StallWatchdog::ScanOnce() {
  const uint64_t now = FlightDeckNowNs();
  Counter& stalls_total =
      MetricsRegistry::Global().GetCounter("engine/stalls_total");
  size_t reported = 0;
  for (const auto& slot : ActivityRegistry::Global().Slots()) {
    ThreadActivity::NodeSnapshot tag = slot->SnapshotNode();
    if (tag.batch_id == 0 || tag.stage == nullptr) continue;
    std::shared_ptr<BatchProgress> batch =
        FlightDeck::Global().FindBatch(tag.batch_id);
    const double threshold =
        batch ? batch->stall_threshold() : options_.threshold_seconds;
    if (threshold <= 0.0 || now < tag.start_ns) continue;
    const double elapsed =
        static_cast<double>(now - tag.start_ns) * 1e-9;
    if (elapsed < threshold) continue;
    // One report per node execution, even across overlapping watchdogs.
    if (!slot->ClaimStallReport(tag.generation)) continue;

    StallReport report;
    report.batch_id = tag.batch_id;
    report.stage = tag.stage;
    report.record_index = tag.record_index;
    report.unit_index = tag.unit_index;
    report.elapsed_seconds = elapsed;
    report.worker = slot->Label();
    report.activity = slot->SnapshotStack();
    std::string activity_joined;
    for (const char* frame : report.activity) {
      if (!activity_joined.empty()) activity_joined += ';';
      activity_joined += frame;
    }
    // Record on the batch before bumping the counter: a test (or operator)
    // that observes the counter move may immediately read the trailer.
    if (batch) batch->RecordStall(std::move(report));
    stalls_total.Add(1);
    ++reported;
    LANDMARK_LOG(Warning) << "stall detected: batch=" << tag.batch_id
                          << " stage=" << tag.stage
                          << " record=" << tag.record_index
                          << " unit=" << tag.unit_index << " elapsed="
                          << FormatSeconds(elapsed) << "s worker="
                          << slot->Label() << " activity=" << activity_joined;
  }
  return reported;
}

// ---------------------------------------------------------------------------
// Status rendering

namespace {

/// Gauges worth showing on the deck: the pool queue depths.
bool IsQueueGauge(const std::string& name) {
  return name == "pool/queue_depth" || name == "pool/shared_queue_depth" ||
         name.rfind("pool/deque_depth/", 0) == 0;
}

struct WorkerStatus {
  std::string label;
  std::vector<const char*> frames;
  uint64_t top_since_ns = 0;
  ThreadActivity::NodeSnapshot node;
};

std::vector<WorkerStatus> CollectWorkers() {
  std::vector<WorkerStatus> workers;
  for (const auto& slot : ActivityRegistry::Global().Slots()) {
    WorkerStatus status;
    status.label = slot->Label();
    status.frames = slot->SnapshotStack();
    status.top_since_ns = slot->top_since_ns();
    status.node = slot->SnapshotNode();
    workers.push_back(std::move(status));
  }
  std::sort(workers.begin(), workers.end(),
            [](const WorkerStatus& a, const WorkerStatus& b) {
              return a.label < b.label;
            });
  return workers;
}

double SecondsSince(uint64_t then_ns, uint64_t now_ns) {
  return then_ns == 0 || now_ns < then_ns
             ? 0.0
             : static_cast<double>(now_ns - then_ns) * 1e-9;
}

}  // namespace

std::string FlightDeckStatusText() {
  const uint64_t now = FlightDeckNowNs();
  std::string out;
  out += "-- flight deck --\n";

  auto batches = FlightDeck::Global().InFlightBatches();
  out += "in-flight batches: " + std::to_string(batches.size()) + "\n";
  for (const auto& batch : batches) {
    out += "batch " + std::to_string(batch->id()) + ": scheduler=" +
           batch->scheduler() + " records=" +
           std::to_string(batch->num_records()) + " age=" +
           FormatSeconds(SecondsSince(batch->start_ns(), now)) +
           "s stall_threshold=" + FormatSeconds(batch->stall_threshold()) +
           "s stalls=" + std::to_string(batch->num_stalls()) + "\n";
    for (const TaskGraphStageCounts& stage : batch->GraphCounts()) {
      out += "  stage " + std::string(stage.label) + ": pending=" +
             std::to_string(stage.pending) + " ready=" +
             std::to_string(stage.ready) + " running=" +
             std::to_string(stage.running) + " done=" +
             std::to_string(stage.done) + "\n";
    }
    std::vector<size_t> shards = batch->TokenCacheShardSizes();
    if (!shards.empty()) {
      size_t total = 0;
      out += "  token_cache shards:";
      for (size_t size : shards) {
        out += " " + std::to_string(size);
        total += size;
      }
      out += " (total " + std::to_string(total) + ")\n";
    }
  }

  for (const WorkerStatus& worker : CollectWorkers()) {
    out += "worker " + worker.label + ": ";
    if (worker.frames.empty()) {
      out += "idle";
    } else {
      for (size_t i = 0; i < worker.frames.size(); ++i) {
        if (i > 0) out += ";";
        out += worker.frames[i];
      }
      out += " (" + FormatSeconds(SecondsSince(worker.top_since_ns, now)) +
             "s in " + worker.frames.back() + ")";
    }
    if (worker.node.batch_id != 0 && worker.node.stage != nullptr) {
      out += " node=" + std::string(worker.node.stage) + "/batch" +
             std::to_string(worker.node.batch_id) + " elapsed=" +
             FormatSeconds(SecondsSince(worker.node.start_ns, now)) + "s";
    }
    out += "\n";
  }

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  for (const auto& [name, value] : snapshot.gauges) {
    if (IsQueueGauge(name)) {
      out += "queue " + name + ": " + FormatSeconds(value) + "\n";
    }
  }

  SamplingProfiler& profiler = SamplingProfiler::Global();
  out += "profiler: " + std::string(profiler.running() ? "running" : "idle") +
         " samples=" + std::to_string(profiler.samples()) + "\n";
  return out;
}

std::string FlightDeckStatusJson() {
  const uint64_t now = FlightDeckNowNs();
  std::string out = "{";

  out += "\"batches\":[";
  bool first_batch = true;
  for (const auto& batch : FlightDeck::Global().InFlightBatches()) {
    if (!first_batch) out += ",";
    first_batch = false;
    out += "{\"id\":" + std::to_string(batch->id());
    out += ",\"scheduler\":\"" + JsonEscape(batch->scheduler()) + "\"";
    out += ",\"num_records\":" + std::to_string(batch->num_records());
    out += ",\"age_seconds\":" +
           JsonDouble(SecondsSince(batch->start_ns(), now));
    out += ",\"stall_threshold\":" + JsonDouble(batch->stall_threshold());
    out += ",\"num_stalls\":" + std::to_string(batch->num_stalls());
    out += ",\"stages\":[";
    bool first_stage = true;
    for (const TaskGraphStageCounts& stage : batch->GraphCounts()) {
      if (!first_stage) out += ",";
      first_stage = false;
      out += "{\"stage\":\"" + JsonEscape(stage.label) + "\"";
      out += ",\"pending\":" + std::to_string(stage.pending);
      out += ",\"ready\":" + std::to_string(stage.ready);
      out += ",\"running\":" + std::to_string(stage.running);
      out += ",\"done\":" + std::to_string(stage.done) + "}";
    }
    out += "]";
    out += ",\"token_cache_shards\":[";
    std::vector<size_t> shards = batch->TokenCacheShardSizes();
    for (size_t i = 0; i < shards.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(shards[i]);
    }
    out += "]}";
  }
  out += "]";

  out += ",\"workers\":[";
  bool first_worker = true;
  for (const WorkerStatus& worker : CollectWorkers()) {
    if (!first_worker) out += ",";
    first_worker = false;
    out += "{\"worker\":\"" + JsonEscape(worker.label) + "\"";
    out += ",\"activity\":[";
    for (size_t i = 0; i < worker.frames.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + JsonEscape(worker.frames[i]) + "\"";
    }
    out += "]";
    if (!worker.frames.empty()) {
      out += ",\"current\":\"" + JsonEscape(worker.frames.back()) + "\"";
      out += ",\"seconds_in_activity\":" +
             JsonDouble(SecondsSince(worker.top_since_ns, now));
    }
    if (worker.node.batch_id != 0 && worker.node.stage != nullptr) {
      out += ",\"node\":{\"batch_id\":" +
             std::to_string(worker.node.batch_id);
      out += ",\"stage\":\"" + JsonEscape(worker.node.stage) + "\"";
      if (worker.node.record_index != kActivityNoIndex) {
        out += ",\"record_index\":" + std::to_string(worker.node.record_index);
      }
      if (worker.node.unit_index != kActivityNoIndex) {
        out += ",\"unit_index\":" + std::to_string(worker.node.unit_index);
      }
      out += ",\"elapsed_seconds\":" +
             JsonDouble(SecondsSince(worker.node.start_ns, now)) + "}";
    }
    out += "}";
  }
  out += "]";

  out += ",\"queues\":{";
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  bool first_queue = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!IsQueueGauge(name)) continue;
    if (!first_queue) out += ",";
    first_queue = false;
    out += "\"" + JsonEscape(name) + "\":" + JsonDouble(value);
  }
  out += "}";

  SamplingProfiler& profiler = SamplingProfiler::Global();
  out += ",\"profiler\":{\"running\":";
  out += profiler.running() ? "true" : "false";
  out += ",\"samples\":" + std::to_string(profiler.samples()) + "}";

  out += "}";
  return out;
}

}  // namespace landmark
