#ifndef LANDMARK_UTIL_TELEMETRY_JSON_UTIL_H_
#define LANDMARK_UTIL_TELEMETRY_JSON_UTIL_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace landmark {

/// Escapes a string for embedding inside JSON double quotes.
inline std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Round-trippable JSON number rendering. JSON has no infinity/NaN literals:
/// infinities (e.g. a histogram's overflow-bucket bound) deliberately clamp
/// to the ±1e308 sentinels so bucket lists stay numeric and ordered, while
/// NaN renders as `null` — a NaN quality signal (say a surrogate R² on a
/// zero-variance neighbourhood) must read as "unknown" downstream, not as a
/// perfect-looking 0.
inline std::string JsonDouble(double value) {
  if (std::isnan(value)) return "null";
  if (std::isinf(value)) return value > 0 ? "1e308" : "-1e308";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace landmark

#endif  // LANDMARK_UTIL_TELEMETRY_JSON_UTIL_H_
