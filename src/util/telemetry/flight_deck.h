#ifndef LANDMARK_UTIL_TELEMETRY_FLIGHT_DECK_H_
#define LANDMARK_UTIL_TELEMETRY_FLIGHT_DECK_H_

/// The "flight deck": live introspection of a *running* engine batch
/// (docs/architecture.md, "Flight deck"). Three cooperating pieces, all
/// designed to be lock-cheap on the pipeline hot path and safe to sample
/// from other threads:
///
///  - **Activity stacks** (ThreadActivity / ActivityRegistry) — every
///    instrumented thread annotates what it is doing right now by pushing
///    static-string frames onto a small per-thread stack of atomics
///    (LANDMARK_ACTIVITY). Pool workers, TaskGraph node bodies, engine
///    stages and model Predict calls all annotate; a sampler or /statusz
///    renderer reads any thread's stack without stopping it. A concurrent
///    push/pop can tear a *logical* snapshot (you may read a stack that
///    never quite existed), which is acceptable for sampling and is why
///    every slot field is an individual atomic — no data race, TSan-clean.
///
///  - **SamplingProfiler** — a background thread that periodically snapshots
///    every registered activity stack and aggregates the observations into
///    folded-stack counts ("a;b;c N", the format flamegraph.pl and speedscope
///    consume). Exported via `--profile-out` and `GET /profilez?seconds=N`.
///
///  - **FlightDeck / BatchProgress / StallWatchdog** — a registry of
///    in-flight ExplainBatch calls. Engine node bodies additionally tag
///    their slot with the unit they are running (NodeTagScope); the
///    watchdog flags any node running longer than
///    EngineOptions::stall_threshold, emitting a structured report to the
///    log, the `engine/stalls_total` counter and the batch's audit trailer
///    — without killing the work. The deck clock is injectable
///    (SetFlightDeckClockForTest) so stalls are virtual-clock-testable.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace landmark {

class TaskGraph;

/// Nanoseconds on the flight-deck clock: TraceNowNs() by default, the
/// injected fake in tests. Only the deck (node tags, stall elapsed, status
/// ages) reads this clock — traces and metrics stay on the real one.
uint64_t FlightDeckNowNs();

/// Overrides the deck clock with `clock` (nullptr restores the real one).
/// Test-only; both node-tag stamping and watchdog scans use the override,
/// so elapsed times are consistent under a fake clock.
void SetFlightDeckClockForTest(uint64_t (*clock)());

/// Activity stacks deeper than this drop their innermost frames from
/// snapshots (pushes still balance pops). Engine nesting is 3-4 deep.
inline constexpr size_t kMaxActivityDepth = 8;

/// Sentinel record/unit index for node tags that cover a whole stage chunk
/// rather than one unit (the staged query stage).
inline constexpr uint32_t kActivityNoIndex = 0xffffffffu;

/// \brief One thread's live annotation slot. The owning thread writes
/// (Push/Pop/BeginNode/EndNode, a few relaxed-or-release atomic stores);
/// samplers on other threads read. Slots are created and registered via
/// ActivityRegistry::Local() and live until their thread exits.
class ThreadActivity {
 public:
  ThreadActivity();

  // ---- owner-thread writes ----------------------------------------------

  /// Pushes one frame. `frame` must have static storage duration.
  void Push(const char* frame);
  void Pop();

  /// Labels this thread for status pages and folded stacks, e.g.
  /// ("pool-worker", 3) renders as "pool-worker-3". `role` must have static
  /// storage duration. Defaults to ("thread", ThisThreadIndex()).
  void SetRole(const char* role, uint32_t role_index);

  /// Tags the engine node this thread started running (stall-watchdog
  /// bookkeeping). `stage` must have static storage duration.
  void BeginNode(uint64_t batch_id, const char* stage, uint32_t record_index,
                 uint32_t unit_index);
  void EndNode();

  // ---- sampler-side reads (any thread) ----------------------------------

  /// Frames bottom-first. Torn under a concurrent push/pop — acceptable for
  /// sampling; every access is an individual atomic load.
  std::vector<const char*> SnapshotStack() const;
  /// When the top frame was pushed (deck clock); 0 when idle.
  uint64_t top_since_ns() const {
    return top_since_ns_.load(std::memory_order_relaxed);
  }
  const char* role() const { return role_.load(std::memory_order_relaxed); }
  uint32_t role_index() const {
    return role_index_.load(std::memory_order_relaxed);
  }
  /// "pool-worker-3", "thread-0", ...
  std::string Label() const;

  /// \brief Sampler-side view of the node tag. batch_id == 0 means no
  /// engine node is running on the thread.
  struct NodeSnapshot {
    uint64_t batch_id = 0;
    const char* stage = nullptr;
    uint32_t record_index = 0;
    uint32_t unit_index = 0;
    uint64_t start_ns = 0;
    uint64_t generation = 0;
  };
  NodeSnapshot SnapshotNode() const;

  /// First watchdog to claim a generation reports it; later scans (or a
  /// second concurrent watchdog) see false, so a long stall logs once.
  bool ClaimStallReport(uint64_t generation);

 private:
  std::array<std::atomic<const char*>, kMaxActivityDepth> frames_;
  std::atomic<uint32_t> depth_{0};
  std::atomic<uint64_t> top_since_ns_{0};
  std::atomic<const char*> role_;
  std::atomic<uint32_t> role_index_{0};

  std::atomic<uint64_t> node_batch_{0};
  std::atomic<const char*> node_stage_{nullptr};
  std::atomic<uint32_t> node_record_{0};
  std::atomic<uint32_t> node_unit_{0};
  std::atomic<uint64_t> node_start_ns_{0};
  std::atomic<uint64_t> node_generation_{0};
  std::atomic<uint64_t> stall_claimed_generation_{0};
};

/// \brief Process-wide list of live activity slots. Registration happens on
/// a thread's first Local() call (the TraceRecorder per-thread-buffer
/// pattern); a slot dies with its thread and is pruned from the next
/// Slots() call.
class ActivityRegistry {
 public:
  static ActivityRegistry& Global();

  /// The calling thread's slot (created and registered on first use).
  ThreadActivity& Local();

  /// Strong references to every live slot, for samplers. A slot returned
  /// here stays valid for the shared_ptr's lifetime even if its thread
  /// exits mid-scan.
  std::vector<std::shared_ptr<ThreadActivity>> Slots() const;

 private:
  ActivityRegistry() = default;

  // Leaf lock: registration and slot snapshots only.
  mutable Mutex mu_{"ActivityRegistry::mu_"};
  mutable std::vector<std::weak_ptr<ThreadActivity>> slots_ GUARDED_BY(mu_);
};

/// \brief RAII activity frame. Constructing pushes, destroying pops.
class ActivityScope {
 public:
  explicit ActivityScope(const char* frame)
      : slot_(&ActivityRegistry::Global().Local()) {
    slot_->Push(frame);
  }
  ~ActivityScope() { slot_->Pop(); }

  ActivityScope(const ActivityScope&) = delete;
  ActivityScope& operator=(const ActivityScope&) = delete;

 private:
  ThreadActivity* slot_;
};

/// \brief RAII node tag for the stall watchdog: marks the calling thread as
/// running one engine node from construction to destruction.
class NodeTagScope {
 public:
  NodeTagScope(uint64_t batch_id, const char* stage, uint32_t record_index,
               uint32_t unit_index)
      : slot_(&ActivityRegistry::Global().Local()) {
    slot_->BeginNode(batch_id, stage, record_index, unit_index);
  }
  ~NodeTagScope() { slot_->EndNode(); }

  NodeTagScope(const NodeTagScope&) = delete;
  NodeTagScope& operator=(const NodeTagScope&) = delete;

 private:
  ThreadActivity* slot_;
};

/// \brief Per-stage node state counts of a TaskGraph, keyed by the label
/// passed to TaskGraph::AddNode (defined here so thread_pool.h can return
/// it without a header cycle).
struct TaskGraphStageCounts {
  const char* label = nullptr;
  size_t pending = 0;  // dependencies unmet
  size_t ready = 0;    // ready or queued, body not started
  size_t running = 0;  // body started, not finished
  size_t done = 0;     // finished (or skipped by cancellation)
};

/// \brief One stall observation: a node that exceeded its batch's
/// stall_threshold. Emitted to the log, counted in `engine/stalls_total`,
/// and appended to the batch's audit trailer. `stage` and `activity` frames
/// are static strings.
struct StallReport {
  uint64_t batch_id = 0;
  const char* stage = "";
  size_t record_index = 0;
  size_t unit_index = 0;
  double elapsed_seconds = 0.0;
  std::string worker;
  std::vector<const char*> activity;
};

/// \brief Live progress of one in-flight ExplainBatch. Created via
/// FlightDeck::RegisterBatch; the engine attaches its TaskGraph and token
/// cache through guarded pointers it clears before they die.
class BatchProgress {
 public:
  BatchProgress(uint64_t id, size_t num_records, const char* scheduler,
                double stall_threshold);

  uint64_t id() const { return id_; }
  size_t num_records() const { return num_records_; }
  /// "task-graph" or "staged".
  const char* scheduler() const { return scheduler_; }
  double stall_threshold() const { return stall_threshold_; }
  uint64_t start_ns() const { return start_ns_; }

  /// Attaches / detaches (nullptr) the batch's running graph. The engine
  /// must detach before the graph is destroyed.
  void SetGraph(TaskGraph* graph);
  /// Per-stage node counts of the attached graph (empty when detached).
  std::vector<TaskGraphStageCounts> GraphCounts() const;

  /// Attaches a callback reporting TokenCache shard sizes (empty function
  /// detaches). Same lifetime rule as SetGraph.
  void SetTokenCacheProbe(std::function<std::vector<size_t>()> probe);
  std::vector<size_t> TokenCacheShardSizes() const;

  /// Appends one watchdog observation (drained into the audit trailer by
  /// the engine epilogue; reports landing after the drain are only counted).
  void RecordStall(StallReport report);
  std::vector<StallReport> TakeStalls();
  /// Stalls recorded over the batch's lifetime (monotone, unlike the
  /// drainable list).
  size_t num_stalls() const {
    return num_stalls_.load(std::memory_order_relaxed);
  }

 private:
  const uint64_t id_;
  const size_t num_records_;
  const char* const scheduler_;
  const double stall_threshold_;
  const uint64_t start_ns_;

  // Held while reading the attached graph's StageCounts(), hence ordered
  // before the graph lock (GraphCounts() is the only cross-component
  // nesting on the status path).
  mutable Mutex mu_ ACQUIRED_BEFORE(TaskGraph::mu_){"BatchProgress::mu_"};
  TaskGraph* graph_ GUARDED_BY(mu_) = nullptr;
  std::function<std::vector<size_t>()> token_cache_probe_ GUARDED_BY(mu_);
  std::vector<StallReport> stalls_ GUARDED_BY(mu_);
  std::atomic<size_t> num_stalls_{0};
};

/// \brief Process-wide registry of in-flight batches, feeding /statusz and
/// the stall watchdog.
class FlightDeck {
 public:
  static FlightDeck& Global();

  std::shared_ptr<BatchProgress> RegisterBatch(size_t num_records,
                                               const char* scheduler,
                                               double stall_threshold);
  void UnregisterBatch(uint64_t id);
  /// The in-flight batch with that id, or nullptr (e.g. it just finished).
  std::shared_ptr<BatchProgress> FindBatch(uint64_t id) const;
  std::vector<std::shared_ptr<BatchProgress>> InFlightBatches() const;

 private:
  FlightDeck() = default;

  // Leaf lock: registry bookkeeping only — batch internals are read after
  // it is released.
  mutable Mutex mu_{"FlightDeck::mu_"};
  uint64_t next_id_ GUARDED_BY(mu_) = 0;  // ids start at 1; 0 = "no batch"
  std::vector<std::shared_ptr<BatchProgress>> batches_ GUARDED_BY(mu_);
};

/// \brief RAII registration of one ExplainBatch on the global deck:
/// destruction detaches the graph and token-cache probe, then unregisters.
/// Declare it *after* the graph and cache it will point at, so it unwinds
/// first.
class BatchProgressScope {
 public:
  BatchProgressScope(size_t num_records, const char* scheduler,
                     double stall_threshold);
  ~BatchProgressScope();

  BatchProgressScope(const BatchProgressScope&) = delete;
  BatchProgressScope& operator=(const BatchProgressScope&) = delete;

  BatchProgress& progress() { return *progress_; }

 private:
  std::shared_ptr<BatchProgress> progress_;
};

/// \brief RAII token-cache probe attachment, for caches whose scope is
/// narrower than the batch's (the staged query stage builds its TokenCache
/// in a block): attaches on construction, detaches on destruction.
class TokenCacheProbeScope {
 public:
  TokenCacheProbeScope(BatchProgress& progress,
                       std::function<std::vector<size_t>()> probe)
      : progress_(progress) {
    progress_.SetTokenCacheProbe(std::move(probe));
  }
  ~TokenCacheProbeScope() { progress_.SetTokenCacheProbe(nullptr); }

  TokenCacheProbeScope(const TokenCacheProbeScope&) = delete;
  TokenCacheProbeScope& operator=(const TokenCacheProbeScope&) = delete;

 private:
  BatchProgress& progress_;
};

/// \brief Background sampler aggregating activity-stack snapshots into
/// folded-stack counts. One global instance; Start() is idempotent (the
/// first caller fixes the interval) and the accumulated counts survive
/// Stop() for export.
class SamplingProfiler {
 public:
  /// 5 kHz default: a sweep is a few dozen atomic loads per thread, so even
  /// on one core the sampler costs well under 1% while giving short batches
  /// (milliseconds) enough samples to be readable.
  static constexpr uint64_t kDefaultIntervalNs = 200 * 1000;

  static SamplingProfiler& Global();

  /// Starts the sampler thread (no-op when already running).
  void Start(uint64_t interval_ns = kDefaultIntervalNs);
  /// Stops and joins the sampler thread; counts remain readable.
  void Stop();
  bool running() const;

  /// Cumulative folded-stack counts since process start (key:
  /// "label;frame;frame", value: samples observed).
  std::map<std::string, uint64_t> FoldedCounts() const;
  /// Renders counts in the flamegraph text format, one "stack N" per line,
  /// sorted by stack for stable output.
  static std::string RenderFolded(const std::map<std::string, uint64_t>& counts);
  /// RenderFolded(FoldedCounts()).
  std::string FoldedText() const;

  /// Non-empty stack snapshots recorded so far (== the sum of all counts).
  uint64_t samples() const { return samples_.load(std::memory_order_relaxed); }

 private:
  SamplingProfiler() = default;

  void SamplerLoop(uint64_t interval_ns);
  /// Takes one sweep over every registered slot.
  void SampleOnce();

  mutable Mutex mu_{"SamplingProfiler::mu_"};
  std::map<std::string, uint64_t> counts_ GUARDED_BY(mu_);
  bool running_ GUARDED_BY(mu_) = false;
  bool stop_requested_ GUARDED_BY(mu_) = false;
  std::condition_variable_any cv_;
  // Serializes Start/Stop (held across the join, which mu_ must not be).
  Mutex lifecycle_mu_ ACQUIRED_BEFORE(mu_){"SamplingProfiler::lifecycle_mu_"};
  std::thread sampler_ GUARDED_BY(lifecycle_mu_);  // landmark-lint: allow(raw-thread) the sampler must observe pool workers from outside; parking it on a worker would sample itself
  std::atomic<uint64_t> samples_{0};
};

/// \brief Watchdog options. The poll interval is real time (the monitor
/// thread's cadence); thresholds are evaluated on the deck clock, which is
/// what makes stalls virtual-clock-testable.
struct StallWatchdogOptions {
  /// Default stall threshold (seconds on the deck clock) for batches that
  /// did not set their own; <= 0 means only per-batch thresholds apply.
  double threshold_seconds = 0.0;
  /// Monitor thread poll cadence.
  uint64_t poll_interval_ns = 5 * 1000 * 1000;
};

/// \brief Flags nodes that run past their batch's stall threshold. Owned by
/// the engine (one per engine with stall_threshold > 0); scans the global
/// activity registry, so one watchdog observes every thread of the process.
/// Detection never cancels or kills the stalled work.
class StallWatchdog {
 public:
  explicit StallWatchdog(StallWatchdogOptions options);
  ~StallWatchdog();

  /// Stops and joins the monitor thread (idempotent).
  void Stop();

  /// One synchronous scan on the calling thread; returns the number of
  /// newly-reported stalls. Tests drive this with a fake deck clock instead
  /// of racing the monitor thread.
  size_t ScanOnce();

 private:
  void MonitorLoop();

  const StallWatchdogOptions options_;
  Mutex mu_{"StallWatchdog::mu_"};
  bool stop_ GUARDED_BY(mu_) = false;
  std::condition_variable_any cv_;
  std::thread monitor_;  // landmark-lint: allow(raw-thread) must keep scanning while every pool worker is (by definition of a stall) stuck
};

/// Human-readable flight-deck block appended to GET /statusz: in-flight
/// batches with per-stage node counts, per-worker activities, queue depths,
/// token-cache occupancy, profiler state.
std::string FlightDeckStatusText();
/// The same information as one JSON object (GET /statusz?format=json).
std::string FlightDeckStatusJson();

}  // namespace landmark

#define LANDMARK_ACTIVITY_CONCAT_INNER(a, b) a##b
#define LANDMARK_ACTIVITY_CONCAT(a, b) LANDMARK_ACTIVITY_CONCAT_INNER(a, b)

/// Opens a scoped activity frame: LANDMARK_ACTIVITY("engine/query");
/// `frame` must be a string literal (or otherwise immortal).
#define LANDMARK_ACTIVITY(frame)                  \
  ::landmark::ActivityScope LANDMARK_ACTIVITY_CONCAT( \
      landmark_activity_scope_, __COUNTER__)(frame)

#endif  // LANDMARK_UTIL_TELEMETRY_FLIGHT_DECK_H_
