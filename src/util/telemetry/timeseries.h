#ifndef LANDMARK_UTIL_TELEMETRY_TIMESERIES_H_
#define LANDMARK_UTIL_TELEMETRY_TIMESERIES_H_

/// Time-series telemetry: the SnapshotCollector periodically diffs the
/// global MetricsRegistry into fixed-capacity in-memory ring buffers of
/// *windowed* deltas — per-counter rates, gauge samples, per-histogram
/// bucket deltas with windowed p50/p95/p99 — so an operator can see what
/// the process did over the last N seconds, not just since it started.
/// Consumed by `GET /timelinez` on the HttpExporter, the `--timeline-out`
/// JSONL dump in TelemetryScope, and the SLO burn-rate layer
/// (util/telemetry/slo.h), which re-aggregates trailing windows into
/// error-budget math.
///
/// Determinism contract: the collector only *reads* snapshot values (plus
/// its own `timeseries/*` metrics), so explanations are bit-identical and
/// audit streams byte-identical with the collector armed or not
/// (tests/core/engine_timeline_test.cc). Timestamps come from the
/// flight-deck clock (FlightDeckNowNs), which makes every windowing
/// behaviour virtual-clock-testable via SetFlightDeckClockForTest — the
/// same injection point the stall watchdog uses.

#include <array>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/telemetry/metrics.h"
#include "util/thread_annotations.h"

namespace landmark {

/// \brief Collector configuration. The period is real time (the background
/// thread's cadence); window timestamps are deck-clock, so tests drive
/// TickOnce() with a fake clock instead of racing the thread.
struct TimeseriesOptions {
  /// Tick cadence of the background thread (default 1 s).
  uint64_t period_ns = 1000ull * 1000 * 1000;
  /// Windows retained in the ring (default 5 minutes at a 1 s period).
  size_t capacity = 300;
};

/// \brief One counter's movement over a window.
struct WindowCounter {
  std::string name;
  uint64_t delta = 0;
  /// delta / window seconds (0 when the window has zero width).
  double rate = 0.0;
};

/// \brief One gauge sampled at the window's end.
struct WindowGauge {
  std::string name;
  double value = 0.0;
};

/// \brief One histogram's movement over a window: the per-bucket count
/// deltas (non-empty deltas only, as (inclusive upper bound, delta)) and
/// quantiles estimated from those deltas alone — the window's latency
/// distribution, not the process-cumulative one.
struct WindowHistogram {
  std::string name;
  uint64_t count_delta = 0;
  double sum_delta = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<std::pair<double, uint64_t>> buckets;
};

/// \brief Everything that moved between two consecutive collector ticks.
/// Counters and histograms with zero delta are omitted; gauges are sampled
/// unconditionally (a zero queue depth is information).
struct TimeseriesWindow {
  /// Monotone tick number (survives ring eviction, so window 7 stays
  /// window 7 after windows 0-3 rotate out).
  uint64_t index = 0;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  std::vector<WindowCounter> counters;
  std::vector<WindowGauge> gauges;
  std::vector<WindowHistogram> histograms;

  double seconds() const {
    return end_ns <= start_ns ? 0.0
                              : static_cast<double>(end_ns - start_ns) * 1e-9;
  }
};

/// \brief Counter values at the moment the collector armed, so
/// base + sum(window deltas) == cumulative registry total is an exact,
/// testable identity (delta-vs-cumulative exactness contract).
struct TimeseriesBase {
  uint64_t start_ns = 0;
  std::vector<std::pair<std::string, uint64_t>> counters;
};

/// Quantile over one window's bucket deltas, with the extrema estimated
/// from the deltas themselves: the window minimum is bounded below by the
/// first non-empty bucket's lower bound, the maximum above by the last
/// non-empty bucket's upper bound (`max_hint` tightens the overflow
/// bucket's infinite bound — pass the cumulative histogram max).
double WindowedQuantile(const std::array<uint64_t, Histogram::kNumBuckets>&
                            delta_counts,
                        uint64_t count, double max_hint, double quantile);

/// \brief Background diff-taker over the global MetricsRegistry.
///
/// One thread (started lazily by Start(), stopped idempotently by Stop())
/// calls TickOnce() every period. The first tick arms the base snapshot and
/// emits no window; every later tick appends one TimeseriesWindow to the
/// ring and notifies observers. TickOnce() is also public and synchronous
/// so tests — and TelemetryScope::Finish, which wants one final window
/// covering the tail of the run — can drive collection deterministically
/// without the thread.
class SnapshotCollector {
 public:
  /// The process-wide collector behind /timelinez and --timeline-out.
  static SnapshotCollector& Global();

  explicit SnapshotCollector(TimeseriesOptions options = {});
  SnapshotCollector(const SnapshotCollector&) = delete;
  SnapshotCollector& operator=(const SnapshotCollector&) = delete;
  ~SnapshotCollector();

  /// Replaces the options. Takes effect for Start() calls and ring growth
  /// from now on; no-op on the running thread's current wait.
  void Configure(const TimeseriesOptions& options);
  TimeseriesOptions options() const;

  /// Arms the base (first tick) and starts the background thread. No-op
  /// when already running.
  void Start();
  /// Stops and joins the thread. The base, ring and tick count survive, so
  /// /timelinez keeps serving the final windows during --metrics-linger.
  void Stop();
  bool running() const;

  /// One synchronous collection on the calling thread (see class comment).
  void TickOnce();

  /// The retained windows, oldest first.
  std::vector<TimeseriesWindow> Windows() const;
  TimeseriesBase Base() const;
  /// Windows emitted so far (monotone; >= Windows().size()).
  uint64_t ticks() const;
  /// Windows evicted by ring rotation.
  uint64_t dropped() const;
  /// True once the base snapshot is armed (first TickOnce or Start).
  bool armed() const;

  /// Called after each emitted window, outside the collector's locks, on
  /// the ticking thread. Observers must not call back into the collector's
  /// mutating API; reading (Windows()) is fine. Used by TelemetryScope to
  /// hook SLO evaluation without a timeseries → slo dependency.
  using Observer = std::function<void(const TimeseriesWindow&)>;
  void AddObserver(Observer observer);

  /// Drops base, ring, tick count and observers (tests).
  void ResetForTest();

  /// `GET /timelinez` human table.
  std::string TimelinezText() const;
  /// `GET /timelinez?format=json`: {"period_seconds","capacity","ticks",
  /// "dropped","base":{...},"windows":[...]} — the shape
  /// scripts/validate_trace.py checks for the JSONL dump, minus the
  /// line-orientation.
  std::string TimelinezJson() const;
  /// `--timeline-out` JSONL dump: one `{"type":"timeline_base",...}` line,
  /// then one `{"type":"window",...}` line per retained window.
  Status WriteJsonl(const std::string& path) const;

 private:
  void CollectorLoop();

  // Serializes Start/Stop (held across the join, which mu_ must not be) —
  // the SamplingProfiler lifecycle pattern.
  mutable Mutex lifecycle_mu_ ACQUIRED_BEFORE(mu_){"SnapshotCollector::lifecycle_mu_"};
  std::thread collector_ GUARDED_BY(lifecycle_mu_);  // landmark-lint: allow(raw-thread) the ticking cadence must survive a fully-stalled pool; parking it on a worker would stop the clock exactly when the timeline matters

  mutable Mutex mu_{"SnapshotCollector::mu_"};
  std::condition_variable_any cv_;
  TimeseriesOptions options_ GUARDED_BY(mu_);
  bool running_ GUARDED_BY(mu_) = false;
  bool stop_requested_ GUARDED_BY(mu_) = false;
  bool armed_ GUARDED_BY(mu_) = false;
  TimeseriesBase base_ GUARDED_BY(mu_);
  MetricsSnapshot prev_ GUARDED_BY(mu_);
  uint64_t last_tick_ns_ GUARDED_BY(mu_) = 0;
  uint64_t ticks_ GUARDED_BY(mu_) = 0;
  uint64_t dropped_ GUARDED_BY(mu_) = 0;
  std::vector<TimeseriesWindow> ring_ GUARDED_BY(mu_);
  std::vector<Observer> observers_ GUARDED_BY(mu_);
};

}  // namespace landmark

#endif  // LANDMARK_UTIL_TELEMETRY_TIMESERIES_H_
