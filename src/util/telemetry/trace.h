#ifndef LANDMARK_UTIL_TELEMETRY_TRACE_H_
#define LANDMARK_UTIL_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace landmark {

/// Nanoseconds on the steady clock since the process's first trace-clock
/// use. All trace timestamps share this origin, so spans from different
/// threads align on one timeline.
uint64_t TraceNowNs();

/// \brief One completed span: [begin_ns, begin_ns + dur_ns) on one thread.
/// `name` must be a string with static storage duration — the macro passes
/// literals, instrumentation passes static tables.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t begin_ns = 0;
  uint64_t dur_ns = 0;
};

/// \brief Process-wide span recorder.
///
/// Each thread records completed spans into its own fixed-capacity ring
/// buffer (oldest events overwritten once full; `num_dropped` reports how
/// many). Recording is off until Start() — a disabled LANDMARK_TRACE_SPAN
/// costs one relaxed load. The export format is the Chrome trace-event JSON
/// that chrome://tracing and Perfetto load directly.
class TraceRecorder {
 public:
  /// The recorder LANDMARK_TRACE_SPAN reports to (leaked intentionally so
  /// spans on late-exiting threads stay safe).
  static TraceRecorder& Global();

  /// Enables recording. `events_per_thread` sizes each thread's ring buffer
  /// (existing buffers are resized and cleared).
  void Start(size_t events_per_thread = kDefaultEventsPerThread);
  /// Disables recording; buffered events stay available for export.
  void Stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one completed span to the calling thread's ring.
  void Record(const char* name, uint64_t begin_ns, uint64_t dur_ns);

  /// Events currently buffered / overwritten because a ring wrapped.
  size_t num_events() const;
  uint64_t num_dropped() const;
  void Clear();

  /// Serializes every buffered event as Chrome trace-event JSON
  /// (`{"traceEvents": [...], ...}`), sorted by begin time, with thread
  /// metadata records. Valid to call while stopped or running.
  std::string ToChromeTraceJson() const;
  Status WriteChromeTraceFile(const std::string& path) const;

  static constexpr size_t kDefaultEventsPerThread = 1 << 16;

 private:
  struct ThreadBuffer {
    explicit ThreadBuffer(uint32_t tid) : tid(tid) {}
    // Owner thread writes, exporters read (one buffer at a time, under the
    // recorder lock — see the ACQUIRED_BEFORE edge on TraceRecorder::mu_).
    mutable Mutex mu{"TraceRecorder::ThreadBuffer::mu"};
    const uint32_t tid;
    std::vector<TraceEvent> ring GUARDED_BY(mu);
    size_t head GUARDED_BY(mu) = 0;        // next write slot
    uint64_t recorded GUARDED_BY(mu) = 0;  // events ever written to this ring
  };

  ThreadBuffer& LocalBuffer();

  std::atomic<bool> enabled_{false};
  std::atomic<size_t> events_per_thread_{kDefaultEventsPerThread};
  // Guards buffers_ (the list, not their contents). Exporters hold it while
  // visiting each per-thread ring, hence the documented order.
  mutable Mutex mu_ ACQUIRED_BEFORE(ThreadBuffer::mu){"TraceRecorder::mu_"};
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ GUARDED_BY(mu_);
};

/// \brief RAII span: captures the clock at construction and records into
/// TraceRecorder::Global() at destruction (or at an early End()). If
/// tracing was disabled at construction the destructor does nothing, so
/// spans opened before Start() or closed after Stop() never record
/// half-configured data.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TraceRecorder::Global().enabled()) {
      name_ = name;
      begin_ns_ = TraceNowNs();
    }
  }
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span now instead of at scope exit (idempotent).
  void End() {
    if (name_ == nullptr) return;
    TraceRecorder::Global().Record(name_, begin_ns_,
                                   TraceNowNs() - begin_ns_);
    name_ = nullptr;
  }

 private:
  const char* name_ = nullptr;
  uint64_t begin_ns_ = 0;
};

}  // namespace landmark

#define LANDMARK_TRACE_CONCAT_INNER(a, b) a##b
#define LANDMARK_TRACE_CONCAT(a, b) LANDMARK_TRACE_CONCAT_INNER(a, b)

/// Opens a scoped trace span: LANDMARK_TRACE_SPAN("engine/query");
/// `name` must be a string literal (or otherwise outlive the recorder).
#define LANDMARK_TRACE_SPAN(name)               \
  ::landmark::TraceSpan LANDMARK_TRACE_CONCAT(  \
      landmark_trace_span_, __COUNTER__)(name)

#endif  // LANDMARK_UTIL_TELEMETRY_TRACE_H_
