#ifndef LANDMARK_UTIL_TELEMETRY_SINK_H_
#define LANDMARK_UTIL_TELEMETRY_SINK_H_

#include <ostream>
#include <string>

#include "util/status.h"
#include "util/telemetry/metrics.h"

namespace landmark {

/// \brief Where a metrics snapshot goes once taken: a machine-readable
/// stream, a human table, a future push gateway. Sinks only see plain
/// snapshot values, never live metric objects.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void Emit(const MetricsSnapshot& snapshot) = 0;
};

/// \brief One JSON object per line, e.g.
///   {"type":"counter","name":"engine/cache_hits","value":123}
///   {"type":"histogram","name":"engine/plan_seconds","count":4,...}
/// — greppable and appendable, for log files and trajectory tooling.
class JsonLinesSink : public TelemetrySink {
 public:
  explicit JsonLinesSink(std::ostream& out) : out_(&out) {}
  void Emit(const MetricsSnapshot& snapshot) override;

 private:
  std::ostream* out_;
};

/// \brief Human-readable aligned tables: counters and gauges by name, then
/// histograms with count / mean / p50 / p95 / p99 / max columns. This is
/// what `landmark_cli telemetry-demo` and `evaluate --engine-stats` print.
class TableSink : public TelemetrySink {
 public:
  explicit TableSink(std::ostream& out) : out_(&out) {}
  void Emit(const MetricsSnapshot& snapshot) override;

 private:
  std::ostream* out_;
};

/// Single JSON document with "counters", "gauges" and "histograms" keys —
/// the `--metrics-out=FILE` format (each histogram carries count, sum, min,
/// max, p50, p95, p99 and its non-empty buckets).
std::string MetricsSnapshotToJson(const MetricsSnapshot& snapshot);

Status WriteMetricsJsonFile(const MetricsSnapshot& snapshot,
                            const std::string& path);

}  // namespace landmark

#endif  // LANDMARK_UTIL_TELEMETRY_SINK_H_
