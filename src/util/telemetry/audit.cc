#include "util/telemetry/audit.h"

#include <utility>

#include "util/telemetry/json_util.h"

namespace landmark {

namespace {

std::string TokenToJson(const AuditTokenWeight& token) {
  std::string out = "{\"attr\":\"" + JsonEscape(token.attribute) + "\"";
  out += ",\"occ\":" + std::to_string(token.occurrence);
  out += ",\"text\":\"" + JsonEscape(token.text) + "\"";
  out += ",\"side\":\"" + JsonEscape(token.side) + "\"";
  if (token.injected) out += ",\"injected\":true";
  out += ",\"weight\":" + JsonDouble(token.weight);
  out += "}";
  return out;
}

}  // namespace

Result<std::unique_ptr<AuditSink>> AuditSink::Open(const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open audit output file: " + path);
  }
  return std::unique_ptr<AuditSink>(new AuditSink(std::move(out)));
}

AuditSink::AuditSink(std::ofstream out) : out_(std::move(out)) {}

AuditSink::~AuditSink() { Flush(); }

std::string AuditSink::UnitToJson(const AuditUnitRecord& record,
                                  uint64_t ordinal) {
  std::string out = "{\"type\":\"unit\",\"unit\":" + std::to_string(ordinal);
  out += ",\"record_id\":" + std::to_string(record.record_id);
  out += ",\"record_index\":" + std::to_string(record.record_index);
  out += ",\"explainer\":\"" + JsonEscape(record.explainer) + "\"";
  out += ",\"landmark_side\":\"" + JsonEscape(record.landmark_side) + "\"";
  if (!record.error.empty()) {
    out += ",\"error\":\"" + JsonEscape(record.error) + "\"}";
    return out;
  }
  out += ",\"model_prediction\":" + JsonDouble(record.model_prediction);
  out += ",\"weighted_r2\":" + JsonDouble(record.weighted_r2);
  out += ",\"intercept\":" + JsonDouble(record.intercept);
  out += ",\"match_fraction\":" + JsonDouble(record.match_fraction);
  out += ",\"top_weight_share\":" + JsonDouble(record.top_weight_share);
  out += ",\"interesting_tokens\":" +
         std::to_string(record.interesting_tokens);
  out += std::string(",\"low_r2\":") + (record.low_r2 ? "true" : "false");
  out += std::string(",\"degenerate_neighborhood\":") +
         (record.degenerate_neighborhood ? "true" : "false");
  out += ",\"num_masks\":" + std::to_string(record.num_masks);
  out += ",\"num_model_queries\":" + std::to_string(record.num_model_queries);
  out += ",\"cache_hits\":" + std::to_string(record.cache_hits);
  out += ",\"top_tokens\":[";
  for (size_t i = 0; i < record.top_tokens.size(); ++i) {
    if (i > 0) out += ",";
    out += TokenToJson(record.top_tokens[i]);
  }
  out += "]}";
  return out;
}

std::string AuditSink::BatchToJson(const AuditBatchStats& stats) {
  std::string out = "{\"type\":\"batch\"";
  out += ",\"num_records\":" + std::to_string(stats.num_records);
  out += ",\"num_failed_records\":" +
         std::to_string(stats.num_failed_records);
  out += ",\"num_units\":" + std::to_string(stats.num_units);
  out += ",\"num_masks\":" + std::to_string(stats.num_masks);
  out += ",\"num_model_queries\":" + std::to_string(stats.num_model_queries);
  out += ",\"cache_hits\":" + std::to_string(stats.cache_hits);
  out += ",\"token_cache_hits\":" + std::to_string(stats.token_cache_hits);
  out += ",\"token_cache_misses\":" +
         std::to_string(stats.token_cache_misses);
  out += ",\"plan_seconds\":" + JsonDouble(stats.plan_seconds);
  out += ",\"reconstruct_seconds\":" + JsonDouble(stats.reconstruct_seconds);
  out += ",\"query_seconds\":" + JsonDouble(stats.query_seconds);
  out += ",\"fit_seconds\":" + JsonDouble(stats.fit_seconds);
  out += ",\"num_stalls\":" + std::to_string(stats.num_stalls);
  if (!stats.stalls.empty()) {
    out += ",\"stalls\":[";
    for (size_t i = 0; i < stats.stalls.size(); ++i) {
      const AuditStall& stall = stats.stalls[i];
      if (i > 0) out += ",";
      out += "{\"stage\":\"" + JsonEscape(stall.stage) + "\"";
      out += ",\"record_index\":" + std::to_string(stall.record_index);
      out += ",\"unit_index\":" + std::to_string(stall.unit_index);
      out += ",\"elapsed_seconds\":" + JsonDouble(stall.elapsed_seconds);
      out += ",\"worker\":\"" + JsonEscape(stall.worker) + "\"}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

uint64_t AuditSink::WriteUnit(const AuditUnitRecord& record) {
  MutexLock lock(&mu_);
  const uint64_t ordinal = next_unit_++;
  out_ << UnitToJson(record, ordinal) << "\n";
  return ordinal;
}

void AuditSink::WriteBatch(const AuditBatchStats& stats) {
  MutexLock lock(&mu_);
  out_ << BatchToJson(stats) << "\n";
}

void AuditSink::Flush() {
  MutexLock lock(&mu_);
  out_.flush();
}

uint64_t AuditSink::units_written() const {
  MutexLock lock(&mu_);
  return next_unit_;
}

}  // namespace landmark
