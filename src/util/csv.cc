#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace landmark {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<CsvTable> ParseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
    } else {
      if (c == '"') {
        in_quotes = true;
        row_has_content = true;
        ++i;
      } else if (c == ',') {
        current.push_back(std::move(field));
        field.clear();
        row_has_content = true;
        ++i;
      } else if (c == '\r') {
        ++i;  // swallow; \n handles the row break
      } else if (c == '\n') {
        if (row_has_content || !field.empty() || !current.empty()) {
          current.push_back(std::move(field));
          field.clear();
          records.push_back(std::move(current));
          current.clear();
          row_has_content = false;
        }
        ++i;
      } else {
        field += c;
        row_has_content = true;
        ++i;
      }
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field in CSV input");
  }
  if (row_has_content || !field.empty() || !current.empty()) {
    current.push_back(std::move(field));
    records.push_back(std::move(current));
  }

  if (records.empty()) {
    return Status::InvalidArgument("CSV input has no header row");
  }

  CsvTable table;
  table.header = std::move(records.front());
  for (size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != table.header.size()) {
      std::ostringstream msg;
      msg << "CSV row " << r << " has " << records[r].size()
          << " fields, header has " << table.header.size();
      return Status::InvalidArgument(msg.str());
    }
    table.rows.push_back(std::move(records[r]));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str());
}

std::string WriteCsvString(const CsvTable& table) {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += QuoteField(row[i]);
    }
    out += '\n';
  };
  append_row(table.header);
  for (const auto& row : table.rows) append_row(row);
  return out;
}

Status WriteCsvFile(const CsvTable& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open file for writing: " + path);
  out << WriteCsvString(table);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace landmark
