#ifndef LANDMARK_UTIL_CSV_H_
#define LANDMARK_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace landmark {

/// \brief A parsed CSV file: a header row plus data rows, all strings.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses RFC-4180-style CSV text (double-quote quoting, embedded commas,
/// quotes and newlines inside quoted fields, CRLF or LF line endings).
/// The first row is treated as the header. Every data row must have the same
/// number of fields as the header.
Result<CsvTable> ParseCsv(const std::string& text);

/// Reads and parses a CSV file from disk.
Result<CsvTable> ReadCsvFile(const std::string& path);

/// Serializes a table to CSV text, quoting fields when needed.
std::string WriteCsvString(const CsvTable& table);

/// Writes a table to a CSV file.
Status WriteCsvFile(const CsvTable& table, const std::string& path);

}  // namespace landmark

#endif  // LANDMARK_UTIL_CSV_H_
