#ifndef LANDMARK_UTIL_RNG_H_
#define LANDMARK_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace landmark {

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library draws from an Rng that is
/// explicitly seeded, so experiments are reproducible bit-for-bit across
/// runs and platforms. The generator is small, fast, and passes BigCrush.
class Rng {
 public:
  /// Seeds the generator; distinct seeds give independent-looking streams
  /// (the seed is expanded through SplitMix64 as recommended by the xoshiro
  /// authors).
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Returns a standard normal variate (Marsaglia polar method).
  double NextGaussian();

  /// Returns true with probability p.
  bool NextBernoulli(double p);

  /// Returns an index in [0, weights.size()) drawn proportionally to
  /// `weights` (non-negative, not all zero).
  size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextUint64(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Returns k distinct indices drawn uniformly from [0, n) in random order.
  /// Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Forks an independent generator; the child stream does not overlap the
  /// parent's for any practical sequence length.
  Rng Fork();

 private:
  uint64_t s_[4];
  // Cached second variate from the polar method.
  bool has_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace landmark

#endif  // LANDMARK_UTIL_RNG_H_
