#ifndef LANDMARK_UTIL_STRING_UTIL_H_
#define LANDMARK_UTIL_STRING_UTIL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace landmark {

/// Splits `s` on the single character `sep`; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on runs of whitespace; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Returns `s` with ASCII letters lowercased.
std::string ToLower(std::string_view s);

/// Returns `s` without leading/trailing whitespace.
std::string Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a double; returns nullopt when `s` is not (entirely) a number.
std::optional<double> ParseDouble(std::string_view s);

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

}  // namespace landmark

#endif  // LANDMARK_UTIL_STRING_UTIL_H_
