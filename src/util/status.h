#ifndef LANDMARK_UTIL_STATUS_H_
#define LANDMARK_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace landmark {

/// \brief Machine-readable category of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kNotImplemented = 7,
  kInternal = 8,
};

/// \brief Returns a human-readable name for a status code ("InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail, in the style of
/// arrow::Status / rocksdb::Status.
///
/// The OK status is represented with a null payload so that passing and
/// returning OK statuses is allocation-free. Errors carry a code and a
/// message. The class is cheap to move and copyable.
class Status {
 public:
  /// Creates an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(message)})) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// Returns "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<State> state_;
};

}  // namespace landmark

/// Propagates a non-OK status to the caller.
#define LANDMARK_RETURN_NOT_OK(expr)                 \
  do {                                               \
    ::landmark::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                       \
  } while (false)

#endif  // LANDMARK_UTIL_STATUS_H_
