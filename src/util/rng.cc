#include "util/rng.h"

#include <cmath>

namespace landmark {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  LANDMARK_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  LANDMARK_CHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextUint64(range));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_gaussian_) {
    has_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_gaussian_ = true;
  return u * factor;
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  LANDMARK_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    LANDMARK_CHECK(w >= 0.0);
    total += w;
  }
  LANDMARK_CHECK(total > 0.0);
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  LANDMARK_CHECK(k <= n);
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  // Partial Fisher-Yates: only the first k positions need to be drawn.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextUint64(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace landmark
