#include "util/simd.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "util/check.h"

// The only translation unit allowed to include raw intrinsics headers
// (enforced by landmark_lint's `raw-simd` rule). Compiled with
// -ffp-contract=off (see src/util/CMakeLists.txt) and the AVX2 variants use
// explicit non-fused _mm256_mul_pd/_mm256_add_pd, so no FMA contraction can
// perturb the per-element rounding relative to the scalar loops below.
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#define LANDMARK_SIMD_X86 1
#include <immintrin.h>
#elif defined(__ARM_NEON) || defined(__aarch64__)
#define LANDMARK_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace landmark::simd {
namespace {

std::atomic<bool> g_enabled{true};

SimdLevel DetectLevelOnce() {
#if defined(LANDMARK_SIMD_X86)
#if defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  // SSE2 is part of the x86-64 baseline.
  return SimdLevel::kSse2;
#elif defined(LANDMARK_SIMD_NEON)
  return SimdLevel::kNeon;
#else
  return SimdLevel::kScalar;
#endif
}

// ---------------------------------------------------------------------------
// Scalar reference kernels. These are the semantics; the vector variants
// must agree with them bit-for-bit.
// ---------------------------------------------------------------------------

uint64_t PopcountWordsScalar(const uint64_t* words, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<uint64_t>(__builtin_popcountll(words[i]));
  }
  return total;
}

void ExpandBitsScalar(const uint64_t* words, size_t dim, double* out) {
  for (size_t i = 0; i < dim; ++i) {
    out[i] = ((words[i >> 6] >> (i & 63)) & 1u) != 0 ? 1.0 : 0.0;
  }
}

void AddScaledScalar(double* y, const double* x, double alpha, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void MultiplyScalar(double* out, const double* a, const double* b, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

// ---------------------------------------------------------------------------
// AVX2 variants (x86). Built as target("avx2") function variants so the
// translation unit stays buildable with the default -march; only executed
// after the runtime check in DetectedLevel().
// ---------------------------------------------------------------------------

#if defined(LANDMARK_SIMD_X86) && defined(__GNUC__)

__attribute__((target("avx2"))) void ExpandBitsAvx2(const uint64_t* words,
                                                    size_t dim, double* out) {
  // Per 4-bit nibble: look up four 0.0/1.0 lanes via blend on broadcast
  // masks. Exact: produces literal 0.0 / 1.0 doubles, same as scalar.
  const __m256d ones = _mm256_set1_pd(1.0);
  const __m256d zeros = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const uint64_t nibble = (words[i >> 6] >> (i & 63)) & 0xF;
    // Spread bits 0..3 into the sign bit of each 64-bit lane for blendv.
    const __m256i bits = _mm256_set_epi64x(
        (nibble & 8) ? -1 : 0, (nibble & 4) ? -1 : 0, (nibble & 2) ? -1 : 0,
        (nibble & 1) ? -1 : 0);
    _mm256_storeu_pd(out + i,
                     _mm256_blendv_pd(zeros, ones, _mm256_castsi256_pd(bits)));
  }
  for (; i < dim; ++i) {
    out[i] = ((words[i >> 6] >> (i & 63)) & 1u) != 0 ? 1.0 : 0.0;
  }
}

__attribute__((target("avx2"))) void AddScaledAvx2(double* y, const double* x,
                                                   double alpha, size_t n) {
  // Explicit mul + add (never _mm256_fmadd_pd): each lane performs the
  // same two roundings as the scalar loop.
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2"))) void MultiplyAvx2(double* out, const double* a,
                                                  const double* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

__attribute__((target("avx2"))) size_t AdvanceWhileLess64Avx2(
    const uint64_t* keys, size_t i, size_t n, uint64_t limit) {
  // _mm256_cmpgt_epi64 is signed; flipping the sign bit maps unsigned
  // order onto signed order.
  const __m256i bias = _mm256_set1_epi64x(static_cast<int64_t>(1ULL << 63));
  const __m256i vlimit = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<int64_t>(limit)), bias);
  while (i + 4 <= n) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)), bias);
    // Lane mask: key < limit  <=>  limit > key.
    const int mask = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(vlimit, v)));
    if (mask != 0xF) {
      // First lane that is >= limit ends the run. Keys are sorted, so the
      // run is a prefix of the lane mask.
      return i + static_cast<size_t>(__builtin_ctz(~mask & 0xF));
    }
    i += 4;
  }
  while (i < n && keys[i] < limit) ++i;
  return i;
}

__attribute__((target("avx2"))) size_t AdvanceWhileLess32Avx2(
    const uint32_t* keys, size_t i, size_t n, uint32_t limit) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int32_t>(1u << 31));
  const __m256i vlimit =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int32_t>(limit)), bias);
  while (i + 8 <= n) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)), bias);
    const int mask = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(vlimit, v)));
    if (mask != 0xFF) {
      return i + static_cast<size_t>(__builtin_ctz(~mask & 0xFF));
    }
    i += 8;
  }
  while (i < n && keys[i] < limit) ++i;
  return i;
}

#endif  // LANDMARK_SIMD_X86 && __GNUC__

// ---------------------------------------------------------------------------
// SSE2 variants (x86-64 baseline, no target attribute needed) and NEON.
// Two lanes per step; same per-element mul+add order as scalar.
// ---------------------------------------------------------------------------

#if defined(LANDMARK_SIMD_X86)

void AddScaledSse2(double* y, const double* x, double alpha, size_t n) {
  const __m128d va = _mm_set1_pd(alpha);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d prod = _mm_mul_pd(va, _mm_loadu_pd(x + i));
    _mm_storeu_pd(y + i, _mm_add_pd(_mm_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void MultiplySse2(double* out, const double* a, const double* b, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i, _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

#elif defined(LANDMARK_SIMD_NEON)

void AddScaledNeon(double* y, const double* x, double alpha, size_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t prod = vmulq_f64(va, vld1q_f64(x + i));
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void MultiplyNeon(double* out, const double* a, const double* b, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

#endif

bool UseAvx2() {
#if defined(LANDMARK_SIMD_X86) && defined(__GNUC__)
  return Enabled() && DetectedLevel() == SimdLevel::kAvx2;
#else
  return false;
#endif
}

}  // namespace

SimdLevel DetectedLevel() {
  static const SimdLevel level = DetectLevelOnce();
  return level;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "scalar";
}

const char* ActiveIsaName() {
  return Enabled() ? SimdLevelName(DetectedLevel())
                   : SimdLevelName(SimdLevel::kScalar);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

ScopedSimdEnabled::ScopedSimdEnabled(bool enabled) : previous_(Enabled()) {
  SetEnabled(enabled);
}

ScopedSimdEnabled::~ScopedSimdEnabled() { SetEnabled(previous_); }

uint64_t PopcountWords(const uint64_t* words, size_t n) {
  // __builtin_popcountll lowers to POPCNT/CNT where available; a vector
  // variant buys nothing for the short rows the engine sees.
  return PopcountWordsScalar(words, n);
}

size_t AdvanceWhileLess64(const uint64_t* keys, size_t i, size_t n,
                          uint64_t limit) {
  // The vector gallop only pays for itself on long runs: merges over
  // typical token profiles (a handful of keys) advance one or two steps per
  // call, where the out-of-line call + lane setup costs more than the
  // scalar compares. The result is identical either way (exact integer
  // kernel), so the cutover is purely a speed heuristic.
#if defined(LANDMARK_SIMD_X86) && defined(__GNUC__)
  if (n - i >= 16 && UseAvx2()) return AdvanceWhileLess64Avx2(keys, i, n, limit);
#endif
  while (i < n && keys[i] < limit) ++i;
  return i;
}

size_t AdvanceWhileLess32(const uint32_t* keys, size_t i, size_t n,
                          uint32_t limit) {
#if defined(LANDMARK_SIMD_X86) && defined(__GNUC__)
  if (n - i >= 32 && UseAvx2()) return AdvanceWhileLess32Avx2(keys, i, n, limit);
#endif
  while (i < n && keys[i] < limit) ++i;
  return i;
}

namespace {

/// Shared scratch for the per-character bitmask tables of the bit-parallel
/// string kernels. The table is kept all-zero *between* uses: each kernel
/// sets only the entries of the characters it saw and zeroes exactly those
/// on release, which for short strings is far cheaper than the 2 KB memset
/// a fresh local table would need per call.
thread_local uint64_t t_char_masks[256] = {};

}  // namespace

void JaroCounts(std::string_view a, std::string_view b, size_t* matches,
                size_t* transpositions) {
  const size_t la = a.size();
  const size_t lb = b.size();
  LANDMARK_CHECK(la <= 64 && lb <= 64);
  const size_t window = std::max<size_t>(1, std::max(la, lb) / 2) - 1;

  // Candidate bitmasks over b: bit j of peq[c] set iff b[j] == c.
  uint64_t* const peq = t_char_masks;
  for (size_t j = 0; j < lb; ++j) {
    peq[static_cast<unsigned char>(b[j])] |= 1ULL << j;
  }

  uint64_t matched_a = 0;
  uint64_t matched_b = 0;
  size_t m = 0;
  for (size_t i = 0; i < la; ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(lb, i + window + 1);
    if (lo >= hi) continue;
    const uint64_t below_hi = hi == 64 ? ~0ULL : (1ULL << hi) - 1;
    const uint64_t below_lo = lo == 0 ? 0ULL : (1ULL << lo) - 1;
    const uint64_t candidates =
        peq[static_cast<unsigned char>(a[i])] & below_hi & ~below_lo &
        ~matched_b;
    if (candidates != 0) {
      matched_b |= candidates & (~candidates + 1);  // lowest eligible j
      matched_a |= 1ULL << i;
      ++m;
    }
  }
  *matches = m;

  // Walk the two matched subsequences in index order, exactly like the
  // scalar pairing loop.
  size_t transposed = 0;
  uint64_t xa = matched_a;
  uint64_t xb = matched_b;
  while (xa != 0) {
    const int i = __builtin_ctzll(xa);
    const int j = __builtin_ctzll(xb);
    xa &= xa - 1;
    xb &= xb - 1;
    if (a[static_cast<size_t>(i)] != b[static_cast<size_t>(j)]) ++transposed;
  }
  *transpositions = transposed;

  for (size_t j = 0; j < lb; ++j) {
    peq[static_cast<unsigned char>(b[j])] = 0;
  }
}

size_t MyersLevenshtein(std::string_view a, std::string_view b) {
  const size_t m = a.size();
  LANDMARK_CHECK(m <= 64);
  if (m == 0) return b.size();
  if (b.empty()) return m;
  // Pattern bitmasks: bit i of peq[c] set iff a[i] == c.
  uint64_t* const peq = t_char_masks;
  for (size_t i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(a[i])] |= 1ULL << i;
  }
  uint64_t pv = ~0ULL;  // vertical positive deltas
  uint64_t mv = 0;      // vertical negative deltas
  size_t score = m;
  const uint64_t high = 1ULL << (m - 1);
  for (const char cb : b) {
    const uint64_t eq = peq[static_cast<unsigned char>(cb)];
    const uint64_t xv = eq | mv;
    const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    if (ph & high) ++score;
    if (mh & high) --score;
    ph = (ph << 1) | 1;
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  for (size_t i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(a[i])] = 0;
  }
  return score;
}

void ExpandBitsToDoubles(const uint64_t* words, size_t dim, double* out) {
#if defined(LANDMARK_SIMD_X86) && defined(__GNUC__)
  if (UseAvx2()) {
    ExpandBitsAvx2(words, dim, out);
    return;
  }
#endif
  ExpandBitsScalar(words, dim, out);
}

void AddScaled(double* y, const double* x, double alpha, size_t n) {
  if (!Enabled()) {
    AddScaledScalar(y, x, alpha, n);
    return;
  }
#if defined(LANDMARK_SIMD_X86) && defined(__GNUC__)
  if (UseAvx2()) {
    AddScaledAvx2(y, x, alpha, n);
    return;
  }
#endif
#if defined(LANDMARK_SIMD_X86)
  AddScaledSse2(y, x, alpha, n);
#elif defined(LANDMARK_SIMD_NEON)
  AddScaledNeon(y, x, alpha, n);
#else
  AddScaledScalar(y, x, alpha, n);
#endif
}

void Multiply(double* out, const double* a, const double* b, size_t n) {
  if (!Enabled()) {
    MultiplyScalar(out, a, b, n);
    return;
  }
#if defined(LANDMARK_SIMD_X86)
#if defined(__GNUC__)
  if (UseAvx2()) {
    MultiplyAvx2(out, a, b, n);
    return;
  }
#endif
  MultiplySse2(out, a, b, n);
#elif defined(LANDMARK_SIMD_NEON)
  MultiplyNeon(out, a, b, n);
#else
  MultiplyScalar(out, a, b, n);
#endif
}

}  // namespace landmark::simd
