#ifndef LANDMARK_UTIL_SIMD_H_
#define LANDMARK_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

/// \file
/// Portable SIMD shim for the perturbation hot path.
///
/// Every vector kernel in the library goes through this header; raw
/// intrinsics headers (`immintrin.h`, `arm_neon.h`) and `#pragma omp` are
/// banned everywhere else by landmark_lint's `raw-simd` rule so dispatch
/// stays centralized and auditable.
///
/// **Exactness contract.** Every kernel here produces bit-identical results
/// to its scalar fallback, on every ISA:
///   - integer kernels (popcount, sorted-key galloping, Myers Levenshtein,
///     bit-parallel Jaro match counting) are exact by construction;
///   - floating-point kernels are restricted to *lane-independent
///     element-wise* operations (`y[i] += a*x[i]`, `out[i] = a[i]*b[i]`,
///     bit → 0.0/1.0 expansion). Each output element sees exactly one
///     multiply and one add in the same order as the scalar loop, the
///     vector variants use explicit non-fused multiply/add instructions,
///     and simd.cc is compiled with `-ffp-contract=off`, so no FMA
///     contraction or reassociation can change a rounding step. Horizontal
///     reductions (dot products) are deliberately *not* offered: any lane
///     split would reassociate the sum.
///
/// Because results never differ, `Enabled()` is purely a performance /
/// oracle switch: `EngineOptions::simd` (CLI `--no-simd`) scopes it off so
/// the scalar path can serve as the equivalence oracle, the same pattern as
/// `--no-task-graph`.
namespace landmark::simd {

/// Instruction set detected on the running CPU (cached after first call).
enum class SimdLevel { kScalar, kSse2, kAvx2, kNeon };

/// Runtime-detected best level for this process.
SimdLevel DetectedLevel();

/// Short lowercase name for a level ("scalar", "sse2", "avx2", "neon").
const char* SimdLevelName(SimdLevel level);

/// Name of the ISA the kernels will actually use right now: the detected
/// level when vector paths are enabled, "scalar" otherwise. This is the
/// string recorded in bench output so bench_diff.py only compares like
/// hardware.
const char* ActiveIsaName();

/// Process-global switch for the vector paths (default on). Read with a
/// relaxed atomic load at each kernel entry; because every path is
/// bit-identical the flag only ever changes speed, never results, so a
/// concurrent toggle mid-batch is benign.
bool Enabled();
void SetEnabled(bool enabled);

/// RAII save/set/restore of the global switch. The engine applies one per
/// batch from `EngineOptions::simd`.
class ScopedSimdEnabled {
 public:
  explicit ScopedSimdEnabled(bool enabled);
  ~ScopedSimdEnabled();
  ScopedSimdEnabled(const ScopedSimdEnabled&) = delete;
  ScopedSimdEnabled& operator=(const ScopedSimdEnabled&) = delete;

 private:
  bool previous_;
};

// ---------------------------------------------------------------------------
// Integer kernels (exact on every path).
// ---------------------------------------------------------------------------

/// Total population count over `n` 64-bit words.
uint64_t PopcountWords(const uint64_t* words, size_t n);

/// Advances `i` while `keys[i] < limit` (and `i < n`); returns the first
/// index whose key is >= limit. `keys` must be sorted ascending. Used to
/// gallop through runs in sorted-key merges (token / q-gram profiles).
size_t AdvanceWhileLess64(const uint64_t* keys, size_t i, size_t n,
                          uint64_t limit);
size_t AdvanceWhileLess32(const uint32_t* keys, size_t i, size_t n,
                          uint32_t limit);

/// Myers' bit-parallel Levenshtein distance. Exact — computes the same
/// value as the classic O(m*n) dynamic program, one 64-bit column step per
/// character of `b`. Requires `a.size() <= 64` (the pattern is held in one
/// machine word); callers swap so the shorter string is `a`.
size_t MyersLevenshtein(std::string_view a, std::string_view b);

/// Jaro match / transposition counts via bitmask candidate selection: one
/// word op picks the first unmatched equal character inside the match
/// window instead of scanning it char by char. The greedy choice (lowest
/// eligible index, left to right over `a`) is identical to the classic
/// nested-loop scan, so both counts are exact. Requires `a.size() <= 64 &&
/// b.size() <= 64` (`b`'s match state lives in one word).
void JaroCounts(std::string_view a, std::string_view b, size_t* matches,
                size_t* transpositions);

// ---------------------------------------------------------------------------
// Floating-point kernels (element-wise, lane-independent, bit-identical).
// ---------------------------------------------------------------------------

/// out[i] = bit i of `words` ? 1.0 : 0.0, for i in [0, dim). Expands one
/// packed mask row into a design-matrix row.
void ExpandBitsToDoubles(const uint64_t* words, size_t dim, double* out);

/// y[i] += alpha * x[i] (the axpy inner loop).
void AddScaled(double* y, const double* x, double alpha, size_t n);

/// out[i] = a[i] * b[i].
void Multiply(double* out, const double* a, const double* b, size_t n);

}  // namespace landmark::simd

#endif  // LANDMARK_UTIL_SIMD_H_
