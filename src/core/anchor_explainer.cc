#include "core/anchor_explainer.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace landmark {

std::string AnchorRule::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << "IF {";
  for (size_t i = 0; i < anchor_tokens.size(); ++i) {
    if (i > 0) os << ", ";
    os << anchor_tokens[i].PrefixedName(schema);
  }
  os << "} present THEN " << (predicts_match ? "match" : "non-match")
     << " (precision " << precision << ")";
  return os.str();
}

double AnchorExplainer::EstimatePrecision(
    const EmModel& model, const PairRecord& pair,
    const std::vector<Token>& tokens, EntitySide varying_side,
    const std::vector<size_t>& anchor, bool target_class, Rng& rng) const {
  std::vector<uint8_t> in_anchor(tokens.size(), 0);
  for (size_t idx : anchor) in_anchor[idx] = 1;

  size_t agree = 0;
  for (size_t s = 0; s < options_.samples_per_candidate; ++s) {
    // Anchor tokens are always kept; every other token survives with
    // probability 1/2 (uniform over the conditioned perturbation space).
    std::vector<uint8_t> active(tokens.size());
    for (size_t i = 0; i < tokens.size(); ++i) {
      active[i] = in_anchor[i] ? 1 : (rng.NextBernoulli(0.5) ? 1 : 0);
    }
    PairRecord rec = pair;
    rec.entity(varying_side) = ReconstructEntity(
        pair.entity(varying_side).schema(), tokens, active, varying_side);
    const bool predicted_match =
        model.PredictProba(rec) >= options_.decision_threshold;
    agree += predicted_match == target_class;
  }
  return static_cast<double>(agree) /
         static_cast<double>(options_.samples_per_candidate);
}

Result<AnchorRule> AnchorExplainer::FindAnchor(const EmModel& model,
                                               const PairRecord& pair,
                                               EntitySide landmark_side) const {
  const EntitySide varying_side = OppositeSide(landmark_side);
  std::vector<Token> tokens =
      TokenizeEntity(pair.entity(varying_side), varying_side);
  if (tokens.empty()) {
    return Status::InvalidArgument(
        "varying entity has no tokens to anchor on");
  }

  const bool target_class =
      model.PredictProba(pair) >= options_.decision_threshold;
  Rng rng(options_.seed ^
          (static_cast<uint64_t>(pair.id + 1) * 0x9e3779b97f4a7c15ULL) ^
          (landmark_side == EntitySide::kRight ? 0xabcdef1234567ULL : 0));

  struct Candidate {
    std::vector<size_t> anchor;
    double precision;
  };
  // Start from the empty anchor (pure random perturbation).
  std::vector<Candidate> beam = {
      {{}, EstimatePrecision(model, pair, tokens, varying_side, {},
                             target_class, rng)}};
  Candidate best = beam[0];

  const size_t max_size =
      std::min(options_.max_anchor_size, tokens.size());
  for (size_t size = 1; size <= max_size; ++size) {
    std::vector<Candidate> expansions;
    for (const Candidate& candidate : beam) {
      std::set<size_t> used(candidate.anchor.begin(), candidate.anchor.end());
      for (size_t f = 0; f < tokens.size(); ++f) {
        if (used.count(f)) continue;
        std::vector<size_t> next = candidate.anchor;
        next.push_back(f);
        const double precision = EstimatePrecision(
            model, pair, tokens, varying_side, next, target_class, rng);
        expansions.push_back({std::move(next), precision});
      }
    }
    if (expansions.empty()) break;
    std::sort(expansions.begin(), expansions.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.precision != b.precision) return a.precision > b.precision;
                return a.anchor < b.anchor;
              });
    if (expansions.size() > options_.beam_width) {
      expansions.resize(options_.beam_width);
    }
    beam = std::move(expansions);
    if (beam[0].precision > best.precision ||
        (beam[0].precision == best.precision &&
         beam[0].anchor.size() < best.anchor.size())) {
      best = beam[0];
    }
    if (best.precision >= options_.target_precision) break;
  }

  AnchorRule rule;
  rule.anchor_features = best.anchor;
  std::sort(rule.anchor_features.begin(), rule.anchor_features.end());
  for (size_t idx : rule.anchor_features) {
    rule.anchor_tokens.push_back(tokens[idx]);
  }
  rule.predicts_match = target_class;
  rule.precision = best.precision;
  return rule;
}

Result<std::vector<AnchorRule>> AnchorExplainer::Explain(
    const EmModel& model, const PairRecord& pair) const {
  std::vector<AnchorRule> rules;
  for (EntitySide landmark_side : {EntitySide::kLeft, EntitySide::kRight}) {
    LANDMARK_ASSIGN_OR_RETURN(AnchorRule rule,
                              FindAnchor(model, pair, landmark_side));
    rules.push_back(std::move(rule));
  }
  return rules;
}

}  // namespace landmark
