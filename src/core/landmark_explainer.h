#ifndef LANDMARK_CORE_LANDMARK_EXPLAINER_H_
#define LANDMARK_CORE_LANDMARK_EXPLAINER_H_

#include <string>
#include <vector>

#include "core/explainer.h"

namespace landmark {

/// How the Landmark-generation component builds the varying entity (§3.1).
enum class GenerationStrategy {
  /// Single-entity generation: perturb only the varying entity's own
  /// tokens. Most reliable on records of the matching class (Table 2a).
  kSingle,
  /// Double-entity generation: inject the landmark's tokens into the
  /// varying entity (per-attribute concatenation) before perturbing. Pushes
  /// non-matching records towards the match class, producing more reliable
  /// and more interesting explanations on non-matches (Tables 2b / 4b).
  kDouble,
  /// Pick per record: kSingle when the model predicts match (p >= 0.5),
  /// kDouble otherwise — the behaviour §3 describes for the full system.
  kAuto,
};

/// Returns "single" / "double" / "auto".
std::string_view GenerationStrategyName(GenerationStrategy strategy);

/// \brief Landmark Explanation — the paper's contribution.
///
/// For each record it produces *two* explanations: one with the left entity
/// frozen as the landmark and the right entity perturbed, and one with the
/// roles swapped. The landmark is never perturbed, so no perturbation can
/// be "null" (remove the same evidence from both sides), and every
/// coefficient reads as "what this token of the varying entity contributes
/// to (non-)matching the landmark".
class LandmarkExplainer : public PairExplainer {
 public:
  explicit LandmarkExplainer(GenerationStrategy strategy,
                             ExplainerOptions options = {})
      : PairExplainer(options), strategy_(strategy) {}

  std::string name() const override;
  GenerationStrategy strategy() const { return strategy_; }

  /// Plans two units — landmark = left, then landmark = right — so Explain
  /// returns two explanations in that order.
  Result<std::vector<ExplainUnit>> Plan(const EmModel& model,
                                        const PairRecord& pair) const override;

  /// Explains with one specific landmark side.
  Result<Explanation> ExplainWithLandmark(const EmModel& model,
                                          const PairRecord& pair,
                                          EntitySide landmark_side) const;

 private:
  /// Plan for one landmark side (strategy resolution + token space + RNG).
  Result<ExplainUnit> PlanWithLandmark(const EmModel& model,
                                       const PairRecord& pair,
                                       EntitySide landmark_side) const;

  GenerationStrategy strategy_;
};

}  // namespace landmark

#endif  // LANDMARK_CORE_LANDMARK_EXPLAINER_H_
