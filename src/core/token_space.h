#ifndef LANDMARK_CORE_TOKEN_SPACE_H_
#define LANDMARK_CORE_TOKEN_SPACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/pair_record.h"
#include "data/record.h"

namespace landmark {

/// \brief One interpretable feature of an explanation: a word token with its
/// provenance.
///
/// This realizes the paper's Tokenizer (§3.1): "A token is generated for
/// each space-separated term in the attribute values. A prefix is introduced
/// to each token to indicate the attribute where the original value is
/// located in the entity schema. The prefix enumerates the tokens, to manage
/// multiple occurrences of the same word in an attribute value."
struct Token {
  /// Attribute index in the entity schema.
  size_t attribute = 0;
  /// Position of the token within the attribute's value (the enumeration
  /// part of the paper's prefix; disambiguates repeated words).
  size_t occurrence = 0;
  /// Surface form ("sony", "849.99").
  std::string text;
  /// Which entity of the pair the token originates from.
  EntitySide side = EntitySide::kLeft;
  /// True when the token was injected from the landmark entity into the
  /// varying entity (double-entity generation).
  bool injected = false;

  /// The paper-style prefixed name, e.g. "name__2__camera" (with an "R:"/"L:"
  /// origin marker and "+" for injected tokens).
  std::string PrefixedName(const Schema& schema) const;

  bool operator==(const Token& other) const {
    return attribute == other.attribute && occurrence == other.occurrence &&
           text == other.text && side == other.side &&
           injected == other.injected;
  }
};

/// Tokenizes one entity: every attribute value is split on whitespace; each
/// token remembers its attribute and position. Null attributes produce no
/// tokens.
std::vector<Token> TokenizeEntity(const Record& entity, EntitySide side);

/// Builds the double-entity token space (§3.1, double-entity generation):
/// for each attribute, the varying entity's tokens followed by the landmark
/// entity's tokens for the same attribute (flagged `injected`, re-labelled
/// to the varying side so reconstruction writes them into the varying
/// entity).
std::vector<Token> BuildAugmentedTokens(const Record& varying,
                                        EntitySide varying_side,
                                        const Record& landmark);

/// \brief The paper's Pair-reconstruction component, entity half: rebuilds
/// an entity Record from the subset of `tokens` whose mask bit is 1 (or all
/// tokens when `active` is empty). Tokens are re-joined per attribute in
/// their stored order; attributes left with no active token become null.
/// Only tokens whose `side` equals `side` contribute.
Record ReconstructEntity(const std::shared_ptr<const Schema>& schema,
                         const std::vector<Token>& tokens,
                         const std::vector<uint8_t>& active, EntitySide side);

}  // namespace landmark

#endif  // LANDMARK_CORE_TOKEN_SPACE_H_
