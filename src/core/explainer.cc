#include "core/explainer.h"

#include "core/engine/explainer_engine.h"
#include "core/sampling.h"

namespace landmark {

Status ValidateExplainerOptions(const ExplainerOptions& options) {
  if (options.num_samples < 2) {
    return Status::InvalidArgument(
        "ExplainerOptions::num_samples must be >= 2 (the all-active sample "
        "plus at least one perturbation)");
  }
  if (!(options.kernel_width > 0.0)) {
    return Status::InvalidArgument(
        "ExplainerOptions::kernel_width must be > 0");
  }
  if (!(options.ridge_lambda >= 0.0)) {
    return Status::InvalidArgument(
        "ExplainerOptions::ridge_lambda must be >= 0");
  }
  return Status::OK();
}

Rng PairExplainer::MakeRng(const PairRecord& pair) const {
  // Mix the record id into the base seed (SplitMix-style odd constant) so
  // every record gets an independent, reproducible stream.
  const uint64_t mixed =
      options_.seed ^ (static_cast<uint64_t>(pair.id + 1) * 0x9e3779b97f4a7c15ULL);
  return Rng(mixed);
}

Result<ExplainUnit> PairExplainer::MakeTokenUnit(
    std::vector<Token> tokens, const std::string& shell_name,
    std::optional<EntitySide> landmark_side, Rng rng) const {
  if (tokens.empty()) {
    return Status::InvalidArgument(
        "record has no tokens to explain (all attribute values null)");
  }
  ExplainUnit unit;
  unit.shell.explainer_name = shell_name;
  unit.shell.landmark = landmark_side;
  unit.shell.token_weights.reserve(tokens.size());
  for (auto& token : tokens) {
    unit.shell.token_weights.push_back(TokenWeight{std::move(token), 0.0});
  }
  unit.dim = unit.shell.size();
  unit.rng = rng;
  return unit;
}

Result<std::vector<Explanation>> PairExplainer::Explain(
    const EmModel& model, const PairRecord& pair) const {
  return ExplainerEngine::Serial().ExplainOne(model, pair, *this);
}

Result<PairRecord> PairExplainer::Reconstruct(
    const Explanation& explanation, const PairRecord& original,
    const std::vector<uint8_t>& active) const {
  if (!active.empty() && active.size() != explanation.size()) {
    return Status::InvalidArgument(
        "Reconstruct: mask size does not match the explanation");
  }
  bool has_left = false;
  bool has_right = false;
  for (const auto& tw : explanation.token_weights) {
    has_left |= tw.token.side == EntitySide::kLeft;
    has_right |= tw.token.side == EntitySide::kRight;
  }

  std::vector<Token> tokens;
  tokens.reserve(explanation.token_weights.size());
  for (const auto& tw : explanation.token_weights) tokens.push_back(tw.token);
  PairRecord out = original;
  if (has_left) {
    out.left = ReconstructEntity(original.left.schema(), tokens, active,
                                 EntitySide::kLeft);
  }
  if (has_right) {
    out.right = ReconstructEntity(original.right.schema(), tokens, active,
                                  EntitySide::kRight);
  }
  return out;
}

Result<PairRecord> PairExplainer::ReconstructUnit(
    const ExplainUnit& unit, const PairRecord& original,
    const std::vector<uint8_t>& mask) const {
  return Reconstruct(unit.shell, original, mask);
}

Result<PairRecord> PairExplainer::ReconstructUnit(const ExplainUnit& unit,
                                                  const PairRecord& original,
                                                  const MaskRow& mask) const {
  return ReconstructUnit(unit, original, mask.ToBytes());
}

std::optional<EntitySide> PairExplainer::FrozenSide(
    const ExplainUnit& unit) const {
  // Attribute-copy units (Mojito Copy) read from the source side and write
  // into the other one.
  if (unit.copy_source.has_value()) return unit.copy_source;
  // Token-granular units: the default Reconstruct only rebuilds entities
  // that own tokens in the space; an entity with no tokens is carried over
  // from the original untouched.
  bool has_left = false, has_right = false;
  for (const TokenWeight& tw : unit.shell.token_weights) {
    (tw.token.side == EntitySide::kLeft ? has_left : has_right) = true;
  }
  if (has_left && !has_right) return EntitySide::kRight;
  if (has_right && !has_left) return EntitySide::kLeft;
  return std::nullopt;
}

void PairExplainer::ApplyFit(const SurrogateFit& fit, ExplainUnit* unit) const {
  Explanation& shell = unit->shell;
  for (size_t i = 0; i < shell.size(); ++i) {
    shell.token_weights[i].weight = fit.model.coefficients[i];
  }
  shell.surrogate_intercept = fit.model.intercept;
  shell.surrogate_r2 = fit.weighted_r2;
}

void PairExplainer::SampleNeighborhood(
    size_t dim, Rng& rng, std::vector<std::vector<uint8_t>>* masks,
    std::vector<double>* kernel_weights) const {
  switch (options_.neighborhood) {
    case NeighborhoodKind::kLime:
      *masks = SamplePerturbationMasks(dim, options_.num_samples, rng);
      kernel_weights->clear();
      kernel_weights->reserve(masks->size());
      for (const auto& mask : *masks) {
        kernel_weights->push_back(KernelWeight(mask, options_.kernel_width));
      }
      break;
    case NeighborhoodKind::kShap:
      *masks = SampleShapMasks(dim, options_.num_samples, rng);
      kernel_weights->clear();
      kernel_weights->reserve(masks->size());
      for (const auto& mask : *masks) {
        kernel_weights->push_back(ShapleyKernelWeight(mask));
      }
      break;
  }
  // The `predictions[0] == f(all-active)` contract every explanation and
  // evaluation protocol relies on.
  if (!masks->empty()) {
    bool all_active = true;
    for (uint8_t bit : masks->front()) all_active &= bit != 0;
    LANDMARK_CHECK_MSG(all_active,
                       "neighborhood sampler violated the first-mask-all-"
                       "active contract");
  }
}

void PairExplainer::SampleNeighborhood(
    size_t dim, Rng& rng, MaskMatrix* masks,
    std::vector<double>* kernel_weights) const {
  switch (options_.neighborhood) {
    case NeighborhoodKind::kLime:
      *masks = SamplePerturbationMaskMatrix(dim, options_.num_samples, rng);
      kernel_weights->clear();
      kernel_weights->reserve(masks->rows());
      for (size_t r = 0; r < masks->rows(); ++r) {
        kernel_weights->push_back(
            KernelWeight(masks->row(r), options_.kernel_width));
      }
      break;
    case NeighborhoodKind::kShap:
      *masks = SampleShapMaskMatrix(dim, options_.num_samples, rng);
      kernel_weights->clear();
      kernel_weights->reserve(masks->rows());
      for (size_t r = 0; r < masks->rows(); ++r) {
        kernel_weights->push_back(ShapleyKernelWeight(masks->row(r)));
      }
      break;
  }
  if (masks->rows() > 0) {
    LANDMARK_CHECK_MSG(masks->ActiveCount(0) == masks->dim(),
                       "neighborhood sampler violated the first-mask-all-"
                       "active contract");
  }
}

}  // namespace landmark
