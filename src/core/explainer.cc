#include "core/explainer.h"

#include "core/sampling.h"
#include "core/surrogate.h"

namespace landmark {

namespace {

std::vector<Token> TokensOf(const Explanation& explanation) {
  std::vector<Token> tokens;
  tokens.reserve(explanation.token_weights.size());
  for (const auto& tw : explanation.token_weights) tokens.push_back(tw.token);
  return tokens;
}

}  // namespace

Rng PairExplainer::MakeRng(const PairRecord& pair) const {
  // Mix the record id into the base seed (SplitMix-style odd constant) so
  // every record gets an independent, reproducible stream.
  const uint64_t mixed =
      options_.seed ^ (static_cast<uint64_t>(pair.id + 1) * 0x9e3779b97f4a7c15ULL);
  return Rng(mixed);
}

Result<PairRecord> PairExplainer::Reconstruct(
    const Explanation& explanation, const PairRecord& original,
    const std::vector<uint8_t>& active) const {
  if (!active.empty() && active.size() != explanation.size()) {
    return Status::InvalidArgument(
        "Reconstruct: mask size does not match the explanation");
  }
  bool has_left = false;
  bool has_right = false;
  for (const auto& tw : explanation.token_weights) {
    has_left |= tw.token.side == EntitySide::kLeft;
    has_right |= tw.token.side == EntitySide::kRight;
  }

  std::vector<Token> tokens = TokensOf(explanation);
  PairRecord out = original;
  if (has_left) {
    out.left = ReconstructEntity(original.left.schema(), tokens, active,
                                 EntitySide::kLeft);
  }
  if (has_right) {
    out.right = ReconstructEntity(original.right.schema(), tokens, active,
                                  EntitySide::kRight);
  }
  return out;
}

void PairExplainer::SampleNeighborhood(
    size_t dim, Rng& rng, std::vector<std::vector<uint8_t>>* masks,
    std::vector<double>* kernel_weights) const {
  switch (options_.neighborhood) {
    case NeighborhoodKind::kLime:
      *masks = SamplePerturbationMasks(dim, options_.num_samples, rng);
      kernel_weights->clear();
      kernel_weights->reserve(masks->size());
      for (const auto& mask : *masks) {
        kernel_weights->push_back(KernelWeight(mask, options_.kernel_width));
      }
      break;
    case NeighborhoodKind::kShap:
      *masks = SampleShapMasks(dim, options_.num_samples, rng);
      kernel_weights->clear();
      kernel_weights->reserve(masks->size());
      for (const auto& mask : *masks) {
        kernel_weights->push_back(ShapleyKernelWeight(mask));
      }
      break;
  }
}

Result<Explanation> PairExplainer::ExplainTokenSpace(
    const EmModel& model, const PairRecord& original,
    std::vector<Token> tokens, const std::string& shell_name,
    std::optional<EntitySide> landmark_side, Rng& rng) const {
  if (tokens.empty()) {
    return Status::InvalidArgument(
        "record has no tokens to explain (all attribute values null)");
  }

  Explanation explanation;
  explanation.explainer_name = shell_name;
  explanation.landmark = landmark_side;
  explanation.token_weights.reserve(tokens.size());
  for (auto& token : tokens) {
    explanation.token_weights.push_back(TokenWeight{std::move(token), 0.0});
  }

  // Perturbation generation + locality kernel (pluggable: LIME or SHAP).
  std::vector<std::vector<uint8_t>> masks;
  std::vector<double> kernel_weights;
  SampleNeighborhood(explanation.size(), rng, &masks, &kernel_weights);

  // Pair reconstruction + dataset reconstruction (model labelling).
  std::vector<PairRecord> reconstructed;
  reconstructed.reserve(masks.size());
  for (const auto& mask : masks) {
    LANDMARK_ASSIGN_OR_RETURN(PairRecord rec,
                              Reconstruct(explanation, original, mask));
    reconstructed.push_back(std::move(rec));
  }
  std::vector<double> predictions = model.PredictProbaBatch(reconstructed);

  // Surrogate model creation.
  SurrogateOptions surrogate_options;
  surrogate_options.ridge_lambda = options_.ridge_lambda;
  surrogate_options.max_features = options_.max_features;
  LANDMARK_ASSIGN_OR_RETURN(
      SurrogateFit fit,
      FitSurrogate(masks, predictions, kernel_weights, surrogate_options));

  for (size_t i = 0; i < explanation.size(); ++i) {
    explanation.token_weights[i].weight = fit.model.coefficients[i];
  }
  explanation.surrogate_intercept = fit.model.intercept;
  explanation.surrogate_r2 = fit.weighted_r2;
  explanation.model_prediction = predictions[0];  // the all-active sample
  return explanation;
}

}  // namespace landmark
