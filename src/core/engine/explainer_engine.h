#ifndef LANDMARK_CORE_ENGINE_EXPLAINER_ENGINE_H_
#define LANDMARK_CORE_ENGINE_EXPLAINER_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/explainer.h"
#include "data/pair_record.h"
#include "em/em_model.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace landmark {

class AuditSink;
class StallWatchdog;

/// \brief Knobs of the staged explanation pipeline.
struct EngineOptions {
  /// Worker threads for the plan / reconstruct / query / fit stages. 1 runs
  /// everything inline on the calling thread; 0 uses the hardware
  /// concurrency. The thread count never changes the produced explanations
  /// (see the determinism contract on ExplainerEngine).
  size_t num_threads = 1;
  /// Deduplicate identical perturbation masks within a unit before querying
  /// the model. Small token spaces draw many duplicate masks (a dim-d space
  /// has only 2^d distinct ones), and the model query is the dominant cost
  /// of the whole pipeline, so the memo is a large saving exactly where
  /// records are cheap to explain badly. Never changes results: duplicate
  /// masks reconstruct identical pairs, hence identical predictions.
  bool cache_predictions = true;
  /// Route the query stage through the prepared fast path: tokenize each
  /// distinct attribute string once per batch (text/token_cache.h), resolve
  /// the frozen landmark side once per unit, and score via
  /// EmModel::PredictProbaPrepared. Never changes results — the prepared
  /// kernels are bit-identical to the string path (models without a
  /// prepared override transparently fall back to it). Off is an escape
  /// hatch for debugging and for the A/B equivalence tests.
  bool cache_features = true;
  /// Schedule ExplainBatch as a per-unit dependency DAG on the pool (plan →
  /// reconstruct → query → fit per unit, no batch-wide stage barriers) via
  /// util/thread_pool.h's TaskGraph. A record's units flow to the query
  /// stage as soon as their own reconstructions finish, instead of waiting
  /// for the slowest record of the whole batch at every stage boundary.
  /// Never changes results: node bodies write only to pre-assigned slots,
  /// per-record failure semantics are reproduced exactly by a per-record
  /// join node, and the quality/audit epilogue stays single-threaded in
  /// input order — explanations and audit unit lines are bit-identical to
  /// the staged path across thread counts. Off (`--no-task-graph`) runs the
  /// legacy barriered stages, kept as the equivalence oracle.
  bool use_task_graph = true;
  /// Use the SIMD kernel variants (util/simd.h) on the perturbation hot
  /// path: bit-parallel Levenshtein, key-compressed token merges, and the
  /// vectorized linear-algebra kernels behind the surrogate fit. The packed
  /// mask layout and SoA batch layout are unconditional; this knob only
  /// selects which kernel implementation runs, and every vectorized kernel
  /// is bit-identical to its scalar twin (fixed-order reductions, no FMA
  /// contraction), so results never change. Off (`--no-simd`) forces the
  /// scalar variants everywhere — the equivalence oracle for the A/B tests,
  /// mirroring `--no-task-graph`. The switch is applied for the duration of
  /// each Explain* call via a process-global flag; running two engines with
  /// different `simd` settings concurrently is unsupported.
  bool simd = true;
  /// Stall-watchdog threshold in seconds (`--stall-threshold`): when > 0,
  /// the engine runs a monitor that flags any pipeline node (plan /
  /// reconstruct / query / fit, per unit) still running after this long,
  /// emitting a structured report to the log, the `engine/stalls_total`
  /// counter, and the audit batch trailer — without cancelling the work.
  /// Elapsed time is measured on the flight-deck clock
  /// (util/telemetry/flight_deck.h), so tests can drive it virtually.
  /// 0 disables the watchdog entirely (no monitor thread is created).
  /// Detection never changes the produced explanations.
  double stall_threshold = 0.0;
  /// Optional flight recorder (`--audit-out`): when non-null, the engine
  /// appends one JSON line per ExplainUnit — identity, quality signals,
  /// per-unit cache counts, top-k token weights — plus a batch trailer.
  /// Records are written from the batch epilogue in input order, never from
  /// worker threads, so the stream is deterministic and the produced
  /// explanations are bit-identical with the sink attached or not.
  /// Non-owning; must outlive every Explain* call on the engine.
  AuditSink* audit_sink = nullptr;
};

/// \brief Per-stage counters of one ExplainBatch call.
///
/// **CPU-seconds vs wall-clock.** The four per-stage `*_seconds` fields are
/// *summed CPU-seconds*: each unit of work accumulates the time its own
/// stage body ran, across all workers. Under a multi-threaded run their sum
/// therefore exceeds the batch's elapsed time (stages overlap and workers
/// run concurrently) — they answer "where did the compute go", not "how
/// long did I wait". `wall_seconds` is the batch's elapsed time and
/// `critical_path_seconds` the longest dependency chain of node durations
/// (the floor no amount of parallelism can beat); both answer the latency
/// question. The legacy staged path keeps its historical meaning — each
/// stage field is that stage's wall time between barriers (identical to the
/// CPU sum when serial) — which is why the split was invisible before the
/// task-graph scheduler (docs/architecture.md, "Scheduling").
struct EngineStats {
  size_t num_records = 0;         // records submitted
  size_t num_failed_records = 0;  // records whose Result is an error
  size_t num_units = 0;           // explain units planned
  size_t num_masks = 0;           // raw perturbation masks sampled
  size_t num_model_queries = 0;   // deduplicated pairs actually scored
  size_t cache_hits = 0;          // num_masks - num_model_queries
  size_t token_cache_hits = 0;    // token-profile lookups served from cache
  size_t token_cache_misses = 0;  // distinct strings tokenized (fast path)
  double plan_seconds = 0.0;        // summed CPU-seconds (see above)
  double reconstruct_seconds = 0.0; // summed CPU-seconds
  double query_seconds = 0.0;       // summed CPU-seconds
  double fit_seconds = 0.0;         // summed CPU-seconds
  /// Elapsed wall-clock of the whole batch (pipeline + epilogue).
  double wall_seconds = 0.0;
  /// Longest dependency chain of node durations through the unit DAG
  /// (task-graph path only; 0 on the staged path).
  double critical_path_seconds = 0.0;

  /// Batch latency: the measured wall-clock when available, else the sum of
  /// the stage fields (their historical meaning — exact on the serial
  /// staged path, an overcount under concurrency).
  double total_seconds() const {
    if (wall_seconds > 0.0) return wall_seconds;
    return plan_seconds + reconstruct_seconds + query_seconds + fit_seconds;
  }
  /// One-line human-readable rendering for logs and CLI reports.
  std::string ToString() const;
};

/// \brief Result of one batch: per-input-record explanation lists (aligned
/// with the input order; a record that could not be explained holds its
/// error status) plus the stage counters.
struct EngineBatchResult {
  std::vector<Result<std::vector<Explanation>>> results;
  EngineStats stats;
};

/// \brief The explanation pipeline — the generic explanation system of the
/// paper's Figure 2, run once for a whole batch of records through four
/// stages:
///
///   plan        per record: token-space construction + RNG stream + mask
///               and kernel-weight sampling (PairExplainer::Plan)
///   reconstruct per unique mask: materialize the perturbed PairRecord
///               (PairExplainer::ReconstructUnit)
///   query       deduplicated pairs scored against the EM model
///               (EmModel::PredictProbaPrepared / PredictProbaRange)
///   fit         per unit: weighted ridge surrogate + coefficient mapping
///               (FitSurrogate + PairExplainer::ApplyFit)
///
/// By default the stages are scheduled as a per-unit dependency DAG on the
/// thread pool (EngineOptions::use_task_graph; docs/architecture.md,
/// "Scheduling") — no barrier between stages, so a cheap record's units fit
/// while an expensive record is still reconstructing. With
/// `use_task_graph = false` the engine runs the legacy staged loops: every
/// stage is a batch-wide ParallelFor with a barrier after it, and the query
/// stage is one flat cross-record batch sharded over the pool. Both paths
/// produce bit-identical output and share the single-threaded epilogue.
///
/// **Determinism contract.** Every unit owns an RNG stream derived only from
/// (options.seed, record id, unit side); work is partitioned statically and
/// results land in pre-sized slots. Runs with different `num_threads` (and
/// with the prediction memo or the feature cache on or off) therefore
/// produce bit-identical explanations, and `ExplainBatch` agrees
/// bit-for-bit with per-record `PairExplainer::Explain`.
class ExplainerEngine {
 public:
  explicit ExplainerEngine(EngineOptions options = {});
  ~ExplainerEngine();

  ExplainerEngine(const ExplainerEngine&) = delete;
  ExplainerEngine& operator=(const ExplainerEngine&) = delete;

  const EngineOptions& options() const { return options_; }
  /// Resolved worker count (>= 1; num_threads == 0 resolves to the hardware
  /// concurrency at construction).
  size_t num_threads() const { return num_threads_; }

  /// Explains every pair of the batch. `pairs` entries must outlive the
  /// call. Results are aligned with the input; per-record failures (e.g. a
  /// record whose attributes are all null) are reported in place, not
  /// thrown across the batch.
  EngineBatchResult ExplainBatch(const EmModel& model,
                                 const std::vector<const PairRecord*>& pairs,
                                 const PairExplainer& explainer) const;

  /// Convenience overload over an owning vector.
  EngineBatchResult ExplainBatch(const EmModel& model,
                                 const std::vector<PairRecord>& pairs,
                                 const PairExplainer& explainer) const;

  /// Single-record entry point (what PairExplainer::Explain routes to).
  Result<std::vector<Explanation>> ExplainOne(
      const EmModel& model, const PairRecord& pair,
      const PairExplainer& explainer) const;

  /// Runs one already-planned unit through reconstruct → query → fit (used
  /// by the side-specific public APIs such as ExplainWithLandmark).
  Result<Explanation> RunUnit(const EmModel& model, const PairRecord& pair,
                              const PairExplainer& explainer,
                              ExplainUnit unit) const;

  /// Shared process-wide serial engine (num_threads = 1, memo on) backing
  /// the single-record convenience APIs.
  static const ExplainerEngine& Serial();

 private:
  /// Legacy barriered stage loops (use_task_graph = false) — the
  /// equivalence oracle for the scheduler.
  EngineBatchResult ExplainBatchStaged(
      const EmModel& model, const std::vector<const PairRecord*>& pairs,
      const PairExplainer& explainer) const;
  /// Per-unit task-graph scheduler (use_task_graph = true, the default).
  EngineBatchResult ExplainBatchTaskGraph(
      const EmModel& model, const std::vector<const PairRecord*>& pairs,
      const PairExplainer& explainer) const;

  EngineOptions options_;
  size_t num_threads_ = 1;
  // The pool is an execution resource, not logical state: ExplainBatch is
  // const (and itself thread-safe for distinct engines).
  mutable std::unique_ptr<ThreadPool> pool_;
  // Created when options_.stall_threshold > 0; scans the flight deck's
  // activity registry in the background (util/telemetry/flight_deck.h).
  std::unique_ptr<StallWatchdog> watchdog_;
};

}  // namespace landmark

#endif  // LANDMARK_CORE_ENGINE_EXPLAINER_ENGINE_H_
