#include "core/engine/quality.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/telemetry/metrics.h"

namespace landmark {

ExplanationQuality ComputeExplanationQuality(
    const Explanation& explanation,
    const std::vector<double>& neighborhood_predictions,
    const QualityThresholds& thresholds) {
  ExplanationQuality quality;
  quality.weighted_r2 = explanation.surrogate_r2;
  quality.intercept = explanation.surrogate_intercept;

  if (!neighborhood_predictions.empty()) {
    size_t matches = 0;
    for (double prediction : neighborhood_predictions) {
      if (prediction >= thresholds.decision_threshold) ++matches;
    }
    quality.match_fraction = static_cast<double>(matches) /
                             static_cast<double>(
                                 neighborhood_predictions.size());
  }

  double total_mass = 0.0;
  for (const TokenWeight& tw : explanation.token_weights) {
    total_mass += std::fabs(tw.weight);
  }
  if (total_mass > 0.0) {
    std::vector<size_t> top = explanation.TopFeatures(thresholds.top_k);
    double top_mass = 0.0;
    for (size_t index : top) {
      top_mass += std::fabs(explanation.token_weights[index].weight);
    }
    quality.top_weight_share = top_mass / total_mass;
  }

  // The paper's interesting tokens are counter-evidence: with a match
  // verdict on the all-active sample, the tokens worth reporting are the
  // ones pulling towards non-match (remove them to break the match), and
  // vice versa.
  const bool model_says_match =
      explanation.model_prediction >= thresholds.decision_threshold;
  for (const TokenWeight& tw : explanation.token_weights) {
    if (std::fabs(tw.weight) <= thresholds.weight_epsilon) continue;
    if (model_says_match ? tw.weight < 0.0 : tw.weight > 0.0) {
      ++quality.interesting_tokens;
    }
  }

  quality.low_r2 = std::isnan(quality.weighted_r2) ||
                   quality.weighted_r2 < thresholds.low_r2;
  quality.degenerate_neighborhood =
      quality.match_fraction <= 0.0 || quality.match_fraction >= 1.0;
  return quality;
}

namespace {

/// Handles into the global registry, resolved once (same pattern as
/// EngineMetrics in explainer_engine.cc).
struct QualityMetrics {
  Counter& units;
  Counter& low_r2;
  Counter& degenerate;
  Histogram& r2;
  Histogram& intercept;
  Histogram& match_fraction;
  Histogram& top_weight_share;
  Histogram& interesting_tokens;

  static const QualityMetrics& Get() {
    static const QualityMetrics* metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      return new QualityMetrics{
          registry.GetCounter("explain/quality/units"),
          registry.GetCounter("explain/quality/low_r2"),
          registry.GetCounter("explain/quality/degenerate_neighborhoods"),
          registry.GetHistogram("explain/quality/r2"),
          registry.GetHistogram("explain/quality/intercept"),
          registry.GetHistogram("explain/quality/match_fraction"),
          registry.GetHistogram("explain/quality/top_weight_share"),
          registry.GetHistogram("explain/quality/interesting_tokens"),
      };
    }();
    return *metrics;
  }
};

/// Histograms hold non-negative values; surrogate R² and intercepts can be
/// slightly negative (an R² below zero is a worse-than-constant fit, an
/// intercept below zero is legal ridge output). Clamp into range instead of
/// dropping, so the count still reflects every unit.
double ClampForHistogram(double value) { return value < 0.0 ? 0.0 : value; }

}  // namespace

void PublishExplanationQuality(const ExplanationQuality& quality) {
  const QualityMetrics& metrics = QualityMetrics::Get();
  metrics.units.Add();
  if (quality.low_r2) metrics.low_r2.Add();
  if (quality.degenerate_neighborhood) metrics.degenerate.Add();
  if (!std::isnan(quality.weighted_r2)) {
    metrics.r2.Record(ClampForHistogram(quality.weighted_r2));
  }
  if (!std::isnan(quality.intercept)) {
    metrics.intercept.Record(ClampForHistogram(quality.intercept));
  }
  metrics.match_fraction.Record(quality.match_fraction);
  metrics.top_weight_share.Record(quality.top_weight_share);
  metrics.interesting_tokens.RecordCount(quality.interesting_tokens);
}

void PublishExplanationQuality(const ExplanationQuality& quality,
                               const ExemplarContext& context) {
  const QualityMetrics& metrics = QualityMetrics::Get();
  metrics.units.Add();
  if (quality.low_r2) metrics.low_r2.Add();
  if (quality.degenerate_neighborhood) metrics.degenerate.Add();
  if (!std::isnan(quality.weighted_r2)) {
    LANDMARK_OBSERVE_WITH_EXEMPLAR(
        metrics.r2, ClampForHistogram(quality.weighted_r2), context);
  }
  if (!std::isnan(quality.intercept)) {
    LANDMARK_OBSERVE_WITH_EXEMPLAR(
        metrics.intercept, ClampForHistogram(quality.intercept), context);
  }
  LANDMARK_OBSERVE_WITH_EXEMPLAR(metrics.match_fraction,
                                 quality.match_fraction, context);
  LANDMARK_OBSERVE_WITH_EXEMPLAR(metrics.top_weight_share,
                                 quality.top_weight_share, context);
  LANDMARK_OBSERVE_WITH_EXEMPLAR(
      metrics.interesting_tokens,
      static_cast<double>(quality.interesting_tokens), context);
}

}  // namespace landmark
