#include "core/engine/explainer_engine.h"

#include <algorithm>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/engine/quality.h"
#include "core/surrogate.h"
#include "em/prepared_batch.h"
#include "text/token_cache.h"
#include "util/simd.h"
#include "util/string_util.h"
#include "util/telemetry/audit.h"
#include "util/telemetry/flight_deck.h"
#include "util/telemetry/metrics.h"
#include "util/telemetry/trace.h"
#include "util/timer.h"

namespace landmark {

namespace {

/// Maps every mask to the index of its first occurrence's slot in the
/// deduplicated list, and records which mask indices are the unique
/// representatives (in first-occurrence order, so slot 0 is always the
/// all-active mask). With dedup disabled the mapping is the identity.
std::vector<uint32_t> DeduplicateMasks(const MaskMatrix& masks, bool enabled,
                                       std::vector<uint32_t>* unique_index) {
  std::vector<uint32_t> mask_to_unique(masks.rows());
  unique_index->clear();
  if (!enabled) {
    unique_index->reserve(masks.rows());
    for (uint32_t m = 0; m < masks.rows(); ++m) {
      mask_to_unique[m] = m;
      unique_index->push_back(m);
    }
    return mask_to_unique;
  }
  std::unordered_map<std::string, uint32_t> memo;
  memo.reserve(masks.rows());
  // Keyed on the packed words (8x smaller than the byte keys it replaced);
  // well-defined because the samplers keep padding bits zeroed.
  const size_t key_bytes = masks.words_per_row() * sizeof(uint64_t);
  for (uint32_t m = 0; m < masks.rows(); ++m) {
    std::string key(reinterpret_cast<const char*>(masks.row_words(m)),
                    key_bytes);
    auto [it, inserted] =
        memo.emplace(std::move(key), static_cast<uint32_t>(unique_index->size()));
    if (inserted) unique_index->push_back(m);
    mask_to_unique[m] = it->second;
  }
  return mask_to_unique;
}

SurrogateOptions MakeSurrogateOptions(const ExplainerOptions& options) {
  SurrogateOptions surrogate;
  surrogate.ridge_lambda = options.ridge_lambda;
  surrogate.max_features = options.max_features;
  return surrogate;
}

/// One unit flowing through the batch pipeline (either scheduler). Every
/// field is written by exactly one stage of the unit's own chain, which is
/// what makes the task-graph nodes race-free without per-unit locks.
struct UnitWork {
  size_t record_index = 0;
  ExplainUnit unit;
  Status status = Status::OK();

  // Plan stage outputs. Masks are bit-packed (core/sampling.h).
  MaskMatrix masks;
  std::vector<double> kernel_weights;
  std::vector<uint32_t> mask_to_unique;
  std::vector<uint32_t> unique_index;  // indices into `masks`

  // Reconstruct stage output. The staged scheduler moves these into its
  // flat cross-record query batch; the task-graph scheduler queries them in
  // place into `predictions`.
  std::vector<PairRecord> reconstructed;
  // Offset of this unit's unique reconstructions in the flat batch
  // (staged scheduler only).
  size_t query_offset = 0;
  bool queried = false;

  // Query stage output (task-graph scheduler): one prediction per unique
  // mask, aligned with `unique_index`.
  std::vector<double> predictions;

  // Fit stage outputs, consumed by the shared epilogue.
  ExplanationQuality quality;
  bool fit_ok = false;

  // Per-stage CPU-seconds of this unit's nodes (task-graph scheduler).
  double plan_seconds = 0.0;
  double reconstruct_seconds = 0.0;
  double query_seconds = 0.0;
  double fit_seconds = 0.0;
};

/// Global-registry handles for the engine's stable metric names (the
/// contract is documented in docs/architecture.md, "Telemetry"). Resolved
/// once; Add/Record on the handles is lock-free.
struct EngineMetrics {
  Counter& batches;
  Counter& records;
  Counter& records_failed;
  Counter& units;
  Counter& masks;
  Counter& model_queries;
  Counter& cache_hits;
  Counter& cache_misses;
  Counter& cache_evictions;
  Histogram& plan_seconds;
  Histogram& reconstruct_seconds;
  Histogram& query_seconds;
  Histogram& fit_seconds;
  Histogram& batch_seconds;
  // Per-unit stage latencies (task-graph scheduler only — the staged
  // scheduler has no per-unit decomposition). Recorded with exemplars from
  // the epilogue, so an outlier bucket can name its ExplainUnit.
  Histogram& unit_query_seconds;
  Histogram& unit_fit_seconds;

  static const EngineMetrics& Get() {
    static const EngineMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new EngineMetrics{r.GetCounter("engine/batches"),
                               r.GetCounter("engine/records"),
                               r.GetCounter("engine/records_failed"),
                               r.GetCounter("engine/units"),
                               r.GetCounter("engine/masks"),
                               r.GetCounter("engine/model_queries"),
                               r.GetCounter("engine/cache_hits"),
                               r.GetCounter("engine/cache_misses"),
                               r.GetCounter("engine/cache_evictions"),
                               r.GetHistogram("engine/plan_seconds"),
                               r.GetHistogram("engine/reconstruct_seconds"),
                               r.GetHistogram("engine/query_seconds"),
                               r.GetHistogram("engine/fit_seconds"),
                               r.GetHistogram("engine/batch_seconds"),
                               r.GetHistogram("engine/unit/query_seconds"),
                               r.GetHistogram("engine/unit/fit_seconds")};
    }();
    return *metrics;
  }
};

/// Scheduler-specific metric handles (task-graph path only; names are part
/// of the contract in docs/architecture.md, "Metric name contract").
struct SchedulerMetrics {
  Gauge& inflight_plan;
  Gauge& inflight_reconstruct;
  Gauge& inflight_query;
  Gauge& inflight_fit;
  Histogram& unit_critical_path_seconds;

  static const SchedulerMetrics& Get() {
    static const SchedulerMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new SchedulerMetrics{
          r.GetGauge("engine/inflight/plan"),
          r.GetGauge("engine/inflight/reconstruct"),
          r.GetGauge("engine/inflight/query"),
          r.GetGauge("engine/inflight/fit"),
          r.GetHistogram("engine/unit_critical_path_seconds")};
    }();
    return *metrics;
  }
};

/// Holds a stage's in-flight gauge up for the lifetime of one node body.
class InflightScope {
 public:
  explicit InflightScope(Gauge& gauge) : gauge_(gauge) { gauge_.Add(1.0); }
  ~InflightScope() { gauge_.Add(-1.0); }
  InflightScope(const InflightScope&) = delete;
  InflightScope& operator=(const InflightScope&) = delete;

 private:
  Gauge& gauge_;
};

/// Coefficients kept per audit line; matches Explanation::ToString's
/// default report depth.
constexpr size_t kAuditTopK = 10;

/// Fills the post-fit fields of an audit record from the unit's shell and
/// quality signals. `schema` resolves attribute indices to names (may be
/// null for schema-less records).
void FillAuditSuccess(const Explanation& shell,
                      const ExplanationQuality& quality, const Schema* schema,
                      AuditUnitRecord* record) {
  record->model_prediction = shell.model_prediction;
  record->weighted_r2 = quality.weighted_r2;
  record->intercept = quality.intercept;
  record->match_fraction = quality.match_fraction;
  record->top_weight_share = quality.top_weight_share;
  record->interesting_tokens = quality.interesting_tokens;
  record->low_r2 = quality.low_r2;
  record->degenerate_neighborhood = quality.degenerate_neighborhood;
  record->top_tokens.clear();
  for (size_t index : shell.TopFeatures(kAuditTopK)) {
    const TokenWeight& tw = shell.token_weights[index];
    AuditTokenWeight token;
    token.attribute = schema != nullptr &&
                              tw.token.attribute < schema->num_attributes()
                          ? schema->attribute_name(tw.token.attribute)
                          : std::to_string(tw.token.attribute);
    token.occurrence = static_cast<int>(tw.token.occurrence);
    token.text = tw.token.text;
    token.side = std::string(EntitySideName(tw.token.side));
    token.injected = tw.token.injected;
    token.weight = tw.weight;
    record->top_tokens.push_back(std::move(token));
  }
}

AuditBatchStats MakeAuditBatchStats(const EngineStats& stats,
                                    BatchProgress* progress) {
  AuditBatchStats out;
  if (progress != nullptr) {
    // Drain first, then read the monotone total: a stall landing between
    // the two is counted (num_stalls) even though its details missed the
    // trailer.
    for (StallReport& stall : progress->TakeStalls()) {
      AuditStall entry;
      entry.stage = stall.stage;
      entry.record_index = stall.record_index;
      entry.unit_index = stall.unit_index;
      entry.elapsed_seconds = stall.elapsed_seconds;
      entry.worker = std::move(stall.worker);
      out.stalls.push_back(std::move(entry));
    }
    out.num_stalls = progress->num_stalls();
  }
  out.num_records = stats.num_records;
  out.num_failed_records = stats.num_failed_records;
  out.num_units = stats.num_units;
  out.num_masks = stats.num_masks;
  out.num_model_queries = stats.num_model_queries;
  out.cache_hits = stats.cache_hits;
  out.token_cache_hits = stats.token_cache_hits;
  out.token_cache_misses = stats.token_cache_misses;
  out.plan_seconds = stats.plan_seconds;
  out.reconstruct_seconds = stats.reconstruct_seconds;
  out.query_seconds = stats.query_seconds;
  out.fit_seconds = stats.fit_seconds;
  return out;
}

/// EngineStats stays the per-batch snapshot callers consume; the registry
/// carries the same numbers as process-lifetime aggregates. Publishing once
/// per batch keeps the pipeline hot path free of registry traffic.
void PublishBatchStats(const EngineStats& stats, size_t cache_evictions) {
  const EngineMetrics& m = EngineMetrics::Get();
  m.batches.Add(1);
  m.records.Add(stats.num_records);
  m.records_failed.Add(stats.num_failed_records);
  m.units.Add(stats.num_units);
  m.masks.Add(stats.num_masks);
  m.model_queries.Add(stats.num_model_queries);
  m.cache_hits.Add(stats.cache_hits);
  m.cache_misses.Add(stats.num_model_queries);
  m.cache_evictions.Add(cache_evictions);
  m.plan_seconds.Record(stats.plan_seconds);
  m.reconstruct_seconds.Record(stats.reconstruct_seconds);
  m.query_seconds.Record(stats.query_seconds);
  m.fit_seconds.Record(stats.fit_seconds);
  m.batch_seconds.Record(stats.total_seconds());
}

/// Shared tail of both schedulers: propagate unit failures to their record
/// (first failing unit in unit order wins), publish quality signals and
/// capture audit lines, assemble per-record results in input order, and
/// flush telemetry. Runs single-threaded in unit index order — the audit
/// stream's byte-for-byte equality across schedulers and thread counts
/// hangs on this loop, so neither scheduler may write audit lines itself.
/// `works` is the flat record-major unit list; units of record i occupy
/// works[unit_begin[i], unit_begin[i + 1]).
void FinalizeBatch(const EngineOptions& options,
                   const std::vector<const PairRecord*>& pairs,
                   const std::vector<UnitWork*>& works,
                   const std::vector<size_t>& unit_begin,
                   std::vector<Status>& record_status, size_t cache_evictions,
                   const Timer& batch_timer, BatchProgress* progress,
                   EngineBatchResult* out) {
  const size_t n = pairs.size();
  for (UnitWork* work : works) {
    if (!work->status.ok() && record_status[work->record_index].ok()) {
      record_status[work->record_index] = work->status;
    }
  }

  // Audit epilogue, first half: capture the audit lines while the shells
  // are still alive (assembly moves them into the results). Writing — and
  // quality publication — happens in the telemetry loop below, where the
  // write can hand back the line's ordinal for exemplar capture.
  std::vector<AuditUnitRecord> audit_records;
  if (options.audit_sink != nullptr) audit_records.resize(works.size());
  for (size_t w = 0; w < works.size(); ++w) {
    const UnitWork& work = *works[w];
    if (options.audit_sink == nullptr) continue;
    AuditUnitRecord& record = audit_records[w];
    record.record_id = pairs[work.record_index]->id;
    record.record_index = work.record_index;
    record.explainer = work.unit.shell.explainer_name;
    if (work.unit.shell.landmark.has_value()) {
      record.landmark_side =
          std::string(EntitySideName(*work.unit.shell.landmark));
    }
    record.num_masks = work.masks.rows();
    if (work.queried) {
      record.num_model_queries = work.unique_index.size();
      record.cache_hits = work.masks.rows() - work.unique_index.size();
    }
    if (work.fit_ok) {
      FillAuditSuccess(work.unit.shell, work.quality,
                       pairs[work.record_index]->left.schema().get(), &record);
    } else {
      const Status& status = !work.status.ok()
                                 ? work.status
                                 : record_status[work.record_index];
      record.error = status.ok() ? "unit not completed" : status.ToString();
    }
  }

  // Assemble, preserving input order and per-record unit order.
  out->results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!record_status[i].ok()) {
      out->results.emplace_back(record_status[i]);
      ++out->stats.num_failed_records;
      continue;
    }
    std::vector<Explanation> explanations;
    explanations.reserve(unit_begin[i + 1] - unit_begin[i]);
    for (size_t w = unit_begin[i]; w < unit_begin[i + 1]; ++w) {
      explanations.push_back(std::move(works[w]->unit.shell));
    }
    out->results.emplace_back(std::move(explanations));
  }
  // Telemetry loop, still in unit order: write each audit line (the sink
  // assigns its monotone ordinal), then publish quality signals and the
  // per-unit stage latencies with exemplar context pointing back at that
  // exact line. Metrics-only writes — explanations and audit bytes are
  // unchanged by exemplar capture.
  const EngineMetrics& metrics = EngineMetrics::Get();
  for (size_t w = 0; w < works.size(); ++w) {
    const UnitWork& work = *works[w];
    ExemplarContext context;
    context.record_id = pairs[work.record_index]->id;
    context.record_index = static_cast<uint32_t>(work.record_index);
    context.unit_index =
        static_cast<uint32_t>(w - unit_begin[work.record_index]);
    if (options.audit_sink != nullptr) {
      context.audit_ordinal = options.audit_sink->WriteUnit(audit_records[w]);
      context.has_audit_ordinal = true;
    }
    if (work.fit_ok) PublishExplanationQuality(work.quality, context);
    // Per-unit stage seconds are only populated by the task-graph
    // scheduler; the staged path leaves them 0.0 and records nothing here.
    if (work.queried && work.query_seconds > 0.0) {
      LANDMARK_OBSERVE_WITH_EXEMPLAR(metrics.unit_query_seconds,
                                     work.query_seconds, context);
    }
    if (work.fit_ok && work.fit_seconds > 0.0) {
      LANDMARK_OBSERVE_WITH_EXEMPLAR(metrics.unit_fit_seconds,
                                     work.fit_seconds, context);
    }
  }
  if (options.audit_sink != nullptr) {
    options.audit_sink->WriteBatch(MakeAuditBatchStats(out->stats, progress));
  }
  out->stats.wall_seconds = batch_timer.ElapsedSeconds();
  PublishBatchStats(out->stats, cache_evictions);
}

}  // namespace

std::string EngineStats::ToString() const {
  std::string out;
  out += "records=" + std::to_string(num_records);
  if (num_failed_records > 0) {
    out += " (failed=" + std::to_string(num_failed_records) + ")";
  }
  out += " units=" + std::to_string(num_units);
  out += " masks=" + std::to_string(num_masks);
  out += " queries=" + std::to_string(num_model_queries);
  out += " cache_hits=" + std::to_string(cache_hits);
  out += " token_cache_hits=" + std::to_string(token_cache_hits);
  out += " token_cache_misses=" + std::to_string(token_cache_misses);
  out += " | plan=" + FormatDouble(plan_seconds, 3) + "s";
  out += " reconstruct=" + FormatDouble(reconstruct_seconds, 3) + "s";
  out += " query=" + FormatDouble(query_seconds, 3) + "s";
  out += " fit=" + FormatDouble(fit_seconds, 3) + "s";
  if (wall_seconds > 0.0) {
    out += " wall=" + FormatDouble(wall_seconds, 3) + "s";
  }
  if (critical_path_seconds > 0.0) {
    out += " critical_path=" + FormatDouble(critical_path_seconds, 3) + "s";
  }
  return out;
}

ExplainerEngine::ExplainerEngine(EngineOptions options) : options_(options) {
  // Hard cap: a worker count beyond this is either a typo or a negative
  // value cast to size_t; spawning it would abort in the pool.
  constexpr size_t kMaxThreads = 256;
  num_threads_ = options_.num_threads;
  if (num_threads_ == 0) {
    num_threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads_ = std::min(num_threads_, kMaxThreads);
  if (num_threads_ > 1) pool_ = std::make_unique<ThreadPool>(num_threads_);
  if (options_.stall_threshold > 0.0) {
    StallWatchdogOptions watchdog_options;
    watchdog_options.threshold_seconds = options_.stall_threshold;
    watchdog_ = std::make_unique<StallWatchdog>(watchdog_options);
  }
}

ExplainerEngine::~ExplainerEngine() = default;

const ExplainerEngine& ExplainerEngine::Serial() {
  static const ExplainerEngine* engine = new ExplainerEngine(EngineOptions{});
  return *engine;
}

EngineBatchResult ExplainerEngine::ExplainBatch(
    const EmModel& model, const std::vector<PairRecord>& pairs,
    const PairExplainer& explainer) const {
  std::vector<const PairRecord*> pointers;
  pointers.reserve(pairs.size());
  for (const PairRecord& pair : pairs) pointers.push_back(&pair);
  return ExplainBatch(model, pointers, explainer);
}

EngineBatchResult ExplainerEngine::ExplainBatch(
    const EmModel& model, const std::vector<const PairRecord*>& pairs,
    const PairExplainer& explainer) const {
  const size_t n = pairs.size();
  if (n == 0) return EngineBatchResult{};

  const Status valid = ValidateExplainerOptions(explainer.options());
  if (!valid.ok()) {
    EngineBatchResult out;
    out.stats.num_records = n;
    out.results.assign(n, Result<std::vector<Explanation>>(valid));
    out.stats.num_failed_records = n;
    // Rejected batches never reach the pipeline; count them without
    // polluting the stage-latency histograms with zero-length timings.
    EngineMetrics::Get().records.Add(n);
    EngineMetrics::Get().records_failed.Add(n);
    return out;
  }
  return options_.use_task_graph
             ? ExplainBatchTaskGraph(model, pairs, explainer)
             : ExplainBatchStaged(model, pairs, explainer);
}

EngineBatchResult ExplainerEngine::ExplainBatchStaged(
    const EmModel& model, const std::vector<const PairRecord*>& pairs,
    const PairExplainer& explainer) const {
  LANDMARK_TRACE_SPAN("engine/batch");
  // Kernel-variant selection for the whole batch (EngineOptions::simd).
  simd::ScopedSimdEnabled simd_scope(options_.simd);
  Timer batch_timer;
  EngineBatchResult out;
  const size_t n = pairs.size();
  out.stats.num_records = n;

  // Register on the flight deck for /statusz and the stall watchdog. No
  // task graph to attach on this path; stage chunks still tag the units
  // they run so stalls carry unit identity.
  BatchProgressScope deck(n, "staged", options_.stall_threshold);
  const uint64_t deck_id = deck.progress().id();
  // The calling thread carries a batch-wide frame so the sampling profiler
  // sees a non-empty stack for the whole batch, not just while a worker
  // happens to be inside a stage chunk.
  LANDMARK_ACTIVITY("engine/batch");

  auto parallel_for = [&](size_t count,
                          const std::function<void(size_t, size_t)>& body) {
    if (pool_ != nullptr) {
      pool_->ParallelFor(count, body);
    } else if (count > 0) {
      body(0, count);
    }
  };

  // --- Stage 1: plan. Token spaces + RNG streams per record, then masks,
  // kernel weights, and the dedup memo per unit.
  TraceSpan plan_span("engine/plan");
  Timer timer;
  std::vector<Result<std::vector<ExplainUnit>>> plans(
      n, Result<std::vector<ExplainUnit>>(Status::Internal("not planned")));
  parallel_for(n, [&](size_t begin, size_t end) {
    LANDMARK_ACTIVITY("engine/plan");
    for (size_t i = begin; i < end; ++i) {
      NodeTagScope tag(deck_id, "engine/plan", static_cast<uint32_t>(i),
                       kActivityNoIndex);
      plans[i] = explainer.Plan(model, *pairs[i]);
    }
  });

  std::vector<Status> record_status(n, Status::OK());
  std::vector<UnitWork> works;
  // Units of record i occupy works[unit_begin[i], unit_begin[i + 1]).
  std::vector<size_t> unit_begin(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    unit_begin[i] = works.size();
    if (!plans[i].ok()) {
      record_status[i] = plans[i].status();
      continue;
    }
    for (ExplainUnit& unit : *plans[i]) {
      UnitWork work;
      work.record_index = i;
      work.unit = std::move(unit);
      works.push_back(std::move(work));
    }
  }
  unit_begin[n] = works.size();
  out.stats.num_units = works.size();

  parallel_for(works.size(), [&](size_t begin, size_t end) {
    LANDMARK_ACTIVITY("engine/plan");
    for (size_t w = begin; w < end; ++w) {
      UnitWork& work = works[w];
      NodeTagScope tag(deck_id, "engine/plan",
                       static_cast<uint32_t>(work.record_index),
                       static_cast<uint32_t>(w));
      explainer.SampleNeighborhood(work.unit.dim, work.unit.rng, &work.masks,
                                   &work.kernel_weights);
      work.mask_to_unique = DeduplicateMasks(
          work.masks, options_.cache_predictions, &work.unique_index);
    }
  });
  for (const UnitWork& work : works) out.stats.num_masks += work.masks.rows();
  out.stats.plan_seconds = timer.ElapsedSeconds();
  plan_span.End();

  // --- Stage 2: reconstruct. One perturbed pair per *unique* mask.
  TraceSpan reconstruct_span("engine/reconstruct");
  timer.Reset();
  parallel_for(works.size(), [&](size_t begin, size_t end) {
    LANDMARK_ACTIVITY("engine/reconstruct");
    for (size_t w = begin; w < end; ++w) {
      UnitWork& work = works[w];
      NodeTagScope tag(deck_id, "engine/reconstruct",
                       static_cast<uint32_t>(work.record_index),
                       static_cast<uint32_t>(w));
      work.reconstructed.reserve(work.unique_index.size());
      for (uint32_t mask_index : work.unique_index) {
        Result<PairRecord> rec = explainer.ReconstructUnit(
            work.unit, *pairs[work.record_index], work.masks.row(mask_index));
        if (!rec.ok()) {
          work.status = rec.status();
          work.reconstructed.clear();
          break;
        }
        work.reconstructed.push_back(std::move(rec).ValueOrDie());
      }
    }
  });
  for (const UnitWork& work : works) {
    if (!work.status.ok() && record_status[work.record_index].ok()) {
      record_status[work.record_index] = work.status;
    }
  }
  out.stats.reconstruct_seconds = timer.ElapsedSeconds();
  reconstruct_span.End();

  // --- Stage 3: query. A single cross-record deduplicated batch, sharded
  // over the pool. Units of failed records are excluded.
  TraceSpan query_span("engine/query");
  timer.Reset();
  std::vector<PairRecord> batch;
  size_t total_queries = 0;
  // Unique masks planned for units whose record failed: their memo entries
  // were built and then discarded (the memo's eviction counter).
  size_t cache_evictions = 0;
  for (UnitWork& work : works) {
    if (!record_status[work.record_index].ok()) {
      cache_evictions += work.unique_index.size();
      continue;
    }
    total_queries += work.reconstructed.size();
  }
  batch.reserve(total_queries);
  for (UnitWork& work : works) {
    if (!record_status[work.record_index].ok()) continue;
    work.query_offset = batch.size();
    work.queried = true;
    for (PairRecord& rec : work.reconstructed) batch.push_back(std::move(rec));
    work.reconstructed.clear();
  }
  std::vector<double> predictions(batch.size());
  if (options_.cache_features) {
    // Fast path: resolve every distinct attribute string once, share each
    // unit's frozen landmark side across all of its perturbations, then
    // score through the prepared overloads. The single-threaded prepare is
    // what permits lock-free concurrent reads during the sharded scoring.
    TokenCache token_cache;
    // The cache lives only for this stage; the probe scope detaches it
    // from the deck before it is destroyed.
    TokenCacheProbeScope probe(
        deck.progress(), [&token_cache] { return token_cache.ShardSizes(); });
    PreparedPairBatch prepared(batch, &token_cache);
    for (const UnitWork& work : works) {
      if (!work.queried) continue;
      const LandmarkFeatureContext context = MakeLandmarkFeatureContext(
          batch[work.query_offset], explainer.FrozenSide(work.unit),
          token_cache);
      prepared.PrepareRange(work.query_offset,
                            work.query_offset + work.unique_index.size(),
                            context);
    }
    parallel_for(batch.size(), [&](size_t begin, size_t end) {
      LANDMARK_ACTIVITY("engine/query");
      // The flat cross-record chunk covers many units; the tag names the
      // stage only.
      NodeTagScope tag(deck_id, "engine/query", kActivityNoIndex,
                       kActivityNoIndex);
      model.PredictProbaPrepared(prepared, begin, end,
                                 predictions.data() + begin);
    });
    out.stats.token_cache_hits = token_cache.hits();
    out.stats.token_cache_misses = token_cache.misses();
    token_cache.PublishTelemetry();
  } else {
    parallel_for(batch.size(), [&](size_t begin, size_t end) {
      LANDMARK_ACTIVITY("engine/query");
      NodeTagScope tag(deck_id, "engine/query", kActivityNoIndex,
                       kActivityNoIndex);
      model.PredictProbaRange(batch, begin, end, predictions.data() + begin);
    });
  }
  out.stats.num_model_queries = batch.size();
  size_t live_masks = 0;
  for (const UnitWork& work : works) {
    if (work.queried) live_masks += work.masks.rows();
  }
  out.stats.cache_hits = live_masks - batch.size();
  out.stats.query_seconds = timer.ElapsedSeconds();
  query_span.End();

  // --- Stage 4: fit. Weighted ridge per unit, coefficients mapped back to
  // token weights by the explainer.
  TraceSpan fit_span("engine/fit");
  timer.Reset();
  const SurrogateOptions surrogate_options =
      MakeSurrogateOptions(explainer.options());
  // Quality signals need the full (duplicates included) neighbourhood
  // predictions, which are local to the fit loop; computed there, published
  // and audited from the single-threaded epilogue (FinalizeBatch).
  parallel_for(works.size(), [&](size_t begin, size_t end) {
    LANDMARK_ACTIVITY("engine/fit");
    for (size_t w = begin; w < end; ++w) {
      UnitWork& work = works[w];
      if (!work.queried) continue;
      NodeTagScope tag(deck_id, "engine/fit",
                       static_cast<uint32_t>(work.record_index),
                       static_cast<uint32_t>(w));
      std::vector<double> unit_predictions(work.masks.rows());
      for (size_t m = 0; m < work.masks.rows(); ++m) {
        unit_predictions[m] =
            predictions[work.query_offset + work.mask_to_unique[m]];
      }
      Result<SurrogateFit> fit =
          FitSurrogate(work.masks, unit_predictions, work.kernel_weights,
                       surrogate_options);
      if (!fit.ok()) {
        work.status = fit.status();
        continue;
      }
      // Slot 0 of the dedup list is the all-active mask (asserted by
      // SampleNeighborhood), so this is f(all-active).
      work.unit.shell.model_prediction = unit_predictions[0];
      explainer.ApplyFit(*fit, &work.unit);
      work.quality =
          ComputeExplanationQuality(work.unit.shell, unit_predictions);
      work.fit_ok = true;
    }
  });
  out.stats.fit_seconds = timer.ElapsedSeconds();
  fit_span.End();

  std::vector<UnitWork*> work_ptrs;
  work_ptrs.reserve(works.size());
  for (UnitWork& work : works) work_ptrs.push_back(&work);
  FinalizeBatch(options_, pairs, work_ptrs, unit_begin, record_status,
                cache_evictions, batch_timer, &deck.progress(), &out);
  return out;
}

EngineBatchResult ExplainerEngine::ExplainBatchTaskGraph(
    const EmModel& model, const std::vector<const PairRecord*>& pairs,
    const PairExplainer& explainer) const {
  LANDMARK_TRACE_SPAN("engine/batch");
  // Kernel-variant selection for the whole batch (EngineOptions::simd).
  simd::ScopedSimdEnabled simd_scope(options_.simd);
  Timer batch_timer;
  EngineBatchResult out;
  const size_t n = pairs.size();
  out.stats.num_records = n;

  /// State of one record in the unit DAG. `units` is built by the record's
  /// plan node and never resized afterwards, so unit nodes hold stable
  /// references into it; each downstream field of each UnitWork is written
  /// by exactly one node.
  struct RecordWork {
    std::vector<UnitWork> units;
    double plan_seconds = 0.0;
  };
  std::vector<RecordWork> records(n);
  std::vector<Status> record_status(n, Status::OK());
  const SurrogateOptions surrogate_options =
      MakeSurrogateOptions(explainer.options());
  const SchedulerMetrics& sm = SchedulerMetrics::Get();
  // One concurrent cache for the whole epoch: units interleave their query
  // stages against it from different workers (see text/token_cache.h); the
  // hit/miss totals still match the staged path because every distinct
  // string is profiled exactly once either way.
  TokenCache token_cache;

  TaskGraph graph(pool_.get());

  // Register on the flight deck (/statusz DAG progress, stall watchdog).
  // Declared after the graph and cache so its destructor — which detaches
  // both pointers — runs before either of them dies.
  BatchProgressScope deck(n, "task-graph", options_.stall_threshold);
  deck.progress().SetGraph(&graph);
  if (options_.cache_features) {
    deck.progress().SetTokenCacheProbe(
        [&token_cache] { return token_cache.ShardSizes(); });
  }
  const uint64_t deck_id = deck.progress().id();
  // Batch-wide profiler frame on the calling thread (see ExplainBatchStaged).
  LANDMARK_ACTIVITY("engine/batch");

  // Per-unit stage bodies. Everything is captured by reference; the graph
  // is drained by Wait() before any of it leaves scope.
  auto reconstruct_body = [&](size_t i, size_t w) {
    UnitWork& work = records[i].units[w];
    NodeTagScope node_tag(deck_id, "engine/reconstruct",
                          static_cast<uint32_t>(i), static_cast<uint32_t>(w));
    {
      // Neighborhood sampling is plan-stage work that happens to live in
      // the unit's first node (it needs only the unit itself, and splitting
      // it off would double the node count for no extra parallelism).
      InflightScope inflight(sm.inflight_plan);
      TraceSpan span("engine/plan");
      Timer timer;
      explainer.SampleNeighborhood(work.unit.dim, work.unit.rng, &work.masks,
                                   &work.kernel_weights);
      work.mask_to_unique = DeduplicateMasks(
          work.masks, options_.cache_predictions, &work.unique_index);
      work.plan_seconds = timer.ElapsedSeconds();
    }
    InflightScope inflight(sm.inflight_reconstruct);
    TraceSpan span("engine/reconstruct");
    Timer timer;
    work.reconstructed.reserve(work.unique_index.size());
    for (uint32_t mask_index : work.unique_index) {
      Result<PairRecord> rec = explainer.ReconstructUnit(
          work.unit, *pairs[i], work.masks.row(mask_index));
      if (!rec.ok()) {
        work.status = rec.status();
        work.reconstructed.clear();
        break;
      }
      work.reconstructed.push_back(std::move(rec).ValueOrDie());
    }
    work.reconstruct_seconds = timer.ElapsedSeconds();
  };

  // The per-record join reproduces the staged barrier's failure semantics:
  // one unit's reconstruct failure excludes ALL of the record's units from
  // the query stage (first failing unit in unit order wins), so which units
  // query — and hence every audit line and cache counter — is independent
  // of node scheduling.
  auto join_body = [&](size_t i) {
    RecordWork& rec = records[i];
    for (const UnitWork& work : rec.units) {
      if (!work.status.ok() && record_status[i].ok()) {
        record_status[i] = work.status;
      }
    }
    if (!record_status[i].ok()) return;  // units stay un-queried
    for (UnitWork& work : rec.units) work.queried = true;
  };

  auto query_body = [&](size_t i, size_t w) {
    UnitWork& work = records[i].units[w];
    if (!work.queried) return;
    NodeTagScope node_tag(deck_id, "engine/query", static_cast<uint32_t>(i),
                          static_cast<uint32_t>(w));
    InflightScope inflight(sm.inflight_query);
    TraceSpan span("engine/query");
    Timer timer;
    work.predictions.resize(work.reconstructed.size());
    if (options_.cache_features) {
      // Per-unit prepared batch over the shared cache: the frozen landmark
      // side resolves once per unit, every other string through the
      // concurrent cache. reconstructed[0] is the all-active mask's pair —
      // the same row the staged path takes its context from.
      PreparedPairBatch prepared(work.reconstructed, &token_cache);
      const LandmarkFeatureContext context = MakeLandmarkFeatureContext(
          work.reconstructed.front(), explainer.FrozenSide(work.unit),
          token_cache);
      prepared.PrepareRange(0, work.reconstructed.size(), context);
      model.PredictProbaPrepared(prepared, 0, work.reconstructed.size(),
                                 work.predictions.data());
    } else {
      model.PredictProbaRange(work.reconstructed, 0,
                              work.reconstructed.size(),
                              work.predictions.data());
    }
    work.query_seconds = timer.ElapsedSeconds();
  };

  auto fit_body = [&](size_t i, size_t w) {
    UnitWork& work = records[i].units[w];
    if (!work.queried) return;
    NodeTagScope node_tag(deck_id, "engine/fit", static_cast<uint32_t>(i),
                          static_cast<uint32_t>(w));
    InflightScope inflight(sm.inflight_fit);
    TraceSpan span("engine/fit");
    Timer timer;
    std::vector<double> unit_predictions(work.masks.rows());
    for (size_t m = 0; m < work.masks.rows(); ++m) {
      unit_predictions[m] = work.predictions[work.mask_to_unique[m]];
    }
    Result<SurrogateFit> fit =
        FitSurrogate(work.masks, unit_predictions, work.kernel_weights,
                     surrogate_options);
    if (!fit.ok()) {
      work.status = fit.status();
      work.fit_seconds = timer.ElapsedSeconds();
      return;
    }
    // Slot 0 of the dedup list is the all-active mask (asserted by
    // SampleNeighborhood), so this is f(all-active).
    work.unit.shell.model_prediction = unit_predictions[0];
    explainer.ApplyFit(*fit, &work.unit);
    work.quality = ComputeExplanationQuality(work.unit.shell, unit_predictions);
    work.fit_ok = true;
    work.fit_seconds = timer.ElapsedSeconds();
  };

  // Seed one plan node per record; each grows its own unit chains
  // (reconstruct → join → query → fit) from inside the running graph, so a
  // record's units start reconstructing while later records still plan.
  for (size_t i = 0; i < n; ++i) {
    graph.AddNode([&, i] {
      RecordWork& rec = records[i];
      NodeTagScope node_tag(deck_id, "engine/plan", static_cast<uint32_t>(i),
                            kActivityNoIndex);
      {
        InflightScope inflight(sm.inflight_plan);
        TraceSpan span("engine/plan");
        Timer timer;
        Result<std::vector<ExplainUnit>> plan = explainer.Plan(model, *pairs[i]);
        if (!plan.ok()) {
          record_status[i] = plan.status();
          rec.plan_seconds = timer.ElapsedSeconds();
          return;
        }
        rec.units.reserve(plan->size());
        for (ExplainUnit& unit : *plan) {
          UnitWork work;
          work.record_index = i;
          work.unit = std::move(unit);
          rec.units.push_back(std::move(work));
        }
        rec.plan_seconds = timer.ElapsedSeconds();
      }
      std::vector<TaskGraph::NodeId> reconstructs;
      reconstructs.reserve(rec.units.size());
      for (size_t w = 0; w < rec.units.size(); ++w) {
        reconstructs.push_back(graph.AddNode(
            [&, i, w] { reconstruct_body(i, w); }, {}, "engine/reconstruct"));
      }
      const TaskGraph::NodeId join = graph.AddNode(
          [&, i] { join_body(i); }, reconstructs, "engine/join");
      for (size_t w = 0; w < rec.units.size(); ++w) {
        const TaskGraph::NodeId query = graph.AddNode(
            [&, i, w] { query_body(i, w); }, {join}, "engine/query");
        graph.AddNode([&, i, w] { fit_body(i, w); }, {query}, "engine/fit");
      }
    }, {}, "engine/plan");
  }
  graph.Run();
  graph.Wait();

  // Flatten in input order and fold up the stats. Every loop below reads
  // state that only the drained graph wrote.
  std::vector<UnitWork*> works;
  std::vector<size_t> unit_begin(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    unit_begin[i] = works.size();
    for (UnitWork& work : records[i].units) works.push_back(&work);
  }
  unit_begin[n] = works.size();
  out.stats.num_units = works.size();

  size_t cache_evictions = 0;
  size_t live_masks = 0;
  for (const UnitWork* work : works) {
    out.stats.num_masks += work->masks.rows();
    if (!work->queried) {
      // Unique masks planned for units whose record failed pre-query: their
      // memo entries were built and then discarded.
      cache_evictions += work->unique_index.size();
      continue;
    }
    live_masks += work->masks.rows();
    out.stats.num_model_queries += work->unique_index.size();
  }
  out.stats.cache_hits = live_masks - out.stats.num_model_queries;

  // Stage CPU-seconds (summed across nodes) and the critical path: the
  // longest chain of node durations ending at each unit's fit — record plan,
  // then the slowest sibling's sample+reconstruct (the join waits for it),
  // then the unit's own query and fit.
  for (size_t i = 0; i < n; ++i) {
    const RecordWork& rec = records[i];
    out.stats.plan_seconds += rec.plan_seconds;
    double slowest_sibling = 0.0;
    for (const UnitWork& work : rec.units) {
      slowest_sibling = std::max(
          slowest_sibling, work.plan_seconds + work.reconstruct_seconds);
    }
    for (const UnitWork& work : rec.units) {
      out.stats.plan_seconds += work.plan_seconds;
      out.stats.reconstruct_seconds += work.reconstruct_seconds;
      out.stats.query_seconds += work.query_seconds;
      out.stats.fit_seconds += work.fit_seconds;
      const double unit_critical_path = rec.plan_seconds + slowest_sibling +
                                        work.query_seconds + work.fit_seconds;
      sm.unit_critical_path_seconds.Record(unit_critical_path);
      out.stats.critical_path_seconds =
          std::max(out.stats.critical_path_seconds, unit_critical_path);
    }
  }

  if (options_.cache_features) {
    out.stats.token_cache_hits = token_cache.hits();
    out.stats.token_cache_misses = token_cache.misses();
    token_cache.PublishTelemetry();
  }
  FinalizeBatch(options_, pairs, works, unit_begin, record_status,
                cache_evictions, batch_timer, &deck.progress(), &out);
  return out;
}

Result<std::vector<Explanation>> ExplainerEngine::ExplainOne(
    const EmModel& model, const PairRecord& pair,
    const PairExplainer& explainer) const {
  {
    Status valid = ValidateExplainerOptions(explainer.options());
    if (!valid.ok()) return valid;
  }
  LANDMARK_ASSIGN_OR_RETURN(std::vector<ExplainUnit> units,
                            explainer.Plan(model, pair));
  std::vector<Explanation> out;
  out.reserve(units.size());
  for (ExplainUnit& unit : units) {
    LANDMARK_ASSIGN_OR_RETURN(
        Explanation explanation,
        RunUnit(model, pair, explainer, std::move(unit)));
    out.push_back(std::move(explanation));
  }
  return out;
}

Result<Explanation> ExplainerEngine::RunUnit(const EmModel& model,
                                             const PairRecord& pair,
                                             const PairExplainer& explainer,
                                             ExplainUnit unit) const {
  {
    Status valid = ValidateExplainerOptions(explainer.options());
    if (!valid.ok()) return valid;
  }
  LANDMARK_TRACE_SPAN("engine/unit");
  simd::ScopedSimdEnabled simd_scope(options_.simd);
  MaskMatrix masks;
  std::vector<double> kernel_weights;
  explainer.SampleNeighborhood(unit.dim, unit.rng, &masks, &kernel_weights);
  std::vector<uint32_t> unique_index;
  const std::vector<uint32_t> mask_to_unique =
      DeduplicateMasks(masks, options_.cache_predictions, &unique_index);
  {
    const EngineMetrics& m = EngineMetrics::Get();
    m.units.Add(1);
    m.masks.Add(masks.rows());
    m.model_queries.Add(unique_index.size());
    m.cache_hits.Add(masks.rows() - unique_index.size());
    m.cache_misses.Add(unique_index.size());
  }

  std::vector<PairRecord> reconstructed;
  reconstructed.reserve(unique_index.size());
  for (uint32_t mask_index : unique_index) {
    LANDMARK_ASSIGN_OR_RETURN(
        PairRecord rec,
        explainer.ReconstructUnit(unit, pair, masks.row(mask_index)));
    reconstructed.push_back(std::move(rec));
  }
  std::vector<double> unique_predictions(reconstructed.size());
  if (options_.cache_features && !reconstructed.empty()) {
    TokenCache token_cache;
    PreparedPairBatch prepared(reconstructed, &token_cache);
    const LandmarkFeatureContext context = MakeLandmarkFeatureContext(
        reconstructed.front(), explainer.FrozenSide(unit), token_cache);
    prepared.PrepareRange(0, reconstructed.size(), context);
    model.PredictProbaPrepared(prepared, 0, reconstructed.size(),
                               unique_predictions.data());
    token_cache.PublishTelemetry();
  } else {
    unique_predictions = model.PredictProbaBatch(reconstructed);
  }
  std::vector<double> predictions(masks.rows());
  for (size_t m = 0; m < masks.rows(); ++m) {
    predictions[m] = unique_predictions[mask_to_unique[m]];
  }

  LANDMARK_ASSIGN_OR_RETURN(
      SurrogateFit fit,
      FitSurrogate(masks, predictions, kernel_weights,
                   MakeSurrogateOptions(explainer.options())));
  unit.shell.model_prediction = predictions[0];  // the all-active sample
  explainer.ApplyFit(fit, &unit);
  const ExplanationQuality quality =
      ComputeExplanationQuality(unit.shell, predictions);
  // Audit first so the quality exemplars can carry the line's ordinal.
  ExemplarContext exemplar_context;
  exemplar_context.record_id = pair.id;
  if (options_.audit_sink != nullptr) {
    AuditUnitRecord record;
    record.record_id = pair.id;
    record.explainer = unit.shell.explainer_name;
    if (unit.shell.landmark.has_value()) {
      record.landmark_side = std::string(EntitySideName(*unit.shell.landmark));
    }
    record.num_masks = masks.rows();
    record.num_model_queries = unique_index.size();
    record.cache_hits = masks.rows() - unique_index.size();
    FillAuditSuccess(unit.shell, quality, pair.left.schema().get(), &record);
    exemplar_context.audit_ordinal = options_.audit_sink->WriteUnit(record);
    exemplar_context.has_audit_ordinal = true;
  }
  PublishExplanationQuality(quality, exemplar_context);
  return std::move(unit.shell);
}

}  // namespace landmark
