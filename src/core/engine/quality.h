#ifndef LANDMARK_CORE_ENGINE_QUALITY_H_
#define LANDMARK_CORE_ENGINE_QUALITY_H_

#include <cstddef>
#include <vector>

#include "core/explanation.h"
#include "util/telemetry/metrics.h"

namespace landmark {

/// \brief Thresholds of the quality classification below. The defaults are
/// what the engine publishes; tests may tighten them.
struct QualityThresholds {
  /// Neighbourhood predictions at or above this count as the match class
  /// (the paper's decision threshold).
  double decision_threshold = 0.5;
  /// Weighted R² below this flags the surrogate as a poor local fit.
  double low_r2 = 0.25;
  /// How many top-|weight| tokens the concentration share covers.
  size_t top_k = 5;
  /// |weight| at or below this is treated as zero when counting
  /// interesting tokens (ridge leaves dust on every coefficient).
  double weight_epsilon = 1e-12;
};

/// \brief Per-unit explanation-quality signals, computed in the fit stage
/// from the fitted Explanation and the neighbourhood predictions the
/// surrogate was trained on.
///
/// This is the paper's failure mode made observable: plain LIME
/// neighbourhoods of non-matching pairs collapse into the non-match class
/// (`match_fraction == 0`), the surrogate fits noise (`weighted_r2` low or
/// NaN) and no token pushes towards the match class
/// (`interesting_tokens == 0`) — exactly why landmarks and double-entity
/// generation exist. LEMON (PAPERS.md) measures the same thing as decision
/// boundary coverage.
struct ExplanationQuality {
  /// Surrogate weighted R² on its training neighbourhood (may be NaN when
  /// the neighbourhood variance is zero).
  double weighted_r2 = 0.0;
  /// Surrogate intercept.
  double intercept = 0.0;
  /// Fraction of neighbourhood samples the EM model predicted at or above
  /// the decision threshold — the "did we ever reach the match class" test.
  double match_fraction = 0.0;
  /// Share of total |weight| mass held by the top_k largest-|weight|
  /// tokens (0 when every weight is zero). High concentration on a tiny
  /// token space reads very differently from a flat spread over hundreds.
  double top_weight_share = 0.0;
  /// Tokens whose weight pushes towards the class *opposite* the model's
  /// verdict on the all-active sample — the tokens the paper calls
  /// interesting: what to remove (match verdict) or add (non-match
  /// verdict) to move the pair across the boundary.
  size_t interesting_tokens = 0;
  /// weighted_r2 < thresholds.low_r2 (NaN counts as low).
  bool low_r2 = false;
  /// The neighbourhood never left one class (match_fraction 0 or 1), so
  /// the surrogate saw no decision boundary — the degenerate case the
  /// paper's §4.3 interest metric exists to detect.
  bool degenerate_neighborhood = false;
};

/// Computes the signals for one fitted unit. `neighborhood_predictions` are
/// the EM model probabilities of every perturbation mask (duplicates
/// included — the surrogate's actual training targets); element 0 is the
/// all-active sample.
ExplanationQuality ComputeExplanationQuality(
    const Explanation& explanation,
    const std::vector<double>& neighborhood_predictions,
    const QualityThresholds& thresholds = {});

/// Publishes one unit's signals into the global MetricsRegistry under the
/// `explain/quality/*` names of the metric contract
/// (docs/architecture.md). NaN R² is not recorded into the histogram (it
/// would poison the running sum) — it surfaces through the low-R² counter
/// and the audit stream instead.
void PublishExplanationQuality(const ExplanationQuality& quality);

/// Same, with exemplar capture: each histogram observation retains
/// `context` (audit ordinal, record/unit identity) so a quality outlier on
/// /metrics can be traced to the concrete ExplainUnit — see
/// LANDMARK_OBSERVE_WITH_EXEMPLAR in util/telemetry/metrics.h. Called from
/// the engine's single-threaded epilogue, where the audit ordinal is known.
void PublishExplanationQuality(const ExplanationQuality& quality,
                               const ExemplarContext& context);

}  // namespace landmark

#endif  // LANDMARK_CORE_ENGINE_QUALITY_H_
